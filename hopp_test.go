package hopp

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	gen := Workloads.Sequential(512, 2)
	cmp, err := Compare(gen, 0.5, 1, Fastswap(), HoPP())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 2 {
		t.Fatalf("results = %d", len(cmp.Results))
	}
	hopp, ok := cmp.Find("HoPP")
	if !ok {
		t.Fatal("HoPP result missing")
	}
	if hopp.Coverage() <= 0 {
		t.Fatal("HoPP coverage zero")
	}
}

func TestRunSingle(t *testing.T) {
	met, err := Run(NoPrefetch(), Workloads.Quicksort(256), 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if met.CompletionTime <= 0 {
		t.Fatal("no completion time")
	}
}

func TestNewMachineMultiApp(t *testing.T) {
	m, err := NewMachine(Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 3},
		Workloads.OMPKMeans(256, 2), Workloads.NPBIS(256))
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(met.PerApp) != 2 {
		t.Fatalf("PerApp = %v", met.PerApp)
	}
}

func TestAllWorkloadConstructors(t *testing.T) {
	gens := []Workload{
		Workloads.Sequential(64, 1),
		Workloads.Strided(64, 2, 1),
		Workloads.Intertwined(64, 0.1),
		Workloads.Ladder(64, 1),
		Workloads.Ripple(64, 1),
		Workloads.AddUp(2, 64),
		Workloads.OMPKMeans(64, 1),
		Workloads.Quicksort(64),
		Workloads.HPL(8, 96),
		Workloads.NPBCG(64, 1),
		Workloads.NPBFT(64),
		Workloads.NPBLU(4, 24, 1),
		Workloads.NPBMG(64, 1),
		Workloads.NPBIS(64),
		Workloads.GraphX("PR", 64),
		Workloads.SparkKMeans(256),
		Workloads.SparkBayes(256),
		Workloads.Random(64, 100),
	}
	for _, g := range gens {
		g.Reset(1)
		if _, ok := g.Next(); !ok {
			t.Fatalf("%s produced no accesses", g.Name())
		}
		if g.FootprintPages() <= 0 {
			t.Fatalf("%s has no footprint", g.Name())
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := Experiments()
	if len(all) != 23 {
		t.Fatalf("experiments = %d, want 23 (breakdown + 4 tables + 17 figures + baselines)", len(all))
	}
	for _, e := range all {
		if _, ok := ExperimentByID(e.ID); !ok {
			t.Fatalf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ExperimentByID("fig99"); ok {
		t.Fatal("bogus ID resolved")
	}
}

func TestRunExperimentRendersTable(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("fig2", ExperimentOptions{Seed: 1, Quick: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ladder") || !strings.Contains(out, "LSP") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	err := RunExperiment("nope", ExperimentOptions{}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error does not name the ID: %v", err)
	}
}

func TestHoPPWithCustomParams(t *testing.T) {
	p := DefaultParams()
	p.EnableRSP = false
	p.Policy.Intensity = 2
	sys := HoPPWith(p)
	met, err := Run(sys, Workloads.Sequential(512, 2), 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if met.InjectedHits == 0 {
		t.Fatal("custom-params HoPP injected nothing")
	}
}
