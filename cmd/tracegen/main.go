// Command tracegen captures a workload's off-chip memory reference
// trace in the HMTT on-disk format (§V: 6-byte records of sequence
// number, timestamp delta, R/W flag and physical page) and writes it to
// a file — the same artifact the paper's DIMM-snooping tracer produces.
//
// Usage:
//
//	tracegen -workload npb-mg -out mg.hmtt -max 1000000
//	tracegen -workload quicksort -out - | xxd | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"hopp"
	"hopp/internal/cachesim"
	"hopp/internal/hmtt"
	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

func generators() map[string]func() hopp.Workload {
	w := hopp.Workloads
	return map[string]func() hopp.Workload{
		"sequential": func() hopp.Workload { return w.Sequential(4096, 3) },
		"ladder":     func() hopp.Workload { return w.Ladder(2048, 3) },
		"ripple":     func() hopp.Workload { return w.Ripple(2048, 3) },
		"omp-kmeans": func() hopp.Workload { return w.OMPKMeans(3072, 3) },
		"quicksort":  func() hopp.Workload { return w.Quicksort(3072) },
		"hpl":        func() hopp.Workload { return w.HPL(32, 96) },
		"npb-mg":     func() hopp.Workload { return w.NPBMG(2048, 2) },
		"graphx-pr":  func() hopp.Workload { return w.GraphX("PR", 768) },
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		wl   = flag.String("workload", "sequential", "workload to trace")
		out  = flag.String("out", "-", "output file ('-' = stdout)")
		max  = flag.Int("max", 1_000_000, "max trace records")
		seed = flag.Int64("seed", 1, "randomness seed")
	)
	flag.Parse()

	newGen, ok := generators()[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *wl)
		return 2
	}
	if err := generate(newGen(), *out, *max, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 1
	}
	return 0
}

func generate(gen hopp.Workload, out string, max int, seed int64) error {
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	gen.Reset(seed)
	h := cachesim.DefaultHierarchy()
	cap := hmtt.NewCapture(4096)
	written := 0
	now := vclock.Time(0)
	for written < max {
		a, ok := gen.Next()
		if !ok {
			break
		}
		now = now.Add(a.Think)
		pa := memsim.PAddr(a.Addr) // identity mapping: offline capture
		if h.Access(pa) == cachesim.LevelMemory {
			now = now.Add(100) // DRAM access
			cap.Observe(now, pa.Page(), a.Write)
			if cap.Pending() >= 1024 {
				recs := cap.Drain(0)
				if err := hmtt.WriteTrace(w, recs); err != nil {
					return err
				}
				written += len(recs)
			}
		} else {
			now = now.Add(15)
		}
	}
	recs := cap.Drain(0)
	if err := hmtt.WriteTrace(w, recs); err != nil {
		return err
	}
	written += len(recs)
	fmt.Fprintf(os.Stderr, "tracegen: %d records (%d bytes), %d observed, %d dropped\n",
		written, written*hmtt.RecordSize, cap.Observed(), cap.Dropped())
	return nil
}
