// Command tracegen captures a workload's off-chip memory reference
// trace in the HMTT on-disk format (§V: 6-byte records of sequence
// number, timestamp delta, R/W flag and physical page) and writes it to
// a file — the same artifact the paper's DIMM-snooping tracer produces.
//
// With -hmtt-stream it instead plays the tracer's other role: a live
// capture board streaming its buffer to an analysis host. The trace is
// uploaded to a hoppd daemon as an ingest session — chunks PUT strictly
// in order, idempotent by index — with retry and backoff: 429 responses
// honor Retry-After (the daemon's staging ring is full), 5xx and
// network errors back off exponentially and re-sync to the session's
// acked high-water mark, so a daemon restart mid-stream just rewinds
// the upload to the last journaled chunk.
//
// Usage:
//
//	tracegen -workload npb-mg -out mg.hmtt -max 1000000
//	tracegen -workload quicksort -out - | xxd | head
//	tracegen -workload npb-mg -max 500000 -hmtt-stream http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"hopp"
	"hopp/internal/cachesim"
	"hopp/internal/hmtt"
	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

func generators() map[string]func() hopp.Workload {
	w := hopp.Workloads
	return map[string]func() hopp.Workload{
		"sequential": func() hopp.Workload { return w.Sequential(4096, 3) },
		"ladder":     func() hopp.Workload { return w.Ladder(2048, 3) },
		"ripple":     func() hopp.Workload { return w.Ripple(2048, 3) },
		"omp-kmeans": func() hopp.Workload { return w.OMPKMeans(3072, 3) },
		"quicksort":  func() hopp.Workload { return w.Quicksort(3072) },
		"hpl":        func() hopp.Workload { return w.HPL(32, 96) },
		"npb-mg":     func() hopp.Workload { return w.NPBMG(2048, 2) },
		"graphx-pr":  func() hopp.Workload { return w.GraphX("PR", 768) },
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		wl   = flag.String("workload", "sequential", "workload to trace")
		out  = flag.String("out", "-", "output file ('-' = stdout)")
		max  = flag.Int("max", 1_000_000, "max trace records")
		seed = flag.Int64("seed", 1, "randomness seed")

		// Streaming-client mode.
		stream = flag.String("hmtt-stream", "", "stream the trace to a hoppd daemon at this base URL instead of writing -out")
		system = flag.String("system", "hopp", "system under test for the ingest session (streaming mode)")
		frac   = flag.Float64("frac", 0.5, "local memory fraction for the ingest session (streaming mode)")
		window = flag.Int("window-records", 0, "ingest metrics window length in records (0 = daemon default)")
		chunk  = flag.Int("chunk-records", 2048, "records per uploaded chunk (streaming mode)")
	)
	flag.Parse()

	newGen, ok := generators()[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *wl)
		return 2
	}
	if *stream != "" {
		var buf bytes.Buffer
		if err := generate(newGen(), &buf, *max, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			return 1
		}
		err := streamTrace(*stream, buf.Bytes(), streamOpts{
			workload:      *wl,
			system:        *system,
			frac:          *frac,
			seed:          *seed,
			windowRecords: *window,
			chunkBytes:    *chunk * hmtt.RecordSize,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			return 1
		}
		return 0
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			return 1
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	if err := generate(newGen(), w, *max, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 1
	}
	return 0
}

func generate(gen hopp.Workload, w io.Writer, max int, seed int64) error {
	gen.Reset(seed)
	h := cachesim.DefaultHierarchy()
	cap := hmtt.NewCapture(4096)
	written := 0
	now := vclock.Time(0)
	for written < max {
		a, ok := gen.Next()
		if !ok {
			break
		}
		now = now.Add(a.Think)
		pa := memsim.PAddr(a.Addr) // identity mapping: offline capture
		if h.Access(pa) == cachesim.LevelMemory {
			now = now.Add(100) // DRAM access
			cap.Observe(now, pa.Page(), a.Write)
			if cap.Pending() >= 1024 {
				recs := cap.Drain(0)
				if err := hmtt.WriteTrace(w, recs); err != nil {
					return err
				}
				written += len(recs)
			}
		} else {
			now = now.Add(15)
		}
	}
	recs := cap.Drain(0)
	if err := hmtt.WriteTrace(w, recs); err != nil {
		return err
	}
	written += len(recs)
	fmt.Fprintf(os.Stderr, "tracegen: %d records (%d bytes), %d observed, %d dropped\n",
		written, written*hmtt.RecordSize, cap.Observed(), cap.Dropped())
	return nil
}

// streamOpts parameterizes the ingest session the streaming client
// opens.
type streamOpts struct {
	workload, system string
	frac             float64
	seed             int64
	windowRecords    int
	chunkBytes       int
}

// Retry policy for the streaming client: transient failures (network
// errors, 5xx) back off exponentially from streamBackoffMin, doubling
// to streamBackoffMax, and give up after streamMaxAttempts consecutive
// failures on the same chunk. 429 is not a failure — it is the daemon
// saying "later", and the wait is whatever Retry-After asks.
const (
	streamBackoffMin  = 200 * time.Millisecond
	streamBackoffMax  = 5 * time.Second
	streamMaxAttempts = 8
)

// ingestState is the slice of the daemon's session status the client
// steers by.
type ingestState struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Ingest *struct {
		Phase         string `json:"phase"`
		ChunksAcked   int    `json:"chunks_acked"`
		ChunksDurable int    `json:"chunks_durable"`
		Records       uint64 `json:"records"`
		LossRecords   uint64 `json:"loss_records"`
		HotPages      uint64 `json:"hot_pages"`
		Prefetches    uint64 `json:"prefetches"`
		PrefetchHits  uint64 `json:"prefetch_hits"`
		Windows       int    `json:"windows"`
	} `json:"ingest"`
}

// streamTrace uploads an encoded trace to a hoppd ingest session with
// retry, backoff, and high-water-mark re-sync, then closes the session
// and prints the daemon's windowed summary.
func streamTrace(base string, trace []byte, o streamOpts) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	open, err := openIngest(client, base, o)
	if err != nil {
		return err
	}
	id := open.ID
	total := (len(trace) + o.chunkBytes - 1) / o.chunkBytes
	fmt.Fprintf(os.Stderr, "tracegen: ingest %s open (%d records in %d chunks)\n",
		id, len(trace)/hmtt.RecordSize, total)

	n := 0
	attempts := 0
	backoff := streamBackoffMin
	for n < total {
		start := n * o.chunkBytes
		end := min(start+o.chunkBytes, len(trace))
		resp, err := client.Do(mustRequest(http.MethodPut,
			fmt.Sprintf("%s/v1/ingests/%s/chunks/%d", base, id, n),
			bytes.NewReader(trace[start:end])))
		if err != nil {
			// Network failure: the ack (if any) was lost. Back off, then
			// re-sync to the daemon's acked high-water mark — a chunk it
			// already staged re-acks idempotently, one it never saw is
			// re-sent.
			if attempts++; attempts > streamMaxAttempts {
				return fmt.Errorf("chunk %d: giving up after %d attempts: %w", n, attempts-1, err)
			}
			time.Sleep(backoff)
			backoff = min(backoff*2, streamBackoffMax)
			if st, serr := ingestStatus(client, base, id); serr == nil && st.Ingest != nil {
				n = st.Ingest.ChunksAcked
			}
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			n++
			attempts = 0
			backoff = streamBackoffMin
		case resp.StatusCode == http.StatusTooManyRequests:
			// Staging ring full: the session is paused, not broken. Honor
			// Retry-After and re-send the same chunk.
			time.Sleep(retryAfter(resp, backoff))
		case resp.StatusCode == http.StatusConflict:
			// Out of order: the daemon's idea of "next" moved — most
			// likely a restart rewound the session to its durable
			// high-water mark. Re-sync and continue from there.
			st, serr := ingestStatus(client, base, id)
			if serr != nil || st.Ingest == nil {
				return fmt.Errorf("chunk %d conflict and status unreadable: %s", n, strings.TrimSpace(string(body)))
			}
			if st.Ingest.Phase == "done" || st.Ingest.Phase == "failed" ||
				st.Ingest.Phase == "expired" || st.Ingest.Phase == "cancelled" {
				return fmt.Errorf("session %s is %s: %s", id, st.Ingest.Phase, st.Error)
			}
			n = st.Ingest.ChunksAcked
		case resp.StatusCode >= 500:
			if attempts++; attempts > streamMaxAttempts {
				return fmt.Errorf("chunk %d: giving up after %d attempts: %s", n, attempts-1, strings.TrimSpace(string(body)))
			}
			time.Sleep(backoff)
			backoff = min(backoff*2, streamBackoffMax)
		default:
			return fmt.Errorf("chunk %d: HTTP %d: %s", n, resp.StatusCode, strings.TrimSpace(string(body)))
		}
	}

	if err := closeIngest(client, base, id); err != nil {
		return err
	}
	return printSummary(client, base, id)
}

// openIngest opens the session, retrying 429 (the -max-ingests bound)
// with the daemon's Retry-After hint.
func openIngest(client *http.Client, base string, o streamOpts) (ingestState, error) {
	payload, err := json.Marshal(map[string]any{
		"workload":       o.workload,
		"system":         o.system,
		"frac":           o.frac,
		"seed":           o.seed,
		"window_records": o.windowRecords,
	})
	if err != nil {
		return ingestState{}, err
	}
	backoff := streamBackoffMin
	for attempts := 0; ; {
		resp, err := client.Do(mustRequest(http.MethodPost, base+"/v1/ingests", bytes.NewReader(payload)))
		if err != nil {
			if attempts++; attempts > streamMaxAttempts {
				return ingestState{}, fmt.Errorf("opening ingest: %w", err)
			}
			time.Sleep(backoff)
			backoff = min(backoff*2, streamBackoffMax)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
			var st ingestState
			if err := json.Unmarshal(body, &st); err != nil {
				return ingestState{}, fmt.Errorf("opening ingest: bad response: %w", err)
			}
			return st, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			time.Sleep(retryAfter(resp, backoff))
		case resp.StatusCode >= 500:
			if attempts++; attempts > streamMaxAttempts {
				return ingestState{}, fmt.Errorf("opening ingest: %s", strings.TrimSpace(string(body)))
			}
			time.Sleep(backoff)
			backoff = min(backoff*2, streamBackoffMax)
		default:
			return ingestState{}, fmt.Errorf("opening ingest: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
	}
}

// closeIngest ends the stream; idempotent on the daemon side, retried
// on transient failures here.
func closeIngest(client *http.Client, base, id string) error {
	backoff := streamBackoffMin
	for attempts := 0; ; {
		resp, err := client.Do(mustRequest(http.MethodPost, base+"/v1/ingests/"+id+"/close", nil))
		if err == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			if resp.StatusCode < 500 {
				return fmt.Errorf("closing ingest: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
			}
		}
		if attempts++; attempts > streamMaxAttempts {
			return fmt.Errorf("closing ingest: giving up after %d attempts", attempts-1)
		}
		time.Sleep(backoff)
		backoff = min(backoff*2, streamBackoffMax)
	}
}

// ingestStatus fetches the session's status snapshot.
func ingestStatus(client *http.Client, base, id string) (ingestState, error) {
	resp, err := client.Get(base + "/v1/ingests/" + id)
	if err != nil {
		return ingestState{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ingestState{}, fmt.Errorf("status: HTTP %d", resp.StatusCode)
	}
	var st ingestState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return ingestState{}, err
	}
	return st, nil
}

// printSummary waits for the session to drain and reports the daemon's
// view of the stream.
func printSummary(client *http.Client, base, id string) error {
	deadline := time.Now().Add(time.Minute)
	var st ingestState
	for {
		var err error
		st, err = ingestStatus(client, base, id)
		if err != nil {
			return err
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session %s still %s after close", id, st.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.State != "done" {
		return fmt.Errorf("session %s finished %s: %s", id, st.State, st.Error)
	}
	if st.Ingest == nil {
		return fmt.Errorf("session %s: no ingest block in status", id)
	}
	fmt.Fprintf(os.Stderr, "tracegen: ingest %s done: %d records (%d lost), %d windows, %d hot pages, %d/%d prefetch hits\n",
		id, st.Ingest.Records, st.Ingest.LossRecords, st.Ingest.Windows,
		st.Ingest.HotPages, st.Ingest.PrefetchHits, st.Ingest.Prefetches)
	return nil
}

// retryAfter reads a 429's Retry-After header, falling back to the
// caller's backoff when absent or unparsable.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// mustRequest builds a request for a URL assembled from parsed flags;
// the inputs cannot produce an invalid one.
func mustRequest(method, url string, body io.Reader) *http.Request {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		panic(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	return req
}
