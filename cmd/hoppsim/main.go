// Command hoppsim runs one workload under one remote-memory system and
// prints the §VI-A metrics. Workload and system names resolve through
// the same catalog the hoppd daemon serves, so anything runnable here is
// submittable there and vice versa. Demand-path systems accept the
// prefetch registry's parameterized spec forms — "depth-16" or
// "spp?lookahead=6" — alongside the bare names -list prints.
//
// Usage:
//
//	hoppsim -workload omp-kmeans -system hopp -frac 0.5
//	hoppsim -workload npb-mg -system fastswap -frac 0.25 -seed 9
//	hoppsim -workload quicksort -system "spp?lookahead=6" -frac 0.5
//	hoppsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hopp"
	"hopp/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		wl    = flag.String("workload", "omp-kmeans", "workload name")
		sys   = flag.String("system", "hopp", "system name or prefetch spec (e.g. spp?lookahead=6)")
		frac  = flag.Float64("frac", 0.5, "local memory as a fraction of the footprint (0 = all local)")
		seed  = flag.Int64("seed", 1, "randomness seed")
		quick = flag.Bool("quick", false, "shrink the workload ~4x")
		list  = flag.Bool("list", false, "list workloads and systems")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(hopp.ServiceWorkloads(), ", "))
		fmt.Println("systems:  ", strings.Join(hopp.ServiceSystems(), ", "))
		return 0
	}
	gen, ok := service.NewWorkload(*wl, *quick)
	if !ok {
		fmt.Fprintf(os.Stderr, "hoppsim: unknown workload %q (have: %s)\n",
			*wl, strings.Join(hopp.ServiceWorkloads(), ", "))
		return 2
	}
	system, ok := service.NewSystem(*sys)
	if !ok {
		fmt.Fprintf(os.Stderr, "hoppsim: unknown system %q (have: %s)\n",
			*sys, strings.Join(hopp.ServiceSystems(), ", "))
		return 2
	}
	if *frac < 0 || *frac >= 1 {
		fmt.Fprintf(os.Stderr, "hoppsim: -frac must be in [0, 1), got %g\n", *frac)
		return 2
	}

	local, err := hopp.Run(hopp.NoPrefetch(), gen, 0, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoppsim:", err)
		return 1
	}
	met, err := hopp.Run(system, gen, *frac, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoppsim:", err)
		return 1
	}

	fmt.Printf("workload          %s (%d pages footprint)\n", gen.Name(), gen.FootprintPages())
	fmt.Printf("system            %s, local memory %.0f%%\n", met.System, *frac*100)
	fmt.Printf("completion time   %v  (local: %v)\n", met.CompletionTime, local.CompletionTime)
	fmt.Printf("normalized perf   %.3f\n", met.NormalizedPerformance(local))
	fmt.Printf("accesses          %d (cache %d / dram %d)\n", met.Accesses, met.CacheHits, met.DRAMHits)
	fmt.Printf("faults            minor %d, major %d\n", met.MinorFault, met.MajorFaults)
	fmt.Printf("prefetch          issued %d, swapcache hits %d, injected hits %d, late %d, evicted %d\n",
		met.PrefetchIssued, met.SwapCacheHits, met.InjectedHits, met.LateHits, met.PrefetchEvicted)
	fmt.Printf("accuracy          %.3f (prefetcher: %.3f)\n", met.Accuracy(), met.PrefetcherAccuracy())
	fmt.Printf("coverage          %.3f (dram-hit %.3f, swapcache %.3f)\n",
		met.Coverage(), met.DRAMHitCoverage(), met.SwapCacheHitCoverage())
	fmt.Printf("remote            reads %d, writes %d\n", met.RemoteReads, met.RemoteWrites)
	if met.HasCore {
		fmt.Printf("hot pages         %d emitted; HPD bw %.3f%%, RPT bw %.5f%%, RPT cache hit %.3f\n",
			met.HotPagesEmitted, met.HPDBandwidth*100, met.RPTBandwidth*100, met.RPTCacheHitRate)
		fmt.Printf("tiers             issued SSP/LSP/RSP %d/%d/%d, hits %d/%d/%d, mean lead %v\n",
			met.IssuedByTier[1], met.IssuedByTier[2], met.IssuedByTier[3],
			met.HitsByTier[1], met.HitsByTier[2], met.HitsByTier[3], met.MeanLead)
		fmt.Printf("timeliness        <10µs:%d <40µs:%d <100µs:%d <1ms:%d <5ms:%d ≥5ms:%d\n",
			met.LeadBuckets[0], met.LeadBuckets[1], met.LeadBuckets[2],
			met.LeadBuckets[3], met.LeadBuckets[4], met.LeadBuckets[5])
	}
	return 0
}
