// Command hoppsim runs one workload under one remote-memory system and
// prints the §VI-A metrics.
//
// Usage:
//
//	hoppsim -workload omp-kmeans -system hopp -frac 0.5
//	hoppsim -workload npb-mg -system fastswap -frac 0.25 -seed 9
//	hoppsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hopp"
)

// workloads maps CLI names to generators at the standard evaluation
// scale.
func workloads() map[string]func() hopp.Workload {
	w := hopp.Workloads
	return map[string]func() hopp.Workload{
		"sequential":   func() hopp.Workload { return w.Sequential(4096, 3) },
		"intertwined":  func() hopp.Workload { return w.Intertwined(2048, 0.05) },
		"ladder":       func() hopp.Workload { return w.Ladder(2048, 3) },
		"ripple":       func() hopp.Workload { return w.Ripple(2048, 3) },
		"addup":        func() hopp.Workload { return w.AddUp(2, 2048) },
		"omp-kmeans":   func() hopp.Workload { return w.OMPKMeans(3072, 3) },
		"quicksort":    func() hopp.Workload { return w.Quicksort(3072) },
		"hpl":          func() hopp.Workload { return w.HPL(32, 96) },
		"npb-cg":       func() hopp.Workload { return w.NPBCG(3072, 2) },
		"npb-ft":       func() hopp.Workload { return w.NPBFT(2048) },
		"npb-lu":       func() hopp.Workload { return w.NPBLU(24, 128, 2) },
		"npb-mg":       func() hopp.Workload { return w.NPBMG(2048, 2) },
		"npb-is":       func() hopp.Workload { return w.NPBIS(2048) },
		"graphx-bfs":   func() hopp.Workload { return w.GraphX("BFS", 768) },
		"graphx-cc":    func() hopp.Workload { return w.GraphX("CC", 768) },
		"graphx-pr":    func() hopp.Workload { return w.GraphX("PR", 768) },
		"graphx-lp":    func() hopp.Workload { return w.GraphX("LP", 768) },
		"spark-kmeans": func() hopp.Workload { return w.SparkKMeans(2048) },
		"spark-bayes":  func() hopp.Workload { return w.SparkBayes(2048) },
	}
}

func systems() map[string]func() hopp.System {
	return map[string]func() hopp.System{
		"hopp":       hopp.HoPP,
		"fastswap":   hopp.Fastswap,
		"leap":       hopp.Leap,
		"vma":        hopp.VMA,
		"depth-16":   func() hopp.System { return hopp.DepthN(16) },
		"depth-32":   func() hopp.System { return hopp.DepthN(32) },
		"noprefetch": hopp.NoPrefetch,
		"hopp-markov": func() hopp.System {
			p := hopp.DefaultParams()
			p.Algorithm = "markov"
			s := hopp.HoPPWith(p)
			s.Name = "HoPP-markov"
			return s
		},
		"hopp-bulk": func() hopp.System {
			p := hopp.DefaultParams()
			p.Bulk.Enable = true
			s := hopp.HoPPWith(p)
			s.Name = "HoPP-bulk"
			return s
		},
		"hopp-smartevict": func() hopp.System {
			p := hopp.DefaultParams()
			p.SmartEviction = true
			s := hopp.HoPPWith(p)
			s.Name = "HoPP-smartevict"
			return s
		},
	}
}

func names[V any](m map[string]V) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

func main() {
	var (
		wl   = flag.String("workload", "omp-kmeans", "workload name")
		sys  = flag.String("system", "hopp", "system name")
		frac = flag.Float64("frac", 0.5, "local memory as a fraction of the footprint (0 = all local)")
		seed = flag.Int64("seed", 1, "randomness seed")
		list = flag.Bool("list", false, "list workloads and systems")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", names(workloads()))
		fmt.Println("systems:  ", names(systems()))
		return
	}
	newGen, ok := workloads()[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "hoppsim: unknown workload %q (have: %s)\n", *wl, names(workloads()))
		os.Exit(2)
	}
	newSys, ok := systems()[*sys]
	if !ok {
		fmt.Fprintf(os.Stderr, "hoppsim: unknown system %q (have: %s)\n", *sys, names(systems()))
		os.Exit(2)
	}

	gen := newGen()
	local, err := hopp.Run(hopp.NoPrefetch(), gen, 0, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoppsim:", err)
		os.Exit(1)
	}
	met, err := hopp.Run(newSys(), gen, *frac, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hoppsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload          %s (%d pages footprint)\n", gen.Name(), gen.FootprintPages())
	fmt.Printf("system            %s, local memory %.0f%%\n", met.System, *frac*100)
	fmt.Printf("completion time   %v  (local: %v)\n", met.CompletionTime, local.CompletionTime)
	fmt.Printf("normalized perf   %.3f\n", met.NormalizedPerformance(local))
	fmt.Printf("accesses          %d (cache %d / dram %d)\n", met.Accesses, met.CacheHits, met.DRAMHits)
	fmt.Printf("faults            minor %d, major %d\n", met.MinorFault, met.MajorFaults)
	fmt.Printf("prefetch          issued %d, swapcache hits %d, injected hits %d, late %d, evicted %d\n",
		met.PrefetchIssued, met.SwapCacheHits, met.InjectedHits, met.LateHits, met.PrefetchEvicted)
	fmt.Printf("accuracy          %.3f (prefetcher: %.3f)\n", met.Accuracy(), met.PrefetcherAccuracy())
	fmt.Printf("coverage          %.3f (dram-hit %.3f, swapcache %.3f)\n",
		met.Coverage(), met.DRAMHitCoverage(), met.SwapCacheHitCoverage())
	fmt.Printf("remote            reads %d, writes %d\n", met.RemoteReads, met.RemoteWrites)
	if met.HasCore {
		fmt.Printf("hot pages         %d emitted; HPD bw %.3f%%, RPT bw %.5f%%, RPT cache hit %.3f\n",
			met.HotPagesEmitted, met.HPDBandwidth*100, met.RPTBandwidth*100, met.RPTCacheHitRate)
		fmt.Printf("tiers             issued SSP/LSP/RSP %d/%d/%d, hits %d/%d/%d, mean lead %v\n",
			met.IssuedByTier[1], met.IssuedByTier[2], met.IssuedByTier[3],
			met.HitsByTier[1], met.HitsByTier[2], met.HitsByTier[3], met.MeanLead)
		fmt.Printf("timeliness        <10µs:%d <40µs:%d <100µs:%d <1ms:%d <5ms:%d ≥5ms:%d\n",
			met.LeadBuckets[0], met.LeadBuckets[1], met.LeadBuckets[2],
			met.LeadBuckets[3], met.LeadBuckets[4], met.LeadBuckets[5])
	}
}
