// Command traceanalyze replays an HMTT-format trace file (see
// cmd/tracegen) through the hot page detection table and the stream
// training framework, and reports the §VI-D pattern mix: how much of
// the trace each prefetch tier (SSP / LSP / RSP) identifies, stream
// statistics, and capture-loss diagnostics. This is the offline trace
// study the paper used to discover ladder and ripple streams (§II-B).
//
// Usage:
//
//	tracegen -workload npb-mg -out mg.hmtt
//	traceanalyze mg.hmtt
package main

import (
	"flag"
	"fmt"
	"os"

	"hopp/internal/core"
	"hopp/internal/hmtt"
	"hopp/internal/hpd"
	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

func main() {
	os.Exit(run())
}

func run() int {
	threshold := flag.Int("n", 8, "hot page threshold N")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceanalyze [-n N] <trace.hmtt>")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		return 1
	}
	defer f.Close()
	recs, err := hmtt.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		return 1
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "traceanalyze: empty trace")
		return 1
	}

	det := hpd.MustNew(hpd.Config{Threshold: *threshold})
	trainer := core.NewTrainer(core.DefaultParams())

	var (
		reads, writes, lost int
		clock               int64
		hot                 int
	)
	prev := recs[0]
	for i, r := range recs {
		if i > 0 {
			lost += hmtt.LossBetween(prev, r)
			prev = r
		}
		clock += int64(r.TimestampDelta)
		if r.Write {
			writes++
		} else {
			reads++
		}
		if det.Access(r.Page) {
			hot++
			// Offline study: identity PPN→VPN, single PID.
			trainer.Observe(vclock.Time(clock*hmtt.TickNS), 1, memsim.VPN(r.Page))
		}
	}

	ts := trainer.Stats()
	total := ts.Predictions[core.TierSSP] + ts.Predictions[core.TierLSP] + ts.Predictions[core.TierRSP]
	fmt.Printf("trace             %s\n", flag.Arg(0))
	fmt.Printf("records           %d (%d reads, %d writes), %d lost to capture overflow\n",
		len(recs), reads, writes, lost)
	fmt.Printf("span              %v of reconstructed time\n", vclock.Duration(clock*hmtt.TickNS))
	fmt.Printf("hot pages (N=%d)   %d (%.2f%% of records)\n", *threshold, hot,
		100*float64(hot)/float64(len(recs)))
	fmt.Printf("streams           %d created, %d evicted, %d live at end\n",
		ts.StreamsCreated, ts.StreamsEvicted, trainer.LiveStreams())
	fmt.Printf("identified        %d pattern instances\n", total)
	if total > 0 {
		fmt.Printf("  simple (SSP)    %d (%.1f%%)\n", ts.Predictions[core.TierSSP],
			100*float64(ts.Predictions[core.TierSSP])/float64(total))
		fmt.Printf("  ladder (LSP)    %d (%.1f%%)\n", ts.Predictions[core.TierLSP],
			100*float64(ts.Predictions[core.TierLSP])/float64(total))
		fmt.Printf("  ripple (RSP)    %d (%.1f%%)\n", ts.Predictions[core.TierRSP],
			100*float64(ts.Predictions[core.TierRSP])/float64(total))
	}
	fmt.Printf("unidentified      %d hot pages produced no prediction\n",
		uint64(hot)-total-ts.Duplicates)
	return 0
}
