// Command hoppd serves HoPP simulations over HTTP: submissions fan out
// to a bounded worker pool, identical requests hit an LRU result cache,
// and /metrics exposes the engine's runtime counters. See internal/
// service for the API surface.
//
// Usage:
//
//	hoppd -addr :8080
//	curl -XPOST localhost:8080/v1/runs -d '{"workload":"npb-mg","system":"hopp","frac":0.5,"seed":1}'
//	curl localhost:8080/v1/runs/r000001
//	curl -XPOST 'localhost:8080/v1/experiments/fig9?quick=true'
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener closes, then
// queued and in-flight runs drain (up to -drain-timeout) before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hopp/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoppd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 256, "result cache entries")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight runs on shutdown")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	engine := service.NewEngine(service.Options{Workers: *workers, CacheEntries: *cache})
	srv := &http.Server{Addr: *addr, Handler: service.NewHandler(engine)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "hoppd: listening on %s (%d workers)\n", *addr, engine.Metrics().Workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "hoppd: shutting down, draining runs...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	serr := srv.Shutdown(drainCtx)
	if errors.Is(serr, http.ErrServerClosed) {
		serr = nil
	}
	if err := engine.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if serr != nil {
		return serr
	}
	fmt.Fprintln(os.Stderr, "hoppd: drained cleanly")
	return nil
}
