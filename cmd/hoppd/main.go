// Command hoppd serves HoPP simulations over HTTP: submissions fan out
// to a bounded worker pool, identical requests hit an LRU result cache,
// and /metrics exposes the engine's runtime counters. See internal/
// service for the API surface.
//
// Usage:
//
//	hoppd -addr :8080
//	curl -XPOST localhost:8080/v1/runs -d '{"workload":"npb-mg","system":"hopp","frac":0.5,"seed":1}'
//	curl localhost:8080/v1/runs/r000001
//	curl -XPOST 'localhost:8080/v1/experiments/fig9/runs?quick=true'   # job form: poll /v1/runs/{id}
//	curl -XPOST 'localhost:8080/v1/experiments/fig9?quick=true'        # legacy streaming form
//	curl -XPOST localhost:8080/v1/sweeps -d '{"workloads":["npb-mg","npb-cg"],"systems":["hopp","fastswap"],"fracs":[0.25,0.5],"quick":true}'
//	curl localhost:8080/v1/sweeps/r000042                              # parent aggregate
//	curl 'localhost:8080/v1/sweeps/r000042/results?follow=true'        # NDJSON, one line per point
//	curl -XPOST localhost:8080/v1/ingests -d '{"system":"hopp","frac":0.5}'
//	curl -XPUT --data-binary @chunk0.hmtt localhost:8080/v1/ingests/r000043/chunks/0
//	curl -XPOST localhost:8080/v1/ingests/r000043/close
//	curl 'localhost:8080/v1/ingests/r000043/metrics?follow=true'       # NDJSON, one line per window
//	curl localhost:8080/metrics
//
// An ingest session streams a live HMTT trace (see cmd/tracegen
// -hmtt-stream) through the daemon's HPD→prefetcher pipeline: chunks
// are PUT strictly in order and are idempotent by index, so clients
// retry after timeouts or 5xx; a full staging ring answers 429 +
// Retry-After instead of buffering without bound (-ingest-ring-records
// sizes it); sessions idle past -ingest-idle-timeout expire; and at
// most -max-ingests sessions are live at once. With -journal, every
// processed chunk advances a durable high-water mark, so after a
// restart with -journal-replay the session comes back resumable at its
// last journaled chunk — the client re-queries, rewinds, and continues.
//
// Every submission — a workload × system simulation, an experiment
// regeneration, or a sweep — is one Job in a single shared lifecycle.
// A sweep expands a config grid (bounded by -max-sweep-points) into sim
// children under one parent job: each distinct workload stream is
// generated once and shared read-only across the grid, duplicate points
// (within the sweep, across overlapping sweeps from different clients,
// or against the result cache) simulate once, and the fan-out is paced
// to the worker count so a giant sweep cannot starve other clients'
// single-run submissions. The daemon is built to run indefinitely under
// any mix of kinds: the job registry retains a bounded window of
// finished jobs (-retain-runs/-retain-age, evicted IDs answer 404),
// submissions beyond -max-queue are shed with 429 + Retry-After, each
// job is capped by -run-timeout, and the HTTP server bounds
// header/read/idle time so slow clients cannot pin connections. With
// -client-rate, per-client token buckets (keyed by X-API-Key, else
// remote address) shed a flooding client's submissions with 429 while
// everyone else keeps flowing.
//
// With -journal every job is appended to an append-only JSONL file the
// moment it reaches a terminal state, results included; -journal-replay
// reads that file back at startup and repopulates the registry and
// result cache, so a crash/restart cycle serves previously-completed
// runs byte-identically instead of recomputing them. A run that panics
// is contained on its worker: the job fails, jobs_panicked ticks, and
// the daemon keeps serving. /healthz reports "degraded" (still 200)
// when the queue nears its bound or the last journal write failed.
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener closes, then
// queued and in-flight jobs drain (up to -drain-timeout) before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hopp/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoppd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 256, "result cache entries")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight runs on shutdown")

		// Resource limits: what keeps the daemon bounded under the
		// sustained traffic it exists to serve.
		maxQueue   = flag.Int("max-queue", 256, "max queued jobs before submissions get 429 (0 = unbounded)")
		retainRuns = flag.Int("retain-runs", service.DefaultRetainRuns, "finished jobs kept queryable before eviction (404 afterwards)")
		retainAge  = flag.Duration("retain-age", time.Hour, "evict finished jobs older than this (0 = no age bound)")
		runTimeout = flag.Duration("run-timeout", 5*time.Minute, "per-job wall-clock deadline; timed-out jobs fail (0 = none)")
		maxSweep   = flag.Int("max-sweep-points", service.DefaultMaxSweepPoints, "max expanded grid points per sweep submission (larger grids get 400)")
		journal    = flag.String("journal", "", "append terminal jobs (results included) to this JSONL file (empty = no journal)")
		replay     = flag.Bool("journal-replay", false, "replay the -journal file at startup, repopulating the registry and result cache")

		// Ingest-session bounds: live trace streams are long-lived and
		// hold per-session pipeline state, so they get their own caps.
		maxIngests = flag.Int("max-ingests", service.DefaultMaxIngests, "max concurrently live trace-ingest sessions (opens beyond get 429)")
		ingestIdle = flag.Duration("ingest-idle-timeout", service.DefaultIngestIdleTimeout, "expire an ingest session with no client activity for this long")
		ingestRing = flag.Int("ingest-ring-records", service.DefaultIngestRingRecords, "per-session staging ring capacity in trace records (full ring pauses the session with 429)")

		// Per-client fairness: token buckets in front of the shared
		// queue, so one flooding client collects 429s instead of
		// starving everyone else's admissions.
		clientRate  = flag.Float64("client-rate", 0, "per-client admitted submissions per second (0 = no per-client limit)")
		clientBurst = flag.Float64("client-burst", 8, "per-client burst allowance when -client-rate is set")

		// HTTP server timeouts: without these an idle or trickling
		// client (slowloris) pins a connection forever.
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "max wait for request headers")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "max wait for a full request read")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *replay && *journal == "" {
		return errors.New("-journal-replay requires -journal")
	}

	// Replay happens against the file BEFORE opening it for append, so
	// the reader never races the writer's own buffering.
	engine := service.NewEngine(service.Options{
		Workers:           *workers,
		CacheEntries:      *cache,
		MaxQueue:          *maxQueue,
		RetainRuns:        *retainRuns,
		RetainAge:         *retainAge,
		RunTimeout:        *runTimeout,
		MaxSweepPoints:    *maxSweep,
		MaxIngests:        *maxIngests,
		IngestIdleTimeout: *ingestIdle,
		IngestRingRecords: *ingestRing,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hoppd: "+format+"\n", args...)
		},
	})
	if *replay {
		stats, err := engine.ReplayJournalFile(*journal)
		if err != nil {
			return fmt.Errorf("replaying -journal: %w", err)
		}
		fmt.Fprintf(os.Stderr, "hoppd: journal replay: %d recovered, %d skipped, %d malformed\n",
			stats.Recovered, stats.Skipped, stats.Malformed)
	}
	if *journal != "" {
		jnl, err := service.OpenJournal(*journal)
		if err != nil {
			return fmt.Errorf("opening -journal: %w", err)
		}
		engine.SetJournal(jnl)
		defer func() {
			if err := jnl.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hoppd: closing journal:", err)
			}
		}()
	}

	var limiter *service.ClientLimiter
	if *clientRate > 0 {
		limiter = service.NewClientLimiter(*clientRate, *clientBurst, 0)
	}
	// No WriteTimeout: /v1/experiments/{id} streams output for as long
	// as the (context-cancellable) experiment runs; a write deadline
	// would sever healthy streams. Reads and idle keep-alives are the
	// slowloris surface, and those are bounded.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandlerWith(engine, service.HandlerConfig{Limiter: limiter}),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "hoppd: listening on %s (%d workers)\n", *addr, engine.Metrics().Workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "hoppd: shutting down, draining runs...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	serr := srv.Shutdown(drainCtx)
	if errors.Is(serr, http.ErrServerClosed) {
		serr = nil
	}
	if err := engine.Shutdown(drainCtx); err != nil {
		return err // typed: service.ErrDrainIncomplete wrapping the deadline
	}
	if serr != nil {
		return serr
	}
	fmt.Fprintln(os.Stderr, "hoppd: drained cleanly")
	return nil
}
