// Command hoppexp regenerates the paper's tables and figures.
//
// Usage:
//
//	hoppexp -list                 # show every experiment ID
//	hoppexp -exp fig9             # regenerate one table/figure
//	hoppexp -exp all              # regenerate everything (minutes)
//	hoppexp -exp fig9 -quick      # ~4x smaller workloads
//	hoppexp -exp fig9 -seed 42    # different randomness
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"hopp"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (breakdown, table2..table5, fig1..fig22) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "shrink workloads ~4x")
		seed     = flag.Int64("seed", 1, "randomness seed")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (output order preserved)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments (use -exp <id>):")
		for _, e := range hopp.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := hopp.ExperimentOptions{Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range hopp.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	if !*parallel {
		for _, id := range ids {
			start := time.Now()
			if err := hopp.RunExperiment(id, opts, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hoppexp: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("[%s finished in %.1fs]\n\n", id, time.Since(start).Seconds())
		}
		return
	}

	// Parallel mode: experiments are independent and deterministic, so
	// they run concurrently; output is buffered and printed in order.
	type result struct {
		out bytes.Buffer
		err error
		dur time.Duration
	}
	results := make([]result, len(ids))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i].err = hopp.RunExperiment(id, opts, &results[i].out)
			results[i].dur = time.Since(start)
		}(i, id)
	}
	wg.Wait()
	for i, id := range ids {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "hoppexp: %s: %v\n", id, results[i].err)
			os.Exit(1)
		}
		os.Stdout.Write(results[i].out.Bytes())
		fmt.Printf("[%s finished in %.1fs]\n\n", id, results[i].dur.Seconds())
	}
}
