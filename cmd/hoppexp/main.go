// Command hoppexp regenerates the paper's tables and figures.
//
// Usage:
//
//	hoppexp -list                 # show every experiment ID
//	hoppexp -exp fig9             # regenerate one table/figure
//	hoppexp -exp all              # regenerate everything (minutes)
//	hoppexp -exp fig9 -quick      # ~4x smaller workloads
//	hoppexp -exp fig9 -seed 42    # different randomness
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"hopp"
	"hopp/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "", "experiment ID (breakdown, table2..table5, fig1..fig22) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "shrink workloads ~4x")
		seed     = flag.Int64("seed", 1, "randomness seed")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (output order preserved)")
	)
	flag.Parse()

	if *list {
		printExperiments(os.Stdout)
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "hoppexp: missing -exp; available experiments:")
		printExperiments(os.Stderr)
		return 2
	}

	opts := hopp.ExperimentOptions{Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range hopp.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	if !*parallel {
		for _, id := range ids {
			start := time.Now()
			if err := hopp.RunExperiment(id, opts, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hoppexp: %s: %v\n", id, err)
				return 1
			}
			fmt.Printf("[%s finished in %.1fs]\n\n", id, time.Since(start).Seconds())
		}
		return 0
	}

	// Parallel mode: experiments are independent and deterministic, so
	// they fan out over the service worker pool; output is buffered per
	// experiment and printed in submission order.
	type result struct {
		out bytes.Buffer
		err error
		dur time.Duration
	}
	results := make([]result, len(ids))
	pool := service.NewPool(0)
	for i, id := range ids {
		if err := pool.Submit(func() {
			start := time.Now()
			results[i].err = hopp.RunExperiment(id, opts, &results[i].out)
			results[i].dur = time.Since(start)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "hoppexp: %s: %v\n", id, err)
			return 1
		}
	}
	pool.Close() // drains: every submitted experiment has finished
	for i, id := range ids {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "hoppexp: %s: %v\n", id, results[i].err)
			return 1
		}
		os.Stdout.Write(results[i].out.Bytes())
		fmt.Printf("[%s finished in %.1fs]\n\n", id, results[i].dur.Seconds())
	}
	return 0
}

func printExperiments(w *os.File) {
	for _, e := range hopp.Experiments() {
		fmt.Fprintf(w, "  %-8s %s\n", e.ID, e.Title)
	}
}
