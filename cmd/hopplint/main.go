// Command hopplint runs the repo's determinism lint (internal/lint)
// over the module. It is stdlib-only — go/parser and go/types with the
// source importer — so the gate needs nothing beyond the toolchain.
//
// Usage:
//
//	hopplint ./...            # every package of the enclosing module
//	hopplint ./internal/sim   # specific package directories
//	hopplint -json ./...      # findings as NDJSON for tooling
//
// Diagnostics print as "file:line: analyzer: message" (the byte-stable
// format CI's problem matcher parses); with -json each finding is one
// JSON object per line: {"file","line","col","analyzer","message"}.
// The exit status is 1 when any finding survives, 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hopp/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("hopplint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as NDJSON ({file,line,col,analyzer,message}) instead of text")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hopplint [-json] ./... | hopplint [-json] <package-dir>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hopplint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hopplint: %v\n", err)
		os.Exit(2)
	}

	var pkgs []*lint.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintf(os.Stderr, "hopplint: %v\n", err)
				os.Exit(2)
			}
			pkgs = append(pkgs, all...)
		default:
			dir, err := filepath.Abs(arg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hopplint: %v\n", err)
				os.Exit(2)
			}
			p, err := loader.LoadPackage(dir, importPathFor(loader, root, dir))
			if err != nil {
				fmt.Fprintf(os.Stderr, "hopplint: %v\n", err)
				os.Exit(2)
			}
			pkgs = append(pkgs, p)
		}
	}

	diags := lint.Check(pkgs)
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		if *jsonOut {
			err := enc.Encode(jsonFinding{
				File:     name,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "hopplint: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Printf("%s:%d: %s: %s\n", name, d.Pos.Line, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hopplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonFinding is the NDJSON shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// importPathFor maps a directory to its module import path when it sits
// inside the module, or a synthetic path (its cleaned argument) when it
// does not — fixture packages under testdata load either way.
func importPathFor(l *lint.Loader, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	if rel == "." {
		return l.Module()
	}
	return l.Module() + "/" + filepath.ToSlash(rel)
}
