// Multi-tenant: run two applications on one machine, each in its own
// cgroup at 50% of its footprint (the Fig. 15 setup). Because the MC's
// hot page records carry the PID, HoPP trains per-application streams
// without cross-talk — both tenants keep their speedup.
package main

import (
	"fmt"
	"log"
	"sort"

	"hopp"
)

func main() {
	newPair := func() []hopp.Workload {
		return []hopp.Workload{
			hopp.Workloads.OMPKMeans(2048, 3),
			hopp.Workloads.Quicksort(2048),
		}
	}

	run := func(sys hopp.System) hopp.Metrics {
		m, err := hopp.NewMachine(hopp.Config{
			System:          sys,
			LocalMemoryFrac: 0.5,
			Seed:            1,
		}, newPair()...)
		if err != nil {
			log.Fatal(err)
		}
		met, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		return met
	}

	fast := run(hopp.Fastswap())
	hp := run(hopp.HoPP())

	fmt.Println("two tenants, each cgroup-limited to 50% of its own footprint")
	fmt.Printf("%-12s %14s %14s %10s\n", "tenant", "Fastswap CT", "HoPP CT", "speedup")
	names := make([]string, 0, len(fast.PerApp))
	for name := range fast.PerApp { //hopplint:sorted collected names are sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ctF, ctH := fast.PerApp[name], hp.PerApp[name]
		fmt.Printf("%-12s %14v %14v %9.1f%%\n", name, ctF, ctH,
			(1-float64(ctH)/float64(ctF))*100)
	}
	fmt.Printf("\nmachine completion: Fastswap %v, HoPP %v\n",
		fast.CompletionTime, hp.CompletionTime)
	fmt.Printf("HoPP trained on %d PID-tagged hot pages; injected %d pages fault-free\n",
		hp.HotPagesEmitted, hp.InjectedHits)
}
