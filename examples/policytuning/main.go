// Policy tuning: explore the prefetch policy engine's two knobs
// (§III-E) on a volatile network. With heavy fabric jitter, a fixed
// prefetch offset is either too timid (pages arrive late) or too eager
// (pages sit idle and pollute memory); the adaptive controller steers
// i between T_min and T_max and lands near the best fixed setting
// without knowing the network in advance — the Fig. 22 timeliness story.
package main

import (
	"fmt"
	"log"

	"hopp"
	"hopp/internal/rdma"
	"hopp/internal/vclock"
)

func run(sys hopp.System) hopp.Metrics {
	m, err := hopp.NewMachine(hopp.Config{
		System:          sys,
		LocalMemoryFrac: 0.5,
		Seed:            1,
		// A congested, jittery fabric: base latency 8 µs ± 100%.
		Fabric: rdma.Config{
			BaseLatency: 8 * vclock.Microsecond,
			JitterFrac:  1.0,
			Seed:        1,
		},
	}, hopp.Workloads.AddUp(2, 2048))
	if err != nil {
		log.Fatal(err)
	}
	met, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return met
}

func fixedOffset(offset float64, intensity int) hopp.System {
	p := hopp.DefaultParams()
	p.Policy.Adaptive = false
	p.Policy.InitialOffset = offset
	p.Policy.Intensity = intensity
	sys := hopp.HoPPWith(p)
	sys.Name = fmt.Sprintf("offset=%g,k=%d", offset, intensity)
	return sys
}

func adaptive(intensity int) hopp.System {
	p := hopp.DefaultParams()
	p.Policy.Intensity = intensity
	sys := hopp.HoPPWith(p)
	sys.Name = fmt.Sprintf("adaptive,k=%d", intensity)
	return sys
}

func main() {
	fmt.Println("volatile fabric (8 µs ± 100% jitter), 2-thread add-up workload")
	fmt.Printf("%-16s %14s %10s %10s %12s\n", "policy", "completion", "coverage", "late hits", "mean lead")
	for _, sys := range []hopp.System{
		fixedOffset(1, 1),
		fixedOffset(8, 1),
		fixedOffset(64, 1),
		fixedOffset(512, 1),
		adaptive(1),
		adaptive(2), // higher intensity: 2 pages per hot page
	} {
		met := run(sys)
		fmt.Printf("%-16s %14v %10.3f %10d %12v\n",
			sys.Name, met.CompletionTime, met.Coverage(), met.LateHits, met.MeanLead)
	}
	fmt.Println("\nThe adaptive controller raises i when pages arrive barely in time")
	fmt.Println("(lead < T_min = 40µs) and lowers it when pages idle past T_max = 5ms.")
}
