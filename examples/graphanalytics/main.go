// Graph analytics: sweep the four GraphX algorithms (the paper's 33 GB
// Spark workloads, scaled) across all five systems at the paper's
// one-third memory limit — a compact reproduction of the Fig. 12–14
// story: JVM-staged memory defeats fault-history prefetchers, while
// HoPP's full-trace training keeps its accuracy above 90%.
package main

import (
	"fmt"
	"log"

	"hopp"
)

func main() {
	systems := []hopp.System{
		hopp.Fastswap(), hopp.Leap(), hopp.DepthN(32), hopp.HoPP(),
	}
	algos := []string{"BFS", "CC", "PR", "LP"}

	fmt.Printf("%-12s", "algorithm")
	for _, s := range systems {
		fmt.Printf(" %20s", s.Name)
	}
	fmt.Println("\n             (normalized performance / prefetcher accuracy)")

	for _, algo := range algos {
		gen := hopp.Workloads.GraphX(algo, 768)
		cmp, err := hopp.Compare(gen, 1.0/3, 1, systems...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", "GraphX-"+algo)
		for i, met := range cmp.Results {
			fmt.Printf("        %.3f / %.3f", cmp.Normalized(i), met.PrefetcherAccuracy())
		}
		fmt.Println()
	}

	fmt.Println("\nExpected shape (paper Figs. 12-14): HoPP has the best normalized")
	fmt.Println("performance and >0.9 accuracy; Leap suffers from interleaved fault")
	fmt.Println("history; Depth-N wastes bandwidth on the irregular gather traffic.")
}
