// Quickstart: run one workload under Fastswap and HoPP with half its
// working set disaggregated, and print the headline comparison — the
// smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"hopp"
)

func main() {
	// A K-means-style scan workload: 12 MB of points, 3 iterations.
	gen := hopp.Workloads.OMPKMeans(3072, 3)

	// Compare runs the workload with all memory local (the CT_local
	// baseline), then under each system with the cgroup limited to 50%
	// of the footprint.
	cmp, err := hopp.Compare(gen, 0.5, 1, hopp.Fastswap(), hopp.HoPP())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, footprint %d pages, local baseline %v\n\n",
		cmp.Workload, gen.FootprintPages(), cmp.Local.CompletionTime)
	fmt.Printf("%-10s %12s %10s %10s %10s\n", "system", "completion", "normperf", "accuracy", "coverage")
	for i, met := range cmp.Results {
		fmt.Printf("%-10s %12v %10.3f %10.3f %10.3f\n",
			met.System, met.CompletionTime, cmp.Normalized(i),
			met.PrefetcherAccuracy(), met.Coverage())
	}

	hoppMet, _ := cmp.Find("HoPP")
	fastMet, _ := cmp.Find("Fastswap")
	fmt.Printf("\nHoPP speedup over Fastswap: %.1f%%\n", hoppMet.SpeedupOver(fastMet)*100)
	fmt.Printf("HoPP page faults avoided:   %d of %d demand requests became DRAM hits\n",
		hoppMet.InjectedHits, hoppMet.MajorFaults+hoppMet.PrefetchHits())
}
