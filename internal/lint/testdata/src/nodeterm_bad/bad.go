// Package sim (fixture) violates every nodeterm rule: wall-clock reads,
// the global math/rand source, rand.Seed, and environment reads inside
// a deterministic package.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock twice.
func Stamp() int64 {
	start := time.Now()
	return int64(time.Since(start))
}

// Roll consumes the process-global rand source.
func Roll() int {
	rand.Seed(42)
	return rand.Intn(6) + int(rand.Int63()%3)
}

// Tuned reads configuration from the environment.
func Tuned() string {
	if v, ok := os.LookupEnv("HOPP_TUNE"); ok {
		return v
	}
	return os.Getenv("HOPP_DEFAULT")
}

// Ticks schedules timers on the wall clock.
func Ticks() {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	k := time.NewTicker(time.Second)
	defer k.Stop()
	<-time.After(time.Second)
}

// Baked reads a path invisible to the cache key: no parameter feeds it.
func Baked() ([]byte, error) {
	return os.ReadFile("/etc/hopp/trace.bin")
}
