// Package core (fixture) follows the context rules: ctx first, never
// stored.
package core

import "context"

// Engine keeps no context in its state.
type Engine struct {
	name string
}

// Run threads its context as the first parameter.
func Run(ctx context.Context, name string) error {
	return ctx.Err()
}

// Plain functions without contexts are untouched.
func Plain(a, b int) int { return a + b }
