// Package service (fixture) drops errors on the floor: plain discards,
// a double-blank discard, and a waiver with no reason.
package service

import (
	"io"
	"strconv"
)

// Flush discards a plain error return.
func Flush(c io.Closer) {
	_ = c.Close()
}

// Parse discards a (value, error) pair wholesale.
func Parse(s string) {
	_, _ = strconv.Atoi(s)
}

// Lazy waives without saying why — still a finding.
func Lazy(c io.Closer) {
	_ = c.Close() //hopplint:errok
}
