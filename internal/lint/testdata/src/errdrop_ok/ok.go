// Package service (fixture) handles or audibly waives every error.
package service

import (
	"io"
	"strconv"
)

// Close propagates the error.
func Close(c io.Closer) error {
	return c.Close()
}

// Best-effort discard with a stated reason is accepted.
func Cleanup(c io.Closer) {
	_ = c.Close() //hopplint:errok best-effort teardown, nothing to report to
}

// Keeping the value while discarding the error is outside this
// analyzer's shape (the value is used, the intent is visible).
func Numeric(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

// Discarding a non-error return is fine.
func Length(s string) {
	_ = len(s)
}
