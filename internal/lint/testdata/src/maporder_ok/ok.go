// Package experiments (fixture) ranges maps only in order-insensitive
// ways, or under an audited //hopplint:sorted waiver.
package experiments

import "sort"

// SortedKeys collects then sorts — the append is waived because the
// sort erases iteration order.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //hopplint:sorted
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Total folds a map commutatively; no ordered output, no waiver needed.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert writes only into another map; insertion order is irrelevant.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
