// Package sim (fixture) stays clean: seeded generators are the
// sanctioned randomness, rand types in signatures are fine, and the
// same calls are unrestricted outside the deterministic set (see the
// service fixture below in this package's tests).
package sim

import (
	"math/rand"
	"os"
)

// Jitter derives randomness from an explicit seed.
func Jitter(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Draw takes a caller-owned generator; *rand.Rand in a signature is a
// type reference, not a use of the global source.
func Draw(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// Load reads a path the caller supplies; parameter-derived file input
// is the sanctioned form.
func Load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// LoadRel joins a parameter with a constant — still parameter-derived.
func LoadRel(dir string) ([]byte, error) {
	return os.ReadFile(dir + "/trace.bin")
}
