// Package service (fixture) commits every liveness sin lockheld
// tracks: blocking channel operations, file I/O, and transitively
// blocking helper calls under a held mutex, plus a lock pair acquired
// in both orders.
package service

import (
	"os"
	"sync"
)

// Engine holds two locks and a channel.
type Engine struct {
	mu    sync.Mutex
	regMu sync.Mutex
	ch    chan int
}

// Send blocks on a channel send while holding mu.
func (e *Engine) Send(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ch <- v
}

// Recv blocks on a channel receive while holding mu.
func (e *Engine) Recv() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return <-e.ch
}

// Persist does file I/O while holding mu.
func (e *Engine) Persist(path string, b []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return os.WriteFile(path, b, 0o644)
}

// Park waits in a select with no default while holding mu.
func (e *Engine) Park(done chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case <-done:
	case v := <-e.ch:
		_ = v
	}
}

// flush blocks transitively; Drain calls it under the lock.
func (e *Engine) flush(path string) error {
	return os.WriteFile(path, nil, 0o600)
}

// Drain calls a transitively blocking helper while holding mu.
func (e *Engine) Drain(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flush(path)
}

// LockAB and LockBA acquire the pair in opposite orders — the ABBA
// deadlock lockheld reports at both first sites.
func (e *Engine) LockAB() {
	e.mu.Lock()
	e.regMu.Lock()
	e.regMu.Unlock()
	e.mu.Unlock()
}

// LockBA is the reverse order of LockAB.
func (e *Engine) LockBA() {
	e.regMu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	e.regMu.Unlock()
}

// Bare carries a lockok with no reason: that is its own finding.
func (e *Engine) Bare(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//hopplint:lockok
	e.ch <- v
}
