// Package cachesim (fixture) plants one of every allocation class
// hotalloc tracks on an annotated hot path: the golden test proves a
// deliberately planted heap allocation in a cache hot path cannot slip
// past the analyzer.
package cachesim

import "fmt"

type counter interface{ Inc() }

// Cache is the planted hot structure.
type Cache struct {
	lines []uint64
	sink  counter
	names map[uint64]string
}

type tick struct{ n int }

// Inc satisfies counter.
func (t *tick) Inc() { t.n++ }

// Access is the planted hot root; each construct below is one finding.
//
//hopplint:hotpath
func (c *Cache) Access(addr uint64) bool {
	buf := make([]uint64, 4)
	c.lines = append(c.lines, addr)
	m := map[uint64]bool{addr: true}
	f := func() uint64 { return addr }
	label := fmt.Sprintf("%d", addr)
	box(addr)
	c.slow(addr)
	c.warm(addr)
	return len(buf) > 0 && m[addr] && f() == addr && label != "" && addr != 0
}

// slow is not annotated but reachable from Access: still scanned.
func (c *Cache) slow(addr uint64) {
	t := &tick{}
	c.sink = t
	c.names[addr] = "line-" + c.names[addr]
}

// warm carries one audited waiver (suppressed) and one bare waiver (a
// finding of its own).
func (c *Cache) warm(addr uint64) {
	//hopplint:allocok fixture: amortized warmup growth, audited
	c.lines = append(c.lines, addr)
	//hopplint:allocok
	c.lines = append(c.lines, addr+1)
}

// Rebuild allocates freely: it is not reachable from any hot root.
func (c *Cache) Rebuild(n int) {
	c.lines = make([]uint64, 0, n)
	c.names = make(map[uint64]string, n)
}

// box forces interface boxing of its argument.
func box(v any) { _ = v }
