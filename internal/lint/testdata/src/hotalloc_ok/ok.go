// Package cachesim (fixture) shows the sanctioned hot-path shape: flat
// state, caller-owned buffers, panics allowed to format, and free
// allocation in functions no hot root reaches.
package cachesim

// Table is flat state; its hot path touches no heap.
type Table struct {
	slots []uint64
}

// Access is hot and allocation-free.
//
//hopplint:hotpath
func (t *Table) Access(addr uint64) bool {
	if len(t.slots) == 0 {
		panic("cachesim: Access before Rebuild(" + string(rune(len(t.slots))) + ")")
	}
	i := int(addr) % len(t.slots)
	hit := t.slots[i] == addr
	t.slots[i] = addr
	return hit
}

// DrainInto appends into a caller-owned buffer under an audited waiver.
//
//hopplint:hotpath
func (t *Table) DrainInto(buf []uint64) []uint64 {
	for _, s := range t.slots {
		//hopplint:allocok fixture: caller-owned buffer, capacity reused across drains
		buf = append(buf, s)
	}
	return buf
}

// Rebuild allocates freely: it is not reachable from any hot root.
func (t *Table) Rebuild(n int) {
	t.slots = make([]uint64, n)
}
