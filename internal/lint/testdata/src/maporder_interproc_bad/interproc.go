// Package experiments (fixture): ordered output hidden behind helper
// calls — the hole the call-graph summaries close. None of these range
// bodies writes or appends directly; every hazard is one to two calls
// deep.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report ranges a map and calls a helper that formats through two
// levels — invisible to a purely syntactic check.
func Report(w io.Writer, rows map[string]int) {
	for name, n := range rows {
		emit(w, name, n)
	}
}

func emit(w io.Writer, name string, n int) {
	line(w, name, n)
}

func line(w io.Writer, name string, n int) {
	fmt.Fprintf(w, "%s=%d\n", name, n)
}

// Collect ranges a map and calls a helper that appends to an escaping
// slice (the caller's buffer).
func Collect(rows map[string]int, out []string) []string {
	for name := range rows {
		out = push(out, name)
	}
	return out
}

func push(out []string, s string) []string {
	return append(out, s)
}

// Sorted uses the same escaping helper but sorts afterwards — waived,
// and the waiver is consumed (not stale).
func Sorted(rows map[string]int, out []string) []string {
	//hopplint:sorted result is sorted below before any caller sees it
	for name := range rows {
		out = push(out, name)
	}
	sort.Strings(out)
	return out
}

// Inline ranges a map into a strings.Builder through a helper.
func Inline(rows map[string]int) string {
	var sb strings.Builder
	for name := range rows {
		describe(&sb, name)
	}
	return sb.String()
}

func describe(sb *strings.Builder, name string) {
	sb.WriteString(name)
}

// Tally stays clean: the helper it calls only reduces into a local.
func Tally(rows map[string]int) int {
	total := 0
	for _, n := range rows {
		total += double(n)
	}
	return total
}

func double(n int) int { return 2 * n }
