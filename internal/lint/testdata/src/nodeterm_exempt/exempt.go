// Package service (fixture) sits outside the deterministic set, so
// wall clocks and environment reads are its business.
package service

import (
	"os"
	"time"
)

// Uptime is allowed to read the wall clock: the service layer owns
// wall time.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Addr is allowed to read the environment.
func Addr() string {
	return os.Getenv("HOPPD_ADDR")
}

// Now is allowed here.
func Now() time.Time { return time.Now() }
