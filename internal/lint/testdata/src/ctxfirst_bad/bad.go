// Package core (fixture) breaks both context rules: contexts after
// other parameters, and a context stored in deterministic-package
// state.
package core

import "context"

// Engine stores a context in a struct inside a deterministic package.
type Engine struct {
	name string
	ctx  context.Context
}

// Run takes its context second.
func Run(name string, ctx context.Context) error {
	return ctx.Err()
}

// Sweep hides the misplaced context in a function literal.
func Sweep() func(int, context.Context) {
	return func(n int, ctx context.Context) {}
}
