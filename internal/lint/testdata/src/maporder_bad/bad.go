// Package experiments (fixture) emits ordered output from map ranges —
// every loop here produces different bytes run to run.
package experiments

import (
	"bytes"
	"fmt"
	"io"
)

// Keys collects map keys in iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Render formats rows in iteration order.
func Render(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Dump writes to a buffer in iteration order.
func Dump(m map[string]bool) string {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k)
	}
	return buf.String()
}

// GenericKeys ranges a type parameter constrained to maps; the analyzer
// sees through the constraint.
func GenericKeys[M ~map[string]V, V any](m M) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
