// Package service (fixture): every waiver below excuses nothing and is
// reported by stalewaiver; the one consumed waiver in Drop stays
// silent.
package service

// Tidy returns an error the callers below handle or discard.
func Tidy() error { return nil }

// Run handles the error; the errok above the call is dead.
func Run() error {
	//hopplint:errok leftover from a removed discard
	err := Tidy()
	return err
}

// Drop discards under an audited waiver — consumed, not stale.
func Drop() {
	//hopplint:errok fixture: the result is irrelevant here
	_ = Tidy()
}

// Keys carries a sorted waiver on a range with no ordered-output
// hazard at all.
func Keys(m map[string]int) int {
	total := 0
	//hopplint:sorted nothing here emits ordered output
	for _, v := range m {
		total += v
	}
	return total
}

// Quiet carries a lockok where nothing blocks.
func Quiet() int {
	//hopplint:lockok nothing blocks here
	x := 1
	return x
}

// Sentinel carries an allocok on a declaration no hot path reaches.
//
//hopplint:allocok this line waives no allocation
var Sentinel = 7

// NotARoot carries a hotpath annotation on something that is not a
// function declaration, so no analyzer ever reads it.
//
//hopplint:hotpath
var NotARoot = 1
