// Package service (fixture) shows the sanctioned lock discipline:
// condvar waits (which release the mutex), I/O moved outside the
// critical section, branch-local unlocks, a consistent nesting order,
// and an audited waiver on a send that provably cannot block.
package service

import (
	"os"
	"sync"
)

// Pool is the condvar-worker shape pool.go uses on the real tree.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []func()
}

// Worker waits on the condvar under the lock — sync.Cond.Wait releases
// the mutex while parked, so it is not a blocking op under the lock.
func (p *Pool) Worker() {
	p.mu.Lock()
	for len(p.q) == 0 {
		p.cond.Wait()
	}
	job := p.q[0]
	p.q = p.q[1:]
	p.mu.Unlock()
	job()
}

// Snapshot copies under the lock and does the I/O after releasing it.
func (p *Pool) Snapshot(path string) error {
	p.mu.Lock()
	n := len(p.q)
	p.mu.Unlock()
	return os.WriteFile(path, []byte{byte(n)}, 0o644)
}

// Registry nests the pool lock under its own in one consistent order;
// nesting alone is not a finding.
type Registry struct {
	mu   sync.Mutex
	pool *Pool
}

// Flush acquires mu then pool.mu, the only order in this package.
func (r *Registry) Flush(path string) error {
	r.mu.Lock()
	r.pool.mu.Lock()
	n := len(r.pool.q)
	r.pool.mu.Unlock()
	if n == 0 {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	return os.WriteFile(path, []byte{byte(n)}, 0o644)
}

// Notify sends to a buffered ready channel under an audited waiver.
type Notifier struct {
	mu    sync.Mutex
	ready chan int // buffered to the maximum outstanding count
}

// Mark signals readiness; the channel is sized so the send never blocks.
func (n *Notifier) Mark(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//hopplint:lockok fixture: ready is buffered to the outstanding bound; the send cannot block
	n.ready <- v
}
