// Package lint is hopplint: repo-specific static analysis that makes
// the simulator's determinism contract machine-checked. Every table,
// figure, hot-page trace, and hoppd cache entry this reproduction
// produces is only trustworthy because equal (workload, system, frac,
// seed) inputs yield equal bytes; these analyzers fail the build on the
// constructs that silently break that property.
//
// Seven analyzers run over every non-test package of the module:
//
//   - nodeterm: inside the deterministic packages (the simulation core,
//     see DeterministicPackages), forbids wall-clock reads (time.Now,
//     time.Since, the timer constructors), the global math/rand source
//     (package-level rand functions and rand.Seed; seeded
//     rand.New(rand.NewSource(...)) is the sanctioned form),
//     environment reads (os.Getenv and friends), os.ReadFile/os.Open of
//     paths not derived from a parameter, and calls into
//     non-deterministic module packages that transitively read the wall
//     clock. The service and cmd layers are exempt: wall time is their
//     job.
//   - maporder: flags `range` over a map whose body emits ordered
//     output — appending to an escaping slice, writing to an io.Writer,
//     or formatting — directly or through any chain of module helper
//     calls (the call-graph summaries see through helpers). Audited
//     sites that sort afterwards carry a //hopplint:sorted waiver.
//   - ctxfirst: a context.Context parameter must come first, and the
//     deterministic packages must not store contexts in struct fields.
//   - errdrop: forbids `_ =` discards of error-returning calls; audited
//     discards carry //hopplint:errok <reason>.
//   - hotalloc: from a declared hot-path root set (functions annotated
//     //hopplint:hotpath, plus HotPathRoots), every reachable module
//     function is scanned for allocation-inducing constructs: make/new,
//     map/slice literals, closures, append growth, string
//     concatenation, interface boxing at call sites, and fmt/strconv
//     formatting. Audited sites carry //hopplint:allocok <reason>.
//   - lockheld: flags operations that can block — channel sends and
//     receives, selects without default, file and network I/O, calls
//     whose transitive summary blocks — while a sync.Mutex/RWMutex is
//     held, plus lock-order inversions (lock pairs acquired in both
//     orders anywhere in the module). Audited sites carry
//     //hopplint:lockok <reason>.
//   - stalewaiver: any //hopplint waiver comment that suppresses zero
//     findings is itself reported, so the waiver set cannot rot.
//
// The interprocedural analyzers ride a module-wide static call graph
// (callgraph.go) with per-function summaries (summaries.go): allocates,
// writes-ordered-output, blocks, reads-wall-clock, and the set of locks
// acquired. Edges and findings are deterministically ordered, so golden
// tests are byte-stable across runs.
//
// The driver is cmd/hopplint; scripts/check.sh runs it as a hard gate.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// DeterministicPackages names the packages whose outputs must be a pure
// function of their inputs — the simulation core and everything it is
// built from. Matching is by package name: these are exactly the leaf
// names under internal/, and the service/cmd layers (package service,
// package main) are deliberately absent.
var DeterministicPackages = map[string]bool{
	"sim":         true,
	"workload":    true,
	"experiments": true,
	"hpd":         true,
	"mc":          true,
	"rpt":         true,
	"memsim":      true,
	"cachesim":    true,
	"proto":       true,
	"hmtt":        true,
	"prefetch":    true,
	"vmm":         true,
	"vclock":      true,
	"core":        true,
	// The open-addressing table under the executor/rdma/prefetcher hot
	// paths is pure data structure; it must stay free of clocks and
	// global randomness like everything else the simulator is built on.
	"flatmap": true,
	// The fault injector must itself be deterministic — seeded rules, no
	// wall clock — or the failures it injects wouldn't replay.
	"faults": true,
}

// HotPathRoots names additional hot-path root functions for the
// hotalloc analyzer by their qualified name (types.Func.FullName form,
// e.g. "(*hopp/internal/cachesim.Cache).Access"). The primary mechanism
// is the //hopplint:hotpath annotation on the function declaration
// itself — this list exists for roots whose source cannot carry the
// annotation. It is empty for the repo's own tree.
var HotPathRoots []string

// waiverDirectives lists every //hopplint:<name> directive the
// analyzers consult. stalewaiver reports any occurrence of these that
// suppressed nothing; a directive name outside this list is simply
// ignored (and therefore never stale).
var waiverDirectives = []string{"errok", "sorted", "allocok", "lockok", "hotpath"}

// Diagnostic is one finding, formatted as "file:line: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic with the full position path.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Module is the unit the analyzers run over: the loaded packages plus
// the static call graph and per-function summaries spanning them. A
// Module built from a single fixture package works exactly like one
// built from the whole repo — cross-package edges simply resolve only
// within the packages present.
type Module struct {
	Pkgs  []*Package
	Graph *CallGraph
}

// NewModule assembles the call graph and computes summaries once; every
// analyzer then reads the shared result.
func NewModule(pkgs []*Package) *Module {
	for _, p := range pkgs {
		p.resetWaiverUse() // summary computation already consumes lockok waivers
	}
	g := buildCallGraph(pkgs)
	computeSummaries(g)
	return &Module{Pkgs: pkgs, Graph: g}
}

// Analyzer is one named pass over a module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Module) []Diagnostic
}

// Analyzers returns every hopplint analyzer in fixed order. The order
// is load-bearing in one place: StaleWaiver must run last, because it
// reports the waiver comments the earlier analyzers did not consume.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterm,
		MapOrder,
		CtxFirst,
		ErrDrop,
		HotAlloc,
		LockHeld,
		StaleWaiver,
	}
}

// Check runs every analyzer over the packages as one module and returns
// the combined findings sorted by position then analyzer, ready to
// print.
func Check(pkgs []*Package) []Diagnostic {
	m := NewModule(pkgs)
	var diags []Diagnostic
	for _, a := range Analyzers() {
		diags = append(diags, a.Run(m)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
