// Package lint is hopplint: repo-specific static analysis that makes
// the simulator's determinism contract machine-checked. Every table,
// figure, hot-page trace, and hoppd cache entry this reproduction
// produces is only trustworthy because equal (workload, system, frac,
// seed) inputs yield equal bytes; these analyzers fail the build on the
// constructs that silently break that property.
//
// Four analyzers run over every non-test package of the module:
//
//   - nodeterm: inside the deterministic packages (the simulation core,
//     see DeterministicPackages), forbids wall-clock reads (time.Now,
//     time.Since), the global math/rand source (package-level rand
//     functions and rand.Seed; seeded rand.New(rand.NewSource(...)) is
//     the sanctioned form), and environment reads (os.Getenv and
//     friends). The service and cmd layers are exempt: wall time is
//     their job.
//   - maporder: flags `range` over a map whose body appends to a slice,
//     writes to an io.Writer, or formats output — the classic
//     nondeterministic-output hazard. Audited sites that sort afterwards
//     carry a //hopplint:sorted waiver.
//   - ctxfirst: a context.Context parameter must come first, and the
//     deterministic packages must not store contexts in struct fields
//     (a stored context couples pure simulation state to request
//     lifetime).
//   - errdrop: forbids `_ =` discards of error-returning calls; audited
//     discards carry //hopplint:errok <reason>.
//
// The driver is cmd/hopplint; scripts/check.sh runs it as a hard gate.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// DeterministicPackages names the packages whose outputs must be a pure
// function of their inputs — the simulation core and everything it is
// built from. Matching is by package name: these are exactly the leaf
// names under internal/, and the service/cmd layers (package service,
// package main) are deliberately absent.
var DeterministicPackages = map[string]bool{
	"sim":         true,
	"workload":    true,
	"experiments": true,
	"hpd":         true,
	"mc":          true,
	"rpt":         true,
	"memsim":      true,
	"cachesim":    true,
	"proto":       true,
	"hmtt":        true,
	"swap":        true,
	"vmm":         true,
	"vclock":      true,
	"core":        true,
	// The fault injector must itself be deterministic — seeded rules, no
	// wall clock — or the failures it injects wouldn't replay.
	"faults": true,
}

// Diagnostic is one finding, formatted as "file:line: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic with the full position path.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// Analyzers returns every hopplint analyzer in fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterm,
		MapOrder,
		CtxFirst,
		ErrDrop,
	}
}

// Check runs every analyzer over every package and returns the combined
// findings sorted by position then analyzer, ready to print.
func Check(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, a := range Analyzers() {
			diags = append(diags, a.Run(p)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
