package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the golden files from current analyzer output.
var update = flag.Bool("update", false, "rewrite golden files")

// loadFixture type-checks one fixture package under testdata/src. The
// fixture's package clause (sim, experiments, core, service) decides
// deterministic-package treatment, exactly as it does on the real tree.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadPackage(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return p
}

// render formats diagnostics the way cmd/hopplint prints them, with
// file names reduced to their base so goldens are location-independent.
func render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%d: %s: %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
	}
	return sb.String()
}

// checkGolden compares analyzer output over a fixture with its golden
// transcript.
func checkGolden(t *testing.T, a *Analyzer, fixture, golden string) {
	t.Helper()
	p := loadFixture(t, fixture)
	got := render(Check([]*Package{p}))
	// Filter to the analyzer under test so fixtures stay focused even
	// when a construct trips a second analyzer incidentally.
	var kept []string
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, ": "+a.Name+": ") {
			kept = append(kept, line)
		}
	}
	got = strings.Join(kept, "\n")
	if len(kept) > 0 {
		got += "\n"
	}

	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s: %v (run `go test ./internal/lint -update` to create)", golden, err)
	}
	if got != string(want) {
		t.Errorf("%s over %s:\n--- got ---\n%s--- want ---\n%s", a.Name, fixture, got, want)
	}
}

// expectClean asserts an analyzer reports nothing over a fixture.
func expectClean(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	p := loadFixture(t, fixture)
	if diags := a.Run(NewModule([]*Package{p})); len(diags) > 0 {
		t.Errorf("%s over %s: want no findings, got:\n%s", a.Name, fixture, render(diags))
	}
}

func TestNoDetermFindsViolations(t *testing.T) {
	checkGolden(t, NoDeterm, "nodeterm_bad", "nodeterm.golden")
}

func TestNoDetermAcceptsSeededRand(t *testing.T) {
	expectClean(t, NoDeterm, "nodeterm_ok")
}

func TestNoDetermExemptsServiceLayer(t *testing.T) {
	expectClean(t, NoDeterm, "nodeterm_exempt")
}

func TestMapOrderFindsViolations(t *testing.T) {
	checkGolden(t, MapOrder, "maporder_bad", "maporder.golden")
}

func TestMapOrderAcceptsWaivedAndUnordered(t *testing.T) {
	expectClean(t, MapOrder, "maporder_ok")
}

func TestCtxFirstFindsViolations(t *testing.T) {
	checkGolden(t, CtxFirst, "ctxfirst_bad", "ctxfirst.golden")
}

func TestCtxFirstAcceptsThreadedContext(t *testing.T) {
	expectClean(t, CtxFirst, "ctxfirst_ok")
}

func TestErrDropFindsViolations(t *testing.T) {
	checkGolden(t, ErrDrop, "errdrop_bad", "errdrop.golden")
}

func TestErrDropAcceptsHandledAndWaived(t *testing.T) {
	expectClean(t, ErrDrop, "errdrop_ok")
}

func TestHotAllocFindsPlantedAllocations(t *testing.T) {
	checkGolden(t, HotAlloc, "hotalloc_bad", "hotalloc.golden")
}

func TestHotAllocAcceptsCleanHotPath(t *testing.T) {
	expectClean(t, HotAlloc, "hotalloc_ok")
}

func TestLockHeldFindsBlockingUnderLock(t *testing.T) {
	checkGolden(t, LockHeld, "lockheld_bad", "lockheld.golden")
}

func TestLockHeldAcceptsDiscipline(t *testing.T) {
	expectClean(t, LockHeld, "lockheld_ok")
}

func TestMapOrderSeesThroughHelpers(t *testing.T) {
	checkGolden(t, MapOrder, "maporder_interproc_bad", "maporder_interproc.golden")
}

func TestStaleWaiverFindsRot(t *testing.T) {
	checkGolden(t, StaleWaiver, "stalewaiver_bad", "stalewaiver.golden")
}

// The call graph's ordering contract: three fresh load-and-build runs
// over the same module must render byte-identical DebugString output —
// nodes sorted by qualified name (init functions tie-broken by
// position), edges in source order, summary facts propagated.
func TestCallGraphDeterministicOrder(t *testing.T) {
	files := map[string]string{
		"go.mod": "module fixture.test/cg\n\ngo 1.22\n",
		"a/a.go": "package a\n\n" +
			"func Leaf() int { return 1 }\n\n" +
			"func Mid() []int { return make([]int, Leaf()) }\n",
		"b/b.go": "package b\n\n" +
			"import (\n\t\"strconv\"\n\n\t\"fixture.test/cg/a\"\n)\n\n" +
			"type T struct{ s string }\n\n" +
			"func (t *T) Bump() { t.s = strconv.Itoa(len(a.Mid())) }\n\n" +
			"var seen []int\n\n" +
			"func init() { _ = a.Leaf() }\n\n" +
			"func init() { seen = a.Mid() }\n",
	}
	root := writeModule(t, files)
	want := "(*fixture.test/cg/b.T).Bump [A]\n" +
		"  ~> strconv.Itoa\n" +
		"  -> fixture.test/cg/a.Mid\n" +
		"fixture.test/cg/a.Leaf [-]\n" +
		"fixture.test/cg/a.Mid [A]\n" +
		"  -> fixture.test/cg/a.Leaf\n" +
		"fixture.test/cg/b.init [-]\n" +
		"  -> fixture.test/cg/a.Leaf\n" +
		"fixture.test/cg/b.init [A]\n" +
		"  -> fixture.test/cg/a.Mid\n"
	for i := 0; i < 3; i++ {
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := l.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		got := NewModule(pkgs).Graph.DebugString()
		if got != want {
			t.Fatalf("run %d: call graph rendering diverged:\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}
}

// A deterministic package calling a service-layer helper that
// transitively reads the wall clock is flagged at the call site — the
// interprocedural half of nodeterm.
func TestNoDetermSeesTransitiveClockReads(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fixture.test/clk\n\ngo 1.22\n",
		"svc/svc.go": "package svc\n\n" +
			"import \"time\"\n\n" +
			"// Stamp is fine here: svc is not a deterministic package.\n" +
			"func Stamp() int64 { return time.Now().UnixNano() }\n\n" +
			"func Wrapped() int64 { return Stamp() }\n",
		"sim/sim.go": "package sim\n\n" +
			"import \"fixture.test/clk/svc\"\n\n" +
			"func Step() int64 { return svc.Wrapped() }\n",
	})
	_, findings := loadAllPaths(t, root)
	want := "sim.go:5: nodeterm: call to fixture.test/clk/svc.Wrapped reads the wall clock (transitively); deterministic packages must derive time from the virtual clock\n"
	if findings != want {
		t.Fatalf("findings:\n--- got ---\n%s--- want ---\n%s", findings, want)
	}
}

// TestRepoIsLintClean is the merge gate in test form: the whole module
// must produce zero findings. scripts/check.sh runs the same check via
// cmd/hopplint; having it here keeps `go test ./...` sufficient.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped under -short")
	}
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkgs); len(diags) > 0 {
		t.Errorf("module has %d lint finding(s):\n%s", len(diags), render(diags))
	}
}

// writeModule materializes a synthetic module on disk for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// loadAllPaths runs LoadAll on a fresh loader and returns the package
// paths in returned order plus the rendered findings.
func loadAllPaths(t *testing.T, root string) ([]string, string) {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(pkgs))
	for i, p := range pkgs {
		paths[i] = p.Path
	}
	return paths, render(Check(pkgs))
}

// The parallel loader must be invisible in the output: repeated LoadAll
// runs over a module with a dependency chain, a diamond, and unrelated
// leaves return packages in the same sorted order with byte-identical
// findings (the golden-order contract the bounded worker pool must not
// break).
func TestLoadAllParallelDeterministic(t *testing.T) {
	files := map[string]string{
		"go.mod":    "module fixture.test/m\n\ngo 1.22\n",
		"a/a.go":    "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go":    "package b\n\nimport \"fixture.test/m/a\"\n\nfunc B() int { return a.A() + 1 }\n",
		"c/c.go":    "package c\n\nimport (\n\t\"fixture.test/m/a\"\n\t\"fixture.test/m/b\"\n)\n\nfunc C() int { return a.A() + b.B() }\n",
		"d/d.go":    "package d\n\nfunc D() error { return nil }\n\nfunc Drop() {\n\t_ = D()\n}\n",
		"e/e.go":    "package e\n\nfunc E() error { return nil }\n\nfunc Drop() {\n\t_ = E()\n}\n",
		"solo/s.go": "package solo\n\nfunc S() int { return 9 }\n",
	}
	root := writeModule(t, files)
	wantPaths := []string{
		"fixture.test/m/a", "fixture.test/m/b", "fixture.test/m/c",
		"fixture.test/m/d", "fixture.test/m/e", "fixture.test/m/solo",
	}
	firstPaths, firstFindings := loadAllPaths(t, root)
	if strings.Join(firstPaths, " ") != strings.Join(wantPaths, " ") {
		t.Fatalf("LoadAll order = %v, want %v", firstPaths, wantPaths)
	}
	// The errdrop fixtures in d and e must both surface, in file order.
	if !strings.Contains(firstFindings, "d.go") || !strings.Contains(firstFindings, "e.go") {
		t.Fatalf("expected errdrop findings from d and e, got:\n%s", firstFindings)
	}
	for i := 0; i < 3; i++ {
		paths, findings := loadAllPaths(t, root)
		if strings.Join(paths, " ") != strings.Join(firstPaths, " ") {
			t.Fatalf("run %d: package order diverged: %v vs %v", i, paths, firstPaths)
		}
		if findings != firstFindings {
			t.Fatalf("run %d: findings diverged:\n--- first\n%s--- now\n%s", i, firstFindings, findings)
		}
	}
}

// An import cycle must fail LoadAll deterministically instead of
// deadlocking the topological schedule.
func TestLoadAllDetectsImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fixture.test/cyc\n\ngo 1.22\n",
		"x/x.go": "package x\n\nimport \"fixture.test/cyc/y\"\n\nfunc X() int { return y.Y() }\n",
		"y/y.go": "package y\n\nimport \"fixture.test/cyc/x\"\n\nfunc Y() int { return x.X() }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadAll(); err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("LoadAll over a cycle = %v, want import-cycle error", err)
	}
}

// A package that fails to type-check must surface its own error, not a
// confusing cascade from the packages that import it.
func TestLoadAllReportsRootFailureFirst(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":      "module fixture.test/bad\n\ngo 1.22\n",
		"broken/b.go": "package broken\n\nfunc B() int { return undefinedSymbol }\n",
		"user/u.go":   "package user\n\nimport \"fixture.test/bad/broken\"\n\nfunc U() int { return broken.B() }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadAll()
	if err == nil || !strings.Contains(err.Error(), "type-checking fixture.test/bad/broken") {
		t.Fatalf("LoadAll = %v, want the broken package's own type error", err)
	}
}
