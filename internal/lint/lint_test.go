package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the golden files from current analyzer output.
var update = flag.Bool("update", false, "rewrite golden files")

// loadFixture type-checks one fixture package under testdata/src. The
// fixture's package clause (sim, experiments, core, service) decides
// deterministic-package treatment, exactly as it does on the real tree.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadPackage(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return p
}

// render formats diagnostics the way cmd/hopplint prints them, with
// file names reduced to their base so goldens are location-independent.
func render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%d: %s: %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
	}
	return sb.String()
}

// checkGolden compares analyzer output over a fixture with its golden
// transcript.
func checkGolden(t *testing.T, a *Analyzer, fixture, golden string) {
	t.Helper()
	p := loadFixture(t, fixture)
	got := render(Check([]*Package{p}))
	// Filter to the analyzer under test so fixtures stay focused even
	// when a construct trips a second analyzer incidentally.
	var kept []string
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, ": "+a.Name+": ") {
			kept = append(kept, line)
		}
	}
	got = strings.Join(kept, "\n")
	if len(kept) > 0 {
		got += "\n"
	}

	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s: %v (run `go test ./internal/lint -update` to create)", golden, err)
	}
	if got != string(want) {
		t.Errorf("%s over %s:\n--- got ---\n%s--- want ---\n%s", a.Name, fixture, got, want)
	}
}

// expectClean asserts an analyzer reports nothing over a fixture.
func expectClean(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	p := loadFixture(t, fixture)
	if diags := a.Run(p); len(diags) > 0 {
		t.Errorf("%s over %s: want no findings, got:\n%s", a.Name, fixture, render(diags))
	}
}

func TestNoDetermFindsViolations(t *testing.T) {
	checkGolden(t, NoDeterm, "nodeterm_bad", "nodeterm.golden")
}

func TestNoDetermAcceptsSeededRand(t *testing.T) {
	expectClean(t, NoDeterm, "nodeterm_ok")
}

func TestNoDetermExemptsServiceLayer(t *testing.T) {
	expectClean(t, NoDeterm, "nodeterm_exempt")
}

func TestMapOrderFindsViolations(t *testing.T) {
	checkGolden(t, MapOrder, "maporder_bad", "maporder.golden")
}

func TestMapOrderAcceptsWaivedAndUnordered(t *testing.T) {
	expectClean(t, MapOrder, "maporder_ok")
}

func TestCtxFirstFindsViolations(t *testing.T) {
	checkGolden(t, CtxFirst, "ctxfirst_bad", "ctxfirst.golden")
}

func TestCtxFirstAcceptsThreadedContext(t *testing.T) {
	expectClean(t, CtxFirst, "ctxfirst_ok")
}

func TestErrDropFindsViolations(t *testing.T) {
	checkGolden(t, ErrDrop, "errdrop_bad", "errdrop.golden")
}

func TestErrDropAcceptsHandledAndWaived(t *testing.T) {
	expectClean(t, ErrDrop, "errdrop_ok")
}

// TestRepoIsLintClean is the merge gate in test form: the whole module
// must produce zero findings. scripts/check.sh runs the same check via
// cmd/hopplint; having it here keeps `go test ./...` sufficient.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped under -short")
	}
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkgs); len(diags) > 0 {
		t.Errorf("module has %d lint finding(s):\n%s", len(diags), render(diags))
	}
}
