package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc guards the zero-allocation steady state PR 7 bought: from a
// declared set of hot-path roots — functions annotated
// //hopplint:hotpath, plus any qualified names in HotPathRoots — every
// module function reachable over static call edges is scanned for
// allocation-inducing constructs. The benchmark gate catches an
// allocation regression after the fact; this analyzer catches it in
// review, the way the paper's hardware hot-page detector watches the
// access stream so software never has to sample it.
//
// Flagged constructs: make/new, map and slice composite literals,
// &struct literals, function literals (closures), append (growth is
// amortized at best, and never free), runtime string concatenation,
// calls into known-allocating stdlib functions (fmt, strconv
// formatting, errors.New, io.ReadAll), and interface boxing at call
// sites — a concrete value passed to an interface parameter, the
// classic way a refactor silently re-introduces per-access garbage.
// Arguments to panic() are exempt: a panicking hot path is already off
// the cliff. Audited sites carry //hopplint:allocok <reason>; the
// reason is mandatory.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation-inducing constructs reachable from //hopplint:hotpath roots without //hopplint:allocok <reason>",
	Run:  runHotAlloc,
}

func runHotAlloc(m *Module) []Diagnostic {
	extraRoots := make(map[string]bool, len(HotPathRoots))
	for _, id := range HotPathRoots {
		extraRoots[id] = true
	}
	var roots []*FuncNode
	for _, n := range m.Graph.Funcs {
		if _, ok := n.Pkg.waiver(n.Decl.Pos(), "hotpath"); ok || extraRoots[n.ID] {
			roots = append(roots, n)
		}
	}
	from := m.Graph.Reachable(roots)
	var diags []Diagnostic
	for _, n := range m.Graph.Funcs {
		root := from[n]
		if root == nil {
			continue
		}
		diags = append(diags, scanHotFunc(n, root)...)
	}
	return diags
}

// scanHotFunc flags every allocation-inducing construct in one
// hot-reachable function body. root is the hot-path root that reaches
// it, named in the message so the reader knows which path is at stake.
func scanHotFunc(n *FuncNode, root *FuncNode) []Diagnostic {
	p := n.Pkg
	var diags []Diagnostic
	report := func(pos ast.Node, what string) {
		reason, waived := p.waiver(pos.Pos(), "allocok")
		if waived && reason != "" {
			return
		}
		msg := what + " on the hot path from " + root.ID + "; hoist it, use a caller-owned buffer, or waive with //hopplint:allocok <reason>"
		if waived {
			msg = "//hopplint:allocok waiver has no reason; state why this hot-path allocation is acceptable"
		}
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(pos.Pos()),
			Analyzer: "hotalloc",
			Message:  msg,
		})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			// The closure value is the hot-path allocation; its body runs
			// wherever the closure is invoked and is not scanned here.
			report(node, "closure allocates")
			return false
		case *ast.CompositeLit:
			switch p.Info.TypeOf(node).Underlying().(type) {
			case *types.Map:
				report(node, "map literal allocates")
			case *types.Slice:
				report(node, "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				if _, ok := unparen(node.X).(*ast.CompositeLit); ok {
					report(node, "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if isNonConstStringConcat(p, node) {
				report(node, "string concatenation allocates")
			}
		case *ast.CallExpr:
			return scanHotCall(p, node, report)
		}
		return true
	})
	return diags
}

// scanHotCall handles one call expression: allocating builtins,
// allocating external callees, and interface boxing of arguments. The
// return value tells ast.Inspect whether to descend into the call
// (panic arguments are skipped wholesale).
func scanHotCall(p *Package, call *ast.CallExpr, report func(ast.Node, string)) bool {
	if name, ok := builtinName(p, call); ok {
		switch name {
		case "panic":
			return false // error paths may allocate freely
		case "make":
			report(call, "make allocates")
		case "new":
			report(call, "new allocates")
		case "append":
			report(call, "append may grow its backing array")
		}
		return true
	}
	obj := staticCallee(p, call)
	if obj != nil {
		if ext := externalFacts(obj.FullName()); ext.allocates {
			// The callee is the allocation; boxing its arguments is the
			// same finding, not a second one.
			report(call, "call to "+obj.FullName()+" allocates")
			return true
		}
	}
	// Interface boxing at the call site: a concrete argument passed to
	// an interface parameter is wrapped in a heap-allocated interface
	// value (small-value optimizations aside, the hot path must not
	// gamble on them).
	sig := callSignature(p, call)
	if sig == nil {
		return true
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		tv, ok := p.Info.Types[arg]
		if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
			continue
		}
		report(arg, "argument boxed into interface parameter")
	}
	return true
}

// callSignature returns the signature the call invokes, or nil for
// conversions and builtins.
func callSignature(p *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[unparen(call.Fun)]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the parameter type argument i is assigned to,
// handling variadic tails. A `f(xs...)` spread passes the slice through
// unboxed, so the variadic element type does not apply there.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	np := sig.Params().Len()
	if sig.Variadic() && i >= np-1 {
		if call.Ellipsis.IsValid() {
			return nil
		}
		slice, ok := sig.Params().At(np - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return slice.Elem()
	}
	if i >= np {
		return nil
	}
	return sig.Params().At(i).Type()
}
