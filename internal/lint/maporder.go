package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body emits ordered output —
// appending to a slice, writing to an io.Writer, or calling
// fmt.Fprint*/fmt.Print* — because Go randomizes map iteration order,
// so such loops produce different bytes on identical inputs. The check
// is interprocedural: a body that calls a module helper whose
// transitive summary writes ordered output (a fmt.Fprintf three calls
// deep, an append to an escaping slice inside a utility) is the same
// hazard as doing it inline. Sites that sort the collected result
// afterwards (or are otherwise order-insensitive) carry an explicit
// //hopplint:sorted waiver on the range statement so every exception is
// auditable — and stalewaiver reports the waiver if the hazard ever
// goes away.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration that produces ordered output without a //hopplint:sorted waiver",
	Run:  runMapOrder,
}

// writerMethods are the io.Writer-family methods whose call inside a
// map-range body means bytes leave in iteration order.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func runMapOrder(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if mapType(p.Info.TypeOf(rs.X)) == nil {
					return true
				}
				hazard := orderedOutputHazard(m, p, rs.Body)
				if hazard == "" {
					return true
				}
				// Hazard first, waiver second: a //hopplint:sorted on a
				// harmless range is never consumed, so stalewaiver sees it.
				if _, waived := p.waiver(rs.Pos(), "sorted"); waived {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(rs.Pos()),
					Analyzer: "maporder",
					Message:  "range over map " + hazard + "; iteration order is randomized — sort the keys first or waive with //hopplint:sorted",
				})
				return true
			})
		}
	}
	return diags
}

// mapType reports the map type being ranged over, seeing through type
// parameters: a range over `M` with constraint `~map[K]V` iterates a
// map at every instantiation, so generic helpers get the same scrutiny
// as concrete ones. Returns nil when t is not (always) a map.
func mapType(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	tp, ok := t.(*types.TypeParam)
	if !ok {
		m, _ := t.Underlying().(*types.Map)
		return m
	}
	iface, _ := tp.Constraint().Underlying().(*types.Interface)
	if iface == nil || iface.NumEmbeddeds() == 0 {
		return nil
	}
	var m *types.Map
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch emb := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < emb.Len(); j++ {
				mm, ok := emb.Term(j).Type().Underlying().(*types.Map)
				if !ok {
					return nil
				}
				m = mm
			}
		default:
			mm, ok := emb.Underlying().(*types.Map)
			if !ok {
				return nil
			}
			m = mm
		}
	}
	return m
}

// orderedOutputHazard scans a map-range body for the constructs that
// turn random iteration order into nondeterministic output — directly,
// or through a call to a module function whose transitive summary
// writes ordered output — returning a description of the first hazard
// or "".
func orderedOutputHazard(m *Module, p *Package, body *ast.BlockStmt) string {
	hazard := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
				hazard = "appends to a slice"
				return true
			}
		case *ast.SelectorExpr:
			if pkg, ok := importedPackage(p, fun.X); ok && pkg == "fmt" {
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
					hazard = "formats output via fmt." + name
				}
				return true
			}
			// A method call: writer-shaped names on a receiver that
			// actually satisfies io.Writer.
			if writerMethods[fun.Sel.Name] && p.Info.Selections[fun] != nil {
				recv := p.Info.Selections[fun].Recv()
				if implementsWriter(recv) {
					hazard = "writes to an io.Writer via " + fun.Sel.Name
					return true
				}
			}
		}
		// Interprocedural: a module callee whose summary says it writes
		// ordered output is the same hazard one level removed.
		if callee := m.Graph.NodeOf(staticCallee(p, call)); callee != nil {
			if callee.facts.writesOrdered {
				hazard = "calls " + callee.ID + " which writes ordered output"
			}
		}
		return true
	})
	return hazard
}

// writerIface is io.Writer built from first principles so the check
// works without importing io into the analyzed package.
var writerIface = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(0, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(0, nil, "n", types.Typ[types.Int]),
		types.NewVar(0, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	fn := types.NewFunc(0, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if types.Implements(t, writerIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), writerIface)
	}
	return false
}
