package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld flags liveness hazards the race detector cannot see: an
// operation that can block — a channel send or receive, a select with
// no default, file or network I/O, or a call whose transitive summary
// blocks — executed while a sync.Mutex or RWMutex is held, plus lock
// pairs acquired in both orders anywhere in the module (the ABBA
// deadlock). Holding a lock across such an operation turns one slow
// client or full channel into a stalled daemon.
//
// The analysis is a linear walk of each function body tracking the set
// of held locks: Lock/RLock push, Unlock/RUnlock pop, a deferred
// Unlock keeps the lock held to the end, branch bodies see a copy of
// the held set (a branch that unlocks does not leak that fact past the
// branch), and `go` statement bodies are skipped — a spawned goroutine
// does not hold its parent's locks. Locks are identified by where they
// live (package.OwnerType.field), so the same mutex reached through
// different variables is one lock. Nested acquisition in a consistent
// order (the documented reg.mu → pool.mu order, for instance) is not a
// finding — only inconsistent order is. Audited sites carry
// //hopplint:lockok <reason>; the reason is mandatory. A lockok waiver
// on a blocking operation also clears the blocks fact from the
// enclosing function's summary, so one waiver at the root cause keeps
// every transitive caller clean.
//
// What this does not prove: it cannot see locks held across goroutine
// boundaries, locks reached through interface calls, or whether a
// flagged blocking operation can actually block at runtime. It is an
// auditing aid with a deliberately small false-negative bias on the
// concrete paths, not a deadlock-freedom proof.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "forbid blocking operations while a mutex is held, and inconsistent lock acquisition order, without //hopplint:lockok <reason>",
	Run:  runLockHeld,
}

// lockPairSite remembers where an ordered (held, acquired) pair was
// first observed, for the inversion report.
type lockPairSite struct {
	p   *Package
	pos token.Pos
}

func runLockHeld(m *Module) []Diagnostic {
	w := &lockWalker{
		m:     m,
		pairs: make(map[[2]string]lockPairSite),
	}
	for _, n := range m.Graph.Funcs {
		w.p = n.Pkg
		w.stmts(n.Decl.Body.List, nil)
	}
	w.reportInversions()
	return w.diags
}

type lockWalker struct {
	m     *Module
	p     *Package // package of the function currently walked
	diags []Diagnostic
	pairs map[[2]string]lockPairSite
}

// report emits one finding unless a reasoned lockok waiver covers the
// site; a bare waiver is its own finding.
func (w *lockWalker) report(pos token.Pos, msg string) {
	reason, waived := w.p.waiver(pos, "lockok")
	if waived && reason != "" {
		return
	}
	if waived {
		msg = "//hopplint:lockok waiver has no reason; state why this is safe under the lock"
	} else {
		msg += "; shrink the critical section or waive with //hopplint:lockok <reason>"
	}
	w.diags = append(w.diags, Diagnostic{
		Pos:      w.p.Fset.Position(pos),
		Analyzer: "lockheld",
		Message:  msg,
	})
}

// recordAcquire notes the ordered pairs (each held lock, id) and checks
// for self-deadlock. via names the callee when the acquisition is
// transitive.
func (w *lockWalker) recordAcquire(pos token.Pos, held []string, id, via string) {
	for _, h := range held {
		if h == id {
			if via != "" {
				w.report(pos, "call to "+via+" acquires "+id+" while it is already held (self-deadlock)")
			} else {
				w.report(pos, "acquiring "+id+" while it is already held (self-deadlock)")
			}
			continue
		}
		key := [2]string{h, id}
		if _, ok := w.pairs[key]; !ok {
			w.pairs[key] = lockPairSite{p: w.p, pos: pos}
		}
	}
}

// reportInversions emits one finding per direction of every lock pair
// observed in both orders, at the pair's first site.
func (w *lockWalker) reportInversions() {
	keys := make([][2]string, 0, len(w.pairs))
	//hopplint:sorted keys are sorted immediately below before any output derives from them
	for k := range w.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	saved := w.p
	for _, k := range keys {
		if _, inverted := w.pairs[[2]string{k[1], k[0]}]; !inverted {
			continue
		}
		site := w.pairs[k]
		w.p = site.p
		w.report(site.pos, "lock order inversion: "+k[1]+" acquired while holding "+k[0]+", but the reverse order also occurs; pick one global order")
	}
	w.p = saved
}

// stmts walks a statement list linearly, threading the held-lock set
// through it.
func (w *lockWalker) stmts(list []ast.Stmt, held []string) []string {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// branch walks a statement (a branch body) with a copy of the held set,
// so acquisitions and releases inside it stay local to the branch.
func (w *lockWalker) branch(s ast.Stmt, held []string) {
	if s == nil {
		return
	}
	w.stmt(s, append([]string(nil), held...))
}

func (w *lockWalker) stmt(s ast.Stmt, held []string) []string {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if obj := staticCallee(w.p, call); obj != nil {
				if id, ok := mutexAcquisition(w.p, call, obj); ok {
					w.recordAcquire(call.Pos(), held, id, "")
					return append(held, id)
				}
			}
			if id, ok := mutexRelease(w.p, call); ok {
				return removeLock(held, id)
			}
		}
		w.exprOps(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock means the lock is held for the rest of the
		// function — exactly what leaving it in the held set models.
		// Other deferred calls run at return time; their blocking
		// behavior under a still-held lock is out of scope here.
		if _, ok := mutexRelease(w.p, s.Call); ok {
			return held
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Pos(), "channel send while holding "+heldDesc(held))
		}
		w.exprOps(s.Value, held)
	case *ast.AssignStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.DeclStmt:
		w.exprOps(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.exprOps(s.Cond, held)
		w.branch(s.Body, held)
		w.branch(s.Else, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.exprOps(s.Cond, held)
		}
		w.branch(s.Body, held)
	case *ast.RangeStmt:
		if t := w.p.Info.TypeOf(s.X); t != nil && len(held) > 0 {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.report(s.Pos(), "receiving from a channel range while holding "+heldDesc(held))
			}
		}
		w.exprOps(s.X, held)
		w.branch(s.Body, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.exprOps(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			w.branch(clause, held)
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			w.branch(clause, held)
		}
	case *ast.CaseClause:
		w.stmts(s.Body, append([]string(nil), held...))
	case *ast.CommClause:
		w.stmts(s.Body, append([]string(nil), held...))
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.report(s.Pos(), "select without default blocks while holding "+heldDesc(held))
		}
		for _, clause := range s.Body.List {
			w.branch(clause, held)
		}
	case *ast.BlockStmt:
		held = w.stmts(s.List, held)
	case *ast.LabeledStmt:
		held = w.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks.
	}
	return held
}

// exprOps scans the expressions under a node for operations that block
// or acquire, against the current held set. Function literal bodies are
// skipped — a closure built under the lock runs whenever it runs.
func (w *lockWalker) exprOps(n ast.Node, held []string) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && len(held) > 0 {
				w.report(node.Pos(), "channel receive while holding "+heldDesc(held))
			}
		case *ast.CallExpr:
			w.callOps(node, held)
		}
		return true
	})
}

// callOps folds one call's blocking/acquiring behavior into findings
// and order pairs.
func (w *lockWalker) callOps(call *ast.CallExpr, held []string) {
	obj := staticCallee(w.p, call)
	if obj == nil {
		return
	}
	if id, ok := mutexAcquisition(w.p, call, obj); ok {
		// An acquisition in expression position (inside a condition or
		// argument) cannot be scope-tracked; record its ordering and
		// move on.
		w.recordAcquire(call.Pos(), held, id, "")
		return
	}
	if callee := w.m.Graph.NodeOf(obj); callee != nil {
		if callee.facts.blocks && len(held) > 0 {
			w.report(call.Pos(), "call to "+obj.FullName()+" may block while holding "+heldDesc(held))
		}
		for _, acq := range callee.facts.acquires {
			w.recordAcquire(call.Pos(), held, acq, obj.FullName())
		}
		return
	}
	if len(held) > 0 && externalFacts(obj.FullName()).blocks {
		w.report(call.Pos(), "call to "+obj.FullName()+" may block while holding "+heldDesc(held))
	}
}

// removeLock pops the most recent acquisition of id.
func removeLock(held []string, id string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// heldDesc renders the held set for messages.
func heldDesc(held []string) string {
	return strings.Join(held, ", ")
}
