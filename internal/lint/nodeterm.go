package lint

import (
	"go/ast"
	"go/types"
)

// NoDeterm forbids nondeterministic inputs inside the deterministic
// packages: wall-clock reads (time.Now/Since/Until and the timer
// constructors), the process-global math/rand source, environment
// reads, and os.ReadFile/os.Open of paths not derived from a parameter
// — a hard-coded path makes output depend on host filesystem state
// invisible to the (workload, system, frac, seed) cache key. Seeded
// generators (rand.New(rand.NewSource(seed))) are the sanctioned
// randomness and stay allowed.
//
// The check is also interprocedural: a deterministic package calling a
// module function in a non-deterministic package whose transitive
// summary reads the wall clock is flagged at the call site — the clock
// read does not get cleaner by hiding behind a service-layer helper.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall clocks, timers, global rand, env reads, and fixed-path file reads in deterministic packages",
	Run:  runNoDeterm,
}

// randAllowed are the math/rand package-level functions that construct
// seeded state instead of consuming the global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// timeForbidden are the wall-clock reads and timer constructors;
// monotonic or not, both tie simulation output to the host's clock.
var timeForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

// osEnvReads pull configuration from the process environment, which is
// invisible to the (workload, system, frac, seed) cache key.
var osEnvReads = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
}

// osFileReads are the os functions whose first argument is a path; in
// deterministic packages that path must be derived from a parameter.
var osFileReads = map[string]bool{
	"ReadFile": true,
	"Open":     true,
	"OpenFile": true,
}

func runNoDeterm(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Pkgs {
		if !DeterministicPackages[p.Name] {
			continue
		}
		for _, f := range p.Files {
			diags = append(diags, noDetermFile(p, f)...)
		}
	}
	diags = append(diags, noDetermCalls(m)...)
	return diags
}

// noDetermFile runs the syntactic checks over one file of a
// deterministic package.
func noDetermFile(p *Package, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
			diags = append(diags, checkFileReads(p, fd)...)
			// Keep descending: the selector checks below apply inside.
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := importedPackage(p, sel.X)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch pkgPath {
		case "time":
			if timeForbidden[name] {
				msg := "time." + name + " reads the wall clock; deterministic packages must derive time from the virtual clock"
				switch name {
				case "NewTimer", "NewTicker", "After", "AfterFunc", "Tick":
					msg = "time." + name + " schedules on the wall clock; deterministic packages must derive time from the virtual clock"
				}
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(sel.Pos()),
					Analyzer: "nodeterm",
					Message:  msg,
				})
			}
		case "math/rand", "math/rand/v2":
			if randAllowed[name] {
				return true
			}
			// Only package-level functions consume the global
			// source; types (rand.Rand, rand.Source) are fine.
			if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			msg := "rand." + name + " uses the process-global source; use a seeded rand.New(rand.NewSource(seed))"
			if name == "Seed" {
				msg = "rand.Seed mutates the process-global source shared across goroutines; use rand.New(rand.NewSource(seed))"
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(sel.Pos()),
				Analyzer: "nodeterm",
				Message:  msg,
			})
		case "os":
			if osEnvReads[name] {
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(sel.Pos()),
					Analyzer: "nodeterm",
					Message:  "os." + name + " reads the environment; deterministic packages take configuration through parameters",
				})
			}
		}
		return true
	})
	return diags
}

// checkFileReads flags os.ReadFile/os.Open/os.OpenFile calls inside fd
// whose path argument is not derived from one of fd's parameters (or
// receiver, or named result). A path that mentions no parameter is
// baked-in host filesystem state.
func checkFileReads(p *Package, fd *ast.FuncDecl) []Diagnostic {
	own := paramObjects(p, fd)
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !osFileReads[sel.Sel.Name] {
			return true
		}
		if pkg, ok := importedPackage(p, sel.X); !ok || pkg != "os" {
			return true
		}
		if exprMentions(p, call.Args[0], own) {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(call.Pos()),
			Analyzer: "nodeterm",
			Message:  "os." + sel.Sel.Name + " of a path not derived from a parameter; deterministic packages take file inputs through parameters",
		})
		return true
	})
	return diags
}

// exprMentions reports whether the expression references any of the
// given objects — an identifier bound to a parameter anywhere in the
// path expression (a join, a field of a config parameter) counts as
// parameter-derived.
func exprMentions(p *Package, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil && objs[obj] {
			found = true
		}
		return true
	})
	return found
}

// noDetermCalls is the interprocedural half: a call from a
// deterministic package into a non-deterministic module package whose
// summary (transitively) reads the wall clock. Calls that stay within
// the deterministic set are not re-flagged here — the offending site
// inside the callee gets its own syntactic finding.
func noDetermCalls(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, n := range m.Graph.Funcs {
		if !DeterministicPackages[n.Pkg.Name] {
			continue
		}
		for _, cs := range n.Calls {
			if cs.Callee == nil || DeterministicPackages[cs.Callee.Pkg.Name] {
				continue
			}
			if !cs.Callee.facts.readsClock {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      n.Pkg.Fset.Position(cs.Pos),
				Analyzer: "nodeterm",
				Message:  "call to " + cs.ID + " reads the wall clock (transitively); deterministic packages must derive time from the virtual clock",
			})
		}
	}
	return diags
}

// importedPackage resolves x to the import path of the package it
// names, if x is an identifier bound to an import (not a local variable
// that happens to shadow one).
func importedPackage(p *Package, x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
