package lint

import (
	"go/ast"
	"go/types"
)

// NoDeterm forbids nondeterministic inputs inside the deterministic
// packages: wall-clock reads, the process-global math/rand source, and
// environment reads. Seeded generators (rand.New(rand.NewSource(seed)))
// are the sanctioned randomness and stay allowed.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall clocks, global rand, and env reads in deterministic packages",
	Run:  runNoDeterm,
}

// randAllowed are the math/rand package-level functions that construct
// seeded state instead of consuming the global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// timeForbidden are the wall-clock reads; monotonic or not, both tie
// simulation output to the host's clock.
var timeForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// osEnvReads pull configuration from the process environment, which is
// invisible to the (workload, system, frac, seed) cache key.
var osEnvReads = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
}

func runNoDeterm(p *Package) []Diagnostic {
	if !DeterministicPackages[p.Name] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := importedPackage(p, sel.X)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgPath {
			case "time":
				if timeForbidden[name] {
					diags = append(diags, Diagnostic{
						Pos:      p.Fset.Position(sel.Pos()),
						Analyzer: "nodeterm",
						Message:  "time." + name + " reads the wall clock; deterministic packages must derive time from the virtual clock",
					})
				}
			case "math/rand", "math/rand/v2":
				if randAllowed[name] {
					return true
				}
				// Only package-level functions consume the global
				// source; types (rand.Rand, rand.Source) are fine.
				if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				msg := "rand." + name + " uses the process-global source; use a seeded rand.New(rand.NewSource(seed))"
				if name == "Seed" {
					msg = "rand.Seed mutates the process-global source shared across goroutines; use rand.New(rand.NewSource(seed))"
				}
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(sel.Pos()),
					Analyzer: "nodeterm",
					Message:  msg,
				})
			case "os":
				if osEnvReads[name] {
					diags = append(diags, Diagnostic{
						Pos:      p.Fset.Position(sel.Pos()),
						Analyzer: "nodeterm",
						Message:  "os." + name + " reads the environment; deterministic packages take configuration through parameters",
					})
				}
			}
			return true
		})
	}
	return diags
}

// importedPackage resolves x to the import path of the package it
// names, if x is an identifier bound to an import (not a local variable
// that happens to shadow one).
func importedPackage(p *Package, x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
