package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package: the syntax trees (with
// comments, which carry the waiver directives), the shared FileSet, and
// the go/types artifacts every analyzer consults.
type Package struct {
	Path  string // import path ("hopp/internal/sim"); fixture paths are synthetic
	Name  string // package clause name ("sim", "main", ...)
	Dir   string
	Files []*ast.File
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info

	waivers map[string]map[int]string // file name -> line -> comment text

	// directives holds every //hopplint:<known-directive> occurrence in
	// the package, and used records which of them some analyzer actually
	// consulted via waiver() — the raw material for stalewaiver.
	directives []directiveSite
	used       map[string]bool // "file:line:directive"
}

// directiveSite is one //hopplint:<directive> comment occurrence.
type directiveSite struct {
	Pos       token.Position
	Directive string
}

// waiverKey identifies a directive occurrence for use-tracking.
func waiverKey(filename string, line int, directive string) string {
	return filename + ":" + strconv.Itoa(line) + ":" + directive
}

// resetWaiverUse clears the consumed-directive marks; NewModule calls it
// so repeated Check runs over the same packages start fresh.
func (p *Package) resetWaiverUse() {
	p.used = make(map[string]bool)
}

// Loader parses and type-checks packages of one module from source,
// with no dependencies outside the standard library: intra-module
// imports are resolved against the module root, everything else through
// the compiler's source importer (GOROOT source).
//
// LoadAll type-checks in parallel: every package is parsed concurrently
// (token.FileSet is internally synchronized), then type-checked by a
// bounded worker pool in topological order of the intra-module import
// graph, so a package's dependencies are always complete before its own
// check starts. Results come back in the same sorted-directory order
// the sequential loader produced — findings order is identical.
type Loader struct {
	fset   *token.FileSet
	root   string
	module string

	// std is the stdlib source importer. It memoizes internally but is
	// not documented concurrency-safe, so stdMu serializes access.
	std   types.Importer
	stdMu sync.Mutex

	mu      sync.Mutex // guards pkgs and loading
	pkgs    map[string]*Package
	loading map[string]bool // per-load-chain recursion marks (cycle detection)
}

// NewLoader opens the module rooted at root (the directory holding
// go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		fset:    token.NewFileSet(),
		root:    abs,
		module:  mod,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l, nil
}

// Module returns the module path of the loaded tree.
func (l *Loader) Module() string { return l.module }

// modulePath extracts the module path from a go.mod.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer, routing intra-module paths to the
// module tree and everything else to the stdlib source importer. Under
// LoadAll's topological schedule every intra-module dependency is
// already in the package map by the time an importing package is
// type-checked, so the lazy LoadPackage fallback only runs for the
// sequential single-package path.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		l.mu.Lock()
		p, ok := l.pkgs[path]
		l.mu.Unlock()
		if ok {
			return p.Types, nil
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		loaded, err := l.LoadPackage(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return loaded.Types, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// parseDir parses every non-test source of dir into the shared FileSet,
// with comments (the waiver directives live there). Safe to call
// concurrently: FileSet methods are synchronized.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck runs go/types over already-parsed files and assembles the
// Package. It does not register the result; callers own the map write.
func (l *Loader) typeCheck(dir, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Name:  files[0].Name.Name,
		Dir:   dir,
		Files: files,
		Fset:  l.fset,
		Types: tpkg,
		Info:  info,
	}
	p.indexWaivers()
	return p, nil
}

// LoadPackage loads and type-checks the single package in dir under the
// given import path, recursing into intra-module imports as they are
// reached. Test files are skipped: hopplint audits the shipped sources;
// _test.go files are exempt by design (they may use wall clocks for
// deadlines and discard errors freely).
func (l *Loader) LoadPackage(dir, path string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if l.loading[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.loading, path)
		l.mu.Unlock()
	}()

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	p, err := l.typeCheck(dir, path, files)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.pkgs[path] = p
	l.mu.Unlock()
	return p, nil
}

// LoadAll discovers every package under the module root (mirroring the
// go tool's ./... — testdata, vendor, hidden and underscore directories
// are skipped) and loads each one. Parsing runs fully in parallel;
// type-checking runs on a bounded worker pool scheduled topologically
// over the intra-module import graph, so independent subtrees check
// concurrently while each package still sees complete dependencies.
// The returned slice is ordered by directory path — identical to the
// sequential loader, so findings order is stable.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(path)
		if err != nil {
			return err
		}
		if len(srcs) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	n := len(dirs)
	if n == 0 {
		return nil, nil
	}
	paths := make([]string, n)
	for i, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		paths[i] = l.module
		if rel != "." {
			paths[i] = l.module + "/" + filepath.ToSlash(rel)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}

	// Phase 1: parse every package concurrently. The FileSet is shared
	// and synchronized; parse results land in per-index slots, so no two
	// goroutines touch the same memory.
	parsed := make([][]*ast.File, n)
	parseErrs := make([]error, n)
	parseCh := make(chan int)
	var parseWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		parseWG.Add(1)
		go func() {
			defer parseWG.Done()
			for i := range parseCh {
				parsed[i], parseErrs[i] = l.parseDir(dirs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		parseCh <- i
	}
	close(parseCh)
	parseWG.Wait()
	for _, err := range parseErrs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: build the intra-module dependency graph from the parsed
	// imports. Only edges within the discovered set matter — anything
	// else resolves through the importer at check time.
	idxOf := make(map[string]int, n)
	for i, p := range paths {
		idxOf[p] = i
	}
	deps := make([][]int, n)       // deps[i] = packages i imports
	dependents := make([][]int, n) // dependents[i] = packages importing i
	indeg := make([]int, n)
	for i, files := range parsed {
		seen := make(map[int]bool)
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if j, ok := idxOf[ip]; ok && j != i && !seen[j] {
					seen[j] = true
					deps[i] = append(deps[i], j)
					dependents[j] = append(dependents[j], i)
					indeg[i]++
				}
			}
		}
	}

	// Cycle detection up front (Kahn's count): a cyclic subgraph would
	// otherwise never become ready and hang the schedule.
	if cyclic := findCycleMember(paths, deps, indeg); cyclic != "" {
		return nil, fmt.Errorf("lint: import cycle through %q", cyclic)
	}

	// Phase 3: type-check on a bounded worker pool. A package enters the
	// ready queue only when every intra-module dependency has been
	// checked and registered, so Import never recurses here. On failure,
	// transitive dependents are skipped with an error naming the broken
	// dependency; pending tracks every package until it is checked or
	// skipped, and closes the queue at zero.
	out := make([]*Package, n)
	errs := make([]error, n)
	skipped := make([]bool, n)
	readyCh := make(chan int, n)
	var (
		schedMu sync.Mutex
		pending = n
	)
	complete := func(i int, err error) {
		schedMu.Lock()
		defer schedMu.Unlock()
		errs[i] = err
		pending--
		stack := []int{i}
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, j := range dependents[k] {
				if skipped[j] {
					continue
				}
				if errs[k] != nil {
					// A dependency failed; j can never type-check. Its
					// own indegree still counts unfinished deps, so it
					// was not (and will not be) enqueued.
					skipped[j] = true
					errs[j] = fmt.Errorf("lint: %s not checked: dependency %s failed", paths[j], paths[k])
					pending--
					stack = append(stack, j)
				} else {
					indeg[j]--
					if indeg[j] == 0 {
						readyCh <- j
					}
				}
			}
		}
		if pending == 0 {
			close(readyCh)
		}
	}
	schedMu.Lock()
	if pending == 0 {
		close(readyCh)
	} else {
		for i := 0; i < n; i++ {
			if indeg[i] == 0 {
				//hopplint:lockok readyCh is buffered to n, one slot per package; the send can never block
				readyCh <- i
			}
		}
	}
	schedMu.Unlock()

	var checkWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		checkWG.Add(1)
		go func() {
			defer checkWG.Done()
			for i := range readyCh {
				l.mu.Lock()
				p, ok := l.pkgs[paths[i]]
				l.mu.Unlock()
				if !ok {
					var err error
					p, err = l.typeCheck(dirs[i], paths[i], parsed[i])
					if err != nil {
						complete(i, err)
						continue
					}
					l.mu.Lock()
					l.pkgs[paths[i]] = p
					l.mu.Unlock()
				}
				out[i] = p
				complete(i, nil)
			}
		}()
	}
	checkWG.Wait()

	// Report the first error in path order — deterministic regardless of
	// which worker hit it first.
	for i, err := range errs {
		if err != nil && !skipped[i] {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// findCycleMember runs Kahn's algorithm over the intra-module graph and
// returns the lexicographically smallest package on a cycle, or "" when
// the graph is acyclic. indeg is read-only; the scan uses its own copy.
func findCycleMember(paths []string, deps [][]int, indeg []int) string {
	n := len(paths)
	remaining := append([]int(nil), indeg...)
	dependents := make([][]int, n)
	for i, ds := range deps {
		for _, d := range ds {
			dependents[d] = append(dependents[d], i)
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		done++
		for _, j := range dependents[i] {
			remaining[j]--
			if remaining[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if done == n {
		return ""
	}
	cyclic := ""
	for i := 0; i < n; i++ {
		if remaining[i] > 0 && (cyclic == "" || paths[i] < cyclic) {
			cyclic = paths[i]
		}
	}
	return cyclic
}

// goSources lists the non-test .go files of dir in stable order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// indexWaivers maps every comment to its file and line so analyzers can
// look up //hopplint:... directives attached to a statement (same line
// or the line directly above).
func (p *Package) indexWaivers() {
	p.waivers = make(map[string]map[int]string)
	p.used = make(map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				byLine := p.waivers[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					p.waivers[pos.Filename] = byLine
				}
				byLine[pos.Line] += c.Text
				// Only comments that ARE a directive (prefix match) count
				// as waiver sites; prose that merely mentions one — the
				// analyzers' own documentation — does not.
				for _, d := range waiverDirectives {
					if strings.HasPrefix(c.Text, "//hopplint:"+d) {
						p.directives = append(p.directives, directiveSite{Pos: pos, Directive: d})
					}
				}
			}
		}
	}
}

// waiver returns the text of a //hopplint:<directive> comment covering
// pos — on the same line (trailing comment) or the line directly above —
// and whether one was found. The returned string is the text after the
// directive, trimmed (the waiver's reason, possibly empty).
func (p *Package) waiver(pos token.Pos, directive string) (string, bool) {
	position := p.Fset.Position(pos)
	byLine := p.waivers[position.Filename]
	if byLine == nil {
		return "", false
	}
	marker := "//hopplint:" + directive
	for _, line := range []int{position.Line, position.Line - 1} {
		text, ok := byLine[line]
		if !ok {
			continue
		}
		if i := strings.Index(text, marker); i >= 0 {
			p.used[waiverKey(position.Filename, line, directive)] = true
			rest := text[i+len(marker):]
			if j := strings.Index(rest, "//"); j >= 0 {
				rest = rest[:j]
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
