package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the syntax trees (with
// comments, which carry the waiver directives), the shared FileSet, and
// the go/types artifacts every analyzer consults.
type Package struct {
	Path  string // import path ("hopp/internal/sim"); fixture paths are synthetic
	Name  string // package clause name ("sim", "main", ...)
	Dir   string
	Files []*ast.File
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info

	waivers map[string]map[int]string // file base name -> line -> comment text
}

// Loader parses and type-checks packages of one module from source,
// with no dependencies outside the standard library: intra-module
// imports are resolved against the module root, everything else through
// the compiler's source importer (GOROOT source).
type Loader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader opens the module rooted at root (the directory holding
// go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		fset:    token.NewFileSet(),
		root:    abs,
		module:  mod,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l, nil
}

// Module returns the module path of the loaded tree.
func (l *Loader) Module() string { return l.module }

// modulePath extracts the module path from a go.mod.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer, routing intra-module paths to the
// module tree and everything else to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		p, err := l.LoadPackage(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadPackage loads and type-checks the single package in dir under the
// given import path. Test files are skipped: hopplint audits the
// shipped sources; _test.go files are exempt by design (they may use
// wall clocks for deadlines and discard errors freely).
func (l *Loader) LoadPackage(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Name:  files[0].Name.Name,
		Dir:   dir,
		Files: files,
		Fset:  l.fset,
		Types: tpkg,
		Info:  info,
	}
	p.indexWaivers()
	l.pkgs[path] = p
	return p, nil
}

// LoadAll discovers every package under the module root (mirroring the
// go tool's ./... — testdata, vendor, hidden and underscore directories
// are skipped) and loads each one.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(path)
		if err != nil {
			return err
		}
		if len(srcs) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadPackage(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goSources lists the non-test .go files of dir in stable order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// indexWaivers maps every comment to its file and line so analyzers can
// look up //hopplint:... directives attached to a statement (same line
// or the line directly above).
func (p *Package) indexWaivers() {
	p.waivers = make(map[string]map[int]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				byLine := p.waivers[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					p.waivers[pos.Filename] = byLine
				}
				byLine[pos.Line] += c.Text
			}
		}
	}
}

// waiver returns the text of a //hopplint:<directive> comment covering
// pos — on the same line (trailing comment) or the line directly above —
// and whether one was found. The returned string is the text after the
// directive, trimmed (the waiver's reason, possibly empty).
func (p *Package) waiver(pos token.Pos, directive string) (string, bool) {
	position := p.Fset.Position(pos)
	byLine := p.waivers[position.Filename]
	if byLine == nil {
		return "", false
	}
	marker := "//hopplint:" + directive
	for _, line := range []int{position.Line, position.Line - 1} {
		text, ok := byLine[line]
		if !ok {
			continue
		}
		if i := strings.Index(text, marker); i >= 0 {
			rest := text[i+len(marker):]
			if j := strings.Index(rest, "//"); j >= 0 {
				rest = rest[:j]
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
