package lint

// StaleWaiver keeps the waiver set honest: every //hopplint:<directive>
// comment that no analyzer consumed during this run — an errok on an
// assignment that no longer discards an error, a sorted on a range that
// no longer emits ordered output, an allocok left behind after the
// allocation was hoisted — is itself a finding. Waivers are exceptions
// to the determinism contract; an exception that excuses nothing is
// pure noise and, worse, may silently excuse a future regression at the
// same line.
//
// This analyzer must run last (Analyzers() guarantees it): it reads the
// consumed-directive marks the other analyzers and the summary layer
// leave behind via Package.waiver.
var StaleWaiver = &Analyzer{
	Name: "stalewaiver",
	Doc:  "report //hopplint waiver comments that suppress no finding",
	Run:  runStaleWaiver,
}

func runStaleWaiver(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Pkgs {
		for _, site := range p.directives {
			if p.used[waiverKey(site.Pos.Filename, site.Pos.Line, site.Directive)] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      site.Pos,
				Analyzer: "stalewaiver",
				Message:  "//hopplint:" + site.Directive + " suppresses no finding; remove it",
			})
		}
	}
	return diags
}
