package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the call-graph engine the interprocedural analyzers
// (hotalloc, lockheld, the helper-aware maporder) ride on. It resolves
// static call edges: direct calls to package-level functions and
// methods whose receiver type is known at the call site, within one
// package and across the whole module. Calls through interface values,
// function-typed variables, and method values are left unresolved —
// they appear as external call sites carrying only a qualified name —
// so the analysis is a deliberate under-approximation, biased toward
// zero false negatives on the concrete hot paths it exists to guard.
//
// Determinism contract: FuncNodes are ordered by qualified name (ties —
// multiple init functions — broken by source position), and each node's
// call sites are in source order. DebugString renders exactly that
// order, so golden tests over the graph are byte-stable across runs.

// FuncNode is one function or method with a body in the analyzed
// packages.
type FuncNode struct {
	Obj  *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// ID is the qualified name in types.Func.FullName form, e.g.
	// "hopp/internal/mc.New" or "(*hopp/internal/cachesim.Cache).Access".
	ID string
	// Calls lists every static call site in the body, in source order.
	Calls []CallSite

	facts funcFacts
}

// Facts exposes the node's computed summary.
func (n *FuncNode) Facts() Facts { return n.facts.public() }

// CallSite is one resolved-or-not call expression inside a FuncNode.
type CallSite struct {
	// Callee is the target's node when the target has a body in the
	// analyzed packages; nil for stdlib functions, interface methods,
	// and anything else outside the set.
	Callee *FuncNode
	// ID is the target's qualified name, set whether or not Callee
	// resolved.
	ID   string
	Pos  token.Pos
	Call *ast.CallExpr
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	// Funcs holds every node, sorted by ID then position.
	Funcs []*FuncNode

	byObj map[*types.Func]*FuncNode
}

// NodeOf returns the node for a declared function object, if it has a
// body in the analyzed set.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// buildCallGraph indexes every function declaration with a body, then
// resolves the call sites inside each.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{byObj: make(map[*types.Func]*FuncNode)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Obj: obj, Pkg: p, Decl: fd, ID: obj.FullName()}
				g.byObj[obj] = n
				g.Funcs = append(g.Funcs, n)
			}
		}
	}
	sort.Slice(g.Funcs, func(i, j int) bool {
		a, b := g.Funcs[i], g.Funcs[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Pkg.Fset.Position(a.Decl.Pos()).Offset < b.Pkg.Fset.Position(b.Decl.Pos()).Offset
	})
	for _, n := range g.Funcs {
		n.Calls = collectCalls(g, n.Pkg, n.Decl.Body)
	}
	return g
}

// collectCalls walks a body and resolves each call expression to a
// static callee where possible. Function literal bodies are excluded:
// a closure handed to a worker pool, a defer, or a goroutine runs in a
// context this call path does not control, and charging its calls to
// the enclosing declaration manufactures false lock-order and
// reachability edges (the pool-promotion closure in
// service.settleFollowersLocked would otherwise look like a
// self-deadlock). The literal value itself still shows up where it
// matters — hotalloc flags the closure allocation.
func collectCalls(g *CallGraph, p *Package, body ast.Node) []CallSite {
	var calls []CallSite
	// A direct `go f(x)` gets the same treatment as `go func(){...}()`:
	// f runs on the spawned goroutine, not this call path, so charging
	// its facts here would manufacture the same false lock-order edges
	// the FuncLit exclusion exists to prevent (an engine spawning its
	// own pump under the registry lock is not a self-deadlock). The
	// spawn's arguments still evaluate on this path and are collected.
	spawned := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if gs, ok := node.(*ast.GoStmt); ok {
			spawned[gs.Call] = true
			return true
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if spawned[call] {
			return true
		}
		obj := staticCallee(p, call)
		if obj == nil {
			return true
		}
		calls = append(calls, CallSite{
			Callee: g.NodeOf(obj),
			ID:     obj.FullName(),
			Pos:    call.Pos(),
			Call:   call,
		})
		return true
	})
	return calls
}

// staticCallee resolves a call expression to the function object it
// invokes, when that is statically known: pkg.F(...), F(...), and
// method calls x.M(...) where x's type (and therefore the method set
// member) is concrete. Interface method calls resolve to the interface
// method object — which has no body in the set, so the edge stays
// external. Conversions and builtins return nil.
func staticCallee(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		paren, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = paren.X
	}
}

// Reachable walks call edges breadth-first from the given roots and
// returns, for every reachable node, the first root (in the given
// order) that reaches it. Roots map to themselves. Traversal order is
// deterministic: roots in order, then each node's call sites in source
// order.
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]*FuncNode {
	from := make(map[*FuncNode]*FuncNode)
	for _, root := range roots {
		if root == nil || from[root] != nil {
			continue
		}
		queue := []*FuncNode{root}
		from[root] = root
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, cs := range n.Calls {
				if cs.Callee == nil || from[cs.Callee] != nil {
					continue
				}
				from[cs.Callee] = root
				queue = append(queue, cs.Callee)
			}
		}
	}
	return from
}

// DebugString renders the graph — every node with its summary facts and
// outgoing edges — in the deterministic order the engine guarantees.
// The 3-run byte-identical golden test pins this output.
func (g *CallGraph) DebugString() string {
	var sb strings.Builder
	for _, n := range g.Funcs {
		fmt.Fprintf(&sb, "%s [%s]\n", n.ID, n.facts.letters())
		for _, cs := range n.Calls {
			marker := "-> "
			if cs.Callee == nil {
				marker = "~> " // external: not resolved within the set
			}
			fmt.Fprintf(&sb, "  %s%s\n", marker, cs.ID)
		}
	}
	return sb.String()
}
