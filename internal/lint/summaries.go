package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Per-function summaries. Each FuncNode gets a small fact vector —
// allocates, writes ordered output, may block, reads the wall clock,
// and the set of locks it may acquire — computed locally from its body
// plus a table of known standard-library behaviors, then propagated to
// transitive callers over the call graph to a fixed point. The
// interprocedural analyzers consult the propagated facts: maporder sees
// a fmt.Fprintf three helpers deep, lockheld sees a journal write
// behind a method chain, nodeterm sees a wall-clock read hidden in a
// non-deterministic module package.

// funcFacts is the internal summary representation.
type funcFacts struct {
	allocates     bool
	writesOrdered bool
	blocks        bool
	readsClock    bool
	acquires      []string // sorted, unique lock IDs
}

// Facts is the exported, read-only view of a function summary.
type Facts struct {
	Allocates     bool
	WritesOrdered bool
	Blocks        bool
	ReadsClock    bool
	Acquires      []string
}

func (f funcFacts) public() Facts {
	return Facts{
		Allocates:     f.allocates,
		WritesOrdered: f.writesOrdered,
		Blocks:        f.blocks,
		ReadsClock:    f.readsClock,
		Acquires:      append([]string(nil), f.acquires...),
	}
}

// letters renders the fact vector compactly for DebugString:
// A=allocates, W=writes ordered output, B=blocks, C=reads clock, and
// the acquired-lock list. "-" when nothing is set.
func (f funcFacts) letters() string {
	var sb strings.Builder
	if f.allocates {
		sb.WriteByte('A')
	}
	if f.writesOrdered {
		sb.WriteByte('W')
	}
	if f.blocks {
		sb.WriteByte('B')
	}
	if f.readsClock {
		sb.WriteByte('C')
	}
	if len(f.acquires) > 0 {
		sb.WriteString("L:" + strings.Join(f.acquires, ","))
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}

// mergeFrom folds a callee's facts into the caller's, reporting whether
// anything changed (the fixed-point driver's termination condition).
func (f *funcFacts) mergeFrom(callee funcFacts) bool {
	changed := false
	if callee.allocates && !f.allocates {
		f.allocates, changed = true, true
	}
	if callee.writesOrdered && !f.writesOrdered {
		f.writesOrdered, changed = true, true
	}
	if callee.blocks && !f.blocks {
		f.blocks, changed = true, true
	}
	if callee.readsClock && !f.readsClock {
		f.readsClock, changed = true, true
	}
	for _, id := range callee.acquires {
		i := sort.SearchStrings(f.acquires, id)
		if i < len(f.acquires) && f.acquires[i] == id {
			continue
		}
		f.acquires = append(f.acquires, "")
		copy(f.acquires[i+1:], f.acquires[i:])
		f.acquires[i] = id
		changed = true
	}
	return changed
}

func (f *funcFacts) addAcquire(id string) {
	i := sort.SearchStrings(f.acquires, id)
	if i < len(f.acquires) && f.acquires[i] == id {
		return
	}
	f.acquires = append(f.acquires, "")
	copy(f.acquires[i+1:], f.acquires[i:])
	f.acquires[i] = id
}

// computeSummaries fills every node's facts: one local pass per
// function, then an iterate-to-fixed-point propagation over the static
// call edges. Local passes and propagation are deterministic (nodes in
// sorted order), so derived diagnostics are too.
func computeSummaries(g *CallGraph) {
	for _, n := range g.Funcs {
		n.facts = localFacts(n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Funcs {
			for _, cs := range n.Calls {
				if cs.Callee == nil {
					continue
				}
				if n.facts.mergeFrom(cs.Callee.facts) {
					changed = true
				}
			}
		}
	}
}

// localFacts scans one function body for the constructs the summaries
// track. A blocking operation carrying a //hopplint:lockok waiver is
// excluded from the blocks fact — the waiver at the source site is what
// keeps every transitive caller clean with a single audited comment.
func localFacts(n *FuncNode) funcFacts {
	p := n.Pkg
	var f funcFacts
	own := paramObjects(p, n.Decl)
	// Comm operations of a select that has a default case never block —
	// the default makes the whole statement a poll. Collected up front
	// (the SelectStmt is visited before its clauses) so the SendStmt and
	// UnaryExpr cases below can tell a bare `ch <- v` from the same
	// syntax inside `select { case ch <- v: ... default: }`.
	nonBlockingComm := map[ast.Node]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			// The spawned goroutine does not run on this call path; its
			// literal body is scanned as part of the enclosing node by
			// the other cases, which is conservative enough.
			return true
		case *ast.SendStmt:
			if !nonBlockingComm[node] {
				if _, ok := p.waiver(node.Pos(), "lockok"); !ok {
					f.blocks = true
				}
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" && !nonBlockingComm[node] {
				if _, ok := p.waiver(node.Pos(), "lockok"); !ok {
					f.blocks = true
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				if _, ok := p.waiver(node.Pos(), "lockok"); !ok {
					f.blocks = true
				}
			} else {
				for _, clause := range node.Body.List {
					cc, ok := clause.(*ast.CommClause)
					if !ok || cc.Comm == nil {
						continue
					}
					nonBlockingComm[cc.Comm] = true
					switch comm := cc.Comm.(type) {
					case *ast.ExprStmt:
						nonBlockingComm[comm.X] = true
					case *ast.AssignStmt:
						for _, rhs := range comm.Rhs {
							nonBlockingComm[rhs] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(node.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					f.blocks = true
				}
			}
		case *ast.FuncLit:
			// The closure value allocates; its body runs in a context
			// this path does not control (see collectCalls) and is not
			// scanned.
			f.allocates = true
			return false
		case *ast.CompositeLit:
			switch p.Info.TypeOf(node).Underlying().(type) {
			case *types.Map, *types.Slice:
				f.allocates = true
			}
		case *ast.BinaryExpr:
			if isNonConstStringConcat(p, node) {
				f.allocates = true
			}
		case *ast.CallExpr:
			localCallFacts(p, node, own, &f)
		}
		return true
	})
	return f
}

// localCallFacts folds one call expression's contribution into f.
func localCallFacts(p *Package, call *ast.CallExpr, own map[types.Object]bool, f *funcFacts) {
	// Builtins: make and new allocate; append allocates and, when its
	// destination escapes the function, also emits in call order.
	if name, ok := builtinName(p, call); ok {
		switch name {
		case "make", "new":
			f.allocates = true
		case "append":
			f.allocates = true
			if appendEscapes(p, call, own) {
				f.writesOrdered = true
			}
		}
		return
	}
	if obj := staticCallee(p, call); obj != nil {
		if id, isLock := mutexAcquisition(p, call, obj); isLock {
			f.addAcquire(id)
			return
		}
		ext := externalFacts(obj.FullName())
		if ext.blocks {
			if _, ok := p.waiver(call.Pos(), "lockok"); ok {
				ext.blocks = false
			}
		}
		f.allocates = f.allocates || ext.allocates
		f.writesOrdered = f.writesOrdered || ext.writesOrdered
		f.blocks = f.blocks || ext.blocks
		f.readsClock = f.readsClock || ext.readsClock
	}
	// Writer-shaped method calls on receivers that actually satisfy
	// io.Writer emit bytes in call order (and may block on the
	// underlying sink). This catches concrete writers — *bytes.Buffer,
	// *strings.Builder, files — that the name table cannot enumerate.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if writerMethods[sel.Sel.Name] && p.Info.Selections[sel] != nil {
			if implementsWriter(p.Info.Selections[sel].Recv()) {
				f.writesOrdered = true
			}
		}
	}
}

// builtinName reports the builtin a call invokes, if any.
func builtinName(p *Package, call *ast.CallExpr) (string, bool) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}

// appendEscapes reports whether an append call's destination outlives
// the enclosing function: a non-identifier target (field, index,
// dereference), a package-level variable, or a parameter/receiver/named
// result. Appends to plain locals are the collect-then-sort idiom and
// stay summary-invisible (maporder still sees them when they happen
// directly inside a map-range body).
func appendEscapes(p *Package, call *ast.CallExpr, own map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return true
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	if own[obj] {
		return true
	}
	return obj.Parent() == p.Types.Scope()
}

// paramObjects collects the declaration's receiver, parameter, and
// named-result objects — the names appendEscapes treats as escaping
// destinations.
func paramObjects(p *Package, decl *ast.FuncDecl) map[types.Object]bool {
	own := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					own[obj] = true
				}
			}
		}
	}
	addFields(decl.Recv)
	addFields(decl.Type.Params)
	addFields(decl.Type.Results)
	return own
}

// selectHasDefault reports whether a select statement has a default
// case (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isNonConstStringConcat reports a runtime string concatenation, which
// allocates the joined string.
func isNonConstStringConcat(p *Package, bin *ast.BinaryExpr) bool {
	if bin.Op.String() != "+" {
		return false
	}
	tv, ok := p.Info.Types[bin]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// mutexAcquisition reports whether the call is sync.Mutex.Lock /
// sync.RWMutex.Lock / RLock (directly or through an embedded mutex) and
// returns the lock's identity string.
func mutexAcquisition(p *Package, call *ast.CallExpr, obj *types.Func) (string, bool) {
	switch obj.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
	default:
		return "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return lockID(p, sel.X), true
}

// mutexRelease mirrors mutexAcquisition for Unlock/RUnlock.
func mutexRelease(p *Package, call *ast.CallExpr) (string, bool) {
	obj := staticCallee(p, call)
	if obj == nil {
		return "", false
	}
	switch obj.FullName() {
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
	default:
		return "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return lockID(p, sel.X), true
}

// lockID names a mutex by where it lives rather than which variable
// happens to hold it at the call site, so `e.reg.mu` in the engine and
// `g.mu` in a registry method are the same lock: a field selection
// becomes ownerType.field, a bare variable of a named type becomes the
// type name, anything else falls back to the variable name. IDs are
// package-qualified.
func lockID(p *Package, x ast.Expr) string {
	x = unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if owner := namedTypeName(p.Info.TypeOf(x.X)); owner != "" {
			return p.Name + "." + owner + "." + x.Sel.Name
		}
		return p.Name + "." + x.Sel.Name
	case *ast.Ident:
		if owner := namedTypeName(p.Info.TypeOf(x)); owner != "" && owner != "Mutex" && owner != "RWMutex" {
			return p.Name + "." + owner
		}
		return p.Name + "." + x.Name
	default:
		return p.Name + "." + types.ExprString(x)
	}
}

// namedTypeName returns the base named type's name behind any
// pointers, or "".
func namedTypeName(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// externalFacts is the knowledge table for functions outside the
// analyzed set — the standard library, mostly. Matching is on
// types.Func.FullName. The table is deliberately small and explicit:
// an unknown external is assumed fact-free (under-approximation), which
// keeps false positives near zero at the cost of missing exotic sinks.
func externalFacts(id string) funcFacts {
	var f funcFacts
	switch id {
	case "time.Now", "time.Since", "time.Until":
		f.readsClock = true
		return f
	case "time.Sleep", "(*sync.WaitGroup).Wait", "(*time.Timer).Stop", "(*time.Ticker).Stop":
		if id == "time.Sleep" || id == "(*sync.WaitGroup).Wait" {
			f.blocks = true
		}
		return f
	case "io.Copy", "io.ReadAll", "io.WriteString", "io.ReadFull":
		f.blocks = true
		f.allocates = id == "io.ReadAll"
		f.writesOrdered = id == "io.WriteString" || id == "io.Copy"
		return f
	case "errors.New":
		f.allocates = true
		return f
	}
	// fmt: Fprint*/Print* write ordered output to a sink that may block;
	// every fmt call allocates (boxing, buffers, the result string).
	if strings.HasPrefix(id, "fmt.") {
		f.allocates = true
		name := strings.TrimPrefix(id, "fmt.")
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			f.writesOrdered = true
			f.blocks = true
		}
		return f
	}
	// strconv: the formatting half allocates (Append* writes into a
	// caller-owned buffer and is the sanctioned hot-path form).
	if strings.HasPrefix(id, "strconv.") {
		name := strings.TrimPrefix(id, "strconv.")
		if strings.HasPrefix(name, "Format") || strings.HasPrefix(name, "Quote") ||
			name == "Itoa" || name == "Unquote" {
			f.allocates = true
		}
		return f
	}
	// Known-blocking I/O families: os files, the network, buffered I/O
	// flush/scan, and JSON stream codecs.
	switch {
	case strings.HasPrefix(id, "(*os.File)."),
		strings.HasPrefix(id, "net."), strings.HasPrefix(id, "(*net."),
		strings.HasPrefix(id, "(net."), strings.HasPrefix(id, "net/http."),
		strings.HasPrefix(id, "(*net/http."),
		id == "(*bufio.Writer).Flush", id == "(*bufio.Writer).Write",
		id == "(*bufio.Writer).WriteString", id == "(*bufio.Reader).Read",
		id == "(*bufio.Scanner).Scan",
		id == "(*encoding/json.Encoder).Encode", id == "(*encoding/json.Decoder).Decode",
		id == "(io.Writer).Write", id == "(io.Reader).Read", id == "(io.Closer).Close":
		f.blocks = true
	}
	switch id {
	case "os.ReadFile", "os.WriteFile", "os.Open", "os.OpenFile", "os.Create",
		"os.Remove", "os.RemoveAll", "os.Rename", "os.Stat", "os.ReadDir",
		"os.MkdirAll", "os.Mkdir":
		f.blocks = true
	}
	return f
}
