package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop forbids `_ =` (and `_, _ =`) discards of calls that return an
// error. A silently dropped error in the service layer hides an
// overload or shutdown failure; in the simulation core it hides a
// broken invariant. Audited discards carry //hopplint:errok <reason> on
// the assignment, and the reason is mandatory — a bare waiver is itself
// a finding.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarding error-returning calls without //hopplint:errok <reason>",
	Run:  runErrDrop,
}

func runErrDrop(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Pkgs {
		diags = append(diags, errDropPackage(p)...)
	}
	return diags
}

func errDropPackage(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if !allBlank(as.Lhs) || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !returnsError(p, call) {
				return true
			}
			reason, waived := p.waiver(as.Pos(), "errok")
			if waived && reason != "" {
				return true
			}
			msg := "error-returning call discarded with _; handle it or waive with //hopplint:errok <reason>"
			if waived {
				msg = "//hopplint:errok waiver has no reason; state why the error is safe to drop"
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(as.Pos()),
				Analyzer: "errdrop",
				Message:  msg,
			})
			return true
		})
	}
	return diags
}

// allBlank reports whether every assignment target is the blank
// identifier (the shape that discards a result set wholesale).
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

// returnsError reports whether the call yields an error among its
// results.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
