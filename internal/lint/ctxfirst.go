package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the two context rules: a context.Context parameter
// is always the first parameter (the convention every caller in this
// repo relies on when threading cancellation), and the deterministic
// packages never store a context in a struct field — a stored context
// couples pure simulation state to a request lifetime and survives the
// call that should have bounded it.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter and must not live in deterministic-package structs",
	Run:  runCtxFirst,
}

func runCtxFirst(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Pkgs {
		diags = append(diags, ctxFirstPackage(p)...)
	}
	return diags
}

func ctxFirstPackage(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				diags = append(diags, checkCtxParams(p, n.Name.Name, n.Type)...)
			case *ast.FuncLit:
				diags = append(diags, checkCtxParams(p, "function literal", n.Type)...)
			case *ast.StructType:
				if !DeterministicPackages[p.Name] {
					return true
				}
				for _, field := range n.Fields.List {
					if isContextType(p.Info.TypeOf(field.Type)) {
						diags = append(diags, Diagnostic{
							Pos:      p.Fset.Position(field.Pos()),
							Analyzer: "ctxfirst",
							Message:  "struct stores a context.Context; deterministic packages must take contexts as call parameters, not state",
						})
					}
				}
			}
			return true
		})
	}
	return diags
}

// checkCtxParams flags context parameters appearing after position 0.
// (Several trailing contexts are nonsensical and flagged one by one.)
func checkCtxParams(p *Package, what string, ft *ast.FuncType) []Diagnostic {
	if ft.Params == nil {
		return nil
	}
	var diags []Diagnostic
	pos := 0
	for _, field := range ft.Params.List {
		isCtx := isContextType(p.Info.TypeOf(field.Type))
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos > 0 {
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(field.Pos()),
				Analyzer: "ctxfirst",
				Message:  what + " takes a context.Context after other parameters; the context comes first",
			})
		}
		pos += n
	}
	return diags
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
