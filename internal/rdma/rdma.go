// Package rdma models the remote half of the testbed: a memory node
// reachable over a 56 Gbps InfiniBand-class fabric. The fabric is a
// queueing model — transfers serialize on the link at its bandwidth, on
// top of a base latency with configurable jitter — so prefetch
// timeliness and network congestion (§III-E's motivation for the policy
// engine) emerge naturally.
//
// The paper reports ~4 µs to move a 4 KB page (§II-A step 4); the
// default parameters reproduce that.
package rdma

import (
	"fmt"

	"hopp/internal/flatmap"
	"math/rand"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// Config parameterizes the fabric.
type Config struct {
	// BaseLatency is the fixed per-transfer cost (NIC doorbell, switch
	// hops, DMA setup). Default 3.4 µs, which with a 4 KB payload at
	// 56 Gbps yields the paper's ≈4 µs page read.
	BaseLatency vclock.Duration
	// BytesPerNS is link bandwidth. 56 Gbps = 7 bytes/ns. Default 7.
	BytesPerNS float64
	// JitterFrac scales uniform latency noise: each transfer's base
	// latency is multiplied by 1 + U(0, JitterFrac). Models the "remote
	// swap latency is volatile" observation (§I ⑤). Default 0.
	JitterFrac float64
	// Seed feeds the jitter generator.
	Seed int64
}

func (c *Config) fill() {
	if c.BaseLatency == 0 {
		c.BaseLatency = 3400 * vclock.Nanosecond
	}
	if c.BytesPerNS == 0 {
		c.BytesPerNS = 7
	}
}

// Stats is the fabric's ledger.
type Stats struct {
	Transfers     uint64
	Bytes         uint64
	QueueDelaySum vclock.Duration
	Busy          vclock.Duration
}

// MeanQueueDelay is the average time transfers waited for the link.
func (s Stats) MeanQueueDelay() vclock.Duration {
	if s.Transfers == 0 {
		return 0
	}
	return s.QueueDelaySum / vclock.Duration(s.Transfers)
}

// Fabric is a single shared link to the memory node.
type Fabric struct {
	cfg    Config
	rng    *rand.Rand
	freeAt vclock.Time
	stats  Stats
}

// NewFabric builds a fabric.
func NewFabric(cfg Config) *Fabric {
	cfg.fill()
	return &Fabric{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Transfer schedules moving size bytes starting no earlier than now and
// returns the completion time. Concurrent transfers queue behind each
// other on the link.
func (f *Fabric) Transfer(now vclock.Time, size int) vclock.Time {
	start := now
	if f.freeAt.After(start) {
		start = f.freeAt
	}
	queueDelay := start.Sub(now)
	wire := vclock.Duration(float64(size) / f.cfg.BytesPerNS)
	f.freeAt = start.Add(wire)
	lat := f.cfg.BaseLatency
	if f.cfg.JitterFrac > 0 {
		lat += vclock.Duration(float64(lat) * f.cfg.JitterFrac * f.rng.Float64())
	}
	f.stats.Transfers++
	f.stats.Bytes += uint64(size)
	f.stats.QueueDelaySum += queueDelay
	f.stats.Busy += wire
	return start.Add(wire + lat)
}

// PageRead schedules a 4 KB page read and returns its completion time.
func (f *Fabric) PageRead(now vclock.Time) vclock.Time {
	return f.Transfer(now, memsim.PageSize)
}

// PageWrite schedules a 4 KB page writeback and returns its completion
// time.
func (f *Fabric) PageWrite(now vclock.Time) vclock.Time {
	return f.Transfer(now, memsim.PageSize)
}

// Stats returns a copy of the ledger.
func (f *Fabric) Stats() Stats { return f.stats }

// Utilization returns the fraction of [0, horizon] the link spent busy.
func (f *Fabric) Utilization(horizon vclock.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(f.stats.Busy) / float64(horizon)
}

// Node is the remote memory node's page store. Pages arrive via reclaim
// writebacks and leave (logically) via reads; reads do not remove pages,
// matching swap semantics where the remote copy stays valid until
// overwritten.
type Node struct {
	pages *flatmap.Map[struct{}]
	cap   int

	reads    uint64
	writes   uint64
	readMiss uint64
}

// NewNode builds a node holding at most capPages pages; capPages <= 0
// means unbounded.
func NewNode(capPages int) *Node {
	return &Node{pages: flatmap.New[struct{}](256), cap: capPages}
}

// Write stores a page, as a reclaim writeback does. It fails when the
// node is full.
func (n *Node) Write(k memsim.PageKey) error {
	pk := k.Pack()
	if !n.pages.Has(pk) && n.cap > 0 && n.pages.Len() >= n.cap {
		return fmt.Errorf("rdma: memory node full (%d pages)", n.cap)
	}
	n.pages.Put(pk, struct{}{})
	n.writes++
	return nil
}

// Read checks a page out for a swap-in; it reports whether the node
// holds the page.
func (n *Node) Read(k memsim.PageKey) bool {
	n.reads++
	if n.pages.Has(k.Pack()) {
		return true
	}
	n.readMiss++
	return false
}

// Has reports page presence without counting a read.
func (n *Node) Has(k memsim.PageKey) bool {
	return n.pages.Has(k.Pack())
}

// Free drops a page, as when its owning process exits.
func (n *Node) Free(k memsim.PageKey) { n.pages.Delete(k.Pack()) }

// Used returns resident page count.
func (n *Node) Used() int { return n.pages.Len() }

// Reads returns total read ops (including misses).
func (n *Node) Reads() uint64 { return n.reads }

// Writes returns total write ops.
func (n *Node) Writes() uint64 { return n.writes }

// ReadMisses returns reads of absent pages (a simulation-consistency
// signal: the kernel should never swap in a page it never swapped out).
func (n *Node) ReadMisses() uint64 { return n.readMiss }
