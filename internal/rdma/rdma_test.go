package rdma

import (
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

func TestPageReadLatencyMatchesPaper(t *testing.T) {
	f := NewFabric(Config{})
	done := f.PageRead(0)
	// §II-A step 4: ~4 µs to move a 4 KB page.
	lat := done.Sub(0)
	if lat < 3900*vclock.Nanosecond || lat > 4100*vclock.Nanosecond {
		t.Fatalf("page read latency = %v, want ≈4 µs", lat)
	}
}

func TestTransfersSerializeOnLink(t *testing.T) {
	f := NewFabric(Config{})
	d1 := f.PageRead(0)
	d2 := f.PageRead(0) // issued concurrently: must queue behind d1's wire time
	if !d2.After(d1) {
		t.Fatalf("concurrent transfers did not serialize: %v vs %v", d1, d2)
	}
	size := memsim.PageSize
	wire := vclock.Duration(float64(size) / 7)
	if got := d2.Sub(d1); got != wire {
		t.Fatalf("second transfer displaced by %v, want one wire time %v", got, wire)
	}
	if f.Stats().MeanQueueDelay() == 0 {
		t.Fatal("queue delay not recorded")
	}
}

func TestIdleLinkNoQueueDelay(t *testing.T) {
	f := NewFabric(Config{})
	f.PageRead(0)
	f.PageRead(1_000_000) // long after the link drained
	if f.Stats().QueueDelaySum != 0 {
		t.Fatalf("unexpected queue delay %v", f.Stats().QueueDelaySum)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	a := NewFabric(Config{JitterFrac: 0.5, Seed: 1})
	b := NewFabric(Config{JitterFrac: 0.5, Seed: 1})
	base := NewFabric(Config{})
	for i := 0; i < 100; i++ {
		now := vclock.Time(i * 10_000_000)
		da, db := a.PageRead(now), b.PageRead(now)
		if da != db {
			t.Fatal("same seed produced different latencies")
		}
		d0 := base.PageRead(now)
		if da.Before(d0) {
			t.Fatal("jitter made transfer faster than jitter-free")
		}
		if da.Sub(d0) > vclock.Duration(float64(3400)*0.5)+1 {
			t.Fatalf("jitter %v exceeds bound", da.Sub(d0))
		}
	}
}

func TestUtilization(t *testing.T) {
	f := NewFabric(Config{})
	for i := 0; i < 10; i++ {
		f.PageWrite(0)
	}
	u := f.Utilization(vclock.Time(10 * memsim.PageSize / 7))
	if u < 0.9 || u > 1.1 {
		t.Fatalf("utilization = %f, want ≈1 for saturated link", u)
	}
	if f.Utilization(0) != 0 {
		t.Fatal("zero horizon should report zero utilization")
	}
}

func TestStatsBytes(t *testing.T) {
	f := NewFabric(Config{})
	f.PageRead(0)
	f.Transfer(0, 100)
	s := f.Stats()
	if s.Transfers != 2 || s.Bytes != memsim.PageSize+100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNodeWriteReadFree(t *testing.T) {
	n := NewNode(0)
	k := memsim.PageKey{PID: 1, VPN: 9}
	if n.Read(k) {
		t.Fatal("read of absent page succeeded")
	}
	if n.ReadMisses() != 1 {
		t.Fatal("read miss not counted")
	}
	if err := n.Write(k); err != nil {
		t.Fatal(err)
	}
	if !n.Read(k) || !n.Has(k) {
		t.Fatal("written page not readable")
	}
	if n.Used() != 1 {
		t.Fatalf("Used = %d", n.Used())
	}
	n.Free(k)
	if n.Has(k) {
		t.Fatal("freed page still present")
	}
}

func TestNodeCapacity(t *testing.T) {
	n := NewNode(2)
	if err := n.Write(memsim.PageKey{VPN: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Write(memsim.PageKey{VPN: 2}); err != nil {
		t.Fatal(err)
	}
	if err := n.Write(memsim.PageKey{VPN: 3}); err == nil {
		t.Fatal("over-capacity write accepted")
	}
	// Rewriting a resident page is always fine.
	if err := n.Write(memsim.PageKey{VPN: 2}); err != nil {
		t.Fatalf("rewrite rejected: %v", err)
	}
}

// Property: completion time is monotone in issue time and never precedes
// issue + base latency.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		fab := NewFabric(Config{})
		now := vclock.Time(0)
		var lastDone vclock.Time
		for _, g := range gaps {
			now = now.Add(vclock.Duration(g))
			done := fab.PageRead(now)
			if done.Sub(now) < 3400 {
				return false
			}
			if done.Before(lastDone) {
				return false // link cannot reorder completions
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFabricTransfer(b *testing.B) {
	f := NewFabric(Config{JitterFrac: 0.1})
	now := vclock.Time(0)
	for i := 0; i < b.N; i++ {
		now = now.Add(1000)
		f.PageRead(now)
	}
}
