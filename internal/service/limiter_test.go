package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// pinnedClock is an injectable limiter clock tests advance by hand, so
// refill arithmetic is exact instead of sleep-calibrated.
type pinnedClock struct{ at time.Time }

func (c *pinnedClock) now() time.Time          { return c.at }
func (c *pinnedClock) advance(d time.Duration) { c.at = c.at.Add(d) }

func newPinnedLimiter(rate, burst float64, maxClients int) (*ClientLimiter, *pinnedClock) {
	clk := &pinnedClock{at: time.Unix(1000, 0)}
	l := NewClientLimiter(rate, burst, maxClients)
	l.now = clk.now
	return l, clk
}

// Token-bucket arithmetic under a pinned clock: a fresh client gets its
// full burst, then exactly rate tokens per elapsed second, capped back
// at burst.
func TestClientLimiterRefill(t *testing.T) {
	l, clk := newPinnedLimiter(1, 2, 0)
	for i := 0; i < 2; i++ {
		if !l.Allow("a") {
			t.Fatalf("burst allowance request %d denied", i+1)
		}
	}
	if l.Allow("a") {
		t.Fatal("request past burst admitted with no time elapsed")
	}
	clk.advance(time.Second) // refills exactly one token at rate=1
	if !l.Allow("a") {
		t.Fatal("refilled token denied")
	}
	if l.Allow("a") {
		t.Fatal("second request admitted off a single refilled token")
	}
	clk.advance(time.Hour) // cap at burst, not rate*3600
	for i := 0; i < 2; i++ {
		if !l.Allow("a") {
			t.Fatalf("post-idle request %d denied; refill must cap at burst, not vanish", i+1)
		}
	}
	if l.Allow("a") {
		t.Fatal("idle refill exceeded burst cap")
	}

	s := l.Snapshot()
	if s.Admitted != 5 || s.Limited != 3 || s.Clients != 1 {
		t.Fatalf("snapshot = %+v, want admitted=5 limited=3 clients=1", s)
	}
	if pc := s.PerClient["a"]; pc.Admitted != 5 || pc.Limited != 3 {
		t.Fatalf("per-client = %+v, want admitted=5 limited=3", pc)
	}
}

// One client's exhaustion is invisible to another: buckets are
// independent by construction.
func TestClientLimiterIsolation(t *testing.T) {
	l, _ := newPinnedLimiter(0, 1, 0) // rate 0: burst is all you get
	if !l.Allow("hog") {
		t.Fatal("hog's first request denied")
	}
	for i := 0; i < 3; i++ {
		if l.Allow("hog") {
			t.Fatal("hog admitted past its burst")
		}
	}
	if !l.Allow("polite") {
		t.Fatal("polite client denied because of the hog's traffic")
	}
}

// Past the tracked-clients bound the stalest bucket is recycled, and a
// recycled client returns to a full burst — strictly more permissive.
func TestClientLimiterEvictsStalest(t *testing.T) {
	l, clk := newPinnedLimiter(0, 1, 2)
	l.Allow("old")
	clk.advance(time.Second)
	l.Allow("mid")
	clk.advance(time.Second)
	l.Allow("new") // third client: "old" (stalest) is recycled
	s := l.Snapshot()
	if s.Clients != 2 {
		t.Fatalf("tracked clients = %d, want 2 (bound)", s.Clients)
	}
	if _, ok := s.PerClient["old"]; ok {
		t.Fatal("stalest client still tracked past the bound")
	}
	if !l.Allow("old") {
		t.Fatal("recycled client denied; eviction must reset to a full burst")
	}
}

// A nil limiter admits everything and snapshots to zero — the daemon's
// default when -client-rate is off.
func TestClientLimiterNil(t *testing.T) {
	var l *ClientLimiter
	if !l.Allow("anyone") {
		t.Fatal("nil limiter denied")
	}
	if s := l.Snapshot(); s.Admitted != 0 || s.Limited != 0 || s.Clients != 0 || s.PerClient != nil {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}

// The fairness acceptance test over real HTTP: a flooding client burns
// through its own bucket and collects 429s (with Retry-After), while a
// second client submitting through the same saturated period is
// admitted every time. /metrics exposes the per-client accounting.
func TestHTTPPerClientFairness(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	e.runSim = instantSim
	limiter, _ := newPinnedLimiter(0, 3, 0) // no refill: 3 submissions per client, period
	srv := httptest.NewServer(NewHandlerWith(e, HandlerConfig{Limiter: limiter}))
	t.Cleanup(srv.Close)

	flood := func(seed int64) *http.Response { return postRunAs(t, srv.URL, "flood", seedReq(seed)) }
	slow := func(seed int64) *http.Response { return postRunAs(t, srv.URL, "slow", seedReq(seed)) }

	var floodAdmitted, floodLimited int
	for seed := int64(1); seed <= 6; seed++ {
		resp := flood(seed)
		switch resp.StatusCode {
		case http.StatusAccepted:
			floodAdmitted++
		case http.StatusTooManyRequests:
			floodLimited++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			var body map[string]string
			if err := jsonDecode(resp, &body); err != nil {
				t.Fatal(err)
			}
			if body["error"] != ErrClientLimited.Error() {
				t.Fatalf("429 body = %q, want ErrClientLimited", body["error"])
			}
			continue
		default:
			t.Fatalf("flood submission = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if floodAdmitted != 3 || floodLimited != 3 {
		t.Fatalf("flooder admitted/limited = %d/%d, want 3/3", floodAdmitted, floodLimited)
	}

	// The well-behaved client submits while the flooder is fully limited:
	// every one of its requests must go through.
	for seed := int64(101); seed <= 103; seed++ {
		resp := slow(seed)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("slow client submission = %d while flooder limited, want 202", resp.StatusCode)
		}
		resp.Body.Close()
	}

	var m MetricsSnapshot
	getJSON(t, srv.URL+"/metrics", &m)
	if m.Admission == nil {
		t.Fatal("/metrics missing admission block with a limiter configured")
	}
	if m.Admission.Admitted != 6 || m.Admission.Limited != 3 {
		t.Fatalf("admission totals = %+v, want admitted=6 limited=3", m.Admission)
	}
	if pc := m.Admission.PerClient["key:flood"]; pc.Limited != 3 {
		t.Fatalf("flooder per-client = %+v, want limited=3", pc)
	}
	if pc := m.Admission.PerClient["key:slow"]; pc.Admitted != 3 || pc.Limited != 0 {
		t.Fatalf("slow per-client = %+v, want admitted=3 limited=0", pc)
	}
}

// Shed submissions never reach the engine: no registry entry, no
// jobs_* movement — the fairness layer sits wholly in front.
func TestLimitedSubmissionLeavesNoTrace(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	e.runSim = instantSim
	e.runExp = fakeTables
	limiter, _ := newPinnedLimiter(0, 1, 0)
	srv := httptest.NewServer(NewHandlerWith(e, HandlerConfig{Limiter: limiter}))
	t.Cleanup(srv.Close)

	resp := postRunAs(t, srv.URL, "c", seedReq(1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission = %d", resp.StatusCode)
	}
	resp = postRunAs(t, srv.URL, "c", seedReq(2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission = %d, want 429", resp.StatusCode)
	}
	if kc := e.Metrics().Jobs[KindSim]; kc.Submitted != 1 || kc.Rejected != 0 {
		t.Fatalf("engine counters = %+v; a client-limited submission must not touch the engine", kc)
	}

	// Experiment routes sit behind the same gate.
	resp, err := http.Post(srv.URL+"/v1/experiments/fig9/runs?quick=true", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		// Different key (no header → remote addr), so this one is NOT
		// limited — it proves keying, not leakage.
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("experiment submission = %d", resp.StatusCode)
		}
	}
}

// postRunAs is postRun with an X-API-Key header identifying the client,
// returning the raw response (body open) for status/header checks.
func postRunAs(t *testing.T, base, apiKey string, req RunRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, base+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-API-Key", apiKey)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
