package service

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverySubmittedJob(t *testing.T) {
	p := NewPool(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d jobs, want 100", got)
	}
}

// A single worker must execute jobs in submission order.
func TestPoolFIFOWithOneWorker(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		if err := p.Submit(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

// A bounded queue sheds over-limit submissions with ErrQueueFull and
// accepts again once depth drops.
func TestPoolQueueBackpressure(t *testing.T) {
	p := NewPoolWithQueue(1, 2)
	started := make(chan struct{})
	gate := make(chan struct{})
	if err := p.Submit(func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue empty
	for i := 0; i < 2; i++ {
		if err := p.Submit(func() {}); err != nil {
			t.Fatalf("queue fill %d: %v", i, err)
		}
	}
	if err := p.Submit(func() {}); err != ErrQueueFull {
		t.Fatalf("over-limit Submit = %v, want ErrQueueFull", err)
	}
	if got := p.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2 (rejected job must not enqueue)", got)
	}
	close(gate)
	// Depth drains as the worker catches up; submissions are accepted again.
	deadline := time.Now().Add(10 * time.Second)
	for p.QueueDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Submit(func() {}); err != nil {
		t.Fatalf("Submit after drain = %v", err)
	}
	p.Close()
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // second Close must not hang or panic
}

// Close must block until queued jobs have drained.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2)
	var done atomic.Int64
	for i := 0; i < 10; i++ {
		_ = p.Submit(func() {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
		})
	}
	p.Close()
	if got := done.Load(); got != 10 {
		t.Fatalf("Close returned with %d/10 jobs done", got)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	wg.Add(20)
	for i := 0; i < 20; i++ {
		_ = p.Submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	p.Close()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", got, workers)
	}
}
