package service

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// JobKind distinguishes the two units of work the engine serves. Both
// flow through the same admission control, worker pool, deadline, and
// retention policy; the kind only decides what executes and how the
// result serializes.
type JobKind string

// The job kinds: workload × system simulations, experiment
// (table/figure) regenerations, sweeps — grid submissions whose parent
// job fans out into sim children and aggregates their states — and
// ingests: client-streamed HMTT traces flowing through the live
// HPD→prefetcher pipeline.
const (
	KindSim        JobKind = "sim"
	KindExperiment JobKind = "experiment"
	KindSweep      JobKind = "sweep"
	KindIngest     JobKind = "ingest"
)

// jobKinds lists every kind in fixed order, so anything iterating kinds
// (metrics snapshots, journal summaries) stays deterministic without
// ranging over a map.
var jobKinds = []JobKind{KindSim, KindExperiment, KindSweep, KindIngest}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: Queued → Running → one of Done/Failed/Cancelled.
// Cache hits are born Done.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one admitted unit of work in the registry — a simulation run
// or an experiment regeneration. All fields except progress are guarded
// by the owning registry's mutex; progress is written lock-free by the
// experiment callback while the job executes.
type Job struct {
	ID    string
	Kind  JobKind
	State JobState
	// Deadline is the wall-clock instant the executing job's context
	// expires; zero while queued or when no -run-timeout is configured.
	Deadline time.Time
	// Result holds the serialized payload once State is done: marshaled
	// sim.Metrics for sim jobs, rendered table text for experiment jobs.
	Result []byte

	// Sim is the normalized payload of a KindSim job; Exp of a
	// KindExperiment job; sweep of a KindSweep job. Exactly one is
	// non-nil.
	Sim *RunRequest
	Exp *ExperimentRequest

	key       string // canonical cache key; also what makes jobs dedupable
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time // terminal-transition time, drives age eviction
	wallNS    int64
	simNS     int64
	errMsg    string
	progress  atomic.Int64 // completed simulation units (experiment + sweep jobs)
	cancel    func()
	done      chan struct{}
	// doneClosed guards the single close of done: cache hits close it at
	// submission, every other path closes it in finishLocked.
	doneClosed bool

	// Sweep linkage (all guarded by reg.mu).
	//
	// sweep is the parent-side fan-out state of a KindSweep job.
	// parent/parentID tie a sweep child back to its aggregating parent
	// (parent is nil for children restored from the journal — the ID
	// alone survives a restart). leader marks a follower: a child whose
	// canonical key matched an already in-flight job; it holds no pool
	// slot and inherits the leader's result at the leader's terminal
	// transition. followers is the leader-side mirror. inPool marks a
	// child whose execute closure has been handed to the worker pool.
	sweep     *sweepState
	parent    *Job
	parentID  string
	leader    *Job
	followers []*Job
	inPool    bool

	// ingest is the live session state of a KindIngest job. Ingest jobs
	// never hold a pool worker: their pump goroutine is owned by the
	// session and tracked by the engine's ingestWG.
	ingest *ingestSession
}

// registry is the bounded window of recent jobs: every admitted job of
// either kind lives here from submission until retention evicts it.
// It owns the engine's primary mutex — submission, state transitions,
// snapshots, and eviction all serialize on reg.mu, and the lock order
// is reg.mu → pool.mu, taken nowhere in reverse.
type registry struct {
	mu sync.Mutex

	retain    int
	retainAge time.Duration

	jobs   map[string]*Job
	order  []string // submission order; may hold evicted IDs until compaction
	term   []string // terminal jobs, oldest-finished first (eviction order)
	nextID int

	evictions atomic.Uint64
	journal   *Journal // optional; jobs are journaled on terminal transition
	jwrites   atomic.Uint64
	jerrors   atomic.Uint64
	// jdegraded mirrors "the most recent journal append failed" for the
	// /healthz degraded signal; set on error, cleared by the next
	// successful append. Atomic so health checks read it without reg.mu.
	jdegraded atomic.Bool
	// jerrBurst suppresses repeat logging inside one error burst: the
	// first failed append after a success logs, later failures stay
	// silent until a write succeeds again. Guarded by reg.mu.
	jerrBurst bool
	logf      func(format string, args ...any)
}

// newRegistry builds a registry bounded by retain entries and retainAge
// of terminal-job age (<= 0 disables the age bound). journal may be
// nil; logf must not be.
func newRegistry(retain int, retainAge time.Duration, journal *Journal, logf func(format string, args ...any)) *registry {
	if retain <= 0 {
		retain = DefaultRetainRuns
	}
	return &registry{
		retain:    retain,
		retainAge: retainAge,
		jobs:      make(map[string]*Job),
		journal:   journal,
		logf:      logf,
	}
}

// addLocked admits a job: assigns the next ID and records it in
// submission order. reg.mu must be held. Admission control runs before
// this — a rejected submission never reaches the registry, which is the
// PR 2 invariant both kinds now share.
func (g *registry) addLocked(j *Job) {
	g.nextID++
	j.ID = jobID(g.nextID)
	g.jobs[j.ID] = j
	g.order = append(g.order, j.ID)
}

// jobID renders the n-th admitted job's ID. Sim and experiment jobs
// share one ID space (r000042), so GET /v1/runs/{id} is kind-agnostic.
func jobID(n int) string { return fmt.Sprintf("r%06d", n) }

// jobIDNum parses a jobID back to its sequence number; replay uses it
// to advance nextID past recovered IDs so fresh submissions never
// collide with journaled history.
func jobIDNum(id string) (int, bool) {
	num, ok := strings.CutPrefix(id, "r")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// restoreLocked re-admits a journaled terminal job during replay:
// original ID, born terminal, done channel already closed, and — the
// load-bearing difference from markTerminalLocked — never re-journaled
// (its entry is already on disk). A duplicate ID overwrites the earlier
// replayed job in place (later journal lines are newer truth) without
// growing order/term. reg.mu must be held.
func (g *registry) restoreLocked(j *Job) {
	if n, ok := jobIDNum(j.ID); ok && n > g.nextID {
		g.nextID = n
	}
	if _, exists := g.jobs[j.ID]; !exists {
		g.order = append(g.order, j.ID)
		g.term = append(g.term, j.ID)
	}
	g.jobs[j.ID] = j
}

// getLocked looks a job up; reg.mu must be held.
func (g *registry) getLocked(id string) (*Job, bool) {
	j, ok := g.jobs[id]
	return j, ok
}

// sizeLocked reports the live job count; reg.mu must be held.
func (g *registry) sizeLocked() int { return len(g.jobs) }

// markTerminalLocked records a job's transition into a terminal state,
// journals it, and evicts the oldest terminal jobs past the retention
// bounds; reg.mu must be held. Every path that finishes a job goes
// through here, which is what keeps the registry O(retention +
// in-flight) instead of O(total submissions). Journaling happens at the
// terminal transition — not at eviction — so a crash between finish and
// eviction loses nothing and `-journal-replay` can rebuild the full
// terminal history.
func (g *registry) markTerminalLocked(j *Job, now time.Time) {
	j.finished = now
	g.term = append(g.term, j.ID)
	g.journalLocked(j)
	g.evictLocked(now)
}

// journalLocked appends one terminal job to the journal, best-effort:
// an append error counts in journal_write_errors and logs once per
// error burst, but never fails the job or blocks eviction — the
// registry bound is load-bearing, the audit trail is not. reg.mu must
// be held.
func (g *registry) journalLocked(j *Job) {
	if g.journal == nil {
		return
	}
	g.appendEntryLocked(journalEntry(j))
}

// appendEntryLocked appends one prebuilt entry to the journal with the
// same best-effort error accounting as journalLocked. It exists for the
// callers that journal more than a terminal snapshot — sweep parents at
// submission, ingest sessions at open and at every chunk high-water
// mark; reg.mu must be held.
func (g *registry) appendEntryLocked(e JournalEntry) {
	if g.journal == nil {
		return
	}
	if err := g.journal.Append(e); err != nil {
		g.jerrors.Add(1)
		g.jdegraded.Store(true)
		if !g.jerrBurst {
			g.jerrBurst = true
			g.logf("journal append failed for job %s: %v (suppressing repeats until a write succeeds)", e.ID, err)
		}
		return
	}
	g.jwrites.Add(1)
	g.jdegraded.Store(false)
	if g.jerrBurst {
		g.jerrBurst = false
		g.logf("journal append recovered at job %s", e.ID)
	}
}

// evictLocked drops terminal jobs beyond the retention count or older
// than the retention age; reg.mu must be held. g.term is ordered by
// finish time, so eviction only ever pops from its front. Eviction is
// pure memory management: the evicted job was already journaled when it
// went terminal, so nothing is written on the way out. The
// submission-order slice is compacted lazily once evicted IDs dominate
// it, keeping both structures bounded without an O(n) scan per eviction.
func (g *registry) evictLocked(now time.Time) {
	n := 0
	for n < len(g.term) {
		id := g.term[n]
		overCount := len(g.term)-n > g.retain
		overAge := g.retainAge > 0 && now.Sub(g.jobs[id].finished) > g.retainAge
		if !overCount && !overAge {
			break
		}
		delete(g.jobs, id)
		n++
	}
	if n == 0 {
		return
	}
	g.term = g.term[n:]
	g.evictions.Add(uint64(n))
	if len(g.order) > 2*len(g.jobs) {
		kept := make([]string, 0, len(g.jobs))
		for _, id := range g.order {
			if _, ok := g.jobs[id]; ok {
				kept = append(kept, id)
			}
		}
		g.order = kept
	}
}

// listLocked appends a snapshot of every retained job in submission
// order; reg.mu must be held. Evicted jobs no longer appear; under
// sustained load the list plateaus at the retention bound plus whatever
// is queued or running.
func (g *registry) listLocked(snap func(*Job) RunStatus) []RunStatus {
	out := make([]RunStatus, 0, len(g.jobs))
	for _, id := range g.order {
		if j, ok := g.jobs[id]; ok {
			out = append(out, snap(j))
		}
	}
	return out
}
