package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hopp/internal/experiments"
	"hopp/internal/sim"
)

// jsonDecode drains a response body into v and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// expReq is a distinct-seed experiment request (each seed is its own
// cache key, so every call is a real job unless stated otherwise).
func expReq(seed int64) ExperimentRequest {
	return ExperimentRequest{Experiment: "fig9", Seed: seed, Quick: true}
}

// fakeTables is a runExp stub returning a fixed render instantly. It
// ticks Progress once so tests see the gauge move (and replay tests
// catch a progress count dropped on the journal round-trip).
func fakeTables(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
	if opts.Progress != nil {
		opts.Progress()
	}
	return []experiments.Table{{Title: "fake " + exp.ID, Header: []string{"x"}, Rows: [][]string{{"1"}}}}, nil
}

// Experiment submissions are jobs: queued → running → done through the
// same registry sim runs use, polled by the same ID, with the rendered
// text as their Output.
func TestExperimentJobLifecycle(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	e.runExp = fakeTables
	st, err := e.SubmitExperiment(expReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindExperiment || st.Experiment != "fig9" {
		t.Fatalf("submitted job = %+v, want kind=experiment id=fig9", st)
	}
	final := waitDone(t, e, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if !strings.Contains(final.Output, "fake fig9") {
		t.Fatalf("Output = %q, want rendered table", final.Output)
	}
	if len(final.Metrics) != 0 {
		t.Fatal("experiment job carries sim Metrics")
	}
	kc := e.Metrics().Jobs[KindExperiment]
	if kc.Submitted != 1 || kc.Completed != 1 {
		t.Fatalf("experiment counters = %+v, want submitted/completed 1", kc)
	}
	// Both kinds list through the one registry.
	runs := e.Runs()
	if len(runs) != 1 || runs[0].Kind != KindExperiment {
		t.Fatalf("Runs() = %+v, want the one experiment job", runs)
	}
}

// A repeated experiment submission is a cache hit born done — same
// bytes, no second execution (the unified analogue of the sim-run cache
// contract).
func TestExperimentJobCacheHit(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	var calls int
	e.runExp = func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
		calls++
		return fakeTables(ctx, exp, opts)
	}
	first, err := e.SubmitExperiment(expReq(1))
	if err != nil {
		t.Fatal(err)
	}
	firstDone := waitDone(t, e, first.ID)
	second, err := e.SubmitExperiment(expReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("repeat = {cached:%v state:%s}, want cached+done", second.Cached, second.State)
	}
	if second.Output != firstDone.Output || second.Output == "" {
		t.Fatal("cache hit returned different output than the job that populated it")
	}
	if calls != 1 {
		t.Fatalf("experiment executed %d times, want 1", calls)
	}
}

// Experiment submissions hit the same queue bound as sim runs: over
// -max-queue they get ErrOverloaded (HTTP 429) and — the PR 2 invariant
// extended to the new kind — leave no registry entry and no cache
// pollution behind.
func TestExperimentJobRejectedUnderMaxQueueLeavesNoTrace(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, MaxQueue: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return sim.Metrics{System: "test"}, nil
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
	var expCalls int
	e.runExp = func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
		expCalls++
		return fakeTables(ctx, exp, opts)
	}
	// One sim run holds the worker, one fills the queue.
	if _, err := e.Submit(seedReq(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e.Submit(seedReq(2)); err != nil {
		t.Fatal(err)
	}
	_, err := e.SubmitExperiment(expReq(7))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit experiment submit = %v, want ErrOverloaded", err)
	}
	if got := len(e.Runs()); got != 2 {
		t.Fatalf("rejected experiment left a registry entry: %d jobs, want 2", got)
	}
	m := e.Metrics()
	kc := m.Jobs[KindExperiment]
	if kc.Rejected != 1 || kc.Submitted != 0 {
		t.Fatalf("experiment counters = %+v, want rejected=1 submitted=0", kc)
	}
	cacheLen := m.CacheSize
	close(release)

	// No cache pollution: once capacity frees up, the same request must
	// execute for real, not come back "cached" from the rejected attempt.
	waitCounters(t, e, func(m MetricsSnapshot) bool { return m.Jobs[KindSim].Completed == 2 })
	if got := e.cache.Len(); got < cacheLen {
		t.Fatalf("cache shrank across rejection: %d → %d", cacheLen, got)
	}
	st, err := e.SubmitExperiment(expReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached {
		t.Fatal("post-rejection resubmit reported cached: rejected submission polluted the cache")
	}
	if final := waitDone(t, e, st.ID); final.State != StateDone {
		t.Fatalf("resubmitted experiment = %s, want done", final.State)
	}
	if expCalls != 1 {
		t.Fatalf("experiment executed %d times, want exactly 1 (the admitted resubmission)", expCalls)
	}
}

// Experiment jobs are capped by the same -run-timeout: a pathological
// regeneration lands in StateFailed with the timeout error and moves the
// experiment kind's timed_out counter.
func TestExperimentJobTimesOutUnderRunTimeout(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, RunTimeout: 30 * time.Millisecond})
	e.runExp = func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
		<-ctx.Done() // only the deadline frees it
		return nil, ctx.Err()
	}
	st, err := e.SubmitExperiment(expReq(1))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, e, st.ID)
	if final.State != StateFailed {
		t.Fatalf("timed-out experiment state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, ErrRunTimeout.Error()) {
		t.Fatalf("error = %q, want it to mention %q", final.Error, ErrRunTimeout)
	}
	kc := e.Metrics().Jobs[KindExperiment]
	if kc.TimedOut != 1 || kc.Failed != 1 {
		t.Fatalf("experiment timeout counters = %+v, want timed_out/failed 1/1", kc)
	}
}

// Terminal experiment jobs age out of the registry under -retain-runs
// exactly like sim runs: the evicted ID answers ErrUnknownRun (404).
func TestExperimentJobEvictedPastRetention(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, RetainRuns: 1})
	e.runExp = fakeTables
	first, err := e.SubmitExperiment(expReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, first.ID)
	second, err := e.SubmitExperiment(expReq(2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, second.ID) // 1 worker: first finished before this, so it's evicted
	if _, err := e.Status(first.ID); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("Status(evicted experiment) = %v, want ErrUnknownRun", err)
	}
	m := e.Metrics()
	if m.RegistrySize != 1 || m.RegistryEvictions != 1 {
		t.Fatalf("registry = size %d evictions %d, want 1/1", m.RegistrySize, m.RegistryEvictions)
	}
}

// The job form over HTTP: POST /v1/experiments/{id}/runs returns 202
// with a job ID pollable at GET /v1/runs/{id}, and /metrics reports the
// work under kind "experiment".
func TestHTTPExperimentJobForm(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 1})
	e.runExp = fakeTables
	resp, err := http.Post(srv.URL+"/v1/experiments/fig9/runs?seed=3&quick=true", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st RunStatus
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job-form submit = %d, want 202", resp.StatusCode)
	}
	if st.Kind != KindExperiment || st.Experiment != "fig9" || st.Seed != 3 || !st.Quick {
		t.Fatalf("job-form status = %+v", st)
	}
	final := pollRun(t, srv.URL, st.ID)
	if final.State != StateDone || !strings.Contains(final.Output, "fake fig9") {
		t.Fatalf("final = state %s output %q", final.State, final.Output)
	}
	var m MetricsSnapshot
	getJSON(t, srv.URL+"/metrics", &m)
	kc, ok := m.Jobs[KindExperiment]
	if !ok {
		t.Fatalf(`/metrics jobs missing kind "experiment": %+v`, m.Jobs)
	}
	if kc.Submitted != 1 || kc.Completed != 1 {
		t.Fatalf("experiment kind counters over HTTP = %+v", kc)
	}
	if _, ok := m.Jobs[KindSim]; !ok {
		t.Fatalf(`/metrics jobs missing kind "sim": %+v`, m.Jobs)
	}
	// Unknown experiment on the job form: 404, nothing admitted.
	resp, err = http.Post(srv.URL+"/v1/experiments/nope/runs", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment job form = %d, want 404", resp.StatusCode)
	}
}

// HTTP surface of the unified admission control: the job form answers
// 429 + Retry-After when the queue is at its bound.
func TestHTTPExperimentJobForm429(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 1, MaxQueue: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return sim.Metrics{System: "test"}, nil
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
	defer close(release)
	if _, err := e.Submit(seedReq(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e.Submit(seedReq(2)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/experiments/fig9/runs", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit job form = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// The legacy streaming form shares the same admission control.
	resp, err = http.Post(srv.URL+"/v1/experiments/fig9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit legacy form = %d, want 429", resp.StatusCode)
	}
}

// The legacy streaming endpoint is a wrapper over the job lifecycle, and
// its bytes must equal a direct in-process render of the same experiment
// at the same (seed, quick) — the byte-stability acceptance criterion.
func TestLegacyExperimentEndpointByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const id, seed = "fig2", int64(1)
	exp, ok := experiments.ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	tables, err := exp.Run(context.Background(), experiments.Options{Seed: seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, tab := range tables {
		tab.Fprint(&want)
	}

	e := newTestEngine(t, Options{Workers: 1})
	var got bytes.Buffer
	if err := e.RunExperiment(context.Background(), id, seed, true, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("legacy wrapper output diverged from direct render:\n--- wrapper\n%s\n--- direct\n%s", got.String(), want.String())
	}
	// And the job's recorded Output is those same bytes.
	runs := e.Runs()
	if len(runs) != 1 || runs[0].Output != want.String() {
		t.Fatal("job Output differs from the streamed bytes")
	}
}

// Terminal jobs of both kinds land in the journal the moment they
// finish — not at eviction — and replaying the JSONL stream
// reconstructs what ran: IDs, kinds, states, and payloads. Eviction
// afterwards is pure memory management; a crash between finish and
// eviction loses nothing.
func TestJournalReplayAfterEviction(t *testing.T) {
	var buf syncBuffer
	e := newTestEngine(t, Options{Workers: 1, RetainRuns: 1, Journal: NewJournal(&buf)})
	e.runSim = instantSim
	e.runExp = fakeTables

	simSt, err := e.Submit(seedReq(5))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, simSt.ID)
	expSt, err := e.SubmitExperiment(expReq(6))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, expSt.ID) // evicts the sim job
	last, err := e.Submit(seedReq(7))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, last.ID) // evicts the experiment job

	waitCounters(t, e, func(m MetricsSnapshot) bool { return m.JournalWrites == 3 })
	entries, err := ReadJournal(buf.reader())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("journal has %d entries, want 3 (every terminal job)", len(entries))
	}
	se, xe := entries[0], entries[1]
	if se.ID != simSt.ID || se.Kind != KindSim || se.State != StateDone {
		t.Fatalf("first journal entry = %+v, want done sim job %s", se, simSt.ID)
	}
	if se.Workload != "sequential" || se.System != "fastswap" || se.Seed != 5 {
		t.Fatalf("sim entry payload = %+v", se)
	}
	if xe.ID != expSt.ID || xe.Kind != KindExperiment || xe.State != StateDone {
		t.Fatalf("second journal entry = %+v, want done experiment job %s", xe, expSt.ID)
	}
	if xe.Experiment != "fig9" || xe.Seed != 6 || !xe.Quick {
		t.Fatalf("experiment entry payload = %+v", xe)
	}
	if se.SubmittedUnixNS == 0 || se.FinishedUnixNS < se.SubmittedUnixNS {
		t.Fatalf("sim entry timestamps = %d/%d", se.SubmittedUnixNS, se.FinishedUnixNS)
	}
	if len(se.Metrics) == 0 {
		t.Fatal("done sim entry carries no Metrics bytes; replay could not warm the cache")
	}
	if xe.Output == "" {
		t.Fatal("done experiment entry carries no Output; replay could not warm the cache")
	}
	if m := e.Metrics(); m.JournalWriteErrors != 0 {
		t.Fatalf("journal_write_errors = %d, want 0", m.JournalWriteErrors)
	}
}

// The on-disk journal round-trips through OpenJournal/ReadJournalFile,
// and reopening appends instead of truncating.
func TestJournalFileAppendsAcrossReopen(t *testing.T) {
	path := t.TempDir() + "/runs.jsonl"
	for i := 0; i < 2; i++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		err = j.Append(JournalEntry{ID: jobID(i + 1), Kind: KindSim, State: StateDone, Seed: int64(i)})
		if cerr := j.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].ID != "r000001" || entries[1].ID != "r000002" {
		t.Fatalf("replayed %+v, want two appended entries", entries)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the journal writes from a
// worker goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) reader() *bytes.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(append([]byte(nil), b.buf.Bytes()...))
}
