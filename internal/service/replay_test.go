package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The kill-and-restart acceptance test: run jobs of both kinds against
// a journaling daemon, record the exact GET /v1/runs/{id} bytes, tear
// the daemon down, bring up a fresh engine with -journal-replay
// semantics, and require the replayed daemon to serve byte-identical
// responses — registry and result cache rebuilt entirely from the
// journal, with zero work re-executed.
func TestJournalReplayRestartByteIdentical(t *testing.T) {
	path := t.TempDir() + "/runs.jsonl"
	jnl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(Options{Workers: 1, Journal: jnl})
	e1.runSim = instantSim
	e1.runExp = fakeTables
	srv1 := httptest.NewServer(NewHandler(e1))

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		st, code := postRun(t, srv1.URL, seedReq(seed))
		if code != http.StatusAccepted {
			t.Fatalf("submit seed %d = %d, want 202", seed, code)
		}
		ids = append(ids, st.ID)
	}
	expSt, err := e1.SubmitExperiment(expReq(4))
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, expSt.ID)
	for _, id := range ids {
		pollRun(t, srv1.URL, id)
	}
	want := make(map[string][]byte, len(ids))
	for _, id := range ids {
		want[id] = getBody(t, srv1.URL+"/v1/runs/"+id)
	}

	// Kill: drain the engine, close the listener and the journal file.
	srv1.Close()
	e1.Close()
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a brand-new engine whose only knowledge is the journal.
	e2 := newTestEngine(t, Options{Workers: 1})
	e2.runSim = instantSim
	stats, err := e2.ReplayJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovered != 4 || stats.Skipped != 0 || stats.Malformed != 0 {
		t.Fatalf("replay stats = %+v, want 4 recovered", stats)
	}
	srv2 := httptest.NewServer(NewHandler(e2))
	defer srv2.Close()

	for _, id := range ids {
		got := getBody(t, srv2.URL+"/v1/runs/"+id)
		if string(got) != string(want[id]) {
			t.Fatalf("replayed response for %s diverged:\n--- before restart\n%s--- after replay\n%s", id, want[id], got)
		}
	}

	m := e2.Metrics()
	if m.JournalReplayed != 4 {
		t.Fatalf("journal_replayed = %d, want 4", m.JournalReplayed)
	}
	if kc := m.Jobs[KindSim]; kc.Started != 0 {
		t.Fatalf("replay started %d sim jobs, want 0 — recovery must not re-execute", kc.Started)
	}

	// The cache was rebuilt from journaled result bytes: resubmitting a
	// recovered request is a hit, born done.
	st, code := postRun(t, srv2.URL, seedReq(2))
	if code != http.StatusOK || !st.Cached || st.State != StateDone {
		t.Fatalf("resubmit after replay = %d %+v, want 200 cached done", code, st)
	}
	// And fresh work gets an ID past the recovered history, not a reused one.
	fresh, err := e2.Submit(seedReq(99))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := jobIDNum(fresh.ID); n != 6 {
		t.Fatalf("first post-replay ID = %s, want r000006 (4 recovered + 1 cache-hit resubmit + 1)", fresh.ID)
	}
}

// A torn final line — the signature of a crash mid-append — is counted
// as malformed and skipped; every whole line before it is recovered.
func TestJournalReplayToleratesTornLine(t *testing.T) {
	e1 := newTestEngine(t, Options{Workers: 1})
	e1.runSim = instantSim
	var buf syncBuffer
	e1.SetJournal(NewJournal(&buf))
	for seed := int64(1); seed <= 2; seed++ {
		st, err := e1.Submit(seedReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, e1, st.ID)
	}
	waitCounters(t, e1, func(m MetricsSnapshot) bool { return m.JournalWrites == 2 })

	data, err := io.ReadAll(buf.reader())
	if err != nil {
		t.Fatal(err)
	}
	torn := string(data) + `{"id":"r000003","kind":"sim","sta` // crash mid-write

	e2 := newTestEngine(t, Options{Workers: 1})
	stats, err := e2.ReplayJournal(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn journal must not fail replay: %v", err)
	}
	if stats.Recovered != 2 || stats.Malformed != 1 {
		t.Fatalf("stats = %+v, want 2 recovered, 1 malformed", stats)
	}
	if _, err := e2.Status("r000002"); err != nil {
		t.Fatalf("recovered job missing: %v", err)
	}
	if _, err := e2.Status("r000003"); err == nil {
		t.Fatal("torn entry resurrected as a job")
	}
}

// Entries this build cannot restore — catalog drift, bad IDs,
// non-terminal states, unknown kinds — are skipped, counted, and do
// not poison the rest of the replay.
func TestJournalReplaySkipsUnrestorable(t *testing.T) {
	lines := strings.Join([]string{
		`{"id":"r000001","kind":"sim","state":"done","workload":"sequential","system":"fastswap","frac":0.25,"seed":1,"quick":true,"metrics":{"system":"test"}}`,
		`{"id":"r000002","kind":"sim","state":"done","workload":"no-such-workload","system":"fastswap","frac":0.25,"seed":2}`,
		`{"id":"bogus","kind":"sim","state":"done","workload":"sequential","system":"fastswap","frac":0.25,"seed":3}`,
		`{"id":"r000004","kind":"sim","state":"running","workload":"sequential","system":"fastswap","frac":0.25,"seed":4}`,
		`{"id":"r000005","kind":"warp","state":"done","seed":5}`,
		`not json at all`,
	}, "\n")
	e := newTestEngine(t, Options{Workers: 1})
	stats, err := e.ReplayJournal(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovered != 1 || stats.Skipped != 4 || stats.Malformed != 1 {
		t.Fatalf("stats = %+v, want 1 recovered, 4 skipped, 1 malformed", stats)
	}
	st, err := e.Status("r000001")
	if err != nil || st.State != StateDone || len(st.Metrics) == 0 {
		t.Fatalf("recovered job = %+v (%v), want done with metrics", st, err)
	}
}

// A missing journal file is a clean first boot.
func TestReplayJournalFileMissing(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	stats, err := e.ReplayJournalFile(t.TempDir() + "/never-written.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ReplayStats{}) {
		t.Fatalf("stats = %+v, want zero", stats)
	}
	// But a real read error still reports — it is not a torn line.
	if _, err := e.ReplayJournal(failingReader{}); err == nil {
		t.Fatal("read error swallowed")
	}
}

// failingReader errors immediately — a truncated disk, not a torn line.
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

// getBody fetches a URL and returns the raw response bytes.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
