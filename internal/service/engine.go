package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"hopp/internal/experiments"
	"hopp/internal/faults"
	"hopp/internal/sim"
	"hopp/internal/workload"
)

// Engine errors.
var (
	ErrClosed            = errors.New("service: engine closed")
	ErrUnknownRun        = errors.New("service: unknown run id")
	ErrUnknownWorkload   = errors.New("service: unknown workload")
	ErrUnknownSystem     = errors.New("service: unknown system")
	ErrUnknownExperiment = errors.New("service: unknown experiment")
	ErrBadFrac           = errors.New("service: frac must be in [0, 1)")
	ErrNotCancellable    = errors.New("service: run already finished")
	// ErrOverloaded rejects a submission because the pending queue is at
	// its configured bound. The HTTP layer maps it to 429 + Retry-After;
	// the submission leaves no registry entry behind.
	ErrOverloaded = errors.New("service: engine overloaded, retry later")
	// ErrRunTimeout marks a job that exceeded the per-run deadline; such
	// jobs land in StateFailed with this error in their message.
	ErrRunTimeout = errors.New("service: run timeout exceeded")
	// ErrRunPanicked marks a job whose work function panicked. The panic
	// is contained on the worker: that one job lands in StateFailed with
	// a PanicError (stack attached), the worker and every other
	// in-flight job keep running.
	ErrRunPanicked = errors.New("service: run panicked")
	// ErrDrainIncomplete is returned by Shutdown when the drain deadline
	// expired before in-flight work unwound; the daemon exits non-zero
	// so operators can tell a clean drain from a forced one.
	ErrDrainIncomplete = errors.New("service: drain incomplete")
)

// PanicError is the typed failure of a panicked job: the recovered
// value plus the goroutine stack captured at the recovery point.
// errors.Is(err, ErrRunPanicked) identifies it; errors.As extracts the
// stack for logs.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("%v: %v", ErrRunPanicked, p.Value) }
func (p *PanicError) Unwrap() error { return ErrRunPanicked }

// RunRequest is one workload × system simulation submission — the
// payload of a KindSim job.
type RunRequest struct {
	// Workload names a catalog workload (see WorkloadNames).
	Workload string `json:"workload"`
	// System names a catalog system (see SystemNames).
	System string `json:"system"`
	// Frac is local memory as a fraction of the footprint in [0, 1);
	// 0 = all local. Nil defaults to 0.5, the paper's headline setting.
	Frac *float64 `json:"frac,omitempty"`
	// Seed drives workload randomness and fabric jitter.
	Seed int64 `json:"seed"`
	// Quick shrinks the workload ~4x (and the cache hierarchy with it).
	Quick bool `json:"quick,omitempty"`
}

// Normalize validates the request against the catalog and resolves
// defaults, returning the canonical form and its cache key. The cache is
// only ever consulted with keys produced here, so two requests share an
// entry iff they normalize to the same simulation.
func (r RunRequest) Normalize() (RunRequest, string, error) {
	n := r
	n.Workload = strings.ToLower(strings.TrimSpace(n.Workload))
	n.System = strings.ToLower(strings.TrimSpace(n.System))
	if _, ok := workloadCatalog[n.Workload]; !ok {
		return n, "", fmt.Errorf("%w %q", ErrUnknownWorkload, r.Workload)
	}
	canon, ok := canonicalSystem(n.System)
	if !ok {
		return n, "", fmt.Errorf("%w %q", ErrUnknownSystem, r.System)
	}
	// Registry specs canonicalize (depth?n=16 ≡ depth-16,
	// spp?lookahead=4 ≡ spp), so equivalent parameterized requests
	// share one cache entry and one dedupe slot.
	n.System = canon
	if n.Frac == nil {
		f := 0.5
		n.Frac = &f
	}
	if *n.Frac < 0 || *n.Frac >= 1 {
		return n, "", fmt.Errorf("%w (got %g)", ErrBadFrac, *n.Frac)
	}
	key := fmt.Sprintf("run|%s|%s|%.9g|%d|%t", n.Workload, n.System, *n.Frac, n.Seed, n.Quick)
	return n, key, nil
}

// ExperimentRequest is one table/figure regeneration submission — the
// payload of a KindExperiment job.
type ExperimentRequest struct {
	// Experiment names a regenerable table/figure (see Experiments).
	Experiment string `json:"experiment"`
	// Seed drives all randomness of the experiment's simulations.
	Seed int64 `json:"seed"`
	// Quick shrinks workloads ~4x.
	Quick bool `json:"quick,omitempty"`
}

// Normalize validates the request against the experiment index and
// returns the canonical form and its cache key. The key format predates
// the unified lifecycle, so caches warmed by the legacy streaming
// endpoint keep hitting.
func (r ExperimentRequest) Normalize() (ExperimentRequest, string, error) {
	n := r
	n.Experiment = strings.ToLower(strings.TrimSpace(n.Experiment))
	if _, ok := experiments.ByID(n.Experiment); !ok {
		return n, "", fmt.Errorf("%w %q", ErrUnknownExperiment, r.Experiment)
	}
	key := fmt.Sprintf("exp|%s|%d|%t", n.Experiment, n.Seed, n.Quick)
	return n, key, nil
}

// RunStatus is the externally visible snapshot of one job. Sim jobs
// carry workload/system/frac and (when done) the serialized Metrics;
// experiment jobs carry the experiment ID, a progress gauge, and (when
// done) the rendered table text.
type RunStatus struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`

	// Sim-job fields.
	Workload string   `json:"workload,omitempty"`
	System   string   `json:"system,omitempty"`
	Frac     *float64 `json:"frac,omitempty"`

	// Experiment is the experiment ID of a KindExperiment job.
	Experiment string `json:"experiment,omitempty"`
	// Progress counts the simulations the experiment has completed so
	// far — the seam experiments.Options.Progress feeds. Zero for sim
	// jobs (one job is one simulation).
	Progress int64 `json:"progress,omitempty"`

	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick,omitempty"`
	// Cached marks a submission served from the result cache.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// WallNS is the wall-clock time the job held a worker; SimNS the
	// simulated completion time a sim job produced.
	WallNS int64 `json:"wall_ns,omitempty"`
	SimNS  int64 `json:"sim_ns,omitempty"`
	// Metrics is the serialized sim.Metrics, present once a sim job is
	// done.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Output is the rendered table text, present once an experiment job
	// is done.
	Output string `json:"output,omitempty"`

	// Parent is the sweep parent's job ID on sweep-child jobs.
	Parent string `json:"parent,omitempty"`
	// Sweep is the aggregate fan-out state of a KindSweep job; its
	// Progress gauge counts settled points.
	Sweep *SweepStatus `json:"sweep,omitempty"`
	// Ingest is the session state of a KindIngest job; its Progress
	// gauge counts decoded records.
	Ingest *IngestStatus `json:"ingest,omitempty"`
}

// DefaultRetainRuns is the terminal-job retention bound applied when
// Options.RetainRuns is unset.
const DefaultRetainRuns = 1024

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries bounds the LRU result cache; <= 0 means 256.
	CacheEntries int
	// MaxQueue bounds jobs queued behind busy workers; submissions over
	// the limit fail fast with ErrOverloaded. <= 0 means unbounded.
	MaxQueue int
	// RetainRuns bounds terminal (done/failed/cancelled) jobs kept in
	// the registry: once exceeded the oldest-finished are evicted and
	// later lookups of their IDs return ErrUnknownRun (HTTP 404).
	// <= 0 means DefaultRetainRuns.
	RetainRuns int
	// RetainAge additionally evicts terminal jobs older than this even
	// while under the count bound. <= 0 disables age-based eviction.
	RetainAge time.Duration
	// RunTimeout caps each executing job's wall time so a pathological
	// request cannot pin a worker; timed-out jobs land in StateFailed
	// with ErrRunTimeout. <= 0 disables the deadline.
	RunTimeout time.Duration
	// MaxSweepPoints bounds one sweep submission's expanded grid; larger
	// grids are rejected with ErrSweepTooLarge before touching the
	// registry. <= 0 means DefaultMaxSweepPoints.
	MaxSweepPoints int
	// MaxIngests bounds concurrently live ingest sessions; opens beyond
	// it are rejected with ErrIngestLimit (HTTP 429). <= 0 means
	// DefaultMaxIngests.
	MaxIngests int
	// IngestIdleTimeout expires an ingest session whose client goes
	// silent — no chunk, no close — for this long; expired sessions
	// finish failed and free their slot. <= 0 means
	// DefaultIngestIdleTimeout.
	IngestIdleTimeout time.Duration
	// IngestRingRecords sizes each ingest session's staging ring in
	// trace records (RecordSize bytes apiece); a chunk that cannot fit
	// pauses the session instead of growing the buffer. <= 0 means
	// DefaultIngestRingRecords.
	IngestRingRecords int
	// Journal, when non-nil, receives a JSONL entry for every job the
	// moment it reaches a terminal state — the audit trail past
	// -retain-runs and the recovery source for ReplayJournal.
	Journal *Journal
	// Logf, when non-nil, receives operational log lines (journal write
	// bursts, contained panics). Nil discards them.
	Logf func(format string, args ...any)
	// Faults, when non-nil, threads a deterministic fault injector into
	// the engine, its pool, and its journal — the test-only seam that
	// forces panics, journal errors, slow runs, and queue pressure on
	// demand. Nil (the production default) costs one nil check per site.
	Faults *faults.Injector
}

// Engine is the long-lived simulation service: a FIFO worker pool fed
// by Submit and SubmitExperiment, a bounded registry of recent jobs, an
// LRU cache of serialized results, and runtime counters. One Engine
// outlives any number of requests; the daemon owns exactly one. Every
// unit of offered work — a workload × system simulation or a
// table/figure regeneration — is a Job flowing through the same
// admission control, queue, per-run deadline, retention policy, and
// per-kind metrics, so the process stays O(configuration) no matter how
// long or what mix it serves.
type Engine struct {
	pool  *Pool
	cache *lruCache
	ctr   *counters
	reg   *registry

	runTimeout     time.Duration
	maxSweepPoints int

	maxIngests      int
	ingestIdle      time.Duration
	ingestRingBytes int
	// liveIngests holds non-terminal ingest jobs in open order — the
	// deterministic set Shutdown flags and Metrics gauges. Guarded by
	// reg.mu. ingestWG tracks their pump goroutines; Shutdown waits on
	// it after the pool drains, so pumps are reaped leak-free.
	liveIngests []*Job
	ingestWG    sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	closed bool // guarded by reg.mu

	// inflight maps canonical cache keys to the one non-terminal job
	// currently computing each — the in-flight dedupe index. A sweep
	// child whose key is already here becomes a follower of that leader
	// instead of simulating the same point again. Guarded by reg.mu.
	inflight map[string]*Job
	// liveSweeps holds non-terminal sweep parents in submission order —
	// the deterministic iteration set for pacing-window refills (a map
	// would make refill order depend on hash order). Guarded by reg.mu.
	liveSweeps []*Job
	// finishQ/finishing turn terminal-transition cascades (child →
	// follower → parent → sibling refill) into an iterative worklist:
	// finishLocked enqueues, the outermost call drains. Guarded by
	// reg.mu.
	finishQ   []*Job
	finishing bool

	logf   func(format string, args ...any)
	faults *faults.Injector // nil in production

	// replayed counts journal entries ReplayJournal recovered into the
	// registry/cache — the journal_replayed gauge.
	replayed int // guarded by reg.mu

	// Hooks, replaceable in tests to decouple lifecycle tests from
	// simulation wall time.
	runSim      func(ctx context.Context, req RunRequest) (sim.Metrics, error)
	runExp      func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error)
	runSweepSim func(ctx context.Context, req RunRequest, gen workload.Generator) (sim.Metrics, error)
}

// NewEngine starts an engine; callers must Shutdown (or Close) it.
func NewEngine(opts Options) *Engine {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Journal != nil && opts.Faults != nil {
		opts.Journal.SetInjector(opts.Faults)
	}
	maxSweep := opts.MaxSweepPoints
	if maxSweep <= 0 {
		maxSweep = DefaultMaxSweepPoints
	}
	maxIngests := opts.MaxIngests
	if maxIngests <= 0 {
		maxIngests = DefaultMaxIngests
	}
	ingestIdle := opts.IngestIdleTimeout
	if ingestIdle <= 0 {
		ingestIdle = DefaultIngestIdleTimeout
	}
	ringRecords := opts.IngestRingRecords
	if ringRecords <= 0 {
		ringRecords = DefaultIngestRingRecords
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		pool:            NewPoolWithQueue(opts.Workers, opts.MaxQueue),
		cache:           newLRUCache(opts.CacheEntries),
		ctr:             newCounters(),
		reg:             newRegistry(opts.RetainRuns, opts.RetainAge, opts.Journal, logf),
		runTimeout:      opts.RunTimeout,
		maxSweepPoints:  maxSweep,
		maxIngests:      maxIngests,
		ingestIdle:      ingestIdle,
		ingestRingBytes: ringRecords * hmttRecordSize,
		baseCtx:         ctx,
		baseCancel:      cancel,
		inflight:        make(map[string]*Job),
		logf:            logf,
		faults:          opts.Faults,
		runSim:          runSimulation,
		runExp: func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
			return exp.Run(ctx, opts)
		},
		runSweepSim: runSharedSimulation,
	}
	e.pool.setInjector(opts.Faults)
	return e
}

// SetJournal attaches (or replaces) the terminal-job journal. The
// daemon uses it to sequence startup — replay the old file first, then
// open it for append — so the replay reader never races the writer.
// Safe to call while the engine is serving.
func (e *Engine) SetJournal(j *Journal) {
	if j != nil && e.faults != nil {
		j.SetInjector(e.faults)
	}
	e.reg.mu.Lock()
	e.reg.journal = j
	e.reg.mu.Unlock()
}

// runSimulation executes one normalized request from scratch: its own
// generator, its own machine, nothing shared — the unit of determinism.
func runSimulation(ctx context.Context, req RunRequest) (sim.Metrics, error) {
	gen, ok := NewWorkload(req.Workload, req.Quick)
	if !ok {
		return sim.Metrics{}, fmt.Errorf("%w %q", ErrUnknownWorkload, req.Workload)
	}
	sys, ok := NewSystem(req.System)
	if !ok {
		return sim.Metrics{}, fmt.Errorf("%w %q", ErrUnknownSystem, req.System)
	}
	cfg := sim.Config{LocalMemoryFrac: *req.Frac, Seed: req.Seed}
	if req.Quick {
		// Shrink the cache hierarchy with the footprint, preserving the
		// paper's footprint ≫ LLC regime (as experiments quick mode does).
		cfg.L2Bytes = 64 << 10
		cfg.LLCBytes = 512 << 10
	}
	return sim.RunWithContext(ctx, cfg, sys, gen)
}

// Submit validates, canonicalizes, and enqueues a simulation job,
// returning its registry snapshot immediately. A result already in the
// cache comes back as a job born done with Cached set; everything else
// is queued FIFO behind earlier submissions of either kind. When the
// pending queue is at its bound the submission is rejected with
// ErrOverloaded and leaves no registry entry — callers retry, they
// don't pile up.
func (e *Engine) Submit(req RunRequest) (RunStatus, error) {
	norm, key, err := req.Normalize()
	if err != nil {
		return RunStatus{}, err
	}
	return e.submitJob(&Job{Kind: KindSim, key: key, Sim: &norm})
}

// SubmitExperiment validates and enqueues an experiment-regeneration
// job through the same admission control, queue, deadline, and
// retention as Submit. The returned status carries the job ID to poll
// via Status/Wait (HTTP: GET /v1/runs/{id}).
func (e *Engine) SubmitExperiment(req ExperimentRequest) (RunStatus, error) {
	norm, key, err := req.Normalize()
	if err != nil {
		return RunStatus{}, err
	}
	return e.submitJob(&Job{Kind: KindExperiment, key: key, Exp: &norm})
}

// submitJob is the single admission path every kind flows through:
// cache lookup, queue-bound check, ID assignment, registry entry. The
// ordering is load-bearing — admission control runs before the job gets
// an ID or a registry slot, so a rejected submission of either kind
// consumes nothing (no registry entry, no cache pollution).
func (e *Engine) submitJob(j *Job) (RunStatus, error) {
	now := time.Now()
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	if e.closed {
		return RunStatus{}, ErrClosed
	}
	e.reg.evictLocked(now) // age out stale terminal jobs even on idle→burst

	// The cache is consulted only with the canonical key computed by
	// Normalize, and only bytes produced by a completed identical job
	// ever land under that key.
	cached, cachedSimNS, hit := e.cache.Get(j.key)
	j.submitted = now
	j.done = make(chan struct{})
	if hit {
		j.State = StateDone
		j.cached = true
		j.Result = cached
		j.simNS = cachedSimNS
		e.ctr.cacheHits.Add(1)
	} else {
		// Lock order is reg.mu → pool.mu, taken nowhere in reverse.
		j.State = StateQueued
		if err := e.pool.Submit(func() { e.execute(j) }); err != nil {
			if errors.Is(err, ErrQueueFull) {
				e.ctr.kind(j.Kind).rejected.Add(1)
				return RunStatus{}, fmt.Errorf("%w (queue depth at bound %d)", ErrOverloaded, e.pool.MaxQueue())
			}
			return RunStatus{}, ErrClosed // pool closed: raced Shutdown
		}
		e.ctr.cacheMisses.Add(1)
		// The admitted job is now the in-flight owner of its key: later
		// sweep points that normalize to the same simulation follow it
		// instead of queueing a duplicate.
		if e.inflight[j.key] == nil {
			e.inflight[j.key] = j
		}
	}
	e.ctr.kind(j.Kind).submitted.Add(1)
	e.reg.addLocked(j)
	if hit {
		e.finishLocked(j, now)
	}
	return e.statusLocked(j), nil
}

// finishLocked finalizes a job whose terminal State (and Result/errMsg)
// the caller has just set: registry bookkeeping, journal, done-channel
// close, in-flight release, follower settlement, and sweep-parent
// accounting; reg.mu must be held. Terminal transitions cascade — a
// child's finish can complete its parent, promote a follower, or refill
// another sweep's window — so the cascade runs as an iterative worklist
// instead of recursion: nested calls only enqueue, the outermost call
// drains.
func (e *Engine) finishLocked(j *Job, now time.Time) {
	e.finishQ = append(e.finishQ, j)
	if e.finishing {
		return
	}
	e.finishing = true
	for len(e.finishQ) > 0 {
		next := e.finishQ[0]
		e.finishQ = e.finishQ[1:]
		e.finishOneLocked(next, now)
	}
	e.finishing = false
}

// finishOneLocked settles exactly one terminal job; reg.mu must be
// held. Only finishLocked calls it.
func (e *Engine) finishOneLocked(j *Job, now time.Time) {
	e.reg.markTerminalLocked(j, now)
	if !j.doneClosed {
		j.doneClosed = true
		close(j.done)
	}
	if j.key != "" && e.inflight[j.key] == j {
		delete(e.inflight, j.key)
		e.settleFollowersLocked(j, now)
	}
	if j.ingest != nil {
		e.removeLiveIngestLocked(j)
	}
	if j.parent != nil {
		e.sweepChildDoneLocked(j.parent, j, now)
	}
	// Any terminal transition can free queue room; let paced sweeps top
	// their windows back up.
	e.advanceSweepsLocked(now)
}

// execute runs one queued job on a pool worker.
func (e *Engine) execute(j *Job) {
	e.reg.mu.Lock()
	if j.State != StateQueued { // cancelled while queued
		e.reg.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.started = time.Now()
	// The per-run deadline nests inside the engine's base context, so a
	// job ends for exactly one of three reasons: its own deadline
	// (DeadlineExceeded), a caller's Cancel or engine shutdown
	// (Canceled), or the work finishing.
	var ctx context.Context
	var cancel context.CancelFunc
	if e.runTimeout > 0 {
		j.Deadline = j.started.Add(e.runTimeout)
		ctx, cancel = context.WithDeadline(e.baseCtx, j.Deadline)
	} else {
		ctx, cancel = context.WithCancel(e.baseCtx)
	}
	j.cancel = cancel
	e.reg.mu.Unlock()
	defer cancel()
	e.ctr.kind(j.Kind).started.Add(1)

	result, simNS, err := e.runContained(ctx, j)
	wall := time.Since(j.started).Nanoseconds()

	e.reg.mu.Lock()
	j.wallNS = wall
	kc := e.ctr.kind(j.Kind)
	switch {
	case err == nil:
		j.State = StateDone
		j.Result = result
		j.simNS = simNS
		e.cache.Put(j.key, result, simNS)
		kc.completed.Add(1)
		e.ctr.runWallNS.Add(wall)
		e.ctr.runSimulatedNS.Add(simNS)
	case errors.Is(err, ErrRunPanicked):
		j.State = StateFailed
		j.errMsg = err.Error()
		kc.panicked.Add(1)
		kc.failed.Add(1)
	case e.runTimeout > 0 && errors.Is(err, context.DeadlineExceeded):
		j.State = StateFailed
		j.errMsg = fmt.Sprintf("%v (exceeded %v)", ErrRunTimeout, e.runTimeout)
		kc.timedOut.Add(1)
		kc.failed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.State = StateCancelled
		j.errMsg = err.Error()
		kc.cancelled.Add(1)
	default:
		j.State = StateFailed
		j.errMsg = err.Error()
		kc.failed.Add(1)
	}
	e.finishLocked(j, time.Now())
	e.reg.mu.Unlock()
}

// runContained wraps one job's work in panic containment and the
// fault-injection sites. A panic anywhere in the work function — the
// simulation, the experiment, result serialization, or an injected
// fault — is recovered on this worker and converted into a PanicError
// carrying the stack; the worker goroutine, the engine, and every other
// in-flight job are unaffected. This is the boundary that keeps one
// poisoned request from taking the daemon down, the service-layer
// mirror of HoPP's own rule that the fault path must survive a
// misbehaving prefetch path.
func (e *Engine) runContained(ctx context.Context, j *Job) (result []byte, simNS int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			e.logf("job %s (%s) panicked: %v\n%s", j.ID, j.Kind, r, stack)
			err = &PanicError{Value: r, Stack: stack}
			result, simNS = nil, 0
		}
	}()
	if e.faults.Hit(faults.SiteRunPanic) {
		panic(fmt.Sprintf("injected panic at %s", faults.SiteRunPanic))
	}
	if e.faults.Hit(faults.SiteRunSlow) {
		// Parked, not sleeping: the job stays "slow" until the test
		// opens the gate or the job's deadline/cancel fires.
		if gerr := e.faults.Gate(faults.SiteRunSlow).Wait(ctx); gerr != nil {
			return nil, 0, gerr
		}
	}
	return e.executeKind(ctx, j)
}

// executeKind dispatches a running job to its kind's work function and
// serializes the result: marshaled sim.Metrics for sim jobs, rendered
// table text for experiment jobs. Both serializations are deterministic
// (fixed struct order / fixed table order), which is what lets the
// shared cache hand the same bytes to every later hit.
func (e *Engine) executeKind(ctx context.Context, j *Job) ([]byte, int64, error) {
	switch j.Kind {
	case KindSim:
		var met sim.Metrics
		var err error
		if j.parent != nil && j.parent.sweep != nil {
			// Sweep child: replay the sweep's frozen access stream instead
			// of regenerating the workload — generated once per distinct
			// (workload, seed), shared read-only by every (system, frac)
			// point. The replay is access-for-access identical to a fresh
			// generator, so the result bytes (and the cache entry they
			// warm) match a standalone run of the same request.
			gen, gerr := j.parent.sweep.streams.get(*j.Sim, &e.ctr.sweepStreamsBuilt)
			if gerr != nil {
				return nil, 0, gerr
			}
			met, err = e.runSweepSim(ctx, *j.Sim, gen)
		} else {
			met, err = e.runSim(ctx, *j.Sim)
		}
		if err != nil {
			return nil, 0, err
		}
		// json.Marshal is deterministic (struct order fixed, map keys
		// sorted), so equal runs serialize to equal bytes — the property
		// the cache and the determinism tests rely on.
		result, err := json.Marshal(met)
		return result, int64(met.CompletionTime), err
	case KindExperiment:
		exp, ok := experiments.ByID(j.Exp.Experiment)
		if !ok {
			return nil, 0, fmt.Errorf("%w %q", ErrUnknownExperiment, j.Exp.Experiment)
		}
		opts := experiments.Options{
			Seed:     j.Exp.Seed,
			Quick:    j.Exp.Quick,
			Progress: func() { j.progress.Add(1) },
		}
		tables, err := e.runExp(ctx, exp, opts)
		if err != nil {
			return nil, 0, err
		}
		var buf bytes.Buffer
		for _, t := range tables {
			t.Fprint(&buf)
		}
		return buf.Bytes(), 0, nil
	default:
		return nil, 0, fmt.Errorf("service: unknown job kind %q", j.Kind)
	}
}

// statusLocked snapshots a job; reg.mu must be held.
func (e *Engine) statusLocked(j *Job) RunStatus {
	s := RunStatus{
		ID:     j.ID,
		Kind:   j.Kind,
		State:  j.State,
		Cached: j.cached,
		Error:  j.errMsg,
		WallNS: j.wallNS,
		SimNS:  j.simNS,
	}
	switch {
	case j.Sim != nil:
		s.Workload = j.Sim.Workload
		s.System = j.Sim.System
		s.Frac = j.Sim.Frac
		s.Seed = j.Sim.Seed
		s.Quick = j.Sim.Quick
		s.Parent = j.parentID
	case j.Exp != nil:
		s.Experiment = j.Exp.Experiment
		s.Seed = j.Exp.Seed
		s.Quick = j.Exp.Quick
		s.Progress = j.progress.Load()
	case j.ingest != nil:
		s.Workload = j.ingest.req.Workload
		s.System = j.ingest.req.System
		s.Frac = j.ingest.req.Frac
		s.Seed = j.ingest.req.Seed
		s.Progress = j.progress.Load()
		s.Ingest = j.ingest.statusSnapshot()
	case j.sweep != nil:
		s.Quick = j.sweep.req.Quick
		s.Progress = j.progress.Load()
		s.Sweep = e.sweepStatusLocked(j)
	}
	if j.State == StateDone {
		switch j.Kind {
		case KindSim:
			s.Metrics = j.Result
		case KindExperiment:
			s.Output = string(j.Result)
		}
	}
	return s
}

// Status returns one job's snapshot.
func (e *Engine) Status(id string) (RunStatus, error) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	j, ok := e.reg.getLocked(id)
	if !ok {
		return RunStatus{}, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	return e.statusLocked(j), nil
}

// Runs lists every retained job — sim and experiment — in submission
// order. Evicted terminal jobs no longer appear; under sustained load
// the list plateaus at the retention bound plus whatever is queued or
// running.
func (e *Engine) Runs() []RunStatus {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	return e.reg.listLocked(e.statusLocked)
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (e *Engine) Wait(ctx context.Context, id string) (RunStatus, error) {
	e.reg.mu.Lock()
	j, ok := e.reg.getLocked(id)
	e.reg.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	select {
	case <-j.done:
		return e.Status(id)
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
}

// Cancel aborts a queued or running job of any kind. Queued jobs finish
// cancelled without ever starting; running jobs see their context
// cancelled and unwind at the next poll (sim loop or the experiment's
// next simulation). Cancelling a sweep parent cancels its whole
// fan-out: pending children finish cancelled immediately, running ones
// unwind on their workers, and the parent goes terminal when the last
// child lands.
func (e *Engine) Cancel(id string) error {
	e.reg.mu.Lock()
	j, ok := e.reg.getLocked(id)
	if !ok {
		e.reg.mu.Unlock()
		return fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	if j.Kind == KindSweep {
		if j.State.Terminal() || j.sweep.cancelled {
			state := j.State
			e.reg.mu.Unlock()
			return fmt.Errorf("%w: %s is %s", ErrNotCancellable, id, state)
		}
		e.cancelSweepLocked(j, time.Now())
		e.reg.mu.Unlock()
		return nil
	}
	switch j.State {
	case StateQueued:
		j.State = StateCancelled
		j.errMsg = context.Canceled.Error()
		e.ctr.kind(j.Kind).cancelled.Add(1)
		e.finishLocked(j, time.Now())
		e.reg.mu.Unlock()
		return nil
	case StateRunning:
		cancel := j.cancel
		e.reg.mu.Unlock()
		cancel()
		return nil
	default:
		e.reg.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrNotCancellable, id, j.State)
	}
}

// ExperimentInfo describes one regenerable table/figure.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Experiments lists every experiment in paper order.
func Experiments() []ExperimentInfo {
	all := experiments.All()
	out := make([]ExperimentInfo, len(all))
	for i, x := range all {
		out[i] = ExperimentInfo{ID: x.ID, Title: x.Title}
	}
	return out
}

// ExperimentByID reports whether id names a regenerable experiment.
func ExperimentByID(id string) (ExperimentInfo, bool) {
	x, ok := experiments.ByID(id)
	if !ok {
		return ExperimentInfo{}, false
	}
	return ExperimentInfo{ID: x.ID, Title: x.Title}, true
}

// RunExperiment regenerates one table/figure, writing the rendered text
// to w. It is a thin wrapper over the unified job lifecycle — the
// legacy streaming surface of SubmitExperiment: the submission flows
// through the same queue bound (ErrOverloaded when full), deadline, and
// retention as every other job, and the rendered bytes are identical to
// what GET /v1/runs/{id} reports as Output. ctx cancels the job when
// the caller walks away mid-wait.
func (e *Engine) RunExperiment(ctx context.Context, id string, seed int64, quick bool, w io.Writer) error {
	st, err := e.SubmitExperiment(ExperimentRequest{Experiment: id, Seed: seed, Quick: quick})
	if err != nil {
		return err
	}
	final, err := e.Wait(ctx, st.ID)
	if err != nil {
		// The caller walked away; the job must not keep holding a
		// worker on their behalf.
		_ = e.Cancel(st.ID) //hopplint:errok the job may have finished (ErrNotCancellable) or been evicted between Wait and Cancel; either way there is nothing left to stop
		return err
	}
	if final.State != StateDone {
		return fmt.Errorf("service: experiment job %s %s: %s", final.ID, final.State, final.Error)
	}
	_, err = w.Write([]byte(final.Output))
	return err
}

// Retry-After hint bounds: never tell a client to come back sooner
// than a second (sub-second retries are the hot-loop the hint exists to
// prevent) or later than a minute (past that the estimate says more
// about a backlog spike than about when a slot frees up).
const (
	retryAfterFloor = time.Second
	retryAfterCeil  = time.Minute
)

// RetryAfterHint estimates when an overloaded client should retry:
// the observed mean job wall time (across both kinds — they share the
// queue being drained) times the jobs queued per worker — an estimate
// of the time to drain the current backlog — clamped to
// [retryAfterFloor, retryAfterCeil]. Before any job has completed
// there is no observation, and the hint is the floor.
func (e *Engine) RetryAfterHint() time.Duration {
	hint := retryAfterFloor
	if completed := e.ctr.completedTotal(); completed > 0 {
		mean := time.Duration(uint64(e.ctr.runWallNS.Load()) / completed)
		workers := e.pool.Workers()
		if workers < 1 {
			workers = 1
		}
		// +1: the rejected submission itself also needs a slot.
		if est := mean * time.Duration(e.pool.QueueDepth()+1) / time.Duration(workers); est > hint {
			hint = est
		}
	}
	if hint > retryAfterCeil {
		hint = retryAfterCeil
	}
	return hint
}

// RetryAfterSeconds renders the hint in whole seconds, rounded up —
// the granularity the Retry-After header speaks.
func (e *Engine) RetryAfterSeconds() int {
	return int((e.RetryAfterHint() + time.Second - 1) / time.Second)
}

// Metrics snapshots the runtime counters and gauges.
func (e *Engine) Metrics() MetricsSnapshot {
	s := e.ctr.snapshot()
	s.QueueDepth = e.pool.QueueDepth()
	s.ActiveJobs = e.pool.Active()
	s.Workers = e.pool.Workers()
	s.QueueLimit = e.pool.MaxQueue()
	s.RetryAfterHintNS = int64(e.RetryAfterHint())
	s.CacheSize = e.cache.Len()
	s.RetainRuns = e.reg.retain
	s.RunTimeoutNS = int64(e.runTimeout)
	s.MaxSweepPoints = e.maxSweepPoints
	s.CatalogWorkloads = NumWorkloads()
	s.CatalogSystems = NumSystems()
	s.RegistryEvictions = e.reg.evictions.Load()
	s.JournalWrites = e.reg.jwrites.Load()
	s.JournalWriteErrors = e.reg.jerrors.Load()
	s.JournalLastWriteFailed = e.reg.jdegraded.Load()
	s.MaxIngests = e.maxIngests
	e.reg.mu.Lock()
	s.RegistrySize = e.reg.sizeLocked()
	s.JournalReplayed = e.replayed
	s.IngestSessionsActive = len(e.liveIngests)
	e.reg.mu.Unlock()
	return s
}

// Health levels reported by Engine.Health. Degraded is still HTTP 200 —
// the daemon is serving — but load balancers reading /healthz should
// start shedding before saturation turns into hard 429s.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// Health is the /healthz payload.
type Health struct {
	Status string `json:"status"`
	// Reasons lists why the daemon is degraded, in a fixed order (queue
	// saturation first, then journal); empty when ok.
	Reasons []string `json:"reasons,omitempty"`
}

// Health reports ok, or degraded when the queue is at ≥90% of its bound
// or the most recent journal append failed. Both conditions clear
// themselves: the queue by draining, the journal by the next successful
// write.
func (e *Engine) Health() Health {
	var reasons []string
	if limit := e.pool.MaxQueue(); limit > 0 {
		if depth := e.pool.QueueDepth(); depth*10 >= limit*9 {
			reasons = append(reasons, fmt.Sprintf("queue depth %d at >=90%% of bound %d", depth, limit))
		}
	}
	if e.reg.jdegraded.Load() {
		reasons = append(reasons, "last journal write failed")
	}
	if len(reasons) > 0 {
		return Health{Status: HealthDegraded, Reasons: reasons}
	}
	return Health{Status: HealthOK}
}

// Shutdown stops accepting work and drains the pool: queued and running
// jobs complete normally. If ctx expires first, in-flight work is
// cancelled and Shutdown still waits for it to unwind — the pool's
// worker goroutines are always reaped, leak-free, before the typed
// ErrDrainIncomplete (wrapping ctx.Err()) is returned.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.reg.mu.Lock()
	e.closed = true
	liveIngests := append([]*Job(nil), e.liveIngests...)
	e.reg.mu.Unlock()

	// Flag live ingest sessions for drain: each pump finishes its staged
	// backlog, then fails the session with ErrIngestInterrupted — the
	// typed signal that the stream was cut short by shutdown, not by the
	// client.
	for _, j := range liveIngests {
		j.ingest.interruptShutdown()
	}

	drained := make(chan struct{})
	go func() {
		e.pool.Close()
		e.ingestWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		e.baseCancel()
		<-drained
		return fmt.Errorf("%w: %w", ErrDrainIncomplete, ctx.Err())
	}
}

// Close is Shutdown with no deadline: full drain.
func (e *Engine) Close() {
	_ = e.Shutdown(context.Background()) //hopplint:errok Background ctx never expires, so Shutdown cannot fail
}
