package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"hopp/internal/experiments"
	"hopp/internal/sim"
)

// Engine errors.
var (
	ErrClosed            = errors.New("service: engine closed")
	ErrUnknownRun        = errors.New("service: unknown run id")
	ErrUnknownWorkload   = errors.New("service: unknown workload")
	ErrUnknownSystem     = errors.New("service: unknown system")
	ErrUnknownExperiment = errors.New("service: unknown experiment")
	ErrBadFrac           = errors.New("service: frac must be in [0, 1)")
	ErrNotCancellable    = errors.New("service: run already finished")
	// ErrOverloaded rejects a submission because the pending queue is at
	// its configured bound. The HTTP layer maps it to 429 + Retry-After;
	// the submission leaves no registry entry behind.
	ErrOverloaded = errors.New("service: engine overloaded, retry later")
	// ErrRunTimeout marks a run that exceeded the per-run deadline; such
	// runs land in StateFailed with this error in their message.
	ErrRunTimeout = errors.New("service: run timeout exceeded")
)

// RunState is a run's lifecycle position.
type RunState string

// Run lifecycle: Queued → Running → one of Done/Failed/Cancelled.
// Cache hits are born Done.
const (
	StateQueued    RunState = "queued"
	StateRunning   RunState = "running"
	StateDone      RunState = "done"
	StateFailed    RunState = "failed"
	StateCancelled RunState = "cancelled"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// RunRequest is one workload × system simulation submission.
type RunRequest struct {
	// Workload names a catalog workload (see WorkloadNames).
	Workload string `json:"workload"`
	// System names a catalog system (see SystemNames).
	System string `json:"system"`
	// Frac is local memory as a fraction of the footprint in [0, 1);
	// 0 = all local. Nil defaults to 0.5, the paper's headline setting.
	Frac *float64 `json:"frac,omitempty"`
	// Seed drives workload randomness and fabric jitter.
	Seed int64 `json:"seed"`
	// Quick shrinks the workload ~4x (and the cache hierarchy with it).
	Quick bool `json:"quick,omitempty"`
}

// Normalize validates the request against the catalog and resolves
// defaults, returning the canonical form and its cache key. The cache is
// only ever consulted with keys produced here, so two requests share an
// entry iff they normalize to the same simulation.
func (r RunRequest) Normalize() (RunRequest, string, error) {
	n := r
	n.Workload = strings.ToLower(strings.TrimSpace(n.Workload))
	n.System = strings.ToLower(strings.TrimSpace(n.System))
	if _, ok := workloadCatalog[n.Workload]; !ok {
		return n, "", fmt.Errorf("%w %q", ErrUnknownWorkload, r.Workload)
	}
	if _, ok := systemCatalog[n.System]; !ok {
		return n, "", fmt.Errorf("%w %q", ErrUnknownSystem, r.System)
	}
	if n.Frac == nil {
		f := 0.5
		n.Frac = &f
	}
	if *n.Frac < 0 || *n.Frac >= 1 {
		return n, "", fmt.Errorf("%w (got %g)", ErrBadFrac, *n.Frac)
	}
	key := fmt.Sprintf("run|%s|%s|%.9g|%d|%t", n.Workload, n.System, *n.Frac, n.Seed, n.Quick)
	return n, key, nil
}

// RunStatus is the externally visible snapshot of one run.
type RunStatus struct {
	ID       string   `json:"id"`
	State    RunState `json:"state"`
	Workload string   `json:"workload"`
	System   string   `json:"system"`
	Frac     float64  `json:"frac"`
	Seed     int64    `json:"seed"`
	Quick    bool     `json:"quick,omitempty"`
	// Cached marks a submission served from the result cache.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// WallNS is the wall-clock time the run held a worker; SimNS the
	// simulated completion time it produced.
	WallNS int64 `json:"wall_ns,omitempty"`
	SimNS  int64 `json:"sim_ns,omitempty"`
	// Metrics is the serialized sim.Metrics, present once State is done.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// run is the internal registry record.
type run struct {
	id        string
	key       string
	req       RunRequest // normalized
	state     RunState
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time // terminal-transition time, drives age eviction
	wallNS    int64
	simNS     int64
	result    []byte
	errMsg    string
	cancel    context.CancelFunc
	done      chan struct{}
}

// DefaultRetainRuns is the terminal-run retention bound applied when
// Options.RetainRuns is unset.
const DefaultRetainRuns = 1024

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent simulations; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries bounds the LRU result cache; <= 0 means 256.
	CacheEntries int
	// MaxQueue bounds runs queued behind busy workers; submissions over
	// the limit fail fast with ErrOverloaded. <= 0 means unbounded.
	MaxQueue int
	// RetainRuns bounds terminal (done/failed/cancelled) runs kept in
	// the registry: once exceeded the oldest-finished are evicted and
	// later lookups of their IDs return ErrUnknownRun (HTTP 404).
	// <= 0 means DefaultRetainRuns.
	RetainRuns int
	// RetainAge additionally evicts terminal runs older than this even
	// while under the count bound. <= 0 disables age-based eviction.
	RetainAge time.Duration
	// RunTimeout caps each executing run's wall time so a pathological
	// request cannot pin a worker; timed-out runs land in StateFailed
	// with ErrRunTimeout. <= 0 disables the deadline.
	RunTimeout time.Duration
}

// Engine is the long-lived simulation service: a FIFO worker pool fed by
// Submit, a bounded registry of recent runs, an LRU cache of serialized
// results, and runtime counters. One Engine outlives any number of
// requests; the daemon owns exactly one. Every resource the engine holds
// per submission — registry entry, queue slot, worker — is bounded, so
// the process stays O(configuration) no matter how long it serves.
type Engine struct {
	pool   *Pool
	cache  *lruCache
	ctr    counters
	expSem chan struct{}

	retain     int
	retainAge  time.Duration
	runTimeout time.Duration

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*run
	order  []string // submission order; may hold evicted IDs until compaction
	term   []string // terminal runs, oldest-finished first (eviction order)
	nextID int
	closed bool

	// Hooks, replaceable in tests to decouple lifecycle tests from
	// simulation wall time.
	runSim func(ctx context.Context, req RunRequest) (sim.Metrics, error)
	runExp func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error)
}

// NewEngine starts an engine; callers must Shutdown (or Close) it.
func NewEngine(opts Options) *Engine {
	ctx, cancel := context.WithCancel(context.Background())
	retain := opts.RetainRuns
	if retain <= 0 {
		retain = DefaultRetainRuns
	}
	e := &Engine{
		pool:       NewPoolWithQueue(opts.Workers, opts.MaxQueue),
		cache:      newLRUCache(opts.CacheEntries),
		retain:     retain,
		retainAge:  opts.RetainAge,
		runTimeout: opts.RunTimeout,
		baseCtx:    ctx,
		baseCancel: cancel,
		runs:       make(map[string]*run),
		runSim:     runSimulation,
		runExp: func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
			return exp.Run(ctx, opts)
		},
	}
	e.expSem = make(chan struct{}, e.pool.Workers())
	return e
}

// runSimulation executes one normalized request from scratch: its own
// generator, its own machine, nothing shared — the unit of determinism.
func runSimulation(ctx context.Context, req RunRequest) (sim.Metrics, error) {
	gen, ok := NewWorkload(req.Workload, req.Quick)
	if !ok {
		return sim.Metrics{}, fmt.Errorf("%w %q", ErrUnknownWorkload, req.Workload)
	}
	sys, ok := NewSystem(req.System)
	if !ok {
		return sim.Metrics{}, fmt.Errorf("%w %q", ErrUnknownSystem, req.System)
	}
	cfg := sim.Config{LocalMemoryFrac: *req.Frac, Seed: req.Seed}
	if req.Quick {
		// Shrink the cache hierarchy with the footprint, preserving the
		// paper's footprint ≫ LLC regime (as experiments quick mode does).
		cfg.L2Bytes = 64 << 10
		cfg.LLCBytes = 512 << 10
	}
	return sim.RunWithContext(ctx, cfg, sys, gen)
}

// Submit validates, canonicalizes, and enqueues a run, returning its
// registry snapshot immediately. A result already in the cache comes
// back as a run born done with Cached set; everything else is queued
// FIFO behind earlier submissions. When the pending queue is at its
// bound the submission is rejected with ErrOverloaded and leaves no
// registry entry — callers retry, they don't pile up.
func (e *Engine) Submit(req RunRequest) (RunStatus, error) {
	norm, key, err := req.Normalize()
	if err != nil {
		return RunStatus{}, err
	}

	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return RunStatus{}, ErrClosed
	}
	e.evictLocked(now) // age out stale terminal runs even on idle→burst

	// The cache is consulted only with the canonical key computed by
	// Normalize, and only bytes produced by a completed identical run
	// ever land under that key.
	cached, cachedSimNS, hit := e.cache.Get(key)
	r := &run{
		key:       key,
		req:       norm,
		submitted: now,
		done:      make(chan struct{}),
	}
	if hit {
		r.state = StateDone
		r.cached = true
		r.result = cached
		r.simNS = cachedSimNS
		close(r.done)
		e.ctr.cacheHits.Add(1)
	} else {
		// Admission control before the run gets an ID or a registry
		// slot: a rejected submission must not consume anything. Lock
		// order is e.mu → pool.mu, taken nowhere in reverse.
		r.state = StateQueued
		if err := e.pool.Submit(func() { e.execute(r) }); err != nil {
			if errors.Is(err, ErrQueueFull) {
				e.ctr.runsRejected.Add(1)
				return RunStatus{}, fmt.Errorf("%w (queue depth at bound %d)", ErrOverloaded, e.pool.MaxQueue())
			}
			return RunStatus{}, ErrClosed // pool closed: raced Shutdown
		}
		e.ctr.cacheMisses.Add(1)
	}
	e.ctr.runsSubmitted.Add(1)
	e.nextID++
	r.id = fmt.Sprintf("r%06d", e.nextID)
	e.runs[r.id] = r
	e.order = append(e.order, r.id)
	if hit {
		e.markTerminalLocked(r, now)
	}
	return e.statusLocked(r), nil
}

// markTerminalLocked records a run's transition into a terminal state
// and evicts the oldest terminal runs past the retention bounds; e.mu
// must be held. Every path that finishes a run goes through here, which
// is what keeps the registry O(retention + in-flight) instead of
// O(total submissions).
func (e *Engine) markTerminalLocked(r *run, now time.Time) {
	r.finished = now
	e.term = append(e.term, r.id)
	e.evictLocked(now)
}

// evictLocked drops terminal runs beyond the retention count or older
// than the retention age; e.mu must be held. e.term is ordered by finish
// time, so eviction only ever pops from its front. The submission-order
// slice is compacted lazily once evicted IDs dominate it, keeping both
// structures bounded without an O(n) scan per eviction.
func (e *Engine) evictLocked(now time.Time) {
	n := 0
	for n < len(e.term) {
		id := e.term[n]
		overCount := len(e.term)-n > e.retain
		overAge := e.retainAge > 0 && now.Sub(e.runs[id].finished) > e.retainAge
		if !overCount && !overAge {
			break
		}
		delete(e.runs, id)
		n++
	}
	if n == 0 {
		return
	}
	e.term = e.term[n:]
	e.ctr.registryEvictions.Add(uint64(n))
	if len(e.order) > 2*len(e.runs) {
		kept := make([]string, 0, len(e.runs))
		for _, id := range e.order {
			if _, ok := e.runs[id]; ok {
				kept = append(kept, id)
			}
		}
		e.order = kept
	}
}

// execute runs one queued run on a pool worker.
func (e *Engine) execute(r *run) {
	e.mu.Lock()
	if r.state != StateQueued { // cancelled while queued
		e.mu.Unlock()
		return
	}
	r.state = StateRunning
	r.started = time.Now()
	// The per-run deadline nests inside the engine's base context, so a
	// run ends for exactly one of three reasons: its own deadline
	// (DeadlineExceeded), a caller's Cancel or engine shutdown
	// (Canceled), or the simulation finishing.
	var ctx context.Context
	var cancel context.CancelFunc
	if e.runTimeout > 0 {
		ctx, cancel = context.WithTimeout(e.baseCtx, e.runTimeout)
	} else {
		ctx, cancel = context.WithCancel(e.baseCtx)
	}
	r.cancel = cancel
	e.mu.Unlock()
	defer cancel()
	e.ctr.runsStarted.Add(1)

	met, err := e.runSim(ctx, r.req)
	wall := time.Since(r.started).Nanoseconds()

	var result []byte
	if err == nil {
		// json.Marshal is deterministic (struct order fixed, map keys
		// sorted), so equal runs serialize to equal bytes — the property
		// the cache and the determinism tests rely on.
		result, err = json.Marshal(met)
	}

	e.mu.Lock()
	r.wallNS = wall
	switch {
	case err == nil:
		r.state = StateDone
		r.result = result
		r.simNS = int64(met.CompletionTime)
		e.cache.Put(r.key, result, r.simNS)
		e.ctr.runsCompleted.Add(1)
		e.ctr.runWallNS.Add(wall)
		e.ctr.runSimulatedNS.Add(r.simNS)
	case e.runTimeout > 0 && errors.Is(err, context.DeadlineExceeded):
		r.state = StateFailed
		r.errMsg = fmt.Sprintf("%v (exceeded %v)", ErrRunTimeout, e.runTimeout)
		e.ctr.runsTimedOut.Add(1)
		e.ctr.runsFailed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.state = StateCancelled
		r.errMsg = err.Error()
		e.ctr.runsCancelled.Add(1)
	default:
		r.state = StateFailed
		r.errMsg = err.Error()
		e.ctr.runsFailed.Add(1)
	}
	e.markTerminalLocked(r, time.Now())
	close(r.done)
	e.mu.Unlock()
}

// statusLocked snapshots a run; e.mu must be held.
func (e *Engine) statusLocked(r *run) RunStatus {
	s := RunStatus{
		ID:       r.id,
		State:    r.state,
		Workload: r.req.Workload,
		System:   r.req.System,
		Frac:     *r.req.Frac,
		Seed:     r.req.Seed,
		Quick:    r.req.Quick,
		Cached:   r.cached,
		Error:    r.errMsg,
		WallNS:   r.wallNS,
		SimNS:    r.simNS,
	}
	if r.state == StateDone {
		s.Metrics = r.result
	}
	return s
}

// Status returns one run's snapshot.
func (e *Engine) Status(id string) (RunStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	return e.statusLocked(r), nil
}

// Runs lists every retained run in submission order. Evicted terminal
// runs no longer appear; under sustained load the list plateaus at the
// retention bound plus whatever is queued or running.
func (e *Engine) Runs() []RunStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RunStatus, 0, len(e.runs))
	for _, id := range e.order {
		if r, ok := e.runs[id]; ok {
			out = append(out, e.statusLocked(r))
		}
	}
	return out
}

// Wait blocks until the run reaches a terminal state or ctx is done.
func (e *Engine) Wait(ctx context.Context, id string) (RunStatus, error) {
	e.mu.Lock()
	r, ok := e.runs[id]
	e.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	select {
	case <-r.done:
		return e.Status(id)
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
}

// Cancel aborts a queued or running run. Queued runs finish cancelled
// without ever starting; running runs see their context cancelled and
// unwind at the simulator's next poll.
func (e *Engine) Cancel(id string) error {
	e.mu.Lock()
	r, ok := e.runs[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	switch r.state {
	case StateQueued:
		r.state = StateCancelled
		r.errMsg = context.Canceled.Error()
		e.markTerminalLocked(r, time.Now())
		close(r.done)
		e.mu.Unlock()
		e.ctr.runsCancelled.Add(1)
		return nil
	case StateRunning:
		cancel := r.cancel
		e.mu.Unlock()
		cancel()
		return nil
	default:
		e.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrNotCancellable, id, r.state)
	}
}

// ExperimentInfo describes one regenerable table/figure.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Experiments lists every experiment in paper order.
func Experiments() []ExperimentInfo {
	all := experiments.All()
	out := make([]ExperimentInfo, len(all))
	for i, x := range all {
		out[i] = ExperimentInfo{ID: x.ID, Title: x.Title}
	}
	return out
}

// ExperimentByID reports whether id names a regenerable experiment.
func ExperimentByID(id string) (ExperimentInfo, bool) {
	x, ok := experiments.ByID(id)
	if !ok {
		return ExperimentInfo{}, false
	}
	return ExperimentInfo{ID: x.ID, Title: x.Title}, true
}

// RunExperiment regenerates one table/figure, writing the rendered text
// to w. Results are cached by (experiment, seed, quick); concurrency is
// bounded by the worker count; ctx cancels both the wait for a slot and
// the simulations themselves.
func (e *Engine) RunExperiment(ctx context.Context, id string, seed int64, quick bool, w io.Writer) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	exp, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownExperiment, id)
	}
	key := fmt.Sprintf("exp|%s|%d|%t", exp.ID, seed, quick)
	if b, _, hit := e.cache.Get(key); hit {
		e.ctr.cacheHits.Add(1)
		_, err := w.Write(b)
		return err
	}
	e.ctr.cacheMisses.Add(1)

	select {
	case e.expSem <- struct{}{}:
		defer func() { <-e.expSem }()
	case <-ctx.Done():
		return ctx.Err()
	}
	e.ctr.expStarted.Add(1)
	tables, err := e.runExp(ctx, exp, experiments.Options{Seed: seed, Quick: quick})
	if err != nil {
		e.ctr.expFailed.Add(1)
		return err
	}
	var buf bytes.Buffer
	for _, t := range tables {
		t.Fprint(&buf)
	}
	e.cache.Put(key, buf.Bytes(), 0)
	e.ctr.expCompleted.Add(1)
	_, err = w.Write(buf.Bytes())
	return err
}

// Retry-After hint bounds: never tell a client to come back sooner
// than a second (sub-second retries are the hot-loop the hint exists to
// prevent) or later than a minute (past that the estimate says more
// about a backlog spike than about when a slot frees up).
const (
	retryAfterFloor = time.Second
	retryAfterCeil  = time.Minute
)

// RetryAfterHint estimates when an overloaded client should retry:
// the observed mean run wall time times the runs queued per worker —
// an estimate of the time to drain the current backlog — clamped to
// [retryAfterFloor, retryAfterCeil]. Before any run has completed
// there is no observation, and the hint is the floor.
func (e *Engine) RetryAfterHint() time.Duration {
	hint := retryAfterFloor
	if completed := e.ctr.runsCompleted.Load(); completed > 0 {
		mean := time.Duration(uint64(e.ctr.runWallNS.Load()) / completed)
		workers := e.pool.Workers()
		if workers < 1 {
			workers = 1
		}
		// +1: the rejected submission itself also needs a slot.
		if est := mean * time.Duration(e.pool.QueueDepth()+1) / time.Duration(workers); est > hint {
			hint = est
		}
	}
	if hint > retryAfterCeil {
		hint = retryAfterCeil
	}
	return hint
}

// RetryAfterSeconds renders the hint in whole seconds, rounded up —
// the granularity the Retry-After header speaks.
func (e *Engine) RetryAfterSeconds() int {
	return int((e.RetryAfterHint() + time.Second - 1) / time.Second)
}

// Metrics snapshots the runtime counters and gauges.
func (e *Engine) Metrics() MetricsSnapshot {
	s := e.ctr.snapshot()
	s.QueueDepth = e.pool.QueueDepth()
	s.ActiveRuns = e.pool.Active()
	s.Workers = e.pool.Workers()
	s.QueueLimit = e.pool.MaxQueue()
	s.RetryAfterHintNS = int64(e.RetryAfterHint())
	s.CacheSize = e.cache.Len()
	s.RetainRuns = e.retain
	s.RunTimeoutNS = int64(e.runTimeout)
	s.CatalogWorkloads = NumWorkloads()
	s.CatalogSystems = NumSystems()
	e.mu.Lock()
	s.RegistrySize = len(e.runs)
	e.mu.Unlock()
	return s
}

// Shutdown stops accepting work and drains the pool: queued and running
// runs complete normally. If ctx expires first, in-flight simulations
// are cancelled and Shutdown waits for them to unwind before returning
// ctx.Err().
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.pool.Close()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		e.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// Close is Shutdown with no deadline: full drain.
func (e *Engine) Close() {
	_ = e.Shutdown(context.Background()) //hopplint:errok Background ctx never expires, so Shutdown cannot fail
}
