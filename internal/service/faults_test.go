package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hopp/internal/faults"
	"hopp/internal/sim"
)

// logCapture is a goroutine-safe Options.Logf sink.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCapture) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logCapture) matching(substr string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for _, line := range l.lines {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return out
}

// A panic inside one job is contained on its worker: that job alone
// lands in StateFailed with ErrRunPanicked while a concurrently
// running job — parked mid-execution when the panic fires — completes
// normally, and the engine keeps accepting work afterwards.
func TestPanicContainedToOneJob(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.SiteRunSlow, faults.OnHits(1))  // first job parks
	inj.Enable(faults.SiteRunPanic, faults.OnHits(2)) // second job panics
	var logs logCapture
	e := newTestEngine(t, Options{Workers: 2, Faults: inj, Logf: logs.logf})
	e.runSim = instantSim

	slow, err := e.Submit(seedReq(1))
	if err != nil {
		t.Fatal(err)
	}
	// The gate holding the first job proves it passed the panic site, so
	// the second submission deterministically draws panic-site hit #2.
	gate := inj.Gate(faults.SiteRunSlow)
	waitCounters(t, e, func(MetricsSnapshot) bool { return gate.Waiters() == 1 })

	doomed, err := e.Submit(seedReq(2))
	if err != nil {
		t.Fatal(err)
	}
	failed := waitDone(t, e, doomed.ID)
	if failed.State != StateFailed || !strings.Contains(failed.Error, ErrRunPanicked.Error()) {
		t.Fatalf("panicked job = %s (%q), want failed with %v", failed.State, failed.Error, ErrRunPanicked)
	}

	// The parked job was in flight throughout the panic; it must still
	// finish cleanly once released.
	gate.Open()
	if st := waitDone(t, e, slow.ID); st.State != StateDone {
		t.Fatalf("concurrent job = %s (%q), want done", st.State, st.Error)
	}

	m := e.Metrics()
	kc := m.Jobs[KindSim]
	if kc.Panicked != 1 || kc.Failed != 1 || kc.Completed != 1 {
		t.Fatalf("sim counters = %+v, want panicked=1 failed=1 completed=1", kc)
	}
	if got := logs.matching("panicked"); len(got) != 1 || !strings.Contains(got[0], "goroutine") {
		t.Fatalf("panic log = %q, want one line carrying the stack", got)
	}

	// The daemon survived: a fresh submission still runs to completion.
	after, err := e.Submit(seedReq(3))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, e, after.ID); st.State != StateDone {
		t.Fatalf("post-panic job = %s (%q), want done", st.State, st.Error)
	}
}

// A PanicError is inspectable: errors.Is sees ErrRunPanicked and
// errors.As recovers the value and stack.
func TestPanicErrorShape(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.SiteRunPanic, faults.Always())
	e := newTestEngine(t, Options{Workers: 1, Faults: inj})
	e.runSim = instantSim

	_, _, err := e.runContained(context.Background(), &Job{ID: "r000001", Kind: KindSim, Sim: &RunRequest{}})
	if !errors.Is(err, ErrRunPanicked) {
		t.Fatalf("err = %v, want ErrRunPanicked", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("err = %#v, want *PanicError with stack", err)
	}
}

// Journal append failures are best-effort: the jobs still finish and
// evict, journal_write_errors counts every failure, exactly one log
// line covers the whole burst, /healthz degrades while the last write
// is failing, and all of it clears on the next successful append.
func TestJournalWriteErrorBurst(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.SiteJournalAppend, faults.OnHits(1, 2))
	var buf syncBuffer
	var logs logCapture
	e := newTestEngine(t, Options{Workers: 1, Journal: NewJournal(&buf), Faults: inj, Logf: logs.logf})
	e.runSim = instantSim

	for seed := int64(1); seed <= 2; seed++ {
		st, err := e.Submit(seedReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got := waitDone(t, e, st.ID); got.State != StateDone {
			t.Fatalf("job with failing journal = %s (%q), want done — appends are best-effort", got.State, got.Error)
		}
	}
	m := e.Metrics()
	if m.JournalWriteErrors != 2 || m.JournalWrites != 0 {
		t.Fatalf("write errors/writes = %d/%d, want 2/0", m.JournalWriteErrors, m.JournalWrites)
	}
	if !m.JournalLastWriteFailed {
		t.Fatal("journal_last_write_failed = false mid-burst, want true")
	}
	if h := e.Health(); h.Status != HealthDegraded {
		t.Fatalf("health mid-burst = %+v, want degraded", h)
	}
	if got := logs.matching("journal append failed"); len(got) != 1 {
		t.Fatalf("burst logged %d times, want once: %q", len(got), got)
	}

	// Third append succeeds: degradation clears and the recovery logs.
	st, err := e.Submit(seedReq(3))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, st.ID)
	m = e.Metrics()
	if m.JournalWrites != 1 || m.JournalLastWriteFailed {
		t.Fatalf("after recovery writes=%d lastFailed=%v, want 1/false", m.JournalWrites, m.JournalLastWriteFailed)
	}
	if h := e.Health(); h.Status != HealthOK {
		t.Fatalf("health after recovery = %+v, want ok", h)
	}
	if got := logs.matching("recovered"); len(got) != 1 {
		t.Fatalf("recovery logged %d times, want once", len(got))
	}
	entries, err := ReadJournal(buf.reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Seed != 3 {
		t.Fatalf("journal holds %+v, want only the third job", entries)
	}
}

// Queue pressure built on demand: one parked run fills the single
// worker, the next submission queues, and the one after that sheds
// with ErrOverloaded — while /healthz reports degraded for the
// saturated queue. Opening the gate drains everything.
func TestQueueSaturationDeterministic(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.SiteRunSlow, faults.OnHits(1))
	e := newTestEngine(t, Options{Workers: 1, MaxQueue: 1, Faults: inj})
	e.runSim = instantSim

	parked, err := e.Submit(seedReq(1))
	if err != nil {
		t.Fatal(err)
	}
	gate := inj.Gate(faults.SiteRunSlow)
	waitCounters(t, e, func(MetricsSnapshot) bool { return gate.Waiters() == 1 })

	queued, err := e.Submit(seedReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(seedReq(3)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-bound submit err = %v, want ErrOverloaded", err)
	}
	h := e.Health()
	if h.Status != HealthDegraded || len(h.Reasons) != 1 || !strings.Contains(h.Reasons[0], "queue depth") {
		t.Fatalf("health under saturation = %+v, want degraded with queue reason", h)
	}

	gate.Open()
	if st := waitDone(t, e, parked.ID); st.State != StateDone {
		t.Fatalf("parked job = %s, want done", st.State)
	}
	if st := waitDone(t, e, queued.ID); st.State != StateDone {
		t.Fatalf("queued job = %s, want done", st.State)
	}
	if h := e.Health(); h.Status != HealthOK {
		t.Fatalf("health after drain = %+v, want ok", h)
	}
}

// SitePoolSubmit forces admission shedding with no real backlog: the
// submission is rejected exactly like a full queue — 429-shaped error,
// rejected counter, no registry entry.
func TestInjectedPoolRejection(t *testing.T) {
	inj := faults.New(1)
	inj.Enable(faults.SitePoolSubmit, faults.OnHits(1))
	e := newTestEngine(t, Options{Workers: 1, Faults: inj})
	e.runSim = instantSim

	if _, err := e.Submit(seedReq(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("injected rejection err = %v, want ErrOverloaded", err)
	}
	m := e.Metrics()
	if kc := m.Jobs[KindSim]; kc.Rejected != 1 || kc.Submitted != 0 {
		t.Fatalf("counters after injected rejection = %+v, want rejected=1 submitted=0", kc)
	}
	if m.RegistrySize != 0 {
		t.Fatalf("registry size = %d after rejection, want 0", m.RegistrySize)
	}

	// The rule fired once; the retry goes through.
	st, err := e.Submit(seedReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, e, st.ID); got.State != StateDone {
		t.Fatalf("retry = %s, want done", got.State)
	}
}

// Shutdown past the drain deadline returns the typed ErrDrainIncomplete
// (still wrapping context.DeadlineExceeded), cancels in-flight work,
// and reaps every worker goroutine — no leak survives a forced drain.
func TestDrainTimeoutTypedErrorNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine(Options{Workers: 2})
	e.runSim = stuckUntilCancelSim

	for seed := int64(1); seed <= 2; seed++ {
		if _, err := e.Submit(seedReq(seed)); err != nil {
			t.Fatal(err)
		}
	}
	waitCounters(t, e, func(m MetricsSnapshot) bool { return m.Jobs[KindSim].Started == 2 })

	// A deadline already in the past: the drain window is over before it
	// starts, deterministically.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := e.Shutdown(ctx)
	if !errors.Is(err, ErrDrainIncomplete) {
		t.Fatalf("Shutdown err = %v, want ErrDrainIncomplete", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want it to also wrap DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "drain incomplete") {
		t.Fatalf("Shutdown err text = %q", err)
	}

	// Shutdown already waited for the pool; the only goroutines still
	// unwinding are the jobs' own deferred paths. Poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines = %d after forced drain, want <= %d (pre-engine baseline)", runtime.NumGoroutine(), before)
}

// stuckUntilCancelSim holds its worker until the run context dies —
// the shape of a run that outlives any drain deadline.
func stuckUntilCancelSim(ctx context.Context, req RunRequest) (sim.Metrics, error) {
	<-ctx.Done()
	return sim.Metrics{}, ctx.Err()
}
