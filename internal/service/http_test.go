package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hopp/internal/experiments"
	"hopp/internal/sim"
)

func newTestServer(t *testing.T, opts Options) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, opts)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return e, srv
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postRun(t *testing.T, base string, req RunRequest) (RunStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return st, resp.StatusCode
}

// pollRun polls GET /v1/runs/{id} until the run is terminal.
func pollRun(t *testing.T, base, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st RunStatus
		resp := getJSON(t, base+"/v1/runs/"+id, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET run %s: status %d", id, resp.StatusCode)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never finished", id)
	return RunStatus{}
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	var body map[string]string
	resp := getJSON(t, srv.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
}

// Submit → poll → fetch: the primary daemon flow end-to-end over HTTP.
func TestHTTPSubmitPollFetch(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	st, code := postRun(t, srv.URL, quickReq())
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("fresh submission = %+v", st)
	}
	final := pollRun(t, srv.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	var met sim.Metrics
	if err := json.Unmarshal(final.Metrics, &met); err != nil {
		t.Fatalf("metrics don't parse as sim.Metrics: %v", err)
	}
	if met.Accesses == 0 || met.CompletionTime == 0 {
		t.Fatalf("empty metrics: %+v", met)
	}
}

// A repeated identical request must be a recorded cache hit and move the
// /metrics counters accordingly (acceptance criteria).
func TestHTTPCacheHitPathMovesCounters(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	first, _ := postRun(t, srv.URL, quickReq())
	pollRun(t, srv.URL, first.ID)

	var before MetricsSnapshot
	getJSON(t, srv.URL+"/metrics", &before)

	second, code := postRun(t, srv.URL, quickReq())
	if code != http.StatusOK {
		t.Fatalf("cached submit status = %d, want 200", code)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("repeat = {cached:%v state:%s}, want cached+done", second.Cached, second.State)
	}

	var after MetricsSnapshot
	getJSON(t, srv.URL+"/metrics", &after)
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("cache_hits %d → %d, want +1", before.CacheHits, after.CacheHits)
	}
	if after.Jobs[KindSim].Started != before.Jobs[KindSim].Started {
		t.Fatal("cache hit dispatched a worker run")
	}
	if after.Jobs[KindSim].Submitted != before.Jobs[KindSim].Submitted+1 {
		t.Fatalf("sim jobs submitted %d → %d, want +1",
			before.Jobs[KindSim].Submitted, after.Jobs[KindSim].Submitted)
	}
}

func TestHTTPSubmitValidation(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	for _, body := range []string{
		`{"workload":"nope","system":"hopp"}`,
		`{"workload":"npb-mg","system":"nope"}`,
		`{"workload":"npb-mg","system":"hopp","frac":1.5}`,
		`not json`,
	} {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q status = %d, want 400", body, resp.StatusCode)
		}
	}
	resp := getJSON(t, srv.URL+"/v1/runs/r424242", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run status = %d, want 404", resp.StatusCode)
	}
}

// N concurrent HTTP clients submitting the identical (config, seed) all
// get byte-identical serialized Metrics (acceptance criteria).
func TestHTTPDeterminismAcrossConcurrentClients(t *testing.T) {
	const clients = 6
	_, srv := newTestServer(t, Options{Workers: 3})
	results := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(quickReq())
			resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			var st RunStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			deadline := time.Now().Add(60 * time.Second)
			for time.Now().Before(deadline) {
				r, err := http.Get(srv.URL + "/v1/runs/" + st.ID)
				if err != nil {
					errs[i] = err
					return
				}
				err = json.NewDecoder(r.Body).Decode(&st)
				r.Body.Close()
				if err != nil {
					errs[i] = err
					return
				}
				if st.State.Terminal() {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if st.State != StateDone {
				errs[i] = fmt.Errorf("run %s ended %s: %s", st.ID, st.State, st.Error)
				return
			}
			results[i] = st.Metrics
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("client %d metrics diverged from client 0", i)
		}
	}
}

func TestHTTPCancelRun(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 1})
	started := make(chan struct{})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		close(started)
		<-ctx.Done()
		return sim.Metrics{}, ctx.Err()
	}
	st, _ := postRun(t, srv.URL, quickReq())
	<-started
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	final := pollRun(t, srv.URL, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", final.State)
	}
}

func TestHTTPExperimentsList(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	var body struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	getJSON(t, srv.URL+"/v1/experiments", &body)
	if len(body.Experiments) != len(experiments.All()) {
		t.Fatalf("listed %d experiments, want %d", len(body.Experiments), len(experiments.All()))
	}
	if body.Experiments[0].ID != "breakdown" {
		t.Fatalf("first experiment = %s, want breakdown (paper order)", body.Experiments[0].ID)
	}
}

func TestHTTPExperimentStreamAndCache(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 2})
	var calls int
	e.runExp = func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
		calls++
		return []experiments.Table{{Title: "fake " + exp.ID, Header: []string{"x"}, Rows: [][]string{{"1"}}}}, nil
	}
	fetch := func() string {
		resp, err := http.Post(srv.URL+"/v1/experiments/table2?seed=7&quick=true", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("experiment status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type = %s", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first := fetch()
	second := fetch()
	if calls != 1 {
		t.Fatalf("experiment ran %d times, want 1 (cache)", calls)
	}
	if first != second || !strings.Contains(first, "fake table2") {
		t.Fatalf("stream output wrong:\n%q\nvs\n%q", first, second)
	}
	resp, err := http.Post(srv.URL+"/v1/experiments/nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment status = %d, want 404", resp.StatusCode)
	}
}

// A client disconnecting mid-experiment must cancel the underlying
// simulations via the request context (acceptance criteria).
func TestHTTPExperimentClientDisconnectCancels(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 1})
	entered := make(chan struct{})
	finished := make(chan error, 1)
	e.runExp = func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
		close(entered)
		<-ctx.Done() // a well-behaved experiment unwinds on cancellation
		finished <- ctx.Err()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/experiments/fig9", nil)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("experiment never started")
	}
	cancel() // client walks away
	select {
	case err := <-finished:
		if err != context.Canceled {
			t.Fatalf("experiment saw %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("disconnect did not cancel the experiment")
	}
	// The abandoned job must land terminal as a cancelled experiment job
	// in the unified per-kind counters.
	deadline := time.Now().Add(10 * time.Second)
	for e.Metrics().Jobs[KindExperiment].Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("experiment job never counted cancelled; metrics: %+v", e.Metrics())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// SIGTERM handling in hoppd calls Engine.Shutdown; mid-run it must
// drain: the in-flight run completes and is queryable afterwards
// (acceptance criteria).
func TestHTTPGracefulShutdownMidRun(t *testing.T) {
	e := NewEngine(Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	release := make(chan struct{})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		<-release
		return sim.Metrics{System: "test", CompletionTime: 42}, nil
	}
	st, _ := postRun(t, srv.URL, quickReq())

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- e.Shutdown(context.Background()) }()

	// Shutdown must be blocked on the in-flight run, not racing past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a run was in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	final := pollRun(t, srv.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("run state after graceful shutdown = %s, want done", final.State)
	}
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"sequential","system":"fastswap"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %d, want 503", resp.StatusCode)
	}
}
