package service

import (
	"sort"
	"strings"

	"hopp/internal/core"
	"hopp/internal/sim"
	"hopp/internal/workload"
)

// The catalog is the canonical name → constructor registry shared by the
// daemon and the CLIs (cmd/hoppsim resolves through it too). Together
// with experiments.All it spans the whole request space a sim or
// experiment job can name; RunRequest.Normalize and
// ExperimentRequest.Normalize validate against it before admission, so
// nothing unresolvable ever reaches the queue. Workloads are built at
// the standard evaluation scale; quick shrinks footprints ~4x the same
// way experiments.Options.Quick does, with the same floor.

// quickScale shrinks a page count for quick-mode runs.
func quickScale(n int, quick bool) int {
	if !quick {
		return n
	}
	n /= 4
	if n < 64 {
		n = 64
	}
	return n
}

// workloadCatalog maps canonical workload names to constructors.
var workloadCatalog = map[string]func(quick bool) workload.Generator{
	"sequential": func(q bool) workload.Generator { return workload.NewSequential(quickScale(4096, q), 3) },
	"intertwined": func(q bool) workload.Generator {
		return workload.NewIntertwined(quickScale(2048, q), 0.05)
	},
	"ladder":     func(q bool) workload.Generator { return workload.NewLadder(quickScale(2048, q), 3) },
	"ripple":     func(q bool) workload.Generator { return workload.NewRipple(quickScale(2048, q), 3) },
	"addup":      func(q bool) workload.Generator { return workload.NewAddUp(2, quickScale(2048, q)) },
	"omp-kmeans": func(q bool) workload.Generator { return workload.NewOMPKMeans(quickScale(3072, q), 3) },
	"quicksort":  func(q bool) workload.Generator { return workload.NewQuicksort(quickScale(3072, q)) },
	"hpl": func(q bool) workload.Generator {
		cols := 32
		if q {
			cols = 16
		}
		return workload.NewHPL(cols, 96)
	},
	"npb-cg": func(q bool) workload.Generator { return workload.NewNPBCG(quickScale(3072, q), 2) },
	"npb-ft": func(q bool) workload.Generator { return workload.NewNPBFT(quickScale(2048, q)) },
	"npb-lu": func(q bool) workload.Generator {
		return workload.NewNPBLU(24, quickScale(3072, q)/24, 2)
	},
	"npb-mg":       func(q bool) workload.Generator { return workload.NewNPBMG(quickScale(2048, q), 2) },
	"npb-is":       func(q bool) workload.Generator { return workload.NewNPBIS(quickScale(2048, q)) },
	"graphx-bfs":   func(q bool) workload.Generator { return workload.NewGraphX("BFS", quickScale(768, q)) },
	"graphx-cc":    func(q bool) workload.Generator { return workload.NewGraphX("CC", quickScale(768, q)) },
	"graphx-pr":    func(q bool) workload.Generator { return workload.NewGraphX("PR", quickScale(768, q)) },
	"graphx-lp":    func(q bool) workload.Generator { return workload.NewGraphX("LP", quickScale(768, q)) },
	"spark-kmeans": func(q bool) workload.Generator { return workload.NewSparkKMeans(quickScale(2048, q)) },
	"spark-bayes":  func(q bool) workload.Generator { return workload.NewSparkBayes(quickScale(2048, q)) },
	"random":       func(q bool) workload.Generator { return workload.NewRandom(quickScale(2048, q), quickScale(8192, q)) },
}

// systemCatalog maps canonical system names to constructors.
var systemCatalog = map[string]func() sim.System{
	"hopp":       sim.HoPP,
	"fastswap":   sim.Fastswap,
	"leap":       sim.Leap,
	"vma":        sim.VMA,
	"depth-16":   func() sim.System { return sim.DepthN(16) },
	"depth-32":   func() sim.System { return sim.DepthN(32) },
	"noprefetch": sim.NoPrefetch,
	"hopp-markov": func() sim.System {
		p := core.DefaultParams()
		p.Algorithm = "markov"
		s := sim.HoPPWith(p)
		s.Name = "HoPP-markov"
		return s
	},
	"hopp-bulk": func() sim.System {
		p := core.DefaultParams()
		p.Bulk.Enable = true
		s := sim.HoPPWith(p)
		s.Name = "HoPP-bulk"
		return s
	},
	"hopp-smartevict": func() sim.System {
		p := core.DefaultParams()
		p.SmartEviction = true
		s := sim.HoPPWith(p)
		s.Name = "HoPP-smartevict"
		return s
	},
}

// WorkloadNames returns every catalog workload name, sorted.
func WorkloadNames() []string { return sortedNames(workloadCatalog) }

// SystemNames returns every catalog system name, sorted.
func SystemNames() []string { return sortedNames(systemCatalog) }

// NumWorkloads reports the catalog workload count (a /metrics gauge).
func NumWorkloads() int { return len(workloadCatalog) }

// NumSystems reports the catalog system count (a /metrics gauge).
func NumSystems() int { return len(systemCatalog) }

// NewWorkload builds a catalog workload at standard (or quick) scale.
func NewWorkload(name string, quick bool) (workload.Generator, bool) {
	f, ok := workloadCatalog[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return f(quick), true
}

// NewSystem builds a catalog system.
func NewSystem(name string) (sim.System, bool) {
	f, ok := systemCatalog[strings.ToLower(name)]
	if !ok {
		return sim.System{}, false
	}
	return f(), true
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m { //hopplint:sorted collected names are sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
