package service

import (
	"sort"
	"strings"

	"hopp/internal/core"
	"hopp/internal/prefetch"
	"hopp/internal/sim"
	"hopp/internal/workload"
)

// The catalog is the canonical name → constructor registry shared by the
// daemon and the CLIs (cmd/hoppsim resolves through it too). Together
// with experiments.All it spans the whole request space a sim or
// experiment job can name; RunRequest.Normalize and
// ExperimentRequest.Normalize validate against it before admission, so
// nothing unresolvable ever reaches the queue. Workloads are built at
// the standard evaluation scale; quick shrinks footprints ~4x the same
// way experiments.Options.Quick does, with the same floor.

// quickScale shrinks a page count for quick-mode runs.
func quickScale(n int, quick bool) int {
	if !quick {
		return n
	}
	n /= 4
	if n < 64 {
		n = 64
	}
	return n
}

// workloadCatalog maps canonical workload names to constructors.
var workloadCatalog = map[string]func(quick bool) workload.Generator{
	"sequential": func(q bool) workload.Generator { return workload.NewSequential(quickScale(4096, q), 3) },
	"intertwined": func(q bool) workload.Generator {
		return workload.NewIntertwined(quickScale(2048, q), 0.05)
	},
	"ladder":     func(q bool) workload.Generator { return workload.NewLadder(quickScale(2048, q), 3) },
	"ripple":     func(q bool) workload.Generator { return workload.NewRipple(quickScale(2048, q), 3) },
	"addup":      func(q bool) workload.Generator { return workload.NewAddUp(2, quickScale(2048, q)) },
	"omp-kmeans": func(q bool) workload.Generator { return workload.NewOMPKMeans(quickScale(3072, q), 3) },
	"quicksort":  func(q bool) workload.Generator { return workload.NewQuicksort(quickScale(3072, q)) },
	"hpl": func(q bool) workload.Generator {
		cols := 32
		if q {
			cols = 16
		}
		return workload.NewHPL(cols, 96)
	},
	"npb-cg": func(q bool) workload.Generator { return workload.NewNPBCG(quickScale(3072, q), 2) },
	"npb-ft": func(q bool) workload.Generator { return workload.NewNPBFT(quickScale(2048, q)) },
	"npb-lu": func(q bool) workload.Generator {
		return workload.NewNPBLU(24, quickScale(3072, q)/24, 2)
	},
	"npb-mg":       func(q bool) workload.Generator { return workload.NewNPBMG(quickScale(2048, q), 2) },
	"npb-is":       func(q bool) workload.Generator { return workload.NewNPBIS(quickScale(2048, q)) },
	"graphx-bfs":   func(q bool) workload.Generator { return workload.NewGraphX("BFS", quickScale(768, q)) },
	"graphx-cc":    func(q bool) workload.Generator { return workload.NewGraphX("CC", quickScale(768, q)) },
	"graphx-pr":    func(q bool) workload.Generator { return workload.NewGraphX("PR", quickScale(768, q)) },
	"graphx-lp":    func(q bool) workload.Generator { return workload.NewGraphX("LP", quickScale(768, q)) },
	"spark-kmeans": func(q bool) workload.Generator { return workload.NewSparkKMeans(quickScale(2048, q)) },
	"spark-bayes":  func(q bool) workload.Generator { return workload.NewSparkBayes(quickScale(2048, q)) },
	"random":       func(q bool) workload.Generator { return workload.NewRandom(quickScale(2048, q), quickScale(8192, q)) },
}

// systemCatalog maps the HoPP-variant system names to constructors.
// Demand-path systems are NOT listed here: they resolve through the
// prefetch registry (sim.DemandSystem), so a scheme registered there is
// immediately servable from runs, sweeps, and the CLIs with no catalog
// edit. Only systems that attach the MC/core stack need an entry.
var systemCatalog = map[string]func() sim.System{
	"hopp": sim.HoPP,
	"hopp-markov": func() sim.System {
		p := core.DefaultParams()
		p.Algorithm = "markov"
		s := sim.HoPPWith(p)
		s.Name = "HoPP-markov"
		return s
	},
	"hopp-bulk": func() sim.System {
		p := core.DefaultParams()
		p.Bulk.Enable = true
		s := sim.HoPPWith(p)
		s.Name = "HoPP-bulk"
		return s
	},
	"hopp-smartevict": func() sim.System {
		p := core.DefaultParams()
		p.SmartEviction = true
		s := sim.HoPPWith(p)
		s.Name = "HoPP-smartevict"
		return s
	},
}

// WorkloadNames returns every catalog workload name, sorted.
func WorkloadNames() []string { return sortedNames(workloadCatalog) }

// SystemNames returns every servable system spec, sorted: the HoPP
// variants plus every advertised prefetch-registry spec.
func SystemNames() []string {
	names := sortedNames(systemCatalog)
	names = append(names, prefetch.Specs()...)
	sort.Strings(names)
	return names
}

// NumWorkloads reports the catalog workload count (a /metrics gauge).
func NumWorkloads() int { return len(workloadCatalog) }

// NumSystems reports the servable system count (a /metrics gauge):
// HoPP variants plus advertised registry specs.
func NumSystems() int { return len(systemCatalog) + len(prefetch.Specs()) }

// canonicalSystem resolves any accepted system spec to its canonical
// form: HoPP-variant names pass through, everything else canonicalizes
// via the prefetch registry (depth?n=16 → depth-16).
func canonicalSystem(name string) (string, bool) {
	n := strings.ToLower(strings.TrimSpace(name))
	if _, ok := systemCatalog[n]; ok {
		return n, true
	}
	canon, err := prefetch.Canonical(n)
	if err != nil {
		return "", false
	}
	return canon, true
}

// NewWorkload builds a catalog workload at standard (or quick) scale.
func NewWorkload(name string, quick bool) (workload.Generator, bool) {
	f, ok := workloadCatalog[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return f(quick), true
}

// NewSystem builds a servable system from a catalog name or a
// prefetch-registry spec.
func NewSystem(name string) (sim.System, bool) {
	n := strings.ToLower(strings.TrimSpace(name))
	if f, ok := systemCatalog[n]; ok {
		return f(), true
	}
	sys, err := sim.DemandSystem(n)
	if err != nil {
		return sim.System{}, false
	}
	return sys, true
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m { //hopplint:sorted collected names are sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
