package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"hopp/internal/core"
	"hopp/internal/faults"
	"hopp/internal/hmtt"
	"hopp/internal/hpd"
	"hopp/internal/memsim"
	"hopp/internal/prefetch"
	"hopp/internal/vclock"
)

// Ingest errors. ErrIngestInterrupted wraps ErrDrainIncomplete: a
// session failed by an engine drain is the streaming analogue of a
// forced shutdown, and callers that already branch on
// ErrDrainIncomplete semantics see it through errors.Is.
var (
	ErrIngestInterrupted = fmt.Errorf("service: ingest interrupted by shutdown: %w", ErrDrainIncomplete)
	// ErrNotIngest rejects ingest-surface operations on IDs that name
	// jobs of other kinds (HTTP 404, like ErrNotSweep).
	ErrNotIngest = errors.New("service: not an ingest session")
	// ErrIngestLimit sheds an open when -max-ingests sessions are
	// already live (HTTP 429 + Retry-After).
	ErrIngestLimit = errors.New("service: too many active ingest sessions")
	// ErrIngestPaused rejects a chunk because the staging ring cannot
	// hold it: the pump is behind the producer. The session flips to the
	// paused phase and the client backs off (HTTP 429 + Retry-After) —
	// bounded memory instead of unbounded buffering.
	ErrIngestPaused = errors.New("service: ingest staging ring full, retry later")
	// ErrChunkOutOfOrder rejects a chunk whose index is ahead of the
	// session's acked high-water mark (HTTP 409): chunks are accepted
	// strictly in order so the byte stream — and the 6-byte records torn
	// across its chunk boundaries — reassembles exactly.
	ErrChunkOutOfOrder = errors.New("service: chunk index ahead of acked high-water mark")
	// ErrChunkTooLarge rejects a chunk bigger than the per-chunk bound
	// or the whole staging ring (HTTP 413).
	ErrChunkTooLarge = errors.New("service: chunk exceeds size limit")
	// ErrChunkRead marks a chunk body that tore mid-read. Nothing of the
	// chunk is staged: the session stays exactly where it was, resumable
	// at the same index (HTTP 400 — the client retries the chunk).
	ErrChunkRead = errors.New("service: chunk body read failed")
	// ErrIngestClosed rejects chunks for a session already draining or
	// terminal (HTTP 409).
	ErrIngestClosed = errors.New("service: ingest session closed")
	// ErrIngestExpired is the failure cause of a session whose client
	// went silent past -ingest-idle-timeout. Abandoned uploads expire;
	// they never pin a session slot.
	ErrIngestExpired = errors.New("service: ingest session expired: idle timeout")
)

// Ingest configuration defaults.
const (
	// DefaultMaxIngests bounds concurrently live ingest sessions.
	DefaultMaxIngests = 8
	// DefaultIngestIdleTimeout expires a session with no client activity.
	DefaultIngestIdleTimeout = 2 * time.Minute
	// DefaultIngestRingRecords sizes the staging ring between the HTTP
	// layer and the pump, in trace records.
	DefaultIngestRingRecords = 65536
	// DefaultIngestWindowRecords is the metrics window length when the
	// open request leaves WindowRecords unset.
	DefaultIngestWindowRecords = 4096
	// ingestMaxChunkBytes bounds one uploaded chunk (HTTP 413 beyond).
	ingestMaxChunkBytes = 4 << 20
	// hmttRecordSize re-exports the trace record width so engine.go can
	// size rings without importing hmtt itself.
	hmttRecordSize = hmtt.RecordSize
	// ingestPID is the process ID ingested trace pages are attributed
	// to: HMTT snoops physical addresses below the OS, so the stream is
	// one flat address space, exactly like cmd/traceanalyze's offline
	// model.
	ingestPID memsim.PID = 1
)

// IngestPhase is an ingest session's position in its own lifecycle,
// finer-grained than JobState: a running job is streaming, paused
// (staging ring full, producer backing off), or draining (close
// requested, pump finishing the backlog).
type IngestPhase string

// The ingest phases: open → streaming ⇄ paused → draining →
// done/expired/failed/cancelled.
const (
	IngestStreaming IngestPhase = "streaming"
	IngestPaused    IngestPhase = "paused"
	IngestDraining  IngestPhase = "draining"
	IngestDone      IngestPhase = "done"
	IngestExpired   IngestPhase = "expired"
	IngestFailed    IngestPhase = "failed"
	IngestCancelled IngestPhase = "cancelled"
)

// Terminal reports whether the phase is final.
func (p IngestPhase) Terminal() bool {
	return p == IngestDone || p == IngestExpired || p == IngestFailed || p == IngestCancelled
}

// IngestRequest opens one ingest session — the payload of POST
// /v1/ingests. The client then streams HMTT-encoded chunks at the
// session and reads windowed metrics as records flow through the live
// HPD→prefetcher pipeline.
type IngestRequest struct {
	// Workload is a free-form label for the trace source (there is no
	// catalog to validate a real application against). Empty means
	// "trace".
	Workload string `json:"workload,omitempty"`
	// System names the system under test, validated against the same
	// catalog as sim runs: a HoPP variant drives the prediction
	// algorithm from the HPD hot-page stream; a prefetch-registry spec
	// drives its demand-path prefetcher from the read stream. Empty
	// means "hopp".
	System string `json:"system,omitempty"`
	// Frac is local memory as a fraction of the footprint in [0, 1); it
	// sizes the prefetch working set the pipeline tracks. Nil defaults
	// to 0.5.
	Frac *float64 `json:"frac,omitempty"`
	// Seed labels the trace's generation seed (informational; the
	// pipeline itself is deterministic in the record stream).
	Seed int64 `json:"seed,omitempty"`
	// WindowRecords is the metrics window length in records; 0 means
	// DefaultIngestWindowRecords, out-of-range values clamp to
	// [16, 1<<20].
	WindowRecords int `json:"window_records,omitempty"`
}

// Normalize validates the request against the system catalog and
// resolves defaults. Ingest jobs have no cache key: a live stream is
// not a replayable computation, so nothing here is cacheable.
func (r IngestRequest) Normalize() (IngestRequest, error) {
	n := r
	n.Workload = strings.TrimSpace(n.Workload)
	if n.Workload == "" {
		n.Workload = "trace"
	}
	n.System = strings.ToLower(strings.TrimSpace(n.System))
	if n.System == "" {
		n.System = "hopp"
	}
	canon, ok := canonicalSystem(n.System)
	if !ok {
		return n, fmt.Errorf("%w %q", ErrUnknownSystem, r.System)
	}
	n.System = canon
	if n.Frac == nil {
		f := 0.5
		n.Frac = &f
	}
	if *n.Frac < 0 || *n.Frac >= 1 {
		return n, fmt.Errorf("%w (got %g)", ErrBadFrac, *n.Frac)
	}
	switch {
	case n.WindowRecords <= 0:
		n.WindowRecords = DefaultIngestWindowRecords
	case n.WindowRecords < 16:
		n.WindowRecords = 16
	case n.WindowRecords > 1<<20:
		n.WindowRecords = 1 << 20
	}
	return n, nil
}

// IngestWindow is one finished metrics window: what the trace did to
// the pipeline over WindowRecords consecutive records. Loss is the
// HMTT capture-buffer signal — sequence gaps in the uploaded stream —
// surfaced per window so a consumer sees when the producer's capture
// ring overflowed. Serialized windows are deterministic in the record
// stream, which is what makes restart replay byte-identical.
type IngestWindow struct {
	Index        int    `json:"index"`
	Records      uint64 `json:"records"`
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	LossRecords  uint64 `json:"loss_records"`
	HotPages     uint64 `json:"hot_pages"`
	Prefetches   uint64 `json:"prefetches"`
	PrefetchHits uint64 `json:"prefetch_hits"`
	// StartNS/EndNS are the window's bounds on the trace's own virtual
	// clock (TimestampDelta ticks × hmtt.TickNS).
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
}

// IngestStatus is the ingest-specific block of a session's RunStatus.
type IngestStatus struct {
	Phase IngestPhase `json:"phase"`
	// WindowRecords echoes the normalized window length.
	WindowRecords int `json:"window_records"`
	// ChunksAcked is the next chunk index the session will accept:
	// everything below it has been staged and acknowledged. Acks are
	// advisory until the chunk clears the pump; ChunksDurable is the
	// journaled high-water mark a restarted daemon resumes from — after
	// a crash the client rewinds to it and re-PUTs (idempotent by
	// index).
	ChunksAcked   int    `json:"chunks_acked"`
	ChunksDurable int    `json:"chunks_durable"`
	ChunksRetried uint64 `json:"chunks_retried,omitempty"`
	// Cumulative pipeline totals across all finished and in-progress
	// windows.
	Records      uint64 `json:"records"`
	LossRecords  uint64 `json:"loss_records"`
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	HotPages     uint64 `json:"hot_pages"`
	Prefetches   uint64 `json:"prefetches"`
	PrefetchHits uint64 `json:"prefetch_hits"`
	// Windows counts finished metrics windows (the NDJSON stream's
	// current length).
	Windows int `json:"windows"`
	// RingBytes/RingCapacity gauge the staging ring; a producer pausing
	// on 429 can watch occupancy fall.
	RingBytes    int `json:"ring_bytes"`
	RingCapacity int `json:"ring_capacity"`
	// PartialTail is how many bytes of a record torn across the last
	// chunk boundary are buffered, waiting for the rest of the stream.
	PartialTail int `json:"partial_tail_bytes,omitempty"`
	// Resumed marks a session restored from the journal after a daemon
	// restart.
	Resumed bool `json:"resumed,omitempty"`
}

// IngestJournal is the resumable snapshot an ingest journal entry
// carries: cumulative totals, the exact streaming-decoder state
// (partial record bytes and sequence accounting), the windows finished
// since the previous entry, and the in-progress window. Replay merges
// a session's entries by ID; the cumulative fields make the merge
// idempotent under duplicated or re-read lines.
type IngestJournal struct {
	Phase         IngestPhase `json:"phase"`
	WindowRecords int         `json:"window_records,omitempty"`
	ChunksAcked   int         `json:"chunks_acked"`
	ChunksRetried uint64      `json:"chunks_retried,omitempty"`
	Records       uint64      `json:"records,omitempty"`
	LossRecords   uint64      `json:"loss_records,omitempty"`
	Reads         uint64      `json:"reads,omitempty"`
	Writes        uint64      `json:"writes,omitempty"`
	HotPages      uint64      `json:"hot_pages,omitempty"`
	Prefetches    uint64      `json:"prefetches,omitempty"`
	PrefetchHits  uint64      `json:"prefetch_hits,omitempty"`
	ClockTicks    uint64      `json:"clock_ticks,omitempty"`
	// Decoder is the streaming decoder's snapshot: record framing and
	// sequence-gap accounting survive a restart byte-exactly.
	Decoder *hmtt.DecoderState `json:"decoder,omitempty"`
	// Windows are the windows finished since the previous entry;
	// WindowsBefore is the index of the first of them (the merge guard).
	WindowsBefore int            `json:"windows_before,omitempty"`
	Windows       []IngestWindow `json:"windows,omitempty"`
	// Partial is the in-progress window at append time.
	Partial *IngestWindow `json:"partial,omitempty"`
	Resumed bool          `json:"resumed,omitempty"`
}

// ingestChunk is one staged upload: the raw bytes of chunk n, waiting
// in the ring for the pump.
type ingestChunk struct {
	n    int
	data []byte
}

// ingestSession is the live state of one KindIngest job. reg.mu guards
// the owning Job; s.mu guards everything here. Lock order is
// reg.mu → s.mu, taken nowhere in reverse — the pump drops s.mu before
// touching the registry.
type ingestSession struct {
	mu sync.Mutex

	req IngestRequest // normalized

	phase IngestPhase

	// Staging ring: whole uploaded chunks queued for the pump, bounded
	// by capBytes. A chunk that does not fit is rejected (the paused
	// backpressure path) instead of growing the queue.
	staged      []ingestChunk
	stagedBytes int
	capBytes    int

	accepted  int // next chunk index a PUT may carry (acked HWM)
	processed int // chunks pumped and journaled (durable HWM)
	retried   uint64

	// The pipeline: streaming decoder → HPD hot-page table → prediction
	// algorithm (HoPP variants) or demand-path prefetcher (registry
	// schemes) → bounded predicted-page set scoring hits.
	dec       hmtt.Decoder
	clock     uint64 // trace ticks (sum of TimestampDelta)
	hot       *hpd.Table
	algo      core.Algorithm
	demand    prefetch.Prefetcher
	predicted *predictedSet

	reads, writes, hotPages, prefetches, prefetchHits uint64

	cur        IngestWindow
	windows    []IngestWindow
	journaledW int // windows already written to journal entries

	// windowSig is closed (and, while non-terminal, recreated) whenever
	// a window finishes or the session goes terminal — the follow-mode
	// wakeup for the metrics stream.
	windowSig chan struct{}
	// wake nudges the pump (buffered; producers send non-blocking).
	wake chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	idle   *time.Timer
	idleD  time.Duration

	closing   bool // client requested close: drain then done
	shut      bool // engine drain: finish the backlog, then fail interrupted
	cancelled bool
	expired   bool
	resumed   bool
}

// newIngestSession builds the session skeleton: request, ring bound,
// pipeline, channels. The caller wires ctx/idle and starts the pump.
func newIngestSession(req IngestRequest, ringBytes int) *ingestSession {
	s := &ingestSession{
		req:       req,
		phase:     IngestStreaming,
		capBytes:  ringBytes,
		windowSig: make(chan struct{}),
		wake:      make(chan struct{}, 1),
	}
	s.buildPipeline()
	return s
}

// buildPipeline constructs the per-session simulation stack. The system
// name was validated at Normalize, so construction cannot fail on live
// opens; replay revalidates before calling.
func (s *ingestSession) buildPipeline() {
	sys, _ := NewSystem(s.req.System)
	s.hot = hpd.MustNew(hpd.Default())
	switch {
	case sys.HoPP:
		// Mirror core.NewPrefetcher's algorithm selection without the
		// executor: ingest scores predictions against the live stream
		// instead of simulating page movement.
		switch sys.HoPPParams.Algorithm {
		case core.AlgoMarkov:
			s.algo = core.NewMarkov(sys.HoPPParams)
		default:
			s.algo = core.NewTrainer(sys.HoPPParams)
		}
	case sys.NewFault != nil:
		s.demand = sys.NewFault(nil)
	}
	// The predicted set models the remote pages a prefetcher would have
	// resident locally: smaller local fractions leave more room for
	// prefetched pages, mirroring the sim's working-set pressure.
	capPages := int((1 - *s.req.Frac) * 8192)
	if capPages < 256 {
		capPages = 256
	}
	s.predicted = newPredictedSet(capPages, func(vpn memsim.VPN) {
		if s.demand != nil {
			now := vclock.Time(s.clock * hmtt.TickNS)
			s.demand.OnPrefetchEvicted(now, memsim.PageKey{PID: ingestPID, VPN: vpn}, false)
		}
	})
}

// wakeLocked nudges the pump without blocking; s.mu must be held.
func (s *ingestSession) wakeLocked() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// signalWindowsLocked wakes metrics-stream followers; s.mu must be
// held. While the session is live the channel is recreated so later
// waiters park on a fresh one; at terminal it stays closed forever.
func (s *ingestSession) signalWindowsLocked(terminal bool) {
	close(s.windowSig)
	if !terminal {
		s.windowSig = make(chan struct{})
	}
}

// touchLocked restarts the inactivity deadline; s.mu must be held.
func (s *ingestSession) touchLocked() {
	if s.idle != nil {
		s.idle.Reset(s.idleD)
	}
}

// interrupt flags the session for the given terminal cause and wakes
// the pump — the single finisher. cancelCtx releases a pump parked on
// a stall gate or an idle select.
func (s *ingestSession) interrupt(mark func(*ingestSession)) {
	s.mu.Lock()
	if s.phase.Terminal() {
		s.mu.Unlock()
		return
	}
	mark(s)
	s.wakeLocked()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// interruptShutdown flags the session for engine drain: the pump
// finishes the staged backlog, then fails the session with
// ErrIngestInterrupted. The session context is left alone here — the
// drain-deadline path cancels the engine's base context, which aborts
// backlogs still in flight.
func (s *ingestSession) interruptShutdown() {
	s.mu.Lock()
	if !s.phase.Terminal() {
		s.shut = true
		s.wakeLocked()
	}
	s.mu.Unlock()
}

// consume runs one decoded record through the pipeline; s.mu must be
// held (the pump holds it across a chunk). This is the ingest mirror of
// cmd/traceanalyze's offline loop: the trace's own timestamps drive the
// virtual clock, WRITEs are filtered from the HPD per §III-B, and
// sequence-gap loss is charged to the window where it happened.
func (s *ingestSession) consume(rec hmtt.Record, lostBefore int) {
	s.clock += uint64(rec.TimestampDelta)
	now := vclock.Time(s.clock * hmtt.TickNS)
	s.cur.LossRecords += uint64(lostBefore)
	s.cur.Records++
	if rec.Write {
		s.writes++
		s.cur.Writes++
	} else {
		s.reads++
		s.cur.Reads++
		vpn := memsim.VPN(rec.Page)
		key := memsim.PageKey{PID: ingestPID, VPN: vpn}
		if s.predicted.hit(vpn) {
			s.prefetchHits++
			s.cur.PrefetchHits++
			if s.demand != nil {
				s.demand.OnPrefetchHit(now, key)
			}
		} else if s.demand != nil {
			for _, p := range s.demand.OnFault(now, key) {
				if s.predicted.add(p) {
					s.prefetches++
					s.cur.Prefetches++
				}
			}
		}
		if s.hot.Access(rec.Page) {
			s.hotPages++
			s.cur.HotPages++
			if s.algo != nil {
				if pred, ok := s.algo.Observe(now, ingestPID, vpn); ok {
					// pred.Pages may alias the algorithm's scratch buffer;
					// predictedSet.add copies by value.
					for _, p := range pred.Pages {
						if s.predicted.add(p) {
							s.prefetches++
							s.cur.Prefetches++
						}
					}
				}
			}
		}
	}
	if int(s.cur.Records) >= s.req.WindowRecords {
		s.finishWindowLocked(false)
	}
}

// finishWindowLocked seals the in-progress window and opens the next;
// s.mu must be held. The final partial window (at close) seals whatever
// it holds.
func (s *ingestSession) finishWindowLocked(terminal bool) {
	if s.cur.Records == 0 && !terminal {
		return
	}
	if s.cur.Records > 0 {
		s.cur.EndNS = int64(s.clock) * hmtt.TickNS
		s.windows = append(s.windows, s.cur)
		s.cur = IngestWindow{Index: s.cur.Index + 1, StartNS: s.cur.EndNS}
	}
	s.signalWindowsLocked(terminal)
}

// journalSnapshot builds the session's journal payload: cumulative
// totals, decoder state, and the windows finished since the last entry
// (which it marks journaled). The caller holds reg.mu; s.mu is taken
// here, respecting the reg.mu → s.mu order.
func (s *ingestSession) journalSnapshot() *IngestJournal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalSnapshotLocked()
}

// journalSnapshotLocked is journalSnapshot with s.mu already held.
func (s *ingestSession) journalSnapshotLocked() *IngestJournal {
	dec := s.dec.State()
	ij := &IngestJournal{
		Phase:         s.phase,
		WindowRecords: s.req.WindowRecords,
		ChunksAcked:   s.processed,
		ChunksRetried: s.retried,
		Records:       s.dec.Records(),
		LossRecords:   s.dec.Lost(),
		Reads:         s.reads,
		Writes:        s.writes,
		HotPages:      s.hotPages,
		Prefetches:    s.prefetches,
		PrefetchHits:  s.prefetchHits,
		ClockTicks:    s.clock,
		Decoder:       &dec,
		WindowsBefore: s.journaledW,
		Resumed:       s.resumed,
	}
	if s.journaledW < len(s.windows) {
		ij.Windows = append([]IngestWindow(nil), s.windows[s.journaledW:]...)
		s.journaledW = len(s.windows)
	}
	if s.cur.Records > 0 {
		cp := s.cur
		ij.Partial = &cp
	}
	return ij
}

// statusSnapshot renders the externally visible ingest block.
func (s *ingestSession) statusSnapshot() *IngestStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &IngestStatus{
		Phase:         s.phase,
		WindowRecords: s.req.WindowRecords,
		ChunksAcked:   s.accepted,
		ChunksDurable: s.processed,
		ChunksRetried: s.retried,
		Records:       s.dec.Records(),
		LossRecords:   s.dec.Lost(),
		Reads:         s.reads,
		Writes:        s.writes,
		HotPages:      s.hotPages,
		Prefetches:    s.prefetches,
		PrefetchHits:  s.prefetchHits,
		Windows:       len(s.windows),
		RingBytes:     s.stagedBytes,
		RingCapacity:  s.capBytes,
		PartialTail:   s.dec.Buffered(),
		Resumed:       s.resumed,
	}
}

// predictedSet is the bounded FIFO set of pages the system under test
// has predicted: a later read of a member scores a prefetch hit, and
// FIFO eviction of a never-read member is the unused-eviction feedback
// signal.
type predictedSet struct {
	capacity int
	fifo     []memsim.VPN
	member   map[memsim.VPN]struct{}
	onEvict  func(memsim.VPN)
}

func newPredictedSet(capacity int, onEvict func(memsim.VPN)) *predictedSet {
	return &predictedSet{
		capacity: capacity,
		member:   make(map[memsim.VPN]struct{}, capacity),
		onEvict:  onEvict,
	}
}

// add inserts vpn, evicting the oldest member when full; reports
// whether vpn was newly inserted.
func (ps *predictedSet) add(vpn memsim.VPN) bool {
	if _, ok := ps.member[vpn]; ok {
		return false
	}
	for len(ps.member) >= ps.capacity && len(ps.fifo) > 0 {
		old := ps.fifo[0]
		ps.fifo = ps.fifo[1:]
		if _, live := ps.member[old]; live {
			delete(ps.member, old)
			ps.onEvict(old)
		}
	}
	ps.member[vpn] = struct{}{}
	ps.fifo = append(ps.fifo, vpn)
	return true
}

// hit consumes a membership: the page was read while predicted. The
// FIFO slot becomes a tombstone skipped at eviction time.
func (ps *predictedSet) hit(vpn memsim.VPN) bool {
	if _, ok := ps.member[vpn]; !ok {
		return false
	}
	delete(ps.member, vpn)
	return true
}

// OpenIngest admits a new ingest session: a KindIngest job born
// running, its pump goroutine started, its open entry journaled.
func (e *Engine) OpenIngest(req IngestRequest) (RunStatus, error) {
	norm, err := req.Normalize()
	if err != nil {
		return RunStatus{}, err
	}
	s := newIngestSession(norm, e.ingestRingBytes)
	now := time.Now()
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	if e.closed {
		return RunStatus{}, ErrClosed
	}
	if len(e.liveIngests) >= e.maxIngests {
		return RunStatus{}, fmt.Errorf("%w (%d live, bound %d)", ErrIngestLimit, len(e.liveIngests), e.maxIngests)
	}
	j := &Job{
		Kind:      KindIngest,
		State:     StateRunning,
		ingest:    s,
		submitted: now,
		started:   now,
		done:      make(chan struct{}),
	}
	e.reg.addLocked(j)
	e.liveIngests = append(e.liveIngests, j)
	e.ctr.kind(KindIngest).submitted.Add(1)
	e.ctr.kind(KindIngest).started.Add(1)
	e.startIngestLocked(j, s)
	e.reg.appendEntryLocked(e.ingestEntryLocked(j, StateRunning, ""))
	return e.statusLocked(j), nil
}

// startIngestLocked wires a session's runtime — context, cancel hook,
// idle deadline — and launches its pump; reg.mu must be held.
func (e *Engine) startIngestLocked(j *Job, s *ingestSession) {
	ctx, cancel := context.WithCancel(e.baseCtx)
	s.mu.Lock()
	s.ctx = ctx
	s.cancel = cancel
	s.idleD = e.ingestIdle
	s.idle = time.AfterFunc(s.idleD, func() {
		s.interrupt(func(s *ingestSession) { s.expired = true })
	})
	s.mu.Unlock()
	j.cancel = func() {
		s.interrupt(func(s *ingestSession) { s.cancelled = true })
	}
	e.ingestWG.Add(1)
	go e.ingestPump(j, s)
}

// ingestEntryLocked builds a non-terminal journal entry for an ingest
// session (open, per-chunk HWM); reg.mu must be held. Terminal entries
// flow through journalEntry at markTerminalLocked like every kind.
func (e *Engine) ingestEntryLocked(j *Job, state JobState, errMsg string) JournalEntry {
	s := j.ingest
	return JournalEntry{
		ID:              j.ID,
		Kind:            KindIngest,
		State:           state,
		Workload:        s.req.Workload,
		System:          s.req.System,
		Frac:            s.req.Frac,
		Seed:            s.req.Seed,
		Error:           errMsg,
		Progress:        j.progress.Load(),
		SubmittedUnixNS: j.submitted.UnixNano(),
		Ingest:          s.journalSnapshot(),
	}
}

// ingestJobLocked resolves an ID to its ingest job; reg.mu must be
// held.
func (e *Engine) ingestJobLocked(id string) (*Job, *ingestSession, error) {
	j, ok := e.reg.getLocked(id)
	if !ok {
		return nil, nil, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	if j.Kind != KindIngest || j.ingest == nil {
		return nil, nil, fmt.Errorf("%w: %s is a %s job", ErrNotIngest, id, j.Kind)
	}
	return j, j.ingest, nil
}

// IngestStatusByID returns one ingest session's snapshot; IDs naming
// jobs of other kinds answer ErrNotIngest (HTTP 404).
func (e *Engine) IngestStatusByID(id string) (RunStatus, error) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	j, _, err := e.ingestJobLocked(id)
	if err != nil {
		return RunStatus{}, err
	}
	return e.statusLocked(j), nil
}

// IngestChunk stages chunk n of a session. Chunks are idempotent by
// index: n below the acked high-water mark re-acks without
// reprocessing (the client's retry after a torn response), n above it
// is rejected out-of-order, and exactly n == acked stages. The whole
// body is read before any session state changes, so a read that tears
// mid-chunk leaves the session byte-exactly where it was.
func (e *Engine) IngestChunk(id string, n int, body io.Reader) (RunStatus, error) {
	if n < 0 {
		return RunStatus{}, fmt.Errorf("%w: negative index %d", ErrChunkOutOfOrder, n)
	}
	var r io.Reader = io.LimitReader(body, ingestMaxChunkBytes+1)
	if e.faults != nil {
		r = &siteReader{r: r, inj: e.faults, site: faults.SiteIngestChunkRead}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return RunStatus{}, fmt.Errorf("%w: %w", ErrChunkRead, err)
	}
	if len(data) > ingestMaxChunkBytes {
		return RunStatus{}, fmt.Errorf("%w: chunk over %d bytes", ErrChunkTooLarge, ingestMaxChunkBytes)
	}

	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	j, s, err := e.ingestJobLocked(id)
	if err != nil {
		return RunStatus{}, err
	}
	s.mu.Lock()
	switch {
	case s.phase.Terminal(), s.closing, s.shut:
		s.mu.Unlock()
		return e.statusLocked(j), fmt.Errorf("%w: session %s is %s", ErrIngestClosed, id, s.phase)
	case n < s.accepted:
		// Duplicate: the client retried a chunk whose ack it never saw.
		s.retried++
		e.ctr.ingestChunksRetried.Add(1)
		s.touchLocked()
		s.mu.Unlock()
		return e.statusLocked(j), nil
	case n > s.accepted:
		s.mu.Unlock()
		return e.statusLocked(j), fmt.Errorf("%w: got %d, want %d", ErrChunkOutOfOrder, n, s.accepted)
	}
	s.touchLocked()
	if len(data) > s.capBytes {
		s.mu.Unlock()
		return e.statusLocked(j), fmt.Errorf("%w: chunk over ring capacity %d bytes", ErrChunkTooLarge, s.capBytes)
	}
	if s.stagedBytes+len(data) > s.capBytes || e.faults.Hit(faults.SiteIngestRingFull) {
		// The pump is behind the producer: bounded backpressure, not
		// unbounded buffering. The producer backs off (429 +
		// Retry-After); its own capture ring absorbing the pause is what
		// turns a slow consumer into the paper's sequence-gap loss.
		s.phase = IngestPaused
		staged := s.stagedBytes
		s.mu.Unlock()
		return e.statusLocked(j), fmt.Errorf("%w (ring %d/%d bytes)", ErrIngestPaused, staged, s.capBytes)
	}
	s.staged = append(s.staged, ingestChunk{n: n, data: data})
	s.stagedBytes += len(data)
	s.accepted++
	s.phase = IngestStreaming
	s.wakeLocked()
	s.mu.Unlock()
	return e.statusLocked(j), nil
}

// CloseIngest ends the producer side of a session: the pump drains the
// staged backlog, seals the final partial window, and the job finishes
// done. Idempotent — closing a draining or terminal session just
// returns its status.
func (e *Engine) CloseIngest(id string) (RunStatus, error) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	j, s, err := e.ingestJobLocked(id)
	if err != nil {
		return RunStatus{}, err
	}
	s.mu.Lock()
	if !s.phase.Terminal() && !s.closing {
		s.closing = true
		s.phase = IngestDraining
		s.touchLocked()
		s.wakeLocked()
	}
	s.mu.Unlock()
	return e.statusLocked(j), nil
}

// IngestWindows snapshots a session's finished windows.
func (e *Engine) IngestWindows(id string) ([]IngestWindow, error) {
	e.reg.mu.Lock()
	_, s, err := e.ingestJobLocked(id)
	e.reg.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]IngestWindow(nil), s.windows...), nil
}

// IngestWindowAt returns window i of a session. have reports the
// window exists; ended reports the session is terminal with no window
// i coming. With wait set it blocks until one of those (or ctx ends) —
// the follow mode of the metrics stream.
func (e *Engine) IngestWindowAt(ctx context.Context, id string, i int, wait bool) (win IngestWindow, have, ended bool, err error) {
	e.reg.mu.Lock()
	_, s, err := e.ingestJobLocked(id)
	e.reg.mu.Unlock()
	if err != nil {
		return IngestWindow{}, false, false, err
	}
	for {
		s.mu.Lock()
		if i < len(s.windows) {
			win := s.windows[i]
			s.mu.Unlock()
			return win, true, false, nil
		}
		if s.phase.Terminal() {
			s.mu.Unlock()
			return IngestWindow{}, false, true, nil
		}
		if !wait {
			s.mu.Unlock()
			return IngestWindow{}, false, false, nil
		}
		sig := s.windowSig
		s.mu.Unlock()
		select {
		case <-sig:
		case <-ctx.Done():
			return IngestWindow{}, false, false, ctx.Err()
		}
	}
}

// ingestPump is a session's single consumer and single finisher: it
// drains staged chunks through the decoder and pipeline, journals the
// high-water mark after each chunk, and performs the one terminal
// transition — done (client closed), expired (idle), cancelled, failed
// (interrupted by drain, or a panicked pipeline). Every other path —
// DELETE, idle timer, Shutdown — only sets flags and wakes it, which is
// what makes "never a zombie" a structural property rather than a
// convention.
func (e *Engine) ingestPump(j *Job, s *ingestSession) {
	defer e.ingestWG.Done()
	var panicked error
	func() {
		defer func() {
			if r := recover(); r != nil {
				// Contain a poisoned pipeline on this goroutine: the
				// session fails, the daemon lives.
				panicked = fmt.Errorf("%w: ingest pipeline: %v", ErrRunPanicked, r)
				e.logf("ingest %s pipeline panicked: %v", j.ID, r)
			}
		}()
		e.ingestPumpLoop(s)
	}()
	e.finishIngest(j, s, panicked)
}

// ingestPumpLoop runs until a terminal cause is flagged (and, for
// close/drain, the backlog is drained).
func (e *Engine) ingestPumpLoop(s *ingestSession) {
	for {
		s.mu.Lock()
		if s.cancelled || s.expired || s.ctx.Err() != nil {
			s.mu.Unlock()
			return // immediate: discard the backlog
		}
		if len(s.staged) == 0 {
			if s.closing || s.shut {
				s.mu.Unlock()
				return // drained: close or interrupt finishes below
			}
			wake := s.wake
			ctx := s.ctx
			s.mu.Unlock()
			select {
			case <-wake:
			case <-ctx.Done():
			}
			continue
		}
		c := s.staged[0]
		s.staged = s.staged[1:]
		s.stagedBytes -= len(c.data)
		if s.phase == IngestPaused && s.stagedBytes*2 <= s.capBytes {
			// Hysteresis: unpause only once half the ring is free, so a
			// producer retrying at the bound does not flap.
			s.phase = IngestStreaming
		}
		ctx := s.ctx
		s.mu.Unlock()

		if e.faults.Hit(faults.SiteIngestPumpStall) {
			// Parked, not sleeping: deterministically slow consumer until
			// the test opens the gate or the session ends.
			_ = e.faults.Gate(faults.SiteIngestPumpStall).Wait(ctx) //hopplint:errok a cancelled wait is re-checked at the loop top; the chunk below is only processed when the session is still live
		}

		s.mu.Lock()
		if s.cancelled || s.expired || s.ctx.Err() != nil {
			s.mu.Unlock()
			return
		}
		s.dec.Feed(c.data, s.consume)
		s.processed = c.n + 1
		s.touchLocked()
		records := int64(s.dec.Records())
		s.mu.Unlock()

		j, entry := e.ingestChunkEntry(s, records)
		if j != nil {
			e.reg.mu.Lock()
			e.reg.appendEntryLocked(entry)
			e.reg.mu.Unlock()
		}
	}
}

// ingestChunkEntry builds the per-chunk journal entry for s's job and
// updates the progress gauge. It looks the job up through the session
// backref set at start; a nil return means the journal is detached and
// nothing needs appending.
func (e *Engine) ingestChunkEntry(s *ingestSession, records int64) (*Job, JournalEntry) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	for _, j := range e.liveIngests {
		if j.ingest == s {
			j.progress.Store(records)
			return j, e.ingestEntryLocked(j, StateRunning, "")
		}
	}
	return nil, JournalEntry{}
}

// finishIngest performs the session's single terminal transition.
func (e *Engine) finishIngest(j *Job, s *ingestSession, panicked error) {
	s.mu.Lock()
	var state JobState
	var errMsg string
	var expired bool
	switch {
	case panicked != nil:
		state, errMsg = StateFailed, panicked.Error()
		s.phase = IngestFailed
	case s.cancelled:
		state, errMsg = StateCancelled, context.Canceled.Error()
		s.phase = IngestCancelled
	case s.expired:
		state, errMsg = StateFailed, ErrIngestExpired.Error()
		s.phase = IngestExpired
		expired = true
	case s.closing:
		// Drained to the end of the client's stream: seal the final
		// partial window. A trailing torn record (PartialTail bytes)
		// stays in the decoder, surfaced in status, never guessed at.
		s.finishWindowLocked(true)
		state = StateDone
		s.phase = IngestDone
	default: // engine drain interrupted a live session
		state, errMsg = StateFailed, ErrIngestInterrupted.Error()
		s.phase = IngestFailed
		s.finishWindowLocked(true)
	}
	if s.idle != nil {
		s.idle.Stop()
	}
	// Wake any followers parked on the window signal regardless of
	// outcome; a terminal close leaves the channel closed forever.
	if !s.phaseSignalled() {
		s.signalWindowsLocked(true)
	}
	records := int64(s.dec.Records())
	loss := s.dec.Lost()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}

	e.ctr.ingestRecords.Add(uint64(records))
	e.ctr.ingestLossRecords.Add(loss)
	if expired {
		e.ctr.ingestSessionsExpired.Add(1)
	}

	e.reg.mu.Lock()
	j.progress.Store(records)
	j.State = state
	j.errMsg = errMsg
	j.wallNS = time.Since(j.started).Nanoseconds()
	kc := e.ctr.kind(KindIngest)
	switch state {
	case StateDone:
		kc.completed.Add(1)
	case StateCancelled:
		kc.cancelled.Add(1)
	default:
		kc.failed.Add(1)
	}
	e.finishLocked(j, time.Now())
	e.reg.mu.Unlock()
}

// phaseSignalled reports whether the terminal window signal was already
// sent; s.mu must be held. finishWindowLocked(true) closes the channel
// without recreating it, so a second close would panic — this guards
// the paths that did not seal a final window.
func (s *ingestSession) phaseSignalled() bool {
	select {
	case <-s.windowSig:
		return true
	default:
		return false
	}
}

// siteReader fails reads on demand at a named fault site — the
// engine-level twin of the HTTP layer's faultReader, used for the
// ingest chunk-read site.
type siteReader struct {
	r    io.Reader
	inj  *faults.Injector
	site string
}

func (sr *siteReader) Read(p []byte) (int, error) {
	if err := sr.inj.ErrAt(sr.site); err != nil {
		return 0, err
	}
	return sr.r.Read(p)
}

// removeLiveIngestLocked drops a finished ingest job from the live
// list; reg.mu must be held.
func (e *Engine) removeLiveIngestLocked(j *Job) {
	for i, live := range e.liveIngests {
		if live == j {
			e.liveIngests = append(e.liveIngests[:i], e.liveIngests[i+1:]...)
			return
		}
	}
}
