package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hopp/internal/sim"
)

// seedReq is quickReq with a distinct seed, so each call is a distinct
// cache key (a real run, not a hit).
func seedReq(seed int64) RunRequest {
	req := quickReq()
	req.Seed = seed
	return req
}

// instantSim is a runSim stub that completes immediately.
func instantSim(ctx context.Context, req RunRequest) (sim.Metrics, error) {
	return sim.Metrics{System: "test", CompletionTime: 1}, nil
}

// waitCounters polls until pred sees a satisfying snapshot.
func waitCounters(t *testing.T, e *Engine, pred func(MetricsSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pred(e.Metrics()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never reached; metrics: %+v", e.Metrics())
}

// Over-limit submissions must fail fast with ErrOverloaded and leave no
// registry entry behind (the fail-fast half of admission control).
func TestSubmitOverloadedRejectsFast(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, MaxQueue: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return sim.Metrics{System: "test"}, nil
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
	if _, err := e.Submit(seedReq(1)); err != nil {
		t.Fatal(err)
	}
	<-started // first run holds the only worker
	if _, err := e.Submit(seedReq(2)); err != nil {
		t.Fatalf("second submit (fills the queue): %v", err)
	}
	_, err := e.Submit(seedReq(3))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit submit = %v, want ErrOverloaded", err)
	}
	if got := len(e.Runs()); got != 2 {
		t.Fatalf("rejected submission left a registry entry: %d runs, want 2", got)
	}
	m := e.Metrics()
	if got := m.Jobs[KindSim].Rejected; got != 1 {
		t.Fatalf("sim jobs rejected = %d, want 1", got)
	}
	if got := m.Jobs[KindSim].Submitted; got != 2 {
		t.Fatalf("sim jobs submitted = %d, want 2 (rejections don't count)", got)
	}
	close(release)
}

// A run exceeding the per-run deadline must land in StateFailed with the
// distinct timeout error, move the runs_timed_out counter, and free its
// worker for the next run.
func TestRunTimeoutFailsRunAndFreesWorker(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, RunTimeout: 30 * time.Millisecond})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		if req.Seed == 2 { // the follow-up run: well-behaved
			return sim.Metrics{System: "test", CompletionTime: 7}, nil
		}
		<-ctx.Done() // pathological run: only the deadline frees it
		return sim.Metrics{}, ctx.Err()
	}
	stuck, err := e.Submit(seedReq(1))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, e, stuck.ID)
	if final.State != StateFailed {
		t.Fatalf("timed-out run state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, ErrRunTimeout.Error()) {
		t.Fatalf("timed-out run error = %q, want it to mention %q", final.Error, ErrRunTimeout)
	}
	m := e.Metrics()
	if kc := m.Jobs[KindSim]; kc.TimedOut != 1 || kc.Failed != 1 {
		t.Fatalf("timeout counters = timed_out %d failed %d, want 1/1", kc.TimedOut, kc.Failed)
	}
	// The worker must be free: a normal run completes.
	next, err := e.Submit(seedReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, e, next.ID); st.State != StateDone {
		t.Fatalf("run after timeout = %s (%s), want done (worker not freed?)", st.State, st.Error)
	}
}

// Cancellation must stay distinguishable from a timeout: a user Cancel
// under an armed -run-timeout still lands in StateCancelled.
func TestCancelIsNotMistakenForTimeout(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, RunTimeout: time.Hour})
	started := make(chan struct{})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		close(started)
		<-ctx.Done()
		return sim.Metrics{}, ctx.Err()
	}
	st, err := e.Submit(seedReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := e.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, e, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("cancelled run state = %s, want cancelled", final.State)
	}
	if got := e.Metrics().Jobs[KindSim].TimedOut; got != 0 {
		t.Fatalf("sim jobs timed out = %d after a plain cancel, want 0", got)
	}
}

// Terminal runs past the retention count are evicted oldest-first and
// their IDs answer ErrUnknownRun (the 404-after-eviction contract).
func TestRegistryEvictsTerminalRunsPastRetention(t *testing.T) {
	const retain, total = 4, 20
	e := newTestEngine(t, Options{Workers: 2, RetainRuns: retain})
	e.runSim = instantSim
	var first string
	for i := 0; i < total; i++ {
		st, err := e.Submit(seedReq(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.ID
		}
	}
	waitCounters(t, e, func(m MetricsSnapshot) bool { return m.Jobs[KindSim].Completed == total })
	m := e.Metrics()
	if m.RegistrySize != retain {
		t.Fatalf("registry_size = %d after %d runs, want %d", m.RegistrySize, total, retain)
	}
	if m.RegistryEvictions != total-retain {
		t.Fatalf("registry_evictions = %d, want %d", m.RegistryEvictions, total-retain)
	}
	if got := len(e.Runs()); got != retain {
		t.Fatalf("Runs() lists %d entries, want %d", got, retain)
	}
	if _, err := e.Status(first); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("Status(evicted) = %v, want ErrUnknownRun", err)
	}
	if err := e.Cancel(first); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("Cancel(evicted) = %v, want ErrUnknownRun", err)
	}
}

// Age-based eviction drops finished runs even while the count bound has
// room, triggered lazily by the next submission.
func TestRegistryEvictsByAge(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, RetainRuns: 100, RetainAge: 20 * time.Millisecond})
	e.runSim = instantSim
	old, err := e.Submit(seedReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, old.ID)
	time.Sleep(60 * time.Millisecond)
	fresh, err := e.Submit(seedReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Status(old.ID); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("Status(aged-out) = %v, want ErrUnknownRun", err)
	}
	if st := waitDone(t, e, fresh.ID); st.State != StateDone {
		t.Fatalf("fresh run = %s, want done", st.State)
	}
}

// The sustained-load regression: submitting 10x the retention limit must
// leave registry size, queue depth, and the heap bounded — the leak this
// PR exists to close. Overloaded submissions are retried, modeling a
// well-behaved client honoring 429 + Retry-After.
func TestSustainedLoadStaysBounded(t *testing.T) {
	const (
		workers  = 4
		retain   = 32
		maxQueue = 16
		total    = 10 * retain
	)
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	e := newTestEngine(t, Options{Workers: workers, RetainRuns: retain, MaxQueue: maxQueue})
	e.runSim = instantSim
	maxRegistry, maxDepth := 0, 0
	for i := 0; i < total; i++ {
		for {
			_, err := e.Submit(seedReq(int64(i + 1)))
			if err == nil {
				break
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("submit %d: %v", i, err)
			}
			time.Sleep(time.Millisecond) // the Retry-After dance
		}
		m := e.Metrics()
		if m.RegistrySize > maxRegistry {
			maxRegistry = m.RegistrySize
		}
		if m.QueueDepth > maxDepth {
			maxDepth = m.QueueDepth
		}
	}
	waitCounters(t, e, func(m MetricsSnapshot) bool { return m.Jobs[KindSim].Completed == total })

	// Queue depth plateaus at its bound; the registry at retention plus
	// whatever can legitimately be in flight.
	if maxDepth > maxQueue {
		t.Fatalf("queue depth peaked at %d, bound is %d", maxDepth, maxQueue)
	}
	if limit := retain + maxQueue + workers; maxRegistry > limit {
		t.Fatalf("registry peaked at %d, bound is %d", maxRegistry, limit)
	}
	final := e.Metrics()
	if final.RegistrySize != retain {
		t.Fatalf("registry_size settled at %d, want %d", final.RegistrySize, retain)
	}
	if final.RegistryEvictions != total-retain {
		t.Fatalf("registry_evictions = %d, want %d", final.RegistryEvictions, total-retain)
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	// Generous bound: the point is catching O(total-submissions) leaks
	// (the old registry grew without limit), not byte-exact accounting.
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 32<<20 {
		t.Fatalf("heap grew %d bytes over %d runs; registry leak?", growth, total)
	}
}

// The Retry-After hint must adapt: floor before any observation, mean
// wall time once runs complete, scaled by backlog per worker, capped at
// a minute. Counters are seeded directly so the arithmetic is exact.
func TestRetryAfterHintAdaptsToLoad(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, MaxQueue: 8})
	if got := e.RetryAfterHint(); got != time.Second {
		t.Fatalf("hint with no completed runs = %v, want the 1s floor", got)
	}

	// Mean wall time 2s, empty queue, 1 worker: hint is one mean run.
	e.ctr.kind(KindSim).completed.Store(4)
	e.ctr.runWallNS.Store((8 * time.Second).Nanoseconds())
	if got := e.RetryAfterHint(); got != 2*time.Second {
		t.Fatalf("hint with mean 2s and empty queue = %v, want 2s", got)
	}
	if got := e.RetryAfterSeconds(); got != 2 {
		t.Fatalf("RetryAfterSeconds = %d, want 2", got)
	}

	// Fast runs (mean 1ms) must not produce a sub-second hint.
	e.ctr.kind(KindSim).completed.Store(1000)
	e.ctr.runWallNS.Store(time.Second.Nanoseconds())
	if got := e.RetryAfterHint(); got != time.Second {
		t.Fatalf("hint with mean 1ms = %v, want clamped to the 1s floor", got)
	}

	// A pathological mean is capped so clients never park for hours.
	e.ctr.kind(KindSim).completed.Store(1)
	e.ctr.runWallNS.Store((3 * time.Hour).Nanoseconds())
	if got := e.RetryAfterHint(); got != time.Minute {
		t.Fatalf("hint with mean 3h = %v, want the 60s cap", got)
	}

	// The snapshot carries the same value scrapers see.
	e.ctr.kind(KindSim).completed.Store(2)
	e.ctr.runWallNS.Store((6 * time.Second).Nanoseconds())
	if got := e.Metrics().RetryAfterHintNS; got != (3 * time.Second).Nanoseconds() {
		t.Fatalf("metrics retry_after_hint_ns = %d, want %d", got, (3 * time.Second).Nanoseconds())
	}
}

// The hint must grow with queue depth: each queued run adds one mean
// wall time per worker to the estimated drain time.
func TestRetryAfterHintScalesWithQueueDepth(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, MaxQueue: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return sim.Metrics{System: "test"}, nil
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
	defer close(release)
	// One run occupies the worker, then four fill the queue.
	if _, err := e.Submit(seedReq(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 4; i++ {
		if _, err := e.Submit(seedReq(int64(i + 2))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitCounters(t, e, func(m MetricsSnapshot) bool { return m.QueueDepth == 4 })
	e.ctr.kind(KindSim).completed.Store(1)
	e.ctr.runWallNS.Store((2 * time.Second).Nanoseconds())
	// mean 2s × (4 queued + 1 incoming) / 1 worker.
	if got := e.RetryAfterHint(); got != 10*time.Second {
		t.Fatalf("hint with mean 2s and depth 4 = %v, want 10s", got)
	}
}

// HTTP surface of admission control: over-limit submissions get 429 with
// a Retry-After header.
func TestHTTP429OnOverload(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 1, MaxQueue: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return sim.Metrics{System: "test"}, nil
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
	defer close(release)
	if _, code := postRun(t, srv.URL, seedReq(1)); code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	<-started
	if _, code := postRun(t, srv.URL, seedReq(2)); code != http.StatusAccepted {
		t.Fatalf("queue-filling submit = %d, want 202", code)
	}
	// Seed the wall-time counters so the adaptive header has a known
	// value: mean 5s × (1 queued + 1 incoming) / 1 worker = 10s.
	e.ctr.kind(KindSim).completed.Store(1)
	e.ctr.runWallNS.Store((5 * time.Second).Nanoseconds())
	b, _ := json.Marshal(seedReq(3))
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "10" {
		t.Fatalf("429 Retry-After = %q, want %q (adaptive hint)", ra, "10")
	}
}

// HTTP surface of retention: an evicted run's ID answers 404.
func TestHTTP404AfterEviction(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 1, RetainRuns: 1})
	e.runSim = instantSim
	first, _ := postRun(t, srv.URL, seedReq(1))
	pollRun(t, srv.URL, first.ID)
	second, _ := postRun(t, srv.URL, seedReq(2))
	pollRun(t, srv.URL, second.ID) // 1 worker: first finished before this, so it's evicted
	resp := getJSON(t, srv.URL+"/v1/runs/"+first.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET evicted run = %d, want 404", resp.StatusCode)
	}
	resp = getJSON(t, srv.URL+"/v1/runs/"+second.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET retained run = %d, want 200", resp.StatusCode)
	}
}
