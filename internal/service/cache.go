package service

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU over serialized results, shared by
// both job kinds (sim keys "run|…", experiment keys "exp|…" — disjoint
// by prefix). Values are immutable byte slices: the engine stores each
// job's serialized result exactly once and hands the same bytes to
// every later hit, which is how cache hits stay byte-identical to the
// job that populated them. Only completed jobs ever Put — a rejected or
// failed submission leaves no cache entry.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
	// simNS is the simulated completion time carried alongside a sim
	// job's serialized metrics, so cache hits report SimNS without
	// re-parsing the JSON blob on every hit. Experiment entries leave
	// it zero.
	simNS int64
}

func newLRUCache(max int) *lruCache {
	if max <= 0 {
		max = 256
	}
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached bytes with their SimNS and refreshes recency.
// Callers must not mutate the returned slice.
func (c *lruCache) Get(key string) ([]byte, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, 0, false
	}
	c.order.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.val, ent.simNS, true
}

// Put inserts or refreshes an entry, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Put(key string, val []byte, simNS int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val, ent.simNS = val, simNS
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val, simNS: simNS})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the live entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
