package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hopp/internal/sim"
	"hopp/internal/workload"
)

// Sweep errors.
var (
	// ErrBadSweep rejects a sweep whose grid cannot be expanded: empty
	// workload/system lists, an unknown expand mode, or zip lists whose
	// lengths disagree. HTTP 400.
	ErrBadSweep = errors.New("service: bad sweep grid")
	// ErrSweepTooLarge rejects a grid that expands past the configured
	// -max-sweep-points bound. HTTP 400 — retrying the same grid cannot
	// succeed; split it instead.
	ErrSweepTooLarge = errors.New("service: sweep grid exceeds the point bound")
	// ErrNotSweep is returned by the sweep-specific lookups when the ID
	// names a job of another kind. HTTP 404 — the sweep surface only
	// speaks sweeps.
	ErrNotSweep = errors.New("service: job is not a sweep")
)

// DefaultMaxSweepPoints bounds one sweep's expanded grid when
// Options.MaxSweepPoints is unset. The paper's largest tables are a few
// hundred points; 1024 leaves room for seed replication without letting
// one submission conjure unbounded registry growth.
const DefaultMaxSweepPoints = 1024

// Sweep expansion modes: cartesian crosses every list; zip walks the
// lists in lockstep (length-1 lists broadcast).
const (
	ExpandCartesian = "cartesian"
	ExpandZip       = "zip"
)

// SweepRequest is one grid submission — the payload of a KindSweep job.
// The engine expands it into KindSim child jobs (one per point) that
// ride the shared worker pool, deadline, journal, and metrics, while
// the parent job aggregates their states.
type SweepRequest struct {
	// Workloads/Systems name catalog entries; both must be non-empty.
	Workloads []string `json:"workloads"`
	Systems   []string `json:"systems"`
	// Fracs lists local-memory fractions in [0, 1); empty means [0.5].
	Fracs []float64 `json:"fracs,omitempty"`
	// Seeds lists run seeds; empty means [1].
	Seeds []int64 `json:"seeds,omitempty"`
	// Expand picks the grid shape: "cartesian" (default) crosses every
	// list in workload → system → frac → seed order; "zip" pairs the
	// lists elementwise, broadcasting length-1 lists.
	Expand string `json:"expand,omitempty"`
	// Quick shrinks every point's workload ~4x.
	Quick bool `json:"quick,omitempty"`
}

// Expand validates the grid and returns the normalized request plus the
// expanded points in deterministic order — the order children are
// admitted, IDs are assigned, and results stream. Every point is a
// fully normalized RunRequest, so a sweep child shares its canonical
// cache key with an identical standalone submission; that key identity
// is what lets overlapping sweeps and plain runs dedupe against each
// other.
func (r SweepRequest) Points() (SweepRequest, []RunRequest, error) {
	n := r
	n.Workloads = normalizeNames(r.Workloads)
	n.Systems = normalizeNames(r.Systems)
	if len(n.Workloads) == 0 {
		return n, nil, fmt.Errorf("%w: workloads list is empty", ErrBadSweep)
	}
	if len(n.Systems) == 0 {
		return n, nil, fmt.Errorf("%w: systems list is empty", ErrBadSweep)
	}
	if len(n.Fracs) == 0 {
		n.Fracs = []float64{0.5}
	}
	if len(n.Seeds) == 0 {
		n.Seeds = []int64{1}
	}
	switch n.Expand {
	case "", ExpandCartesian:
		n.Expand = ExpandCartesian
	case ExpandZip:
	default:
		return n, nil, fmt.Errorf("%w: unknown expand mode %q", ErrBadSweep, r.Expand)
	}

	var points []RunRequest
	add := func(w, s string, f float64, seed int64) error {
		frac := f
		norm, _, err := RunRequest{Workload: w, System: s, Frac: &frac, Seed: seed, Quick: n.Quick}.Normalize()
		if err != nil {
			return fmt.Errorf("%w: point %d: %w", ErrBadSweep, len(points), err)
		}
		points = append(points, norm)
		return nil
	}
	if n.Expand == ExpandCartesian {
		for _, w := range n.Workloads {
			for _, s := range n.Systems {
				for _, f := range n.Fracs {
					for _, seed := range n.Seeds {
						if err := add(w, s, f, seed); err != nil {
							return n, nil, err
						}
					}
				}
			}
		}
		return n, points, nil
	}
	// Zip: lists advance in lockstep; every list is either full length
	// or length 1 (broadcast).
	lists := []struct {
		name string
		len  int
	}{
		{"workloads", len(n.Workloads)},
		{"systems", len(n.Systems)},
		{"fracs", len(n.Fracs)},
		{"seeds", len(n.Seeds)},
	}
	total := 1
	for _, l := range lists {
		if l.len > total {
			total = l.len
		}
	}
	for _, l := range lists {
		if l.len != 1 && l.len != total {
			return n, nil, fmt.Errorf("%w: zip list %s has %d entries, want 1 or %d", ErrBadSweep, l.name, l.len, total)
		}
	}
	for i := 0; i < total; i++ {
		w := n.Workloads[min(i, len(n.Workloads)-1)]
		s := n.Systems[min(i, len(n.Systems)-1)]
		f := n.Fracs[min(i, len(n.Fracs)-1)]
		seed := n.Seeds[min(i, len(n.Seeds)-1)]
		if err := add(w, s, f, seed); err != nil {
			return n, nil, err
		}
	}
	return n, points, nil
}

func normalizeNames(in []string) []string {
	out := make([]string, 0, len(in))
	for _, s := range in {
		s = strings.ToLower(strings.TrimSpace(s))
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// SweepStatus is the aggregate fan-out state of a sweep parent,
// embedded in its RunStatus and journaled at its terminal transition.
// Cached counts points served without a simulation of their own
// (result-cache hits plus in-flight dedupe); Lost counts points whose
// child jobs could not be recovered after a restart (only non-zero on
// parents restored from the journal).
type SweepStatus struct {
	Workloads []string  `json:"workloads"`
	Systems   []string  `json:"systems"`
	Fracs     []float64 `json:"fracs"`
	Seeds     []int64   `json:"seeds"`
	Expand    string    `json:"expand"`

	Total     int `json:"total"`
	Queued    int `json:"queued,omitempty"`
	Running   int `json:"running,omitempty"`
	Done      int `json:"done"`
	Failed    int `json:"failed,omitempty"`
	Cancelled int `json:"cancelled,omitempty"`
	Cached    int `json:"cached"`
	Lost      int `json:"lost,omitempty"`

	// Children lists the child job IDs in expansion order; each is
	// pollable via GET /v1/runs/{id} like any sim job.
	Children []string `json:"children,omitempty"`
}

// SweepPoint is one line of GET /v1/sweeps/{id}/results: a point's
// request coordinates plus its terminal outcome. Lines stream in
// expansion order, so two reads of a finished sweep are byte-identical.
type SweepPoint struct {
	Index    int             `json:"index"`
	ID       string          `json:"id,omitempty"`
	Workload string          `json:"workload,omitempty"`
	System   string          `json:"system,omitempty"`
	Frac     float64         `json:"frac"`
	Seed     int64           `json:"seed"`
	State    JobState        `json:"state"`
	Cached   bool            `json:"cached,omitempty"`
	SimNS    int64           `json:"sim_ns,omitempty"`
	Error    string          `json:"error,omitempty"`
	Metrics  json.RawMessage `json:"metrics,omitempty"`
}

// sweepState is the parent-side fan-out state of a KindSweep job. All
// fields except streams are guarded by reg.mu; streams has its own
// mutex because stream generation happens on workers, outside the
// registry lock.
type sweepState struct {
	req      SweepRequest // normalized grid, echoed in status + journal
	points   []RunRequest // expansion-ordered point requests
	children []*Job       // live fan-out; nil on parents restored from the journal
	childIDs []string     // expansion-ordered child IDs (always set)

	// Pacing: at most window children occupy pool slots at once, so one
	// giant sweep cannot monopolize the shared queue — other clients'
	// submissions interleave with the fan-out. next is the scan cursor
	// into children for the next pool submission; inPool counts children
	// currently holding slots; terminal counts settled children.
	window   int
	next     int
	inPool   int
	terminal int

	cancelled bool
	streams   *streamCache
	// final freezes the aggregate at the parent's terminal transition;
	// it is also what journal replay restores, so a finished sweep's
	// status is byte-identical across a restart.
	final *SweepStatus
}

// streamCache memoizes frozen workload access streams within one sweep,
// keyed by (workload, quick, seed) — the tuple the stream is a pure
// function of. Each distinct stream is generated exactly once, on the
// first worker that needs it, and shared read-only by every (system,
// frac) child that consumes it.
type streamCache struct {
	mu      sync.Mutex
	entries map[string]*streamEntry
}

type streamEntry struct {
	once   sync.Once
	frozen *workload.Frozen
}

func newStreamCache() *streamCache {
	return &streamCache{entries: make(map[string]*streamEntry)}
}

// get returns a fresh replayer over the point's frozen stream, building
// the stream on first use and ticking built. A panic during the build
// (a malformed workload program) is contained by the calling worker's
// runContained; later callers of the same key see a plain error.
func (sc *streamCache) get(req RunRequest, built *atomic.Uint64) (workload.Generator, error) {
	key := fmt.Sprintf("%s|%t|%d", req.Workload, req.Quick, req.Seed)
	sc.mu.Lock()
	ent, ok := sc.entries[key]
	if !ok {
		ent = &streamEntry{}
		sc.entries[key] = ent
	}
	sc.mu.Unlock()
	ent.once.Do(func() {
		gen, ok := NewWorkload(req.Workload, req.Quick)
		if !ok {
			return // admission validated the name; only catalog drift lands here
		}
		ent.frozen = workload.Freeze(gen, req.Seed)
		built.Add(1)
	})
	if ent.frozen == nil {
		return nil, fmt.Errorf("service: workload stream %s unavailable (earlier build failed)", key)
	}
	return ent.frozen.Replay(), nil
}

// runSharedSimulation executes one sweep point over a shared frozen
// stream. It mirrors runSimulation exactly except for the generator's
// origin, which is what keeps a sweep child's result byte-identical to
// a standalone run of the same point — and therefore cache-compatible
// with it.
func runSharedSimulation(ctx context.Context, req RunRequest, gen workload.Generator) (sim.Metrics, error) {
	sys, ok := NewSystem(req.System)
	if !ok {
		return sim.Metrics{}, fmt.Errorf("%w %q", ErrUnknownSystem, req.System)
	}
	cfg := sim.Config{LocalMemoryFrac: *req.Frac, Seed: req.Seed}
	if req.Quick {
		cfg.L2Bytes = 64 << 10
		cfg.LLCBytes = 512 << 10
	}
	return sim.RunWithContext(ctx, cfg, sys, gen)
}

// SubmitSweep validates, expands, and admits a grid submission: one
// parent KindSweep job plus one KindSim child per point, registered in
// expansion order. Points whose canonical key is already cached are
// born done (cached children); points whose key is already in flight —
// queued or running anywhere in the engine, including another client's
// sweep — become followers that inherit the leader's result instead of
// simulating again; the rest ride the worker pool, paced so at most
// `workers` children hold queue slots at once. Admission is
// all-or-nothing: if the initial pacing window does not fit under the
// queue bound the whole sweep is rejected with ErrOverloaded and leaves
// no registry entry.
func (e *Engine) SubmitSweep(req SweepRequest) (RunStatus, error) {
	norm, points, err := req.Points()
	if err != nil {
		return RunStatus{}, err
	}
	if len(points) > e.maxSweepPoints {
		return RunStatus{}, fmt.Errorf("%w: %d points > bound %d", ErrSweepTooLarge, len(points), e.maxSweepPoints)
	}

	now := time.Now()
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	if e.closed {
		return RunStatus{}, ErrClosed
	}
	e.reg.evictLocked(now)

	parent := &Job{
		Kind:      KindSweep,
		State:     StateRunning,
		submitted: now,
		started:   now,
		done:      make(chan struct{}),
	}
	sw := &sweepState{
		req:     norm,
		points:  points,
		window:  e.pool.Workers(),
		streams: newStreamCache(),
	}
	parent.sweep = sw

	// Classify every point: result-cache hit, follower of an in-flight
	// key (engine-wide or earlier in this very sweep), or runnable.
	children := make([]*Job, len(points))
	local := make(map[string]*Job, len(points))
	var runnable, hits []*Job
	for i := range points {
		pt := points[i]
		_, key, err := pt.Normalize()
		if err != nil {
			return RunStatus{}, err // unreachable: Expand normalized each point
		}
		c := &Job{Kind: KindSim, key: key, Sim: &points[i], parent: parent, submitted: now, done: make(chan struct{})}
		children[i] = c
		if cached, cachedSimNS, hit := e.cache.Get(key); hit {
			c.State = StateDone
			c.cached = true
			c.Result = cached
			c.simNS = cachedSimNS
			hits = append(hits, c)
			e.ctr.cacheHits.Add(1)
			continue
		}
		c.State = StateQueued
		if leader := e.inflight[key]; leader != nil {
			c.leader = leader
			continue
		}
		if leader := local[key]; leader != nil {
			c.leader = leader
			continue
		}
		local[key] = c
		runnable = append(runnable, c)
		e.ctr.cacheMisses.Add(1)
	}

	// Reserve pool slots for the initial pacing window atomically —
	// either the window fits and the sweep is admitted whole, or
	// nothing was enqueued and nothing gets registered. Workers that
	// grab these closures immediately block on reg.mu until this
	// critical section finishes registration.
	initial := runnable
	if len(initial) > sw.window {
		initial = initial[:sw.window]
	}
	closures := make([]func(), len(initial))
	for i, c := range initial {
		c := c
		closures[i] = func() { e.execute(c) }
	}
	if err := e.pool.SubmitBatch(closures); err != nil {
		if errors.Is(err, ErrQueueFull) {
			e.ctr.kind(KindSweep).rejected.Add(1)
			return RunStatus{}, fmt.Errorf("%w (sweep window needs %d slots, queue bound %d)",
				ErrOverloaded, len(initial), e.pool.MaxQueue())
		}
		return RunStatus{}, ErrClosed
	}

	// Register parent first, then children in expansion order — one ID
	// space, contiguous, so the results stream reads like the grid.
	e.reg.addLocked(parent)
	sw.childIDs = make([]string, len(children))
	for i, c := range children {
		e.reg.addLocked(c)
		c.parentID = parent.ID
		sw.childIDs[i] = c.ID
	}
	sw.children = children
	for _, c := range initial {
		c.inPool = true
	}
	sw.inPool = len(initial)
	// Every runnable child is the engine-wide in-flight owner of its
	// key from admission on, so later overlapping submissions follow it
	// instead of simulating the same point again.
	for _, c := range runnable {
		e.inflight[c.key] = c
	}
	for _, c := range children {
		if c.leader != nil {
			c.leader.followers = append(c.leader.followers, c)
		}
	}

	kc := e.ctr.kind(KindSweep)
	kc.submitted.Add(1)
	kc.started.Add(1) // the parent is live the moment its fan-out exists
	e.ctr.kind(KindSim).submitted.Add(uint64(len(children)))
	e.ctr.sweepPointsTotal.Add(uint64(len(children)))
	e.liveSweeps = append(e.liveSweeps, parent)

	// Journal the fan-out at submission (non-terminal entry): after a
	// crash mid-sweep, replay restores the parent as failed — never a
	// zombie in-progress job — with its child IDs intact, so recovered
	// children remain reachable through it.
	e.reg.journalLocked(parent)

	// Settle cache-hit children last, with the sweep fully wired: each
	// one ticks the parent's aggregate and, if the whole grid was
	// cached, completes the sweep before submission even returns.
	for _, c := range hits {
		e.finishLocked(c, now)
	}
	return e.statusLocked(parent), nil
}

// sweepChildDoneLocked settles one terminal child into its parent's
// aggregate, tops the pacing window back up, and completes the parent
// when the last child lands; reg.mu must be held (finishOneLocked
// path).
func (e *Engine) sweepChildDoneLocked(parent *Job, c *Job, now time.Time) {
	sw := parent.sweep
	sw.terminal++
	if c.inPool {
		c.inPool = false
		sw.inPool--
	}
	parent.progress.Add(1)
	switch c.State {
	case StateDone:
		e.ctr.sweepPointsCompleted.Add(1)
		if c.cached {
			e.ctr.sweepPointsCached.Add(1)
		}
	default:
		e.ctr.sweepPointsFailed.Add(1)
	}
	e.advanceSweepLocked(parent, now)
	if sw.terminal == len(sw.children) {
		e.completeSweepLocked(parent, now)
	}
}

// advanceSweepLocked feeds pending children into the pool while the
// sweep's pacing window has room; reg.mu must be held. A full queue is
// not an error — the cursor simply parks, and the next terminal
// transition anywhere in the engine retries (finishOneLocked calls
// advanceSweepsLocked). A closed pool means shutdown: the remaining
// pending children finish cancelled so the parent can settle.
func (e *Engine) advanceSweepLocked(parent *Job, now time.Time) {
	sw := parent.sweep
	if sw.cancelled || parent.State.Terminal() {
		return
	}
	for sw.next < len(sw.children) && sw.inPool < sw.window {
		c := sw.children[sw.next]
		if c.State != StateQueued || c.leader != nil || c.inPool {
			sw.next++
			continue
		}
		err := e.pool.Submit(func() { e.execute(c) })
		if err == nil {
			c.inPool = true
			sw.inPool++
			sw.next++
			continue
		}
		if errors.Is(err, ErrQueueFull) {
			return
		}
		sw.next++
		c.State = StateCancelled
		c.errMsg = ErrClosed.Error()
		e.ctr.kind(c.Kind).cancelled.Add(1)
		e.finishLocked(c, now)
	}
}

// advanceSweepsLocked retries every live sweep's pacing window, in
// submission order; reg.mu must be held. Called on every terminal
// transition, because that is exactly when queue room frees up.
func (e *Engine) advanceSweepsLocked(now time.Time) {
	kept := e.liveSweeps[:0]
	for _, p := range e.liveSweeps {
		if p.State.Terminal() {
			continue
		}
		kept = append(kept, p)
	}
	e.liveSweeps = kept
	for _, p := range kept {
		e.advanceSweepLocked(p, now)
	}
}

// completeSweepLocked finalizes a parent whose last child just settled;
// reg.mu must be held. The aggregate is frozen into sw.final — the
// journal payload and the byte-stable status source from here on.
func (e *Engine) completeSweepLocked(parent *Job, now time.Time) {
	if parent.State.Terminal() {
		return
	}
	sw := parent.sweep
	kc := e.ctr.kind(KindSweep)
	st := e.computeSweepStatusLocked(parent)
	switch {
	case sw.cancelled:
		parent.State = StateCancelled
		parent.errMsg = context.Canceled.Error()
		kc.cancelled.Add(1)
	case st.Failed+st.Cancelled > 0:
		parent.State = StateFailed
		parent.errMsg = fmt.Sprintf("service: %d of %d sweep points failed or were cancelled", st.Failed+st.Cancelled, st.Total)
		kc.failed.Add(1)
	default:
		parent.State = StateDone
		kc.completed.Add(1)
	}
	parent.wallNS = now.Sub(parent.submitted).Nanoseconds()
	sw.final = st
	e.finishLocked(parent, now)
}

// cancelSweepLocked aborts a live sweep: pending and pool-queued
// children finish cancelled immediately, running children see their
// contexts cancelled and settle on their workers, and the parent goes
// terminal when the last child lands; reg.mu must be held.
func (e *Engine) cancelSweepLocked(parent *Job, now time.Time) {
	sw := parent.sweep
	sw.cancelled = true
	for _, c := range sw.children {
		switch c.State {
		case StateQueued:
			c.State = StateCancelled
			c.errMsg = context.Canceled.Error()
			e.ctr.kind(c.Kind).cancelled.Add(1)
			e.finishLocked(c, now)
		case StateRunning:
			c.cancel()
		}
	}
}

// settleFollowersLocked hands a just-terminal leader's result to every
// live follower, or — when the leader did not finish done — promotes
// the first follower to run the point itself; reg.mu must be held. The
// promotion bypasses the queue bound (ForceSubmit): the follower was
// admitted once already and is inheriting the slot the leader just
// freed, so one leader's cancellation must not cascade a transient 429
// into another client's sweep.
func (e *Engine) settleFollowersLocked(leader *Job, now time.Time) {
	fs := leader.followers
	leader.followers = nil
	live := fs[:0]
	for _, f := range fs {
		if !f.State.Terminal() {
			live = append(live, f)
		}
	}
	if len(live) == 0 {
		return
	}
	if leader.State == StateDone {
		for _, f := range live {
			f.State = StateDone
			f.cached = true
			f.Result = leader.Result
			f.simNS = leader.simNS
			f.leader = nil
			e.finishLocked(f, now)
		}
		return
	}
	head, rest := live[0], live[1:]
	head.leader = nil
	head.followers = append(head.followers, rest...)
	for _, f := range rest {
		f.leader = head
	}
	e.inflight[head.key] = head
	if err := e.pool.ForceSubmit(func() { e.execute(head) }); err != nil {
		delete(e.inflight, head.key)
		head.State = StateCancelled
		head.errMsg = ErrClosed.Error()
		e.ctr.kind(head.Kind).cancelled.Add(1)
		e.finishLocked(head, now) // its settle pass promotes (and fails) the rest
		return
	}
	head.inPool = true
	if head.parent != nil {
		head.parent.sweep.inPool++
	}
}

// computeSweepStatusLocked aggregates a parent's live (or recovered)
// fan-out; reg.mu must be held. Parents restored from a mid-sweep
// journal have no child pointers — their children resolve by ID through
// the registry, and points whose jobs did not survive the crash count
// as Lost.
func (e *Engine) computeSweepStatusLocked(parent *Job) *SweepStatus {
	sw := parent.sweep
	st := &SweepStatus{
		Workloads: sw.req.Workloads,
		Systems:   sw.req.Systems,
		Fracs:     sw.req.Fracs,
		Seeds:     sw.req.Seeds,
		Expand:    sw.req.Expand,
		Total:     len(sw.childIDs),
		Children:  sw.childIDs,
	}
	count := func(c *Job) {
		switch c.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
			if c.cached {
				st.Cached++
			}
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	if sw.children != nil {
		for _, c := range sw.children {
			count(c)
		}
		return st
	}
	for _, id := range sw.childIDs {
		if c, ok := e.reg.getLocked(id); ok {
			count(c)
		} else {
			st.Lost++
		}
	}
	return st
}

// sweepStatusLocked is the status-facing aggregate: the frozen terminal
// snapshot when one exists (live completion or journal replay — the
// same bytes either way), the live computation otherwise; reg.mu must
// be held.
func (e *Engine) sweepStatusLocked(parent *Job) *SweepStatus {
	if parent.sweep.final != nil {
		cp := *parent.sweep.final
		return &cp
	}
	return e.computeSweepStatusLocked(parent)
}

// SweepStatus returns one sweep parent's snapshot; IDs naming jobs of
// other kinds answer ErrNotSweep (HTTP 404).
func (e *Engine) SweepStatus(id string) (RunStatus, error) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	j, ok := e.reg.getLocked(id)
	if !ok {
		return RunStatus{}, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	if j.Kind != KindSweep {
		return RunStatus{}, fmt.Errorf("%w: %s is a %s job", ErrNotSweep, id, j.Kind)
	}
	return e.statusLocked(j), nil
}

// SweepLen reports a sweep's point count — the results stream's line
// budget.
func (e *Engine) SweepLen(id string) (int, error) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	j, ok := e.reg.getLocked(id)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	if j.Kind != KindSweep {
		return 0, fmt.Errorf("%w: %s is a %s job", ErrNotSweep, id, j.Kind)
	}
	return len(j.sweep.childIDs), nil
}

// SweepPointAt snapshots point i of a sweep. With wait set it blocks
// until the point is terminal (or ctx ends) — the follow mode of the
// results stream, which emits every point in expansion order as it
// lands. terminal reports whether the snapshot is final; the snapshot
// of a non-terminal point (wait unset) is returned but should not be
// treated as a result.
func (e *Engine) SweepPointAt(ctx context.Context, id string, i int, wait bool) (pt SweepPoint, terminal bool, err error) {
	for {
		e.reg.mu.Lock()
		j, ok := e.reg.getLocked(id)
		if !ok {
			e.reg.mu.Unlock()
			return SweepPoint{}, false, fmt.Errorf("%w %q", ErrUnknownRun, id)
		}
		if j.Kind != KindSweep {
			e.reg.mu.Unlock()
			return SweepPoint{}, false, fmt.Errorf("%w: %s is a %s job", ErrNotSweep, id, j.Kind)
		}
		sw := j.sweep
		if i < 0 || i >= len(sw.childIDs) {
			e.reg.mu.Unlock()
			return SweepPoint{}, false, fmt.Errorf("%w: point %d of %d", ErrUnknownRun, i, len(sw.childIDs))
		}
		pt, c := e.sweepPointLocked(sw, i)
		if c == nil || c.State.Terminal() {
			e.reg.mu.Unlock()
			return pt, true, nil
		}
		if !wait {
			e.reg.mu.Unlock()
			return pt, false, nil
		}
		done := c.done
		e.reg.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return SweepPoint{}, false, ctx.Err()
		}
	}
}

// SweepGroup is one line of GET /v1/sweeps/{id}/results?group-by=
// workload: the seed-aggregated outcome of one (workload, system, frac)
// grid point. Seeds are a sweep's replication axis, so the aggregation
// is mean and sample standard deviation of simulated completion time
// across the point's finished seeds — the paper-table shape (one row
// per workload × system × frac) without the client-side reduce.
type SweepGroup struct {
	Workload string  `json:"workload"`
	System   string  `json:"system"`
	Frac     float64 `json:"frac"`
	// Seeds counts the successfully finished points aggregated below.
	Seeds int `json:"seeds"`
	// Pending counts points not yet terminal (the snapshot excludes
	// them from the statistics); Failed counts failed/cancelled/lost
	// points.
	Pending int `json:"pending,omitempty"`
	Failed  int `json:"failed,omitempty"`
	// Cached counts aggregated points served from the result cache.
	Cached int `json:"cached,omitempty"`
	// MeanSimNS/StddevSimNS summarize sim_ns across the Seeds points;
	// stddev is the sample deviation (0 with fewer than two seeds).
	MeanSimNS   float64 `json:"mean_sim_ns"`
	StddevSimNS float64 `json:"stddev_sim_ns"`
}

// SweepGroups aggregates a sweep's points across seeds, one group per
// distinct (workload, system, frac), in first-occurrence expansion
// order. Like the default results stream it snapshots: points still in
// flight are counted as pending, not waited for, so two calls on a
// finished sweep are byte-identical.
func (e *Engine) SweepGroups(id string) ([]SweepGroup, error) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	j, ok := e.reg.getLocked(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	if j.Kind != KindSweep {
		return nil, fmt.Errorf("%w: %s is a %s job", ErrNotSweep, id, j.Kind)
	}
	sw := j.sweep
	var (
		groups []SweepGroup
		sims   [][]float64 // per-group sim_ns samples, parallel to groups
		index  = make(map[string]int, len(sw.childIDs))
	)
	for i := range sw.childIDs {
		pt, c := e.sweepPointLocked(sw, i)
		// Frac is rendered with the cache-key precision so grouping
		// can't split points the cache would merge.
		key := fmt.Sprintf("%s|%s|%.9g", pt.Workload, pt.System, pt.Frac)
		gi, seen := index[key]
		if !seen {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, SweepGroup{Workload: pt.Workload, System: pt.System, Frac: pt.Frac})
			sims = append(sims, nil)
		}
		g := &groups[gi]
		switch {
		case c != nil && !c.State.Terminal():
			g.Pending++
		case pt.State == StateDone:
			g.Seeds++
			if pt.Cached {
				g.Cached++
			}
			sims[gi] = append(sims[gi], float64(pt.SimNS))
		default: // failed, cancelled, or lost
			g.Failed++
		}
	}
	for gi := range groups {
		g := &groups[gi]
		vals := sims[gi]
		if len(vals) == 0 {
			continue
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		g.MeanSimNS = sum / float64(len(vals))
		if len(vals) > 1 {
			ss := 0.0
			for _, v := range vals {
				d := v - g.MeanSimNS
				ss += d * d
			}
			g.StddevSimNS = math.Sqrt(ss / float64(len(vals)-1))
		}
	}
	return groups, nil
}

// sweepPointLocked renders point i; reg.mu must be held. The returned
// job is nil when the point's child no longer exists (post-replay loss
// or retention eviction), in which case the point reads as lost.
func (e *Engine) sweepPointLocked(sw *sweepState, i int) (SweepPoint, *Job) {
	pt := SweepPoint{Index: i}
	if i < len(sw.points) {
		p := sw.points[i]
		pt.Workload = p.Workload
		pt.System = p.System
		if p.Frac != nil {
			pt.Frac = *p.Frac
		}
		pt.Seed = p.Seed
	}
	var c *Job
	if sw.children != nil {
		c = sw.children[i]
	} else if i < len(sw.childIDs) {
		c, _ = e.reg.getLocked(sw.childIDs[i])
	}
	if i < len(sw.childIDs) {
		pt.ID = sw.childIDs[i]
	}
	if c == nil {
		pt.State = StateCancelled
		pt.Error = "point not recovered (crashed mid-flight or evicted)"
		return pt, nil
	}
	pt.ID = c.ID
	pt.State = c.State
	pt.Cached = c.cached
	pt.SimNS = c.simNS
	pt.Error = c.errMsg
	if c.State == StateDone {
		pt.Metrics = c.Result
	}
	return pt, c
}
