package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hopp/internal/faults"
)

// newFaultServer is newTestServer with a fault injector threaded into
// the HTTP layer.
func newFaultServer(t *testing.T, opts Options, inj *faults.Injector) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, opts)
	srv := httptest.NewServer(NewHandlerWith(e, HandlerConfig{Faults: inj}))
	t.Cleanup(srv.Close)
	return e, srv
}

func postSweep(t *testing.T, base string, req SweepRequest) (RunStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode sweep submit response: %v", err)
	}
	return st, resp.StatusCode
}

// pollSweep polls GET /v1/sweeps/{id} until the parent is terminal.
func pollSweep(t *testing.T, base, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st RunStatus
		resp := getJSON(t, base+"/v1/sweeps/"+id, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET sweep %s: status %d", id, resp.StatusCode)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never finished", id)
	return RunStatus{}
}

// readResults fetches the NDJSON results stream and returns the raw
// body plus the decoded points.
func readResults(t *testing.T, url string) (string, []SweepPoint) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var points []SweepPoint
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var pt SweepPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		points = append(points, pt)
	}
	return string(raw), points
}

// The sweep surface end-to-end over HTTP: submit a grid, poll the
// parent aggregate, stream the per-point results.
func TestHTTPSweepSubmitPollResults(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	st, code := postSweep(t, srv.URL, quickSweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if st.Kind != KindSweep || st.Sweep == nil || st.Sweep.Total != 4 {
		t.Fatalf("submission = %+v", st)
	}

	final := pollSweep(t, srv.URL, st.ID)
	if final.State != StateDone || final.Sweep.Done != 4 {
		t.Fatalf("final = %s %+v", final.State, final.Sweep)
	}

	raw1, points := readResults(t, srv.URL+"/v1/sweeps/"+st.ID+"/results")
	if len(points) != 4 {
		t.Fatalf("results stream has %d points, want 4", len(points))
	}
	for i, pt := range points {
		if pt.Index != i || pt.State != StateDone || len(pt.Metrics) == 0 {
			t.Fatalf("point %d = %+v", i, pt)
		}
	}

	// Deterministic order: a second read of the finished sweep is
	// byte-identical.
	raw2, _ := readResults(t, srv.URL+"/v1/sweeps/"+st.ID+"/results")
	if raw1 != raw2 {
		t.Fatalf("two reads of a finished sweep diverged:\n%s\nvs\n%s", raw1, raw2)
	}

	// The parent is also visible on the generic job surface.
	var asRun RunStatus
	if resp := getJSON(t, srv.URL+"/v1/runs/"+st.ID, &asRun); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/runs/{sweep}: %d", resp.StatusCode)
	}
	if asRun.Kind != KindSweep || asRun.Sweep == nil {
		t.Fatalf("sweep via /v1/runs = %+v", asRun)
	}
}

// ?follow=true tails a live sweep: every point arrives, in order,
// without polling.
func TestHTTPSweepFollowStreamsAllPoints(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	st, code := postSweep(t, srv.URL, quickSweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	_, points := readResults(t, srv.URL+"/v1/sweeps/"+st.ID+"/results?follow=true")
	if len(points) != 4 {
		t.Fatalf("follow stream delivered %d points, want 4", len(points))
	}
	for i, pt := range points {
		if pt.Index != i || !pt.State.Terminal() {
			t.Fatalf("point %d = %+v", i, pt)
		}
	}
}

func TestHTTPSweepBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, MaxSweepPoints: 2})

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", code)
	}
	if code := post(`{"workloads":["nope"],"systems":["hopp"]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown workload: %d, want 400", code)
	}
	if code := post(`{"workloads":["sequential"],"systems":["hopp","fastswap","leap"],"quick":true}`); code != http.StatusBadRequest {
		t.Fatalf("grid over -max-sweep-points: %d, want 400", code)
	}

	if resp := getJSON(t, srv.URL+"/v1/sweeps/r999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: %d, want 404", resp.StatusCode)
	}
	// A sim job ID is not addressable through the sweep surface.
	st, _ := postRun(t, srv.URL, quickReq())
	pollRun(t, srv.URL, st.ID)
	if resp := getJSON(t, srv.URL+"/v1/sweeps/"+st.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("sim via sweep surface: %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE sim via sweep surface: %d, want 404 (must not cancel non-sweeps)", resp.StatusCode)
	}
}

func TestHTTPSweepCancel(t *testing.T) {
	e, srv := newTestServer(t, Options{Workers: 2})
	_, _, release := parkSweepSims(t, e)
	st, code := postSweep(t, srv.URL, quickSweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE sweep: %d, want 200", resp.StatusCode)
	}
	release()
	final := pollSweep(t, srv.URL, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("cancelled sweep ended %s", final.State)
	}
}

// Satellite: a request body that dies mid-upload (injected at
// SiteHTTPBodyRead) sheds with 400 before the engine sees the grid —
// no parent, no children, no registry growth.
func TestHTTPSweepBodyReadFaultShedsBeforeEngine(t *testing.T) {
	inj := faults.New(1)
	e, srv := newFaultServer(t, Options{Workers: 1}, inj)
	inj.Enable(faults.SiteHTTPBodyRead, faults.Always())

	body, _ := json.Marshal(quickSweep())
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn upload: %d, want 400", resp.StatusCode)
	}
	if inj.Fired(faults.SiteHTTPBodyRead) == 0 {
		t.Fatal("body-read fault never fired")
	}
	if m := e.Metrics(); m.RegistrySize != 0 {
		t.Fatalf("torn upload left %d registry entries", m.RegistrySize)
	}

	// Same for the single-run route: the decoder sees the injected error.
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"sequential","system":"fastswap","quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn run upload: %d, want 400", resp.StatusCode)
	}

	// Disarmed, the same bytes go through.
	inj.Disable(faults.SiteHTTPBodyRead)
	st, code := postSweep(t, srv.URL, quickSweep())
	if code != http.StatusAccepted {
		t.Fatalf("healthy submit after fault: %d", code)
	}
	pollSweep(t, srv.URL, st.ID)
}

// Satellite: a results-stream write failure mid-NDJSON tears that one
// response and nothing else — the engine keeps serving, and a healthy
// re-read gets the full stream.
func TestHTTPSweepResultsWriteFaultTearsOnlyThatStream(t *testing.T) {
	inj := faults.New(1)
	_, srv := newFaultServer(t, Options{Workers: 2}, inj)
	st, code := postSweep(t, srv.URL, quickSweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollSweep(t, srv.URL, st.ID)

	// Fail the write before the third point: the stream ends after two
	// complete lines, never a half-written one.
	inj.Enable(faults.SiteHTTPResultsWrite, faults.OnHits(3))
	raw, points := readResults(t, srv.URL+"/v1/sweeps/"+st.ID+"/results")
	if len(points) != 2 {
		t.Fatalf("torn stream has %d points, want 2: %q", len(points), raw)
	}

	inj.Disable(faults.SiteHTTPResultsWrite)
	_, full := readResults(t, srv.URL+"/v1/sweeps/"+st.ID+"/results")
	if len(full) != 4 {
		t.Fatalf("healthy re-read has %d points, want 4", len(full))
	}
}

// Satellite (-race): a client that stalls mid-stream parks only its own
// handler goroutine on the injector's gate. The engine and other
// requests keep moving, and the stalled client's disconnect releases
// the handler.
func TestHTTPSweepSlowClientStallsOnlyItself(t *testing.T) {
	inj := faults.New(1)
	_, srv := newFaultServer(t, Options{Workers: 2}, inj)
	st, code := postSweep(t, srv.URL, quickSweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollSweep(t, srv.URL, st.ID)

	gate := inj.Gate(faults.SiteHTTPStreamStall)
	inj.Enable(faults.SiteHTTPStreamStall, faults.OnHits(1))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/sweeps/"+st.ID+"/results", nil)
	stalled := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		stalled <- err
	}()

	// Deterministic "the client is stuck": the handler is parked on the
	// gate, not spinning, not holding engine locks.
	deadline := time.Now().Add(30 * time.Second)
	for gate.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("results handler never parked on the stall gate")
		}
		time.Sleep(time.Millisecond)
	}

	// Everyone else still gets service while the stream is stalled.
	run, code := postRun(t, srv.URL, quickReq())
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit during stall: %d", code)
	}
	if final := pollRun(t, srv.URL, run.ID); final.State != StateDone {
		t.Fatalf("run during stall: %s (%s)", final.State, final.Error)
	}
	if resp := getJSON(t, srv.URL+"/metrics", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics during stall: %d", resp.StatusCode)
	}

	// The stalled client hangs up; its context unparks the handler.
	cancel()
	if err := <-stalled; err == nil {
		t.Fatal("stalled request ended without error despite cancellation")
	}
	deadline = time.Now().Add(30 * time.Second)
	for gate.Waiters() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler still parked after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}
