package service

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"

	"hopp/internal/faults"
)

// JournalEntry is one line of the append-only run journal: the terminal
// snapshot of a job, written the moment it reaches a terminal state.
// The registry is a bounded window (evicted IDs answer 404); the
// journal is the on-disk record behind that window — and, since it now
// carries the serialized result, the recovery source `-journal-replay`
// repopulates the cache and registry from after a restart. Entries
// without result fields (the pre-replay format, or failed/cancelled
// jobs) still replay as registry entries; they just cannot warm the
// cache.
type JournalEntry struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`

	// Sim-job fields.
	Workload string   `json:"workload,omitempty"`
	System   string   `json:"system,omitempty"`
	Frac     *float64 `json:"frac,omitempty"`

	// Experiment-job fields: the experiment ID and the final progress
	// gauge (simulations completed), preserved so a replayed job's
	// status is byte-identical to the pre-restart response.
	Experiment string `json:"experiment,omitempty"`
	Progress   int64  `json:"progress,omitempty"`

	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	WallNS int64  `json:"wall_ns,omitempty"`
	SimNS  int64  `json:"sim_ns,omitempty"`

	SubmittedUnixNS int64 `json:"submitted_unix_ns"`
	FinishedUnixNS  int64 `json:"finished_unix_ns"`

	// Metrics carries a done sim job's serialized sim.Metrics verbatim;
	// Output a done experiment job's rendered table text. These are what
	// make a journal line replayable: the bytes land back in the result
	// cache, so a restarted daemon serves the identical response.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	Output  string          `json:"output,omitempty"`

	// Parent ties a sweep child's entry back to its parent sweep.
	Parent string `json:"parent,omitempty"`
	// Sweep carries a sweep parent's grid and aggregate. Parents are the
	// one kind journaled twice: once at submission (non-terminal state,
	// config and child IDs only) so a crash mid-sweep replays the parent
	// as failed instead of losing it, and once at the terminal
	// transition with the frozen aggregate counts.
	Sweep *SweepStatus `json:"sweep,omitempty"`
	// Ingest carries an ingest session's resumable snapshot. Ingest
	// sessions journal many times: once at open (non-terminal), once per
	// processed chunk (the crash-safe high-water mark, with the windows
	// finished since the previous entry and the exact decoder state), and
	// once at the terminal transition. Replay merges the entries by ID,
	// so a crash mid-stream restores the session resumable at its last
	// journaled chunk — never a zombie.
	Ingest *IngestJournal `json:"ingest,omitempty"`
}

// journalEntry snapshots a terminal job for the journal; the caller
// holds the registry mutex.
func journalEntry(j *Job) JournalEntry {
	e := JournalEntry{
		ID:              j.ID,
		Kind:            j.Kind,
		State:           j.State,
		Cached:          j.cached,
		Error:           j.errMsg,
		WallNS:          j.wallNS,
		SimNS:           j.simNS,
		SubmittedUnixNS: j.submitted.UnixNano(),
	}
	if !j.finished.IsZero() {
		e.FinishedUnixNS = j.finished.UnixNano()
	}
	switch {
	case j.Sim != nil:
		e.Workload = j.Sim.Workload
		e.System = j.Sim.System
		e.Frac = j.Sim.Frac
		e.Seed = j.Sim.Seed
		e.Quick = j.Sim.Quick
		e.Parent = j.parentID
	case j.Exp != nil:
		e.Experiment = j.Exp.Experiment
		e.Progress = j.progress.Load()
		e.Seed = j.Exp.Seed
		e.Quick = j.Exp.Quick
	case j.ingest != nil:
		e.Workload = j.ingest.req.Workload
		e.System = j.ingest.req.System
		e.Frac = j.ingest.req.Frac
		e.Seed = j.ingest.req.Seed
		e.Progress = j.progress.Load()
		e.Ingest = j.ingest.journalSnapshot()
	case j.sweep != nil:
		e.Quick = j.sweep.req.Quick
		e.Progress = j.progress.Load()
		if j.sweep.final != nil {
			s := *j.sweep.final
			e.Sweep = &s
		} else {
			// Submission-time entry: grid and fan-out IDs only; counts
			// belong to the terminal entry.
			e.Sweep = &SweepStatus{
				Workloads: j.sweep.req.Workloads,
				Systems:   j.sweep.req.Systems,
				Fracs:     j.sweep.req.Fracs,
				Seeds:     j.sweep.req.Seeds,
				Expand:    j.sweep.req.Expand,
				Total:     len(j.sweep.childIDs),
				Children:  j.sweep.childIDs,
			}
		}
	}
	if j.State == StateDone {
		switch j.Kind {
		case KindSim:
			e.Metrics = j.Result
		case KindExperiment:
			e.Output = string(j.Result)
		}
	}
	return e
}

// Journal is an append-only JSONL sink for evicted terminal jobs. One
// entry per line, flushed per append: a crash loses at most the entry
// being written, and `tail -f` sees evictions as they happen. Appends
// are serialized by an internal mutex, so one Journal is safe to share
// with the engine's eviction path.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	flush  func() error
	closer io.Closer // nil when the journal doesn't own its sink

	inject *faults.Injector // optional; fails appends on demand in tests
}

// OpenJournal opens (creating if needed) an append-only journal file.
// Appending to an existing file continues the audit trail — the journal
// is append-only by construction, never truncated.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(f)
	return &Journal{w: bw, flush: bw.Flush, closer: f}, nil
}

// NewJournal wraps an arbitrary writer (tests, in-memory buffers). The
// caller keeps ownership of w; Close does not close it.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, flush: func() error { return nil }}
}

// SetInjector threads a fault injector into the journal; appends then
// fail with a typed injected error whenever faults.SiteJournalAppend
// fires. A nil injector (the default) is free.
func (j *Journal) SetInjector(in *faults.Injector) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.inject = in
}

// Append writes one entry as a single JSON line.
func (j *Journal) Append(e JournalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.inject.ErrAt(faults.SiteJournalAppend); err != nil {
		return err
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	// Serializing appends under j.mu (and ordering them under reg.mu at
	// the terminal transition) is the journal's contract: it is what
	// makes replay byte-identical. The blocking write under the lock is
	// the design, not an accident.
	//hopplint:lockok append-only journal writes are serialized under j.mu by design; replay depends on this ordering
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.flush()
}

// Close flushes and closes the underlying file, when the journal owns
// one.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.flush(); err != nil {
		return err
	}
	if j.closer != nil {
		//hopplint:lockok shutdown-only file close; the lock orders it after the final flush
		return j.closer.Close()
	}
	return nil
}

// ReadJournal replays a journal stream back into entries, in append
// order. Operators (and the replay test) use it to audit jobs past the
// retention window without the daemon holding them in memory.
func ReadJournal(r io.Reader) ([]JournalEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []JournalEntry
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// ReadJournalFile replays a journal file from disk.
func ReadJournalFile(path string) ([]JournalEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
