package service

import (
	"fmt"
	"testing"
)

func TestLRUCacheHitAndMiss(t *testing.T) {
	c := newLRUCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("va"))
	got, ok := c.Get("a")
	if !ok || string(got) != "va" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
}

func TestLRUCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(3)
	for _, k := range []string{"a", "b", "c"} {
		c.Put(k, []byte(k))
	}
	c.Get("a")          // refresh a; b is now LRU
	c.Put("d", []byte("d")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestLRUCachePutRefreshesExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("3")) // refresh, not insert: b stays
	c.Put("c", []byte("4")) // evicts b
	if got, ok := c.Get("a"); !ok || string(got) != "3" {
		t.Fatalf("Get(a) = %q, %v; want updated value", got, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been the LRU victim")
	}
}

func TestLRUCacheCapacityNeverExceeded(t *testing.T) {
	c := newLRUCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries, cap is 8", c.Len())
		}
	}
}
