package service

import (
	"fmt"
	"testing"
)

func TestLRUCacheHitAndMiss(t *testing.T) {
	c := newLRUCache(4)
	if _, _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("va"), 42)
	got, simNS, ok := c.Get("a")
	if !ok || string(got) != "va" || simNS != 42 {
		t.Fatalf("Get(a) = %q, %d, %v", got, simNS, ok)
	}
}

func TestLRUCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(3)
	for _, k := range []string{"a", "b", "c"} {
		c.Put(k, []byte(k), 0)
	}
	c.Get("a")                 // refresh a; b is now LRU
	c.Put("d", []byte("d"), 0) // evicts b
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestLRUCachePutRefreshesExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("1"), 0)
	c.Put("b", []byte("2"), 0)
	c.Put("a", []byte("3"), 0) // refresh, not insert: b stays
	c.Put("c", []byte("4"), 0) // evicts b
	if got, _, ok := c.Get("a"); !ok || string(got) != "3" {
		t.Fatalf("Get(a) = %q, %v; want updated value", got, ok)
	}
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("b should have been the LRU victim")
	}
}

func TestLRUCacheCapacityNeverExceeded(t *testing.T) {
	c := newLRUCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}, 0)
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries, cap is 8", c.Len())
		}
	}
}
