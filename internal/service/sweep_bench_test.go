package service

import (
	"context"
	"testing"
	"time"
)

// BenchmarkSweepVsIndividual times one sweep submission of an 8-point
// grid against the same 8 points submitted as individual runs on an
// identical fresh engine, and reports the wall-clock ratio. The sweep's
// edge is structural: each of the two workload streams is generated
// once and shared across its four points, where the individual path
// regenerates the stream per run.
func BenchmarkSweepVsIndividual(b *testing.B) {
	grid := SweepRequest{
		Workloads: []string{"sequential", "random"},
		Systems:   []string{"fastswap", "noprefetch"},
		Fracs:     []float64{0.25, 0.5},
		Seeds:     []int64{1},
		Quick:     true,
	}
	_, points, err := grid.Points()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var sweepNS, indivNS time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Fresh engines per iteration: the result cache must not carry
		// work across arms or iterations.
		e := NewEngine(Options{Workers: 4})
		t0 := time.Now()
		st, err := e.SubmitSweep(grid)
		if err != nil {
			b.Fatal(err)
		}
		if final, err := e.Wait(ctx, st.ID); err != nil || final.State != StateDone {
			b.Fatalf("sweep: %v %+v", err, final)
		}
		sweepNS += time.Since(t0)
		// The structural claim under test: 8 points share 2 generated
		// streams (one per distinct workload×seed). If this drifts, the
		// sweep is regenerating streams and the comparison is void.
		if built := e.ctr.sweepStreamsBuilt.Load(); built != 2 {
			b.Fatalf("sweep built %d streams, want 2 (one per distinct workload)", built)
		}
		if err := e.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}

		e = NewEngine(Options{Workers: 4})
		t0 = time.Now()
		ids := make([]string, 0, len(points))
		for _, p := range points {
			st, err := e.Submit(p)
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
		for _, id := range ids {
			if final, err := e.Wait(ctx, id); err != nil || final.State != StateDone {
				b.Fatalf("individual: %v %+v", err, final)
			}
		}
		indivNS += time.Since(t0)
		if err := e.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(indivNS)/float64(sweepNS), "speedup")
	b.ReportMetric(float64(sweepNS.Nanoseconds())/float64(b.N), "sweep-ns/grid")
	b.ReportMetric(float64(indivNS.Nanoseconds())/float64(b.N), "individual-ns/grid")
}
