// Package service is the long-lived simulation engine behind cmd/hoppd:
// a bounded worker pool executing submitted jobs in FIFO order, a job
// registry tracking every submission through its lifecycle, an LRU
// result cache keyed by the canonicalized request, and runtime counters
// for observability. The package exists so that simulations are served —
// cancellable, cacheable, observable — instead of merely executed, the
// same shift HoPP itself makes from fault-driven on-demand work to an
// always-on pipeline (PAPER.md §III).
//
// Every unit of offered work is a Job: workload × system simulations
// (KindSim) and experiment regenerations (KindExperiment) flow through
// one admission-controlled pipeline — the same queue bound, per-run
// deadline, retention policy, eviction journal, and per-kind metrics —
// instead of two parallel code paths.
//
// Determinism survives concurrency by construction: every job builds
// its own machines and workload generators from the canonical request,
// shares nothing with other jobs, and serializes its result once; the
// cache stores those bytes, so identical requests return byte-identical
// results regardless of worker interleaving.
package service

import (
	"errors"
	"runtime"
	"sync"

	"hopp/internal/faults"
)

// Pool errors.
var (
	// ErrPoolClosed is returned by Submit after Close.
	ErrPoolClosed = errors.New("service: pool closed")
	// ErrQueueFull is returned by Submit when the pending queue is at
	// its configured bound; the caller decides how to shed the load.
	ErrQueueFull = errors.New("service: pool queue full")
)

// Pool is a bounded worker pool with a FIFO queue: submissions never
// block, jobs start in submission order, and at most `workers` jobs run
// at once. The queue itself may be bounded too — over-limit submissions
// fail fast with ErrQueueFull instead of growing memory without bound
// under sustained overload. Close drains every queued job before
// returning, which is what gives the daemon (and hoppexp -parallel)
// graceful shutdown.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []func()
	active   int
	closed   bool
	workers  int
	maxQueue int // 0 = unbounded
	wg       sync.WaitGroup

	inject *faults.Injector // optional; rejects submissions on demand in tests
}

// NewPool starts a pool of n workers with an unbounded queue; n <= 0
// means GOMAXPROCS.
func NewPool(n int) *Pool { return NewPoolWithQueue(n, 0) }

// NewPoolWithQueue starts a pool of n workers (n <= 0 means GOMAXPROCS)
// whose pending queue holds at most maxQueue jobs; maxQueue <= 0 means
// unbounded.
func NewPoolWithQueue(n, maxQueue int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	p := &Pool{workers: n, maxQueue: maxQueue}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// setInjector threads a fault injector into the pool; submissions then
// fail with ErrQueueFull whenever faults.SitePoolSubmit fires —
// saturation on demand, no real backlog needed.
func (p *Pool) setInjector(in *faults.Injector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inject = in
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// MaxQueue returns the pending-queue bound; 0 means unbounded.
func (p *Pool) MaxQueue() int { return p.maxQueue }

// Submit enqueues a job; it runs when a worker frees up, after every
// earlier submission has been picked up. With a bounded queue, Submit
// returns ErrQueueFull once the pending depth reaches the limit.
func (p *Pool) Submit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if p.inject.Hit(faults.SitePoolSubmit) {
		return ErrQueueFull
	}
	if p.maxQueue > 0 && len(p.queue) >= p.maxQueue {
		return ErrQueueFull
	}
	p.queue = append(p.queue, job)
	p.cond.Signal()
	return nil
}

// SubmitBatch enqueues jobs atomically, in order: either every job fits
// under the queue bound and all are queued, or none is and the batch
// fails with ErrQueueFull. Sweep admission uses it so a partially
// admitted grid can never wedge half a parent's children into the queue.
func (p *Pool) SubmitBatch(jobs []func()) error {
	if len(jobs) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if p.inject.Hit(faults.SitePoolSubmit) {
		return ErrQueueFull
	}
	if p.maxQueue > 0 && len(p.queue)+len(jobs) > p.maxQueue {
		return ErrQueueFull
	}
	p.queue = append(p.queue, jobs...)
	p.cond.Broadcast()
	return nil
}

// ForceSubmit enqueues a job past the queue bound. It exists for
// follower promotion: when an in-flight job fails, the follower that
// was deduped onto it was already admitted once and is now inheriting a
// slot the leader's terminal transition just freed — bouncing it off
// admission control a second time would turn one transient failure into
// many. Only ErrPoolClosed can reject it.
func (p *Pool) ForceSubmit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.queue = append(p.queue, job)
	p.cond.Signal()
	return nil
}

// QueueDepth reports jobs submitted but not yet started.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Active reports jobs currently executing.
func (p *Pool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Close stops accepting submissions, drains the queue, waits for every
// in-flight job to finish, and then returns. Safe to call twice.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.active++
		p.mu.Unlock()

		job()

		p.mu.Lock()
		p.active--
		p.mu.Unlock()
	}
}
