package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hopp/internal/faults"
	"hopp/internal/hmtt"
	"hopp/internal/memsim"
)

// encodeTrace synthesizes n encoded HMTT records with a contiguous
// sequence starting at seqStart, skipping the sequence numbers in skip
// to fabricate capture loss. The page walk mixes reads and writes over
// a reusing footprint so the HPD actually promotes pages.
func encodeTrace(n int, seqStart uint8, skip map[uint8]bool) []byte {
	var buf bytes.Buffer
	seq := seqStart
	emitted := 0
	for emitted < n {
		if skip[seq] {
			seq++
			continue
		}
		r := hmtt.Record{
			Seq:            seq,
			TimestampDelta: uint8(1 + emitted%5),
			Write:          emitted%7 == 3,
			// A small reusing footprint so pages cross the HPD's
			// default hot threshold (8 accesses) within one short trace.
			Page: memsim.PPN(uint64(emitted % 7)),
		}
		var b [hmtt.RecordSize]byte
		r.Encode(b[:])
		buf.Write(b[:])
		seq++
		emitted++
	}
	return buf.Bytes()
}

// ingestOpts is a baseline engine config for ingest tests: no sim
// workers needed, short-but-safe idle deadline.
func ingestOpts() Options {
	return Options{Workers: 1, IngestIdleTimeout: time.Minute}
}

func openIngestT(t *testing.T, e *Engine, windowRecords int) RunStatus {
	t.Helper()
	st, err := e.OpenIngest(IngestRequest{System: "hopp", WindowRecords: windowRecords})
	if err != nil {
		t.Fatalf("OpenIngest: %v", err)
	}
	if st.State != StateRunning || st.Ingest == nil || st.Ingest.Phase != IngestStreaming {
		t.Fatalf("open status = %+v, want running/streaming", st)
	}
	return st
}

// putAll uploads a trace as fixed-size chunks starting at index 0.
func putAll(t *testing.T, e *Engine, id string, trace []byte, chunkBytes int) int {
	t.Helper()
	n := 0
	for off := 0; off < len(trace); off += chunkBytes {
		end := off + chunkBytes
		if end > len(trace) {
			end = len(trace)
		}
		if _, err := e.IngestChunk(id, n, bytes.NewReader(trace[off:end])); err != nil {
			t.Fatalf("chunk %d: %v", n, err)
		}
		n++
	}
	return n
}

// waitIngest polls a session until cond holds or the deadline passes.
func waitIngest(t *testing.T, e *Engine, id string, cond func(RunStatus) bool) RunStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := e.IngestStatusByID(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting on session %s; last status %+v ingest %+v", id, st, st.Ingest)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// closeAndWaitDone drains the session to done and returns its windows.
func closeAndWaitDone(t *testing.T, e *Engine, id string) []IngestWindow {
	t.Helper()
	if _, err := e.CloseIngest(id); err != nil {
		t.Fatalf("CloseIngest: %v", err)
	}
	st := waitIngest(t, e, id, func(st RunStatus) bool { return st.State.Terminal() })
	if st.State != StateDone {
		t.Fatalf("session %s finished %s: %s", id, st.State, st.Error)
	}
	wins, err := e.IngestWindows(id)
	if err != nil {
		t.Fatal(err)
	}
	return wins
}

// The typed shutdown error must identify itself as a drain casualty.
func TestIngestInterruptedWrapsDrainIncomplete(t *testing.T) {
	if !errors.Is(ErrIngestInterrupted, ErrDrainIncomplete) {
		t.Fatal("ErrIngestInterrupted must wrap ErrDrainIncomplete")
	}
}

func TestIngestHappyPathWindows(t *testing.T) {
	e := newTestEngine(t, ingestOpts())
	trace := encodeTrace(100, 0, nil)
	st := openIngestT(t, e, 32)
	putAll(t, e, st.ID, trace, 17*hmtt.RecordSize) // deliberately tears records across chunks
	wins := closeAndWaitDone(t, e, st.ID)

	// 100 records in 32-record windows: 3 full + 1 final partial of 4.
	if len(wins) != 4 {
		t.Fatalf("windows = %d, want 4", len(wins))
	}
	var records, reads, writes uint64
	for i, w := range wins {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if i < 3 && w.Records != 32 {
			t.Fatalf("window %d records = %d, want 32", i, w.Records)
		}
		if w.LossRecords != 0 {
			t.Fatalf("window %d loss = %d on contiguous stream", i, w.LossRecords)
		}
		if i > 0 && w.StartNS != wins[i-1].EndNS {
			t.Fatalf("window %d starts at %d, previous ended %d", i, w.StartNS, wins[i-1].EndNS)
		}
		if w.EndNS <= w.StartNS {
			t.Fatalf("window %d spans [%d,%d]", i, w.StartNS, w.EndNS)
		}
		records += w.Records
		reads += w.Reads
		writes += w.Writes
	}
	if records != 100 || reads+writes != 100 {
		t.Fatalf("windows cover %d records (%d reads, %d writes), want 100", records, reads, writes)
	}

	final := waitIngest(t, e, st.ID, func(RunStatus) bool { return true })
	if final.Ingest.Records != 100 || final.Ingest.HotPages == 0 {
		t.Fatalf("final ingest block %+v: want 100 records and a warm HPD", final.Ingest)
	}
	m := e.Metrics()
	if m.Jobs[KindIngest].Completed != 1 || m.IngestRecords != 100 || m.IngestSessionsActive != 0 {
		t.Fatalf("metrics: completed=%d ingest_records=%d active=%d",
			m.Jobs[KindIngest].Completed, m.IngestRecords, m.IngestSessionsActive)
	}
}

// Capture loss (sequence gaps) is charged to the window where the gap
// lands, and survives records torn across chunk boundaries.
func TestIngestLossSurfacesPerWindow(t *testing.T) {
	e := newTestEngine(t, ingestOpts())
	trace := encodeTrace(64, 250, map[uint8]bool{40: true, 41: true, 42: true})
	st := openIngestT(t, e, 16)
	putAll(t, e, st.ID, trace, 13) // non-record-aligned chunks
	wins := closeAndWaitDone(t, e, st.ID)
	var loss uint64
	for _, w := range wins {
		loss += w.LossRecords
	}
	if loss != 3 {
		t.Fatalf("windows report %d lost records, want 3", loss)
	}
	if st, _ := e.IngestStatusByID(st.ID); st.Ingest.LossRecords != 3 {
		t.Fatalf("session loss = %d, want 3", st.Ingest.LossRecords)
	}
}

// A chunk whose body read tears mid-PUT leaves the session exactly
// where it was: same acked index, resumable, and after the retry the
// windows are byte-identical to an uninterrupted run's.
func TestIngestTornChunkRetryByteIdentical(t *testing.T) {
	trace := encodeTrace(96, 0, map[uint8]bool{30: true})
	const chunkBytes = 25 // tears records across every boundary

	// Control: uninterrupted.
	ctl := newTestEngine(t, ingestOpts())
	cst := openIngestT(t, ctl, 16)
	putAll(t, ctl, cst.ID, trace, chunkBytes)
	want := closeAndWaitDone(t, ctl, cst.ID)

	// Faulted: chunk 2's body read fails, then the client retries it.
	inj := faults.New(1)
	opts := ingestOpts()
	opts.Faults = inj
	e := newTestEngine(t, opts)
	st := openIngestT(t, e, 16)
	n := 0
	for off := 0; off < len(trace); off += chunkBytes {
		end := off + chunkBytes
		if end > len(trace) {
			end = len(trace)
		}
		if n == 2 {
			inj.Enable(faults.SiteIngestChunkRead, faults.Always())
			_, err := e.IngestChunk(st.ID, n, bytes.NewReader(trace[off:end]))
			if !errors.Is(err, ErrChunkRead) || !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("torn chunk err = %v, want ErrChunkRead wrapping ErrInjected", err)
			}
			inj.Disable(faults.SiteIngestChunkRead)
			got, err := e.IngestStatusByID(st.ID)
			if err != nil || got.Ingest.ChunksAcked != 2 || got.Ingest.Phase.Terminal() {
				t.Fatalf("after torn chunk: %+v, %v — want still acked=2 and live", got.Ingest, err)
			}
		}
		if _, err := e.IngestChunk(st.ID, n, bytes.NewReader(trace[off:end])); err != nil {
			t.Fatalf("chunk %d retry: %v", n, err)
		}
		n++
	}
	// A duplicate of an already-acked chunk re-acks without reprocessing.
	if _, err := e.IngestChunk(st.ID, 0, bytes.NewReader(trace[:chunkBytes])); err != nil {
		t.Fatalf("duplicate chunk: %v", err)
	}
	got := closeAndWaitDone(t, e, st.ID)

	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("windows diverged after torn-chunk retry:\nwant %s\ngot  %s", wb, gb)
	}
	if m := e.Metrics(); m.IngestChunksRetried != 1 {
		t.Fatalf("ingest_chunks_retried = %d, want 1", m.IngestChunksRetried)
	}
}

// A slow pump fills the staging ring; the producer gets paused + a
// typed retry error instead of unbounded buffering, and streaming
// resumes once the pump drains.
func TestIngestRingFullPausesThenResumes(t *testing.T) {
	inj := faults.New(1)
	opts := ingestOpts()
	opts.Faults = inj
	opts.IngestRingRecords = 8 // 48-byte ring
	e := newTestEngine(t, opts)
	trace := encodeTrace(32, 0, nil)
	st := openIngestT(t, e, 8)

	// Park the pump: every chunk it pops waits at the stall gate.
	inj.Enable(faults.SiteIngestPumpStall, faults.Always())
	chunk := func(i int) []byte { return trace[i*4*hmtt.RecordSize : (i+1)*4*hmtt.RecordSize] }
	if _, err := e.IngestChunk(st.ID, 0, bytes.NewReader(chunk(0))); err != nil {
		t.Fatalf("chunk 0: %v", err)
	}
	// Wait for the pump to pop chunk 0 and park, so later chunks stay
	// staged behind it.
	deadline := time.Now().Add(10 * time.Second)
	for inj.Gate(faults.SiteIngestPumpStall).Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pump never reached the stall gate")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.IngestChunk(st.ID, 1, bytes.NewReader(chunk(1))); err != nil {
		t.Fatalf("chunk 1 should fit the empty ring: %v", err)
	}
	next := 2
	var pauseErr error
	for ; next < 8; next++ {
		if _, pauseErr = e.IngestChunk(st.ID, next, bytes.NewReader(chunk(next))); pauseErr != nil {
			break
		}
	}
	if !errors.Is(pauseErr, ErrIngestPaused) {
		t.Fatalf("filling the ring: err = %v, want ErrIngestPaused", pauseErr)
	}
	if got, _ := e.IngestStatusByID(st.ID); got.Ingest.Phase != IngestPaused {
		t.Fatalf("phase = %s, want paused", got.Ingest.Phase)
	}

	// Release the pump; the producer retries the same chunk and finishes.
	inj.Disable(faults.SiteIngestPumpStall)
	inj.Gate(faults.SiteIngestPumpStall).Open()
	for ; next < 8; next++ {
		var err error
		for attempt := 0; ; attempt++ {
			if _, err = e.IngestChunk(st.ID, next, bytes.NewReader(chunk(next))); !errors.Is(err, ErrIngestPaused) {
				break
			}
			if attempt > 5000 {
				t.Fatal("ring never drained")
			}
			time.Sleep(time.Millisecond)
		}
		if err != nil {
			t.Fatalf("chunk %d after resume: %v", next, err)
		}
	}
	wins := closeAndWaitDone(t, e, st.ID)
	var records uint64
	for _, w := range wins {
		records += w.Records
	}
	if records != 32 {
		t.Fatalf("drained %d records, want all 32 despite the pause", records)
	}
}

// The forced ring-full site trips the paused path without real
// backpressure; the next PUT of the same chunk succeeds.
func TestIngestRingFullInjected(t *testing.T) {
	inj := faults.New(1)
	opts := ingestOpts()
	opts.Faults = inj
	e := newTestEngine(t, opts)
	trace := encodeTrace(8, 0, nil)
	st := openIngestT(t, e, 8)
	inj.Enable(faults.SiteIngestRingFull, faults.OnHits(1))
	_, err := e.IngestChunk(st.ID, 0, bytes.NewReader(trace))
	if !errors.Is(err, ErrIngestPaused) {
		t.Fatalf("err = %v, want ErrIngestPaused", err)
	}
	if _, err := e.IngestChunk(st.ID, 0, bytes.NewReader(trace)); err != nil {
		t.Fatalf("retry after injected ring-full: %v", err)
	}
	closeAndWaitDone(t, e, st.ID)
}

// Cancelling a session whose pump is parked mid-stall unwinds promptly:
// the gate wait is context-bound, the session lands cancelled, never
// wedged.
func TestIngestCancelWhilePumpStalled(t *testing.T) {
	inj := faults.New(1)
	opts := ingestOpts()
	opts.Faults = inj
	e := newTestEngine(t, opts)
	st := openIngestT(t, e, 8)
	inj.Enable(faults.SiteIngestPumpStall, faults.Always())
	if _, err := e.IngestChunk(st.ID, 0, bytes.NewReader(encodeTrace(8, 0, nil))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for inj.Gate(faults.SiteIngestPumpStall).Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pump never reached the stall gate")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitIngest(t, e, st.ID, func(st RunStatus) bool { return st.State.Terminal() })
	if got.State != StateCancelled || got.Ingest.Phase != IngestCancelled {
		t.Fatalf("state=%s phase=%s, want cancelled/cancelled", got.State, got.Ingest.Phase)
	}
	if m := e.Metrics(); m.Jobs[KindIngest].Cancelled != 1 {
		t.Fatalf("jobs.ingest.cancelled = %d, want 1", m.Jobs[KindIngest].Cancelled)
	}
}

// Journal appends failing under a session does not fail the session:
// the stream completes, the errors are counted, health degrades.
func TestIngestJournalAppendFailureBestEffort(t *testing.T) {
	inj := faults.New(1)
	var buf bytes.Buffer
	opts := ingestOpts()
	opts.Faults = inj
	opts.Journal = NewJournal(&buf)
	e := newTestEngine(t, opts)
	inj.Enable(faults.SiteJournalAppend, faults.Always())
	st := openIngestT(t, e, 16)
	putAll(t, e, st.ID, encodeTrace(48, 0, nil), 10*hmtt.RecordSize)
	closeAndWaitDone(t, e, st.ID)
	m := e.Metrics()
	if m.JournalWriteErrors == 0 || !m.JournalLastWriteFailed {
		t.Fatalf("journal errors=%d lastFailed=%t, want counted and degraded", m.JournalWriteErrors, m.JournalLastWriteFailed)
	}
	if buf.Len() != 0 {
		t.Fatalf("journal buffer has %d bytes despite Always-failing appends", buf.Len())
	}
}

// An abandoned session — client opens, uploads, vanishes — expires on
// the idle deadline and frees its slot: terminal with cause, never a
// zombie.
func TestIngestClientAbandonExpires(t *testing.T) {
	opts := ingestOpts()
	opts.IngestIdleTimeout = 30 * time.Millisecond
	e := newTestEngine(t, opts)
	st := openIngestT(t, e, 16)
	putAll(t, e, st.ID, encodeTrace(8, 0, nil), 8*hmtt.RecordSize)
	got := waitIngest(t, e, st.ID, func(st RunStatus) bool { return st.State.Terminal() })
	if got.State != StateFailed || got.Ingest.Phase != IngestExpired {
		t.Fatalf("state=%s phase=%s err=%q, want failed/expired", got.State, got.Ingest.Phase, got.Error)
	}
	if !strings.Contains(got.Error, "idle timeout") {
		t.Fatalf("error %q does not name the idle timeout", got.Error)
	}
	m := e.Metrics()
	if m.IngestSessionsExpired != 1 || m.IngestSessionsActive != 0 {
		t.Fatalf("expired=%d active=%d, want 1/0", m.IngestSessionsExpired, m.IngestSessionsActive)
	}
	// The slot is genuinely free: a new session opens immediately.
	openIngestT(t, e, 16)
}

// Engine drain with a live session: the pump finishes the staged
// backlog, then the session fails with the typed interrupted error —
// and no pump goroutine outlives Shutdown.
func TestIngestDrainInterruptedTypedNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine(ingestOpts())
	st, err := e.OpenIngest(IngestRequest{System: "hopp", WindowRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	trace := encodeTrace(64, 0, nil)
	if _, err := e.IngestChunk(st.ID, 0, bytes.NewReader(trace)); err != nil {
		t.Fatal(err)
	}
	// No close: the client is mid-stream when the daemon drains.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got, err := e.IngestStatusByID(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || !strings.Contains(got.Error, "interrupted by shutdown") {
		t.Fatalf("state=%s err=%q, want failed + interrupted-by-shutdown", got.State, got.Error)
	}
	// The staged backlog was processed, not dropped: drain is graceful.
	if got.Ingest.Records != 64 {
		t.Fatalf("records = %d, want the staged 64 drained before failing", got.Ingest.Records)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines = %d after drain, want <= %d", runtime.NumGoroutine(), before)
}

func TestIngestSessionLimit(t *testing.T) {
	opts := ingestOpts()
	opts.MaxIngests = 1
	e := newTestEngine(t, opts)
	openIngestT(t, e, 16)
	_, err := e.OpenIngest(IngestRequest{})
	if !errors.Is(err, ErrIngestLimit) {
		t.Fatalf("second open err = %v, want ErrIngestLimit", err)
	}
}

func TestIngestOpenValidation(t *testing.T) {
	e := newTestEngine(t, ingestOpts())
	if _, err := e.OpenIngest(IngestRequest{System: "no-such-system"}); !errors.Is(err, ErrUnknownSystem) {
		t.Fatalf("err = %v, want ErrUnknownSystem", err)
	}
	bad := 1.5
	if _, err := e.OpenIngest(IngestRequest{Frac: &bad}); !errors.Is(err, ErrBadFrac) {
		t.Fatalf("err = %v, want ErrBadFrac", err)
	}
}

// Daemon restart mid-stream: the journal restores the session as
// resumable at its durable chunk high-water mark; finished windows
// replay byte-identically; the client rewinds, re-uploads, and the
// stream completes.
func TestIngestJournalReplayMidStream(t *testing.T) {
	trace := encodeTrace(128, 0, map[uint8]bool{60: true})
	const chunkBytes = 23 // torn records across boundaries and across the crash
	chunks := func(b []byte) [][]byte {
		var out [][]byte
		for off := 0; off < len(b); off += chunkBytes {
			end := off + chunkBytes
			if end > len(b) {
				end = len(b)
			}
			out = append(out, b[off:end])
		}
		return out
	}
	all := chunks(trace)

	// Control: one uninterrupted run.
	ctl := newTestEngine(t, ingestOpts())
	cst := openIngestT(t, ctl, 16)
	putAll(t, ctl, cst.ID, trace, chunkBytes)
	want := closeAndWaitDone(t, ctl, cst.ID)

	// First daemon: journal to a buffer, upload half, then "crash"
	// (abandon the engine without closing the session).
	var jbuf bytes.Buffer
	opts1 := ingestOpts()
	opts1.Journal = NewJournal(&jbuf)
	e1 := newTestEngine(t, opts1)
	st := openIngestT(t, e1, 16)
	half := len(all) / 2
	for i := 0; i < half; i++ {
		if _, err := e1.IngestChunk(st.ID, i, bytes.NewReader(all[i])); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	waitIngest(t, e1, st.ID, func(s RunStatus) bool { return s.Ingest.ChunksDurable == half })
	// Snapshot the journal under reg.mu: every append holds it, so the
	// copy can't tear a line.
	e1.reg.mu.Lock()
	crashJournal := append([]byte(nil), jbuf.Bytes()...)
	e1.reg.mu.Unlock()

	// Second daemon: replay, expect one resumed session.
	e2 := newTestEngine(t, ingestOpts())
	stats, err := e2.ReplayJournal(bytes.NewReader(crashJournal))
	if err != nil {
		t.Fatalf("ReplayJournal: %v", err)
	}
	if stats.Malformed != 0 || stats.Recovered == 0 {
		t.Fatalf("replay stats %+v", stats)
	}
	m := e2.Metrics()
	if m.JournalReplayed != 1 {
		t.Fatalf("journal_replayed = %d, want 1 (sessions, not lines)", m.JournalReplayed)
	}
	if m.IngestSessionsActive != 1 {
		t.Fatalf("ingest_sessions_active = %d, want 1 resumed session", m.IngestSessionsActive)
	}
	got, err := e2.IngestStatusByID(st.ID)
	if err != nil {
		t.Fatalf("resumed session status: %v", err)
	}
	if got.State != StateRunning || got.Ingest.Phase != IngestPaused || !got.Ingest.Resumed {
		t.Fatalf("resumed session = %s/%s resumed=%t, want running/paused/true", got.State, got.Ingest.Phase, got.Ingest.Resumed)
	}
	if got.Ingest.ChunksDurable != half || got.Ingest.ChunksAcked != half {
		t.Fatalf("resumed HWM acked=%d durable=%d, want %d", got.Ingest.ChunksAcked, got.Ingest.ChunksDurable, half)
	}

	// Windows finished before the crash replay byte-identically.
	replayed, err := e2.IngestWindows(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range replayed {
		wb, _ := json.Marshal(want[i])
		gb, _ := json.Marshal(w)
		if !bytes.Equal(wb, gb) {
			t.Fatalf("replayed window %d:\nwant %s\ngot  %s", i, wb, gb)
		}
	}

	// The client re-syncs to the durable HWM and continues — including a
	// duplicate of the last durable chunk, which re-acks idempotently.
	if _, err := e2.IngestChunk(st.ID, half-1, bytes.NewReader(all[half-1])); err != nil {
		t.Fatalf("duplicate chunk after restart: %v", err)
	}
	for i := half; i < len(all); i++ {
		if _, err := e2.IngestChunk(st.ID, i, bytes.NewReader(all[i])); err != nil {
			t.Fatalf("chunk %d after restart: %v", i, err)
		}
	}
	final := closeAndWaitDone(t, e2, st.ID)
	if m := e2.Metrics(); m.IngestChunksRetried != 1 {
		t.Fatalf("ingest_chunks_retried = %d, want 1", m.IngestChunksRetried)
	}

	// Every window's framing — record counts, read/write split, loss,
	// virtual-clock bounds — is exact across the restart. (Pipeline
	// warm-up state is deliberately not journaled, so hot/prefetch
	// counts may differ in post-crash windows; the stream accounting
	// must not.)
	if len(final) != len(want) {
		t.Fatalf("windows = %d, want %d", len(final), len(want))
	}
	for i := range want {
		w, g := want[i], final[i]
		w.HotPages, g.HotPages = 0, 0
		w.Prefetches, g.Prefetches = 0, 0
		w.PrefetchHits, g.PrefetchHits = 0, 0
		if w != g {
			t.Fatalf("window %d framing diverged across restart:\nwant %+v\ngot  %+v", i, want[i], final[i])
		}
	}

	// A session whose terminal entry IS journaled replays terminal, not
	// resumable: replay the second daemon's full journal (it has none —
	// jbuf belongs to e1) by reusing e1's buffer after e1 drains.
	// e1's cleanup shutdown will fail its copy of the session; that
	// terminal entry lands in jbuf and must replay as failed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = e1.Shutdown(ctx)
	e3 := newTestEngine(t, ingestOpts())
	if _, err := e3.ReplayJournal(bytes.NewReader(jbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	term, err := e3.IngestStatusByID(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !term.State.Terminal() {
		t.Fatalf("session with journaled terminal entry replayed %s, want terminal", term.State)
	}
	if m := e3.Metrics(); m.IngestSessionsActive != 0 {
		t.Fatalf("terminal replay left %d active sessions", m.IngestSessionsActive)
	}
}

// The full HTTP surface: open, chunked PUT with idempotent retry,
// status, paused 429 + Retry-After, out-of-order 409, oversize 413,
// kind-mismatch 404, NDJSON metrics (snapshot and follow), close,
// cancel-after-terminal 409.
func TestIngestHTTPSurface(t *testing.T) {
	inj := faults.New(1)
	opts := ingestOpts()
	opts.Faults = inj
	opts.IngestRingRecords = 32
	e := newTestEngine(t, opts)
	srv := httptest.NewServer(NewHandlerWith(e, HandlerConfig{Faults: inj}))
	defer srv.Close()
	client := srv.Client()

	do := func(method, path string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decode := func(resp *http.Response, wantCode int) RunStatus {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("HTTP %d, want %d: %s", resp.StatusCode, wantCode, b)
		}
		var st RunStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := decode(do("POST", "/v1/ingests", []byte(`{"system":"hopp","window_records":16}`)), http.StatusAccepted)
	if st.Ingest == nil || st.Ingest.Phase != IngestStreaming {
		t.Fatalf("open = %+v", st)
	}
	id := st.ID

	trace := encodeTrace(48, 0, nil)
	chunk := trace[:16*hmtt.RecordSize]

	// Out-of-order ahead of the HWM: 409.
	resp := do("PUT", "/v1/ingests/"+id+"/chunks/5", chunk)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("out-of-order PUT: HTTP %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Oversize (beyond ring capacity): 413.
	resp = do("PUT", "/v1/ingests/"+id+"/chunks/0", encodeTrace(64, 0, nil))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize PUT: HTTP %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()

	// Injected ring-full: 429 with a Retry-After hint, then the same
	// request succeeds.
	inj.Enable(faults.SiteIngestRingFull, faults.OnHits(1))
	resp = do("PUT", "/v1/ingests/"+id+"/chunks/0", chunk)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("paused PUT: HTTP %d Retry-After=%q, want 429 + hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()
	decode(do("PUT", "/v1/ingests/"+id+"/chunks/0", chunk), http.StatusOK)
	decode(do("PUT", "/v1/ingests/"+id+"/chunks/1", trace[16*hmtt.RecordSize:32*hmtt.RecordSize]), http.StatusOK)
	// Idempotent duplicate: same 200.
	decode(do("PUT", "/v1/ingests/"+id+"/chunks/1", trace[16*hmtt.RecordSize:32*hmtt.RecordSize]), http.StatusOK)

	// Follow-mode metrics stream in the background while the tail
	// uploads land.
	var followLines []IngestWindow
	var followErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := client.Get(srv.URL + "/v1/ingests/" + id + "/metrics?follow=true")
		if err != nil {
			followErr = err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var w IngestWindow
			if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
				followErr = err
				return
			}
			followLines = append(followLines, w)
		}
		followErr = sc.Err()
	}()

	decode(do("PUT", "/v1/ingests/"+id+"/chunks/2", trace[32*hmtt.RecordSize:]), http.StatusOK)
	decode(do("POST", "/v1/ingests/"+id+"/close", nil), http.StatusOK)
	wg.Wait()
	if followErr != nil {
		t.Fatalf("follow stream: %v", followErr)
	}
	if len(followLines) != 3 {
		t.Fatalf("follow streamed %d windows, want 3", len(followLines))
	}

	// Snapshot form after the fact: identical windows.
	resp = do("GET", "/v1/ingests/"+id+"/metrics", nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; n != 3 {
		t.Fatalf("snapshot NDJSON has %d lines, want 3:\n%s", n, body)
	}

	// PUT after close: 409. Cancel after terminal: 409. Kind mismatch:
	// 404 on both the status and metrics surfaces.
	resp = do("PUT", "/v1/ingests/"+id+"/chunks/3", chunk)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("PUT after close: HTTP %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	resp = do("DELETE", "/v1/ingests/"+id, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE after done: HTTP %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	sim := decode(do("POST", "/v1/runs", []byte(`{"workload":"sequential","system":"fastswap","quick":true}`)), http.StatusAccepted)
	for _, path := range []string{"/v1/ingests/" + sim.ID, "/v1/ingests/" + sim.ID + "/metrics", "/v1/ingests/r999999"} {
		resp := do("GET", path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// DELETE on a live session over HTTP cancels it.
func TestIngestHTTPCancel(t *testing.T) {
	e := newTestEngine(t, ingestOpts())
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	st, err := e.OpenIngest(IngestRequest{})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/ingests/"+st.ID, nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d, want 200", resp.StatusCode)
	}
	got := waitIngest(t, e, st.ID, func(s RunStatus) bool { return s.State.Terminal() })
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
}

// A torn request body at the HTTP layer (SiteHTTPBodyRead) surfaces as
// a 400 chunk-read error and leaves the session resumable.
func TestIngestHTTPBodyReadTear(t *testing.T) {
	inj := faults.New(1)
	opts := ingestOpts()
	opts.Faults = inj
	e := newTestEngine(t, opts)
	srv := httptest.NewServer(NewHandlerWith(e, HandlerConfig{Faults: inj}))
	defer srv.Close()
	st, err := e.OpenIngest(IngestRequest{WindowRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	trace := encodeTrace(16, 0, nil)
	inj.Enable(faults.SiteHTTPBodyRead, faults.Always())
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/ingests/"+st.ID+"/chunks/0", bytes.NewReader(trace))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn body PUT: HTTP %d, want 400", resp.StatusCode)
	}
	inj.Disable(faults.SiteHTTPBodyRead)
	if _, err := e.IngestChunk(st.ID, 0, bytes.NewReader(trace)); err != nil {
		t.Fatalf("retry after torn body: %v", err)
	}
	closeAndWaitDone(t, e, st.ID)
}
