package service

import "sync/atomic"

// counters are the engine's expvar-style runtime counters. All fields
// are monotonic except the gauges derived at snapshot time.
type counters struct {
	runsSubmitted     atomic.Uint64
	runsStarted       atomic.Uint64
	runsCompleted     atomic.Uint64
	runsFailed        atomic.Uint64
	runsCancelled     atomic.Uint64
	runsRejected      atomic.Uint64 // fail-fast admission rejections (429s)
	runsTimedOut      atomic.Uint64 // subset of runsFailed that hit -run-timeout
	registryEvictions atomic.Uint64 // terminal runs dropped by retention
	cacheHits         atomic.Uint64
	cacheMisses       atomic.Uint64
	expStarted        atomic.Uint64
	expCompleted      atomic.Uint64
	expFailed         atomic.Uint64
	runWallNS         atomic.Int64 // total wall time spent executing runs
	runSimulatedNS    atomic.Int64 // total simulated time produced by runs
}

// MetricsSnapshot is the /metrics payload: a point-in-time copy of every
// counter plus the live gauges. Field order is fixed by the struct, so
// the serialized form is stable.
type MetricsSnapshot struct {
	RunsSubmitted uint64 `json:"runs_submitted"`
	RunsStarted   uint64 `json:"runs_started"`
	RunsCompleted uint64 `json:"runs_completed"`
	RunsFailed    uint64 `json:"runs_failed"`
	RunsCancelled uint64 `json:"runs_cancelled"`
	// RunsRejected counts submissions shed by admission control (HTTP
	// 429); they never entered the registry. RunsTimedOut is the subset
	// of RunsFailed that exceeded the per-run deadline.
	RunsRejected uint64 `json:"runs_rejected"`
	RunsTimedOut uint64 `json:"runs_timed_out"`

	// RegistrySize is the live run-registry gauge; RegistryEvictions
	// counts terminal runs dropped by the retention policy (their IDs
	// answer 404 afterwards). RetainRuns echoes the configured bound.
	RegistrySize      int    `json:"registry_size"`
	RegistryEvictions uint64 `json:"registry_evictions"`
	RetainRuns        int    `json:"retain_runs"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheSize   int    `json:"cache_size"`

	ExperimentsStarted   uint64 `json:"experiments_started"`
	ExperimentsCompleted uint64 `json:"experiments_completed"`
	ExperimentsFailed    uint64 `json:"experiments_failed"`

	QueueDepth int `json:"queue_depth"`
	// QueueLimit is the admission bound (0 = unbounded); RunTimeoutNS is
	// the per-run deadline (0 = none). Both echo configuration so a
	// scraper can alert on depth/limit ratio without knowing the flags.
	QueueLimit   int   `json:"queue_limit"`
	RunTimeoutNS int64 `json:"run_timeout_ns"`
	// RetryAfterHintNS is the adaptive backoff hint 429 responses carry
	// in Retry-After (mean run wall time × queued runs per worker,
	// clamped to [1s, 60s]) — exported so operators can see what
	// rejected clients are being told.
	RetryAfterHintNS int64 `json:"retry_after_hint_ns"`
	ActiveRuns       int   `json:"active_runs"`
	Workers          int   `json:"workers"`

	// CatalogWorkloads/CatalogSystems size the request space servable by
	// this build — useful when fleet rollouts mix catalog versions.
	CatalogWorkloads int `json:"catalog_workloads"`
	CatalogSystems   int `json:"catalog_systems"`

	// RunWallNS is total wall-clock nanoseconds workers spent executing
	// runs; RunSimulatedNS is the total simulated nanoseconds those runs
	// covered. Their ratio is the engine's time-dilation factor.
	RunWallNS      int64 `json:"run_wall_ns"`
	RunSimulatedNS int64 `json:"run_simulated_ns"`
}

func (c *counters) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		RunsSubmitted:        c.runsSubmitted.Load(),
		RunsStarted:          c.runsStarted.Load(),
		RunsCompleted:        c.runsCompleted.Load(),
		RunsFailed:           c.runsFailed.Load(),
		RunsCancelled:        c.runsCancelled.Load(),
		RunsRejected:         c.runsRejected.Load(),
		RunsTimedOut:         c.runsTimedOut.Load(),
		RegistryEvictions:    c.registryEvictions.Load(),
		CacheHits:            c.cacheHits.Load(),
		CacheMisses:          c.cacheMisses.Load(),
		ExperimentsStarted:   c.expStarted.Load(),
		ExperimentsCompleted: c.expCompleted.Load(),
		ExperimentsFailed:    c.expFailed.Load(),
		RunWallNS:            c.runWallNS.Load(),
		RunSimulatedNS:       c.runSimulatedNS.Load(),
	}
}
