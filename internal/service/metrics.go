package service

import "sync/atomic"

// counters are the engine's expvar-style runtime counters. All fields
// are monotonic except the gauges derived at snapshot time.
type counters struct {
	runsSubmitted  atomic.Uint64
	runsStarted    atomic.Uint64
	runsCompleted  atomic.Uint64
	runsFailed     atomic.Uint64
	runsCancelled  atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	expStarted     atomic.Uint64
	expCompleted   atomic.Uint64
	expFailed      atomic.Uint64
	runWallNS      atomic.Int64 // total wall time spent executing runs
	runSimulatedNS atomic.Int64 // total simulated time produced by runs
}

// MetricsSnapshot is the /metrics payload: a point-in-time copy of every
// counter plus the live gauges. Field order is fixed by the struct, so
// the serialized form is stable.
type MetricsSnapshot struct {
	RunsSubmitted uint64 `json:"runs_submitted"`
	RunsStarted   uint64 `json:"runs_started"`
	RunsCompleted uint64 `json:"runs_completed"`
	RunsFailed    uint64 `json:"runs_failed"`
	RunsCancelled uint64 `json:"runs_cancelled"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheSize   int    `json:"cache_size"`

	ExperimentsStarted   uint64 `json:"experiments_started"`
	ExperimentsCompleted uint64 `json:"experiments_completed"`
	ExperimentsFailed    uint64 `json:"experiments_failed"`

	QueueDepth int `json:"queue_depth"`
	ActiveRuns int `json:"active_runs"`
	Workers    int `json:"workers"`

	// RunWallNS is total wall-clock nanoseconds workers spent executing
	// runs; RunSimulatedNS is the total simulated nanoseconds those runs
	// covered. Their ratio is the engine's time-dilation factor.
	RunWallNS      int64 `json:"run_wall_ns"`
	RunSimulatedNS int64 `json:"run_simulated_ns"`
}

func (c *counters) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		RunsSubmitted:        c.runsSubmitted.Load(),
		RunsStarted:          c.runsStarted.Load(),
		RunsCompleted:        c.runsCompleted.Load(),
		RunsFailed:           c.runsFailed.Load(),
		RunsCancelled:        c.runsCancelled.Load(),
		CacheHits:            c.cacheHits.Load(),
		CacheMisses:          c.cacheMisses.Load(),
		ExperimentsStarted:   c.expStarted.Load(),
		ExperimentsCompleted: c.expCompleted.Load(),
		ExperimentsFailed:    c.expFailed.Load(),
		RunWallNS:            c.runWallNS.Load(),
		RunSimulatedNS:       c.runSimulatedNS.Load(),
	}
}
