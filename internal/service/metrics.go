package service

import "sync/atomic"

// kindCounters are one job kind's monotonic lifecycle counters. Sim and
// experiment jobs move the same set, so a dashboard reads both kinds
// with one query shape instead of two bespoke families.
type kindCounters struct {
	submitted atomic.Uint64
	started   atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	rejected  atomic.Uint64 // fail-fast admission rejections (429s)
	timedOut  atomic.Uint64 // subset of failed that hit -run-timeout
	panicked  atomic.Uint64 // subset of failed whose work function panicked
}

// counters are the engine's expvar-style runtime counters: a
// kindCounters block per job kind plus the kind-agnostic shared ones
// (cache, journal, wall/simulated time). The byKind map is built once
// at construction and never mutated afterwards, so lock-free concurrent
// reads are safe.
type counters struct {
	byKind map[JobKind]*kindCounters

	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	runWallNS      atomic.Int64 // total wall time spent executing jobs (both kinds)
	runSimulatedNS atomic.Int64 // total simulated time produced by sim jobs

	// Sweep fan-out accounting. Points are sweep children: total counts
	// every expanded grid point admitted, cached the points served
	// without their own simulation (result-cache hits at admission plus
	// in-flight dedupe followers), completed the points that reached
	// done (cached ones included), failed the points that did not.
	// Streams counts distinct workload access streams actually generated
	// for sweeps — the shared-workload memoization gauge: a sweep of N
	// points over W distinct (workload, seed) pairs builds exactly W.
	sweepPointsTotal     atomic.Uint64
	sweepPointsCached    atomic.Uint64
	sweepPointsCompleted atomic.Uint64
	sweepPointsFailed    atomic.Uint64
	sweepStreamsBuilt    atomic.Uint64

	// Ingest accounting. Records/loss accumulate at session finish (the
	// live gauges ride on each session's status); retries count duplicate
	// chunk uploads re-acked without reprocessing; expirations count
	// sessions the idle deadline reaped.
	ingestRecords         atomic.Uint64
	ingestLossRecords     atomic.Uint64
	ingestChunksRetried   atomic.Uint64
	ingestSessionsExpired atomic.Uint64
}

func newCounters() *counters {
	c := &counters{byKind: make(map[JobKind]*kindCounters, len(jobKinds))}
	for _, k := range jobKinds {
		c.byKind[k] = &kindCounters{}
	}
	return c
}

// kind returns the counter block for one job kind.
func (c *counters) kind(k JobKind) *kindCounters { return c.byKind[k] }

// completedTotal sums completions across kinds — the denominator of the
// adaptive Retry-After estimate (both kinds drain the same queue).
func (c *counters) completedTotal() uint64 {
	var n uint64
	for _, k := range jobKinds {
		n += c.byKind[k].completed.Load()
	}
	return n
}

// JobCounters is the externally visible snapshot of one kind's
// lifecycle counters. Rejected counts submissions shed by admission
// control (HTTP 429); they never entered the registry. TimedOut is the
// subset of Failed that exceeded the per-run deadline; Panicked the
// subset whose work function panicked (contained on the worker — the
// daemon and its other jobs kept running).
type JobCounters struct {
	Submitted uint64 `json:"submitted"`
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Rejected  uint64 `json:"rejected"`
	TimedOut  uint64 `json:"timed_out"`
	Panicked  uint64 `json:"panicked"`
}

// MetricsSnapshot is the /metrics payload: a point-in-time copy of
// every counter plus the live gauges. Jobs is keyed by kind ("sim",
// "experiment") and both kinds carry the identical counter shape;
// encoding/json sorts the map keys, so the serialized form is stable.
type MetricsSnapshot struct {
	Jobs map[JobKind]JobCounters `json:"jobs"`

	// Admission is the per-client fairness layer's snapshot, present
	// only when the daemon runs with a ClientLimiter (-client-rate). It
	// is filled by the HTTP layer, which owns the limiter — the engine
	// never sees shed submissions.
	Admission *AdmissionSnapshot `json:"admission,omitempty"`

	// RegistrySize is the live job-registry gauge covering both kinds;
	// RegistryEvictions counts terminal jobs dropped by the retention
	// policy (their IDs answer 404 afterwards). RetainRuns echoes the
	// configured bound.
	RegistrySize      int    `json:"registry_size"`
	RegistryEvictions uint64 `json:"registry_evictions"`
	RetainRuns        int    `json:"retain_runs"`

	// JournalWrites counts terminal jobs appended to the -journal file;
	// JournalWriteErrors counts appends that failed (the job and any
	// eviction proceed regardless — the registry bound is load-bearing,
	// the audit trail is best-effort). JournalLastWriteFailed mirrors
	// the /healthz degraded signal: true from a failed append until the
	// next successful one. JournalReplayed counts entries
	// `-journal-replay` recovered into the registry/cache at startup.
	JournalWrites          uint64 `json:"journal_writes"`
	JournalWriteErrors     uint64 `json:"journal_write_errors"`
	JournalLastWriteFailed bool   `json:"journal_last_write_failed"`
	JournalReplayed        int    `json:"journal_replayed"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheSize   int    `json:"cache_size"`

	QueueDepth int `json:"queue_depth"`
	// QueueLimit is the admission bound (0 = unbounded); RunTimeoutNS is
	// the per-run deadline (0 = none). Both echo configuration so a
	// scraper can alert on depth/limit ratio without knowing the flags.
	QueueLimit   int   `json:"queue_limit"`
	RunTimeoutNS int64 `json:"run_timeout_ns"`
	// RetryAfterHintNS is the adaptive backoff hint 429 responses carry
	// in Retry-After (mean job wall time × queued jobs per worker,
	// clamped to [1s, 60s]) — exported so operators can see what
	// rejected clients are being told.
	RetryAfterHintNS int64 `json:"retry_after_hint_ns"`
	ActiveJobs       int   `json:"active_jobs"`
	Workers          int   `json:"workers"`

	// Sweep fan-out gauges: per-point lifecycle counts (cached = served
	// without a simulation of their own — result-cache hits plus
	// in-flight dedupe), the distinct workload access streams generated
	// for sweeps (the memoization win: points ≫ streams), and the
	// configured grid-size bound (-max-sweep-points).
	SweepPointsTotal     uint64 `json:"sweep_points_total"`
	SweepPointsCached    uint64 `json:"sweep_points_cached"`
	SweepPointsCompleted uint64 `json:"sweep_points_completed"`
	SweepPointsFailed    uint64 `json:"sweep_points_failed"`
	SweepStreamsBuilt    uint64 `json:"sweep_streams_built"`
	MaxSweepPoints       int    `json:"max_sweep_points"`

	// Ingest gauges: live sessions against the -max-ingests bound, total
	// records decoded (and the subset lost to HMTT capture gaps) by
	// finished sessions, duplicate chunks re-acked to retrying clients,
	// and sessions reaped by -ingest-idle-timeout.
	IngestSessionsActive  int    `json:"ingest_sessions_active"`
	MaxIngests            int    `json:"max_ingests"`
	IngestRecords         uint64 `json:"ingest_records"`
	IngestLossRecords     uint64 `json:"ingest_loss_records"`
	IngestChunksRetried   uint64 `json:"ingest_chunks_retried"`
	IngestSessionsExpired uint64 `json:"ingest_sessions_expired"`

	// CatalogWorkloads/CatalogSystems size the request space servable by
	// this build — useful when fleet rollouts mix catalog versions.
	CatalogWorkloads int `json:"catalog_workloads"`
	CatalogSystems   int `json:"catalog_systems"`

	// RunWallNS is total wall-clock nanoseconds workers spent executing
	// jobs of both kinds; RunSimulatedNS is the total simulated
	// nanoseconds sim jobs covered. Their ratio is the engine's
	// time-dilation factor.
	RunWallNS      int64 `json:"run_wall_ns"`
	RunSimulatedNS int64 `json:"run_simulated_ns"`
}

func (c *counters) snapshot() MetricsSnapshot {
	jobs := make(map[JobKind]JobCounters, len(jobKinds))
	for _, k := range jobKinds {
		kc := c.byKind[k]
		jobs[k] = JobCounters{
			Submitted: kc.submitted.Load(),
			Started:   kc.started.Load(),
			Completed: kc.completed.Load(),
			Failed:    kc.failed.Load(),
			Cancelled: kc.cancelled.Load(),
			Rejected:  kc.rejected.Load(),
			TimedOut:  kc.timedOut.Load(),
			Panicked:  kc.panicked.Load(),
		}
	}
	return MetricsSnapshot{
		Jobs:                  jobs,
		CacheHits:             c.cacheHits.Load(),
		CacheMisses:           c.cacheMisses.Load(),
		RunWallNS:             c.runWallNS.Load(),
		RunSimulatedNS:        c.runSimulatedNS.Load(),
		SweepPointsTotal:      c.sweepPointsTotal.Load(),
		SweepPointsCached:     c.sweepPointsCached.Load(),
		SweepPointsCompleted:  c.sweepPointsCompleted.Load(),
		SweepPointsFailed:     c.sweepPointsFailed.Load(),
		SweepStreamsBuilt:     c.sweepStreamsBuilt.Load(),
		IngestRecords:         c.ingestRecords.Load(),
		IngestLossRecords:     c.ingestLossRecords.Load(),
		IngestChunksRetried:   c.ingestChunksRetried.Load(),
		IngestSessionsExpired: c.ingestSessionsExpired.Load(),
	}
}
