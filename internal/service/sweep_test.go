package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hopp/internal/sim"
	"hopp/internal/workload"
)

// quickSweep is a small real grid: 1 workload × 2 systems × 2 fracs =
// 4 points sharing one frozen stream.
func quickSweep() SweepRequest {
	return SweepRequest{
		Workloads: []string{"sequential"},
		Systems:   []string{"fastswap", "noprefetch"},
		Fracs:     []float64{0.25, 0.5},
		Seeds:     []int64{1},
		Quick:     true,
	}
}

// waitSweep polls a sweep parent to a terminal state.
func waitSweep(t *testing.T, e *Engine, id string) RunStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := e.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	if st.Sweep == nil {
		t.Fatalf("job %s has no sweep aggregate: %+v", id, st)
	}
	return st
}

// parkSweepSims replaces the shared-stream hook with one that parks
// every invocation until release fires (or the job's context ends),
// counting invocations and signalling each pickup on started. The
// cleanup releases too — registered BEFORE the engine's own Shutdown
// cleanup (LIFO), so a forgotten release cannot wedge the drain.
func parkSweepSims(t *testing.T, e *Engine) (calls *atomic.Int64, started chan struct{}, release func()) {
	t.Helper()
	calls = &atomic.Int64{}
	started = make(chan struct{}, 64)
	gate := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	e.runSweepSim = func(ctx context.Context, req RunRequest, gen workload.Generator) (sim.Metrics, error) {
		calls.Add(1)
		started <- struct{}{}
		select {
		case <-gate:
			return runSharedSimulation(ctx, req, gen)
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
	return calls, started, release
}

// waitStarted blocks until n parked simulations have been picked up.
func waitStarted(t *testing.T, started chan struct{}, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(30 * time.Second):
			t.Fatalf("only %d of %d parked sims started", i, n)
		}
	}
}

func TestSweepPointsCartesianOrder(t *testing.T) {
	req := SweepRequest{
		Workloads: []string{"NPB-MG", " sequential "},
		Systems:   []string{"hopp", "fastswap"},
		Fracs:     []float64{0.25, 0.5},
		Seeds:     []int64{1, 2},
	}
	norm, points, err := req.Points()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Expand != ExpandCartesian {
		t.Fatalf("default expand = %q, want cartesian", norm.Expand)
	}
	if len(points) != 16 {
		t.Fatalf("expanded %d points, want 16", len(points))
	}
	// Nesting order is workload → system → frac → seed; names normalize.
	if points[0].Workload != "npb-mg" || points[0].System != "hopp" || *points[0].Frac != 0.25 || points[0].Seed != 1 {
		t.Fatalf("point 0 = %+v", points[0])
	}
	if points[1].Seed != 2 {
		t.Fatalf("point 1 should advance seed first, got %+v", points[1])
	}
	if points[8].Workload != "sequential" {
		t.Fatalf("point 8 should advance workload last, got %+v", points[8])
	}
	// Expansion is deterministic: a second call yields identical points.
	_, again, err := req.Points()
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].Workload != again[i].Workload || points[i].System != again[i].System ||
			*points[i].Frac != *again[i].Frac || points[i].Seed != again[i].Seed {
			t.Fatalf("re-expansion diverged at %d", i)
		}
	}
}

func TestSweepPointsZipAndDefaults(t *testing.T) {
	req := SweepRequest{
		Workloads: []string{"npb-mg", "sequential", "npb-cg"},
		Systems:   []string{"hopp"},
		Expand:    ExpandZip,
	}
	norm, points, err := req.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("zip expanded %d points, want 3", len(points))
	}
	for i, p := range points {
		if p.System != "hopp" || *p.Frac != 0.5 || p.Seed != 1 {
			t.Fatalf("point %d did not broadcast defaults: %+v", i, p)
		}
	}
	if norm.Fracs[0] != 0.5 || norm.Seeds[0] != 1 {
		t.Fatalf("defaults not echoed: %+v", norm)
	}
}

func TestSweepPointsRejectsBadGrids(t *testing.T) {
	cases := []struct {
		name string
		req  SweepRequest
		want error
	}{
		{"no workloads", SweepRequest{Systems: []string{"hopp"}}, ErrBadSweep},
		{"no systems", SweepRequest{Workloads: []string{"npb-mg"}}, ErrBadSweep},
		{"bad expand", SweepRequest{Workloads: []string{"npb-mg"}, Systems: []string{"hopp"}, Expand: "diagonal"}, ErrBadSweep},
		{"zip mismatch", SweepRequest{Workloads: []string{"npb-mg", "npb-cg"}, Systems: []string{"hopp"}, Fracs: []float64{0.1, 0.2, 0.3}, Expand: ExpandZip}, ErrBadSweep},
		{"unknown workload", SweepRequest{Workloads: []string{"nope"}, Systems: []string{"hopp"}}, ErrUnknownWorkload},
		{"unknown system", SweepRequest{Workloads: []string{"npb-mg"}, Systems: []string{"nope"}}, ErrUnknownSystem},
		{"bad frac", SweepRequest{Workloads: []string{"npb-mg"}, Systems: []string{"hopp"}, Fracs: []float64{1.5}}, ErrBadFrac},
	}
	for _, c := range cases {
		if _, _, err := c.req.Points(); !errors.Is(err, c.want) {
			t.Errorf("%s: error = %v, want %v", c.name, err, c.want)
		}
	}
}

// The tentpole lifecycle: one submission fans out into sim children
// under a parent job, every point simulates, and the aggregate plus the
// per-point results stream land deterministically.
func TestSweepLifecycle(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	st, err := e.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindSweep || st.Sweep == nil || st.Sweep.Total != 4 {
		t.Fatalf("submitted sweep = %+v", st)
	}
	if len(st.Sweep.Children) != 4 {
		t.Fatalf("children = %v", st.Sweep.Children)
	}

	final := waitSweep(t, e, st.ID)
	if final.State != StateDone {
		t.Fatalf("sweep state = %s (%s), want done", final.State, final.Error)
	}
	if final.Sweep.Done != 4 || final.Sweep.Failed != 0 || final.Sweep.Lost != 0 {
		t.Fatalf("aggregate = %+v", final.Sweep)
	}
	if final.Progress != 4 {
		t.Fatalf("parent progress = %d, want 4", final.Progress)
	}

	// Children are ordinary sim jobs: pollable by ID, tied back to the
	// parent, metrics attached.
	for i, id := range final.Sweep.Children {
		cs, err := e.Status(id)
		if err != nil {
			t.Fatalf("child %d: %v", i, err)
		}
		if cs.Kind != KindSim || cs.Parent != st.ID {
			t.Fatalf("child %d = %+v, want sim child of %s", i, cs, st.ID)
		}
		if cs.State != StateDone || len(cs.Metrics) == 0 {
			t.Fatalf("child %d not done with metrics: %+v", i, cs)
		}
	}

	// The results stream serves every point, terminal, in expansion
	// order, coordinates echoed.
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		pt, terminal, err := e.SweepPointAt(ctx, st.ID, i, false)
		if err != nil || !terminal {
			t.Fatalf("point %d: terminal=%v err=%v", i, terminal, err)
		}
		if pt.Index != i || pt.ID != final.Sweep.Children[i] || pt.State != StateDone || len(pt.Metrics) == 0 {
			t.Fatalf("point %d = %+v", i, pt)
		}
		if pt.Workload != "sequential" {
			t.Fatalf("point %d workload = %q", i, pt.Workload)
		}
	}

	m := e.Metrics()
	if m.SweepPointsTotal != 4 || m.SweepPointsCompleted != 4 || m.SweepPointsFailed != 0 {
		t.Fatalf("sweep point counters: %+v", m)
	}
	sw := m.Jobs[KindSweep]
	if sw.Submitted != 1 || sw.Started != 1 || sw.Completed != 1 {
		t.Fatalf("jobs_* kind=sweep: %+v", sw)
	}
	if simc := m.Jobs[KindSim]; simc.Submitted != 4 || simc.Completed != 4 {
		t.Fatalf("jobs_* kind=sim: %+v", simc)
	}
}

// The acceptance invariant: a sweep of N points over W distinct
// (workload, seed) streams generates exactly W access streams.
func TestSweepGeneratesOneStreamPerWorkload(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 4})
	req := SweepRequest{
		Workloads: []string{"sequential", "random"},
		Systems:   []string{"fastswap", "noprefetch"},
		Fracs:     []float64{0.25, 0.5},
		Seeds:     []int64{1},
		Quick:     true,
	}
	st, err := e.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitSweep(t, e, st.ID)
	if final.State != StateDone {
		t.Fatalf("sweep state = %s (%s)", final.State, final.Error)
	}
	m := e.Metrics()
	if m.SweepPointsTotal != 8 || m.SweepPointsCompleted != 8 {
		t.Fatalf("points: %+v", m)
	}
	if m.SweepStreamsBuilt != 2 {
		t.Fatalf("streams built = %d for 8 points over 2 workloads, want exactly 2", m.SweepStreamsBuilt)
	}
}

// A sweep child's result must be byte-identical to a standalone run of
// the same request on a fresh engine — the shared frozen stream is an
// optimization, never an observable behavior change.
func TestSweepChildByteIdenticalToStandalone(t *testing.T) {
	sweeper := newTestEngine(t, Options{Workers: 2})
	st, err := sweeper.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	final := waitSweep(t, sweeper, st.ID)
	if final.State != StateDone {
		t.Fatalf("sweep state = %s (%s)", final.State, final.Error)
	}

	solo := newTestEngine(t, Options{Workers: 2})
	_, points, err := quickSweep().Points()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range final.Sweep.Children {
		cs, err := sweeper.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := solo.Submit(points[i])
		if err != nil {
			t.Fatal(err)
		}
		sd := waitDone(t, solo, ss.ID)
		if sd.State != StateDone {
			t.Fatalf("standalone point %d: %s (%s)", i, sd.State, sd.Error)
		}
		if string(cs.Metrics) != string(sd.Metrics) {
			t.Fatalf("point %d diverged:\nsweep:      %s\nstandalone: %s", i, cs.Metrics, sd.Metrics)
		}
	}
}

// Duplicate points across overlapping sweeps simulate once: the second
// sweep's children follow the first's in-flight jobs and inherit their
// results as cache-hit children.
func TestOverlappingSweepsSimulateOnce(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	calls, _, release := parkSweepSims(t, e)

	first, err := e.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.SubmitSweep(quickSweep()) // identical grid, while in flight
	if err != nil {
		t.Fatal(err)
	}
	release()

	f1 := waitSweep(t, e, first.ID)
	f2 := waitSweep(t, e, second.ID)
	if f1.State != StateDone || f2.State != StateDone {
		t.Fatalf("states: %s / %s", f1.State, f2.State)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("simulations executed = %d for 8 points over 4 unique requests, want 4", got)
	}
	if f2.Sweep.Cached != 4 {
		t.Fatalf("second sweep cached = %d, want all 4", f2.Sweep.Cached)
	}
	for _, id := range f2.Sweep.Children {
		cs, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if cs.State != StateDone || !cs.Cached || len(cs.Metrics) == 0 {
			t.Fatalf("follower child %s = %+v, want cached done with metrics", id, cs)
		}
	}
	m := e.Metrics()
	if m.SweepPointsTotal != 8 || m.SweepPointsCached != 4 || m.SweepPointsCompleted != 8 {
		t.Fatalf("dedupe counters: total=%d cached=%d completed=%d",
			m.SweepPointsTotal, m.SweepPointsCached, m.SweepPointsCompleted)
	}
}

// Points already in the result cache are born done at submission; a
// fully cached grid completes before SubmitSweep returns.
func TestSweepFullyCachedCompletesAtSubmission(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	warm, err := e.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, e, warm.ID)

	st, err := e.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("fully cached sweep state at submission = %s, want done", st.State)
	}
	if st.Sweep.Cached != 4 || st.Sweep.Done != 4 {
		t.Fatalf("aggregate = %+v", st.Sweep)
	}
}

// One giant sweep must not monopolize the shared queue: its fan-out is
// paced to the worker count, so a single-run client keeps being
// admitted and completing while the sweep grinds on. (Name matches the
// loadcheck gate's test filter.)
func TestSweepFairnessUnderFanout(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2, MaxQueue: 4})
	_, started, release := parkSweepSims(t, e)

	// 8 unique points against a queue bound of 4: an unpaced fan-out
	// would flood the queue and shed every other client with 429. The
	// window keeps the sweep's pool presence at the worker count.
	sweep, err := e.SubmitSweep(SweepRequest{
		Workloads: []string{"sequential", "random"},
		Systems:   []string{"fastswap", "noprefetch"},
		Fracs:     []float64{0.25},
		Seeds:     []int64{1, 2},
		Quick:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.pool.QueueDepth() + e.pool.Active(); got > 2 {
		t.Fatalf("sweep put %d jobs in the pool, window is 2", got)
	}
	waitStarted(t, started, 2) // both workers now parked on sweep children

	// Another client's single runs are still admitted: the queue has
	// room precisely because the sweep only holds `workers` slots.
	var singles []string
	for seed := int64(10); seed < 13; seed++ {
		req := quickReq()
		req.Seed = seed
		st, err := e.Submit(req)
		if err != nil {
			t.Fatalf("single run seed %d rejected during sweep: %v", seed, err)
		}
		singles = append(singles, st.ID)
	}

	ps, err := e.SweepStatus(sweep.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ps.State.Terminal() {
		t.Fatalf("sweep finished while its sims were parked: %+v", ps)
	}

	// Once workers free up, the FIFO queue serves the singles ahead of
	// the sweep's refill — they finish even though 6 sweep points are
	// still pending.
	release()
	for i, id := range singles {
		if got := waitDone(t, e, id); got.State != StateDone {
			t.Fatalf("single run %d: %s (%s)", i, got.State, got.Error)
		}
	}
	final := waitSweep(t, e, sweep.ID)
	if final.State != StateDone || final.Sweep.Done != 8 {
		t.Fatalf("sweep after release = %s %+v", final.State, final.Sweep)
	}
}

// Cancelling the parent aborts the whole fan-out: parked children
// unwind cancelled, pending ones never start, and the parent lands
// cancelled.
func TestSweepCancelPropagatesToChildren(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	_, _, release := parkSweepSims(t, e)
	st, err := e.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	release()
	final := waitSweep(t, e, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("sweep state = %s, want cancelled", final.State)
	}
	for _, id := range final.Sweep.Children {
		cs, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if cs.State != StateCancelled {
			t.Fatalf("child %s = %s, want cancelled", id, cs.State)
		}
	}
	if err := e.Cancel(st.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("second cancel = %v, want ErrNotCancellable", err)
	}
	if m := e.Metrics(); m.SweepPointsFailed != 4 {
		t.Fatalf("sweep_points_failed = %d, want 4", m.SweepPointsFailed)
	}
}

// A grid past -max-sweep-points is rejected whole: no parent, no
// children, no registry growth.
func TestSweepTooLargeRejectedWithoutSideEffects(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, MaxSweepPoints: 3})
	req := quickSweep() // 4 points > bound 3
	if _, err := e.SubmitSweep(req); !errors.Is(err, ErrSweepTooLarge) {
		t.Fatalf("error = %v, want ErrSweepTooLarge", err)
	}
	if m := e.Metrics(); m.RegistrySize != 0 || m.SweepPointsTotal != 0 {
		t.Fatalf("rejected sweep left state behind: %+v", m)
	}
	if m := e.Metrics(); m.MaxSweepPoints != 3 {
		t.Fatalf("max_sweep_points gauge = %d, want 3", m.MaxSweepPoints)
	}
}

// Sweep admission is all-or-nothing against the queue bound: when the
// initial window cannot fit, the submission sheds with ErrOverloaded
// and leaves nothing behind.
func TestSweepAdmissionAllOrNothing(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2, MaxQueue: 1})
	// Occupy both workers with parked singles, then hold the queue at
	// its bound with a third.
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(gate) }) })
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return sim.Metrics{}, ctx.Err()
	}
	// One at a time: with the bound at 1, each must be dequeued by a
	// worker before the next fits.
	for seed := int64(1); seed <= 2; seed++ {
		req := quickReq()
		req.Seed = seed
		if _, err := e.Submit(req); err != nil {
			t.Fatalf("filler submit: %v", err)
		}
		waitStarted(t, started, 1)
	}
	req := quickReq()
	req.Seed = 3
	if _, err := e.Submit(req); err != nil { // sits in the queue: depth 1 = bound
		t.Fatalf("filler submit: %v", err)
	}
	before := e.Metrics().RegistrySize
	if _, err := e.SubmitSweep(quickSweep()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("error = %v, want ErrOverloaded", err)
	}
	m := e.Metrics()
	if m.RegistrySize != before {
		t.Fatalf("rejected sweep grew the registry: %d -> %d", before, m.RegistrySize)
	}
	if m.Jobs[KindSweep].Rejected != 1 {
		t.Fatalf("jobs_rejected kind=sweep = %d, want 1", m.Jobs[KindSweep].Rejected)
	}
}

// The sweep lookup surface only speaks sweeps: sim job IDs answer
// ErrNotSweep, unknown IDs ErrUnknownRun.
func TestSweepLookupRejectsOtherKinds(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	st, err := e.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, st.ID)
	if _, err := e.SweepStatus(st.ID); !errors.Is(err, ErrNotSweep) {
		t.Fatalf("SweepStatus(sim) = %v, want ErrNotSweep", err)
	}
	if _, err := e.SweepLen(st.ID); !errors.Is(err, ErrNotSweep) {
		t.Fatalf("SweepLen(sim) = %v, want ErrNotSweep", err)
	}
	if _, err := e.SweepStatus("r999999"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("SweepStatus(unknown) = %v, want ErrUnknownRun", err)
	}
	if _, _, err := e.SweepPointAt(context.Background(), st.ID, 0, false); !errors.Is(err, ErrNotSweep) {
		t.Fatalf("SweepPointAt(sim) = %v, want ErrNotSweep", err)
	}
}

// A failing point fails the parent but never hides the rest: the other
// points complete and stream normally.
func TestSweepPartialFailure(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	e.runSweepSim = func(ctx context.Context, req RunRequest, gen workload.Generator) (sim.Metrics, error) {
		if req.System == "noprefetch" && *req.Frac == 0.5 {
			return sim.Metrics{}, fmt.Errorf("injected point failure")
		}
		return runSharedSimulation(ctx, req, gen)
	}
	st, err := e.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	final := waitSweep(t, e, st.ID)
	if final.State != StateFailed {
		t.Fatalf("sweep state = %s, want failed", final.State)
	}
	if final.Sweep.Done != 3 || final.Sweep.Failed != 1 {
		t.Fatalf("aggregate = %+v", final.Sweep)
	}
	if m := e.Metrics(); m.SweepPointsCompleted != 3 || m.SweepPointsFailed != 1 {
		t.Fatalf("counters: %+v", m)
	}
	var failed int
	for i := range final.Sweep.Children {
		pt, terminal, err := e.SweepPointAt(context.Background(), st.ID, i, false)
		if err != nil || !terminal {
			t.Fatalf("point %d: %v", i, err)
		}
		if pt.State == StateFailed {
			failed++
			if pt.Error == "" {
				t.Fatalf("failed point %d has no error", i)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("results stream shows %d failed points, want 1", failed)
	}
}

// Duplicate points inside one grid collapse onto one simulation within
// the sweep itself.
func TestSweepInternalDuplicatesCollapse(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	calls, _, release := parkSweepSims(t, e)
	release()
	st, err := e.SubmitSweep(SweepRequest{
		Workloads: []string{"sequential", "sequential"},
		Systems:   []string{"fastswap"},
		Fracs:     []float64{0.25},
		Quick:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitSweep(t, e, st.ID)
	if final.State != StateDone || final.Sweep.Total != 2 {
		t.Fatalf("sweep = %s %+v", final.State, final.Sweep)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("duplicate point simulated %d times, want 1", got)
	}
	if final.Sweep.Cached != 1 {
		t.Fatalf("cached = %d, want 1 (the duplicate)", final.Sweep.Cached)
	}
}

// Satellite: a daemon restart mid-sweep. The journal holds the parent's
// submission entry plus every child that finished before the crash;
// replay serves those children byte-identically, reports the parent
// failed (never a zombie in-progress job), and accounts the unfinished
// points as lost.
func TestJournalReplayMidSweep(t *testing.T) {
	var buf syncBuffer
	e1 := newTestEngine(t, Options{Workers: 2, Journal: NewJournal(&buf)})
	// fastswap points complete; noprefetch points park until "the crash".
	gate := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(gate) }) })
	e1.runSweepSim = func(ctx context.Context, req RunRequest, gen workload.Generator) (sim.Metrics, error) {
		if req.System == "noprefetch" {
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return sim.Metrics{}, ctx.Err()
		}
		return runSharedSimulation(ctx, req, gen)
	}

	// Cartesian order puts both fastswap points (0, 1) ahead of the
	// noprefetch ones, and the window is 2, so exactly children 0 and 1
	// run and finish while 2 and 3 are still pending.
	st, err := e1.SubmitSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	done := st.Sweep.Children[:2]
	var before []RunStatus
	for _, id := range done {
		cs := waitDone(t, e1, id)
		if cs.State != StateDone {
			t.Fatalf("pre-crash child %s: %s (%s)", id, cs.State, cs.Error)
		}
		before = append(before, cs)
	}
	// Three writes on disk: the parent's submission entry plus the two
	// finished children. The parked points never reach the journal.
	waitCounters(t, e1, func(m MetricsSnapshot) bool { return m.JournalWrites == 3 })

	data, err := io.ReadAll(buf.reader())
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh engine replays the crashed daemon's journal.
	e2 := newTestEngine(t, Options{Workers: 2})
	stats, err := e2.ReplayJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovered != 3 || stats.Malformed != 0 {
		t.Fatalf("stats = %+v, want 3 recovered", stats)
	}

	// The parent is terminal — failed, explicitly attributed to the
	// restart — not a zombie that polls forever.
	ps, err := e2.SweepStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ps.State != StateFailed || ps.Error == "" {
		t.Fatalf("replayed parent = %s (%q), want failed with cause", ps.State, ps.Error)
	}
	if ps.Sweep.Done != 2 || ps.Sweep.Lost != 2 {
		t.Fatalf("replayed aggregate = %+v, want 2 done / 2 lost", ps.Sweep)
	}
	for _, r := range e2.Runs() {
		if !r.State.Terminal() {
			t.Fatalf("zombie after replay: %+v", r)
		}
	}

	// Finished children come back byte-identical...
	for i, id := range done {
		cs, err := e2.Status(id)
		if err != nil {
			t.Fatalf("replayed child %s: %v", id, err)
		}
		if cs.State != StateDone || string(cs.Metrics) != string(before[i].Metrics) {
			t.Fatalf("child %s diverged across restart:\nbefore: %s\nafter:  %s", id, before[i].Metrics, cs.Metrics)
		}
		if cs.Parent != st.ID {
			t.Fatalf("replayed child %s lost its parent link: %+v", id, cs)
		}
	}
	// ...and the results stream reports every point: the finished ones
	// terminal with metrics, the lost ones terminal with a cause.
	for i := 0; i < 4; i++ {
		pt, terminal, err := e2.SweepPointAt(context.Background(), st.ID, i, false)
		if err != nil || !terminal {
			t.Fatalf("replayed point %d: terminal=%v err=%v", i, terminal, err)
		}
		if i < 2 && (pt.State != StateDone || len(pt.Metrics) == 0) {
			t.Fatalf("recovered point %d = %+v", i, pt)
		}
		if i >= 2 && (pt.State == StateDone || pt.Error == "") {
			t.Fatalf("lost point %d must be terminal-with-cause, got %+v", i, pt)
		}
	}

	// The recovered results are back in the result cache: resubmitting a
	// finished point is a hit, born done with the pre-crash bytes.
	_, points, err := quickSweep().Points()
	if err != nil {
		t.Fatal(err)
	}
	hit, err := e2.Submit(points[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != StateDone || !hit.Cached || string(hit.Metrics) != string(before[0].Metrics) {
		t.Fatalf("post-replay resubmit = %+v, want cache hit with pre-crash bytes", hit)
	}
}
