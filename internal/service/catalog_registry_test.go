package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// Every advertised system spec — HoPP variants and prefetch-registry
// schemes alike — must survive the full service round-trip: canonical
// resolution, request normalization, and construction.
func TestSystemCatalogRoundTrip(t *testing.T) {
	names := SystemNames()
	if len(names) != NumSystems() {
		t.Fatalf("SystemNames has %d entries, NumSystems reports %d", len(names), NumSystems())
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate advertised system %q", name)
		}
		seen[name] = true
		canon, ok := canonicalSystem(name)
		if !ok {
			t.Errorf("advertised system %q does not canonicalize", name)
			continue
		}
		if canon != name {
			t.Errorf("advertised system %q is not canonical (-> %q)", name, canon)
		}
		sys, ok := NewSystem(name)
		if !ok || sys.Name == "" {
			t.Errorf("advertised system %q does not construct", name)
		}
		n, _, err := (RunRequest{Workload: "sequential", System: name, Seed: 1, Quick: true}).Normalize()
		if err != nil {
			t.Errorf("advertised system %q fails Normalize: %v", name, err)
			continue
		}
		if n.System != name {
			t.Errorf("Normalize rewrote advertised system %q to %q", name, n.System)
		}
	}
	for _, want := range []string{"spp", "chimera", "hhp", "depth-16", "hopp"} {
		if !seen[want] {
			t.Errorf("system %q missing from the advertised catalog", want)
		}
	}
}

// The /metrics catalog gauge must advertise the merged catalog size, so
// registering a scheme grows it with no service-layer edit.
func TestMetricsCatalogGaugeCoversRegistry(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	m := e.Metrics()
	if m.CatalogSystems != NumSystems() || m.CatalogSystems != len(SystemNames()) {
		t.Fatalf("CatalogSystems gauge = %d, want %d (= len(SystemNames) %d)",
			m.CatalogSystems, NumSystems(), len(SystemNames()))
	}
	if m.CatalogWorkloads != NumWorkloads() {
		t.Fatalf("CatalogWorkloads gauge = %d, want %d", m.CatalogWorkloads, NumWorkloads())
	}
}

// Equivalent registry specs must normalize to one cache key: depth?n=16
// and DEPTH-16 are the same simulation and share a cache entry and a
// sweep dedupe slot.
func TestNormalizeCanonicalizesRegistrySpecs(t *testing.T) {
	a, keyA, err := (RunRequest{Workload: "sequential", System: "depth?n=16", Seed: 7}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_, keyB, err := (RunRequest{Workload: "sequential", System: " DEPTH-16 ", Seed: 7}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("equivalent specs keyed differently:\n  %s\n  %s", keyA, keyB)
	}
	if a.System != "depth-16" {
		t.Fatalf("normalized system = %q, want depth-16", a.System)
	}
	b, _, err := (RunRequest{Workload: "sequential", System: "spp?lookahead=4&threshold=25", Seed: 7}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if b.System != "spp" {
		t.Fatalf("default-parameter spec normalized to %q, want spp", b.System)
	}
}

// The new feedback schemes are servable end-to-end from POST /v1/runs,
// parameterized specs included.
func TestHTTPRunsServeRegistrySchemes(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	for _, system := range []string{"spp", "chimera", "hhp", "spp?lookahead=2"} {
		frac := 0.25
		st, code := postRun(t, srv.URL, RunRequest{
			Workload: "sequential", System: system, Frac: &frac, Seed: 1, Quick: true,
		})
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %s: status %d", system, code)
		}
		if final := pollRun(t, srv.URL, st.ID); final.State != StateDone {
			t.Fatalf("run %s ended %s (%s)", system, final.State, final.Error)
		}
	}
}

// readGroups fetches the seed-aggregated results form.
func readGroups(t *testing.T, url string) (string, []SweepGroup) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("group stream Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var groups []SweepGroup
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var g SweepGroup
		if err := json.Unmarshal(sc.Bytes(), &g); err != nil {
			t.Fatalf("bad NDJSON group line %q: %v", sc.Text(), err)
		}
		groups = append(groups, g)
	}
	return string(raw), groups
}

// ?group-by=workload aggregates a finished sweep across seeds: one line
// per (workload, system, frac) with mean/stddev of sim_ns.
func TestHTTPSweepGroupByWorkload(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})
	req := quickSweep()
	req.Seeds = []int64{1, 2} // 1 workload x 2 systems x 2 fracs x 2 seeds
	st, code := postSweep(t, srv.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollSweep(t, srv.URL, st.ID)

	url := srv.URL + "/v1/sweeps/" + st.ID + "/results?group-by=workload"
	raw1, groups := readGroups(t, url)
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4: %q", len(groups), raw1)
	}
	for i, g := range groups {
		if g.Workload != "sequential" || g.System == "" {
			t.Fatalf("group %d identity = %+v", i, g)
		}
		if g.Seeds != 2 || g.Pending != 0 || g.Failed != 0 {
			t.Fatalf("group %d tallies = %+v, want 2 finished seeds", i, g)
		}
		if g.MeanSimNS <= 0 || g.StddevSimNS < 0 {
			t.Fatalf("group %d statistics = %+v", i, g)
		}
	}

	// Snapshot form: a second read of a finished sweep is byte-identical.
	raw2, _ := readGroups(t, url)
	if raw1 != raw2 {
		t.Fatalf("two group reads of a finished sweep diverged:\n%s\nvs\n%s", raw1, raw2)
	}

	// Unsupported group keys and the follow combination are rejected.
	for _, bad := range []string{"?group-by=system", "?group-by=workload&follow=true"} {
		resp, err := http.Get(srv.URL + "/v1/sweeps/" + st.ID + "/results" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// Unknown sweep IDs 404 through the group form too.
	resp, err := http.Get(srv.URL + "/v1/sweeps/r999999/results?group-by=workload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep group read: %d, want 404", resp.StatusCode)
	}
}
