package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"

	"hopp/internal/faults"
)

// HandlerConfig carries the optional HTTP-layer collaborators. The
// zero value is valid: no limiter means every submission is admitted
// straight to the engine's own queue bound.
type HandlerConfig struct {
	// Limiter, when non-nil, applies per-client fairness in front of the
	// shared queue: each submit route spends one token from the caller's
	// bucket (keyed by X-API-Key, else the remote address) and answers
	// 429 + Retry-After when the bucket is dry.
	Limiter *ClientLimiter
	// Faults, when non-nil, threads the deterministic fault injector
	// into the HTTP layer itself: request-body reads that fail
	// mid-stream (SiteHTTPBodyRead), results-stream writes that error
	// (SiteHTTPResultsWrite), and clients that stall mid-stream
	// (SiteHTTPStreamStall). Tests use it to prove a torn upload or a
	// stalled NDJSON consumer never wedges the engine; nil (the
	// production default) costs one nil check per site.
	Faults *faults.Injector
}

// NewHandler builds the daemon's HTTP API over one engine:
//
//	POST   /v1/runs                   submit a workload × system simulation
//	                                  (429 + Retry-After when the queue is full)
//	GET    /v1/runs                   list retained jobs (sim + experiment)
//	                                  in submission order
//	GET    /v1/runs/{id}              one job's status: Metrics JSON for sim
//	                                  jobs, rendered Output for experiment jobs
//	                                  (404 once retention has evicted the job)
//	DELETE /v1/runs/{id}              cancel a queued or running job
//	GET    /v1/experiments            list regenerable tables/figures
//	POST   /v1/experiments/{id}/runs  submit an experiment job; poll it via
//	                                  GET /v1/runs/{id} like any other job
//	POST   /v1/experiments/{id}       legacy streaming form: submits the same
//	                                  job and streams its rendered text
//	POST   /v1/sweeps                 submit a config grid; the engine expands
//	                                  it into sim children under one parent job
//	GET    /v1/sweeps/{id}            the parent's aggregate fan-out status
//	GET    /v1/sweeps/{id}/results    NDJSON of completed points in expansion
//	                                  order; ?follow=true streams every point
//	                                  as it lands
//	DELETE /v1/sweeps/{id}            cancel the whole fan-out
//	POST   /v1/ingests                open a live HMTT trace-ingest session
//	                                  (429 + Retry-After at -max-ingests)
//	GET    /v1/ingests/{id}           session status: phase, chunk high-water
//	                                  marks, windows, ring occupancy
//	PUT    /v1/ingests/{id}/chunks/{n}  stream one trace chunk; idempotent by
//	                                  index so clients retry after 5xx or
//	                                  timeouts (429 + Retry-After when the
//	                                  staging ring is full)
//	POST   /v1/ingests/{id}/close     end the stream; the session drains and
//	                                  finishes done
//	GET    /v1/ingests/{id}/metrics   NDJSON of finished metrics windows;
//	                                  ?follow=true streams each as it seals
//	DELETE /v1/ingests/{id}           cancel the session
//	GET    /healthz                   liveness; "ok" or "degraded" (both 200)
//	GET    /metrics                   per-kind jobs_* counters + gauges
//
// Sim and experiment submissions are instances of one Job lifecycle:
// both flow through the shared queue bound, per-run deadline, registry
// retention, and /metrics accounting. The handler is cmd/hoppd's entire
// surface; it lives here so httptest exercises exactly what the daemon
// serves.
func NewHandler(e *Engine) http.Handler { return NewHandlerWith(e, HandlerConfig{}) }

// NewHandlerWith is NewHandler plus the optional HTTP-layer
// collaborators in cfg (per-client admission today).
func NewHandlerWith(e *Engine, cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	limiter := cfg.Limiter

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Degraded is still 200: the daemon is alive and serving; the
		// body tells orchestrators to look before traffic worsens it.
		writeJSON(w, http.StatusOK, e.Health())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m := e.Metrics()
		if limiter != nil {
			adm := limiter.Snapshot()
			m.Admission = &adm
		}
		writeJSON(w, http.StatusOK, m)
	})

	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		if !admit(w, r, e, limiter) {
			return
		}
		var req RunRequest
		if err := json.NewDecoder(requestBody(r, cfg.Faults)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		status, err := e.Submit(req)
		writeSubmitResult(w, e, status, err)
	})

	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"runs": e.Runs()})
	})

	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := e.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := e.Cancel(id); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		status, err := e.Status(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experiments": Experiments()})
	})

	// The job form of experiment regeneration: submit, get an ID, poll
	// GET /v1/runs/{id} — the exact lifecycle sim runs have, including
	// 429 under -max-queue and 404 after retention.
	mux.HandleFunc("POST /v1/experiments/{id}/runs", func(w http.ResponseWriter, r *http.Request) {
		if !admit(w, r, e, limiter) {
			return
		}
		req, ok := experimentRequest(w, r)
		if !ok {
			return
		}
		status, err := e.SubmitExperiment(req)
		writeSubmitResult(w, e, status, err)
	})

	// Legacy streaming form: a thin wrapper that submits the same job
	// and streams its rendered result. The bytes are identical to the
	// job's Output; the admission control is identical too, so an
	// overloaded engine answers 429 here as well.
	mux.HandleFunc("POST /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !admit(w, r, e, limiter) {
			return
		}
		req, ok := experimentRequest(w, r)
		if !ok {
			return
		}
		st, err := e.SubmitExperiment(req)
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds()))
			}
			writeError(w, errStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush() // commit headers so the client sees the stream open
		}
		// The request context cancels the job when the client
		// disconnects; the error (if any) lands on the open text stream.
		final, err := e.Wait(r.Context(), st.ID)
		if err != nil {
			_ = e.Cancel(st.ID) //hopplint:errok the job may already be terminal or evicted; nothing left to stop either way
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		if final.State != StateDone {
			fmt.Fprintf(w, "error: experiment job %s %s: %s\n", final.ID, final.State, final.Error)
			return
		}
		_, _ = w.Write([]byte(final.Output)) //hopplint:errok headers are already committed; a mid-body write error has no channel back to the client
	})

	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		if !admit(w, r, e, limiter) {
			return
		}
		var req SweepRequest
		if err := json.NewDecoder(requestBody(r, cfg.Faults)).Decode(&req); err != nil {
			// A body torn mid-upload sheds here, before the engine ever
			// sees the grid: no parent, no children, no registry entry.
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		status, err := e.SubmitSweep(req)
		writeSubmitResult(w, e, status, err)
	})

	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := e.SweepStatus(r.PathValue("id"))
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	// The results stream: one NDJSON line per point, in expansion order.
	// The default form snapshots — only points already terminal are
	// emitted, so two reads of a finished sweep are byte-identical.
	// ?follow=true waits for each point in order and flushes per line,
	// tailing a live sweep to completion; the request context bounds the
	// wait, so a client that disconnects (or stalls past the server's
	// write timeout) releases nothing more than this handler goroutine —
	// the sweep itself keeps running. ?group-by=workload switches to the
	// seed-aggregated form: one line per (workload, system, frac) with
	// mean/stddev of sim_ns across seeds (snapshot-only, so it cannot
	// combine with follow).
	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		follow := false
		if f := r.URL.Query().Get("follow"); f != "" {
			v, err := strconv.ParseBool(f)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad follow %q", f))
				return
			}
			follow = v
		}
		id := r.PathValue("id")
		if g := r.URL.Query().Get("group-by"); g != "" {
			if g != "workload" {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad group-by %q (only \"workload\")", g))
				return
			}
			if follow {
				writeError(w, http.StatusBadRequest, fmt.Errorf("group-by is a snapshot form and cannot combine with follow"))
				return
			}
			groups, err := e.SweepGroups(id)
			if err != nil {
				writeError(w, errStatus(err), err)
				return
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			enc := json.NewEncoder(w)
			for i := range groups {
				if cfg.Faults.ErrAt(faults.SiteHTTPResultsWrite) != nil {
					return // injected mid-stream write failure: stream ends torn
				}
				if err := enc.Encode(&groups[i]); err != nil {
					return
				}
			}
			return
		}
		n, err := e.SweepLen(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for i := 0; i < n; i++ {
			pt, terminal, err := e.SweepPointAt(r.Context(), id, i, follow)
			if err != nil {
				return // client gone or sweep evicted; the stream just ends
			}
			if !terminal {
				continue // snapshot form skips points still in flight
			}
			if cfg.Faults.Hit(faults.SiteHTTPStreamStall) {
				// A stalled consumer parks here, on this goroutine only,
				// until the test opens the gate or the client context
				// ends. The engine and every other request keep moving.
				if gerr := cfg.Faults.Gate(faults.SiteHTTPStreamStall).Wait(r.Context()); gerr != nil {
					return
				}
			}
			if cfg.Faults.ErrAt(faults.SiteHTTPResultsWrite) != nil {
				return // injected mid-stream write failure: stream ends torn
			}
			if err := enc.Encode(pt); err != nil {
				return
			}
			if follow && flusher != nil {
				flusher.Flush()
			}
		}
	})

	mux.HandleFunc("POST /v1/ingests", func(w http.ResponseWriter, r *http.Request) {
		if !admit(w, r, e, limiter) {
			return
		}
		var req IngestRequest
		if err := json.NewDecoder(requestBody(r, cfg.Faults)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		status, err := e.OpenIngest(req)
		writeSubmitResult(w, e, status, err)
	})

	mux.HandleFunc("GET /v1/ingests/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := e.IngestStatusByID(r.PathValue("id"))
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	// The chunk upload: strictly in-order by index, idempotent below the
	// acked high-water mark, so a client that lost a response to a
	// timeout or 5xx simply re-PUTs the same index and gets the same
	// 200. A full staging ring answers 429 + Retry-After with the
	// session paused; the client backs off and retries the identical
	// request.
	mux.HandleFunc("PUT /v1/ingests/{id}/chunks/{n}", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.Atoi(r.PathValue("n"))
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad chunk index %q", r.PathValue("n")))
			return
		}
		status, err := e.IngestChunk(r.PathValue("id"), n, requestBody(r, cfg.Faults))
		if err != nil {
			if errors.Is(err, ErrIngestPaused) {
				// The pump needs time, not a different request: a short
				// fixed hint, since ring drain is a pump cycle away, not a
				// queue drain away.
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("POST /v1/ingests/{id}/close", func(w http.ResponseWriter, r *http.Request) {
		status, err := e.CloseIngest(r.PathValue("id"))
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	// The windowed-metrics stream: one NDJSON line per sealed window, in
	// index order. The default form snapshots the windows sealed so far;
	// ?follow=true waits for each next window (flushing per line) until
	// the session goes terminal or the client leaves. Same stall/write
	// fault sites as the sweep results stream, same isolation: a stalled
	// consumer parks only this handler goroutine.
	mux.HandleFunc("GET /v1/ingests/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		follow := false
		if f := r.URL.Query().Get("follow"); f != "" {
			v, err := strconv.ParseBool(f)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad follow %q", f))
				return
			}
			follow = v
		}
		id := r.PathValue("id")
		if _, err := e.IngestStatusByID(id); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for i := 0; ; i++ {
			win, have, ended, err := e.IngestWindowAt(r.Context(), id, i, follow)
			if err != nil || ended || (!have && !follow) {
				return
			}
			if cfg.Faults.Hit(faults.SiteHTTPStreamStall) {
				if gerr := cfg.Faults.Gate(faults.SiteHTTPStreamStall).Wait(r.Context()); gerr != nil {
					return
				}
			}
			if cfg.Faults.ErrAt(faults.SiteHTTPResultsWrite) != nil {
				return // injected mid-stream write failure: stream ends torn
			}
			if err := enc.Encode(&win); err != nil {
				return
			}
			if follow && flusher != nil {
				flusher.Flush()
			}
		}
	})

	mux.HandleFunc("DELETE /v1/ingests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// Resolve through IngestStatusByID first so non-ingest IDs 404
		// here instead of cancelling arbitrary jobs through this surface.
		if _, err := e.IngestStatusByID(id); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		if err := e.Cancel(id); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		status, err := e.IngestStatusByID(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("DELETE /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// Resolve through SweepStatus first so non-sweep IDs 404 here
		// instead of cancelling arbitrary jobs through the sweep surface.
		if _, err := e.SweepStatus(id); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		if err := e.Cancel(id); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		status, err := e.SweepStatus(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	return mux
}

// requestBody wraps a request body with the body-read fault site when an
// injector is configured; production passes the body through untouched.
func requestBody(r *http.Request, inj *faults.Injector) io.Reader {
	if inj == nil {
		return r.Body
	}
	return &faultReader{r: r.Body, inj: inj}
}

// faultReader fails reads on demand at faults.SiteHTTPBodyRead —
// a deterministic stand-in for a client whose upload dies mid-body.
type faultReader struct {
	r   io.Reader
	inj *faults.Injector
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if err := fr.inj.ErrAt(faults.SiteHTTPBodyRead); err != nil {
		return 0, err
	}
	return fr.r.Read(p)
}

// admit runs the per-client fairness check for a submit route. When
// the caller's bucket is dry it writes 429 + Retry-After (the same
// adaptive hint queue overload uses) and reports false; a nil limiter
// admits everything.
func admit(w http.ResponseWriter, r *http.Request, e *Engine, limiter *ClientLimiter) bool {
	if limiter.Allow(clientKey(r)) {
		return true
	}
	w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests, ErrClientLimited)
	return false
}

// clientKey identifies the submitting client for fairness accounting:
// X-API-Key when the client presents one, else the remote host (port
// stripped, so one client's connections share one bucket).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// experimentRequest parses the {id} path element and seed/quick query
// parameters shared by both experiment routes. On a malformed value it
// writes a 400 and reports !ok.
func experimentRequest(w http.ResponseWriter, r *http.Request) (ExperimentRequest, bool) {
	req := ExperimentRequest{Experiment: r.PathValue("id"), Seed: 1}
	if s := r.URL.Query().Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", s))
			return ExperimentRequest{}, false
		}
		req.Seed = v
	}
	if q := r.URL.Query().Get("quick"); q != "" {
		v, err := strconv.ParseBool(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad quick %q", q))
			return ExperimentRequest{}, false
		}
		req.Quick = v
	}
	return req, true
}

// writeSubmitResult renders a Submit/SubmitExperiment outcome: 202 for
// an admitted job, 200 for one born done from the cache, 429 +
// Retry-After when admission control sheds it, and the mapped error
// status otherwise.
func writeSubmitResult(w http.ResponseWriter, e *Engine, status RunStatus, err error) {
	if err != nil {
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrIngestLimit) {
			// The queue (or ingest-session table) is at its bound; tell
			// well-behaved clients when to come back instead of letting
			// them hot-loop. The hint tracks observed drain time, so
			// backoff grows with the actual backlog.
			w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds()))
		}
		writeError(w, errStatus(err), err)
		return
	}
	code := http.StatusAccepted
	if status.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, status)
}

// errStatus maps engine errors to HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownRun), errors.Is(err, ErrUnknownExperiment), errors.Is(err, ErrNotSweep),
		errors.Is(err, ErrNotIngest):
		return http.StatusNotFound
	case errors.Is(err, ErrUnknownWorkload), errors.Is(err, ErrUnknownSystem), errors.Is(err, ErrBadFrac),
		errors.Is(err, ErrBadSweep), errors.Is(err, ErrSweepTooLarge), errors.Is(err, ErrChunkRead):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotCancellable), errors.Is(err, ErrChunkOutOfOrder), errors.Is(err, ErrIngestClosed):
		return http.StatusConflict
	case errors.Is(err, ErrChunkTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClientLimited), errors.Is(err, ErrIngestPaused),
		errors.Is(err, ErrIngestLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) //hopplint:errok headers are already committed; a mid-body write error has no channel back to the client
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
