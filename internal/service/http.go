package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// NewHandler builds the daemon's HTTP API over one engine:
//
//	POST   /v1/runs              submit a workload × system simulation
//	                             (429 + Retry-After when the queue is full)
//	GET    /v1/runs              list retained runs in submission order
//	GET    /v1/runs/{id}         one run's status + Metrics JSON
//	                             (404 once retention has evicted the run)
//	DELETE /v1/runs/{id}         cancel a queued or running run
//	GET    /v1/experiments       list regenerable tables/figures
//	POST   /v1/experiments/{id}  regenerate one (text/plain, streamed)
//	GET    /healthz              liveness
//	GET    /metrics              runtime counters
//
// The handler is cmd/hoppd's entire surface; it lives here so httptest
// exercises exactly what the daemon serves.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Metrics())
	})

	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		status, err := e.Submit(req)
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				// The queue is at its bound; tell well-behaved clients
				// when to come back instead of letting them hot-loop.
				// The hint tracks observed drain time, so backoff grows
				// with the actual backlog.
				w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds()))
			}
			writeError(w, errStatus(err), err)
			return
		}
		code := http.StatusAccepted
		if status.State.Terminal() {
			code = http.StatusOK
		}
		writeJSON(w, code, status)
	})

	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"runs": e.Runs()})
	})

	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := e.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := e.Cancel(id); err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		status, err := e.Status(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experiments": Experiments()})
	})

	mux.HandleFunc("POST /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		seed := int64(1)
		if s := r.URL.Query().Get("seed"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", s))
				return
			}
			seed = v
		}
		quick := false
		if q := r.URL.Query().Get("quick"); q != "" {
			v, err := strconv.ParseBool(q)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad quick %q", q))
				return
			}
			quick = v
		}
		id := r.PathValue("id")
		if _, ok := ExperimentByID(id); !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", ErrUnknownExperiment, id))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush() // commit headers so the client sees the stream open
		}
		// The request context cancels the experiment when the client
		// disconnects; the error (if any) lands on the open text stream.
		if err := e.RunExperiment(r.Context(), id, seed, quick, w); err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
	})

	return mux
}

// errStatus maps engine errors to HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownRun), errors.Is(err, ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, ErrUnknownWorkload), errors.Is(err, ErrUnknownSystem), errors.Is(err, ErrBadFrac):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotCancellable):
		return http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) //hopplint:errok headers are already committed; a mid-body write error has no channel back to the client
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
