package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"
	"time"
)

// ReplayStats reports what a journal replay did: Recovered entries
// landed back in the registry (and, for done jobs with result bytes,
// the cache); Skipped entries were well-formed JSON the current build
// could not restore (bad ID, catalog drift, non-terminal state);
// Malformed lines did not parse — a torn final line from a crash
// mid-append counts here and is tolerated, never fatal.
type ReplayStats struct {
	Recovered int `json:"recovered"`
	Skipped   int `json:"skipped"`
	Malformed int `json:"malformed"`
}

// ReplayJournal reads a JSONL run journal and repopulates the engine
// from its terminal entries: each entry is restored into the registry
// under its original ID (born terminal, served by GET /v1/runs/{id}
// byte-identically to the pre-restart response), and done entries
// carrying result bytes are put back in the result cache, so a
// crash/restart cycle serves previously-completed runs from cache
// instead of recomputing them. Intended at startup, before the engine
// serves traffic; the registry's retention bounds apply to the restored
// window exactly as they do to live jobs.
//
// Replay is resilient by construction: malformed lines (including the
// torn final line a crash mid-append leaves behind) are counted and
// skipped, entries naming workloads/systems/experiments this build's
// catalog no longer has are counted and skipped, and a duplicate ID
// keeps the later entry. The returned error is only ever a read error
// from r itself.
func (e *Engine) ReplayJournal(r io.Reader) (ReplayStats, error) {
	var stats ReplayStats
	sc := bufio.NewScanner(r)
	// Journal lines carry whole serialized results; size the line buffer
	// for rendered experiment tables, not just sim metrics.
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	now := time.Now()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var entry JournalEntry
		if err := json.Unmarshal(line, &entry); err != nil {
			stats.Malformed++
			continue
		}
		j, ok := e.jobFromEntry(entry)
		if !ok {
			stats.Skipped++
			continue
		}
		e.reg.mu.Lock()
		e.reg.restoreLocked(j)
		if j.State == StateDone && len(j.Result) > 0 {
			e.cache.Put(j.key, j.Result, j.simNS)
		}
		e.replayed++
		e.reg.mu.Unlock()
		stats.Recovered++
	}
	// Trim the restored window to the retention bounds in one pass, with
	// the journal detached: these jobs are already on disk, re-appending
	// them would duplicate the trail.
	e.reg.mu.Lock()
	e.reg.evictLocked(now)
	e.reg.mu.Unlock()
	return stats, sc.Err()
}

// ReplayJournalFile replays a journal file from disk. A missing file is
// a clean first boot, not an error.
func (e *Engine) ReplayJournalFile(path string) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return ReplayStats{}, nil
		}
		return ReplayStats{}, err
	}
	defer f.Close()
	return e.ReplayJournal(f)
}

// jobFromEntry rebuilds a terminal Job from one journal entry,
// revalidating the payload against the current catalog so the restored
// cache key is exactly the one a live submission of the same request
// would compute. Reports !ok for entries this build cannot restore.
func (e *Engine) jobFromEntry(entry JournalEntry) (*Job, bool) {
	if !entry.State.Terminal() {
		return nil, false
	}
	if _, ok := jobIDNum(entry.ID); !ok {
		return nil, false
	}
	j := &Job{
		ID:        entry.ID,
		Kind:      entry.Kind,
		State:     entry.State,
		cached:    entry.Cached,
		submitted: time.Unix(0, entry.SubmittedUnixNS),
		wallNS:    entry.WallNS,
		simNS:     entry.SimNS,
		errMsg:    entry.Error,
		done:      make(chan struct{}),
	}
	j.finished = time.Unix(0, entry.FinishedUnixNS)
	close(j.done) // born terminal: Wait returns immediately
	switch entry.Kind {
	case KindSim:
		norm, key, err := RunRequest{
			Workload: entry.Workload,
			System:   entry.System,
			Frac:     entry.Frac,
			Seed:     entry.Seed,
			Quick:    entry.Quick,
		}.Normalize()
		if err != nil {
			return nil, false // catalog drift: this build can't serve it
		}
		j.Sim = &norm
		j.key = key
		j.Result = entry.Metrics
	case KindExperiment:
		norm, key, err := ExperimentRequest{
			Experiment: entry.Experiment,
			Seed:       entry.Seed,
			Quick:      entry.Quick,
		}.Normalize()
		if err != nil {
			return nil, false
		}
		j.Exp = &norm
		j.key = key
		j.progress.Store(entry.Progress)
		if entry.Output != "" {
			j.Result = []byte(entry.Output)
		}
	default:
		return nil, false
	}
	return j, true
}
