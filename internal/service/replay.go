package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"
	"time"
)

// ReplayStats reports what a journal replay did: Recovered entries
// landed back in the registry (and, for done jobs with result bytes,
// the cache); Skipped entries were well-formed JSON the current build
// could not restore (bad ID, catalog drift, non-terminal state);
// Malformed lines did not parse — a torn final line from a crash
// mid-append counts here and is tolerated, never fatal.
type ReplayStats struct {
	Recovered int `json:"recovered"`
	Skipped   int `json:"skipped"`
	Malformed int `json:"malformed"`
}

// ReplayJournal reads a JSONL run journal and repopulates the engine
// from its terminal entries: each entry is restored into the registry
// under its original ID (born terminal, served by GET /v1/runs/{id}
// byte-identically to the pre-restart response), and done entries
// carrying result bytes are put back in the result cache, so a
// crash/restart cycle serves previously-completed runs from cache
// instead of recomputing them. Intended at startup, before the engine
// serves traffic; the registry's retention bounds apply to the restored
// window exactly as they do to live jobs.
//
// Replay is resilient by construction: malformed lines (including the
// torn final line a crash mid-append leaves behind) are counted and
// skipped, entries naming workloads/systems/experiments this build's
// catalog no longer has are counted and skipped, and a duplicate ID
// keeps the later entry. The returned error is only ever a read error
// from r itself.
func (e *Engine) ReplayJournal(r io.Reader) (ReplayStats, error) {
	var stats ReplayStats
	sc := bufio.NewScanner(r)
	// Journal lines carry whole serialized results; size the line buffer
	// for rendered experiment tables, not just sim metrics.
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	now := time.Now()
	// Ingest sessions journal many entries per ID (open, per-chunk
	// high-water mark, terminal); they merge here and resume after the
	// scan, in first-seen order.
	ingests := make(map[string]*Job)
	var ingestOrder []string
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var entry JournalEntry
		if err := json.Unmarshal(line, &entry); err != nil {
			stats.Malformed++
			continue
		}
		if entry.Kind == KindIngest {
			if e.replayIngestEntry(entry, ingests, &ingestOrder) {
				stats.Recovered++
			} else {
				stats.Skipped++
			}
			continue
		}
		j, ok := e.jobFromEntry(entry)
		if !ok {
			stats.Skipped++
			continue
		}
		e.reg.mu.Lock()
		e.reg.restoreLocked(j)
		if j.State == StateDone && j.key != "" && len(j.Result) > 0 {
			e.cache.Put(j.key, j.Result, j.simNS)
		}
		e.replayed++
		e.reg.mu.Unlock()
		stats.Recovered++
	}
	e.resumeReplayedIngests(ingests, ingestOrder)
	// Trim the restored window to the retention bounds in one pass, with
	// the journal detached: these jobs are already on disk, re-appending
	// them would duplicate the trail.
	e.reg.mu.Lock()
	e.reg.evictLocked(now)
	e.reg.mu.Unlock()
	return stats, sc.Err()
}

// replayIngestEntry merges one ingest journal line into its session,
// creating the session skeleton on the ID's first line. Non-terminal
// lines advance the durable chunk high-water mark, decoder state, and
// finished windows; a terminal line freezes the job in its final state.
// Reports whether the line was usable.
func (e *Engine) replayIngestEntry(entry JournalEntry, ingests map[string]*Job, order *[]string) bool {
	ij := entry.Ingest
	if ij == nil {
		return false
	}
	if _, ok := jobIDNum(entry.ID); !ok {
		return false
	}
	j, known := ingests[entry.ID]
	if !known {
		req, err := IngestRequest{
			Workload:      entry.Workload,
			System:        entry.System,
			Frac:          entry.Frac,
			Seed:          entry.Seed,
			WindowRecords: ij.WindowRecords,
		}.Normalize()
		if err != nil {
			return false // catalog drift: the pipeline can't be rebuilt
		}
		s := newIngestSession(req, e.ingestRingBytes)
		s.resumed = true
		j = &Job{
			ID:        entry.ID,
			Kind:      KindIngest,
			State:     StateRunning,
			ingest:    s,
			submitted: time.Unix(0, entry.SubmittedUnixNS),
			started:   time.Unix(0, entry.SubmittedUnixNS),
			done:      make(chan struct{}),
		}
		ingests[entry.ID] = j
		*order = append(*order, entry.ID)
		e.reg.mu.Lock()
		// Manual restore: restoreLocked files IDs in the terminal eviction
		// list, which a possibly-resuming session must stay out of.
		if n, ok := jobIDNum(j.ID); ok && n > e.reg.nextID {
			e.reg.nextID = n
		}
		if _, exists := e.reg.jobs[j.ID]; !exists {
			e.reg.order = append(e.reg.order, j.ID)
		}
		e.reg.jobs[j.ID] = j
		e.replayed++ // the journal_replayed gauge counts sessions, not lines
		e.reg.mu.Unlock()
	}
	wasTerminal := j.State.Terminal()
	s := j.ingest
	s.mu.Lock()
	if ij.Decoder != nil {
		s.dec.Restore(*ij.Decoder)
	}
	s.clock = ij.ClockTicks
	// Everything the crash left acked-but-unpumped is gone; the durable
	// high-water mark is what the client rewinds to.
	s.accepted = ij.ChunksAcked
	s.processed = ij.ChunksAcked
	s.retried = ij.ChunksRetried
	s.reads, s.writes = ij.Reads, ij.Writes
	s.hotPages, s.prefetches, s.prefetchHits = ij.HotPages, ij.Prefetches, ij.PrefetchHits
	for _, w := range ij.Windows {
		if w.Index == len(s.windows) { // idempotent under re-read lines
			s.windows = append(s.windows, w)
		}
	}
	s.journaledW = len(s.windows)
	if ij.Partial != nil {
		s.cur = *ij.Partial
	} else {
		next := IngestWindow{Index: len(s.windows)}
		if n := len(s.windows); n > 0 {
			next.StartNS = s.windows[n-1].EndNS
		}
		s.cur = next
	}
	if ij.Phase.Terminal() {
		s.phase = ij.Phase
		if !s.phaseSignalled() {
			s.signalWindowsLocked(true)
		}
	} else {
		// Resumable sessions come back paused: the pump is idle and the
		// client must re-sync to the durable high-water mark before
		// streaming resumes.
		s.phase = IngestPaused
	}
	s.mu.Unlock()
	j.progress.Store(int64(ij.Records))
	if entry.State.Terminal() && !wasTerminal {
		e.reg.mu.Lock()
		j.State = entry.State
		j.errMsg = entry.Error
		j.wallNS = entry.WallNS
		j.finished = time.Unix(0, entry.FinishedUnixNS)
		if entry.FinishedUnixNS == 0 {
			j.finished = j.submitted
		}
		if !j.doneClosed {
			j.doneClosed = true
			close(j.done)
		}
		e.reg.term = append(e.reg.term, j.ID)
		e.reg.mu.Unlock()
	}
	return true
}

// resumeReplayedIngests restarts every replayed session that never
// reached a terminal entry — the streams the crash interrupted. Each
// comes back paused and resumable: same ID, durable chunk high-water
// mark, exact decoder state, a fresh pump, and a fresh idle deadline,
// so a client that reappears continues and one that doesn't expires the
// session — never a zombie. Iteration follows first-seen journal order,
// not map order.
func (e *Engine) resumeReplayedIngests(ingests map[string]*Job, order []string) {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	for _, id := range order {
		j := ingests[id]
		if j.State.Terminal() {
			continue
		}
		e.liveIngests = append(e.liveIngests, j)
		e.startIngestLocked(j, j.ingest)
	}
}

// ReplayJournalFile replays a journal file from disk. A missing file is
// a clean first boot, not an error.
func (e *Engine) ReplayJournalFile(path string) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return ReplayStats{}, nil
		}
		return ReplayStats{}, err
	}
	defer f.Close()
	return e.ReplayJournal(f)
}

// jobFromEntry rebuilds a terminal Job from one journal entry,
// revalidating the payload against the current catalog so the restored
// cache key is exactly the one a live submission of the same request
// would compute. Reports !ok for entries this build cannot restore.
func (e *Engine) jobFromEntry(entry JournalEntry) (*Job, bool) {
	// Only sweep parents may replay from a non-terminal entry (the
	// submission-time line); everything else journals exactly once, at
	// its terminal transition.
	if !entry.State.Terminal() && entry.Kind != KindSweep {
		return nil, false
	}
	if _, ok := jobIDNum(entry.ID); !ok {
		return nil, false
	}
	j := &Job{
		ID:        entry.ID,
		Kind:      entry.Kind,
		State:     entry.State,
		cached:    entry.Cached,
		submitted: time.Unix(0, entry.SubmittedUnixNS),
		wallNS:    entry.WallNS,
		simNS:     entry.SimNS,
		errMsg:    entry.Error,
		done:      make(chan struct{}),
	}
	j.finished = time.Unix(0, entry.FinishedUnixNS)
	j.doneClosed = true
	close(j.done) // born terminal: Wait returns immediately
	switch entry.Kind {
	case KindSim:
		norm, key, err := RunRequest{
			Workload: entry.Workload,
			System:   entry.System,
			Frac:     entry.Frac,
			Seed:     entry.Seed,
			Quick:    entry.Quick,
		}.Normalize()
		if err != nil {
			return nil, false // catalog drift: this build can't serve it
		}
		j.Sim = &norm
		j.key = key
		j.Result = entry.Metrics
		j.parentID = entry.Parent
	case KindExperiment:
		norm, key, err := ExperimentRequest{
			Experiment: entry.Experiment,
			Seed:       entry.Seed,
			Quick:      entry.Quick,
		}.Normalize()
		if err != nil {
			return nil, false
		}
		j.Exp = &norm
		j.key = key
		j.progress.Store(entry.Progress)
		if entry.Output != "" {
			j.Result = []byte(entry.Output)
		}
	case KindSweep:
		if entry.Sweep == nil {
			return nil, false
		}
		sw := &sweepState{
			req: SweepRequest{
				Workloads: entry.Sweep.Workloads,
				Systems:   entry.Sweep.Systems,
				Fracs:     entry.Sweep.Fracs,
				Seeds:     entry.Sweep.Seeds,
				Expand:    entry.Sweep.Expand,
				Quick:     entry.Quick,
			},
			childIDs: entry.Sweep.Children,
		}
		// Re-expansion is deterministic, so the per-point request
		// coordinates come back for the results stream; catalog drift
		// just leaves them blank rather than failing the parent.
		if norm, points, err := sw.req.Points(); err == nil && len(points) == len(sw.childIDs) {
			sw.req = norm
			sw.points = points
		}
		if entry.State.Terminal() {
			s := *entry.Sweep
			sw.final = &s
		} else {
			// Crash mid-sweep: the parent must never replay as a zombie
			// in-progress job. It comes back failed; whatever children
			// reached the journal before the crash stay individually
			// reachable (and byte-identical) through its child IDs.
			j.State = StateFailed
			j.errMsg = "sweep interrupted by daemon restart"
			if j.finished.IsZero() || entry.FinishedUnixNS == 0 {
				j.finished = j.submitted
			}
		}
		j.progress.Store(entry.Progress)
		j.sweep = sw
	default:
		return nil, false
	}
	return j, true
}
