package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"
	"time"
)

// ReplayStats reports what a journal replay did: Recovered entries
// landed back in the registry (and, for done jobs with result bytes,
// the cache); Skipped entries were well-formed JSON the current build
// could not restore (bad ID, catalog drift, non-terminal state);
// Malformed lines did not parse — a torn final line from a crash
// mid-append counts here and is tolerated, never fatal.
type ReplayStats struct {
	Recovered int `json:"recovered"`
	Skipped   int `json:"skipped"`
	Malformed int `json:"malformed"`
}

// ReplayJournal reads a JSONL run journal and repopulates the engine
// from its terminal entries: each entry is restored into the registry
// under its original ID (born terminal, served by GET /v1/runs/{id}
// byte-identically to the pre-restart response), and done entries
// carrying result bytes are put back in the result cache, so a
// crash/restart cycle serves previously-completed runs from cache
// instead of recomputing them. Intended at startup, before the engine
// serves traffic; the registry's retention bounds apply to the restored
// window exactly as they do to live jobs.
//
// Replay is resilient by construction: malformed lines (including the
// torn final line a crash mid-append leaves behind) are counted and
// skipped, entries naming workloads/systems/experiments this build's
// catalog no longer has are counted and skipped, and a duplicate ID
// keeps the later entry. The returned error is only ever a read error
// from r itself.
func (e *Engine) ReplayJournal(r io.Reader) (ReplayStats, error) {
	var stats ReplayStats
	sc := bufio.NewScanner(r)
	// Journal lines carry whole serialized results; size the line buffer
	// for rendered experiment tables, not just sim metrics.
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	now := time.Now()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var entry JournalEntry
		if err := json.Unmarshal(line, &entry); err != nil {
			stats.Malformed++
			continue
		}
		j, ok := e.jobFromEntry(entry)
		if !ok {
			stats.Skipped++
			continue
		}
		e.reg.mu.Lock()
		e.reg.restoreLocked(j)
		if j.State == StateDone && j.key != "" && len(j.Result) > 0 {
			e.cache.Put(j.key, j.Result, j.simNS)
		}
		e.replayed++
		e.reg.mu.Unlock()
		stats.Recovered++
	}
	// Trim the restored window to the retention bounds in one pass, with
	// the journal detached: these jobs are already on disk, re-appending
	// them would duplicate the trail.
	e.reg.mu.Lock()
	e.reg.evictLocked(now)
	e.reg.mu.Unlock()
	return stats, sc.Err()
}

// ReplayJournalFile replays a journal file from disk. A missing file is
// a clean first boot, not an error.
func (e *Engine) ReplayJournalFile(path string) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return ReplayStats{}, nil
		}
		return ReplayStats{}, err
	}
	defer f.Close()
	return e.ReplayJournal(f)
}

// jobFromEntry rebuilds a terminal Job from one journal entry,
// revalidating the payload against the current catalog so the restored
// cache key is exactly the one a live submission of the same request
// would compute. Reports !ok for entries this build cannot restore.
func (e *Engine) jobFromEntry(entry JournalEntry) (*Job, bool) {
	// Only sweep parents may replay from a non-terminal entry (the
	// submission-time line); everything else journals exactly once, at
	// its terminal transition.
	if !entry.State.Terminal() && entry.Kind != KindSweep {
		return nil, false
	}
	if _, ok := jobIDNum(entry.ID); !ok {
		return nil, false
	}
	j := &Job{
		ID:        entry.ID,
		Kind:      entry.Kind,
		State:     entry.State,
		cached:    entry.Cached,
		submitted: time.Unix(0, entry.SubmittedUnixNS),
		wallNS:    entry.WallNS,
		simNS:     entry.SimNS,
		errMsg:    entry.Error,
		done:      make(chan struct{}),
	}
	j.finished = time.Unix(0, entry.FinishedUnixNS)
	j.doneClosed = true
	close(j.done) // born terminal: Wait returns immediately
	switch entry.Kind {
	case KindSim:
		norm, key, err := RunRequest{
			Workload: entry.Workload,
			System:   entry.System,
			Frac:     entry.Frac,
			Seed:     entry.Seed,
			Quick:    entry.Quick,
		}.Normalize()
		if err != nil {
			return nil, false // catalog drift: this build can't serve it
		}
		j.Sim = &norm
		j.key = key
		j.Result = entry.Metrics
		j.parentID = entry.Parent
	case KindExperiment:
		norm, key, err := ExperimentRequest{
			Experiment: entry.Experiment,
			Seed:       entry.Seed,
			Quick:      entry.Quick,
		}.Normalize()
		if err != nil {
			return nil, false
		}
		j.Exp = &norm
		j.key = key
		j.progress.Store(entry.Progress)
		if entry.Output != "" {
			j.Result = []byte(entry.Output)
		}
	case KindSweep:
		if entry.Sweep == nil {
			return nil, false
		}
		sw := &sweepState{
			req: SweepRequest{
				Workloads: entry.Sweep.Workloads,
				Systems:   entry.Sweep.Systems,
				Fracs:     entry.Sweep.Fracs,
				Seeds:     entry.Sweep.Seeds,
				Expand:    entry.Sweep.Expand,
				Quick:     entry.Quick,
			},
			childIDs: entry.Sweep.Children,
		}
		// Re-expansion is deterministic, so the per-point request
		// coordinates come back for the results stream; catalog drift
		// just leaves them blank rather than failing the parent.
		if norm, points, err := sw.req.Points(); err == nil && len(points) == len(sw.childIDs) {
			sw.req = norm
			sw.points = points
		}
		if entry.State.Terminal() {
			s := *entry.Sweep
			sw.final = &s
		} else {
			// Crash mid-sweep: the parent must never replay as a zombie
			// in-progress job. It comes back failed; whatever children
			// reached the journal before the crash stay individually
			// reachable (and byte-identical) through its child IDs.
			j.State = StateFailed
			j.errMsg = "sweep interrupted by daemon restart"
			if j.finished.IsZero() || entry.FinishedUnixNS == 0 {
				j.finished = j.submitted
			}
		}
		j.progress.Store(entry.Progress)
		j.sweep = sw
	default:
		return nil, false
	}
	return j, true
}
