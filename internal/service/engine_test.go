package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hopp/internal/experiments"
	"hopp/internal/sim"
)

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := NewEngine(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	return e
}

// quickReq is a real but fast simulation request.
func quickReq() RunRequest {
	frac := 0.25
	return RunRequest{Workload: "sequential", System: "fastswap", Frac: &frac, Seed: 1, Quick: true}
}

// waitDone polls a run to a terminal state with a test deadline.
func waitDone(t *testing.T, e *Engine, id string) RunStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := e.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

func TestNormalizeCanonicalizes(t *testing.T) {
	fr := 0.5
	a, keyA, err := RunRequest{Workload: "NPB-MG", System: "HoPP", Seed: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	_, keyB, err := RunRequest{Workload: " npb-mg ", System: "hopp", Frac: &fr, Seed: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("equivalent requests keyed differently:\n  %s\n  %s", keyA, keyB)
	}
	if a.Workload != "npb-mg" || a.System != "hopp" || *a.Frac != 0.5 {
		t.Fatalf("normalized form wrong: %+v", a)
	}
}

func TestNormalizeRejectsBadRequests(t *testing.T) {
	bad := 1.5
	cases := []struct {
		req  RunRequest
		want error
	}{
		{RunRequest{Workload: "nope", System: "hopp"}, ErrUnknownWorkload},
		{RunRequest{Workload: "npb-mg", System: "nope"}, ErrUnknownSystem},
		{RunRequest{Workload: "npb-mg", System: "hopp", Frac: &bad}, ErrBadFrac},
	}
	for _, c := range cases {
		if _, _, err := c.req.Normalize(); !errors.Is(err, c.want) {
			t.Errorf("Normalize(%+v) error = %v, want %v", c.req, err, c.want)
		}
	}
}

func TestSubmitWaitFetch(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	st, err := e.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached {
		t.Fatal("first submission reported cached")
	}
	final := waitDone(t, e, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if len(final.Metrics) == 0 {
		t.Fatal("done run has no metrics")
	}
	if final.SimNS <= 0 || final.WallNS <= 0 {
		t.Fatalf("missing timing: sim=%d wall=%d", final.SimNS, final.WallNS)
	}
	m := e.Metrics()
	sim := m.Jobs[KindSim]
	if sim.Submitted != 1 || sim.Completed != 1 || m.CacheMisses != 1 {
		t.Fatalf("counters off: %+v", m)
	}
}

func TestRepeatedRequestIsCacheHit(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	first, err := e.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	firstDone := waitDone(t, e, first.ID)

	// Same simulation spelled differently: canonicalization must map it
	// onto the cached entry.
	req := quickReq()
	req.Workload = "SEQUENTIAL"
	second, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("repeat = {cached:%v state:%s}, want cached+done", second.Cached, second.State)
	}
	if !bytes.Equal(second.Metrics, firstDone.Metrics) {
		t.Fatal("cache hit returned different bytes than the run that populated it")
	}
	if second.SimNS != firstDone.SimNS {
		t.Fatalf("cached SimNS %d != original %d", second.SimNS, firstDone.SimNS)
	}
	m := e.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache counters = hits %d misses %d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if got := m.Jobs[KindSim].Started; got != 1 {
		t.Fatalf("cache hit started a worker: jobs started = %d", got)
	}
}

// The acceptance-criteria regression: N concurrent clients submitting
// the identical (config, seed) must all receive byte-identical
// serialized Metrics, regardless of worker interleaving or whether
// their submission raced the cache fill.
func TestDeterminismAcrossConcurrentClients(t *testing.T) {
	const clients = 8
	e := newTestEngine(t, Options{Workers: 4})
	var wg sync.WaitGroup
	results := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := e.Submit(quickReq())
			if err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			final, err := e.Wait(ctx, st.ID)
			if err != nil {
				errs[i] = err
				return
			}
			if final.State != StateDone {
				errs[i] = fmt.Errorf("state %s: %s", final.State, final.Error)
				return
			}
			results[i] = final.Metrics
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("client %d got different metrics than client 0:\n%s\nvs\n%s",
				i, results[i], results[0])
		}
	}
}

func TestCancelQueuedRun(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	release := make(chan struct{})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		select {
		case <-release:
			return sim.Metrics{System: "test"}, nil
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
	first, err := e.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(second.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	st := waitDone(t, e, second.ID)
	if st.State != StateCancelled {
		t.Fatalf("queued-cancel state = %s, want cancelled", st.State)
	}
	close(release)
	if st := waitDone(t, e, first.ID); st.State != StateDone {
		t.Fatalf("first run state = %s, want done", st.State)
	}
	if got := e.Metrics().Jobs[KindSim].Cancelled; got != 1 {
		t.Fatalf("sim jobs cancelled = %d, want 1", got)
	}
}

func TestCancelRunningRun(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	started := make(chan struct{})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		close(started)
		<-ctx.Done()
		return sim.Metrics{}, ctx.Err()
	}
	st, err := e.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := e.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel running: %v", err)
	}
	final := waitDone(t, e, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if err := e.Cancel(st.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("Cancel finished run = %v, want ErrNotCancellable", err)
	}
}

func TestShutdownDrainsInFlightRuns(t *testing.T) {
	e := NewEngine(Options{Workers: 2})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		time.Sleep(20 * time.Millisecond)
		return sim.Metrics{System: "test"}, nil
	}
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := e.Submit(quickReq())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, id := range ids {
		st, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("run %s state = %s after drain, want done", id, st.State)
		}
	}
	if _, err := e.Submit(quickReq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrClosed", err)
	}
}

func TestShutdownDeadlineAbortsStuckRuns(t *testing.T) {
	e := NewEngine(Options{Workers: 1})
	started := make(chan struct{})
	e.runSim = func(ctx context.Context, req RunRequest) (sim.Metrics, error) {
		close(started)
		<-ctx.Done() // only a cancelled base context frees this run
		return sim.Metrics{}, ctx.Err()
	}
	st, err := e.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	final, err := e.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("stuck run state = %s after forced shutdown, want cancelled", final.State)
	}
}

func TestRunExperimentCachesRenderedOutput(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	var calls int
	e.runExp = func(ctx context.Context, exp experiments.Experiment, opts experiments.Options) ([]experiments.Table, error) {
		calls++
		return []experiments.Table{{Title: "T", Header: []string{"a"}, Rows: [][]string{{"1"}}}}, nil
	}
	var first, second bytes.Buffer
	if err := e.RunExperiment(context.Background(), "fig9", 1, true, &first); err != nil {
		t.Fatal(err)
	}
	if err := e.RunExperiment(context.Background(), "fig9", 1, true, &second); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("experiment executed %d times, want 1 (second should hit cache)", calls)
	}
	if first.String() != second.String() || first.Len() == 0 {
		t.Fatalf("cached output diverged:\n%q\nvs\n%q", first.String(), second.String())
	}
	if err := e.RunExperiment(context.Background(), "nope", 1, true, &first); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown experiment error = %v", err)
	}
}

func TestStatusUnknownRun(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	if _, err := e.Status("r999999"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("Status = %v, want ErrUnknownRun", err)
	}
	if err := e.Cancel("r999999"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("Cancel = %v, want ErrUnknownRun", err)
	}
}

func TestRunsListedInSubmissionOrder(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	var want []string
	for i := 0; i < 3; i++ {
		req := quickReq()
		req.Seed = int64(i + 1) // distinct keys: all real runs
		st, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
	}
	runs := e.Runs()
	if len(runs) != len(want) {
		t.Fatalf("Runs() = %d entries, want %d", len(runs), len(want))
	}
	for i, r := range runs {
		if r.ID != want[i] {
			t.Fatalf("Runs()[%d] = %s, want %s", i, r.ID, want[i])
		}
	}
}
