package service

import (
	"errors"
	"sync"
	"time"

	"hopp/internal/faults"
)

// ErrClientLimited rejects a submission because its client exhausted
// its per-client token bucket. The HTTP layer maps it to 429 with the
// same adaptive Retry-After hint queue overload uses; unlike
// ErrOverloaded it says nothing about the shared queue — other clients
// are still being admitted, which is the whole point.
var ErrClientLimited = errors.New("service: client rate limit exceeded, retry later")

// DefaultAdmissionClients bounds the distinct client buckets a limiter
// tracks; past it the stalest bucket is recycled, keeping the limiter
// O(configuration) under address-churning traffic.
const DefaultAdmissionClients = 4096

// clientBucket is one client's token bucket plus its admission counters.
type clientBucket struct {
	tokens   float64
	last     time.Time
	admitted uint64
	limited  uint64
}

// ClientLimiter is per-client fairness in front of the shared queue: a
// token bucket per client key (API key or remote address), refilled at
// rate tokens/sec up to burst. A hot client drains only its own bucket
// and collects 429s while everyone else's submissions keep flowing —
// before this layer, admission control was global and one flooding
// client could starve the queue for all.
//
// Determinism seam: the clock is an injectable now() (tests pin it, so
// refill arithmetic is exact, not sleep-calibrated), and the optional
// fault injector can force denials via faults.SiteAdmissionDeny.
type ClientLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second per client
	burst   float64 // bucket capacity (initial allowance)
	max     int     // distinct buckets tracked
	now     func() time.Time
	clients map[string]*clientBucket

	admitted uint64 // global admissions through this limiter
	limited  uint64 // global denials

	inject *faults.Injector
}

// NewClientLimiter builds a limiter admitting rate submissions/sec per
// client with bursts up to burst. maxClients <= 0 means
// DefaultAdmissionClients; burst < 1 is raised to 1 so a fresh client
// can always submit at least once.
func NewClientLimiter(rate, burst float64, maxClients int) *ClientLimiter {
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = DefaultAdmissionClients
	}
	return &ClientLimiter{
		rate:    rate,
		burst:   burst,
		max:     maxClients,
		now:     time.Now,
		clients: make(map[string]*clientBucket),
	}
}

// SetInjector threads a fault injector into the limiter;
// faults.SiteAdmissionDeny then forces denials regardless of bucket
// state.
func (l *ClientLimiter) SetInjector(in *faults.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inject = in
}

// Allow spends one token from key's bucket, reporting whether the
// submission is admitted. A nil limiter admits everything — the
// daemon's default when -client-rate is off.
func (l *ClientLimiter) Allow(key string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.clients[key]
	if !ok {
		if len(l.clients) >= l.max {
			l.evictStalestLocked()
		}
		b = &clientBucket{tokens: l.burst, last: now}
		l.clients[key] = b
	} else {
		if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		b.last = now
	}
	if l.inject.Hit(faults.SiteAdmissionDeny) || b.tokens < 1 {
		b.limited++
		l.limited++
		return false
	}
	b.tokens--
	b.admitted++
	l.admitted++
	return true
}

// evictStalestLocked recycles the least-recently-seen bucket; l.mu must
// be held. The evicted client starts over with a full burst on its next
// submission — strictly more permissive, never less, so recycling can't
// be used to starve anyone.
func (l *ClientLimiter) evictStalestLocked() {
	var stalest string
	var stalestAt time.Time
	first := true
	for key, b := range l.clients {
		if first || b.last.Before(stalestAt) {
			stalest, stalestAt, first = key, b.last, false
		}
	}
	if !first {
		delete(l.clients, stalest)
	}
}

// ClientAdmission is one client's admission counters in /metrics.
type ClientAdmission struct {
	Admitted uint64 `json:"admitted"`
	Limited  uint64 `json:"limited"`
}

// AdmissionSnapshot is the fairness layer's /metrics block: the
// configured bucket parameters, global admitted/limited totals, and the
// per-client breakdown (bounded by the tracked-clients cap;
// encoding/json sorts the map keys, so the serialized form is stable).
type AdmissionSnapshot struct {
	RatePerSec float64                    `json:"rate_per_sec"`
	Burst      float64                    `json:"burst"`
	Admitted   uint64                     `json:"admission_admitted"`
	Limited    uint64                     `json:"admission_limited"`
	Clients    int                        `json:"admission_clients"`
	PerClient  map[string]ClientAdmission `json:"per_client,omitempty"`
}

// Snapshot copies the limiter's counters. Nil-safe (reports a zero
// snapshot) so callers can snapshot unconditionally.
func (l *ClientLimiter) Snapshot() AdmissionSnapshot {
	if l == nil {
		return AdmissionSnapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := AdmissionSnapshot{
		RatePerSec: l.rate,
		Burst:      l.burst,
		Admitted:   l.admitted,
		Limited:    l.limited,
		Clients:    len(l.clients),
	}
	if len(l.clients) > 0 {
		s.PerClient = make(map[string]ClientAdmission, len(l.clients))
		for key, b := range l.clients {
			s.PerClient[key] = ClientAdmission{Admitted: b.admitted, Limited: b.limited}
		}
	}
	return s
}
