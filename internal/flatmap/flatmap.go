// Package flatmap provides an open-addressing hash map keyed by packed
// uint64 page keys, used on the simulator's per-access paths in place of
// Go's general map: the runtime map's hashed-key flexibility costs an
// indirect hash call plus group probing per operation, which profiles as
// several percent of a simulation run. Keys here are already
// well-distributed small integers, so one Fibonacci multiply picks the
// probe start and linear probing does the rest over a single flat array
// — no tombstones (deletion backward-shifts the cluster), no per-entry
// allocation.
package flatmap

// emptyKey marks a vacant slot. Packed page keys are VPN<<16|PID with
// VPN bounded by the RPT's 40-bit field, so all-ones can never collide
// with a real key.
const emptyKey = ^uint64(0)

// fib is 2^64/φ, the Fibonacci hashing multiplier.
const fib = 0x9E3779B97F4A7C15

// Map is a flat hash map from packed uint64 keys to values of type V.
// The zero Map is not usable; call New.
type Map[V any] struct {
	keys  []uint64
	vals  []V
	mask  uint64
	shift uint
	n     int
}

// New builds a map pre-sized for about capHint entries.
func New[V any](capHint int) *Map[V] {
	size := 8
	for size*3 < capHint*4 { // keep the initial load factor under 3/4
		size *= 2
	}
	m := &Map[V]{}
	m.init(size)
	return m
}

func (m *Map[V]) init(size int) {
	m.keys = make([]uint64, size)
	for i := range m.keys {
		m.keys[i] = emptyKey
	}
	m.vals = make([]V, size)
	m.mask = uint64(size - 1)
	m.shift = 64 - uint(trailingLog2(size))
	m.n = 0
}

func trailingLog2(size int) int {
	l := 0
	for s := size; s > 1; s >>= 1 {
		l++
	}
	return l
}

// home is the probe start for key k.
func (m *Map[V]) home(k uint64) uint64 { return (k * fib) >> m.shift }

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns the value stored for k.
func (m *Map[V]) Get(k uint64) (V, bool) {
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == k {
			return m.vals[i], true
		}
		if kk == emptyKey {
			var zero V
			return zero, false
		}
		i = (i + 1) & m.mask
	}
}

// Ptr returns a pointer to k's value slot for in-place mutation, or nil
// when k is absent. The pointer is invalidated by the next Put or
// Delete; callers must use it immediately and not retain it.
func (m *Map[V]) Ptr(k uint64) *V {
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == k {
			return &m.vals[i]
		}
		if kk == emptyKey {
			return nil
		}
		i = (i + 1) & m.mask
	}
}

// Has reports whether k is present.
func (m *Map[V]) Has(k uint64) bool {
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == k {
			return true
		}
		if kk == emptyKey {
			return false
		}
		i = (i + 1) & m.mask
	}
}

// Put stores v under k, replacing any existing value.
func (m *Map[V]) Put(k uint64, v V) {
	if (m.n+1)*4 > len(m.keys)*3 {
		m.grow()
	}
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == k {
			m.vals[i] = v
			return
		}
		if kk == emptyKey {
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
		i = (i + 1) & m.mask
	}
}

// Delete removes k, reporting whether it was present. The probe cluster
// is compacted in place (backward-shift deletion), so lookups never pay
// for tombstones.
func (m *Map[V]) Delete(k uint64) bool {
	i := m.home(k)
	for {
		kk := m.keys[i]
		if kk == emptyKey {
			return false
		}
		if kk == k {
			break
		}
		i = (i + 1) & m.mask
	}
	var zero V
	for {
		m.keys[i] = emptyKey
		m.vals[i] = zero
		j := i
		for {
			j = (j + 1) & m.mask
			kj := m.keys[j]
			if kj == emptyKey {
				m.n--
				return true
			}
			// kj may fill the hole only if its home position does not sit
			// inside the gap (i, j] — otherwise moving it would break its
			// own probe chain.
			if (j-m.home(kj))&m.mask >= (j-i)&m.mask {
				m.keys[i] = kj
				m.vals[i] = m.vals[j]
				i = j
				break
			}
		}
	}
}

// Range calls f for every entry until f returns false. Mutating the map
// during iteration is not supported, except through RangeDelete.
func (m *Map[V]) Range(f func(k uint64, v V) bool) {
	for i, kk := range m.keys {
		if kk != emptyKey && !f(kk, m.vals[i]) {
			return
		}
	}
}

// RangeDelete calls keep for every entry and removes those for which it
// returns false. Deletion happens after the scan, so keep sees a stable
// view.
func (m *Map[V]) RangeDelete(keep func(k uint64, v V) bool) {
	var victims []uint64
	for i, kk := range m.keys {
		if kk != emptyKey && !keep(kk, m.vals[i]) {
			victims = append(victims, kk)
		}
	}
	for _, k := range victims {
		m.Delete(k)
	}
}

func (m *Map[V]) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.init(2 * len(oldKeys))
	for i, kk := range oldKeys {
		if kk != emptyKey {
			m.Put(kk, oldVals[i])
		}
	}
}
