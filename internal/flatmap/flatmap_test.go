package flatmap

import (
	"math/rand"
	"testing"
)

// TestAgainstGoMap drives the flat map and a reference Go map through an
// identical randomized op stream and checks they never disagree.
func TestAgainstGoMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New[int](0)
	ref := map[uint64]int{}
	keys := make([]uint64, 512)
	for i := range keys {
		// Cluster keys to force long probe chains.
		keys[i] = uint64(rng.Intn(64))<<16 | uint64(rng.Intn(8))
	}
	for op := 0; op < 200000; op++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Int()
			m.Put(k, v)
			ref[k] = v
		case 2:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%#x) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		case 3:
			gotV, gotOK := m.Get(k)
			wantV, wantOK := ref[k]
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("op %d: Get(%#x) = %v,%v want %v,%v", op, k, gotV, gotOK, wantV, wantOK)
			}
			if m.Has(k) != wantOK {
				t.Fatalf("op %d: Has(%#x) = %v, want %v", op, k, !wantOK, wantOK)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
	n := 0
	m.Range(func(k uint64, v int) bool {
		if ref[k] != v {
			t.Fatalf("Range: key %#x = %d, want %d", k, v, ref[k])
		}
		n++
		return true
	})
	if n != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", n, len(ref))
	}
}

func TestRangeDelete(t *testing.T) {
	m := New[uint64](4)
	for i := uint64(0); i < 100; i++ {
		m.Put(i<<16, i)
	}
	m.RangeDelete(func(k, v uint64) bool { return v%2 == 0 })
	if m.Len() != 50 {
		t.Fatalf("Len = %d, want 50", m.Len())
	}
	for i := uint64(0); i < 100; i++ {
		if m.Has(i<<16) != (i%2 == 0) {
			t.Fatalf("key %d: presence = %v", i, m.Has(i<<16))
		}
	}
}
