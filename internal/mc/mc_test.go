package mc

import (
	"testing"

	"hopp/internal/hpd"
	"hopp/internal/memsim"
	"hopp/internal/rpt"
)

func newMC(t *testing.T) *Controller {
	t.Helper()
	return MustNew(Config{})
}

// missPage feeds n READ misses to distinct cachelines of page p.
func missPage(c *Controller, p memsim.PPN, n int) {
	for i := 0; i < n; i++ {
		c.ObserveMiss(0, p.LineAddr(i%memsim.LinesPerPage), false)
	}
}

func TestHotPageFlow(t *testing.T) {
	c := newMC(t)
	c.SetMapping(100, 7, 555, false, rpt.PageBase)
	missPage(c, 100, 8) // default threshold N = 8
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
	hps := c.Drain(0)
	hp := hps[0]
	if hp.PID != 7 || hp.VPN != 555 || hp.PPN != 100 || !hp.Mapped {
		t.Fatalf("hot page = %+v", hp)
	}
}

func TestWriteMissFillsFeedHPD(t *testing.T) {
	// §III-B: a WRITE miss first generates a READ trace (the fill), so
	// write misses count toward hotness; only writebacks are omitted,
	// and those never reach ObserveMiss.
	c := newMC(t)
	c.SetMapping(5, 1, 10, false, rpt.PageBase)
	for i := 0; i < 8; i++ {
		c.ObserveMiss(0, memsim.PPN(5).LineAddr(i), true)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d; write-miss fills must reach HPD", c.Pending())
	}
	s := c.Stats()
	if s.WriteMisses != 8 || s.ReadMisses != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissBytes != 8*memsim.LineSize {
		t.Fatalf("MissBytes = %d", s.MissBytes)
	}
}

func TestUnmappedHotPageFlagged(t *testing.T) {
	c := newMC(t)
	missPage(c, 42, 8) // no RPT mapping installed
	hps := c.Drain(0)
	if len(hps) != 1 || hps[0].Mapped {
		t.Fatalf("hot pages = %+v", hps)
	}
	if c.Stats().HotUnmapped != 1 {
		t.Fatal("HotUnmapped not counted")
	}
}

func TestSharedAndHugeForwarded(t *testing.T) {
	c := newMC(t)
	c.SetMapping(9, 2, 77, true, rpt.Page2M)
	missPage(c, 9, 8)
	hp := c.Drain(0)[0]
	if !hp.Shared || hp.Huge != rpt.Page2M {
		t.Fatalf("flags not forwarded: %+v", hp)
	}
}

func TestClearMapping(t *testing.T) {
	c := newMC(t)
	c.SetMapping(3, 1, 30, false, rpt.PageBase)
	c.ClearMapping(3)
	missPage(c, 3, 8)
	if hp := c.Drain(0)[0]; hp.Mapped {
		t.Fatal("cleared mapping still resolves")
	}
}

func TestPreload(t *testing.T) {
	c := newMC(t)
	c.Preload(11, 4, 40)
	missPage(c, 11, 8)
	hp := c.Drain(0)[0]
	if !hp.Mapped || hp.PID != 4 || hp.VPN != 40 {
		t.Fatalf("preloaded mapping = %+v", hp)
	}
	// Preload traffic must not pollute the steady-state RPT ledger.
	if r := c.Stats().RPTBandwidthRatio(); r < 0 {
		t.Fatalf("negative RPT ratio %f", r)
	}
}

func TestBufferOverflowDropsOldest(t *testing.T) {
	c := MustNew(Config{BufferCap: 2, HPD: hpd.Config{Threshold: 1}})
	for p := memsim.PPN(0); p < 3; p++ {
		c.SetMapping(p, 1, memsim.VPN(p), false, rpt.PageBase)
		missPage(c, p, 1)
	}
	if c.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d", c.Stats().Dropped)
	}
	hps := c.Drain(0)
	if len(hps) != 2 || hps[0].PPN != 1 || hps[1].PPN != 2 {
		t.Fatalf("kept wrong window: %+v", hps)
	}
}

func TestDrainMax(t *testing.T) {
	c := MustNew(Config{HPD: hpd.Config{Threshold: 1}})
	for p := memsim.PPN(0); p < 5; p++ {
		missPage(c, p, 1)
	}
	if got := c.Drain(2); len(got) != 2 {
		t.Fatalf("Drain(2) = %d records", len(got))
	}
	if c.Pending() != 3 {
		t.Fatalf("Pending = %d", c.Pending())
	}
}

// The Table V sanity bound: at N=8 with a streaming workload, hot-page
// write bandwidth must stay well below 1% of miss traffic.
func TestHPDBandwidthSmall(t *testing.T) {
	c := newMC(t)
	for p := memsim.PPN(0); p < 2000; p++ {
		c.SetMapping(p, 1, memsim.VPN(p), false, rpt.PageBase)
		missPage(c, p, 64) // full page streamed: 64 lines read
	}
	s := c.Stats()
	ratio := s.HPDBandwidthRatio()
	if ratio <= 0 || ratio > 0.01 {
		t.Fatalf("HPD bandwidth ratio = %f, want (0, 1%%]", ratio)
	}
	if rpt := s.RPTBandwidthRatio(); rpt > ratio {
		t.Fatalf("RPT ratio %f should be far below HPD ratio %f", rpt, ratio)
	}
}

func TestTimestampPropagated(t *testing.T) {
	c := MustNew(Config{HPD: hpd.Config{Threshold: 1}})
	c.ObserveMiss(12345, memsim.PPN(1).LineAddr(0), false)
	if hp := c.Drain(0)[0]; hp.Time != 12345 {
		t.Fatalf("Time = %d", hp.Time)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := New(Config{HPD: hpd.Config{Sets: 3}}); err == nil {
		t.Error("bad HPD config accepted")
	}
	if _, err := New(Config{RPTCache: rpt.CacheConfig{SizeBytes: 7}}); err == nil {
		t.Error("bad RPT cache config accepted")
	}
}

func BenchmarkObserveMiss(b *testing.B) {
	c := MustNew(Config{})
	for p := memsim.PPN(0); p < 1024; p++ {
		c.Preload(p, 1, memsim.VPN(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ObserveMiss(0, memsim.PAddr(i%(1024*memsim.PageSize)), false)
		if i%4096 == 0 {
			c.Drain(0)
		}
	}
}
