package mc

import (
	"testing"

	"hopp/internal/hpd"
	"hopp/internal/memsim"
	"hopp/internal/rpt"
	"hopp/internal/vclock"
)

func TestMultiDefaultsToOneChannel(t *testing.T) {
	m := MustNewMulti(MultiConfig{})
	if m.Channels() != 1 {
		t.Fatalf("channels = %d", m.Channels())
	}
}

func TestMultiInterleavedThresholdReduction(t *testing.T) {
	// 4 interleaved channels: each sees every 4th line of a page, so the
	// effective per-channel threshold becomes 8/4 = 2.
	m := MustNewMulti(MultiConfig{Channels: 4, Interleaved: true})
	m.SetMapping(7, 1, 70, false, rpt.PageBase)
	// Touch the first 8 lines of the page: each channel sees 2 misses,
	// which must be enough to extract the page (on every channel that
	// crossed its reduced threshold).
	for i := 0; i < 8; i++ {
		m.ObserveMiss(0, memsim.PPN(7).LineAddr(i), false)
	}
	if got := len(m.Drain(0)); got == 0 {
		t.Fatal("reduced threshold did not extract the page")
	}
}

func TestMultiKeepThreshold(t *testing.T) {
	m := MustNewMulti(MultiConfig{Channels: 4, Interleaved: true, KeepThreshold: true,
		PerChannel: Config{HPD: hpd.Config{Threshold: 8}}})
	m.SetMapping(7, 1, 70, false, rpt.PageBase)
	for i := 0; i < 8; i++ {
		m.ObserveMiss(0, memsim.PPN(7).LineAddr(i), false)
	}
	if got := len(m.Drain(0)); got != 0 {
		t.Fatalf("KeepThreshold channels extracted after only 2 per-channel misses: %d", got)
	}
}

func TestMultiInterleavedRepeatedExtractions(t *testing.T) {
	// With interleaving, several channels can extract the same page —
	// the §III-B repeated extraction the trainer deduplicates.
	m := MustNewMulti(MultiConfig{Channels: 2, Interleaved: true})
	m.SetMapping(3, 1, 30, false, rpt.PageBase)
	for i := 0; i < memsim.LinesPerPage; i++ {
		m.ObserveMiss(vclock.Time(i), memsim.PPN(3).LineAddr(i), false)
	}
	hps := m.Drain(0)
	if len(hps) != 2 {
		t.Fatalf("extractions = %d, want one per channel", len(hps))
	}
	for _, hp := range hps {
		if hp.VPN != 30 || !hp.Mapped {
			t.Fatalf("bad record %+v", hp)
		}
	}
}

func TestMultiPartitionedRouting(t *testing.T) {
	// Non-interleaved: a page's lines all hit one channel; its full 8
	// misses land there and extract exactly once.
	m := MustNewMulti(MultiConfig{Channels: 4, Interleaved: false})
	m.SetMapping(5, 1, 50, false, rpt.PageBase)
	for i := 0; i < 8; i++ {
		m.ObserveMiss(0, memsim.PPN(5).LineAddr(i), false)
	}
	if got := len(m.Drain(0)); got != 1 {
		t.Fatalf("extractions = %d, want 1", got)
	}
}

func TestMultiDrainMergesByTime(t *testing.T) {
	m := MustNewMulti(MultiConfig{Channels: 2, Interleaved: false,
		PerChannel: Config{HPD: hpd.Config{Threshold: 1}}})
	// Pages 2 and 3 route to different channels (ppn%2); interleave
	// their observation times.
	m.SetMapping(2, 1, 20, false, rpt.PageBase)
	m.SetMapping(3, 1, 30, false, rpt.PageBase)
	m.ObserveMiss(200, memsim.PPN(3).LineAddr(0), false)
	m.ObserveMiss(100, memsim.PPN(2).LineAddr(0), false)
	hps := m.Drain(0)
	if len(hps) != 2 {
		t.Fatalf("records = %d", len(hps))
	}
	if !(hps[0].Time <= hps[1].Time) {
		t.Fatalf("drain not time-ordered: %v then %v", hps[0].Time, hps[1].Time)
	}
}

func TestMultiMaintenanceBroadcast(t *testing.T) {
	m := MustNewMulti(MultiConfig{Channels: 2, Interleaved: true,
		PerChannel: Config{HPD: hpd.Config{Threshold: 1}}})
	m.SetMapping(9, 4, 90, false, rpt.PageBase)
	// Both channels must resolve the mapping.
	m.ObserveMiss(0, memsim.PPN(9).LineAddr(0), false) // channel 0
	m.ObserveMiss(0, memsim.PPN(9).LineAddr(1), false) // channel 1
	for _, hp := range m.Drain(0) {
		if !hp.Mapped || hp.VPN != 90 {
			t.Fatalf("channel missed broadcast mapping: %+v", hp)
		}
	}
	m.ClearMapping(9)
	m.ObserveMiss(0, memsim.PPN(9).LineAddr(2), false)
	m.ObserveMiss(0, memsim.PPN(9).LineAddr(3), false)
	for _, hp := range m.Drain(0) {
		if hp.Mapped {
			t.Fatalf("channel missed broadcast clear: %+v", hp)
		}
	}
}

func TestMultiAggregateStats(t *testing.T) {
	m := MustNewMulti(MultiConfig{Channels: 2, Interleaved: true})
	for i := 0; i < 16; i++ {
		m.ObserveMiss(0, memsim.PPN(1).LineAddr(i), false)
	}
	s := m.Stats()
	if s.ReadMisses != 16 || s.MissBytes != 16*memsim.LineSize {
		t.Fatalf("aggregate stats = %+v", s)
	}
	if m.HPDStats().Accesses != 16 {
		t.Fatalf("HPD accesses = %d", m.HPDStats().Accesses)
	}
	if m.RPTCacheStats().Lookups == 0 {
		t.Fatal("no RPT lookups aggregated")
	}
}

func TestMultiBadConfig(t *testing.T) {
	if _, err := NewMulti(MultiConfig{Channels: -1}); err == nil {
		t.Error("negative channels accepted")
	}
	if _, err := NewMulti(MultiConfig{Channels: 2, PerChannel: Config{HPD: hpd.Config{Sets: 3}}}); err == nil {
		t.Error("bad per-channel config accepted")
	}
}
