// Package mc assembles HoPP's modified memory controller (Fig. 4, steps
// 1–2): LLC READ misses flow into the hot page detection table
// (internal/hpd); pages crossing the hot threshold are translated by the
// reverse page table cache (internal/rpt) into {PID, VPN} combos and
// appended to the hot page area — a reserved DRAM ring the HoPP software
// drains (step 3).
//
// The controller also keeps the bandwidth ledger behind Table V: every
// observed miss moves one 64 B cacheline; every hot-page extraction
// writes one 8 B combo record; every RPT cache miss/writeback moves one
// 8 B entry to or from DRAM.
package mc

import (
	"hopp/internal/hpd"
	"hopp/internal/memsim"
	"hopp/internal/rpt"
	"hopp/internal/vclock"
)

// HotPage is one record in the hot page area: the output of the hardware
// and the input of the prefetch training framework.
type HotPage struct {
	// Time is when the extraction happened. Real hardware conveys order
	// implicitly; the simulator timestamps for timeliness accounting.
	Time vclock.Time
	PID  memsim.PID
	VPN  memsim.VPN
	// PPN is kept for diagnostics; the software side keys on PID+VPN.
	PPN memsim.PPN
	// Shared and Huge are forwarded from the RPT entry for the software
	// to exploit (§III-C: "It is up to the software to use this
	// information for better predictions").
	Shared bool
	Huge   rpt.HugeClass
	// Mapped is false when the RPT had no valid entry for the PPN (e.g.
	// a kernel page); the software drops such records.
	Mapped bool
}

// HotRecordSize is the in-DRAM size of one hot page combo record.
const HotRecordSize = 8

// Config configures the controller.
type Config struct {
	// HPD is the hot page detection geometry (defaults per §III-B).
	HPD hpd.Config
	// RPTCache is the RPT cache geometry (defaults per §III-C).
	RPTCache rpt.CacheConfig
	// BufferCap is the hot page area capacity in records; when the
	// software falls behind, the oldest records are overwritten.
	// Default 1 << 16.
	BufferCap int
}

// Stats is the controller's bandwidth and event ledger.
type Stats struct {
	// ReadMisses and WriteMisses count LLC misses observed, by kind.
	ReadMisses  uint64
	WriteMisses uint64
	// HotEmitted counts hot page records appended to the hot page area.
	HotEmitted uint64
	// HotUnmapped counts hot pages whose RPT entry was invalid.
	HotUnmapped uint64
	// Dropped counts hot records lost to buffer overwrite.
	Dropped uint64
	// MissBytes is total LLC-miss traffic (64 B per miss, both kinds).
	MissBytes uint64
	// HotBytes is traffic from writing hot page combos (8 B each).
	HotBytes uint64
	// RPTBytes is traffic from RPT cache fills and writebacks.
	RPTBytes uint64
}

// HPDBandwidthRatio is extra bandwidth spent writing hot pages relative
// to the application's own memory traffic — Table V "HPD" row.
func (s Stats) HPDBandwidthRatio() float64 {
	if s.MissBytes == 0 {
		return 0
	}
	return float64(s.HotBytes) / float64(s.MissBytes)
}

// RPTBandwidthRatio is extra bandwidth spent on RPT DRAM queries —
// Table V "RPT" row.
func (s Stats) RPTBandwidthRatio() float64 {
	if s.MissBytes == 0 {
		return 0
	}
	return float64(s.RPTBytes) / float64(s.MissBytes)
}

// Controller is the modified memory controller.
type Controller struct {
	hpd      *hpd.Table
	rptTable *rpt.Table
	rptCache *rpt.Cache

	// buf is the hot page area, a ring of up to bufCap records. It
	// starts small and doubles on demand while below bufCap, so an idle
	// or lightly-loaded controller never pays for the full reserved
	// area; records are dropped (oldest first) only once the ring has
	// reached bufCap and is full — exactly the fixed-size behavior.
	buf    []HotPage
	bufCap int
	head   int
	tail   int
	count  int

	stats Stats

	rptBytesBase uint64
}

// New builds a controller; zero-valued config fields take the paper's
// defaults.
func New(cfg Config) (*Controller, error) {
	table, err := hpd.New(cfg.HPD)
	if err != nil {
		return nil, err
	}
	rptTable := rpt.NewTable()
	cache, err := rpt.NewCache(rptTable, cfg.RPTCache)
	if err != nil {
		return nil, err
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = 1 << 16
	}
	initial := cfg.BufferCap
	if initial > 256 {
		initial = 256
	}
	return &Controller{
		hpd:      table,
		rptTable: rptTable,
		rptCache: cache,
		buf:      make([]HotPage, initial),
		bufCap:   cfg.BufferCap,
	}, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// ObserveMiss feeds one LLC miss to the controller. Both READ and WRITE
// misses reach HPD, because a write miss first fetches the line — "a
// WRITE-miss operation will first generate a READ trace" (§III-B). What
// the design omits is the deferred WRITE (writeback) traffic, which the
// simulation does not route through ObserveMiss at all; RDMA-completion
// DMA writes likewise bypass it.
//
//hopplint:hotpath
func (c *Controller) ObserveMiss(now vclock.Time, pa memsim.PAddr, write bool) {
	if write {
		c.stats.WriteMisses++
	} else {
		c.stats.ReadMisses++
	}
	ppn := pa.Page()
	if !c.hpd.Access(ppn) {
		return
	}
	entry := c.rptCache.Lookup(ppn)
	c.accountRPT()
	hp := HotPage{
		Time:   now,
		PID:    entry.PID,
		VPN:    entry.VPN,
		PPN:    ppn,
		Shared: entry.Shared,
		Huge:   entry.Huge,
		Mapped: entry.Valid,
	}
	if !entry.Valid {
		c.stats.HotUnmapped++
	}
	c.push(hp)
	c.stats.HotEmitted++
}

func (c *Controller) accountRPT() {
	total := c.rptTable.DRAMBytes()
	c.stats.RPTBytes = total - c.rptBytesBase
}

func (c *Controller) push(hp HotPage) {
	if c.count == len(c.buf) {
		if len(c.buf) < c.bufCap {
			c.grow()
		} else {
			c.tail++
			if c.tail == len(c.buf) {
				c.tail = 0
			}
			c.count--
			c.stats.Dropped++
		}
	}
	c.buf[c.head] = hp
	c.head++
	if c.head == len(c.buf) {
		c.head = 0
	}
	c.count++
}

// grow doubles the ring (clamped to bufCap), linearizing so the oldest
// record lands at index 0.
func (c *Controller) grow() {
	n := 2 * len(c.buf)
	if n > c.bufCap {
		n = c.bufCap
	}
	//hopplint:allocok amortized ring doubling clamped to bufCap; the warmed ring is reused forever after
	grown := make([]HotPage, n)
	m := copy(grown, c.buf[c.tail:])
	copy(grown[m:], c.buf[:c.tail])
	c.buf = grown
	c.tail = 0
	c.head = c.count
}

// Drain removes and returns up to max hot page records (all when
// max <= 0), oldest first. This is the HoPP software's read of the hot
// page area.
func (c *Controller) Drain(max int) []HotPage {
	n := c.count
	if max > 0 && max < n {
		n = max
	}
	return c.DrainInto(make([]HotPage, 0, n), max)
}

// DrainInto is Drain appending into a caller-owned buffer, the
// allocation-free form the simulator hot loop uses: the machine hands
// the same backing slice back on every drain, so steady-state draining
// costs no heap traffic.
//
//hopplint:hotpath
func (c *Controller) DrainInto(buf []HotPage, max int) []HotPage {
	n := c.count
	if max > 0 && max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		//hopplint:allocok appends into the caller-owned drain buffer; the machine hands the same backing slice back every drain
		buf = append(buf, c.buf[c.tail])
		c.tail++
		if c.tail == len(c.buf) {
			c.tail = 0
		}
	}
	c.count -= n
	return buf
}

// Pending returns the number of undrained hot page records.
func (c *Controller) Pending() int { return c.count }

// Stats returns a copy of the ledger. MissBytes and HotBytes are pure
// functions of the miss and emit counters, so ObserveMiss does not
// maintain them per event; they are filled in here.
func (c *Controller) Stats() Stats {
	c.accountRPT()
	s := c.stats
	s.MissBytes = memsim.LineSize * (s.ReadMisses + s.WriteMisses)
	s.HotBytes = HotRecordSize * s.HotEmitted
	return s
}

// HPDStats exposes the hot page detection table's counters.
func (c *Controller) HPDStats() hpd.Stats { return c.hpd.Stats() }

// RPTCacheStats exposes the RPT cache's counters.
func (c *Controller) RPTCacheStats() rpt.CacheStats { return c.rptCache.Stats() }

// SetMapping is the kernel maintenance hook for PTE establishment
// (set_pte_at / set_pmd_at in §V): it records PPN → {PID, VPN} in the
// RPT via the cache.
func (c *Controller) SetMapping(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN, shared bool, huge rpt.HugeClass) {
	c.rptCache.Update(ppn, rpt.Entry{PID: pid, VPN: vpn, Shared: shared, Huge: huge, Valid: true})
}

// ClearMapping is the pte_clear / pmd_clear hook.
func (c *Controller) ClearMapping(ppn memsim.PPN) {
	c.rptCache.Invalidate(ppn)
}

// Preload bulk-builds the RPT directly in DRAM, modelling HoPP's startup
// traversal of all existing page tables (§III-C). The traffic for this
// one-time build is excluded from the steady-state bandwidth ledger.
func (c *Controller) Preload(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN) {
	c.rptTable.Store(ppn, rpt.Entry{PID: pid, VPN: vpn, Valid: true}.Pack())
	c.rptBytesBase = c.rptTable.DRAMBytes()
}
