package mc

import (
	"fmt"
	"sort"

	"hopp/internal/hpd"
	"hopp/internal/memsim"
	"hopp/internal/rpt"
	"hopp/internal/vclock"
)

// Tracker is the memory-side trace source the machine drives: the
// single-channel Controller, the multi-channel composition below, and
// the §V HMTT-based prototype all implement it.
type Tracker interface {
	// ObserveMiss feeds one LLC miss.
	ObserveMiss(now vclock.Time, pa memsim.PAddr, write bool)
	// Drain removes up to max buffered hot page records (all if max<=0).
	Drain(max int) []HotPage
	// DrainInto is Drain appending into a caller-owned buffer, so a
	// steady-state drain loop allocates nothing.
	DrainInto(buf []HotPage, max int) []HotPage
	// Pending reports how many hot page records await draining. The
	// machine gates DrainInto on it, keeping the common no-hot-page DRAM
	// miss to a counter check. Implementations may do work to answer
	// (the §V prototype runs its software pipeline).
	Pending() int
	// SetMapping is the set_pte_at maintenance hook.
	SetMapping(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN, shared bool, huge rpt.HugeClass)
	// ClearMapping is the pte_clear maintenance hook.
	ClearMapping(ppn memsim.PPN)
	// Stats returns the aggregate bandwidth/event ledger.
	Stats() Stats
	// RPTCacheStats returns aggregate RPT cache counters.
	RPTCacheStats() rpt.CacheStats
	// HPDStats returns aggregate hot page detection counters.
	HPDStats() hpd.Stats
}

var _ Tracker = (*Controller)(nil)

// MultiConfig configures a multi-channel memory controller per §III-B's
// "impact of multiple memory channels" discussion.
type MultiConfig struct {
	// Channels is the number of memory controllers. Default 1.
	Channels int
	// Interleaved spreads consecutive cachelines of a page across
	// channels (the common BIOS configuration); false partitions the
	// physical address space so each page lives wholly in one channel.
	Interleaved bool
	// PerChannel configures each controller. When Interleaved, the HPD
	// threshold is divided by the channel count ("we need to reduce N"),
	// floored at 1, unless the caller set an explicit threshold and
	// KeepThreshold.
	PerChannel Config
	// KeepThreshold disables the automatic N reduction.
	KeepThreshold bool
}

// Multi is a bank of per-channel controllers whose hot page outputs are
// merged in timestamp order — "different hot pages are extracted from
// different MCs; we can merge them in the prefetch training framework"
// (§III-B). Repeated extractions of one page from several interleaved
// channels are expected; the training framework deduplicates them.
type Multi struct {
	cfg      MultiConfig
	channels []*Controller
}

// NewMulti builds the controller bank.
func NewMulti(cfg MultiConfig) (*Multi, error) {
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("mc: channel count %d", cfg.Channels)
	}
	per := cfg.PerChannel
	if cfg.Interleaved && !cfg.KeepThreshold && cfg.Channels > 1 {
		n := per.HPD.Threshold
		if n == 0 {
			n = 8
		}
		n /= cfg.Channels
		if n < 1 {
			n = 1
		}
		per.HPD.Threshold = n
	}
	m := &Multi{cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		c, err := New(per)
		if err != nil {
			return nil, err
		}
		m.channels = append(m.channels, c)
	}
	return m, nil
}

// MustNewMulti is NewMulti for known-good configs.
func MustNewMulti(cfg MultiConfig) *Multi {
	m, err := NewMulti(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Channels returns the number of controllers.
func (m *Multi) Channels() int { return len(m.channels) }

// route picks the channel owning a physical address.
func (m *Multi) route(pa memsim.PAddr) *Controller {
	n := uint64(len(m.channels))
	if n == 1 {
		return m.channels[0]
	}
	if m.cfg.Interleaved {
		return m.channels[pa.Line()%n]
	}
	return m.channels[uint64(pa.Page())%n]
}

// ObserveMiss implements Tracker.
func (m *Multi) ObserveMiss(now vclock.Time, pa memsim.PAddr, write bool) {
	m.route(pa).ObserveMiss(now, pa, write)
}

// Drain implements Tracker: hot pages from all channels, merged into
// global timestamp order.
func (m *Multi) Drain(max int) []HotPage {
	if len(m.channels) == 1 {
		return m.channels[0].Drain(max)
	}
	return m.DrainInto(nil, max)
}

// DrainInto implements Tracker: channels are appended in order and the
// appended region stably sorted by timestamp, so the merged sequence is
// identical to Drain's.
func (m *Multi) DrainInto(buf []HotPage, max int) []HotPage {
	if len(m.channels) == 1 {
		return m.channels[0].DrainInto(buf, max)
	}
	start := len(buf)
	for _, c := range m.channels {
		buf = c.DrainInto(buf, 0)
	}
	merged := buf[start:]
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Time < merged[j].Time })
	if max > 0 && len(merged) > max {
		// Requeue semantics are not needed by any caller; the machine
		// always drains fully. Truncate defensively.
		buf = buf[:start+max]
	}
	return buf
}

// Pending implements Tracker: the sum of per-channel backlogs.
func (m *Multi) Pending() int {
	n := 0
	for _, c := range m.channels {
		n += c.Pending()
	}
	return n
}

// SetMapping implements Tracker: maintenance broadcasts to every
// channel's RPT cache (each MC caches the one shared in-DRAM RPT).
func (m *Multi) SetMapping(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN, shared bool, huge rpt.HugeClass) {
	for _, c := range m.channels {
		c.SetMapping(ppn, pid, vpn, shared, huge)
	}
}

// ClearMapping implements Tracker.
func (m *Multi) ClearMapping(ppn memsim.PPN) {
	for _, c := range m.channels {
		c.ClearMapping(ppn)
	}
}

// Stats implements Tracker: the sum over channels.
func (m *Multi) Stats() Stats {
	var s Stats
	for _, c := range m.channels {
		cs := c.Stats()
		s.ReadMisses += cs.ReadMisses
		s.WriteMisses += cs.WriteMisses
		s.HotEmitted += cs.HotEmitted
		s.HotUnmapped += cs.HotUnmapped
		s.Dropped += cs.Dropped
		s.MissBytes += cs.MissBytes
		s.HotBytes += cs.HotBytes
		s.RPTBytes += cs.RPTBytes
	}
	return s
}

// RPTCacheStats implements Tracker.
func (m *Multi) RPTCacheStats() rpt.CacheStats {
	var s rpt.CacheStats
	for _, c := range m.channels {
		cs := c.RPTCacheStats()
		s.Lookups += cs.Lookups
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Writebacks += cs.Writebacks
	}
	return s
}

// HPDStats implements Tracker.
func (m *Multi) HPDStats() hpd.Stats {
	var s hpd.Stats
	for _, c := range m.channels {
		cs := c.HPDStats()
		s.Accesses += cs.Accesses
		s.HotPages += cs.HotPages
		s.Insertions += cs.Insertions
		s.Evictions += cs.Evictions
		s.SendSuppressed += cs.SendSuppressed
		s.EvictedBeforeHot += cs.EvictedBeforeHot
	}
	return s
}

var _ Tracker = (*Multi)(nil)
