package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Seed: 1, Quick: true} }

// cell parses a table cell as a float, stripping a trailing %.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func runExp(t *testing.T, id string) []Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	tables, err := e.Run(context.Background(), quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	return tables
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"breakdown",
		"table2", "table3", "table4", "table5",
		"fig1", "fig2", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig21", "fig22",
		"baselines",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
}

func TestTablePrinting(t *testing.T) {
	tab := Table{
		Title:  "T",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
		Note:   "note",
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "xxxxx", "bbbb", "-- note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

// Table II shape: the hot-page ratio must never rise with N, and must
// strictly fall for at least one workload.
func TestTable2Shape(t *testing.T) {
	tab := runExp(t, "table2")[0]
	fell := false
	for _, row := range tab.Rows {
		for i := 2; i < len(row); i++ {
			a, b := cell(t, row[i-1]), cell(t, row[i])
			if b > a+0.01 {
				t.Fatalf("%s: ratio rose from %v to %v", row[0], row[i-1], row[i])
			}
			if b < a-0.01 {
				fell = true
			}
		}
	}
	if !fell {
		t.Fatal("hot-page ratio never fell with N")
	}
}

// Table III shape: hit rate non-decreasing in size; ≥0.99 at 64KB.
func TestTable3Shape(t *testing.T) {
	tab := runExp(t, "table3")[0]
	for _, row := range tab.Rows {
		for i := 2; i < len(row); i++ {
			if cell(t, row[i]) < cell(t, row[i-1])-0.02 {
				t.Fatalf("%s: hit rate fell: %v", row[0], row)
			}
		}
		if last := cell(t, row[len(row)-1]); last < 0.99 {
			t.Fatalf("%s: 64KB hit rate %v < 0.99", row[0], last)
		}
	}
}

// Table V shape: HPD bandwidth small but nonzero; RPT far smaller.
func TestTable5Shape(t *testing.T) {
	tab := runExp(t, "table5")[0]
	for _, row := range tab.Rows {
		hpdBW, rptBW := cell(t, row[1]), cell(t, row[2])
		if hpdBW <= 0 || hpdBW > 1.0 {
			t.Fatalf("%s: HPD bandwidth %v%% out of (0,1]", row[0], hpdBW)
		}
		if rptBW > hpdBW {
			t.Fatalf("%s: RPT bandwidth above HPD", row[0])
		}
	}
}

// Fig. 1 shape: HoPP's coverage beats Fastswap's beats Leap's on the
// intertwined microbenchmark.
func TestFig1Shape(t *testing.T) {
	tab := runExp(t, "fig1")[0]
	cov := map[string]float64{}
	for _, row := range tab.Rows {
		cov[row[0]] = cell(t, row[2])
	}
	if !(cov["HoPP"] > cov["Fastswap"] && cov["Fastswap"] > cov["Leap"]) {
		t.Fatalf("coverage ordering wrong: %v", cov)
	}
}

// Fig. 9 shape: HoPP ≥ Fastswap on every row, at both memory limits,
// and the averages degrade as memory shrinks.
func TestFig9Shape(t *testing.T) {
	tab := runExp(t, "fig9")[0]
	for _, row := range tab.Rows {
		f50, h50 := cell(t, row[1]), cell(t, row[2])
		f25, h25 := cell(t, row[3]), cell(t, row[4])
		if h50 < f50-0.02 || h25 < f25-0.02 {
			t.Fatalf("%s: HoPP below Fastswap: %v", row[0], row)
		}
		if row[0] == "Average" {
			if f25 > f50 || h25 > h50 {
				t.Fatalf("averages improved with less memory: %v", row)
			}
		}
	}
}

// Fig. 10 shape: HoPP's prefetcher accuracy ≥ 0.9 everywhere.
func TestFig10Shape(t *testing.T) {
	tab := runExp(t, "fig10")[0]
	for _, row := range tab.Rows {
		if acc := cell(t, row[2]); acc < 0.9 {
			t.Fatalf("%s: HoPP accuracy %v < 0.9", row[0], acc)
		}
	}
}

// Fig. 11 shape: HoPP coverage beats Fastswap's on average and the
// DRAM-hit share dominates the swapcache share overall.
func TestFig11Shape(t *testing.T) {
	tab := runExp(t, "fig11")[0]
	var fast, hopp, dram, swapc float64
	for _, row := range tab.Rows {
		fast += cell(t, row[1])
		hopp += cell(t, row[2])
		dram += cell(t, row[3])
		swapc += cell(t, row[4])
	}
	if hopp <= fast {
		t.Fatalf("HoPP total coverage %v not above Fastswap %v", hopp, fast)
	}
	if dram <= swapc {
		t.Fatalf("DRAM-hit share %v not dominant over swapcache %v", dram, swapc)
	}
}

// Fig. 12 shape: HoPP ≥ Fastswap on the Spark average.
func TestFig12Shape(t *testing.T) {
	tab := runExp(t, "fig12")[0]
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Average" {
		t.Fatal("missing Average row")
	}
	if cell(t, last[2]) <= cell(t, last[1]) {
		t.Fatalf("Spark average: HoPP %v not above Fastswap %v", last[2], last[1])
	}
}

// Fig. 13 shape: HoPP prefetcher accuracy ≥ 0.9 on Spark too, and above
// Fastswap's on every row.
func TestFig13Shape(t *testing.T) {
	tab := runExp(t, "fig13")[0]
	for _, row := range tab.Rows {
		f, h := cell(t, row[1]), cell(t, row[2])
		if h < 0.9 {
			t.Fatalf("%s: HoPP accuracy %v < 0.9", row[0], h)
		}
		if h < f {
			t.Fatalf("%s: HoPP accuracy below Fastswap", row[0])
		}
	}
}

// Fig. 16 shape: HoPP has the best average; Depth-N loses to Fastswap
// somewhere (the paper's NPB-MG effect).
func TestFig16Shape(t *testing.T) {
	tab := runExp(t, "fig16")[0]
	var sums [4]float64
	depthLosesSomewhere := false
	for _, row := range tab.Rows {
		for i := 0; i < 4; i++ {
			sums[i] += cell(t, row[i+1])
		}
		if cell(t, row[1]) < cell(t, row[3]) || cell(t, row[2]) < cell(t, row[3]) {
			depthLosesSomewhere = true
		}
	}
	best := 3 // HoPP column
	for i := 0; i < 3; i++ {
		if sums[i] > sums[best] {
			best = i
		}
	}
	if best != 3 {
		t.Fatalf("HoPP is not the best of four on average: %v", sums)
	}
	if !depthLosesSomewhere {
		t.Fatal("Depth-N never lost to Fastswap; pollution effect missing")
	}
}

// Fig. 18 shape: adding tiers never slows a workload down materially,
// and helps somewhere.
func TestFig18Shape(t *testing.T) {
	tab := runExp(t, "fig18")[0]
	helped := false
	for _, row := range tab.Rows {
		ssp, all := cell(t, row[1]), cell(t, row[3])
		if all < ssp-1.0 {
			t.Fatalf("%s: full cascade slower than SSP alone: %v", row[0], row)
		}
		if all > ssp+1.0 {
			helped = true
		}
	}
	if !helped {
		t.Fatal("LSP/RSP never helped")
	}
}

// Fig. 19 shape: every reported tier accuracy ≥ 0.9.
func TestFig19Shape(t *testing.T) {
	tab := runExp(t, "fig19")[0]
	for _, row := range tab.Rows {
		for _, c := range row[1:] {
			if c == "-" {
				continue
			}
			if cell(t, c) < 0.9 {
				t.Fatalf("%s: tier accuracy %v < 0.9", row[0], c)
			}
		}
	}
}

// Fig. 22 shape: Leap below Fastswap; adaptive HoPP near the top.
func TestFig22Shape(t *testing.T) {
	tab := runExp(t, "fig22")[0]
	speedup := map[string]float64{}
	for _, row := range tab.Rows {
		speedup[row[0]] = cell(t, row[1])
	}
	if speedup["Leap"] >= 0 {
		t.Fatalf("Leap speedup %v should be negative", speedup["Leap"])
	}
	if speedup["HoPP"] < 5 {
		t.Fatalf("HoPP speedup %v too small", speedup["HoPP"])
	}
	if speedup["HoPP"] < speedup["HoPP(offset=1K)"] {
		t.Fatal("adaptive HoPP lost to the far-fixed offset")
	}
}

// Regenerating an artifact must be byte-stable: the same experiment,
// seed, and options rendered twice in one process produce identical
// bytes. This is the determinism contract hopplint guards (no wall
// clock, no unseeded rand, no unsorted map ranges on output paths) —
// checked end to end for one table and one figure.
func TestArtifactsAreByteStable(t *testing.T) {
	render := func(id string) []byte {
		var buf bytes.Buffer
		for _, tab := range runExp(t, id) {
			tab.Fprint(&buf)
		}
		return buf.Bytes()
	}
	for _, id := range []string{"table2", "fig1"} {
		first, second := render(id), render(id)
		if len(first) == 0 {
			t.Fatalf("%s rendered no bytes", id)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: two in-process regenerations differ:\n--- first\n%s\n--- second\n%s", id, first, second)
		}
	}
}

// The prefetcher-substrate port (internal/swap → internal/prefetch,
// feedback seams threaded through the VMM and machine) must not move a
// single byte of the existing artifacts. The goldens were rendered at
// Options{Seed: 1, Quick: true} immediately before the port; any drift
// here means the "behavior-preserving" claim broke.
func TestPortKeepsArtifactsByteIdentical(t *testing.T) {
	for _, tc := range []struct{ id, golden string }{
		{"table2", "port_golden_table2.txt"},
		{"fig1", "port_golden_fig1.txt"},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
		if err != nil {
			t.Fatalf("golden %s: %v", tc.golden, err)
		}
		var buf bytes.Buffer
		for _, tab := range runExp(t, tc.id) {
			tab.Fprint(&buf)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s drifted from the pre-port golden:\n--- golden\n%s\n--- got\n%s", tc.id, want, buf.Bytes())
		}
	}
}

// The feedback-baselines comparison must produce both frames with one
// row per Fig. 16 workload and parseable cells.
func TestBaselinesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables := runExp(t, "baselines")
	if len(tables) != 2 {
		t.Fatalf("baselines returned %d tables, want 2", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 8 {
			t.Fatalf("%q has %d rows, want 8", tab.Title, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%q row %v does not match header %v", tab.Title, row, tab.Header)
			}
			for _, c := range row[1:] {
				if v := cell(t, c); v < 0 {
					t.Fatalf("%q cell %q negative", tab.Title, c)
				}
			}
		}
	}
}

// The remaining experiments must at least run and produce rows.
func TestRemainingExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"table4", "fig2", "fig3", "fig14", "fig15", "fig17", "fig20", "fig21"} {
		for _, tab := range runExp(t, id) {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table %q", id, tab.Title)
			}
		}
	}
}

// The Progress seam must observe every completed simulation without
// perturbing results: equal (Seed, Quick) yield byte-equal tables with
// and without a callback installed.
func TestProgressSeamIsObservationalOnly(t *testing.T) {
	e, ok := ByID("fig1") // fig1 simulates through compareAll, the seam's choke point
	if !ok {
		t.Fatal("fig1 missing")
	}
	render := func(tables []Table) string {
		var buf bytes.Buffer
		for _, tab := range tables {
			tab.Fprint(&buf)
		}
		return buf.String()
	}
	plain, err := e.Run(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	o := quick()
	o.Progress = func() { ticks++ }
	observed, err := e.Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Fatal("Progress callback never invoked")
	}
	if render(plain) != render(observed) {
		t.Fatal("installing a Progress callback changed the rendered tables")
	}
}
