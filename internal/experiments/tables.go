package experiments

import (
	"context"

	"fmt"

	"hopp/internal/cachesim"
	"hopp/internal/hpd"
	"hopp/internal/mc"
	"hopp/internal/memsim"
	"hopp/internal/rpt"
	"hopp/internal/sim"
	"hopp/internal/workload"
)

// table2Workloads are the five programs of Table II. The graph programs
// stand in via their GraphX generators.
func table2Workloads(o Options) map[string]workload.Generator {
	return map[string]workload.Generator{
		"K-means":  workload.NewOMPKMeans(o.scale(2048), 2),
		"PageRank": workload.NewGraphX("PR", o.scale(768)),
		"CC":       workload.NewGraphX("CC", o.scale(768)),
		"LP":       workload.NewGraphX("LP", o.scale(768)),
		"BFS":      workload.NewGraphX("BFS", o.scale(768)),
	}
}

// traceFillMisses replays a workload's access stream through a cache
// hierarchy (identity VPN→PPN mapping, as in the paper's offline HMTT
// trace studies) and feeds every LLC fill miss — read misses and the
// read-for-ownership fills of write misses (§III-B) — to fn. The LLC is
// sized small relative to the scaled footprints, preserving the paper's
// footprint ≫ LLC regime.
func traceFillMisses(gen workload.Generator, seed int64, fn func(memsim.PPN)) {
	h := cachesim.NewHierarchy(
		cachesim.New(cachesim.Config{Name: "L2", SizeBytes: 64 << 10, Ways: 8}),
		cachesim.New(cachesim.Config{Name: "LLC", SizeBytes: 512 << 10, Ways: 16}),
	)
	gen.Reset(seed)
	for {
		a, ok := gen.Next()
		if !ok {
			return
		}
		pa := memsim.PAddr(a.Addr) // identity mapping for offline study
		if h.Access(pa) == cachesim.LevelMemory {
			fn(pa.Page())
		}
	}
}

// Table2 regenerates Table II: the ratio between hot pages identified
// and memory accesses as the HPD threshold N varies.
func Table2(ctx context.Context, o Options) ([]Table, error) {
	ns := []int{2, 4, 8, 16, 32}
	t := Table{
		Title: "Table II: hot pages identified / LLC read misses",
		Header: append([]string{"N"}, func() []string {
			out := make([]string, len(ns))
			for i, n := range ns {
				out[i] = fmt.Sprintf("N=%d", n)
			}
			return out
		}()...),
		Note: "paper: ratio falls monotonically with N; ≈1-12% at N=2 down to ≈1% at N=32",
	}
	gens := table2Workloads(o)
	for _, name := range sortedKeys(gens) {
		row := []string{name}
		for _, n := range ns {
			tbl := hpd.MustNew(hpd.Config{Threshold: n})
			traceFillMisses(gens[name], o.Seed, func(p memsim.PPN) { tbl.Access(p) })
			row = append(row, pct(tbl.Stats().HotRatio()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Table3 regenerates Table III: RPT cache hit rate as its size varies,
// using the offline hot-page trace of K-means and PageRank.
func Table3(ctx context.Context, o Options) ([]Table, error) {
	sizesKB := []int{1, 2, 4, 8, 16, 32, 64}
	t := Table{
		Title: "Table III: RPT cache hit rate vs size (KB)",
		Header: append([]string{"Workload"}, func() []string {
			out := make([]string, len(sizesKB))
			for i, kb := range sizesKB {
				out[i] = fmt.Sprintf("%dKB", kb)
			}
			return out
		}()...),
		Note: "paper: 0.85-0.94 at 1KB rising to ≥0.997 at 64KB",
	}
	// Hit rate must be measured in vivo: the cache is warmed by the
	// kernel's set_pte_at maintenance writes, so "a page that was just
	// fetched from remote ... its RPT entry exists in the RPT cache"
	// (§III-C). A pure lookup replay would miss that warming entirely.
	gens := map[string]workload.Generator{
		"K-means":  workload.NewOMPKMeans(o.scale(2048), 2),
		"PageRank": workload.NewGraphX("PR", o.scale(768)),
	}
	for _, name := range sortedKeys(gens) {
		row := []string{name}
		for _, kb := range sizesKB {
			cfg := o.simConfig(0.5)
			cfg.System = sim.HoPP()
			cfg.MC = mc.Config{RPTCache: rpt.CacheConfig{SizeBytes: kb << 10}}
			m, err := sim.New(cfg, gens[name])
			if err != nil {
				return nil, err
			}
			met, err := m.RunContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%dKB: %w", name, kb, err)
			}
			row = append(row, f3(met.RPTCacheHitRate))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Table4 prints the scaled workload inventory standing in for Table IV.
func Table4(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Table IV: workload inventory (footprints scaled from the paper's GBs)",
		Header: []string{"Workload", "Footprint (pages)", "Footprint (MB)", "Paper footprint"},
	}
	paper := map[string]string{
		"OMP-KMeans": "3.2 GB", "Quicksort": "4 GB", "HPL": "1.2 GB",
		"NPB-CG": "1-7 GB", "NPB-FT": "1-7 GB", "NPB-LU": "1-7 GB",
		"NPB-MG": "1-7 GB", "NPB-IS": "1-7 GB",
		"GraphX-BFS": "33 GB", "GraphX-CC": "33 GB", "GraphX-PR": "33 GB",
		"GraphX-LP": "33 GB", "Spark-KMeans": "13 GB", "Spark-Bayes": "33 GB",
	}
	for _, g := range append(NonJVMWorkloads(o), SparkWorkloads(o)...) {
		pages := g.FootprintPages()
		t.Rows = append(t.Rows, []string{
			g.Name(),
			fmt.Sprintf("%d", pages),
			fmt.Sprintf("%.1f", float64(pages)*4/1024),
			paper[g.Name()],
		})
	}
	return []Table{t}, nil
}

// Table5 regenerates Table V: the extra memory bandwidth consumed by
// writing hot pages (HPD row) and querying the in-DRAM RPT (RPT row),
// measured on full HoPP runs at the 50% memory limit.
func Table5(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Table V: bandwidth consumed by hot page extraction and RPT queries (%)",
		Header: []string{"Workload", "HPD", "RPT"},
		Note:   "paper: HPD averages 0.16% (0.09-0.30%), RPT averages 0.004%",
	}
	for _, g := range append(NonJVMWorkloads(o), SparkWorkloads(o)...) {
		met, err := o.runOne(ctx, sim.HoPP(), g, 0.5)
		if err != nil {
			return nil, fmt.Errorf("table5 %s: %w", g.Name(), err)
		}
		t.Rows = append(t.Rows, []string{
			g.Name(), pct(met.HPDBandwidth), fmt.Sprintf("%.4f%%", met.RPTBandwidth*100),
		})
	}
	return []Table{t}, nil
}
