// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment is a pure function of an Options
// value; results come back as printable Tables whose rows mirror the
// series the paper plots. The per-experiment index lives in DESIGN.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"hopp/internal/sim"
	"hopp/internal/workload"
)

// Options tunes experiment scale. Cancellation is not an option: every
// Experiment.Run takes its context as an explicit first parameter
// (storing a context in a struct is exactly the construct hopplint's
// ctxfirst analyzer forbids in this package).
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks workloads ~4x for benches and CI.
	Quick bool
	// Progress, when non-nil, is invoked once after each simulation an
	// experiment completes (the runOne/compareAll choke points every
	// experiment drives its machines through). It is an observability
	// seam for the service layer's job lifecycle — callbacks receive no
	// data and must not influence results, so determinism is untouched:
	// equal (Seed, Quick) still yield equal tables with or without it.
	Progress func()
}

// tick reports one completed simulation unit to the Progress seam.
func (o Options) tick() {
	if o.Progress != nil {
		o.Progress()
	}
}

// Table is one printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note carries the paper-expectation commentary printed under the table.
	Note string
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "-- %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// Experiment is one regenerable table/figure.
type Experiment struct {
	// ID is the flag value, e.g. "table2", "fig9".
	ID string
	// Title describes what the paper shows there.
	Title string
	// Run executes the experiment; ctx cancels every simulation it
	// drives, and the first aborted run fails it with ctx.Err().
	Run func(ctx context.Context, o Options) ([]Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"breakdown", "§II-A swap path cost breakdown (model vs measured)", Breakdown},
		{"table2", "Hot pages / memory accesses vs HPD threshold N", Table2},
		{"table3", "RPT cache hit rate vs cache size", Table3},
		{"table4", "Workload inventory (scaled)", Table4},
		{"table5", "HPD and RPT bandwidth overhead", Table5},
		{"fig1", "Leap's majority prefetcher vs interleaved streams", Fig1},
		{"fig2", "Ladder stream pattern and LSP identification", Fig2},
		{"fig3", "Ripple stream pattern and RSP identification", Fig3},
		{"fig9", "Normalized performance, non-JVM, 50%/25% local memory", Fig9},
		{"fig10", "Prefetch accuracy, non-JVM workloads", Fig10},
		{"fig11", "Prefetch coverage (swapcache vs DRAM hit), non-JVM", Fig11},
		{"fig12", "Normalized performance, Spark workloads", Fig12},
		{"fig13", "Prefetch accuracy, Spark workloads", Fig13},
		{"fig14", "Prefetch coverage, Spark workloads", Fig14},
		{"fig15", "Speedup with multiple applications running together", Fig15},
		{"fig16", "Depth-16/32 vs Fastswap vs HoPP normalized performance", Fig16},
		{"fig17", "Normalized remote accesses of the four systems", Fig17},
		{"fig18", "Speedup as prefetch tiers are added (SSP → +LSP → +RSP)", Fig18},
		{"fig19", "Per-tier prefetch accuracy", Fig19},
		{"fig20", "Per-tier coverage contribution", Fig20},
		{"fig21", "Accuracy/coverage vs normalized performance", Fig21},
		{"fig22", "Technique ablation on the two-thread add-up microbenchmark", Fig22},
		{"baselines", "SPP/Chimera/HHP feedback baselines vs Fastswap and HoPP", Baselines},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// scale shrinks a size under -quick.
func (o Options) scale(n int) int {
	if o.Quick {
		n /= 4
		if n < 64 {
			n = 64
		}
	}
	return n
}

// NonJVMWorkloads builds the scaled non-JVM suite of Table IV (§VI-B).
func NonJVMWorkloads(o Options) []workload.Generator {
	return []workload.Generator{
		workload.NewOMPKMeans(o.scale(3072), 3),
		workload.NewQuicksort(o.scale(3072)),
		workload.NewHPL(o.hplCols(), 96),
		workload.NewNPBCG(o.scale(3072), 2),
		workload.NewNPBFT(o.scale(2048)),
		workload.NewNPBLU(24, o.scale(3072)/24, 2),
		workload.NewNPBMG(o.scale(2048), 2),
		workload.NewNPBIS(o.scale(2048)),
	}
}

// SparkWorkloads builds the scaled Spark suite of Table IV.
func SparkWorkloads(o Options) []workload.Generator {
	return []workload.Generator{
		workload.NewGraphX("BFS", o.scale(768)),
		workload.NewGraphX("CC", o.scale(768)),
		workload.NewGraphX("PR", o.scale(768)),
		workload.NewGraphX("LP", o.scale(768)),
		workload.NewSparkKMeans(o.scale(2048)),
		workload.NewSparkBayes(o.scale(2048)),
	}
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// simConfig builds the machine config for an experiment run. Quick mode
// shrinks the cache hierarchy along with the footprints so the paper's
// footprint ≫ LLC regime is preserved at every scale.
func (o Options) simConfig(frac float64) sim.Config {
	cfg := sim.Config{LocalMemoryFrac: frac, Seed: o.Seed}
	if o.Quick {
		cfg.L2Bytes = 64 << 10
		cfg.LLCBytes = 512 << 10
	}
	return cfg
}

// compareAll runs one workload under several systems plus local.
func (o Options) compareAll(ctx context.Context, gen workload.Generator, frac float64, systems ...sim.System) (sim.Comparison, error) {
	cmp, err := sim.CompareWithContext(ctx, o.simConfig(frac), gen, systems...)
	if err == nil {
		o.tick()
	}
	return cmp, err
}

// runOne runs one workload under one system.
func (o Options) runOne(ctx context.Context, sys sim.System, gen workload.Generator, frac float64) (sim.Metrics, error) {
	met, err := sim.RunWithContext(ctx, o.simConfig(frac), sys, gen)
	if err == nil {
		o.tick()
	}
	return met, err
}

// sortedKeys returns map keys in stable order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //hopplint:sorted collected keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// hplCols picks the HPL matrix width; columns stay 96 pages tall so
// sub-streams remain longer than the STT history window at every scale.
func (o Options) hplCols() int {
	if o.Quick {
		return 16
	}
	return 32
}
