package experiments

import (
	"context"

	"fmt"

	"hopp/internal/sim"
	"hopp/internal/vclock"
	"hopp/internal/vmm"
	"hopp/internal/workload"
)

// Breakdown regenerates the §II-A swap-operation cost breakdown: the
// model constants side by side with the paper's numbers, then the
// end-to-end latencies measured from a live run (which add the fabric's
// dynamic queueing on top of the constants).
func Breakdown(ctx context.Context, o Options) ([]Table, error) {
	c := vmm.DefaultCosts()
	model := Table{
		Title:  "§II-A: kernel swap path cost model",
		Header: []string{"Step", "Paper", "Model"},
		Rows: [][]string{
			{"(1) page fault context switch", "0.3 µs", c.ContextSwitch.String()},
			{"(2) page table walk", "0.6 µs", c.PTEWalk.String()},
			{"(3) swapcache query/alloc", "0.4 µs", c.SwapCacheOp.String()},
			{"(4) 4 KB page over RDMA", "≈4 µs", "fabric model (base 3.4 µs + wire + queueing)"},
			{"(5) reclaim per page", "2-5 µs (off critical path since v5.8)", c.ReclaimPerPage.String() + " (async)"},
			{"(6) establish PTE, return", "1 µs", c.PTESet.String()},
			{"prefetch-hit total (1+2+3+6)", "2.3 µs", c.PrefetchHit().String()},
			{"DRAM-hit", "0.1 µs", c.DRAMHit.String()},
		},
		Note: "prefetch-hit is ≥23x a DRAM hit — the §II-C overhead early PTE injection removes",
	}

	gen := workload.NewSequential(o.scale(2048), 3)
	met, err := o.runOne(ctx, sim.Fastswap(), gen, 0.5)
	if err != nil {
		return nil, err
	}
	measured := Table{
		Title:  "Measured end-to-end latencies (Fastswap on a sequential scan, 50% local)",
		Header: []string{"Path", "Count", "Mean latency"},
	}
	if met.MajorFaults > 0 {
		measured.Rows = append(measured.Rows, []string{
			"demand major fault", fmt.Sprintf("%d", met.MajorFaults),
			(met.FaultStall / vclock.Duration(met.MajorFaults)).String(),
		})
	}
	if hits := met.SwapCacheHits + met.LateHits; hits > 0 {
		measured.Rows = append(measured.Rows, []string{
			"prefetch-hit (swapcache)", fmt.Sprintf("%d", hits),
			(met.PrefetchStall / vclock.Duration(hits)).String(),
		})
	}
	measured.Note = "paper: worst-case fault 8.3-11.3 µs on the critical path; prefetch-hit 2.3 µs"
	return []Table{model, measured}, nil
}
