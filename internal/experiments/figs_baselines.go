package experiments

import (
	"context"
	"fmt"

	"hopp/internal/sim"
)

// Baselines drops the related-work prefetchers hosted by the substrate
// — SPP (signature-path), Chimera (accuracy-arbitrated hybrid), and
// HHP (offset pattern tables) — into the Fig. 16/17 frames beside
// Fastswap and HoPP: normalized performance against the all-local run,
// and remote accesses normalized to no-prefetch. Not a paper figure;
// the registry makes the same comparison servable ad hoc
// (system=spp/chimera/hhp in runs and sweeps), this experiment is the
// canonical fixed-seed table of it.
func Baselines(ctx context.Context, o Options) ([]Table, error) {
	systems := func() []sim.System {
		return []sim.System{sim.SPP(), sim.Chimera(), sim.HHP(), sim.Fastswap(), sim.HoPP()}
	}
	perf := Table{
		Title:  "Feedback baselines: normalized performance of SPP, Chimera, HHP vs Fastswap, HoPP (50% local)",
		Header: []string{"Workload", "SPP", "Chimera", "HHP", "Fastswap", "HoPP"},
		Note:   "demand-path schemes trained by the prefetch feedback seams; HoPP's hardware hot-page stream stays ahead of all of them",
	}
	remote := Table{
		Title:  "Feedback baselines: remote accesses normalized to no-prefetch",
		Header: []string{"Workload", "SPP", "Chimera", "HHP", "Fastswap", "HoPP"},
		Note:   "lower is fewer demand+prefetch remote reads per useful page; confidence throttling trades coverage for accuracy",
	}
	for _, g := range fig16Workloads(o) {
		none, err := o.runOne(ctx, sim.NoPrefetch(), g, 0.5)
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", g.Name(), err)
		}
		cmp, err := o.compareAll(ctx, g, 0.5, systems()...)
		if err != nil {
			return nil, fmt.Errorf("baselines %s: %w", g.Name(), err)
		}
		perfRow := []string{cmp.Workload}
		remoteRow := []string{cmp.Workload}
		for i := range cmp.Results {
			perfRow = append(perfRow, f3(cmp.Normalized(i)))
			remoteRow = append(remoteRow, f3(cmp.Results[i].RemoteAccessRatio(none)))
		}
		perf.Rows = append(perf.Rows, perfRow)
		remote.Rows = append(remote.Rows, remoteRow)
	}
	return []Table{perf, remote}, nil
}
