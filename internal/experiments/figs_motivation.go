package experiments

import (
	"context"

	"fmt"

	"hopp/internal/core"
	"hopp/internal/memsim"
	"hopp/internal/sim"
	"hopp/internal/vclock"
	"hopp/internal/workload"
)

// Fig1 reproduces the Fig. 1 motivation: on two intertwined streams with
// interference pages, Leap's fault-history majority voting collapses
// while HoPP's full-trace training keeps accuracy and coverage high.
func Fig1(ctx context.Context, o Options) ([]Table, error) {
	gen := workload.NewIntertwined(o.scale(2048), 0.05)
	t := Table{
		Title:  "Fig. 1: intertwined streams (stride 2 + stride 1 + interference)",
		Header: []string{"System", "Accuracy", "Coverage", "MajorFaults", "NormPerf"},
		Note:   "paper: Leap cannot derive stable strides from interleaved fault history; full memory trace can",
	}
	cmp, err := o.compareAll(ctx, gen, 0.5, sim.Leap(), sim.Fastswap(), sim.HoPP())
	if err != nil {
		return nil, err
	}
	for i, met := range cmp.Results {
		t.Rows = append(t.Rows, []string{
			met.System, f3(met.PrefetcherAccuracy()), f3(met.Coverage()),
			fmt.Sprintf("%d", met.MajorFaults), f3(cmp.Normalized(i)),
		})
	}
	return []Table{t}, nil
}

// trainOnPages feeds a page-visit trace to a fresh trainer and reports
// per-tier prediction counts.
func trainOnPages(pages []memsim.VPN, params core.Params) core.TrainerStats {
	tr := core.NewTrainer(params)
	for i, p := range pages {
		tr.Observe(vclock.Time(i)*1000, 1, p)
	}
	return tr.Stats()
}

// pageTrace extracts the page-visit sequence of a generator.
func pageTrace(gen workload.Generator, seed int64, max int) []memsim.VPN {
	gen.Reset(seed)
	var pages []memsim.VPN
	last := ^memsim.VPN(0)
	for len(pages) < max {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if p := a.Addr.Page(); p != last {
			pages = append(pages, p)
			last = p
		}
	}
	return pages
}

// Fig2 reproduces the Fig. 2 pattern study: a ladder stream's page trace
// and which tier identifies it.
func Fig2(ctx context.Context, o Options) ([]Table, error) {
	gen := workload.NewLadder(64, 4)
	pages := pageTrace(gen, o.Seed, 4096)
	base := pages[0]
	head := Table{
		Title:  "Fig. 2: ladder stream — first 18 page visits (relative VPN)",
		Header: []string{"t", "VPN"},
		Note:   "treads visit three unevenly spaced streams; the rise advances each by one page",
	}
	for i := 0; i < 18 && i < len(pages); i++ {
		head.Rows = append(head.Rows, []string{
			fmt.Sprintf("t%d", i+1),
			fmt.Sprintf("+%d", int64(pages[i])-int64(base)),
		})
	}
	stats := trainOnPages(pages, core.DefaultParams())
	tiers := Table{
		Title:  "Fig. 2 (cont.): predictions by tier on the ladder trace",
		Header: []string{"Tier", "Predictions"},
		Note:   "paper: ladders defeat SSP's dominant-stride test; LSP identifies them",
	}
	for _, tier := range []core.Tier{core.TierSSP, core.TierLSP, core.TierRSP} {
		tiers.Rows = append(tiers.Rows, []string{tier.String(), fmt.Sprintf("%d", stats.Predictions[tier])})
	}
	if stats.Predictions[core.TierLSP] == 0 {
		return nil, fmt.Errorf("fig2: LSP made no predictions on a ladder trace")
	}
	return []Table{head, tiers}, nil
}

// Fig3 reproduces the Fig. 3 pattern study for ripple streams.
func Fig3(ctx context.Context, o Options) ([]Table, error) {
	gen := workload.NewRipple(o.scale(1024), 2)
	pages := pageTrace(gen, o.Seed, 4096)
	base := pages[0]
	head := Table{
		Title:  "Fig. 3: ripple stream — first 18 page visits (relative VPN)",
		Header: []string{"t", "VPN"},
		Note:   "stride-1 advance distorted by out-of-order and hop-out-and-back accesses",
	}
	for i := 0; i < 18 && i < len(pages); i++ {
		head.Rows = append(head.Rows, []string{
			fmt.Sprintf("t%d", i+1),
			fmt.Sprintf("+%d", int64(pages[i])-int64(base)),
		})
	}
	stats := trainOnPages(pages, core.DefaultParams())
	tiers := Table{
		Title:  "Fig. 3 (cont.): predictions by tier on the ripple trace",
		Header: []string{"Tier", "Predictions"},
		Note:   "paper: ripples fall through SSP and LSP to RSP",
	}
	for _, tier := range []core.Tier{core.TierSSP, core.TierLSP, core.TierRSP} {
		tiers.Rows = append(tiers.Rows, []string{tier.String(), fmt.Sprintf("%d", stats.Predictions[tier])})
	}
	if stats.Predictions[core.TierRSP] == 0 {
		return nil, fmt.Errorf("fig3: RSP made no predictions on a ripple trace")
	}
	return []Table{head, tiers}, nil
}
