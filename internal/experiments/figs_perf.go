package experiments

import (
	"context"

	"fmt"

	"hopp/internal/sim"
	"hopp/internal/workload"
)

// suiteComparisons runs every workload in a suite against Fastswap and
// HoPP at one memory fraction.
func suiteComparisons(ctx context.Context, o Options, gens []workload.Generator, frac float64) ([]sim.Comparison, error) {
	var out []sim.Comparison
	for _, g := range gens {
		cmp, err := o.compareAll(ctx, g, frac, sim.Fastswap(), sim.HoPP())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.Name(), err)
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Fig9 regenerates the non-JVM normalized performance comparison at 50%
// and 25% local memory.
func Fig9(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 9: normalized performance (CT_local/CT_system), non-JVM workloads",
		Header: []string{"Workload", "Fastswap 50%", "HoPP 50%", "Fastswap 25%", "HoPP 25%"},
		Note:   "paper: HoPP averages 67.4% (50%) and 53.1% (25%); Fastswap 56.3% and 40.9%; HoPP always ≥ Fastswap",
	}
	var sums [4]float64
	var n int
	for _, frac := range []float64{0.5, 0.25} {
		cmps, err := suiteComparisons(ctx, o, NonJVMWorkloads(o), frac)
		if err != nil {
			return nil, err
		}
		for i, cmp := range cmps {
			if frac == 0.5 {
				t.Rows = append(t.Rows, []string{cmp.Workload, f3(cmp.Normalized(0)), f3(cmp.Normalized(1)), "", ""})
				sums[0] += cmp.Normalized(0)
				sums[1] += cmp.Normalized(1)
				n++
			} else {
				t.Rows[i][3] = f3(cmp.Normalized(0))
				t.Rows[i][4] = f3(cmp.Normalized(1))
				sums[2] += cmp.Normalized(0)
				sums[3] += cmp.Normalized(1)
			}
		}
	}
	t.Rows = append(t.Rows, []string{
		"Average",
		f3(sums[0] / float64(n)), f3(sums[1] / float64(n)),
		f3(sums[2] / float64(n)), f3(sums[3] / float64(n)),
	})
	return []Table{t}, nil
}

// accCovTables renders accuracy and coverage tables for a suite.
func accCovTables(titleAcc, titleCov string, cmps []sim.Comparison) (Table, Table) {
	acc := Table{
		Title:  titleAcc,
		Header: []string{"Workload", "Fastswap", "HoPP"},
	}
	cov := Table{
		Title:  titleCov,
		Header: []string{"Workload", "Fastswap", "HoPP total", "HoPP DRAM-hit", "HoPP swapcache"},
	}
	for _, cmp := range cmps {
		fast, _ := cmp.Find("Fastswap")
		hopp, _ := cmp.Find("HoPP")
		acc.Rows = append(acc.Rows, []string{cmp.Workload, f3(fast.PrefetcherAccuracy()), f3(hopp.PrefetcherAccuracy())})
		cov.Rows = append(cov.Rows, []string{
			cmp.Workload, f3(fast.Coverage()), f3(hopp.Coverage()),
			f3(hopp.DRAMHitCoverage()), f3(hopp.SwapCacheHitCoverage()),
		})
	}
	return acc, cov
}

// Fig10 regenerates the non-JVM prefetch accuracy comparison.
func Fig10(ctx context.Context, o Options) ([]Table, error) {
	cmps, err := suiteComparisons(ctx, o, NonJVMWorkloads(o), 0.5)
	if err != nil {
		return nil, err
	}
	acc, _ := accCovTables(
		"Fig. 10: prefetch accuracy, non-JVM (paper: HoPP >90%, +18% over Fastswap)",
		"", cmps)
	return []Table{acc}, nil
}

// Fig11 regenerates the non-JVM coverage comparison with HoPP's split
// into DRAM hits (early PTE injection) and swapcache hits.
func Fig11(ctx context.Context, o Options) ([]Table, error) {
	cmps, err := suiteComparisons(ctx, o, NonJVMWorkloads(o), 0.5)
	if err != nil {
		return nil, err
	}
	_, cov := accCovTables("",
		"Fig. 11: prefetch coverage, non-JVM (paper: HoPP >99% on Quicksort/K-means; DRAM-hit part dominates)",
		cmps)
	return []Table{cov}, nil
}

// Fig12 regenerates the Spark-suite normalized performance comparison.
func Fig12(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 12: normalized performance, Spark workloads (local memory = 1/3 of footprint, the paper's 11 of 33 GB)",
		Header: []string{"Workload", "Fastswap", "HoPP"},
		Note:   "paper: HoPP averages 35.7% vs Fastswap 26.4%; biggest win on Spark-KMeans, smallest on GraphX-CC",
	}
	cmps, err := suiteComparisons(ctx, o, SparkWorkloads(o), 1.0/3)
	if err != nil {
		return nil, err
	}
	var fSum, hSum float64
	for _, cmp := range cmps {
		t.Rows = append(t.Rows, []string{cmp.Workload, f3(cmp.Normalized(0)), f3(cmp.Normalized(1))})
		fSum += cmp.Normalized(0)
		hSum += cmp.Normalized(1)
	}
	n := float64(len(cmps))
	t.Rows = append(t.Rows, []string{"Average", f3(fSum / n), f3(hSum / n)})
	return []Table{t}, nil
}

// Fig13 regenerates Spark prefetch accuracy.
func Fig13(ctx context.Context, o Options) ([]Table, error) {
	cmps, err := suiteComparisons(ctx, o, SparkWorkloads(o), 1.0/3)
	if err != nil {
		return nil, err
	}
	acc, _ := accCovTables(
		"Fig. 13: prefetch accuracy, Spark (paper: HoPP +18% over Fastswap on average)",
		"", cmps)
	return []Table{acc}, nil
}

// Fig14 regenerates Spark prefetch coverage.
func Fig14(ctx context.Context, o Options) ([]Table, error) {
	cmps, err := suiteComparisons(ctx, o, SparkWorkloads(o), 1.0/3)
	if err != nil {
		return nil, err
	}
	_, cov := accCovTables("",
		"Fig. 14: prefetch coverage, Spark (paper: lower than non-JVM due to JVM memory management; HoPP +29.1%)",
		cmps)
	return []Table{cov}, nil
}

// Fig15 regenerates the multi-application experiment: pairs of programs
// run together, each cgroup-limited to 50% of its own footprint, and we
// report HoPP's speedup over Fastswap per application.
func Fig15(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 15: HoPP speedup over Fastswap with multiple applications running together",
		Header: []string{"Pair", "App", "CT Fastswap", "CT HoPP", "Speedup"},
		Note:   "paper: PID-tagged hot pages keep per-application streams separable, so HoPP keeps its win",
	}
	pairs := [][2]workload.Generator{
		{workload.NewOMPKMeans(o.scale(2048), 3), workload.NewQuicksort(o.scale(2048))},
		{workload.NewNPBMG(o.scale(1536), 2), workload.NewNPBCG(o.scale(1536), 2)},
		{workload.NewGraphX("PR", o.scale(640)), workload.NewSparkKMeans(o.scale(1536))},
	}
	for pi, pair := range pairs {
		run := func(sys sim.System) (sim.Metrics, error) {
			cfg := o.simConfig(0.5)
			cfg.System = sys
			m, err := sim.New(cfg, pair[0], pair[1])
			if err != nil {
				return sim.Metrics{}, err
			}
			return m.RunContext(ctx)
		}
		fast, err := run(sim.Fastswap())
		if err != nil {
			return nil, err
		}
		hopp, err := run(sim.HoPP())
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("pair%d", pi+1)
		for _, g := range pair {
			name := g.Name()
			ctF, ctH := fast.PerApp[name], hopp.PerApp[name]
			speedup := 1 - float64(ctH)/float64(ctF)
			t.Rows = append(t.Rows, []string{
				label, name, ctF.String(), ctH.String(), pct(speedup),
			})
		}
	}
	return []Table{t}, nil
}
