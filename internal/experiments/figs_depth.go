package experiments

import (
	"context"

	"fmt"

	"hopp/internal/sim"
	"hopp/internal/workload"
)

// fig16Workloads is the NPB-centred suite of Figs. 16–17.
func fig16Workloads(o Options) []workload.Generator {
	return []workload.Generator{
		workload.NewNPBCG(o.scale(3072), 2),
		workload.NewNPBFT(o.scale(2048)),
		workload.NewNPBLU(24, o.scale(3072)/24, 2),
		workload.NewNPBMG(o.scale(2048), 2),
		workload.NewNPBIS(o.scale(2048)),
		workload.NewOMPKMeans(o.scale(3072), 3),
		workload.NewGraphX("BFS", o.scale(768)),
		workload.NewGraphX("CC", o.scale(768)),
	}
}

// Fig16 regenerates the Depth-N comparison: fixed-depth early PTE
// injection does not reliably beat Fastswap, while HoPP does.
func Fig16(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 16: normalized performance of Depth-16, Depth-32, Fastswap, HoPP (50% local)",
		Header: []string{"Workload", "Depth-16", "Depth-32", "Fastswap", "HoPP"},
		Note:   "paper: Depth-N loses to Fastswap on some workloads (e.g. NPB-MG); HoPP is the best of the four",
	}
	for _, g := range fig16Workloads(o) {
		cmp, err := o.compareAll(ctx, g, 0.5, sim.DepthN(16), sim.DepthN(32), sim.Fastswap(), sim.HoPP())
		if err != nil {
			return nil, fmt.Errorf("fig16 %s: %w", g.Name(), err)
		}
		t.Rows = append(t.Rows, []string{
			cmp.Workload,
			f3(cmp.Normalized(0)), f3(cmp.Normalized(1)),
			f3(cmp.Normalized(2)), f3(cmp.Normalized(3)),
		})
	}
	return []Table{t}, nil
}

// Fig17 regenerates the remote access study: demand remote reads of each
// system normalized to a no-prefetch Fastswap run.
func Fig17(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 17: remote accesses normalized to Fastswap-without-prefetching",
		Header: []string{"Workload", "Depth-16", "Depth-32", "Fastswap", "HoPP"},
		Note:   "paper: Depth-N leaves the most remote accesses (rigid algorithm); HoPP need not have the fewest to win — early injection does the rest",
	}
	for _, g := range fig16Workloads(o) {
		none, err := o.runOne(ctx, sim.NoPrefetch(), g, 0.5)
		if err != nil {
			return nil, err
		}
		row := []string{g.Name()}
		for _, sys := range []sim.System{sim.DepthN(16), sim.DepthN(32), sim.Fastswap(), sim.HoPP()} {
			met, err := o.runOne(ctx, sys, g, 0.5)
			if err != nil {
				return nil, fmt.Errorf("fig17 %s/%s: %w", g.Name(), sys.Name, err)
			}
			row = append(row, f3(met.RemoteAccessRatio(none)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
