package experiments

import (
	"context"

	"fmt"

	"hopp/internal/core"
	"hopp/internal/sim"
	"hopp/internal/workload"
)

// hoppTiers builds the three ablation configurations of Fig. 18:
// SSP alone, SSP+LSP, and the full three-tier cascade.
func hoppTiers() []sim.System {
	ssp := core.DefaultParams()
	ssp.EnableLSP, ssp.EnableRSP = false, false
	sspLsp := core.DefaultParams()
	sspLsp.EnableRSP = false
	all := core.DefaultParams()

	a := sim.HoPPWith(ssp)
	a.Name = "HoPP-SSP"
	b := sim.HoPPWith(sspLsp)
	b.Name = "HoPP-SSP+LSP"
	c := sim.HoPPWith(all)
	c.Name = "HoPP-all"
	return []sim.System{a, b, c}
}

// tierWorkloads are the pattern-rich programs where LSP and RSP matter
// (§VI-D singles out HPL and NPB-MG).
func tierWorkloads(o Options) []workload.Generator {
	return []workload.Generator{
		workload.NewHPL(o.hplCols(), 96),
		workload.NewNPBMG(o.scale(2048), 2),
		workload.NewNPBLU(24, o.scale(3072)/24, 2),
		workload.NewRipple(o.scale(2048), 3),
		workload.NewLadder(o.scale(2048), 3),
	}
}

// Fig18 regenerates the tier-ablation speedup study: completion time
// speedup over Fastswap as tiers are added.
func Fig18(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 18: speedup over Fastswap as prefetch tiers are added",
		Header: []string{"Workload", "SSP", "SSP+LSP", "SSP+LSP+RSP"},
		Note:   "paper: speedup grows with each tier; coverage gains come at no accuracy cost",
	}
	for _, g := range tierWorkloads(o) {
		fast, err := o.runOne(ctx, sim.Fastswap(), g, 0.5)
		if err != nil {
			return nil, err
		}
		row := []string{g.Name()}
		for _, sys := range hoppTiers() {
			met, err := o.runOne(ctx, sys, g, 0.5)
			if err != nil {
				return nil, fmt.Errorf("fig18 %s/%s: %w", g.Name(), sys.Name, err)
			}
			row = append(row, pct(met.SpeedupOver(fast)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig19 regenerates per-tier prefetch accuracy under the full cascade.
func Fig19(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 19: per-tier prefetch accuracy (full three-tier HoPP)",
		Header: []string{"Workload", "SSP", "LSP", "RSP"},
		Note:   "paper: every tier stays above 90%; combining them does not dilute accuracy",
	}
	for _, g := range tierWorkloads(o) {
		met, err := o.runOne(ctx, sim.HoPP(), g, 0.5)
		if err != nil {
			return nil, err
		}
		row := []string{g.Name()}
		for _, tier := range []core.Tier{core.TierSSP, core.TierLSP, core.TierRSP} {
			if met.IssuedByTier[tier] == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(float64(met.HitsByTier[tier])/float64(met.IssuedByTier[tier])))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig20 regenerates per-tier coverage contribution under the full
// cascade: what share of would-be remote requests each tier absorbed.
func Fig20(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 20: per-tier coverage contribution (full three-tier HoPP)",
		Header: []string{"Workload", "SSP", "LSP", "RSP", "Total coverage"},
		Note:   "paper: SSP takes the major part; LSP adds up to ~9% (HPL) and RSP ~10% (NPB-MG)",
	}
	for _, g := range tierWorkloads(o) {
		met, err := o.runOne(ctx, sim.HoPP(), g, 0.5)
		if err != nil {
			return nil, err
		}
		den := float64(met.MajorFaults + met.PrefetchHits())
		row := []string{g.Name()}
		for _, tier := range []core.Tier{core.TierSSP, core.TierLSP, core.TierRSP} {
			if den == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(float64(met.HitsByTier[tier])/den))
		}
		row = append(row, f3(met.Coverage()))
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig21 regenerates the accuracy/coverage vs performance scatter: one
// row per (workload, system) point.
func Fig21(ctx context.Context, o Options) ([]Table, error) {
	t := Table{
		Title:  "Fig. 21: accuracy and coverage vs normalized performance (50% local)",
		Header: []string{"Workload", "System", "Accuracy", "Coverage", "NormPerf"},
		Note:   "paper: points with accuracy and coverage near 1 approach normalized performance 1; at equal coverage HoPP still wins via early PTE injection",
	}
	gens := append(NonJVMWorkloads(o), SparkWorkloads(o)...)
	for _, g := range gens {
		cmp, err := o.compareAll(ctx, g, 0.5, sim.Fastswap(), sim.HoPP())
		if err != nil {
			return nil, err
		}
		for i, met := range cmp.Results {
			t.Rows = append(t.Rows, []string{
				cmp.Workload, met.System,
				f3(met.PrefetcherAccuracy()), f3(met.Coverage()), f3(cmp.Normalized(i)),
			})
		}
	}
	return []Table{t}, nil
}

// Fig22 regenerates the §VI-E technique ablation on the two-thread
// add-up microbenchmark: Leap vs VMA vs fixed-offset HoPP vs adaptive
// HoPP, all against the Fastswap baseline.
func Fig22(ctx context.Context, o Options) ([]Table, error) {
	gen := workload.NewAddUp(2, o.scale(2048))
	fixed := func(name string, offset float64) sim.System {
		p := core.DefaultParams()
		p.Policy.Adaptive = false
		p.Policy.InitialOffset = offset
		s := sim.HoPPWith(p)
		s.Name = name
		return s
	}
	systems := []sim.System{
		sim.Leap(),
		sim.VMA(),
		fixed("HoPP(offset=1)", 1),
		fixed("HoPP(offset=1K)", 1000),
		sim.HoPP(),
	}
	t := Table{
		Title:  "Fig. 22: technique impact on the 2-thread add-up microbenchmark (Fastswap baseline)",
		Header: []string{"System", "Speedup vs Fastswap", "Accuracy", "Coverage", "NormPerf"},
		Note:   "paper: Leap < Fastswap (interleaved streams); VMA +3.6%; HoPP ≈ +40% over VMA via early PTE injection; dynamic offset beats both fixed extremes",
	}
	fast, err := o.runOne(ctx, sim.Fastswap(), gen, 0.5)
	if err != nil {
		return nil, err
	}
	local, err := o.runOne(ctx, sim.NoPrefetch(), gen, 0)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Fastswap", pct(0), f3(fast.Accuracy()), f3(fast.Coverage()), f3(fast.NormalizedPerformance(local))})
	for _, sys := range systems {
		met, err := o.runOne(ctx, sys, gen, 0.5)
		if err != nil {
			return nil, fmt.Errorf("fig22 %s: %w", sys.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			sys.Name, pct(met.SpeedupOver(fast)),
			f3(met.PrefetcherAccuracy()), f3(met.Coverage()), f3(met.NormalizedPerformance(local)),
		})
	}
	return []Table{t}, nil
}
