// Package proto models the paper's proof-of-concept prototype (§V):
// instead of hot page detection hardware inside the memory controller,
// an HMTT tracer captures the FULL off-chip reference stream into a
// reserved DRAM buffer, and a software HPD running on a dedicated core
// drains that buffer, detects hot pages, and resolves them through a
// software reverse page table.
//
// The pipeline implements mc.Tracker, so a simulated machine can run
// either the §III hardware design or this §V prototype — and the two
// can be compared, which is exactly the fidelity argument the paper
// makes for its emulation methodology.
//
// Prototype-specific behaviours faithfully modelled:
//
//   - the tracer emits one 6-byte record per LLC miss (vs the design's
//     8 bytes per *hot page*), so trace bandwidth is ~50x higher;
//   - the capture ring can overflow when the software falls behind,
//     dropping records;
//   - record timestamps are 8-bit quantized deltas, so the software's
//     reconstructed clock drifts under long gaps (saturated deltas).
package proto

import (
	"hopp/internal/hmtt"
	"hopp/internal/hpd"
	"hopp/internal/mc"
	"hopp/internal/memsim"
	"hopp/internal/rpt"
	"hopp/internal/vclock"
)

// Config parameterizes the prototype pipeline.
type Config struct {
	// CaptureRecords is the HMTT DRAM ring capacity. Default 1<<16.
	CaptureRecords int
	// HPD configures the software hot page detection (defaults §III-B).
	HPD hpd.Config
	// OutBuf bounds buffered hot page records awaiting the trainer.
	// Default 1<<16.
	OutBuf int
}

// Pipeline is the HMTT → software-HPD → software-RPT data path.
type Pipeline struct {
	capture *hmtt.Capture
	det     *hpd.Table
	// softRPT is the software reverse page table: the full map, no
	// hardware cache in front (the prototype keeps it in plain memory).
	softRPT map[memsim.PPN]rpt.Entry

	out    []mc.HotPage
	outCap int

	// clock reconstructs absolute time from quantized deltas.
	clockTick int64

	stats      mc.Stats
	rptLookups uint64
	dropped    uint64
}

// New builds the prototype pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.CaptureRecords == 0 {
		cfg.CaptureRecords = 1 << 16
	}
	if cfg.OutBuf == 0 {
		cfg.OutBuf = 1 << 16
	}
	det, err := hpd.New(cfg.HPD)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		capture: hmtt.NewCapture(cfg.CaptureRecords),
		det:     det,
		softRPT: make(map[memsim.PPN]rpt.Entry),
		outCap:  cfg.OutBuf,
	}, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Pipeline {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// ObserveMiss implements mc.Tracker: every miss becomes an HMTT record.
func (p *Pipeline) ObserveMiss(now vclock.Time, pa memsim.PAddr, write bool) {
	p.stats.MissBytes += memsim.LineSize
	if write {
		p.stats.WriteMisses++
	} else {
		p.stats.ReadMisses++
	}
	// Every record crosses PCIe into the reserved DRAM area (Fig. 8) —
	// the full-trace bandwidth cost Stats reports via HotBytes.
	p.capture.Observe(now, pa.Page(), write)
}

// process drains the capture ring through the software HPD.
func (p *Pipeline) process() {
	recs := p.capture.Drain(0)
	p.dropped = p.capture.Dropped()
	for _, r := range recs {
		p.clockTick += int64(r.TimestampDelta)
		// §III-B: the prototype's software HPD also only accounts READ
		// fills; HMTT flags let it tell them apart.
		if p.det.Access(r.Page) {
			entry := p.softRPT[r.Page]
			p.rptLookups++
			hp := mc.HotPage{
				Time:   vclock.Time(p.clockTick * hmtt.TickNS),
				PID:    entry.PID,
				VPN:    entry.VPN,
				PPN:    r.Page,
				Shared: entry.Shared,
				Huge:   entry.Huge,
				Mapped: entry.Valid,
			}
			if !entry.Valid {
				p.stats.HotUnmapped++
			}
			if len(p.out) >= p.outCap {
				p.out = p.out[1:]
				p.stats.Dropped++
			}
			p.out = append(p.out, hp)
			p.stats.HotEmitted++
		}
	}
}

// Drain implements mc.Tracker.
func (p *Pipeline) Drain(max int) []mc.HotPage {
	p.process()
	n := len(p.out)
	if max > 0 && max < n {
		n = max
	}
	out := p.out[:n:n]
	p.out = p.out[n:]
	return out
}

// DrainInto implements mc.Tracker.
func (p *Pipeline) DrainInto(buf []mc.HotPage, max int) []mc.HotPage {
	p.process()
	n := len(p.out)
	if max > 0 && max < n {
		n = max
	}
	buf = append(buf, p.out[:n]...)
	p.out = p.out[n:]
	return buf
}

// Pending implements mc.Tracker. Answering requires running the
// software pipeline (draining the HMTT capture ring through the HPD),
// exactly as the hot-page-area read in Drain does.
func (p *Pipeline) Pending() int {
	p.process()
	return len(p.out)
}

// SetMapping implements mc.Tracker (the kernel callback path of §V).
func (p *Pipeline) SetMapping(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN, shared bool, huge rpt.HugeClass) {
	p.softRPT[ppn] = rpt.Entry{PID: pid, VPN: vpn, Shared: shared, Huge: huge, Valid: true}
}

// ClearMapping implements mc.Tracker.
func (p *Pipeline) ClearMapping(ppn memsim.PPN) {
	delete(p.softRPT, ppn)
}

// Stats implements mc.Tracker. HotBytes reports the *trace* bandwidth
// the prototype pays (6 B per miss over PCIe+DMA), which dwarfs the
// design's per-hot-page cost — the reason §V routes it to a second
// socket's DRAM.
func (p *Pipeline) Stats() mc.Stats {
	s := p.stats
	s.HotBytes = p.capture.BytesOut()
	return s
}

// RPTCacheStats implements mc.Tracker: the software RPT has no MC-side
// cache; every lookup "hits" plain memory.
func (p *Pipeline) RPTCacheStats() rpt.CacheStats {
	return rpt.CacheStats{Lookups: p.rptLookups, Hits: p.rptLookups}
}

// HPDStats implements mc.Tracker.
func (p *Pipeline) HPDStats() hpd.Stats { return p.det.Stats() }

// CaptureDropped returns records lost to HMTT ring overflow.
func (p *Pipeline) CaptureDropped() uint64 { return p.capture.Dropped() }

var _ mc.Tracker = (*Pipeline)(nil)
