package proto

import (
	"testing"

	"hopp/internal/hpd"
	"hopp/internal/memsim"
	"hopp/internal/rpt"
)

func TestHotPageFlow(t *testing.T) {
	p := MustNew(Config{})
	p.SetMapping(100, 7, 700, false, rpt.PageBase)
	for i := 0; i < 8; i++ {
		p.ObserveMiss(0, memsim.PPN(100).LineAddr(i), false)
	}
	hps := p.Drain(0)
	if len(hps) != 1 {
		t.Fatalf("hot pages = %d", len(hps))
	}
	if hps[0].PID != 7 || hps[0].VPN != 700 || !hps[0].Mapped {
		t.Fatalf("record = %+v", hps[0])
	}
}

func TestWriteMissFillsCount(t *testing.T) {
	p := MustNew(Config{})
	p.SetMapping(5, 1, 50, false, rpt.PageBase)
	for i := 0; i < 8; i++ {
		p.ObserveMiss(0, memsim.PPN(5).LineAddr(i), true)
	}
	if len(p.Drain(0)) != 1 {
		t.Fatal("write-miss fills must reach the software HPD")
	}
}

func TestUnmappedDropsToInvalid(t *testing.T) {
	p := MustNew(Config{})
	for i := 0; i < 8; i++ {
		p.ObserveMiss(0, memsim.PPN(9).LineAddr(i), false)
	}
	hps := p.Drain(0)
	if len(hps) != 1 || hps[0].Mapped {
		t.Fatalf("records = %+v", hps)
	}
	if p.Stats().HotUnmapped != 1 {
		t.Fatal("HotUnmapped not counted")
	}
}

func TestClearMapping(t *testing.T) {
	p := MustNew(Config{})
	p.SetMapping(3, 1, 30, false, rpt.PageBase)
	p.ClearMapping(3)
	for i := 0; i < 8; i++ {
		p.ObserveMiss(0, memsim.PPN(3).LineAddr(i), false)
	}
	if hp := p.Drain(0)[0]; hp.Mapped {
		t.Fatal("cleared mapping still resolved")
	}
}

func TestTraceBandwidthIsFullTrace(t *testing.T) {
	p := MustNew(Config{})
	for i := 0; i < 64; i++ {
		p.ObserveMiss(0, memsim.PPN(1).LineAddr(i), false)
	}
	p.Drain(0)
	s := p.Stats()
	// 64 records × 6 B = 384 B of trace for 4096 B of misses: ~9.4%,
	// vs the design's ~0.2% — the reason the prototype needs DRAM 1.
	if s.HotBytes != 64*6 {
		t.Fatalf("trace bytes = %d, want %d", s.HotBytes, 64*6)
	}
	ratio := float64(s.HotBytes) / float64(s.MissBytes)
	if ratio < 0.05 {
		t.Fatalf("full-trace bandwidth ratio %f suspiciously low", ratio)
	}
}

func TestOverflowDropsRecords(t *testing.T) {
	p := MustNew(Config{CaptureRecords: 16})
	// 64 misses without a drain: the 16-record ring overflows.
	for i := 0; i < 64; i++ {
		p.ObserveMiss(0, memsim.PPN(memsim.PPN(i)).LineAddr(0), false)
	}
	p.Drain(0)
	if p.CaptureDropped() != 48 {
		t.Fatalf("dropped = %d, want 48", p.CaptureDropped())
	}
}

func TestTimestampReconstruction(t *testing.T) {
	p := MustNew(Config{HPD: hpd.Config{Threshold: 1}})
	p.SetMapping(1, 1, 10, false, rpt.PageBase)
	p.SetMapping(2, 1, 20, false, rpt.PageBase)
	p.ObserveMiss(0, memsim.PPN(1).LineAddr(0), false)
	p.ObserveMiss(1000, memsim.PPN(2).LineAddr(0), false) // 10 ticks later
	hps := p.Drain(0)
	if len(hps) != 2 {
		t.Fatalf("records = %d", len(hps))
	}
	if got := hps[1].Time - hps[0].Time; got != 1000 {
		t.Fatalf("reconstructed gap = %d ns, want 1000", got)
	}
}

func TestRPTStatsAllHits(t *testing.T) {
	p := MustNew(Config{HPD: hpd.Config{Threshold: 1}})
	p.SetMapping(1, 1, 10, false, rpt.PageBase)
	p.ObserveMiss(0, memsim.PPN(1).LineAddr(0), false)
	p.Drain(0)
	s := p.RPTCacheStats()
	if s.Lookups != 1 || s.HitRate() != 1 {
		t.Fatalf("software RPT stats = %+v", s)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{HPD: hpd.Config{Sets: 5}}); err == nil {
		t.Fatal("bad HPD config accepted")
	}
}
