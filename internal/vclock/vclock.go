// Package vclock provides the virtual time base of the simulation: a
// nanosecond-granularity Time, convenience duration constructors, and a
// binary-heap event queue used by the discrete-event machine.
//
// All latencies in the cost model (internal/vmm) and the fabric model
// (internal/rdma) are expressed as vclock durations, so a whole
// experiment is a pure function of its inputs and seed.
package vclock

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string { return Duration(t).String() }

// Micros returns the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis returns the duration in (fractional) milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns the duration in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// Event is a scheduled callback in an EventQueue.
//
// Events fired by RunUntil are recycled into an internal pool, so a
// handle returned by Schedule must not be inspected or cancelled after
// its callback has run.
type Event struct {
	When Time
	Fn   func(Time)

	index int // heap index; -1 once popped or cancelled
	seq   uint64
	free  *Event // pool freelist link
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -1 }

// EventQueue is a min-heap of events ordered by time, breaking ties by
// insertion order so simulations are deterministic.
//
// The zero value is ready to use.
type EventQueue struct {
	events  []*Event
	nextSeq uint64
	pool    *Event
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.events) }

// Schedule enqueues fn to run at time when and returns the event handle,
// which may be passed to Cancel.
func (q *EventQueue) Schedule(when Time, fn func(Time)) *Event {
	e := q.pool
	if e != nil {
		q.pool = e.free
		e.When, e.Fn, e.free = when, fn, nil
	} else {
		e = &Event{When: when, Fn: fn}
	}
	e.seq = q.nextSeq
	q.nextSeq++
	q.push(e)
	return e
}

// recycle returns a fired event to the pool for reuse by Schedule.
func (q *EventQueue) recycle(e *Event) {
	e.Fn = nil
	e.free = q.pool
	q.pool = e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	q.remove(e.index)
	e.index = -1
}

// PeekTime returns the time of the earliest pending event. ok is false if
// the queue is empty.
func (q *EventQueue) PeekTime() (t Time, ok bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].When, true
}

// Pop removes and returns the earliest pending event, or nil if empty.
func (q *EventQueue) Pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	e := q.events[0]
	q.remove(0)
	e.index = -1
	return e
}

// RunUntil fires, in order, every event scheduled at or before t.
// Events scheduled by callbacks are themselves fired if they fall within
// the horizon.
func (q *EventQueue) RunUntil(t Time) {
	for {
		when, ok := q.PeekTime()
		if !ok || when > t {
			return
		}
		e := q.Pop()
		fn, at := e.Fn, e.When
		q.recycle(e)
		fn(at)
	}
}

func (q *EventQueue) less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.When != b.When {
		return a.When < b.When
	}
	return a.seq < b.seq
}

func (q *EventQueue) swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *EventQueue) push(e *Event) {
	e.index = len(q.events)
	q.events = append(q.events, e)
	q.up(e.index)
}

func (q *EventQueue) remove(i int) {
	last := len(q.events) - 1
	if i != last {
		q.swap(i, last)
	}
	q.events[last] = nil
	q.events = q.events[:last]
	if i != last && i < len(q.events) {
		q.down(i)
		q.up(i)
	}
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.events)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
