package vclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2300, "2.30us"},
		{4 * Microsecond, "4.00us"},
		{5 * Millisecond, "5.000ms"},
		{2 * Second, "2.0000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if t1.Sub(t0) != 50 {
		t.Fatalf("Sub: got %d", t1.Sub(t0))
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("Before/After broken")
	}
}

func TestEventQueueOrder(t *testing.T) {
	var q EventQueue
	var fired []int
	q.Schedule(30, func(Time) { fired = append(fired, 3) })
	q.Schedule(10, func(Time) { fired = append(fired, 1) })
	q.Schedule(20, func(Time) { fired = append(fired, 2) })
	q.RunUntil(25)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
	q.RunUntil(100)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [1 2 3]", fired)
	}
}

func TestEventQueueTieBreakFIFO(t *testing.T) {
	var q EventQueue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func(Time) { fired = append(fired, i) })
	}
	q.RunUntil(5)
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", fired)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	var q EventQueue
	fired := false
	e := q.Schedule(10, func(Time) { fired = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	q.RunUntil(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel is a no-op.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestEventQueueReentrantSchedule(t *testing.T) {
	var q EventQueue
	var fired []Time
	q.Schedule(10, func(now Time) {
		fired = append(fired, now)
		q.Schedule(now.Add(5), func(now2 Time) { fired = append(fired, now2) })
	})
	q.RunUntil(20)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestEventQueuePop(t *testing.T) {
	var q EventQueue
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should return nil")
	}
	q.Schedule(7, func(Time) {})
	e := q.Pop()
	if e == nil || e.When != 7 {
		t.Fatalf("Pop = %+v", e)
	}
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order or interleaved cancellations.
func TestEventQueueOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q EventQueue
		count := int(n%64) + 1
		times := make([]Time, count)
		var fired []Time
		var handles []*Event
		for i := range times {
			times[i] = Time(rng.Intn(1000))
			handles = append(handles, q.Schedule(times[i], func(now Time) {
				fired = append(fired, now)
			}))
		}
		// Cancel a random subset.
		cancelled := 0
		for _, h := range handles {
			if rng.Intn(4) == 0 {
				q.Cancel(h)
				cancelled++
			}
		}
		q.RunUntil(2000)
		if len(fired) != count-cancelled {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
