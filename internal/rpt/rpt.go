// Package rpt implements the Reverse Page Table of §III-C and Fig. 6: a
// PPN-indexed table mapping each physical page back to its owning
// process (PID) and virtual page number (VPN), stored in a reserved,
// uncached DRAM area, fronted by a small write-back cache inside the
// memory controller.
//
// Entries pack into 64 bits exactly as in the paper: PID (16 bits),
// VPN (40 bits), shared page flag (1 bit), huge page flags (2 bits);
// we use one of the remaining bits as a validity flag.
//
// All reads and writes go through the cache, so no coherence machinery
// between the cache and the DRAM copy is needed — exactly the argument
// of §III-C ("all RPT reads and writes pass through this RPT cache
// inside MC, which ensures consistency").
package rpt

import (
	"fmt"

	"hopp/internal/memsim"
)

// HugeClass encodes the 2-bit huge page flag.
type HugeClass uint8

// Huge page classes.
const (
	PageBase HugeClass = iota // 4 KB
	Page2M                    // 2 MB
	Page1G                    // 1 GB
)

func (h HugeClass) String() string {
	switch h {
	case PageBase:
		return "4K"
	case Page2M:
		return "2M"
	case Page1G:
		return "1G"
	default:
		return fmt.Sprintf("HugeClass(%d)", uint8(h))
	}
}

// Entry is one RPT mapping.
type Entry struct {
	PID    memsim.PID
	VPN    memsim.VPN
	Shared bool
	Huge   HugeClass
	Valid  bool
}

// Bit layout of a packed entry.
const (
	vpnShift    = 16
	sharedShift = 56
	hugeShift   = 57
	validShift  = 59
)

// EntrySize is the in-DRAM size of one packed entry in bytes.
const EntrySize = 8

// Pack encodes the entry into its 64-bit DRAM representation.
func (e Entry) Pack() uint64 {
	w := uint64(e.PID) | uint64(e.VPN&memsim.MaxVPN)<<vpnShift
	if e.Shared {
		w |= 1 << sharedShift
	}
	w |= uint64(e.Huge&3) << hugeShift
	if e.Valid {
		w |= 1 << validShift
	}
	return w
}

// Unpack decodes a 64-bit DRAM word into an Entry.
func Unpack(w uint64) Entry {
	return Entry{
		PID:    memsim.PID(w & 0xffff),
		VPN:    memsim.VPN(w>>vpnShift) & memsim.MaxVPN,
		Shared: w&(1<<sharedShift) != 0,
		Huge:   HugeClass(w >> hugeShift & 3),
		Valid:  w&(1<<validShift) != 0,
	}
}

// Table is the DRAM-resident reverse page table, the single
// authoritative copy (Fig. 6: "The only RPT copy resides in DRAM").
type Table struct {
	entries map[memsim.PPN]uint64

	reads  uint64
	writes uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{entries: make(map[memsim.PPN]uint64)}
}

// Load reads the packed entry for ppn from DRAM.
func (t *Table) Load(ppn memsim.PPN) uint64 {
	t.reads++
	return t.entries[ppn]
}

// Store writes the packed entry for ppn to DRAM.
func (t *Table) Store(ppn memsim.PPN, w uint64) {
	t.writes++
	if w == 0 {
		delete(t.entries, ppn)
		return
	}
	t.entries[ppn] = w
}

// DRAMReads returns how many 8-byte entry reads hit DRAM.
func (t *Table) DRAMReads() uint64 { return t.reads }

// DRAMWrites returns how many 8-byte entry writes hit DRAM.
func (t *Table) DRAMWrites() uint64 { return t.writes }

// DRAMBytes returns total RPT traffic to DRAM in bytes, the Table V
// "RPT" row numerator.
func (t *Table) DRAMBytes() uint64 { return (t.reads + t.writes) * EntrySize }

// Len returns how many valid mappings the table holds.
func (t *Table) Len() int { return len(t.entries) }

// SizeBytes returns the reserved-DRAM footprint needed to hold a flat
// table covering localMemBytes of physical memory — the 0.17% figure of
// §III-C (8 B per 4 KB page).
func SizeBytes(localMemBytes uint64) uint64 {
	return localMemBytes / memsim.PageSize * EntrySize
}

// CacheConfig sets the RPT cache geometry.
type CacheConfig struct {
	// SizeBytes is the cache capacity; entries are 8 bytes. Default 64 KB
	// (§III-C's chosen size, ≥99.7% hit rate in Table III).
	SizeBytes int
	// Ways is the associativity. Default 16 (§III-C: "We design RPT
	// cache in 16-way").
	Ways int
}

// CacheStats counts cache activity.
type CacheStats struct {
	Lookups    uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate returns Hits/Lookups, the Table III metric.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

type cline struct {
	ppn    memsim.PPN
	packed uint64
	valid  bool
	dirty  bool
	tick   uint64
}

// Cache is the write-back RPT cache inside the memory controller.
// Lines live in one flat slice (set s occupies
// lines[s*ways : (s+1)*ways]); set selection is mask-indexed (the
// constructor enforces a power-of-two set count).
type Cache struct {
	table   *Table
	lines   []cline
	ways    int
	numSets int
	setMask uint64
	tick    uint64
	stats   CacheStats
}

// NewCache builds an RPT cache in front of table.
func NewCache(table *Table, cfg CacheConfig) (*Cache, error) {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 64 << 10
	}
	if cfg.Ways == 0 {
		cfg.Ways = 16
	}
	entries := cfg.SizeBytes / EntrySize
	if cfg.Ways <= 0 || entries <= 0 || entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("rpt: cache %d B / %d ways does not form whole sets", cfg.SizeBytes, cfg.Ways)
	}
	numSets := entries / cfg.Ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("rpt: cache set count %d must be a power of two", numSets)
	}
	return &Cache{
		table:   table,
		lines:   make([]cline, entries),
		ways:    cfg.Ways,
		numSets: numSets,
		setMask: uint64(numSets - 1),
	}, nil
}

// MustNewCache is NewCache for known-good configs.
func MustNewCache(table *Table, cfg CacheConfig) *Cache {
	c, err := NewCache(table, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Lookup translates a hot page's PPN to its Entry. A miss loads the
// entry from the DRAM table (one 8-byte read, possibly one writeback).
//
//hopplint:hotpath
func (c *Cache) Lookup(ppn memsim.PPN) Entry {
	c.tick++
	c.stats.Lookups++
	set, l := c.find(ppn)
	if l != nil {
		l.tick = c.tick
		c.stats.Hits++
		return Unpack(l.packed)
	}
	c.stats.Misses++
	packed := c.table.Load(ppn)
	c.install(set, ppn, packed, false)
	return Unpack(packed)
}

// Update installs or replaces the mapping for ppn. This is the kernel
// maintenance hook path (§III-C/§V: set_pte_at, pte_clear, set_pmd_at,
// pmd_clear); writes are absorbed by the cache and written back lazily.
func (c *Cache) Update(ppn memsim.PPN, e Entry) {
	c.tick++
	set, l := c.find(ppn)
	if l != nil {
		l.packed = e.Pack()
		l.dirty = true
		l.tick = c.tick
		return
	}
	c.install(set, ppn, e.Pack(), true)
}

// Invalidate clears the mapping for ppn (pte_clear path).
func (c *Cache) Invalidate(ppn memsim.PPN) {
	c.Update(ppn, Entry{})
}

// Flush writes back every dirty line, e.g. at shutdown.
func (c *Cache) Flush() {
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid && l.dirty {
			c.table.Store(l.ppn, l.packed)
			c.stats.Writebacks++
			l.dirty = false
		}
	}
}

func (c *Cache) find(ppn memsim.PPN) (set []cline, hit *cline) {
	base := int(uint64(ppn)&c.setMask) * c.ways
	set = c.lines[base : base+c.ways]
	for i := range set {
		if set[i].valid && set[i].ppn == ppn {
			return set, &set[i]
		}
	}
	return set, nil
}

func (c *Cache) install(set []cline, ppn memsim.PPN, packed uint64, dirty bool) {
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].tick < set[victim].tick {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid && v.dirty {
		c.table.Store(v.ppn, v.packed)
		c.stats.Writebacks++
	}
	*v = cline{ppn: ppn, packed: packed, valid: true, dirty: dirty, tick: c.tick}
}

// Maintainer is the narrow interface the VMM uses to keep the RPT in
// sync with the page tables; *Cache implements it.
type Maintainer interface {
	Update(ppn memsim.PPN, e Entry)
	Invalidate(ppn memsim.PPN)
}

var _ Maintainer = (*Cache)(nil)
