package rpt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
)

func TestEntryPackRoundTrip(t *testing.T) {
	cases := []Entry{
		{},
		{PID: 0xffff, VPN: memsim.MaxVPN, Shared: true, Huge: Page1G, Valid: true},
		{PID: 42, VPN: 0x123456789, Huge: Page2M, Valid: true},
		{PID: 1, VPN: 7, Shared: true, Valid: true},
	}
	for _, e := range cases {
		got := Unpack(e.Pack())
		if got != e {
			t.Errorf("round trip: got %+v, want %+v", got, e)
		}
	}
}

func TestEntryPackRoundTripProperty(t *testing.T) {
	f := func(pid uint16, vpn uint64, shared, valid bool, huge uint8) bool {
		e := Entry{
			PID:    memsim.PID(pid),
			VPN:    memsim.VPN(vpn) & memsim.MaxVPN,
			Shared: shared,
			Huge:   HugeClass(huge % 3),
			Valid:  valid,
		}
		return Unpack(e.Pack()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHugeClassString(t *testing.T) {
	if PageBase.String() != "4K" || Page2M.String() != "2M" || Page1G.String() != "1G" {
		t.Fatal("HugeClass names wrong")
	}
}

func TestSizeBytes(t *testing.T) {
	// §III-C: 64 GB local memory needs ~112 MB ⇒ 8 B per 4 KB page = 128 MiB
	// (the paper's 112 MB uses decimal GB; either way the ratio is 0.195%).
	got := SizeBytes(64 << 30)
	if got != 128<<20 {
		t.Fatalf("SizeBytes(64GiB) = %d, want 128 MiB", got)
	}
	ratio := float64(got) / float64(64<<30)
	if ratio > 0.002 {
		t.Fatalf("RPT overhead ratio %f exceeds paper's ~0.17%%–0.2%%", ratio)
	}
}

func TestCacheMissLoadsFromDRAM(t *testing.T) {
	tbl := NewTable()
	e := Entry{PID: 3, VPN: 99, Valid: true}
	tbl.Store(7, e.Pack())
	c := MustNewCache(tbl, CacheConfig{})
	r0 := tbl.DRAMReads()
	got := c.Lookup(7)
	if got != e {
		t.Fatalf("Lookup = %+v, want %+v", got, e)
	}
	if tbl.DRAMReads() != r0+1 {
		t.Fatal("miss did not read DRAM")
	}
	// Second lookup hits the cache, no new DRAM read.
	c.Lookup(7)
	if tbl.DRAMReads() != r0+1 {
		t.Fatal("hit went to DRAM")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Lookups != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUpdateIsWriteBack(t *testing.T) {
	tbl := NewTable()
	c := MustNewCache(tbl, CacheConfig{})
	c.Update(5, Entry{PID: 1, VPN: 10, Valid: true})
	if tbl.DRAMWrites() != 0 {
		t.Fatal("update wrote through immediately; should be write-back")
	}
	// The dirty line reaches DRAM on Flush.
	c.Flush()
	if tbl.DRAMWrites() != 1 {
		t.Fatalf("DRAMWrites = %d after flush", tbl.DRAMWrites())
	}
	if got := Unpack(tbl.Load(5)); got.VPN != 10 {
		t.Fatalf("flushed entry = %+v", got)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	tbl := NewTable()
	// 1 set x 2 ways: third distinct PPN evicts.
	c := MustNewCache(tbl, CacheConfig{SizeBytes: 2 * EntrySize, Ways: 2})
	c.Update(0, Entry{PID: 1, VPN: 100, Valid: true})
	c.Update(1, Entry{PID: 1, VPN: 101, Valid: true})
	c.Update(2, Entry{PID: 1, VPN: 102, Valid: true}) // evicts PPN 0 (LRU, dirty)
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
	if got := Unpack(tbl.Load(0)); got.VPN != 100 || !got.Valid {
		t.Fatalf("evicted entry not written back: %+v", got)
	}
	// Looking PPN 0 up again must recover the written-back mapping.
	if got := c.Lookup(0); got.VPN != 100 {
		t.Fatalf("reload after writeback = %+v", got)
	}
}

func TestInvalidate(t *testing.T) {
	tbl := NewTable()
	c := MustNewCache(tbl, CacheConfig{})
	c.Update(9, Entry{PID: 2, VPN: 5, Valid: true})
	c.Invalidate(9)
	if got := c.Lookup(9); got.Valid {
		t.Fatalf("lookup after invalidate = %+v", got)
	}
	c.Flush()
	if got := Unpack(tbl.Load(9)); got.Valid {
		t.Fatal("invalidation did not reach DRAM")
	}
}

func TestUnmappedLookupIsInvalid(t *testing.T) {
	c := MustNewCache(NewTable(), CacheConfig{})
	if got := c.Lookup(12345); got.Valid {
		t.Fatalf("unmapped PPN returned valid entry: %+v", got)
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	tbl := NewTable()
	if _, err := NewCache(tbl, CacheConfig{SizeBytes: 100, Ways: 16}); err == nil {
		t.Error("ragged geometry accepted")
	}
	if _, err := NewCache(tbl, CacheConfig{SizeBytes: 3 * 16 * EntrySize, Ways: 16}); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

// Table III's trend: hit rate grows with cache size for a reuse-heavy
// access pattern.
func TestHitRateGrowsWithCacheSize(t *testing.T) {
	run := func(sizeKB int) float64 {
		tbl := NewTable()
		for p := 0; p < 1<<15; p++ {
			tbl.Store(memsim.PPN(p), Entry{PID: 1, VPN: memsim.VPN(p), Valid: true}.Pack())
		}
		c := MustNewCache(tbl, CacheConfig{SizeBytes: sizeKB << 10})
		rng := rand.New(rand.NewSource(7))
		// Hot-page locality as §III-C describes it: a recently swapped-in
		// working set is re-referenced heavily (hot set), with rare
		// excursions to cold pages.
		for i := 0; i < 500000; i++ {
			var p int
			if rng.Intn(500) == 0 {
				p = 2048 + rng.Intn(1<<14) // cold excursion
			} else {
				p = rng.Intn(2048) // hot working set
			}
			c.Lookup(memsim.PPN(p))
		}
		return c.Stats().HitRate()
	}
	var prev float64 = -1
	for _, kb := range []int{1, 4, 16, 64} {
		hr := run(kb)
		if hr < prev-0.005 { // allow tiny non-monotonic noise
			t.Fatalf("hit rate fell with size: %dKB -> %f (prev %f)", kb, hr, prev)
		}
		prev = hr
	}
	if prev < 0.99 {
		t.Fatalf("64KB hit rate = %f, want ≥0.99 (Table III)", prev)
	}
}

// Property: every lookup is classified exactly once, and DRAM reads only
// happen on misses.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable()
		c := MustNewCache(tbl, CacheConfig{SizeBytes: 1 << 10})
		for i := 0; i < 1000; i++ {
			ppn := memsim.PPN(rng.Intn(512))
			if rng.Intn(3) == 0 {
				c.Update(ppn, Entry{PID: 1, VPN: memsim.VPN(ppn), Valid: true})
			} else {
				c.Lookup(ppn)
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Lookups && tbl.DRAMReads() == s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRPTCacheLookup(b *testing.B) {
	tbl := NewTable()
	c := MustNewCache(tbl, CacheConfig{})
	for p := 0; p < 8192; p++ {
		c.Update(memsim.PPN(p), Entry{PID: 1, VPN: memsim.VPN(p), Valid: true})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(memsim.PPN(i % 8192))
	}
}
