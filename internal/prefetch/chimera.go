package prefetch

import (
	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// Chimera is a hybrid prefetcher that hosts three component schemes —
// stride (per-process majority stride over the recent fault window),
// spatial (next-line neighbourhood), and history (last-successor chain
// replay) — and on each fault lets exactly one of them issue, chosen
// by tracked per-component accuracy. The accuracy counters are fed
// entirely from the feedback seams: every issued page is tagged with
// its component in a direct-mapped filter, a later OnPrefetchHit or
// used eviction credits that component, an unused eviction debits it.
// Accuracies compare by Laplace-smoothed cross-multiplication
// (useful+1)/(total+2), so the arbiter has a uniform prior and never
// divides. Every explore-th fault round-robins a component regardless
// of accuracy so a demoted scheme can earn its way back when the
// workload's phase changes.
//
// Fixed-size tables, allocated at construction; the fault path is
// zero-alloc and deterministic.
const (
	chimStride  = 0
	chimSpatial = 1
	chimHistory = 2
	chimNComp   = 3

	chimHistWindow = 4 // per-process fault window feeding stride voting
	chimPIDBits    = 6 // 64 tracked processes
	chimSuccBits   = 10 // 1024-entry successor table
	chimIssuedBits = 9  // 512-entry issued-prefetch filter
)

// chimPIDEntry is one process's recent-fault ring.
type chimPIDEntry struct {
	pid   memsim.PID
	valid bool
	hist  [chimHistWindow]memsim.VPN
	n     uint32 // total faults recorded; ring cursor is n % window
}

// chimSuccEntry records the fault that followed a page last time.
type chimSuccEntry struct {
	tag  uint64 // packed page key + 1; 0 = empty
	next memsim.VPN
}

// chimIssued attributes an in-flight prefetch to its component.
type chimIssued struct {
	tag  uint64 // packed page key + 1; 0 = empty
	comp uint8
}

// chimStats is one component's prefetch-outcome tally.
type chimStats struct {
	useful  uint64
	useless uint64
}

// Chimera is the accuracy-arbitrated hybrid. Construct with NewChimera.
type Chimera struct {
	degree  int
	explore int

	faults uint64
	comp   [chimNComp]chimStats
	pids   []chimPIDEntry
	succ   []chimSuccEntry
	issued []chimIssued
	out    []memsim.VPN
}

// NewChimera returns a Chimera prefetcher. degree caps the pages issued
// per fault (default 8); every explore-th fault round-robins a
// component instead of following accuracy (default 16).
func NewChimera(degree, explore int) *Chimera {
	if degree <= 0 {
		degree = 8
	}
	if explore <= 0 {
		explore = 16
	}
	return &Chimera{
		degree:  degree,
		explore: explore,
		pids:    make([]chimPIDEntry, 1<<chimPIDBits),
		succ:    make([]chimSuccEntry, 1<<chimSuccBits),
		issued:  make([]chimIssued, 1<<chimIssuedBits),
		out:     make([]memsim.VPN, 0, degree),
	}
}

// Name implements Prefetcher.
func (c *Chimera) Name() string { return "Chimera" }

// Inject implements Prefetcher; prefetches land in the swapcache.
func (c *Chimera) Inject() bool { return false }

func chimMix(x uint64) uint64 { return x * 0x9E3779B97F4A7C15 }

// OnFault implements Prefetcher: train every component on the fault,
// then let the accuracy leader (or the exploration pick) issue.
//
//hopplint:hotpath
func (c *Chimera) OnFault(_ vclock.Time, key memsim.PageKey) []memsim.VPN {
	c.out = c.out[:0]
	c.faults++

	pe := &c.pids[uint64(key.PID)&(1<<chimPIDBits-1)]
	if !pe.valid || pe.pid != key.PID {
		*pe = chimPIDEntry{pid: key.PID, valid: true}
	}
	// History training: record this fault as the successor of the
	// process's previous one.
	if pe.n > 0 {
		prev := memsim.PageKey{PID: key.PID, VPN: pe.hist[(pe.n-1)%chimHistWindow]}
		s := &c.succ[chimMix(prev.Pack())>>(64-chimSuccBits)]
		s.tag = prev.Pack() + 1
		s.next = key.VPN
	}
	pe.hist[pe.n%chimHistWindow] = key.VPN
	pe.n++

	comp := c.pick()
	switch comp {
	case chimStride:
		c.strideCandidates(pe, key)
	case chimSpatial:
		c.spatialCandidates(key)
	default:
		c.historyCandidates(key)
	}
	for _, v := range c.out {
		c.note(memsim.PageKey{PID: key.PID, VPN: v}, comp)
	}
	return c.out
}

// pick chooses the issuing component: round-robin on exploration
// rounds, otherwise the Laplace-accuracy leader (ties to the
// lowest-numbered component).
func (c *Chimera) pick() uint8 {
	if c.faults%uint64(c.explore) == 0 {
		return uint8((c.faults / uint64(c.explore)) % chimNComp)
	}
	return c.leader()
}

func (c *Chimera) leader() uint8 {
	best := 0
	for i := 1; i < chimNComp; i++ {
		if c.better(i, best) {
			best = i
		}
	}
	return uint8(best)
}

// better reports whether component a's Laplace-smoothed accuracy
// (useful+1)/(total+2) strictly beats b's, by cross-multiplication.
func (c *Chimera) better(a, b int) bool {
	ua, ta := c.comp[a].useful, c.comp[a].useful+c.comp[a].useless
	ub, tb := c.comp[b].useful, c.comp[b].useful+c.comp[b].useless
	return (ua+1)*(tb+2) > (ub+1)*(ta+2)
}

// Leader names the component the arbiter currently favours — an
// observability hook for tests and debugging, not part of the
// Prefetcher contract.
func (c *Chimera) Leader() string {
	switch c.leader() {
	case chimStride:
		return "stride"
	case chimSpatial:
		return "spatial"
	default:
		return "history"
	}
}

// strideCandidates prefetches along the majority stride of the
// process's recent faults; with no majority it stays silent and lets
// the arbiter learn that.
func (c *Chimera) strideCandidates(pe *chimPIDEntry, key memsim.PageKey) {
	n := int(pe.n)
	if n > chimHistWindow {
		n = chimHistWindow
	}
	if n < 2 {
		return
	}
	// Boyer–Moore vote over the ring's strides, oldest to newest.
	first := pe.n - uint32(n)
	var candidate memsim.Stride
	count, votes := 0, 0
	for i := first + 1; i != pe.n; i++ {
		s := memsim.StrideBetween(pe.hist[(i-1)%chimHistWindow], pe.hist[i%chimHistWindow])
		votes++
		if count == 0 {
			candidate, count = s, 1
		} else if s == candidate {
			count++
		} else {
			count--
		}
	}
	occur := 0
	for i := first + 1; i != pe.n; i++ {
		if memsim.StrideBetween(pe.hist[(i-1)%chimHistWindow], pe.hist[i%chimHistWindow]) == candidate {
			occur++
		}
	}
	if occur*2 <= votes || candidate == 0 {
		return
	}
	for i := 1; i <= c.degree; i++ {
		v := int64(key.VPN) + int64(i)*int64(candidate)
		if v <= 0 || v > int64(memsim.MaxVPN) {
			break
		}
		c.out = append(c.out, memsim.VPN(v)) //hopplint:allocok appends into the constructor-preallocated out buffer; bounded by degree == cap
	}
}

// spatialCandidates prefetches the next-degree neighbourhood.
func (c *Chimera) spatialCandidates(key memsim.PageKey) {
	for i := 1; i <= c.degree; i++ {
		v := int64(key.VPN) + int64(i)
		if v > int64(memsim.MaxVPN) {
			break
		}
		c.out = append(c.out, memsim.VPN(v)) //hopplint:allocok appends into the constructor-preallocated out buffer; bounded by degree == cap
	}
}

// historyCandidates walks the last-successor chain from the fault.
func (c *Chimera) historyCandidates(key memsim.PageKey) {
	cur := key
	for i := 0; i < c.degree; i++ {
		s := &c.succ[chimMix(cur.Pack())>>(64-chimSuccBits)]
		if s.tag != cur.Pack()+1 {
			break
		}
		v := s.next
		if v == key.VPN {
			// Chain cycled back to the trigger; stop.
			break
		}
		c.out = append(c.out, v) //hopplint:allocok appends into the constructor-preallocated out buffer; bounded by degree == cap
		cur = memsim.PageKey{PID: key.PID, VPN: v}
	}
}

// note tags an issued prefetch with its component.
func (c *Chimera) note(key memsim.PageKey, comp uint8) {
	slot := &c.issued[chimMix(key.Pack())>>(64-chimIssuedBits)]
	slot.tag = key.Pack() + 1
	slot.comp = comp
}

// take consumes the issued-filter entry for key, if still present.
func (c *Chimera) take(key memsim.PageKey) (comp uint8, ok bool) {
	packed := key.Pack()
	slot := &c.issued[chimMix(packed)>>(64-chimIssuedBits)]
	if slot.tag != packed+1 {
		return 0, false
	}
	slot.tag = 0
	return slot.comp, true
}

// OnPrefetchHit implements Prefetcher: credit the issuing component.
//
//hopplint:hotpath
func (c *Chimera) OnPrefetchHit(_ vclock.Time, key memsim.PageKey) {
	comp, ok := c.take(key)
	if !ok {
		return
	}
	c.comp[comp].useful++
}

// OnPrefetchEvicted implements Prefetcher: a used eviction still
// credits the component (the prefetch served its purpose before
// reclaim); an unused one debits it.
//
//hopplint:hotpath
func (c *Chimera) OnPrefetchEvicted(_ vclock.Time, key memsim.PageKey, used bool) {
	comp, ok := c.take(key)
	if !ok {
		return
	}
	if used {
		c.comp[comp].useful++
	} else {
		c.comp[comp].useless++
	}
}

func init() {
	Register(Scheme{
		Name:   "chimera",
		Doc:    "hybrid stride/spatial/history prefetching arbitrated by tracked accuracy",
		Params: []Param{{Key: "degree", Default: 8}, {Key: "explore", Default: 16}},
		Build: func(a Args, _ RegionResolver) Prefetcher {
			return NewChimera(a.Int("degree", 8), a.Int("explore", 16))
		},
	})
}
