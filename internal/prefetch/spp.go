package prefetch

import (
	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// SPP is a signature-path prefetcher in the style of Kim et al.
// (MICRO'16), adapted from cache lines to pages: faults within a
// 64-page region are compressed into a 12-bit delta signature, a
// set-associative pattern table learns which delta follows each
// signature with a 2-bit confidence counter, and prediction walks the
// signature path multiplying per-step confidence until the product
// falls below the threshold — deep lookahead only where the path has
// repeatedly proven itself.
//
// Unlike the ported kernel baselines, SPP consumes the feedback seams:
// each issued prefetch is remembered in a small direct-mapped filter
// tagged with the pattern-table entry that produced it, and a later
// OnPrefetchHit (page touched) bumps that entry's confidence while an
// unused eviction decays it.
//
// All tables are fixed-size and allocated at construction; the
// steady-state fault path is zero-alloc (guarded by
// testing.AllocsPerRun) and fully deterministic.
const (
	sppRegionShift = 6 // 64-page regions, matching memsim.LinesPerPage granularity of the HPD
	sppRegionPages = 1 << sppRegionShift
	sppOffMask     = sppRegionPages - 1
	sppSigBits     = 12
	sppSigMask     = (1 << sppSigBits) - 1
	sppSigShift    = 3
	sppSTBits      = 8 // 256-entry signature table
	sppPTWays      = 4
	sppIssuedBits  = 9 // 512-entry issued-prefetch filter
	sppConfMax     = 3 // 2-bit saturating confidence
	sppConfScale   = 100
)

// sppSTEntry tracks one active region: the last offset faulted in it
// and the signature of the delta history that led there.
type sppSTEntry struct {
	tag  uint64 // region id + 1; 0 = empty
	last int32
	sig  uint16
}

// sppPTSlot is one way of a pattern-table set: a candidate delta and
// its 2-bit confidence. conf 0 marks the slot invalid.
type sppPTSlot struct {
	delta int16
	conf  uint8
}

// sppIssued attributes an in-flight prefetch back to the pattern-table
// coordinates that issued it, so feedback trains the right entry.
type sppIssued struct {
	tag uint64 // packed page key + 1; 0 = empty
	sig uint16
	way uint8
}

// SPP is the signature-path prefetcher. Construct with NewSPP.
type SPP struct {
	lookahead int
	threshold int // minimum path confidence (percent) to keep walking

	st     []sppSTEntry
	pt     [][sppPTWays]sppPTSlot
	issued []sppIssued
	out    []memsim.VPN
}

// NewSPP returns an SPP prefetcher. lookahead bounds the signature-path
// walk (default 4, clamped to the region size); threshold is the
// path-confidence percentage below which the walk stops (default 25).
func NewSPP(lookahead, threshold int) *SPP {
	if lookahead <= 0 {
		lookahead = 4
	}
	if lookahead > sppRegionPages {
		lookahead = sppRegionPages
	}
	if threshold <= 0 {
		threshold = 25
	}
	return &SPP{
		lookahead: lookahead,
		threshold: threshold,
		st:        make([]sppSTEntry, 1<<sppSTBits),
		pt:        make([][sppPTWays]sppPTSlot, 1<<sppSigBits),
		issued:    make([]sppIssued, 1<<sppIssuedBits),
		out:       make([]memsim.VPN, 0, lookahead),
	}
}

// Name implements Prefetcher.
func (p *SPP) Name() string { return "SPP" }

// Inject implements Prefetcher; prefetches land in the swapcache.
func (p *SPP) Inject() bool { return false }

// sppMix is a Fibonacci multiplicative hash; table indices come from
// its high bits.
func sppMix(x uint64) uint64 { return x * 0x9E3779B97F4A7C15 }

// sppAdvance folds a delta into the signature.
func sppAdvance(sig uint16, delta int16) uint16 {
	return (sig<<sppSigShift ^ uint16(delta)) & sppSigMask
}

// sppRegion packs (PID, VPN>>6) into one region id, mirroring
// memsim.PageKey.Pack's layout (index high, PID low).
func sppRegion(key memsim.PageKey) uint64 {
	return (uint64(key.VPN)>>sppRegionShift)<<16 | uint64(key.PID)
}

// OnFault implements Prefetcher: train the pattern table with the
// observed delta, then walk the signature path while the confidence
// product stays above threshold.
//
//hopplint:hotpath
func (p *SPP) OnFault(_ vclock.Time, key memsim.PageKey) []memsim.VPN {
	p.out = p.out[:0]
	region := sppRegion(key)
	off := int32(uint64(key.VPN) & sppOffMask)
	e := &p.st[sppMix(region)>>(64-sppSTBits)]
	if e.tag != region+1 {
		// New (or collided) region: bootstrap the signature from the
		// trigger offset; no delta to train or predict from yet.
		e.tag = region + 1
		e.last = off
		e.sig = uint16(off) & sppSigMask
		return p.out
	}
	delta := int16(off - e.last)
	if delta == 0 {
		return p.out
	}
	p.train(e.sig, delta)
	e.sig = sppAdvance(e.sig, delta)
	e.last = off

	sig := e.sig
	vpn := int64(key.VPN)
	regionBase := uint64(key.VPN) >> sppRegionShift
	conf := sppConfScale
	for i := 0; i < p.lookahead; i++ {
		way, ok := p.best(sig)
		if !ok {
			break
		}
		s := &p.pt[sig][way]
		conf = conf * int(s.conf) / sppConfMax
		if conf < p.threshold {
			break
		}
		vpn += int64(s.delta)
		if vpn <= 0 || vpn > int64(memsim.MaxVPN) {
			break
		}
		if uint64(vpn)>>sppRegionShift != regionBase {
			// SPP's page boundary: the signature describes in-region
			// behaviour, so the walk stops at the region edge.
			break
		}
		v := memsim.VPN(vpn)
		if v == key.VPN {
			break
		}
		p.out = append(p.out, v) //hopplint:allocok appends into the constructor-preallocated out buffer; the walk is bounded by lookahead == cap
		p.note(memsim.PageKey{PID: key.PID, VPN: v}, sig, way)
		sig = sppAdvance(sig, s.delta)
	}
	return p.out
}

// train reinforces delta under sig, or claims the lowest-confidence way.
func (p *SPP) train(sig uint16, delta int16) {
	set := &p.pt[sig]
	for i := range set {
		if set[i].conf > 0 && set[i].delta == delta {
			if set[i].conf < sppConfMax {
				set[i].conf++
			}
			return
		}
	}
	victim := 0
	for i := 1; i < sppPTWays; i++ {
		if set[i].conf < set[victim].conf {
			victim = i
		}
	}
	set[victim] = sppPTSlot{delta: delta, conf: 1}
}

// best returns the highest-confidence valid way of sig's set.
func (p *SPP) best(sig uint16) (way int, ok bool) {
	set := &p.pt[sig]
	way = -1
	bestConf := uint8(0)
	for i := 0; i < sppPTWays; i++ {
		if set[i].conf > bestConf {
			way, bestConf = i, set[i].conf
		}
	}
	return way, way >= 0
}

// note remembers which pattern-table entry issued a prefetch.
func (p *SPP) note(key memsim.PageKey, sig uint16, way int) {
	slot := &p.issued[sppMix(key.Pack())>>(64-sppIssuedBits)]
	slot.tag = key.Pack() + 1
	slot.sig = sig
	slot.way = uint8(way)
}

// take consumes the issued-filter entry for key, if it is still there
// (direct-mapped, so a colliding later prefetch may have replaced it).
func (p *SPP) take(key memsim.PageKey) (sig uint16, way uint8, ok bool) {
	packed := key.Pack()
	slot := &p.issued[sppMix(packed)>>(64-sppIssuedBits)]
	if slot.tag != packed+1 {
		return 0, 0, false
	}
	slot.tag = 0
	return slot.sig, slot.way, true
}

// OnPrefetchHit implements Prefetcher: a touched prefetch reinforces
// the pattern-table entry that issued it.
//
//hopplint:hotpath
func (p *SPP) OnPrefetchHit(_ vclock.Time, key memsim.PageKey) {
	sig, way, ok := p.take(key)
	if !ok {
		return
	}
	s := &p.pt[sig][way]
	if s.conf > 0 && s.conf < sppConfMax {
		s.conf++
	}
}

// OnPrefetchEvicted implements Prefetcher: an unused eviction decays
// the issuing entry's confidence; a used one was already credited.
//
//hopplint:hotpath
func (p *SPP) OnPrefetchEvicted(_ vclock.Time, key memsim.PageKey, used bool) {
	sig, way, ok := p.take(key)
	if !ok || used {
		return
	}
	s := &p.pt[sig][way]
	if s.conf > 0 {
		s.conf--
	}
}

func init() {
	Register(Scheme{
		Name:   "spp",
		Doc:    "signature-path prefetching with confidence-throttled lookahead",
		Params: []Param{{Key: "lookahead", Default: 4}, {Key: "threshold", Default: 25}},
		Build: func(a Args, _ RegionResolver) Prefetcher {
			return NewSPP(a.Int("lookahead", 4), a.Int("threshold", 25))
		},
	})
}
