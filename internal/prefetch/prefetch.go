// Package prefetch is the demand-path prefetcher substrate: the
// Prefetcher interface the simulation engine drives on every major
// fault, the feedback seams the VMM reports prefetch outcomes through,
// and a self-registering name→constructor registry that gives the
// daemon catalog, the CLIs, and sweep grid expansion one canonical
// table of schemes.
//
// The ported kernel-based baselines HoPP is compared against:
//
//   - Readahead — Fastswap's sequential readahead on swap offsets [7]
//   - Leap — majority-stride prefetching over the page fault history [38]
//   - Depth-N — fixed-depth prefetching with early PTE injection [9]
//   - VMA — Linux 5.4's VMA-clipped neighbourhood prefetching
//   - None — no prefetching, the Fig. 17 normalization baseline
//
// plus the related-work baselines that need the feedback seams:
//
//   - SPP — signature-path prefetching with per-signature pattern
//     tables and a path-confidence product (Kim et al., MICRO'16)
//   - Chimera — a hybrid that arbitrates stride/spatial/history
//     component schemes by their tracked prefetch accuracy
//   - HHP — an offset pattern-table prefetcher that replays the
//     footprint a trigger offset historically touched
//
// Each is a policy object invoked on every major fault; the simulation
// engine lands the returned pages in the swapcache (or injects PTEs when
// Inject reports true) and does all latency and metric accounting.
package prefetch

import (
	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// Prefetcher is a demand-path prefetch policy.
type Prefetcher interface {
	// Name identifies the system in experiment output.
	Name() string
	// OnFault is invoked on a major fault for key and returns the VPNs
	// to prefetch alongside the demand page.
	OnFault(now vclock.Time, key memsim.PageKey) []memsim.VPN
	// Inject reports whether prefetched pages receive early PTE
	// injection (Depth-N) instead of landing in the swapcache.
	Inject() bool

	// OnPrefetchHit is invoked when a prefetched page is first touched
	// by the application — a swapcache hit, an injected-PTE hit, or a
	// late hit on an in-flight prefetch. Confidence-trained schemes use
	// it to reinforce the entry that issued the prefetch.
	OnPrefetchHit(now vclock.Time, key memsim.PageKey)
	// OnPrefetchEvicted is invoked when a prefetched page is reclaimed;
	// used reports whether the application touched it first. An unused
	// eviction is the strongest negative signal a prefetcher gets.
	OnPrefetchEvicted(now vclock.Time, key memsim.PageKey, used bool)
}

// NopFeedback is embedded by schemes that ignore prefetch-outcome
// feedback (the ported kernel baselines, which have no confidence
// state). It keeps their behaviour byte-identical to the pre-substrate
// port while satisfying the full Prefetcher interface.
type NopFeedback struct{}

// OnPrefetchHit implements Prefetcher; it discards the signal.
func (NopFeedback) OnPrefetchHit(vclock.Time, memsim.PageKey) {}

// OnPrefetchEvicted implements Prefetcher; it discards the signal.
func (NopFeedback) OnPrefetchEvicted(vclock.Time, memsim.PageKey, bool) {}

// RegionResolver lets the VMA prefetcher find the memory area containing
// a page. The simulation engine implements it from workload regions.
type RegionResolver interface {
	// Region returns the [start, end) VPN bounds of the VMA holding the
	// page, if any.
	Region(key memsim.PageKey) (start, end memsim.VPN, ok bool)
}
