package prefetch

import (
	"math/bits"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// HHP is an offset pattern-table prefetcher in the footprint/SMS
// lineage: while a 64-page region is live, an accumulation table
// records the bitmap of offsets that faulted in it; when the region's
// slot is recycled — displaced by a colliding region, or re-entered at
// its own trigger offset after reclaim (a generation boundary) — the
// bitmap retires into a pattern table keyed by the region's trigger
// offset (the first offset faulted). The next time a
// region opens at that trigger offset, HHP replays the learned
// footprint — pages the trigger historically pulled in — instead of a
// blind neighbourhood.
//
// The pattern table carries a 2-bit confidence per trigger: retiring a
// similar bitmap (Jaccard overlap ≥ ½) reinforces and merges, a
// dissimilar one decays and eventually replaces. The feedback seams
// sharpen patterns page-by-page: a touched prefetch bumps the
// trigger's confidence, an unused eviction prunes that page's bit from
// the pattern so it is never replayed again.
//
// Fixed-size tables, allocated at construction; the fault path is
// zero-alloc and deterministic.
const (
	hhpRegionShift = 6 // 64-page regions; one uint64 bitmap per region
	hhpRegionPages = 1 << hhpRegionShift
	hhpOffMask     = hhpRegionPages - 1
	hhpACBits      = 7 // 128 live regions
	hhpIssuedBits  = 9 // 512-entry issued-prefetch filter
	hhpConfMax     = 3
)

// hhpACEntry accumulates the fault footprint of one live region.
type hhpACEntry struct {
	tag     uint64 // region id + 1; 0 = empty
	bits    uint64
	trigger uint8
}

// hhpPTEntry is the learned footprint for one trigger offset.
type hhpPTEntry struct {
	bits uint64
	conf uint8
}

// hhpIssued attributes an in-flight prefetch to its trigger and bit.
type hhpIssued struct {
	tag     uint64 // packed page key + 1; 0 = empty
	trigger uint8
	bit     uint8
}

// HHP is the offset pattern-table prefetcher. Construct with NewHHP.
type HHP struct {
	degree    int // max pages replayed per trigger
	threshold int // min confidence to replay a pattern

	ac     []hhpACEntry
	pt     []hhpPTEntry // indexed by trigger offset
	issued []hhpIssued
	out    []memsim.VPN
}

// NewHHP returns an HHP prefetcher. degree caps the pages replayed per
// trigger (default 16, clamped to the region size); threshold is the
// minimum 0..3 confidence a pattern needs before it is replayed
// (default 2).
func NewHHP(degree, threshold int) *HHP {
	if degree <= 0 {
		degree = 16
	}
	if degree > hhpRegionPages {
		degree = hhpRegionPages
	}
	if threshold <= 0 {
		threshold = 2
	}
	if threshold > hhpConfMax {
		threshold = hhpConfMax
	}
	return &HHP{
		degree:    degree,
		threshold: threshold,
		ac:        make([]hhpACEntry, 1<<hhpACBits),
		pt:        make([]hhpPTEntry, hhpRegionPages),
		issued:    make([]hhpIssued, 1<<hhpIssuedBits),
		out:       make([]memsim.VPN, 0, degree),
	}
}

// Name implements Prefetcher.
func (p *HHP) Name() string { return "HHP" }

// Inject implements Prefetcher; prefetches land in the swapcache.
func (p *HHP) Inject() bool { return false }

func hhpMix(x uint64) uint64 { return x * 0x9E3779B97F4A7C15 }

func hhpRegion(key memsim.PageKey) uint64 {
	return (uint64(key.VPN)>>hhpRegionShift)<<16 | uint64(key.PID)
}

// OnFault implements Prefetcher: accumulate the offset into the live
// region, or open a new region (retiring the displaced one) and replay
// the trigger's learned footprint.
//
//hopplint:hotpath
func (p *HHP) OnFault(_ vclock.Time, key memsim.PageKey) []memsim.VPN {
	p.out = p.out[:0]
	region := hhpRegion(key)
	off := uint8(uint64(key.VPN) & hhpOffMask)
	e := &p.ac[hhpMix(region)>>(64-hhpACBits)]
	if e.tag == region+1 {
		if off != e.trigger || e.bits == 1<<off {
			e.bits |= 1 << off
			return p.out
		}
		// The trigger offset major-faulting again means the region's
		// pages were reclaimed and the workload looped back: a
		// generation boundary. Retire the accumulated footprint and
		// reopen — without this, a working set smaller than the
		// accumulation table never recycles a slot and nothing ever
		// retires.
		p.retire(e)
		e.bits = 1 << off
	} else {
		if e.tag != 0 {
			p.retire(e)
		}
		e.tag = region + 1
		e.bits = 1 << off
		e.trigger = off
	}

	t := &p.pt[off]
	if int(t.conf) < p.threshold {
		return p.out
	}
	base := uint64(key.VPN) &^ uint64(hhpOffMask)
	replay := t.bits &^ (1 << off)
	for replay != 0 && len(p.out) < p.degree {
		i := bits.TrailingZeros64(replay)
		replay &= replay - 1
		v := memsim.VPN(base + uint64(i))
		p.out = append(p.out, v) //hopplint:allocok appends into the constructor-preallocated out buffer; bounded by degree == cap
		p.note(memsim.PageKey{PID: key.PID, VPN: v}, off, uint8(i))
	}
	return p.out
}

// retire folds a closed region's footprint into its trigger's pattern:
// similar bitmaps (intersection covering ≥ half the union) reinforce
// and merge, dissimilar ones decay the confidence until the stored
// pattern is replaced.
func (p *HHP) retire(e *hhpACEntry) {
	t := &p.pt[e.trigger]
	if t.bits == 0 {
		t.bits = e.bits
		t.conf = 1
		return
	}
	inter := bits.OnesCount64(t.bits & e.bits)
	union := bits.OnesCount64(t.bits | e.bits)
	if 2*inter >= union {
		if t.conf < hhpConfMax {
			t.conf++
		}
		t.bits |= e.bits
		return
	}
	if t.conf > 0 {
		t.conf--
	}
	if t.conf == 0 {
		t.bits = e.bits
		t.conf = 1
	}
}

// note remembers which (trigger, bit) issued a prefetch.
func (p *HHP) note(key memsim.PageKey, trigger, bit uint8) {
	slot := &p.issued[hhpMix(key.Pack())>>(64-hhpIssuedBits)]
	slot.tag = key.Pack() + 1
	slot.trigger = trigger
	slot.bit = bit
}

// take consumes the issued-filter entry for key, if still present.
func (p *HHP) take(key memsim.PageKey) (trigger, bit uint8, ok bool) {
	packed := key.Pack()
	slot := &p.issued[hhpMix(packed)>>(64-hhpIssuedBits)]
	if slot.tag != packed+1 {
		return 0, 0, false
	}
	slot.tag = 0
	return slot.trigger, slot.bit, true
}

// OnPrefetchHit implements Prefetcher: a touched replayed page
// reinforces its trigger's confidence.
//
//hopplint:hotpath
func (p *HHP) OnPrefetchHit(_ vclock.Time, key memsim.PageKey) {
	trigger, _, ok := p.take(key)
	if !ok {
		return
	}
	t := &p.pt[trigger]
	if t.conf > 0 && t.conf < hhpConfMax {
		t.conf++
	}
}

// OnPrefetchEvicted implements Prefetcher: a replayed page reclaimed
// untouched is pruned from the pattern — that offset stops replaying.
//
//hopplint:hotpath
func (p *HHP) OnPrefetchEvicted(_ vclock.Time, key memsim.PageKey, used bool) {
	trigger, bit, ok := p.take(key)
	if !ok || used {
		return
	}
	p.pt[trigger].bits &^= 1 << bit
}

func init() {
	Register(Scheme{
		Name:   "hhp",
		Doc:    "offset pattern-table prefetching keyed by region trigger offsets",
		Params: []Param{{Key: "degree", Default: 16}, {Key: "threshold", Default: 2}},
		Build: func(a Args, _ RegionResolver) Prefetcher {
			return NewHHP(a.Int("degree", 16), a.Int("threshold", 2))
		},
	})
}
