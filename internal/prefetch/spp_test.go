package prefetch

import (
	"testing"

	"hopp/internal/memsim"
)

// sppTrainRegions replays a stride-1 burst of length n through several
// distinct regions so every signature on the path reaches the given
// repeat count.
func sppTrainRegions(p *SPP, regions []uint64, n int) {
	for _, r := range regions {
		base := memsim.VPN(r << sppRegionShift)
		for off := 0; off < n; off++ {
			p.OnFault(0, k(1, base+memsim.VPN(off)))
		}
	}
}

// SPP must learn a repeated in-region delta path and walk it to the
// lookahead bound once the path's confidence saturates.
func TestSPPLearnsSignaturePath(t *testing.T) {
	p := NewSPP(4, 25)
	sppTrainRegions(p, []uint64{1, 2, 3}, 9)

	base := memsim.VPN(100 << sppRegionShift)
	if got := p.OnFault(0, k(1, base)); len(got) != 0 {
		t.Fatalf("bootstrap fault predicted %v", got)
	}
	got := p.OnFault(0, k(1, base+1))
	want := []memsim.VPN{base + 2, base + 3, base + 4, base + 5}
	if len(got) != len(want) {
		t.Fatalf("lookahead walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lookahead walk = %v, want %v", got, want)
		}
	}
}

// The walk must stop at the 64-page region edge: the signature
// describes in-region behaviour only.
func TestSPPWalkStopsAtRegionEdge(t *testing.T) {
	p := NewSPP(8, 25)
	sppTrainRegions(p, []uint64{1, 2, 3}, 12)

	// Walk the stream to within 2 pages of the region edge; a lookahead
	// of 8 must clip to the 2 in-region pages.
	base := memsim.VPN(200 << sppRegionShift)
	var got []memsim.VPN
	for off := 0; off <= sppRegionPages-3; off++ {
		got = p.OnFault(0, k(1, base+memsim.VPN(off)))
	}
	for _, v := range got {
		if uint64(v)>>sppRegionShift != uint64(base)>>sppRegionShift {
			t.Fatalf("prediction %d crossed the region edge", v)
		}
	}
	if len(got) != 2 {
		t.Fatalf("expected the edge to clip the walk to 2 pages, got %v", got)
	}
}

// Unused evictions must decay the issuing pattern-table entries until
// the walk throttles itself off; a hit builds it back.
func TestSPPFeedbackThrottlesWalk(t *testing.T) {
	p := NewSPP(4, 25)
	sppTrainRegions(p, []uint64{1, 2, 3}, 9)

	predict := func(r uint64) []memsim.VPN {
		base := memsim.VPN(r << sppRegionShift)
		p.OnFault(0, k(1, base))
		return p.OnFault(0, k(1, base+1))
	}
	evictAll := func(out []memsim.VPN) {
		for _, v := range out {
			p.OnPrefetchEvicted(0, k(1, v), false)
		}
	}

	// conf 3 on every path entry: full lookahead.
	out := predict(100)
	if len(out) != 4 {
		t.Fatalf("saturated walk = %v, want 4 pages", out)
	}
	evictAll(out)
	// conf 2: 100 -> 66 -> 44 -> 29 -> 19, three survive the threshold.
	out = predict(101)
	if len(out) != 3 {
		t.Fatalf("after one decay round walk = %v, want 3 pages", out)
	}
	// Touched prefetches rebuild the entries that issued them.
	for _, v := range out {
		p.OnPrefetchHit(0, k(1, v))
	}
	out = predict(102)
	if len(out) != 4 {
		t.Fatalf("hit feedback did not restore the full walk: %v", out)
	}
	// Decay to extinction: 3 -> 2 -> 1 -> 0 on the leading entry.
	evictAll(out)
	evictAll(predict(103))
	evictAll(predict(104))
	if out = predict(105); len(out) != 0 {
		t.Fatalf("fully decayed path still predicts %v", out)
	}
}
