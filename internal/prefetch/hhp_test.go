package prefetch

import (
	"testing"

	"hopp/internal/memsim"
)

// hhpSlot returns the accumulation-table slot a region index maps to.
func hhpSlot(regionIdx uint64) uint64 {
	r := hhpRegion(memsim.PageKey{PID: 1, VPN: memsim.VPN(regionIdx << hhpRegionShift)})
	return hhpMix(r) >> (64 - hhpACBits)
}

// hhpColliding returns n distinct region indices that share one
// accumulation-table slot, so opening one deterministically retires the
// previous — the only path by which footprints reach the pattern table.
func hhpColliding(t *testing.T, n int) []uint64 {
	t.Helper()
	want := hhpSlot(0)
	out := []uint64{0}
	for r := uint64(1); len(out) < n; r++ {
		if r > 1<<20 {
			t.Fatal("no colliding regions found")
		}
		if hhpSlot(r) == want {
			out = append(out, r)
		}
	}
	return out
}

// hhpFaultFootprint faults the given offsets of a region in order.
func hhpFaultFootprint(p *HHP, regionIdx uint64, offs []int) {
	base := memsim.VPN(regionIdx << hhpRegionShift)
	for _, off := range offs {
		p.OnFault(0, k(1, base+memsim.VPN(off)))
	}
}

// HHP must learn a region footprint over two retirements and replay it
// when a fresh region opens at the same trigger offset; an unused
// eviction must prune that page from all future replays.
func TestHHPReplaysAndPrunesFootprint(t *testing.T) {
	p := NewHHP(16, 2)
	regions := hhpColliding(t, 3)
	footprint := []int{0, 3, 7, 9}

	// Region 1 displaces region 0 (conf 1), region 2 displaces region 1
	// (identical bitmap, Jaccard merge, conf 2 = threshold) — and its
	// opening fault replays the learned pattern minus the trigger.
	hhpFaultFootprint(p, regions[0], footprint)
	hhpFaultFootprint(p, regions[1], footprint)
	base2 := memsim.VPN(regions[2] << hhpRegionShift)
	got := p.OnFault(0, k(1, base2))
	want := []memsim.VPN{base2 + 3, base2 + 7, base2 + 9}
	if len(got) != len(want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay = %v, want %v", got, want)
		}
	}

	// Reclaiming base2+7 untouched prunes offset 7; a fresh region at
	// the same trigger replays only 3 and 9.
	p.OnPrefetchEvicted(0, k(1, base2+7), false)
	var fresh uint64 = 1
	for hhpSlot(fresh) == hhpSlot(0) {
		fresh++
	}
	base3 := memsim.VPN(fresh << hhpRegionShift)
	got = p.OnFault(0, k(1, base3))
	want = []memsim.VPN{base3 + 3, base3 + 9}
	if len(got) != len(want) {
		t.Fatalf("post-prune replay = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-prune replay = %v, want %v", got, want)
		}
	}
}

// A working set smaller than the accumulation table never recycles a
// slot, so displacement alone would never retire anything. The trigger
// offset major-faulting again in a live region — the workload looped
// back after reclaim — must count as a generation boundary: retire the
// accumulated footprint, and replay once confidence reaches threshold.
func TestHHPGenerationBoundaryRetires(t *testing.T) {
	p := NewHHP(16, 2)
	footprint := []int{0, 3, 7, 9}
	base := memsim.VPN(5 << hhpRegionShift)

	// Generation 1 accumulates; the loop-back fault at the trigger
	// retires it (conf 1 < threshold, so no replay yet) and opens
	// generation 2.
	hhpFaultFootprint(p, 5, footprint)
	if got := p.OnFault(0, k(1, base)); len(got) != 0 {
		t.Fatalf("replayed %v at conf 1", got)
	}
	// Generation 2 re-accumulates the same footprint; the next loop-back
	// merges it (conf 2 = threshold) and replays the pattern minus the
	// trigger — all without a single slot collision.
	hhpFaultFootprint(p, 5, footprint[1:])
	got := p.OnFault(0, k(1, base))
	want := []memsim.VPN{base + 3, base + 7, base + 9}
	if len(got) != len(want) {
		t.Fatalf("loop-back replay = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loop-back replay = %v, want %v", got, want)
		}
	}
}

// A dissimilar footprint at the same trigger must decay the pattern
// below the replay threshold instead of replaying garbage.
func TestHHPDissimilarFootprintDecays(t *testing.T) {
	p := NewHHP(16, 2)
	regions := hhpColliding(t, 4)

	hhpFaultFootprint(p, regions[0], []int{0, 3, 7, 9})
	// A near-disjoint footprint from the same trigger: retire of region 0
	// seeds conf 1, retire of region 1 decays it to 0 and replaces.
	hhpFaultFootprint(p, regions[1], []int{0, 20, 30, 40, 50})
	base2 := memsim.VPN(regions[2] << hhpRegionShift)
	if got := p.OnFault(0, k(1, base2)); len(got) != 0 {
		t.Fatalf("decayed pattern still replayed %v", got)
	}
}
