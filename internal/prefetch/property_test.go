package prefetch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
)

// Property: no prefetcher ever proposes the faulting page itself, a
// zero/overflowed VPN, or more pages than its configured depth.
func TestPrefetcherOutputBoundsProperty(t *testing.T) {
	builders := []func() Prefetcher{
		func() Prefetcher { return NewReadahead(8) },
		func() Prefetcher { return NewLeap(4, 8) },
		func() Prefetcher { return NewDepthN(16) },
		func() Prefetcher { return NewDepthN(32) },
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, build := range builders {
			p := build()
			maxOut := 32
			for i := 0; i < 300; i++ {
				var vpn memsim.VPN
				switch rng.Intn(3) {
				case 0:
					vpn = memsim.VPN(rng.Intn(8) + 1) // near zero
				case 1:
					vpn = memsim.MaxVPN - memsim.VPN(rng.Intn(8)) // near top
				default:
					vpn = memsim.VPN(rng.Int63n(1 << 30))
				}
				key := memsim.PageKey{PID: memsim.PID(rng.Intn(3)), VPN: vpn}
				out := p.OnFault(0, key)
				if len(out) > maxOut {
					return false
				}
				for _, o := range out {
					if o == key.VPN {
						return false // prefetching the demand page is a bug
					}
					if int64(o) <= 0 || o > memsim.MaxVPN {
						// Readahead/DepthN may walk past MaxVPN on the
						// synthetic top-of-space faults; they must not
						// wrap to tiny values.
						if o < key.VPN {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Leap's history window never exceeds its configured size and
// its detection is insensitive to unrelated PIDs interleaving.
func TestLeapHistoryIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLeap(4, 8)
		// PID 1 faults with a clean stride; PIDs 2 and 3 interleave noise.
		stride := memsim.VPN(rng.Intn(6) + 2)
		base := memsim.VPN(rng.Intn(100000) + 1000)
		var lastOut []memsim.VPN
		for i := 0; i < 50; i++ {
			l.OnFault(0, memsim.PageKey{PID: 2, VPN: memsim.VPN(rng.Int63n(1 << 20))})
			l.OnFault(0, memsim.PageKey{PID: 3, VPN: memsim.VPN(rng.Int63n(1 << 20))})
			lastOut = l.OnFault(0, memsim.PageKey{PID: 1, VPN: base + memsim.VPN(i)*stride})
		}
		// After warmup, PID 1's prediction must follow its own stride.
		want := base + 49*stride + stride
		if len(lastOut) == 0 {
			return false
		}
		return lastOut[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
