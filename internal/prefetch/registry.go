package prefetch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The registry is the single canonical table of demand-path schemes.
// Packages register at init time; the daemon catalog, cmd/hoppsim, and
// sweep grid expansion all resolve specs through it, so a scheme
// registered here is immediately reachable from POST /v1/runs, sweeps,
// and the CLIs with no per-layer edits.
//
// A spec names a scheme plus optional integer parameters, in two forms:
//
//	name                  spp, leap, noprefetch
//	name?k=v&k2=v2        spp?lookahead=6, leap?depth=16
//	name-<v>              depth-16 — shorthand binding the scheme's
//	                      designated Suffix parameter
//
// Canonical form lowercases the name, drops parameters at their
// defaults, orders the rest as declared, and renders suffix schemes as
// name-<v>; equal canonical specs build identical prefetchers, which is
// what lets the service layer use the canonical spec as a cache key.

// Param declares one integer parameter of a scheme.
type Param struct {
	// Key is the query-string key (lowercase).
	Key string
	// Default is the value used when the spec omits the parameter.
	Default int
}

// Scheme is one registered prefetcher family.
type Scheme struct {
	// Name is the canonical lowercase base name ("spp").
	Name string
	// Doc is a one-line description for catalogs and docs.
	Doc string
	// Params declares the accepted parameters in canonical render order.
	Params []Param
	// Suffix names the parameter bound by the name-<v> shorthand
	// ("depth-16"); empty for schemes without one. Suffix schemes always
	// canonicalize to the shorthand form.
	Suffix string
	// Variants lists the specs advertised in catalogs instead of the
	// bare name (e.g. depth-16/depth-32); empty means advertise the
	// canonical default spec.
	Variants []string
	// Build constructs the prefetcher. args carries every declared
	// parameter (explicit or default); regions is the machine's VMA
	// resolver and may be nil for schemes that ignore it.
	Build func(args Args, regions RegionResolver) Prefetcher
}

// Args carries a spec's resolved parameter values.
type Args struct{ kv []argKV }

type argKV struct {
	key string
	val int
}

// Int returns the value of key, or def when absent.
func (a Args) Int(key string, def int) int {
	for _, e := range a.kv {
		if e.key == key {
			return e.val
		}
	}
	return def
}

var (
	schemes     = map[string]*Scheme{}
	schemeNames []string
)

// Register adds a scheme to the registry. It is called from init
// functions and panics on conflicts or malformed declarations —
// registration bugs are build bugs, not runtime conditions.
func Register(s Scheme) {
	if s.Name == "" || s.Name != strings.ToLower(s.Name) || strings.ContainsAny(s.Name, "?&=- ") {
		panic("prefetch: invalid scheme name " + strconv.Quote(s.Name))
	}
	if s.Build == nil {
		panic("prefetch: scheme " + s.Name + " has no Build")
	}
	if _, dup := schemes[s.Name]; dup {
		panic("prefetch: duplicate scheme " + s.Name)
	}
	if s.Suffix != "" && !s.hasParam(s.Suffix) {
		panic("prefetch: scheme " + s.Name + " declares undeclared suffix param " + s.Suffix)
	}
	sc := s
	schemes[s.Name] = &sc
	schemeNames = append(schemeNames, s.Name)
	sort.Strings(schemeNames)
}

func (s *Scheme) hasParam(key string) bool {
	for _, p := range s.Params {
		if p.Key == key {
			return true
		}
	}
	return false
}

func (s *Scheme) paramDefault(key string) int {
	for _, p := range s.Params {
		if p.Key == key {
			return p.Default
		}
	}
	return 0
}

// parseSpec resolves a spec string to its scheme and explicit args.
func parseSpec(spec string) (*Scheme, Args, error) {
	full := strings.ToLower(strings.TrimSpace(spec))
	base, query, hasQuery := strings.Cut(full, "?")
	sc := schemes[base]
	var kv []argKV
	if sc == nil {
		// name-<v> shorthand for the scheme's suffix parameter.
		if i := strings.LastIndex(base, "-"); i > 0 {
			if v, err := strconv.Atoi(base[i+1:]); err == nil {
				if cand := schemes[base[:i]]; cand != nil && cand.Suffix != "" {
					sc = cand
					kv = append(kv, argKV{key: cand.Suffix, val: v})
				}
			}
		}
	}
	if sc == nil {
		return nil, Args{}, fmt.Errorf("prefetch: unknown scheme %q (have %s)", spec, strings.Join(Specs(), ", "))
	}
	if hasQuery {
		for _, part := range strings.Split(query, "&") {
			if part == "" {
				continue
			}
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				return nil, Args{}, fmt.Errorf("prefetch: malformed parameter %q in %q", part, spec)
			}
			if !sc.hasParam(k) {
				return nil, Args{}, fmt.Errorf("prefetch: scheme %s has no parameter %q", sc.Name, k)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, Args{}, fmt.Errorf("prefetch: parameter %s=%q in %q is not an integer", k, v, spec)
			}
			kv = append(kv, argKV{key: k, val: n})
		}
	}
	for i := range kv {
		for j := i + 1; j < len(kv); j++ {
			if kv[i].key == kv[j].key {
				return nil, Args{}, fmt.Errorf("prefetch: duplicate parameter %q in %q", kv[i].key, spec)
			}
		}
	}
	return sc, Args{kv: kv}, nil
}

// canonical renders the canonical spec for explicit args.
func (s *Scheme) canonical(args Args) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.Suffix != "" {
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(args.Int(s.Suffix, s.paramDefault(s.Suffix))))
	}
	sep := byte('?')
	for _, p := range s.Params {
		if p.Key == s.Suffix {
			continue
		}
		v := args.Int(p.Key, p.Default)
		if v == p.Default {
			continue
		}
		b.WriteByte(sep)
		sep = '&'
		b.WriteString(p.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Canonical resolves a spec to its canonical form: lowercased, default
// parameters dropped, the rest in declared order, suffix schemes as
// name-<v>. Canonical is idempotent; equal canonical specs build
// identical prefetchers.
func Canonical(spec string) (string, error) {
	sc, args, err := parseSpec(spec)
	if err != nil {
		return "", err
	}
	return sc.canonical(args), nil
}

// Lookup resolves a spec to its registered scheme without building it.
func Lookup(spec string) (*Scheme, error) {
	sc, _, err := parseSpec(spec)
	return sc, err
}

// New builds the prefetcher a spec names. regions may be nil; only the
// VMA scheme consults it.
func New(spec string, regions RegionResolver) (Prefetcher, error) {
	sc, args, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	// Hand Build a complete parameter set so constructors never guess
	// at defaults declared here.
	full := make([]argKV, 0, len(sc.Params))
	for _, p := range sc.Params {
		full = append(full, argKV{key: p.Key, val: args.Int(p.Key, p.Default)})
	}
	return sc.Build(Args{kv: full}, regions), nil
}

// Specs returns the advertised spec list, sorted: each scheme's
// Variants when declared, otherwise its canonical default spec. Every
// entry round-trips through Canonical and New.
func Specs() []string {
	out := make([]string, 0, len(schemeNames))
	for _, name := range schemeNames {
		sc := schemes[name]
		if len(sc.Variants) > 0 {
			out = append(out, sc.Variants...)
			continue
		}
		out = append(out, sc.canonical(Args{}))
	}
	sort.Strings(out)
	return out
}

// Schemes returns the registered schemes sorted by name, for docs and
// catalog listings.
func Schemes() []*Scheme {
	out := make([]*Scheme, 0, len(schemeNames))
	for _, name := range schemeNames {
		out = append(out, schemes[name])
	}
	return out
}

func init() {
	Register(Scheme{
		Name: "noprefetch",
		Doc:  "demand paging only; the Fig. 17 normalization baseline",
		Build: func(Args, RegionResolver) Prefetcher {
			return None{}
		},
	})
	Register(Scheme{
		Name:   "fastswap",
		Doc:    "Fastswap's sequential readahead on swap offsets",
		Params: []Param{{Key: "window", Default: 8}},
		Build: func(a Args, _ RegionResolver) Prefetcher {
			return NewReadahead(a.Int("window", 8))
		},
	})
	Register(Scheme{
		Name:   "leap",
		Doc:    "majority-stride prefetching over the fault history",
		Params: []Param{{Key: "history", Default: 4}, {Key: "depth", Default: 8}},
		Build: func(a Args, _ RegionResolver) Prefetcher {
			return NewLeap(a.Int("history", 4), a.Int("depth", 8))
		},
	})
	Register(Scheme{
		Name:     "depth",
		Doc:      "fixed-depth prefetching with early PTE injection",
		Params:   []Param{{Key: "n", Default: 32}},
		Suffix:   "n",
		Variants: []string{"depth-16", "depth-32"},
		Build: func(a Args, _ RegionResolver) Prefetcher {
			return NewDepthN(a.Int("n", 32))
		},
	})
	Register(Scheme{
		Name:   "vma",
		Doc:    "Linux 5.4's VMA-clipped neighbourhood readahead",
		Params: []Param{{Key: "window", Default: 8}},
		Build: func(a Args, r RegionResolver) Prefetcher {
			return NewVMA(a.Int("window", 8), r)
		},
	})
}
