package prefetch

import (
	"testing"

	"hopp/internal/memsim"
)

func k(pid memsim.PID, vpn memsim.VPN) memsim.PageKey {
	return memsim.PageKey{PID: pid, VPN: vpn}
}

func TestNone(t *testing.T) {
	var n None
	if n.OnFault(0, k(1, 5)) != nil || n.Inject() {
		t.Fatal("None must never prefetch or inject")
	}
}

func TestReadaheadWindow(t *testing.T) {
	r := NewReadahead(4)
	got := r.OnFault(0, k(1, 100))
	want := []memsim.VPN{101, 102, 103, 104}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if r.Inject() {
		t.Fatal("Fastswap must land in swapcache, not inject")
	}
	if NewReadahead(0).Window != 8 {
		t.Fatal("default window not 8")
	}
}

func TestLeapDetectsCleanStride(t *testing.T) {
	l := NewLeap(4, 8)
	// Faults with stride 3: 0, 3, 6, 9.
	l.OnFault(0, k(1, 0))
	l.OnFault(0, k(1, 3))
	l.OnFault(0, k(1, 6))
	got := l.OnFault(0, k(1, 9))
	if len(got) != 8 {
		t.Fatalf("depth = %d", len(got))
	}
	for i, v := range got {
		if v != memsim.VPN(9+3*(i+1)) {
			t.Fatalf("got %v, want stride-3 continuation", got)
		}
	}
}

func TestLeapNegativeStride(t *testing.T) {
	l := NewLeap(4, 4)
	for _, v := range []memsim.VPN{100, 98, 96} {
		l.OnFault(0, k(1, v))
	}
	got := l.OnFault(0, k(1, 94))
	if len(got) == 0 || got[0] != 92 {
		t.Fatalf("descending stride not followed: %v", got)
	}
}

func TestLeapFallbackOnNoMajority(t *testing.T) {
	l := NewLeap(4, 8)
	for _, v := range []memsim.VPN{10, 500, 11, 900} {
		l.OnFault(0, k(1, v))
	}
	got := l.OnFault(0, k(1, 12))
	// Fallback: shallow neighbourhood (Depth/2 = 4 sequential pages).
	if len(got) != 4 || got[0] != 13 {
		t.Fatalf("fallback = %v", got)
	}
}

// The Fig. 1 / §VI-E limitation: with two streams' faults interleaved,
// Leap's shared history yields garbage strides, so over a whole run it
// usefully covers fewer future faults than Fastswap's plain readahead.
func TestLeapConfusedByInterleavedStreams(t *testing.T) {
	// Stream A: stride 3 from 1000; stream B: stride 2 from 500000.
	// Faults alternate (two concurrent threads).
	var faults []memsim.VPN
	a, b := memsim.VPN(1000), memsim.VPN(500000)
	for i := 0; i < 200; i++ {
		faults = append(faults, a, b)
		a += 3
		b += 2
	}
	usefulFrac := func(p Prefetcher) float64 {
		prefetched := make(map[memsim.VPN]bool)
		hits := 0
		for _, f := range faults {
			if prefetched[f] {
				hits++
			}
			for _, v := range p.OnFault(0, k(1, f)) {
				prefetched[v] = true
			}
		}
		return float64(hits) / float64(len(faults))
	}
	leap := usefulFrac(NewLeap(4, 8))
	fastswap := usefulFrac(NewReadahead(8))
	if leap >= fastswap {
		t.Fatalf("Leap (%.3f) should cover less than Fastswap (%.3f) under interleaving", leap, fastswap)
	}
	// And on a single clean stream with a stride wider than the readahead
	// window, Leap must beat Fastswap (readahead-8 never reaches F+16).
	faults = nil
	for i := 0; i < 200; i++ {
		faults = append(faults, memsim.VPN(1000+i*16))
	}
	leap = usefulFrac(NewLeap(4, 8))
	fastswap = usefulFrac(NewReadahead(8))
	if leap <= fastswap {
		t.Fatalf("Leap (%.3f) should beat Fastswap (%.3f) on a clean strided stream", leap, fastswap)
	}
}

func TestLeapPerPIDHistory(t *testing.T) {
	l := NewLeap(4, 4)
	// PID 1 faults with stride 5; PID 2 interleaves with stride 7. If
	// histories were shared, neither stride would be the majority.
	l.OnFault(0, k(1, 0))
	l.OnFault(0, k(2, 1000))
	l.OnFault(0, k(1, 5))
	l.OnFault(0, k(2, 1007))
	l.OnFault(0, k(1, 10))
	l.OnFault(0, k(2, 1014))
	got := l.OnFault(0, k(1, 15))
	if len(got) == 0 || got[0] != 20 {
		t.Fatalf("per-PID stride broken: %v", got)
	}
}

func TestLeapStrideClipping(t *testing.T) {
	l := NewLeap(4, 8)
	// Descending faults near VPN 0: predictions must stop at 0, not wrap.
	l.OnFault(0, k(1, 9))
	l.OnFault(0, k(1, 6))
	l.OnFault(0, k(1, 3))
	got := l.OnFault(0, k(1, 2)) // history 9,6,3,2: strides -3,-3,-1 → majority -3
	for _, v := range got {
		if int64(v) <= 0 {
			t.Fatalf("prediction wrapped below zero: %v", got)
		}
	}
}

func TestDepthN(t *testing.T) {
	d := NewDepthN(16)
	if !d.Inject() {
		t.Fatal("Depth-N must inject PTEs")
	}
	if d.Name() != "Depth-16" {
		t.Fatalf("name = %q", d.Name())
	}
	got := d.OnFault(0, k(1, 50))
	if len(got) != 16 || got[0] != 51 || got[15] != 66 {
		t.Fatalf("got %v", got)
	}
	if NewDepthN(32).Name() != "Depth-32" {
		t.Fatal("Depth-32 name wrong")
	}
}

type fixedRegions map[memsim.PID][][2]memsim.VPN

func (f fixedRegions) Region(key memsim.PageKey) (memsim.VPN, memsim.VPN, bool) {
	for _, r := range f[key.PID] {
		if key.VPN >= r[0] && key.VPN < r[1] {
			return r[0], r[1], true
		}
	}
	return 0, 0, false
}

func TestVMAClipsToRegion(t *testing.T) {
	res := fixedRegions{1: {{100, 110}}}
	v := NewVMA(8, res)
	got := v.OnFault(0, k(1, 106))
	// Forward: 107, 108, 109 (110 excluded); backward fill: 105, 104, 103, 102, 101.
	if len(got) != 8 {
		t.Fatalf("got %d pages: %v", len(got), got)
	}
	for _, p := range got {
		if p < 100 || p >= 110 {
			t.Fatalf("prefetch %d escaped the VMA", p)
		}
		if p == 106 {
			t.Fatal("prefetched the faulting page itself")
		}
	}
}

func TestVMANoRegion(t *testing.T) {
	v := NewVMA(8, fixedRegions{})
	if got := v.OnFault(0, k(1, 5)); got != nil {
		t.Fatalf("prefetched outside any VMA: %v", got)
	}
}

func TestVMADoesNotCrossRegions(t *testing.T) {
	res := fixedRegions{1: {{0, 10}, {10, 20}}}
	v := NewVMA(8, res)
	got := v.OnFault(0, k(1, 8))
	for _, p := range got {
		if p >= 10 {
			t.Fatalf("prefetch %d crossed into the next VMA", p)
		}
	}
}
