package prefetch

import (
	"testing"

	"hopp/internal/memsim"
)

// feedbackSpecs lists the schemes that consume the feedback seams; the
// determinism and zero-alloc guarantees below are their acceptance
// criteria.
var feedbackSpecs = []string{"spp", "chimera", "hhp"}

// faultStream drives a prefetcher through a deterministic mixed
// workload — stride runs, region-local bursts, and jumps, all from a
// fixed-seed xorshift — applying hit/evict feedback to a rotating
// subset of issued pages. It returns every VPN the scheme issued.
func faultStream(p Prefetcher, faults int) []memsim.VPN {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var issued []memsim.VPN
	vpn := memsim.VPN(1 << 16)
	for i := 0; i < faults; i++ {
		switch next() % 8 {
		case 0: // jump to a new neighbourhood
			vpn = memsim.VPN(1<<16 + next()%(1<<20))
		case 1, 2: // region-local burst
			vpn = (vpn &^ 63) + memsim.VPN(next()%64)
		default: // stride run
			vpn += memsim.VPN(1 + next()%16)
		}
		pid := memsim.PID(1 + next()%4)
		out := p.OnFault(0, memsim.PageKey{PID: pid, VPN: vpn})
		for _, v := range out {
			issued = append(issued, v)
			switch next() % 3 {
			case 0:
				p.OnPrefetchHit(0, memsim.PageKey{PID: pid, VPN: v})
			case 1:
				p.OnPrefetchEvicted(0, memsim.PageKey{PID: pid, VPN: v}, next()%2 == 0)
			}
		}
	}
	return issued
}

// Two instances of the same spec driven through the same fault and
// feedback stream must issue identical prefetch streams — the schemes
// are deterministic, as lint.DeterministicPackages declares.
func TestFeedbackSchemesDeterministic(t *testing.T) {
	for _, spec := range feedbackSpecs {
		a, err := New(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		sa := faultStream(a, 4096)
		sb := faultStream(b, 4096)
		if len(sa) == 0 {
			t.Errorf("%s issued nothing over the mixed stream", spec)
		}
		if len(sa) != len(sb) {
			t.Fatalf("%s nondeterministic: %d vs %d issues", spec, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("%s nondeterministic at issue %d: %d vs %d", spec, i, sa[i], sb[i])
			}
		}
	}
}

// The fault and feedback paths must not allocate in steady state: the
// out buffer and every table are sized at construction.
func TestFeedbackSchemesZeroAlloc(t *testing.T) {
	for _, spec := range feedbackSpecs {
		p, err := New(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		faultStream(p, 2048) // warm the tables
		vpn := memsim.VPN(1 << 18)
		avg := testing.AllocsPerRun(200, func() {
			vpn += 16
			out := p.OnFault(0, memsim.PageKey{PID: 1, VPN: vpn})
			for _, v := range out {
				p.OnPrefetchHit(0, memsim.PageKey{PID: 1, VPN: v})
				p.OnPrefetchEvicted(0, memsim.PageKey{PID: 1, VPN: v}, false)
			}
		})
		if avg != 0 {
			t.Errorf("%s fault+feedback path allocates %.1f per run", spec, avg)
		}
	}
}
