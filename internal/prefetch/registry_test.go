package prefetch

import (
	"strings"
	"testing"
)

// Every advertised spec must round-trip: canonicalize idempotently,
// construct, and report a non-empty display name.
func TestSpecsRoundTrip(t *testing.T) {
	specs := Specs()
	if len(specs) == 0 {
		t.Fatal("no registered specs")
	}
	for _, spec := range specs {
		canon, err := Canonical(spec)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", spec, err)
		}
		if canon != spec {
			t.Errorf("advertised spec %q is not canonical (canonicalizes to %q)", spec, canon)
		}
		again, err := Canonical(canon)
		if err != nil || again != canon {
			t.Errorf("Canonical not idempotent on %q: %q, %v", canon, again, err)
		}
		p, err := New(spec, nil)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		if p.Name() == "" {
			t.Errorf("New(%q).Name() empty", spec)
		}
	}
}

func TestCanonicalEquivalences(t *testing.T) {
	cases := []struct{ in, want string }{
		{"spp", "spp"},
		{"SPP", "spp"},
		{" spp ", "spp"},
		{"spp?lookahead=4", "spp"},          // default dropped
		{"spp?threshold=25&lookahead=4", "spp"},
		{"spp?lookahead=6", "spp?lookahead=6"},
		{"spp?threshold=30&lookahead=6", "spp?lookahead=6&threshold=30"}, // declared order
		{"depth", "depth-32"},
		{"depth-16", "depth-16"},
		{"depth?n=16", "depth-16"},
		{"depth-32", "depth-32"},
		{"leap?history=4&depth=8", "leap"},
		{"leap?depth=16", "leap?depth=16"},
		{"chimera?degree=8&explore=16", "chimera"},
		{"hhp?degree=32", "hhp?degree=32"},
		{"noprefetch", "noprefetch"},
		{"vma?window=8", "vma"},
	}
	for _, tc := range cases {
		got, err := Canonical(tc.in)
		if err != nil {
			t.Errorf("Canonical(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Canonical(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"nosuch",
		"depth-",
		"depth-x",
		"spp?bogus=1",
		"spp?lookahead=abc",
		"spp?lookahead",
		"depth-16?n=32", // suffix and query bind the same key
		"spp?lookahead=4&lookahead=6",
		"fastswap-8", // no suffix param declared
	} {
		if _, err := Canonical(bad); err == nil {
			t.Errorf("Canonical(%q) succeeded, want error", bad)
		}
		if _, err := New(bad, nil); err == nil {
			t.Errorf("New(%q) succeeded, want error", bad)
		}
	}
	if _, err := Canonical("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("unknown-scheme error should name the problem, got %v", err)
	}
}

// Parameterized construction must reach the constructors: depth-16
// reports Depth-16, and a widened fastswap window issues that many
// pages.
func TestParamsReachConstructors(t *testing.T) {
	d, err := New("depth-16", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "Depth-16" {
		t.Errorf("depth-16 name = %q", d.Name())
	}
	d2, err := New("depth?n=48", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name() != "Depth-48" {
		t.Errorf("depth?n=48 name = %q, want Depth-48", d2.Name())
	}
	f, err := New("fastswap?window=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.OnFault(0, k(1, 100))); got != 3 {
		t.Errorf("fastswap?window=3 issued %d pages, want 3", got)
	}
}

// Schemes returns every scheme with docs, sorted by name.
func TestSchemesListing(t *testing.T) {
	list := Schemes()
	if len(list) == 0 {
		t.Fatal("no schemes")
	}
	for i, sc := range list {
		if sc.Doc == "" {
			t.Errorf("scheme %s has no doc", sc.Name)
		}
		if i > 0 && list[i-1].Name >= sc.Name {
			t.Errorf("schemes unsorted: %s before %s", list[i-1].Name, sc.Name)
		}
	}
}
