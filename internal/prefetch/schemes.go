package prefetch

import (
	"strconv"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// The ported kernel baselines. These moved verbatim from the old
// internal/swap package: their OnFault streams are byte-identical to
// the pre-substrate port (regression-locked by the experiments golden
// tests), and they embed NopFeedback because none of them carries
// confidence state to train.

// None is the no-prefetch baseline.
type None struct{ NopFeedback }

// Name implements Prefetcher.
func (None) Name() string { return "NoPrefetch" }

// OnFault implements Prefetcher; it never prefetches.
func (None) OnFault(vclock.Time, memsim.PageKey) []memsim.VPN { return nil }

// Inject implements Prefetcher.
func (None) Inject() bool { return false }

// Readahead is Fastswap's prefetcher: on a fault at page F it reads the
// next Window pages in swap-offset order. Swap offsets correlate with
// the order pages were reclaimed; for the sequentially reclaimed
// anonymous regions the comparison workloads use, VPN order is the
// faithful approximation (the paper makes the same observation in §VI-E:
// "Fastswap prefetches adjacent pages based on swap offset").
type Readahead struct {
	NopFeedback
	// Window is the number of pages to read ahead. Default 8, Linux's
	// default page-cluster of 3 (2³ pages).
	Window int
}

// NewReadahead returns Fastswap's prefetcher with the default window.
func NewReadahead(window int) *Readahead {
	if window <= 0 {
		window = 8
	}
	return &Readahead{Window: window}
}

// Name implements Prefetcher.
func (r *Readahead) Name() string { return "Fastswap" }

// Inject implements Prefetcher.
func (r *Readahead) Inject() bool { return false }

// OnFault implements Prefetcher.
func (r *Readahead) OnFault(_ vclock.Time, key memsim.PageKey) []memsim.VPN {
	out := make([]memsim.VPN, 0, r.Window)
	for i := 1; i <= r.Window; i++ {
		out = append(out, key.VPN+memsim.VPN(i))
	}
	return out
}

// Leap is the majority-based prefetcher of Maruf & Chowdhury [38]: it
// keeps a window of recent fault addresses per process, finds the
// majority stride with Boyer–Moore voting, and prefetches along that
// stride; with no majority it falls back to a reduced readahead.
//
// Because the history window mixes faults from all of a process's
// streams, interleaved streams corrupt the stride — the §II-B limitation
// Fig. 1 illustrates.
type Leap struct {
	NopFeedback
	// HistoryWindow is how many recent faults feed stride detection.
	// Default 4 (the configuration Fig. 1 analyses).
	HistoryWindow int
	// Depth is how many pages to prefetch along a detected stride.
	// Default 8.
	Depth int

	history map[memsim.PID][]memsim.VPN
}

// NewLeap returns Leap with the paper's analysed configuration.
func NewLeap(historyWindow, depth int) *Leap {
	if historyWindow <= 0 {
		historyWindow = 4
	}
	if depth <= 0 {
		depth = 8
	}
	return &Leap{
		HistoryWindow: historyWindow,
		Depth:         depth,
		history:       make(map[memsim.PID][]memsim.VPN),
	}
}

// Name implements Prefetcher.
func (l *Leap) Name() string { return "Leap" }

// Inject implements Prefetcher.
func (l *Leap) Inject() bool { return false }

// OnFault implements Prefetcher.
func (l *Leap) OnFault(_ vclock.Time, key memsim.PageKey) []memsim.VPN {
	h := l.history[key.PID]
	h = append(h, key.VPN)
	if len(h) > l.HistoryWindow {
		h = h[len(h)-l.HistoryWindow:]
	}
	l.history[key.PID] = h

	if stride, ok := l.majorityStride(h); ok && stride != 0 {
		out := make([]memsim.VPN, 0, l.Depth)
		for i := 1; i <= l.Depth; i++ {
			v := int64(key.VPN) + int64(i)*int64(stride)
			if v <= 0 || v > int64(memsim.MaxVPN) {
				break
			}
			out = append(out, memsim.VPN(v))
		}
		return out
	}
	// No trend: Leap degrades to a shallow neighbourhood read.
	out := make([]memsim.VPN, 0, l.Depth/2)
	for i := 1; i <= l.Depth/2; i++ {
		out = append(out, key.VPN+memsim.VPN(i))
	}
	return out
}

// majorityStride runs Boyer–Moore over the history's strides and
// verifies the candidate truly is a majority (> half).
func (l *Leap) majorityStride(h []memsim.VPN) (memsim.Stride, bool) {
	if len(h) < 2 {
		return 0, false
	}
	var candidate memsim.Stride
	count := 0
	n := 0
	for i := 1; i < len(h); i++ {
		s := memsim.StrideBetween(h[i-1], h[i])
		n++
		if count == 0 {
			candidate, count = s, 1
		} else if s == candidate {
			count++
		} else {
			count--
		}
	}
	occur := 0
	for i := 1; i < len(h); i++ {
		if memsim.StrideBetween(h[i-1], h[i]) == candidate {
			occur++
		}
	}
	if occur*2 > n {
		return candidate, true
	}
	return 0, false
}

// DepthN is the early-PTE-injection prefetcher of Awad et al. [9]
// (§II-C): on every fault it prefetches the next N pages and maps them
// immediately. N is fixed — with PTEs injected, no fault ever reports
// whether the prefetches were useful, so the depth cannot adapt.
type DepthN struct {
	NopFeedback
	// N is the fixed prefetch depth; the paper evaluates 16 and 32.
	N int
}

// NewDepthN returns the Depth-N prefetcher.
func NewDepthN(n int) *DepthN {
	if n <= 0 {
		n = 32
	}
	return &DepthN{N: n}
}

// Name implements Prefetcher.
func (d *DepthN) Name() string { return "Depth-" + strconv.Itoa(d.N) }

// Inject implements Prefetcher.
func (d *DepthN) Inject() bool { return true }

// OnFault implements Prefetcher.
func (d *DepthN) OnFault(_ vclock.Time, key memsim.PageKey) []memsim.VPN {
	out := make([]memsim.VPN, 0, d.N)
	for i := 1; i <= d.N; i++ {
		out = append(out, key.VPN+memsim.VPN(i))
	}
	return out
}

// VMA is Linux 5.4's VMA-based prefetcher: readahead around the fault,
// clipped to the containing VMA — "VMA is a resemblance of page
// clustering" (§VI-E), which is why it beats raw swap-offset readahead.
type VMA struct {
	NopFeedback
	// Window is the total neighbourhood size. Default 8.
	Window   int
	resolver RegionResolver
}

// NewVMA returns the VMA prefetcher.
func NewVMA(window int, resolver RegionResolver) *VMA {
	if window <= 0 {
		window = 8
	}
	return &VMA{Window: window, resolver: resolver}
}

// Name implements Prefetcher.
func (v *VMA) Name() string { return "VMA" }

// Inject implements Prefetcher.
func (v *VMA) Inject() bool { return false }

// OnFault implements Prefetcher.
func (v *VMA) OnFault(_ vclock.Time, key memsim.PageKey) []memsim.VPN {
	if v.resolver == nil {
		return nil
	}
	start, end, ok := v.resolver.Region(key)
	if !ok {
		return nil
	}
	out := make([]memsim.VPN, 0, v.Window)
	for i := 1; i <= v.Window && key.VPN+memsim.VPN(i) < end; i++ {
		out = append(out, key.VPN+memsim.VPN(i))
	}
	// Fill the remainder backwards within the VMA, as the kernel's
	// swap_vma_readahead centres its window on the fault.
	for i := 1; len(out) < v.Window && int64(key.VPN)-int64(i) >= int64(start); i++ {
		out = append(out, key.VPN-memsim.VPN(i))
	}
	return out
}
