package prefetch

import (
	"testing"

	"hopp/internal/memsim"
)

// The accuracy-shift test from the substrate's acceptance criteria: a
// stride-16 fault stream with adversarial feedback that rewards only
// spatial-shaped candidates (delta +1..+8 from the trigger) and evicts
// everything else unused. The arbiter must migrate to the spatial
// component even though the stream itself is a clean stride the stride
// component predicts perfectly — demonstrating that the feedback
// seams, not the fault pattern, drive component selection.
func TestChimeraAccuracyShiftsArbiter(t *testing.T) {
	c := NewChimera(8, 16)
	vpn := memsim.VPN(1 << 20)
	for i := 0; i < 200; i++ {
		out := c.OnFault(0, k(1, vpn))
		for _, v := range out {
			d := int64(v) - int64(vpn)
			if d >= 1 && d <= 8 {
				c.OnPrefetchHit(0, k(1, v))
			} else {
				c.OnPrefetchEvicted(0, k(1, v), false)
			}
		}
		vpn += 16
	}
	if got := c.Leader(); got != "spatial" {
		t.Fatalf("arbiter leader = %q after adversarial feedback, want spatial", got)
	}
	// faults is 201 on the next call, not a multiple of explore=16, so
	// this is a non-explore round and the leader issues: exactly +1..+8.
	out := c.OnFault(0, k(1, vpn))
	if len(out) != 8 {
		t.Fatalf("leader round issued %v, want 8 spatial pages", out)
	}
	for i, v := range out {
		if v != vpn+memsim.VPN(i+1) {
			t.Fatalf("leader round issued %v, want %d..%d", out, vpn+1, vpn+8)
		}
	}
	if c.comp[chimSpatial].useful == 0 || c.comp[chimStride].useless == 0 {
		t.Fatalf("feedback tallies not consumed: %+v", c.comp)
	}
}

// With feedback rewarding the stride component instead, the same
// stream keeps (or returns) the stride leader and non-explore rounds
// issue the stride continuation.
func TestChimeraRewardedStrideLeads(t *testing.T) {
	c := NewChimera(4, 16)
	vpn := memsim.VPN(1 << 20)
	for i := 0; i < 200; i++ {
		out := c.OnFault(0, k(1, vpn))
		for _, v := range out {
			if (int64(v)-int64(vpn))%16 == 0 {
				c.OnPrefetchHit(0, k(1, v))
			} else {
				c.OnPrefetchEvicted(0, k(1, v), false)
			}
		}
		vpn += 16
	}
	if got := c.Leader(); got != "stride" {
		t.Fatalf("arbiter leader = %q with stride-rewarding feedback, want stride", got)
	}
	out := c.OnFault(0, k(1, vpn))
	if len(out) != 4 {
		t.Fatalf("leader round issued %v, want 4 stride pages", out)
	}
	for i, v := range out {
		if v != vpn+memsim.VPN(16*(i+1)) {
			t.Fatalf("leader round issued %v, want stride-16 continuation", out)
		}
	}
}

// A used eviction must credit the component like a hit: the prefetch
// served its purpose before reclaim.
func TestChimeraUsedEvictionCredits(t *testing.T) {
	c := NewChimera(2, 16)
	vpn := memsim.VPN(4096)
	for i := 0; i < 8; i++ {
		out := c.OnFault(0, k(1, vpn))
		for _, v := range out {
			c.OnPrefetchEvicted(0, k(1, v), true)
		}
		vpn += 16
	}
	var useful, useless uint64
	for i := range c.comp {
		useful += c.comp[i].useful
		useless += c.comp[i].useless
	}
	if useful == 0 || useless != 0 {
		t.Fatalf("used evictions tallied useful=%d useless=%d, want all useful", useful, useless)
	}
}
