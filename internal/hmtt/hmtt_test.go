package hmtt

import (
	"bytes"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{},
		{Seq: 255, TimestampDelta: 255, Write: true, Page: (1 << 29) - 1},
		{Seq: 7, TimestampDelta: 3, Write: false, Page: 0x12345},
	}
	var buf [RecordSize]byte
	for _, r := range cases {
		n := r.Encode(buf[:])
		if n != RecordSize {
			t.Fatalf("Encode wrote %d bytes", n)
		}
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Errorf("round trip: got %+v, want %+v", got, r)
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(seq, ts uint8, write bool, page uint32) bool {
		r := Record{Seq: seq, TimestampDelta: ts, Write: write, Page: memsim.PPN(page & ((1 << 29) - 1))}
		var buf [RecordSize]byte
		r.Encode(buf[:])
		got, err := Decode(buf[:])
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on short record")
	}
}

func TestCaptureBasics(t *testing.T) {
	c := NewCapture(16)
	c.Observe(0, 100, false)
	c.Observe(vclock.Time(250), 101, true)
	if c.Pending() != 2 || c.Observed() != 2 {
		t.Fatalf("pending=%d observed=%d", c.Pending(), c.Observed())
	}
	recs := c.Drain(0)
	if len(recs) != 2 {
		t.Fatalf("drained %d", len(recs))
	}
	if recs[0].Page != 100 || recs[0].Write {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Page != 101 || !recs[1].Write {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	if recs[1].TimestampDelta != 2 { // 250ns / 100ns ticks
		t.Fatalf("delta = %d, want 2", recs[1].TimestampDelta)
	}
	if recs[1].Seq != recs[0].Seq+1 {
		t.Fatal("sequence numbers not consecutive")
	}
	if c.BytesOut() != 2*RecordSize {
		t.Fatalf("BytesOut = %d", c.BytesOut())
	}
}

func TestCaptureOverflowDropsOldest(t *testing.T) {
	c := NewCapture(4)
	for i := 0; i < 6; i++ {
		c.Observe(0, memsim.PPN(i), false)
	}
	if c.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.Dropped())
	}
	recs := c.Drain(0)
	if len(recs) != 4 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].Page != 2 || recs[3].Page != 5 {
		t.Fatalf("kept wrong window: first=%d last=%d", recs[0].Page, recs[3].Page)
	}
	// Loss is visible in the seq gap between pre-drop and post-drop drains.
}

func TestDrainMax(t *testing.T) {
	c := NewCapture(8)
	for i := 0; i < 5; i++ {
		c.Observe(0, memsim.PPN(i), false)
	}
	first := c.Drain(2)
	if len(first) != 2 || c.Pending() != 3 {
		t.Fatalf("partial drain broken: got %d pending %d", len(first), c.Pending())
	}
	rest := c.Drain(0)
	if len(rest) != 3 || rest[0].Page != 2 {
		t.Fatalf("rest = %+v", rest)
	}
}

func TestTimestampSaturation(t *testing.T) {
	c := NewCapture(4)
	c.Observe(0, 1, false)
	c.Observe(vclock.Time(1_000_000), 2, false) // 10,000 ticks later
	recs := c.Drain(0)
	if recs[1].TimestampDelta != 255 {
		t.Fatalf("delta = %d, want saturated 255", recs[1].TimestampDelta)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	c := NewCapture(64)
	for i := 0; i < 10; i++ {
		c.Observe(vclock.Time(i*300), memsim.PPN(i*7), i%2 == 0)
	}
	recs := c.Drain(0)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 10*RecordSize {
		t.Fatalf("trace size = %d", buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestLossBetween(t *testing.T) {
	a := Record{Seq: 10}
	if LossBetween(a, Record{Seq: 11}) != 0 {
		t.Fatal("contiguous records reported loss")
	}
	if LossBetween(a, Record{Seq: 14}) != 3 {
		t.Fatal("gap of 3 not detected")
	}
	// Wraparound: 255 -> 0 is contiguous.
	if LossBetween(Record{Seq: 255}, Record{Seq: 0}) != 0 {
		t.Fatal("seq wraparound mishandled")
	}
}

func TestAddressMasking(t *testing.T) {
	c := NewCapture(2)
	c.Observe(0, memsim.PPN(1<<33|42), false)
	recs := c.Drain(0)
	if recs[0].Page != 42 {
		t.Fatalf("page = %d, want masked 42", recs[0].Page)
	}
}
