package hmtt

import (
	"bytes"
	"encoding/json"
	"testing"

	"hopp/internal/memsim"
)

// encodeSeq builds a contiguous encoded stream of n records starting at
// sequence number start, skipping the sequence numbers in skip to
// synthesize capture loss.
func encodeSeq(start uint8, n int, skip map[uint8]bool) ([]byte, []Record) {
	var buf bytes.Buffer
	var recs []Record
	seq := start
	for len(recs) < n {
		if skip[seq] {
			seq++
			continue
		}
		r := Record{
			Seq:            seq,
			TimestampDelta: uint8(len(recs) % 7),
			Write:          len(recs)%3 == 0,
			Page:           memsim.PPN(uint32(len(recs)*977) & addrMask),
		}
		var b [RecordSize]byte
		r.Encode(b[:])
		buf.Write(b[:])
		recs = append(recs, r)
		seq++
	}
	return buf.Bytes(), recs
}

// feedIn splits raw into pieces of the given sizes (cycling) and feeds
// them through d, collecting emitted records and per-record gaps.
func feedIn(d *Decoder, raw []byte, sizes []int) ([]Record, []int) {
	var got []Record
	var gaps []int
	emit := func(r Record, lost int) {
		got = append(got, r)
		gaps = append(gaps, lost)
	}
	i := 0
	for len(raw) > 0 {
		n := sizes[i%len(sizes)]
		i++
		if n > len(raw) {
			n = len(raw)
		}
		d.Feed(raw[:n], emit)
		raw = raw[n:]
	}
	return got, gaps
}

func TestDecoderTornBoundaries(t *testing.T) {
	raw, want := encodeSeq(250, 64, nil) // wraps 255 -> 0 mid-stream
	// Every split pattern must yield the identical record stream.
	for _, sizes := range [][]int{{1}, {2}, {3}, {5}, {7}, {6}, {RecordSize - 1, 1}, {11, 1, 2}, {len(raw)}} {
		var d Decoder
		got, gaps := feedIn(&d, raw, sizes)
		if len(got) != len(want) {
			t.Fatalf("sizes %v: decoded %d records, want %d", sizes, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sizes %v: record %d = %+v, want %+v", sizes, i, got[i], want[i])
			}
			if gaps[i] != 0 {
				t.Fatalf("sizes %v: record %d reported loss %d on contiguous stream", sizes, i, gaps[i])
			}
		}
		if d.Records() != uint64(len(want)) || d.Lost() != 0 || d.Buffered() != 0 {
			t.Fatalf("sizes %v: records=%d lost=%d buffered=%d", sizes, d.Records(), d.Lost(), d.Buffered())
		}
	}
}

func TestDecoderIncrementalLoss(t *testing.T) {
	// Drop seqs 5,6 and 250..252: gaps of 2 and 3 must be attributed to
	// the records that follow them, matching the batch LossBetween math.
	skip := map[uint8]bool{5: true, 6: true, 250: true, 251: true, 252: true}
	raw, want := encodeSeq(0, 300, skip)
	var d Decoder
	got, gaps := feedIn(&d, raw, []int{5})
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	wantLost := uint64(0)
	for i := 1; i < len(want); i++ {
		exp := LossBetween(want[i-1], want[i])
		if gaps[i] != exp {
			t.Fatalf("record %d: gap %d, want LossBetween=%d", i, gaps[i], exp)
		}
		wantLost += uint64(exp)
	}
	if gaps[0] != 0 {
		t.Fatalf("first record reported loss %d", gaps[0])
	}
	if wantLost == 0 {
		t.Fatal("test stream synthesized no loss")
	}
	if d.Lost() != wantLost {
		t.Fatalf("Lost = %d, want %d", d.Lost(), wantLost)
	}
}

func TestDecoderStateRestoreMidRecord(t *testing.T) {
	raw, want := encodeSeq(40, 32, map[uint8]bool{50: true})
	// Feed up to a deliberately torn point: 10 whole records + 4 bytes.
	cut := 10*RecordSize + 4
	var d1 Decoder
	var got []Record
	emit := func(r Record, _ int) { got = append(got, r) }
	d1.Feed(raw[:cut], emit)
	if d1.Buffered() != 4 {
		t.Fatalf("buffered %d, want 4", d1.Buffered())
	}

	// Snapshot, shuttle through JSON like the journal does, restore into
	// a fresh decoder, and finish the stream.
	st := d1.State()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 DecoderState
	if err := json.Unmarshal(b, &st2); err != nil {
		t.Fatal(err)
	}
	var d2 Decoder
	d2.Restore(st2)
	if d2.Buffered() != 4 || d2.Records() != 10 {
		t.Fatalf("restored buffered=%d records=%d", d2.Buffered(), d2.Records())
	}
	d2.Feed(raw[cut:], emit)

	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Loss accounting must survive the restore: the skipped seq 50 sits
	// after the cut, so d2 attributes it using d1's carried prevSeq.
	if d2.Lost() != 1 {
		t.Fatalf("Lost = %d, want 1", d2.Lost())
	}

	// Mutating the snapshot's Partial must not disturb the source.
	if len(st.Partial) > 0 {
		st.Partial[0] ^= 0xff
		st3 := d1.State()
		if st3.Partial[0] == st.Partial[0] {
			t.Fatal("State returned aliased Partial")
		}
	}
}

func TestDecoderRestoreOversizedPartial(t *testing.T) {
	var d Decoder
	d.Restore(DecoderState{Partial: make([]byte, 3*RecordSize)})
	if d.Buffered() >= RecordSize {
		t.Fatalf("buffered %d after corrupt restore", d.Buffered())
	}
	// Must still decode cleanly after the truncated garbage prefix.
	d.Feed(make([]byte, RecordSize), func(Record, int) {})
}

func TestDecoderFeedZeroAlloc(t *testing.T) {
	raw, _ := encodeSeq(0, 128, nil)
	var d Decoder
	emit := func(Record, int) {}
	allocs := testing.AllocsPerRun(100, func() {
		d.Feed(raw[:31], emit)
		d.Feed(raw[31:], emit)
	})
	if allocs != 0 {
		t.Fatalf("Feed allocated %.1f times per run, want 0", allocs)
	}
}

func FuzzDecoder(f *testing.F) {
	raw, _ := encodeSeq(200, 20, map[uint8]bool{210: true})
	f.Add(raw, uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff, 0x00, 0xde, 0xad, 0xbe}, uint8(3))
	f.Add(bytes.Repeat([]byte{0xa5}, 64), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, step uint8) {
		sz := int(step%13) + 1
		var d Decoder
		n := 0
		emit := func(Record, int) { n++ }
		for p := data; len(p) > 0; {
			c := sz
			if c > len(p) {
				c = len(p)
			}
			d.Feed(p[:c], emit)
			p = p[c:]
		}
		// However torn or garbage the input, framing is exact: every
		// complete 6-byte group becomes exactly one record and the tail
		// is carried, never dropped or double-counted.
		if n != len(data)/RecordSize {
			t.Fatalf("emitted %d records from %d bytes", n, len(data))
		}
		if d.Records() != uint64(n) {
			t.Fatalf("Records=%d, emitted %d", d.Records(), n)
		}
		if d.Buffered() != len(data)%RecordSize {
			t.Fatalf("Buffered=%d from %d bytes", d.Buffered(), len(data))
		}
	})
}
