package hmtt

import "hopp/internal/memsim"

// Decoder incrementally decodes a stream of 6-byte HMTT records whose
// bytes arrive in arbitrary pieces — HTTP chunk uploads, short reads,
// torn writes. Records split across Feed boundaries are carried in a
// partial buffer until their remaining bytes arrive, and sequence-gap
// loss (the paper's capture-buffer overflow signal) is accounted
// incrementally as each record completes, so a consumer can surface loss
// per window instead of only after the whole trace is in hand.
//
// The zero value is ready to use. Feed never allocates and never
// panics, whatever the input: the record format has no framing to
// corrupt, so garbage bytes simply decode as garbage records whose
// sequence gaps show up in Lost — exactly how a real HMTT consumer
// experiences a damaged capture.
type Decoder struct {
	partial [RecordSize]byte
	n       int // buffered bytes of the current partial record

	havePrev bool
	prevSeq  uint8

	records uint64
	lost    uint64
}

// Feed consumes one piece of the stream, invoking emit for every record
// that completes. lostBefore is the number of records the sequence gap
// between the previous record and this one says were lost in capture
// (0 on a contiguous stream). The piece may start or end mid-record;
// leftover bytes are carried into the next Feed.
//
//hopplint:hotpath
func (d *Decoder) Feed(p []byte, emit func(rec Record, lostBefore int)) {
	if d.n > 0 {
		// Complete the carried partial record first.
		c := copy(d.partial[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n < RecordSize {
			return
		}
		d.n = 0
		d.emitOne(d.partial[:], emit)
	}
	for len(p) >= RecordSize {
		d.emitOne(p[:RecordSize], emit)
		p = p[RecordSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.partial[:], p)
	}
}

// emitOne decodes one whole record, accounts its sequence gap, and
// hands it to emit.
func (d *Decoder) emitOne(buf []byte, emit func(Record, int)) {
	word := uint32(buf[2]) | uint32(buf[3])<<8 | uint32(buf[4])<<16 | uint32(buf[5])<<24
	rec := Record{
		Seq:            buf[0],
		TimestampDelta: buf[1],
		Write:          word&(1<<29) != 0,
		Page:           memsim.PPN(word & addrMask),
	}
	gap := 0
	if d.havePrev {
		gap = int(uint8(rec.Seq - (d.prevSeq + 1)))
	}
	d.havePrev = true
	d.prevSeq = rec.Seq
	d.records++
	d.lost += uint64(gap)
	emit(rec, gap)
}

// Records returns how many whole records have been decoded.
func (d *Decoder) Records() uint64 { return d.records }

// Lost returns the cumulative capture loss implied by sequence gaps.
func (d *Decoder) Lost() uint64 { return d.lost }

// Buffered returns how many bytes of a partial record are carried,
// waiting for the rest of the stream (always < RecordSize).
func (d *Decoder) Buffered() int { return d.n }

// DecoderState is a Decoder's resumable snapshot: everything needed to
// continue an interrupted stream with exact record framing and
// sequence-gap accounting — the piece of an ingest session's pipeline
// that must survive a daemon restart byte-exactly. Partial carries the
// torn tail of the last fed piece (< RecordSize bytes).
type DecoderState struct {
	Partial  []byte `json:"partial,omitempty"`
	HavePrev bool   `json:"have_prev,omitempty"`
	PrevSeq  uint8  `json:"prev_seq,omitempty"`
	Records  uint64 `json:"records,omitempty"`
	Lost     uint64 `json:"lost,omitempty"`
}

// State snapshots the decoder for journaling. The returned Partial
// slice is a copy; mutating it later does not disturb the decoder.
func (d *Decoder) State() DecoderState {
	s := DecoderState{
		HavePrev: d.havePrev,
		PrevSeq:  d.prevSeq,
		Records:  d.records,
		Lost:     d.lost,
	}
	if d.n > 0 {
		s.Partial = append([]byte(nil), d.partial[:d.n]...)
	}
	return s
}

// Restore rewinds the decoder to a journaled snapshot. Oversized
// Partial bytes (a corrupt journal) are truncated to RecordSize-1
// rather than trusted — the next Feed resynchronizes on record
// boundaries regardless.
func (d *Decoder) Restore(s DecoderState) {
	*d = Decoder{
		havePrev: s.HavePrev,
		prevSeq:  s.PrevSeq,
		records:  s.Records,
		lost:     s.Lost,
	}
	p := s.Partial
	if len(p) >= RecordSize {
		p = p[:RecordSize-1]
	}
	d.n = copy(d.partial[:], p)
}
