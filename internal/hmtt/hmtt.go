// Package hmtt emulates the Hybrid Memory Trace Tool of §V: a
// DIMM-snooping tracer that captures every off-chip memory reference and
// streams fixed-width records into a reserved DRAM buffer on a second
// socket.
//
// Each record carries, as in the paper, an 8-bit sequence number, an
// 8-bit (delta) timestamp, a 1-bit read/write flag, and a 29-bit physical
// address — here a 29-bit PPN-granularity address, which covers the
// prototype's 2 TB of traceable physical pages. Records pack into 6
// bytes on the wire.
package hmtt

import (
	"errors"
	"fmt"
	"io"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// RecordSize is the encoded size of one trace record in bytes.
const RecordSize = 6

// addrMask keeps the 29 bits of physical page address the record format
// can carry.
const addrMask = (1 << 29) - 1

// Record is one captured off-chip memory reference.
type Record struct {
	// Seq is the per-stream 8-bit sequence number; consumers use gaps in
	// it to detect capture loss.
	Seq uint8
	// TimestampDelta is the 8-bit quantized time since the previous
	// record, in capture ticks (see TickNS).
	TimestampDelta uint8
	// Write is true for a WRITE reference, false for a READ.
	Write bool
	// Page is the 29-bit physical page number of the reference.
	Page memsim.PPN
}

// TickNS is the capture timestamp quantum. HMTT timestamps are coarse;
// 100 ns per tick keeps the 8-bit delta useful at DRAM traffic rates.
const TickNS = 100

// Encode packs the record into buf, which must be at least RecordSize
// bytes, and returns the number of bytes written.
func (r Record) Encode(buf []byte) int {
	if len(buf) < RecordSize {
		panic("hmtt: Encode buffer too small")
	}
	// Layout (48 bits, little-endian):
	//   [0]   seq
	//   [1]   timestamp delta
	//   [2:6] write flag (bit 29) | page (bits 0-28), little-endian u32
	buf[0] = r.Seq
	buf[1] = r.TimestampDelta
	word := uint32(uint64(r.Page) & addrMask)
	if r.Write {
		word |= 1 << 29
	}
	buf[2] = byte(word)
	buf[3] = byte(word >> 8)
	buf[4] = byte(word >> 16)
	buf[5] = byte(word >> 24)
	return RecordSize
}

// Decode unpacks a record from buf.
func Decode(buf []byte) (Record, error) {
	if len(buf) < RecordSize {
		return Record{}, fmt.Errorf("hmtt: short record: %d bytes", len(buf))
	}
	word := uint32(buf[2]) | uint32(buf[3])<<8 | uint32(buf[4])<<16 | uint32(buf[5])<<24
	return Record{
		Seq:            buf[0],
		TimestampDelta: buf[1],
		Write:          word&(1<<29) != 0,
		Page:           memsim.PPN(word & addrMask),
	}, nil
}

// Capture is the bump-in-the-wire tracer. Feed it memory references with
// Observe; encoded records accumulate in the reserved buffer (modelled as
// a bounded ring, like the DMA area in DRAM 1 of Fig. 8). When the
// consumer falls behind, records are dropped and counted, mirroring real
// HMTT overflow behaviour.
type Capture struct {
	buf      []Record
	head     int // next slot to write
	tail     int // next slot to read
	size     int
	count    int
	seq      uint8
	lastTick int64

	observed uint64
	dropped  uint64
	bytesOut uint64
}

// NewCapture creates a tracer whose reserved buffer holds capacity
// records. Capacity must be positive.
func NewCapture(capacity int) *Capture {
	if capacity <= 0 {
		panic("hmtt: capture capacity must be positive")
	}
	return &Capture{buf: make([]Record, capacity), size: capacity}
}

// Observe records one off-chip reference at virtual time now.
func (c *Capture) Observe(now vclock.Time, page memsim.PPN, write bool) {
	c.observed++
	tick := int64(now) / TickNS
	delta := tick - c.lastTick
	if delta < 0 {
		delta = 0
	}
	if delta > 255 {
		delta = 255
	}
	c.lastTick = tick
	rec := Record{Seq: c.seq, TimestampDelta: uint8(delta), Write: write, Page: page & addrMask}
	c.seq++
	if c.count == c.size {
		// Overwrite oldest: consumer fell behind.
		c.tail = (c.tail + 1) % c.size
		c.count--
		c.dropped++
	}
	c.buf[c.head] = rec
	c.head = (c.head + 1) % c.size
	c.count++
	c.bytesOut += RecordSize
}

// Drain removes and returns up to max buffered records (all of them when
// max <= 0).
func (c *Capture) Drain(max int) []Record {
	n := c.count
	if max > 0 && max < n {
		n = max
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.buf[c.tail])
		c.tail = (c.tail + 1) % c.size
	}
	c.count -= n
	return out
}

// Pending returns how many records are buffered.
func (c *Capture) Pending() int { return c.count }

// Observed returns the total references seen.
func (c *Capture) Observed() uint64 { return c.observed }

// Dropped returns how many records were lost to buffer overflow.
func (c *Capture) Dropped() uint64 { return c.dropped }

// BytesOut returns the trace bandwidth consumed so far in bytes. This is
// what Fig. 8's PCIe + DMA path would have carried.
func (c *Capture) BytesOut() uint64 { return c.bytesOut }

// WriteTrace encodes records to w in the on-disk format (consecutive
// 6-byte records).
func WriteTrace(w io.Writer, recs []Record) error {
	var buf [RecordSize]byte
	for _, r := range recs {
		r.Encode(buf[:])
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("hmtt: write trace: %w", err)
		}
	}
	return nil
}

// ReadTrace decodes all records from r until EOF.
func ReadTrace(r io.Reader) ([]Record, error) {
	var out []Record
	var buf [RecordSize]byte
	for {
		_, err := io.ReadFull(r, buf[:])
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("hmtt: read trace: %w", err)
		}
		rec, err := Decode(buf[:])
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// LossBetween inspects consecutive sequence numbers and returns how many
// records were lost between two adjacent captured records (0 when the
// stream is contiguous).
func LossBetween(prev, next Record) int {
	expect := prev.Seq + 1
	return int(uint8(next.Seq - expect))
}
