package workload

import (
	"fmt"
	"math/rand"

	"hopp/internal/memsim"
)

// Spark/JVM workload models. §VI-B: "Spark divides the K-means workload
// into multiple stages, each stage writes the data into a different
// memory area ... this leads to more stream patterns in Spark
// applications, and the length of the stream is relatively small, thus
// the repetitive patterns might stop before HoPP finishes identifying
// them." We reproduce that by giving each stage its own region, keeping
// streams short, and sprinkling GC-like scattered touches over older
// stages.

// sparkConfig shapes a staged JVM workload.
type sparkConfig struct {
	name string
	// stages is the number of Spark stages; each gets its own region.
	stages int
	// pagesPerStage is the region size per stage.
	pagesPerStage int
	// runLen is the sequential run length within a stage before the
	// generator hops to another offset (short streams).
	runLen int
	// gatherFrac is the expected number of random gathers into earlier
	// stages' regions (shuffle reads) per page visit; values above 1
	// mean several gathers per visit.
	gatherFrac float64
	// gatherLines is how many cachelines each gather touches (a tiny
	// vertex read vs a record read). Default 8.
	gatherLines uint8
	// gcEvery inserts a GC-like scattered sweep after this many visits
	// (0 disables).
	gcEvery int
	// supersteps repeats the whole staged program, as GraphX supersteps
	// and K-means iterations do. Default 1.
	supersteps int
}

func newSpark(cfg sparkConfig) *Base {
	if cfg.gatherLines == 0 {
		cfg.gatherLines = 8
	}
	if cfg.supersteps == 0 {
		cfg.supersteps = 1
	}
	if cfg.runLen > cfg.pagesPerStage {
		cfg.runLen = cfg.pagesPerStage
	}
	regions := make([]Region, cfg.stages)
	for i := range regions {
		regions[i] = Region{
			Name:  fmt.Sprintf("stage%d", i),
			Start: memsim.VPN(0x10000 + i*0x40000),
			Pages: cfg.pagesPerStage,
		}
	}
	return NewBase(cfg.name, regions, defaultThink, cfg.supersteps, func(rng *rand.Rand) []visit {
		var out []visit
		sinceGC := 0
		emit := func(v visit) {
			out = append(out, v)
			sinceGC++
			if cfg.gcEvery > 0 && sinceGC >= cfg.gcEvery {
				sinceGC = 0
				// Minor GC: scattered touches over a random earlier region,
				// too few lines per page to pass the hot threshold.
				r := regions[rng.Intn(len(regions))]
				for j := 0; j < 32; j++ {
					out = append(out, visit{
						vpn:   r.Start + memsim.VPN(rng.Intn(r.Pages)),
						lines: 4,
					})
				}
			}
		}
		for s, r := range regions {
			// The stage writes its output region in short runs at hopping
			// offsets (JVM allocation order is not address order).
			offsets := rng.Perm(cfg.pagesPerStage / cfg.runLen)
			for _, o := range offsets {
				base := r.Start + memsim.VPN(o*cfg.runLen)
				for i := 0; i < cfg.runLen; i++ {
					emit(visit{vpn: base + memsim.VPN(i), lines: memsim.LinesPerPage, write: s%2 == 1})
					if s == 0 {
						continue
					}
					gathers := int(cfg.gatherFrac)
					if rng.Float64() < cfg.gatherFrac-float64(gathers) {
						gathers++
					}
					for gi := 0; gi < gathers; gi++ {
						// Shuffle read from a previous stage. Vertex-style
						// gathers are skewed: most hit a hot quarter of the
						// region that stays resident; the tail is uniform.
						pr := regions[rng.Intn(s)]
						var p int
						if rng.Float64() < 0.8 {
							p = rng.Intn(pr.Pages / 4)
						} else {
							p = rng.Intn(pr.Pages)
						}
						emit(visit{vpn: pr.Start + memsim.VPN(p), lines: cfg.gatherLines})
					}
				}
			}
		}
		return out
	})
}

// NewGraphX models the GraphX workloads (BFS, CC, PR, LP) running on
// Spark: supersteps scanning an edge region sequentially with random
// vertex gathers, per-superstep output regions, and GC noise. The four
// algorithms differ in gather intensity and superstep count.
func NewGraphX(algo string, edgePages int) *Base {
	cfg := sparkConfig{
		name:          "GraphX-" + algo,
		stages:        3,
		pagesPerStage: edgePages,
		runLen:        48,
		gatherFrac:    0.15,
		gcEvery:       4096,
		supersteps:    3,
	}
	switch algo {
	case "BFS":
		cfg.gatherFrac, cfg.gatherLines, cfg.stages = 0.5, 4, 4
	case "CC":
		cfg.gatherFrac, cfg.gatherLines = 0.6, 4
	case "PR":
		// PageRank's rank gathers are tiny (one vertex's rank) and very
		// frequent — the Table II workload with the highest repeated
		// hot-page extraction rate at small N.
		cfg.gatherFrac, cfg.gatherLines, cfg.runLen = 2.5, 2, 64
	case "LP":
		cfg.gatherFrac, cfg.gatherLines = 0.4, 4
	default:
		panic("workload: unknown GraphX algorithm " + algo)
	}
	return newSpark(cfg)
}

// NewSparkKMeans models K-means on Spark: cleaner scans than GraphX
// (it is the Spark workload HoPP accelerates most, §VI-B) but still
// staged with a smaller footprint.
func NewSparkKMeans(pages int) *Base {
	return newSpark(sparkConfig{
		name:          "Spark-KMeans",
		stages:        4,
		pagesPerStage: pages / 4,
		runLen:        96,
		gatherFrac:    0.05,
		gcEvery:       8192,
		supersteps:    4,
	})
}

// NewSparkBayes models naive Bayes training on Spark: wide shuffles,
// heavy gathers, short runs — the hardest workload for any prefetcher.
func NewSparkBayes(pages int) *Base {
	return newSpark(sparkConfig{
		name:          "Spark-Bayes",
		stages:        4,
		pagesPerStage: pages / 4,
		runLen:        24,
		gatherFrac:    0.35,
		gatherLines:   4,
		gcEvery:       2048,
		supersteps:    2,
	})
}
