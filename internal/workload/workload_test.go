package workload

import (
	"sync"
	"testing"

	"hopp/internal/memsim"
)

// drain runs a generator to completion, returning the page-level trace.
func drain(t *testing.T, g Generator, seed int64) []memsim.VPN {
	t.Helper()
	g.Reset(seed)
	var pages []memsim.VPN
	var last memsim.VPN = ^memsim.VPN(0)
	for i := 0; ; i++ {
		a, ok := g.Next()
		if !ok {
			break
		}
		if p := a.Addr.Page(); p != last {
			pages = append(pages, p)
			last = p
		}
		if i > 50_000_000 {
			t.Fatal("generator did not terminate")
		}
	}
	return pages
}

// inRegions verifies every page belongs to a declared region.
func inRegions(t *testing.T, g Generator, pages []memsim.VPN) {
	t.Helper()
	for _, p := range pages {
		found := false
		for _, r := range g.Regions() {
			if r.Contains(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s touched page %d outside every region", g.Name(), p)
		}
	}
}

func TestSequentialShape(t *testing.T) {
	g := NewSequential(100, 2)
	pages := drain(t, g, 1)
	if len(pages) != 200 {
		t.Fatalf("page visits = %d, want 200 (two passes)", len(pages))
	}
	for i := 1; i < 100; i++ {
		if pages[i] != pages[i-1]+1 {
			t.Fatalf("non-sequential at %d: %d -> %d", i, pages[i-1], pages[i])
		}
	}
	inRegions(t, g, pages)
}

func TestSequentialAccessCount(t *testing.T) {
	g := NewSequential(10, 1)
	g.Reset(0)
	n := 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Write {
			t.Fatal("sequential scan should be reads")
		}
		if a.Think <= 0 {
			t.Fatal("think time missing")
		}
		n++
	}
	if n != 10*memsim.LinesPerPage {
		t.Fatalf("accesses = %d, want %d", n, 10*64)
	}
	if g.TotalAccesses() != 640 {
		t.Fatalf("TotalAccesses = %d", g.TotalAccesses())
	}
}

func TestNextBeforeResetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := NewSequential(10, 1)
	g.Next()
}

func TestStridedShape(t *testing.T) {
	g := NewStrided(100, 5, 1)
	pages := drain(t, g, 1)
	for i := 1; i < len(pages); i++ {
		if pages[i] != pages[i-1]+5 {
			t.Fatalf("stride broken at %d", i)
		}
	}
}

func TestIntertwinedHasTwoStrides(t *testing.T) {
	g := NewIntertwined(50, 0)
	pages := drain(t, g, 1)
	// Round-robin A,B,A,B: consecutive same-stream pages are 2 apart in
	// the trace. Verify both strides present.
	var sawA, sawB bool
	for i := 2; i < len(pages); i++ {
		switch pages[i] - pages[i-2] {
		case 2:
			sawA = true
		case 1:
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Fatalf("streams missing: strideA=%v strideB=%v", sawA, sawB)
	}
	inRegions(t, g, pages)
}

func TestIntertwinedInterference(t *testing.T) {
	g := NewIntertwined(200, 0.2)
	pages := drain(t, g, 7)
	noise := 0
	for _, p := range pages {
		if p >= 0x200000 {
			noise++
		}
	}
	if noise == 0 {
		t.Fatal("no interference pages generated")
	}
	inRegions(t, g, pages)
}

func TestLadderShape(t *testing.T) {
	g := NewLadder(20, 1)
	pages := drain(t, g, 1)
	if len(pages) != 60 {
		t.Fatalf("visits = %d, want 60", len(pages))
	}
	// Same tread position one period (3 visits) later advances by 1.
	for i := 3; i < len(pages); i++ {
		if pages[i] != pages[i-3]+1 {
			t.Fatalf("ladder period broken at %d", i)
		}
	}
}

func TestRippleStaysNearStream(t *testing.T) {
	g := NewRipple(500, 1)
	pages := drain(t, g, 3)
	// The sweep must cover every page in [start, start+500) despite the
	// out-of-order hops.
	seen := make(map[memsim.VPN]bool)
	for _, p := range pages {
		seen[p] = true
	}
	start := g.Regions()[0].Start
	for i := 0; i < 500; i++ {
		if !seen[start+memsim.VPN(i)] {
			t.Fatalf("ripple sweep skipped page %d", i)
		}
	}
	inRegions(t, g, pages)
}

func TestAddUpInterleavesWorkers(t *testing.T) {
	g := NewAddUp(2, 100)
	pages := drain(t, g, 1)
	if len(pages) != 400 {
		t.Fatalf("visits = %d, want 400 (fill pass + read pass)", len(pages))
	}
	// Alternating regions in both passes.
	r := g.Regions()
	for i := 0; i+1 < len(pages); i += 2 {
		if !r[0].Contains(pages[i]) || !r[1].Contains(pages[i+1]) {
			t.Fatalf("workers not interleaved at %d", i)
		}
	}
	if g.FootprintPages() != 200 {
		t.Fatalf("footprint = %d", g.FootprintPages())
	}
}

func TestDeterministicReset(t *testing.T) {
	for _, g := range []Generator{
		NewNPBMG(300, 1),
		NewSparkBayes(1024),
		NewGraphX("BFS", 512),
		NewNPBCG(200, 1),
	} {
		a := drain(t, g, 42)
		b := drain(t, g, 42)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length", g.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trace diverged at %d", g.Name(), i)
			}
		}
		c := drain(t, g, 43)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical traces", g.Name())
		}
	}
}

func TestAllAppsStayInRegionsAndTerminate(t *testing.T) {
	apps := []Generator{
		NewOMPKMeans(512, 2),
		NewQuicksort(512),
		NewHPL(16, 96),
		NewNPBCG(512, 2),
		NewNPBFT(512),
		NewNPBLU(8, 64, 2),
		NewNPBMG(512, 2),
		NewNPBIS(512),
		NewGraphX("BFS", 256),
		NewGraphX("CC", 256),
		NewGraphX("PR", 256),
		NewGraphX("LP", 256),
		NewSparkKMeans(1024),
		NewSparkBayes(1024),
	}
	seen := make(map[string]bool)
	for _, g := range apps {
		if seen[g.Name()] {
			t.Fatalf("duplicate workload name %q", g.Name())
		}
		seen[g.Name()] = true
		pages := drain(t, g, 11)
		if len(pages) == 0 {
			t.Fatalf("%s produced no accesses", g.Name())
		}
		inRegions(t, g, pages)
	}
}

func TestUnknownGraphXPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraphX("DIJKSTRA", 100)
}

func TestQuicksortHierarchy(t *testing.T) {
	g := NewQuicksort(256)
	pages := drain(t, g, 1)
	// First pass (write fill) + full partition + two half partitions...
	// total visits = 256 * (1 + levels) where levels = log2(256/32)+1 = 4.
	want := 256 * (1 + 4)
	if len(pages) != want {
		t.Fatalf("visits = %d, want %d", len(pages), want)
	}
}

func TestSparkShortRuns(t *testing.T) {
	g := NewSparkBayes(2048)
	pages := drain(t, g, 3)
	// Count maximal sequential run lengths; Spark-Bayes must be run-y
	// but short (runLen 24), i.e. no run longer than ~runLen pages.
	run, maxRun := 1, 1
	for i := 1; i < len(pages); i++ {
		if pages[i] == pages[i-1]+1 {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 1
		}
	}
	if maxRun > 48 {
		t.Fatalf("Spark-Bayes has a %d-page sequential run; JVM staging should keep runs short", maxRun)
	}
}

func TestRandomFloor(t *testing.T) {
	g := NewRandom(1000, 5000)
	pages := drain(t, g, 9)
	inRegions(t, g, pages)
	if len(pages) < 4000 {
		t.Fatalf("random touches collapsed: %d", len(pages))
	}
}

// FootprintPages must be safe on a Generator shared across goroutines:
// the count is precomputed in NewBase, so concurrent readers (run under
// `go test -race ./internal/workload`, part of make check) see an
// immutable field instead of racing on a lazy write.
func TestFootprintPagesConcurrentReaders(t *testing.T) {
	g := NewSequential(256, 2)
	want := g.FootprintPages()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := g.FootprintPages(); got != want {
				t.Errorf("concurrent FootprintPages = %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
}

// TotalAccesses had the same shape of bug as FootprintPages: an
// unprimed generator lazily called Reset(0) from the accessor, racing
// with a concurrent reader or runner. The count is now precomputed in
// NewBase; this must stay clean under `go test -race` with readers
// hitting an unprimed generator while another goroutine Resets and
// drives it.
func TestTotalAccessesConcurrentReaders(t *testing.T) {
	g := NewRipple(256, 2) // rng-built program: the old lazy Reset wrote b.visits
	want := g.TotalAccesses()
	if want <= 0 {
		t.Fatalf("TotalAccesses = %d, want > 0", want)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // a runner priming and draining the generator
		defer wg.Done()
		g.Reset(7)
		for {
			if _, ok := g.Next(); !ok {
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := g.TotalAccesses(); got != want {
				t.Errorf("concurrent TotalAccesses = %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
	// The canonical count matches what a full run actually produces.
	g.Reset(0)
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != want {
		t.Fatalf("full run produced %d accesses, TotalAccesses says %d", n, want)
	}
}
