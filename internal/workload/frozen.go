package workload

import (
	"fmt"
	"math/rand"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// Frozen is an immutable snapshot of one workload's access stream,
// generated once and shared read-only by any number of concurrent
// replayers. It exists for sweep jobs: a grid over (system, frac) reuses
// the same (workload, seed) stream for every point, so the generation
// cost — the expensive build of the randomized page program — is paid
// once per distinct workload instead of once per simulation.
//
// Two representations, chosen by Freeze:
//
//   - *Base generators freeze their compact page program (the visit
//     list built under the freeze seed) plus the canonical footprint and
//     access totals from NewBase. Replayers expand the shared program
//     exactly as Base.Next does, so a replayed run is access-for-access
//     identical to a fresh generator Reset with the same seed — the
//     property that keeps sweep-child results byte-identical to
//     standalone runs and therefore cache-compatible with them.
//   - any other Generator is frozen by recording its full access stream
//     under the freeze seed; replayers walk the shared tape.
//
// A Frozen is bound to the seed it was built under: replayers accept
// Reset only with that seed and panic on any other, because silently
// replaying the wrong stream would poison every result keyed by the
// requested seed.
type Frozen struct {
	name    string
	regions []Region
	seed    int64

	// Page-program form (Base generators).
	visits []visit
	think  vclock.Duration
	loops  int

	// Recorded-tape form (any other Generator).
	tape []Access

	footprint int
	total     int
}

// Freeze snapshots gen's access stream under seed. The generator is
// consumed as a template only — its cursor state is rebuilt, and the
// returned Frozen shares nothing mutable with it.
func Freeze(gen Generator, seed int64) *Frozen {
	f := &Frozen{
		name:    gen.Name(),
		regions: gen.Regions(),
		seed:    seed,
	}
	if b, ok := gen.(*Base); ok {
		// Build the seed's program once, exactly as Reset would, but keep
		// the canonical (seed-0) footprint and totals from NewBase: the
		// machine sizes memory limits from FootprintPages, and those must
		// match a fresh generator's for results to be byte-identical.
		visits := b.build(rand.New(rand.NewSource(seed)))
		if len(visits) == 0 {
			panic(fmt.Sprintf("workload %s: empty page program (check size parameters)", b.name))
		}
		for _, v := range visits {
			if v.lines == 0 {
				panic(fmt.Sprintf("workload %s: zero-line visit of page %d", b.name, v.vpn))
			}
		}
		f.visits = visits
		f.think = b.think
		f.loops = b.loops
		f.footprint = b.footprint
		f.total = b.total
		return f
	}
	// Generic fallback: record the whole stream.
	f.footprint = gen.FootprintPages()
	gen.Reset(seed)
	for {
		acc, ok := gen.Next()
		if !ok {
			break
		}
		f.tape = append(f.tape, acc)
	}
	f.total = len(f.tape)
	return f
}

// Name returns the frozen workload's name.
func (f *Frozen) Name() string { return f.name }

// Seed returns the seed the stream was frozen under — the only seed
// replayers accept.
func (f *Frozen) Seed() int64 { return f.seed }

// Replay mints an independent read-only replayer over the shared
// stream. Replayers carry only cursor state; any number may run
// concurrently on different goroutines.
func (f *Frozen) Replay() Generator {
	if f.visits != nil {
		return &frozenProgram{f: f, visits: f.visits, think: f.think, loops: f.loops}
	}
	return &frozenTape{f: f}
}

// ProgramReplay names the page-program replayer Replay returns for
// *Base-built streams. The simulator type-asserts against it to call
// Next directly — the same devirtualization it applies to *Base — so a
// sweep child's access loop runs as fast as a standalone run's.
type ProgramReplay = frozenProgram

// resetCheck enforces the seed binding shared by both replayer forms.
func (f *Frozen) resetCheck(seed int64) {
	if seed != f.seed {
		panic(fmt.Sprintf("workload %s: frozen at seed %d, Reset with seed %d (a frozen stream cannot be rebuilt)",
			f.name, f.seed, seed))
	}
}

// frozenProgram replays a frozen page program with Base.Next's exact
// expansion, sharing the immutable visit slice with every sibling. The
// hot fields (visits, loops, think) are copied out of the Frozen at
// construction so Next — called once per simulated access — matches
// Base.Next instruction for instruction instead of chasing p.f; a
// slower replayer would silently erase the sweep's stream-sharing win.
type frozenProgram struct {
	f      *Frozen
	visits []visit
	think  vclock.Duration
	loops  int
	vi     int
	li     int
	loop   int
	ready  bool
}

// Name implements Generator.
func (p *frozenProgram) Name() string { return p.f.name }

// Regions implements Generator.
func (p *frozenProgram) Regions() []Region { return p.f.regions }

// FootprintPages implements Generator, reporting the canonical count
// the template generator would — memory limits depend on it.
func (p *frozenProgram) FootprintPages() int { return p.f.footprint }

// TotalAccesses returns the exact access count of a full run.
func (p *frozenProgram) TotalAccesses() int { return p.f.total }

// Reset implements Generator; only the freeze seed is accepted.
func (p *frozenProgram) Reset(seed int64) {
	p.f.resetCheck(seed)
	p.vi, p.li, p.loop = 0, 0, 0
	p.ready = true
}

// Next implements Generator, mirroring Base.Next over the shared
// program.
func (p *frozenProgram) Next() (Access, bool) {
	if !p.ready {
		panic("workload: frozen Next before Reset")
	}
	for p.vi == len(p.visits) {
		p.loop++
		if p.loop >= p.loops {
			return Access{}, false
		}
		p.vi, p.li = 0, 0
	}
	v := &p.visits[p.vi]
	// Same mask-for-modulo wrap as Base.Next: both operands are
	// non-negative and LinesPerPage is a power of two.
	line := uint64(int(v.firstLine)+p.li) & (memsim.LinesPerPage - 1)
	addr := memsim.VAddr(uint64(v.vpn)<<memsim.PageShift | line<<memsim.LineShift)
	p.li++
	if p.li >= int(v.lines) {
		p.vi++
		p.li = 0
	}
	return Access{Addr: addr, Write: v.write, Think: p.think}, true
}

// frozenTape replays a recorded access stream.
type frozenTape struct {
	f     *Frozen
	i     int
	ready bool
}

// Name implements Generator.
func (t *frozenTape) Name() string { return t.f.name }

// Regions implements Generator.
func (t *frozenTape) Regions() []Region { return t.f.regions }

// FootprintPages implements Generator.
func (t *frozenTape) FootprintPages() int { return t.f.footprint }

// TotalAccesses returns the recorded stream length.
func (t *frozenTape) TotalAccesses() int { return t.f.total }

// Reset implements Generator; only the freeze seed is accepted.
func (t *frozenTape) Reset(seed int64) {
	t.f.resetCheck(seed)
	t.i = 0
	t.ready = true
}

// Next implements Generator.
func (t *frozenTape) Next() (Access, bool) {
	if !t.ready {
		panic("workload: frozen Next before Reset")
	}
	if t.i >= len(t.f.tape) {
		return Access{}, false
	}
	acc := t.f.tape[t.i]
	t.i++
	return acc, true
}
