package workload

import (
	"fmt"
	"math/rand"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// defaultThink approximates the per-cacheline compute of a scan-and-add
// workload ("512 additions for a page", §VI-E): a handful of ns per line.
const defaultThink = 4 * vclock.Nanosecond

// NewSequential is the simplest stream: `loops` full sequential scans of
// a region. Quicksort partitions, K-means point scans and the Fig. 22
// microbenchmark are all built on this shape.
func NewSequential(pages, loops int) *Base {
	r := Region{Name: "array", Start: 0x10000, Pages: pages}
	return NewBase("Sequential", []Region{r}, defaultThink, loops, func(*rand.Rand) []visit {
		return seqVisits(r.Start, r.Pages, false)
	})
}

// NewStrided scans a region with a fixed page stride (simple stream with
// stride > 1), `loops` times.
func NewStrided(pages int, stride int64, loops int) *Base {
	r := Region{Name: "array", Start: 0x10000, Pages: pages}
	return NewBase(fmt.Sprintf("Strided-%d", stride), []Region{r}, defaultThink, loops, func(*rand.Rand) []visit {
		count := pages / int(stride)
		return stridedVisits(r.Start, stride, count, memsim.LinesPerPage, false)
	})
}

// NewIntertwined is the Fig. 1 motivating pattern: two simple streams
// with different strides advancing concurrently, plus occasional
// interference pages that belong to no stream. Two passes: the first
// builds the working set, the second measures under pressure.
func NewIntertwined(pagesPerStream int, interferenceFrac float64) *Base {
	a := Region{Name: "streamA", Start: 0x10000, Pages: 2 * pagesPerStream}
	b := Region{Name: "streamB", Start: 0x80000, Pages: pagesPerStream}
	z := Region{Name: "noise", Start: 0x200000, Pages: 4096}
	return NewBase("Intertwined", []Region{a, b, z}, defaultThink, 2, func(rng *rand.Rand) []visit {
		// Stream A strides by 2, stream B by 1 — exactly Fig. 1.
		pa := stridedVisits(a.Start, 2, pagesPerStream, memsim.LinesPerPage, false)
		pb := stridedVisits(b.Start, 1, pagesPerStream, memsim.LinesPerPage, false)
		merged := interleave(pa, pb)
		if interferenceFrac <= 0 {
			return merged
		}
		out := make([]visit, 0, len(merged)+int(float64(len(merged))*interferenceFrac))
		for _, v := range merged {
			out = append(out, v)
			if rng.Float64() < interferenceFrac {
				out = append(out, visit{
					vpn:   z.Start + memsim.VPN(rng.Intn(z.Pages)),
					lines: memsim.LinesPerPage,
				})
			}
		}
		return out
	})
}

// NewLadder is the Fig. 2 pattern: several parallel simple streams
// visited as a "tread" (concentrated accesses across streams), followed
// by a "rise" to the next tread — the footprint of blocked matrix
// multiplication. The streams are unevenly spaced so no single stride
// dominates, which is what defeats SSP and requires LSP.
func NewLadder(treads int, loops int) *Base {
	// Three streams with uneven spacing inside one region.
	spacing := []int64{0, 10, 35}
	span := 40 + treads
	r := Region{Name: "matrix", Start: 0x10000, Pages: span}
	return NewBase("Ladder", []Region{r}, defaultThink, loops, func(*rand.Rand) []visit {
		var out []visit
		for i := 0; i < treads; i++ {
			for _, s := range spacing {
				out = append(out, visit{
					vpn:   r.Start + memsim.VPN(s+int64(i)),
					lines: memsim.LinesPerPage,
				})
			}
		}
		return out
	})
}

// NewRipple is the Fig. 3 pattern: a stride-1 stream distorted by
// out-of-order and across-stream hops whose cumulative strides return to
// the stream — the footprint of stencil sweeps like NPB-MG.
func NewRipple(pages int, loops int) *Base {
	r := Region{Name: "grid", Start: 0x10000, Pages: pages + 8}
	return NewBase("Ripple", []Region{r}, defaultThink, loops, func(rng *rand.Rand) []visit {
		var out []visit
		v := int64(r.Start)
		end := int64(r.Start) + int64(pages)
		for v < end {
			out = append(out, visit{vpn: memsim.VPN(v), lines: memsim.LinesPerPage})
			switch rng.Intn(6) {
			case 0: // hop forward and come back: +3, -2 nets +1
				out = append(out, visit{vpn: memsim.VPN(v + 3), lines: 16})
				v++
			case 1: // out-of-order pair: visit v+2 before v+1
				out = append(out, visit{vpn: memsim.VPN(v + 2), lines: memsim.LinesPerPage})
				out = append(out, visit{vpn: memsim.VPN(v + 1), lines: memsim.LinesPerPage})
				v += 3
			default:
				v++
			}
		}
		return out
	})
}

// NewAddUp is the §VI-E microbenchmark: each of `threads` workers
// allocates and fills its own array, then scans it, "reading and adding
// up all the values of all 8-byte blocks within a page". The workers'
// streams interleave in fault order, which is exactly what breaks Leap.
func NewAddUp(threads, pagesPerThread int) *Base {
	regions := make([]Region, threads)
	for i := range regions {
		regions[i] = Region{
			Name:  fmt.Sprintf("worker%d", i),
			Start: memsim.VPN(0x10000 + i*0x100000),
			Pages: pagesPerThread,
		}
	}
	return NewBase("AddUp", regions, defaultThink, 1, func(*rand.Rand) []visit {
		fill := make([][]visit, threads)
		read := make([][]visit, threads)
		for i, r := range regions {
			fill[i] = seqVisits(r.Start, r.Pages, true)
			read[i] = seqVisits(r.Start, r.Pages, false)
		}
		return append(interleave(fill...), interleave(read...)...)
	})
}

// NewSharedScan models a process streaming over its private data while
// periodically consulting a shared read-only dataset (a shared mapping
// or library). The shared region's pages carry the RPT shared flag
// (§III-C) through the whole pipeline.
func NewSharedScan(privatePages, sharedPages, loops int) *Base {
	priv := Region{Name: "private", Start: 0x10000, Pages: privatePages}
	shared := Region{Name: "shared", Start: 0x8000, Pages: sharedPages, Shared: true}
	return NewBase("SharedScan", []Region{priv, shared}, defaultThink, loops, func(rng *rand.Rand) []visit {
		var out []visit
		for i := 0; i < priv.Pages; i++ {
			out = append(out, visit{vpn: priv.Start + memsim.VPN(i), lines: memsim.LinesPerPage})
			if i%2 == 0 {
				out = append(out, visit{
					vpn:   shared.Start + memsim.VPN(rng.Intn(shared.Pages)),
					lines: 8,
				})
			}
		}
		return out
	})
}

// NewRandom touches pages uniformly at random — the unprefetchable
// floor, used in sanity tests.
func NewRandom(pages, touches int) *Base {
	r := Region{Name: "heap", Start: 0x10000, Pages: pages}
	return NewBase("Random", []Region{r}, defaultThink, 1, func(rng *rand.Rand) []visit {
		out := make([]visit, 0, touches)
		for i := 0; i < touches; i++ {
			out = append(out, visit{
				vpn:   r.Start + memsim.VPN(rng.Intn(pages)),
				lines: memsim.LinesPerPage,
			})
		}
		return out
	})
}
