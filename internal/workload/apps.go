package workload

import (
	"math/rand"

	"hopp/internal/memsim"
)

// This file builds pattern-faithful generators for the Table IV
// programs. Footprints are scaled (GB → MB); the comment on each
// constructor records the pattern structure being reproduced and why it
// matches the program.

// NewOMPKMeans models the C/OpenMP K-means of Table IV: one large
// contiguous array of points scanned sequentially every iteration, plus
// a small hot centroid block. This is the cleanest simple-stream
// workload in the suite — the paper reports >99% coverage on it.
func NewOMPKMeans(pages, iterations int) *Base {
	points := Region{Name: "points", Start: 0x10000, Pages: pages}
	centroids := Region{Name: "centroids", Start: 0x8000, Pages: 256}
	return NewBase("OMP-KMeans", []Region{points, centroids}, defaultThink, iterations, func(rng *rand.Rand) []visit {
		var out []visit
		for i := 0; i < points.Pages; i++ {
			out = append(out, visit{vpn: points.Start + memsim.VPN(i), lines: memsim.LinesPerPage})
			if i%4 == 0 {
				// Centroid distance reads: the long-resident cluster data
				// is re-read throughout; its pages keep turning hot long
				// after their PTEs were established.
				out = append(out, visit{vpn: centroids.Start + memsim.VPN(rng.Intn(centroids.Pages)), lines: 8})
			}
		}
		return out
	})
}

// NewQuicksort models quicksort over a large array: each partition level
// is a sequential two-pointer scan of a halving subrange. The access
// stream is a hierarchy of clean sequential runs — highly prefetchable,
// matching the paper's >99% coverage for Quicksort.
func NewQuicksort(pages int) *Base {
	arr := Region{Name: "array", Start: 0x10000, Pages: pages}
	return NewBase("Quicksort", []Region{arr}, defaultThink, 1, func(*rand.Rand) []visit {
		var out []visit
		// Initial fill (write) then recursive partitions down to 32-page
		// leaves; each level scans its range front-to-back (the two
		// pointers converging visit every page once).
		out = append(out, seqVisits(arr.Start, arr.Pages, true)...)
		var rec func(lo, hi int)
		rec = func(lo, hi int) {
			if hi-lo < 32 {
				return
			}
			for i := lo; i < hi; i++ {
				out = append(out, visit{vpn: arr.Start + memsim.VPN(i), lines: memsim.LinesPerPage})
			}
			mid := (lo + hi) / 2
			rec(lo, mid)
			rec(mid, hi)
		}
		rec(0, arr.Pages)
		return out
	})
}

// NewHPL models High Performance Linpack's trailing-matrix update: for
// each factorization step, the panel block is re-read while successive
// block columns are updated. Interleaving the panel stream with each
// unevenly offset column stream produces exactly the ladder pattern of
// Fig. 2 ("common in matrix multiplication's footprint", §II-B).
func NewHPL(cols, colPages int) *Base {
	m := Region{Name: "matrix", Start: 0x10000, Pages: cols * colPages}
	return NewBase("HPL", []Region{m}, defaultThink, 1, func(*rand.Rand) []visit {
		var out []visit
		steps := cols / 4
		// The vectorized update walks three row blocks of the column at
		// unevenly spaced offsets — Fig. 2's ladder tread, entirely
		// within Δ_stream so only LSP can extrapolate it.
		treadOffsets := []int{0, 10, 35}
		for k := 0; k < steps; k++ {
			panel := m.Start + memsim.VPN(4*k*colPages)
			// Rows below the diagonal shrink as factorization proceeds.
			rowOff := k * colPages / (2 * steps)
			rows := colPages - rowOff
			for j := 4 * (k + 1); j < cols; j += 4 {
				// Panel re-read: a clean stream SSP handles.
				out = append(out, stridedVisits(panel+memsim.VPN(rowOff), 1, rows, memsim.LinesPerPage, false)...)
				// Column update: ladder tread over the row blocks.
				col := int64(m.Start) + int64(j*colPages+rowOff)
				for i := 0; i < rows-treadOffsets[len(treadOffsets)-1]; i++ {
					for _, s := range treadOffsets {
						out = append(out, visit{vpn: memsim.VPN(col + int64(s+i)), lines: memsim.LinesPerPage})
					}
				}
			}
		}
		return out
	})
}

// NewNPBCG models the NPB conjugate-gradient kernel: long sequential
// scans of the sparse matrix arrays with random gathers into the vector
// — a clean stream punctuated by interference pages (limitation ③ of
// §II-B).
func NewNPBCG(pages, iterations int) *Base {
	mat := Region{Name: "matrix", Start: 0x10000, Pages: pages}
	vec := Region{Name: "x", Start: 0x8000, Pages: 256}
	return NewBase("NPB-CG", []Region{mat, vec}, defaultThink, iterations, func(rng *rand.Rand) []visit {
		var out []visit
		for i := 0; i < mat.Pages; i++ {
			out = append(out, visit{vpn: mat.Start + memsim.VPN(i), lines: memsim.LinesPerPage})
			if rng.Intn(3) == 0 {
				out = append(out, visit{vpn: vec.Start + memsim.VPN(rng.Intn(vec.Pages)), lines: 4})
			}
		}
		return out
	})
}

// NewNPBFT models the NPB 3-D FFT kernel: each butterfly stage scans the
// array with a doubling page stride — a sequence of distinct simple
// streams that exercises stride re-detection.
func NewNPBFT(pages int) *Base {
	arr := Region{Name: "spectrum", Start: 0x10000, Pages: pages}
	return NewBase("NPB-FT", []Region{arr}, defaultThink, 1, func(*rand.Rand) []visit {
		var out []visit
		for stride := int64(1); stride <= 8; stride *= 2 {
			for phase := int64(0); phase < stride; phase++ {
				count := pages / int(stride)
				out = append(out, stridedVisits(arr.Start+memsim.VPN(phase), stride, count, memsim.LinesPerPage, false)...)
			}
		}
		return out
	})
}

// NewNPBLU models the NPB LU solver: per pseudo-time step, wavefront
// sweeps with a ladder structure like HPL's but shallower. Iterations
// re-traverse the whole grid, which is what creates memory pressure.
func NewNPBLU(planes, planePages, iterations int) *Base {
	g := Region{Name: "grid", Start: 0x10000, Pages: planes * planePages}
	return NewBase("NPB-LU", []Region{g}, defaultThink, iterations, func(*rand.Rand) []visit {
		var out []visit
		for k := 0; k < planes-1; k++ {
			a := stridedVisits(g.Start+memsim.VPN(k*planePages), 1, planePages, memsim.LinesPerPage, false)
			b := stridedVisits(g.Start+memsim.VPN((k+1)*planePages+3), 1, planePages-3, memsim.LinesPerPage, false)
			out = append(out, interleave(a, b)...)
		}
		return out
	})
}

// NewNPBMG models the NPB multigrid kernel: stencil sweeps over a grid
// whose neighbour accesses distort the stride-1 scan into the ripple
// pattern of Fig. 3 — the workload where RSP earns its keep (§VI-D).
func NewNPBMG(pages, cycles int) *Base {
	g := Region{Name: "grid", Start: 0x10000, Pages: pages + 8}
	return NewBase("NPB-MG", []Region{g}, defaultThink, cycles, func(rng *rand.Rand) []visit {
		var out []visit
		// Fine-grid relaxation: ripple sweep (out-of-order stencil).
		v := int64(g.Start)
		end := int64(g.Start) + int64(pages)
		for v < end {
			out = append(out, visit{vpn: memsim.VPN(v), lines: memsim.LinesPerPage})
			switch rng.Intn(5) {
			case 0:
				out = append(out, visit{vpn: memsim.VPN(v + 2), lines: memsim.LinesPerPage},
					visit{vpn: memsim.VPN(v + 1), lines: memsim.LinesPerPage})
				v += 3
			case 1:
				out = append(out, visit{vpn: memsim.VPN(v + 3), lines: 16})
				v++
			default:
				v++
			}
		}
		// Coarse grids: strided restriction sweeps.
		for stride := int64(8); stride <= 64; stride *= 8 {
			out = append(out, stridedVisits(g.Start, stride, pages/int(stride), 16, false)...)
		}
		// Prolongation: the V-cycle comes back UP the grid — a descending
		// fine-grid sweep. Ascending-only prefetchers (readahead, Depth-N)
		// fetch pure junk here; Depth-N's junk is PTE-injected and charged,
		// which is §II-C's pollution cost.
		for p := int64(g.Start) + int64(pages) - 1; p >= int64(g.Start); p-- {
			out = append(out, visit{vpn: memsim.VPN(p), lines: memsim.LinesPerPage})
		}
		return out
	})
}

// NewNPBIS models the NPB integer sort: a sequential scan of the keys
// with scattered counting writes into a bucket array — sequential read
// stream plus write noise the MC's READ-only filter must ignore.
func NewNPBIS(pages int) *Base {
	keys := Region{Name: "keys", Start: 0x10000, Pages: pages}
	buckets := Region{Name: "buckets", Start: 0x8000, Pages: 512}
	return NewBase("NPB-IS", []Region{keys, buckets}, defaultThink, 1, func(rng *rand.Rand) []visit {
		var out []visit
		for i := 0; i < keys.Pages; i++ {
			out = append(out, visit{vpn: keys.Start + memsim.VPN(i), lines: memsim.LinesPerPage})
			out = append(out, visit{vpn: buckets.Start + memsim.VPN(rng.Intn(buckets.Pages)), lines: 2, write: true})
		}
		// Final bucket walk.
		out = append(out, seqVisits(buckets.Start, buckets.Pages, false)...)
		return out
	})
}
