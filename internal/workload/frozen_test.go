package workload

import (
	"sync"
	"testing"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// collect drains a generator into its full access stream.
func collect(t *testing.T, g Generator, seed int64) []Access {
	t.Helper()
	g.Reset(seed)
	var out []Access
	for {
		a, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// A frozen Base replays access-for-access identically to a fresh
// generator Reset with the same seed — the invariant that keeps sweep
// children byte-identical (and cache-compatible) with standalone runs.
func TestFrozenBaseReplayMatchesFresh(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *Base
		seed int64
	}{
		{"sequential", func() *Base { return NewSequential(64, 3) }, 1},
		{"random", func() *Base { return NewRandom(48, 600) }, 7},
		{"npb-mg", func() *Base { return NewNPBMG(40, 2) }, 42},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := collect(t, c.gen(), c.seed)
			frozen := Freeze(c.gen(), c.seed)
			got := collect(t, frozen.Replay(), c.seed)
			if len(got) != len(want) {
				t.Fatalf("replay length %d, fresh length %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("access %d: replay %+v, fresh %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// The frozen form must preserve the template's canonical footprint and
// totals: the machine sizes its memory limit from FootprintPages, so a
// drifting value would silently simulate a different configuration.
func TestFrozenPreservesCanonicalFootprint(t *testing.T) {
	base := NewRandom(48, 600)
	frozen := Freeze(NewRandom(48, 600), 9).Replay()
	if got, want := frozen.FootprintPages(), base.FootprintPages(); got != want {
		t.Fatalf("FootprintPages = %d, want canonical %d", got, want)
	}
}

// Replayers are bound to their freeze seed: any other seed would
// silently serve the wrong stream under the requested seed's cache key.
func TestFrozenRejectsWrongSeed(t *testing.T) {
	frozen := Freeze(NewSequential(16, 1), 3)
	rep := frozen.Replay()
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with the wrong seed did not panic")
		}
	}()
	rep.Reset(4)
}

func TestFrozenNextBeforeResetPanics(t *testing.T) {
	rep := Freeze(NewSequential(16, 1), 1).Replay()
	defer func() {
		if recover() == nil {
			t.Fatal("Next before Reset did not panic")
		}
	}()
	rep.Next()
}

// tinyGen is a non-Base Generator exercising the recorded-tape fallback.
type tinyGen struct{ i, n int }

func (g *tinyGen) Name() string        { return "tiny" }
func (g *tinyGen) Regions() []Region   { return []Region{{Pages: 4}} }
func (g *tinyGen) FootprintPages() int { return 4 }
func (g *tinyGen) Reset(seed int64)    { g.i = 0 }
func (g *tinyGen) Next() (Access, bool) {
	if g.i >= g.n {
		return Access{}, false
	}
	a := Access{
		Addr:  memsim.VAddr(uint64(g.i%4) << memsim.PageShift),
		Write: g.i%2 == 1,
		Think: vclock.Duration(10),
	}
	g.i++
	return a, true
}

func TestFrozenTapeFallback(t *testing.T) {
	want := collect(t, &tinyGen{n: 9}, 5)
	frozen := Freeze(&tinyGen{n: 9}, 5)
	got := collect(t, frozen.Replay(), 5)
	if len(got) != len(want) {
		t.Fatalf("tape length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d: tape %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Many replayers over one Frozen run concurrently without sharing any
// cursor state — the read-only contract sweep workers rely on.
func TestFrozenConcurrentReplayers(t *testing.T) {
	frozen := Freeze(NewRandom(32, 400), 11)
	want := collect(t, frozen.Replay(), 11)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep := frozen.Replay()
			rep.Reset(11)
			for i := 0; ; i++ {
				a, ok := rep.Next()
				if !ok {
					if i != len(want) {
						errs <- "short stream"
					}
					return
				}
				if a != want[i] {
					errs <- "diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}
