// Package workload generates the memory access patterns of the paper's
// evaluation programs (Table IV) and of the motivating microbenchmarks
// (Figs. 1–3). Generators emit cacheline-granularity reads/writes with
// per-access think time; footprints are scaled from the paper's GBs to
// tens of MBs so whole runs finish in seconds, which preserves every
// shape that matters (stream structure, reuse, interleaving) because
// prefetch quality depends on the address sequence, not on absolute
// size.
//
// Internally a generator is a compact "page program" — a list of page
// visits, each expanded into a burst of line accesses on the fly — so
// multi-million-access runs cost a few hundred KB.
package workload

import (
	"fmt"
	"math/rand"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

// Access is one memory reference.
type Access struct {
	Addr  memsim.VAddr
	Write bool
	// Think is CPU time spent before this access.
	Think vclock.Duration
}

// Region is one mapped memory area (the VMA analogue).
type Region struct {
	Name  string
	Start memsim.VPN
	Pages int
	// Shared marks a region shared between processes (read-only data,
	// shared libraries); the RPT forwards the flag to the software
	// (§III-C) which can treat such pages specially.
	Shared bool
}

// End returns the first VPN past the region.
func (r Region) End() memsim.VPN { return r.Start + memsim.VPN(r.Pages) }

// Contains reports whether the VPN falls inside the region.
func (r Region) Contains(v memsim.VPN) bool { return v >= r.Start && v < r.End() }

// Generator produces a finite access stream.
type Generator interface {
	// Name identifies the workload in experiment output.
	Name() string
	// Regions lists the workload's memory areas (for footprint sizing
	// and the VMA prefetcher).
	Regions() []Region
	// FootprintPages is the total distinct pages the workload touches.
	FootprintPages() int
	// Reset rewinds the stream, rebuilding any randomized parts from
	// seed. Must be called before the first Next.
	Reset(seed int64)
	// Next returns the next access; ok = false at the end of the run.
	Next() (Access, bool)
}

// visit is one page-program step: touch `lines` cachelines of the page,
// starting at line `firstLine`, sequentially (wrapping within the page).
type visit struct {
	vpn       memsim.VPN
	firstLine uint8
	lines     uint8
	write     bool
}

// Base implements Generator from a page program built by a closure.
type Base struct {
	name    string
	regions []Region
	think   vclock.Duration
	loops   int
	build   func(rng *rand.Rand) []visit

	visits    []visit
	vi        int
	li        int
	loop      int
	footprint int
	total     int
}

// NewBase assembles a generator. think is charged per line access; loops
// is how many passes to run over the page program (iterative apps);
// build constructs the program, using rng for any irregular parts.
func NewBase(name string, regions []Region, think vclock.Duration, loops int, build func(rng *rand.Rand) []visit) *Base {
	if loops <= 0 {
		loops = 1
	}
	b := &Base{name: name, regions: regions, think: think, loops: loops, build: build}
	// Precompute the footprint and the total access count from a
	// canonical seed-0 build so both are plain reads: a generator shared
	// across goroutines (e.g. for footprint sizing while another runs
	// it) must not race on lazily written fields. The visit *structure*
	// of every in-repo program is seed-independent (seeds only permute
	// which pages irregular steps touch), so the canonical counts hold
	// for every run seed.
	visits := b.build(rand.New(rand.NewSource(0)))
	seen := make(map[memsim.VPN]struct{}, len(visits))
	for _, v := range visits {
		seen[v.vpn] = struct{}{}
		b.total += int(v.lines)
	}
	b.total *= b.loops
	b.footprint = len(seen)
	return b
}

// Name implements Generator.
func (b *Base) Name() string { return b.name }

// Regions implements Generator.
func (b *Base) Regions() []Region { return b.regions }

// FootprintPages implements Generator: the number of *distinct* pages
// the program actually touches (memory limits are fractions of this).
// The count always comes from a canonical seed-0 build done once in
// NewBase, so limits are identical across runs regardless of the run
// seed (for randomized programs the distinct count is stable across
// seeds to within a few pages anyway) and concurrent callers read an
// immutable field.
func (b *Base) FootprintPages() int { return b.footprint }

// RegionPages returns the total declared region size (the VMA extent,
// which can exceed the touched footprint).
func (b *Base) RegionPages() int {
	n := 0
	for _, r := range b.regions {
		n += r.Pages
	}
	return n
}

// Reset implements Generator.
func (b *Base) Reset(seed int64) {
	b.visits = b.build(rand.New(rand.NewSource(seed)))
	if len(b.visits) == 0 {
		panic(fmt.Sprintf("workload %s: empty page program (check size parameters)", b.name))
	}
	for _, v := range b.visits {
		if v.lines == 0 {
			panic(fmt.Sprintf("workload %s: zero-line visit of page %d", b.name, v.vpn))
		}
	}
	b.vi, b.li, b.loop = 0, 0, 0
}

// Next implements Generator.
func (b *Base) Next() (Access, bool) {
	if b.visits == nil {
		panic("workload: Next before Reset")
	}
	for b.vi == len(b.visits) {
		b.loop++
		if b.loop >= b.loops {
			return Access{}, false
		}
		b.vi, b.li = 0, 0
	}
	v := &b.visits[b.vi]
	// Both operands are non-negative and LinesPerPage is a power of two,
	// so the wrap is a mask (the signed % would compile to more).
	line := uint64(int(v.firstLine)+b.li) & (memsim.LinesPerPage - 1)
	addr := memsim.VAddr(uint64(v.vpn)<<memsim.PageShift | line<<memsim.LineShift)
	b.li++
	if b.li >= int(v.lines) {
		b.vi++
		b.li = 0
	}
	return Access{Addr: addr, Write: v.write, Think: b.think}, true
}

// TotalAccesses returns the exact access count of a full run (all
// loops). Like FootprintPages it comes from the canonical seed-0 build
// done once in NewBase — an immutable field, safe to read while another
// goroutine drives the generator (the lazy Reset(0) that used to live
// here raced in exactly that scenario).
func (b *Base) TotalAccesses() int { return b.total }

// interleave round-robins several page programs into one, modeling
// concurrently advancing streams within one process.
func interleave(progs ...[]visit) []visit {
	var out []visit
	idx := make([]int, len(progs))
	for {
		done := true
		for s := range progs {
			if idx[s] < len(progs[s]) {
				out = append(out, progs[s][idx[s]])
				idx[s]++
				done = false
			}
		}
		if done {
			return out
		}
	}
}

// seqVisits emits pages [start, start+pages) in order, touching all 64
// lines of each (a full sequential scan).
func seqVisits(start memsim.VPN, pages int, write bool) []visit {
	out := make([]visit, 0, pages)
	for i := 0; i < pages; i++ {
		out = append(out, visit{vpn: start + memsim.VPN(i), lines: memsim.LinesPerPage, write: write})
	}
	return out
}

// stridedVisits emits pages start, start+stride, ... (count pages),
// touching linesPerPage lines of each.
func stridedVisits(start memsim.VPN, stride int64, count int, lines uint8, write bool) []visit {
	out := make([]visit, 0, count)
	v := int64(start)
	for i := 0; i < count; i++ {
		if v > 0 {
			out = append(out, visit{vpn: memsim.VPN(v), lines: lines, write: write})
		}
		v += stride
	}
	return out
}
