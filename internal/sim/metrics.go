package sim

import (
	"fmt"

	"hopp/internal/vclock"
)

// Metrics aggregates one run's outcomes; the §VI-A definitions are
// implemented as methods so every figure reads straight off this struct.
type Metrics struct {
	System string

	// CompletionTime is the wall completion time (max across apps).
	CompletionTime vclock.Duration
	// PerApp maps workload name → its own completion time.
	PerApp map[string]vclock.Duration

	Accesses   uint64
	CacheHits  uint64 // served by L2/LLC
	DRAMHits   uint64 // LLC miss on a mapped page
	MinorFault uint64 // first-touch zero-fill

	// MajorFaults are demand remote reads on the critical path.
	MajorFaults uint64
	// SwapCacheHits are faults absorbed by a prefetched swapcache page.
	SwapCacheHits uint64
	// InjectedHits are first touches of early-PTE-injected pages — pure
	// DRAM hits that would have been faults (HoPP / Depth-N only).
	InjectedHits uint64
	// LateHits are faults that waited on an in-flight prefetch.
	LateHits uint64

	// PrefetchIssued counts prefetch pages read from remote.
	PrefetchIssued uint64
	// PrefetchEvicted counts prefetched pages reclaimed before use.
	PrefetchEvicted uint64

	// RemoteReads/RemoteWrites are total fabric page transfers.
	RemoteReads  uint64
	RemoteWrites uint64
	// BulkRequests counts §IV huge-space transfers (each moving many
	// pages with one request latency).
	BulkRequests uint64

	// Stall time decomposition.
	FaultStall    vclock.Duration
	PrefetchStall vclock.Duration // swapcache-hit + late-hit overhead

	// CoreAccuracy is the HoPP prefetch algorithm's own accuracy (its
	// execution engine's hits over its issued pages), excluding the
	// residual demand-path readahead that HoPP runs alongside. This is
	// the quantity Figs. 10/13 report for HoPP; HasCore marks validity.
	CoreAccuracy float64
	HasCore      bool

	// HoPP-only detail (zero elsewhere).
	HotPagesEmitted uint64
	IssuedByTier    [4]uint64
	HitsByTier      [4]uint64
	MeanLead        vclock.Duration
	LeadBuckets     [6]uint64
	HPDBandwidth    float64
	RPTBandwidth    float64
	RPTCacheHitRate float64
}

// PrefetchHits is every useful prefetch, however it was consumed.
func (m Metrics) PrefetchHits() uint64 {
	return m.SwapCacheHits + m.InjectedHits + m.LateHits
}

// Accuracy is prefetch hits / prefetched pages (§VI-A).
func (m Metrics) Accuracy() float64 {
	if m.PrefetchIssued == 0 {
		return 0
	}
	return float64(m.PrefetchHits()) / float64(m.PrefetchIssued)
}

// PrefetcherAccuracy is the accuracy of the system's *prefetching
// algorithm*: for HoPP machines, the core engine's own accuracy; for
// kernel-based baselines (whose only prefetcher is the demand-path one),
// the whole-system Accuracy.
func (m Metrics) PrefetcherAccuracy() float64 {
	if m.HasCore {
		return m.CoreAccuracy
	}
	return m.Accuracy()
}

// Coverage is prefetch hits / (remote demand requests + prefetch hits)
// (§VI-A).
func (m Metrics) Coverage() float64 {
	den := m.MajorFaults + m.PrefetchHits()
	if den == 0 {
		return 0
	}
	return float64(m.PrefetchHits()) / float64(den)
}

// DRAMHitCoverage is the injected-hit share of coverage — the part of
// Fig. 11's HoPP bars that never faults at all.
func (m Metrics) DRAMHitCoverage() float64 {
	den := m.MajorFaults + m.PrefetchHits()
	if den == 0 {
		return 0
	}
	return float64(m.InjectedHits) / float64(den)
}

// SwapCacheHitCoverage is the swapcache share of coverage (all of
// Fastswap's/Leap's coverage; the residual part of HoPP's).
func (m Metrics) SwapCacheHitCoverage() float64 {
	den := m.MajorFaults + m.PrefetchHits()
	if den == 0 {
		return 0
	}
	return float64(m.SwapCacheHits+m.LateHits) / float64(den)
}

// NormalizedPerformance is CT_local / CT_system given the local run's
// completion time (§VI-A).
func (m Metrics) NormalizedPerformance(local Metrics) float64 {
	if m.CompletionTime == 0 {
		return 0
	}
	return float64(local.CompletionTime) / float64(m.CompletionTime)
}

// SpeedupOver is 1 − CT_system/CT_baseline, the §VI-D Speedup metric
// (positive = faster than the baseline).
func (m Metrics) SpeedupOver(baseline Metrics) float64 {
	if baseline.CompletionTime == 0 {
		return 0
	}
	return 1 - float64(m.CompletionTime)/float64(baseline.CompletionTime)
}

// RemoteAccessRatio normalizes demand remote reads against a
// no-prefetch run (Fig. 17).
func (m Metrics) RemoteAccessRatio(noPrefetch Metrics) float64 {
	if noPrefetch.MajorFaults == 0 {
		return 0
	}
	return float64(m.MajorFaults) / float64(noPrefetch.MajorFaults)
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: ct=%v faults=%d swapHits=%d injHits=%d acc=%.3f cov=%.3f",
		m.System, m.CompletionTime, m.MajorFaults, m.SwapCacheHits, m.InjectedHits,
		m.Accuracy(), m.Coverage())
}
