package sim

import (
	"testing"

	"hopp/internal/workload"
)

// stepN drives n accesses through the machine's per-access path,
// failing the test on a generator exhaustion or step error — the
// workloads below carry enough loops that exhaustion means a setup bug.
func stepN(t *testing.T, m *Machine, n int) {
	t.Helper()
	a := m.apps[0]
	for i := 0; i < n; i++ {
		if err := m.step(a); err != nil {
			t.Fatal(err)
		}
		if a.done {
			t.Fatal("workload exhausted mid-measurement; raise its loop count")
		}
	}
}

// TestStepZeroAllocDRAMHit pins the hottest path in the simulator — a
// mapped page's access streaming through both cache levels to DRAM,
// feeding the HoPP hot-page pipeline — to zero steady-state heap
// allocations. This is the invariant the hot-loop work established:
// every structure on the path (drain buffers, HPD/RPT
// state, the hot-page ring, trainer scratch, flat maps) is reused, so
// throughput does not decay into the allocator.
func TestStepZeroAllocDRAMHit(t *testing.T) {
	// 4096-page footprint against a 2 MB LLC: the stream never fits, so
	// steady state is all LLC misses. No memory limit: every page stays
	// mapped after its first touch (no reclaim, no prefetch launches).
	gen := workload.NewSequential(4096, 1000)
	m, err := New(Config{System: HoPP()}, gen)
	if err != nil {
		t.Fatal(err)
	}
	// Three full passes: fault every page in, grow every on-demand
	// structure (line bitmaps, hot-page ring, flat maps) to its
	// steady-state size.
	stepN(t, m, 3*4096*64)
	if avg := testing.AllocsPerRun(10, func() { stepN(t, m, 2000) }); avg > 0 {
		t.Fatalf("steady-state DRAM-hit path allocates %.1f times per 2000 accesses, want 0", avg)
	}
}

// TestStepZeroAllocCacheHit pins the cache-hit path: a footprint small
// enough to live in L2 entirely, so after warmup every access is an L2
// hit (LRU touch only) and the MC pipeline stays idle.
func TestStepZeroAllocCacheHit(t *testing.T) {
	gen := workload.NewSequential(8, 1_000_000)
	m, err := New(Config{System: HoPP()}, gen)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, m, 3*8*64)
	if avg := testing.AllocsPerRun(10, func() { stepN(t, m, 2000) }); avg > 0 {
		t.Fatalf("steady-state cache-hit path allocates %.1f times per 2000 accesses, want 0", avg)
	}
}
