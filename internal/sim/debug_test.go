package sim

import (
	"testing"

	"hopp/internal/workload"
)

// TestDiagSequential prints the full HoPP pipeline state for a
// sequential run; it never fails and exists to debug pipeline stalls.
func TestDiagSequential(t *testing.T) {
	gen := workload.NewSequential(512, 3)
	m := MustNew(Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1}, gen)
	met, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := m.HoPPTrainerStats()
	xs, _ := m.HoPPExecStats()
	mcs, _ := m.MCStats()
	t.Logf("metrics: faults=%d minor=%d swapHits=%d injHits=%d late=%d issued=%d evicted=%d reads=%d writes=%d",
		met.MajorFaults, met.MinorFault, met.SwapCacheHits, met.InjectedHits, met.LateHits,
		met.PrefetchIssued, met.PrefetchEvicted, met.RemoteReads, met.RemoteWrites)
	local, _ := RunLocal(gen, 1)
	t.Logf("ct=%v local=%v norm=%.3f faultStall=%v prefStall=%v cacheHits=%d dramHits=%d",
		met.CompletionTime, local.CompletionTime, met.NormalizedPerformance(local),
		met.FaultStall, met.PrefetchStall, met.CacheHits, met.DRAMHits)
	t.Logf("trainer: %+v", ts)
	t.Logf("exec: %+v", xs)
	t.Logf("mc: %+v", mcs)
}
