package sim

import (
	"strings"
	"testing"

	"hopp/internal/vclock"
)

func TestAccuracyDefinition(t *testing.T) {
	m := Metrics{PrefetchIssued: 100, SwapCacheHits: 40, InjectedHits: 30, LateHits: 10}
	if got := m.Accuracy(); got != 0.8 {
		t.Fatalf("accuracy = %v, want 0.8", got)
	}
	if (Metrics{}).Accuracy() != 0 {
		t.Fatal("zero-issued accuracy should be 0")
	}
}

func TestCoverageDefinition(t *testing.T) {
	// §VI-A: hits / (remote demand requests + hits).
	m := Metrics{MajorFaults: 20, SwapCacheHits: 50, InjectedHits: 25, LateHits: 5}
	if got := m.Coverage(); got != 0.8 {
		t.Fatalf("coverage = %v, want 0.8", got)
	}
	if (Metrics{}).Coverage() != 0 {
		t.Fatal("empty coverage should be 0")
	}
	if got := m.DRAMHitCoverage(); got != 0.25 {
		t.Fatalf("DRAM-hit coverage = %v, want 0.25", got)
	}
	if got := m.SwapCacheHitCoverage(); got != 0.55 {
		t.Fatalf("swapcache coverage = %v, want 0.55", got)
	}
	if m.DRAMHitCoverage()+m.SwapCacheHitCoverage() != m.Coverage() {
		t.Fatal("coverage split does not sum")
	}
}

func TestPrefetcherAccuracySelection(t *testing.T) {
	m := Metrics{PrefetchIssued: 10, SwapCacheHits: 5, HasCore: true, CoreAccuracy: 0.95}
	if m.PrefetcherAccuracy() != 0.95 {
		t.Fatal("HasCore should select CoreAccuracy")
	}
	m.HasCore = false
	if m.PrefetcherAccuracy() != 0.5 {
		t.Fatal("baseline should fall back to whole-system accuracy")
	}
}

func TestNormalizedAndSpeedup(t *testing.T) {
	local := Metrics{CompletionTime: 50 * vclock.Millisecond}
	sys := Metrics{CompletionTime: 100 * vclock.Millisecond}
	if got := sys.NormalizedPerformance(local); got != 0.5 {
		t.Fatalf("normalized = %v", got)
	}
	base := Metrics{CompletionTime: 200 * vclock.Millisecond}
	if got := sys.SpeedupOver(base); got != 0.5 {
		t.Fatalf("speedup = %v", got)
	}
	if (Metrics{}).NormalizedPerformance(local) != 0 {
		t.Fatal("zero CT normalized should be 0")
	}
	if sys.SpeedupOver(Metrics{}) != 0 {
		t.Fatal("zero baseline speedup should be 0")
	}
}

func TestRemoteAccessRatio(t *testing.T) {
	none := Metrics{MajorFaults: 200}
	m := Metrics{MajorFaults: 50}
	if got := m.RemoteAccessRatio(none); got != 0.25 {
		t.Fatalf("ratio = %v", got)
	}
	if m.RemoteAccessRatio(Metrics{}) != 0 {
		t.Fatal("zero baseline ratio should be 0")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{System: "X", CompletionTime: vclock.Millisecond}
	s := m.String()
	if !strings.Contains(s, "X") || !strings.Contains(s, "ct=") {
		t.Fatalf("String() = %q", s)
	}
}
