package sim

import (
	"context"
	"fmt"
	"math"

	"hopp/internal/cachesim"
	"hopp/internal/core"
	"hopp/internal/mc"
	"hopp/internal/memsim"
	"hopp/internal/prefetch"
	"hopp/internal/proto"
	"hopp/internal/rdma"
	"hopp/internal/vclock"
	"hopp/internal/vmm"
	"hopp/internal/workload"
)

// Config parameterizes a Machine.
type Config struct {
	// System is the remote-memory system under test.
	System System
	// Costs is the kernel cost model; zero value takes DefaultCosts.
	Costs vmm.Costs
	// Fabric configures the RDMA link.
	Fabric rdma.Config
	// MC configures the memory controller hardware (HoPP systems).
	MC mc.Config
	// MCChannels runs a bank of memory controllers (§III-B "impact of
	// multiple memory channels"). 0 or 1 = single controller.
	MCChannels int
	// MCInterleaved spreads a page's cachelines across the channels
	// (with the per-channel HPD threshold reduced accordingly).
	MCInterleaved bool
	// UsePrototype replaces the §III MC hardware with the §V prototype:
	// HMTT full-trace capture feeding a software HPD. Ignores MCChannels.
	UsePrototype bool
	// Proto configures the prototype pipeline when UsePrototype is set.
	Proto proto.Config
	// L2Bytes/LLCBytes size the cache hierarchy. Defaults 256 KB / 2 MB —
	// scaled with the workload footprints so streaming behaviour matches
	// the paper's GB-footprints-vs-35MB-LLC regime.
	L2Bytes  int
	LLCBytes int
	// LocalMemoryFrac limits each app's cgroup to this fraction of its
	// footprint (the paper's 50%/25% configurations). 0 = unlimited
	// (the local baseline run).
	LocalMemoryFrac float64
	// LocalMemoryPages overrides the per-app limit absolutely when > 0.
	LocalMemoryPages int
	// HoPPSoftwareDelay is the hot-page-to-fetch-issue software latency.
	// Default 1 µs.
	HoPPSoftwareDelay vclock.Duration
	// LazyLRU switches the VMM to kernel-realistic approximate recency
	// (no LRU refresh on ordinary touches); see vmm.Config.LazyLRU.
	LazyLRU bool
	// Seed drives workload randomness and fabric jitter.
	Seed int64
	// MaxAccesses aborts runaway runs. Default 200M.
	MaxAccesses uint64
}

func (c *Config) fill() {
	if c.Costs == (vmm.Costs{}) {
		c.Costs = vmm.DefaultCosts()
	}
	if c.L2Bytes == 0 {
		c.L2Bytes = 256 << 10
	}
	if c.LLCBytes == 0 {
		c.LLCBytes = 2 << 20
	}
	if c.HoPPSoftwareDelay == 0 {
		c.HoPPSoftwareDelay = vclock.Microsecond
	}
	if c.MaxAccesses == 0 {
		c.MaxAccesses = 200_000_000
	}
	if c.Fabric.Seed == 0 {
		c.Fabric.Seed = c.Seed + 7777
	}
}

type appState struct {
	pid memsim.PID
	gen workload.Generator
	// base/prog hold gen's concrete value when it is a *workload.Base or
	// a frozen-stream program replayer — together the overwhelmingly
	// common generators — letting step call Next without the interface
	// dispatch.
	base     *workload.Base
	prog     *workload.ProgramReplay
	regions  []workload.Region
	now      vclock.Time
	done     bool
	finished vclock.Time
}

// inflightFetch tracks one outstanding prefetch read. Structs are
// pooled on Machine.infFree: each carries a landing closure built once
// at allocation (closing over the struct itself), so launching a
// prefetch in steady state allocates neither the struct nor a fresh
// callback.
type inflightFetch struct {
	key     memsim.PageKey
	arrival vclock.Time
	inject  bool
	// onInjected is HoPP's execution-engine callback (nil for demand-path
	// prefetchers).
	onInjected func(vclock.Time)
	// land is the prebuilt landing-event callback; it reads key from the
	// struct, so it stays valid across pool reuses.
	land func(vclock.Time)
	// next links the freelist.
	next *inflightFetch
}

// Machine is one simulated compute node plus its remote memory node.
type Machine struct {
	cfg    Config
	costs  vmm.Costs
	vm     *vmm.VMM
	fabric *rdma.Fabric
	remote *rdma.Node
	caches *cachesim.Hierarchy
	// l2/llc are the hierarchy's two levels, held directly so memAccess
	// walks them without the Hierarchy dispatch call. Machines always
	// model exactly this two-level shape.
	l2, llc *cachesim.Cache

	mcCtl mc.Tracker // nil unless System.HoPP
	// mcSingle devirtualizes the common one-controller machine: when the
	// tracker is a plain *mc.Controller, the per-miss observe/pending
	// calls go straight to it instead of through the interface.
	mcSingle  *mc.Controller
	pref      *core.Prefetcher    // nil unless System.HoPP
	faultPref prefetch.Prefetcher // nil for NoPrefetch

	queue    vclock.EventQueue
	apps     []*appState
	inflight map[memsim.PageKey]*inflightFetch

	// regionsByPID indexes each app's workload regions by PID (PIDs are
	// 1..n), so region queries skip the app scan.
	regionsByPID [][]workload.Region
	// active is RunContext's scratch list of not-yet-finished apps.
	active []*appState
	// hotBuf and victimBuf are reused drain buffers for the per-access
	// hot loop (see DESIGN.md "Hot-path invariants").
	hotBuf    []mc.HotPage
	victimBuf []vmm.Victim
	// infFree heads the inflightFetch freelist.
	infFree *inflightFetch

	met Metrics
}

// newInflight pops the freelist (or allocates); the caller sets every
// field except land and next.
func (m *Machine) newInflight() *inflightFetch {
	inf := m.infFree
	if inf != nil {
		m.infFree = inf.next
		inf.next = nil
		return inf
	}
	inf = &inflightFetch{}
	inf.land = func(t vclock.Time) { m.landPrefetch(inf.key, inf, t) }
	return inf
}

// freeInflight recycles a landed fetch. The landing event has already
// fired (or will never fire), so the struct cannot be reached from the
// event queue.
func (m *Machine) freeInflight(inf *inflightFetch) {
	inf.onInjected = nil
	inf.next = m.infFree
	m.infFree = inf
}

// New builds a machine running the given workloads (one process each,
// PIDs 1..n) under cfg.System.
func New(cfg Config, gens ...workload.Generator) (*Machine, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("sim: no workloads")
	}
	cfg.fill()
	l2 := cachesim.New(cachesim.Config{Name: "L2", SizeBytes: cfg.L2Bytes, Ways: 8})
	llc := cachesim.New(cachesim.Config{Name: "LLC", SizeBytes: cfg.LLCBytes, Ways: 16})
	m := &Machine{
		cfg:      cfg,
		costs:    cfg.Costs,
		fabric:   rdma.NewFabric(cfg.Fabric),
		remote:   rdma.NewNode(0),
		caches:   cachesim.NewHierarchy(l2, llc),
		l2:       l2,
		llc:      llc,
		inflight: make(map[memsim.PageKey]*inflightFetch),
	}
	m.vm = vmm.New(vmm.Config{
		ChargePrefetched: cfg.System.ChargePrefetched,
		LazyLRU:          cfg.LazyLRU,
	})
	m.regionsByPID = make([][]workload.Region, len(gens)+1)
	for i, g := range gens {
		pid := memsim.PID(i + 1)
		limit := 0
		switch {
		case cfg.LocalMemoryPages > 0:
			limit = cfg.LocalMemoryPages
		case cfg.LocalMemoryFrac > 0:
			limit = int(math.Ceil(cfg.LocalMemoryFrac * float64(g.FootprintPages())))
		}
		if _, err := m.vm.Register(pid, limit); err != nil {
			return nil, err
		}
		g.Reset(cfg.Seed + int64(i)*101)
		regions := g.Regions()
		for _, r := range regions {
			m.vm.Presize(pid, r.Start, r.End())
		}
		m.regionsByPID[pid] = regions
		base, _ := g.(*workload.Base)
		prog, _ := g.(*workload.ProgramReplay)
		m.apps = append(m.apps, &appState{pid: pid, gen: g, base: base, prog: prog, regions: regions})
	}
	if cfg.System.HoPP {
		var ctl mc.Tracker
		if cfg.UsePrototype {
			pp, err := proto.New(cfg.Proto)
			if err != nil {
				return nil, err
			}
			ctl = pp
		} else if cfg.MCChannels > 1 {
			multi, err := mc.NewMulti(mc.MultiConfig{
				Channels:    cfg.MCChannels,
				Interleaved: cfg.MCInterleaved,
				PerChannel:  cfg.MC,
			})
			if err != nil {
				return nil, err
			}
			ctl = multi
		} else {
			single, err := mc.New(cfg.MC)
			if err != nil {
				return nil, err
			}
			ctl = single
			m.mcSingle = single
		}
		m.mcCtl = ctl
		m.vm.OnSetPTE = func(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN) {
			ctl.SetMapping(ppn, pid, vpn, m.sharedRegion(memsim.PageKey{PID: pid, VPN: vpn}), 0)
		}
		m.vm.OnClearPTE = ctl.ClearMapping
		m.pref = core.NewPrefetcher(cfg.System.HoPPParams, (*hoppBackend)(m))
		if cfg.System.HoPPParams.SmartEviction {
			m.vm.Advisor = m.pref.RecentlyHot
		}
	}
	if cfg.System.NewFault != nil {
		m.faultPref = cfg.System.NewFault(m)
	}
	m.met.System = cfg.System.Name
	m.met.PerApp = make(map[string]vclock.Duration)
	return m, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config, gens ...workload.Generator) *Machine {
	m, err := New(cfg, gens...)
	if err != nil {
		panic(err)
	}
	return m
}

// sharedRegion reports whether the page lies in a region its workload
// declared shared.
func (m *Machine) sharedRegion(key memsim.PageKey) bool {
	if int(key.PID) >= len(m.regionsByPID) {
		return false
	}
	for _, r := range m.regionsByPID[key.PID] {
		if r.Contains(key.VPN) {
			return r.Shared
		}
	}
	return false
}

// Region implements prefetch.RegionResolver for the VMA prefetcher.
func (m *Machine) Region(key memsim.PageKey) (memsim.VPN, memsim.VPN, bool) {
	if int(key.PID) >= len(m.regionsByPID) {
		return 0, 0, false
	}
	for _, r := range m.regionsByPID[key.PID] {
		if r.Contains(key.VPN) {
			return r.Start, r.End(), true
		}
	}
	return 0, 0, false
}

// Run executes every workload to completion and returns the metrics.
func (m *Machine) Run() (Metrics, error) {
	return m.RunContext(context.Background())
}

// ctxCheckInterval is how many simulated accesses pass between
// cancellation polls: frequent enough that a run aborts within
// microseconds of wall time, rare enough to keep the select off the
// hot path.
const ctxCheckInterval = 4096

// RunContext is Run with cancellation: every ctxCheckInterval simulated
// accesses the machine polls ctx and, if it is done, abandons the run
// and returns ctx.Err() alongside the metrics accumulated so far.
// Cancellation does not corrupt the machine, but an abandoned run's
// metrics are partial and must not be compared against completed ones.
func (m *Machine) RunContext(ctx context.Context) (Metrics, error) {
	done := ctx.Done()
	// active holds the not-yet-finished apps in registration order, so
	// next-app selection scans live apps only — and the dominant 1- and
	// 2-app configurations skip the scan entirely. Ties break toward the
	// earliest-registered app, exactly as the old all-apps scan did
	// (strictly-Before comparisons against the earlier candidate).
	active := m.active[:0]
	for _, a := range m.apps {
		if !a.done {
			active = append(active, a)
		}
	}
	m.active = active
	// Poll on the first iteration (matching the old Accesses%interval==0
	// check at access zero), then every ctxCheckInterval iterations.
	ctxCountdown := 1
	for len(active) > 0 {
		if done != nil {
			if ctxCountdown--; ctxCountdown <= 0 {
				ctxCountdown = ctxCheckInterval
				select {
				case <-done:
					return m.met, ctx.Err()
				default:
				}
			}
		}
		var next *appState
		switch len(active) {
		case 1:
			next = active[0]
		case 2:
			next = active[0]
			if active[1].now.Before(next.now) {
				next = active[1]
			}
		default:
			next = active[0]
			for _, a := range active[1:] {
				if a.now.Before(next.now) {
					next = a
				}
			}
		}
		if err := m.step(next); err != nil {
			return m.met, err
		}
		if next.done {
			for i, a := range active {
				if a == next {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
			m.active = active
		}
		if m.met.Accesses > m.cfg.MaxAccesses {
			return m.met, fmt.Errorf("sim: exceeded MaxAccesses=%d", m.cfg.MaxAccesses)
		}
	}
	// Land any still-in-flight prefetches so accounting is complete.
	m.queue.RunUntil(vclock.Time(math.MaxInt64))
	m.finalize()
	return m.met, nil
}

func (m *Machine) finalize() {
	var maxT vclock.Time
	for _, a := range m.apps {
		m.met.PerApp[a.gen.Name()] = vclock.Duration(a.finished)
		if a.finished.After(maxT) {
			maxT = a.finished
		}
	}
	m.met.CompletionTime = vclock.Duration(maxT)
	if m.mcCtl != nil {
		s := m.mcCtl.Stats()
		m.met.HotPagesEmitted = s.HotEmitted
		m.met.HPDBandwidth = s.HPDBandwidthRatio()
		m.met.RPTBandwidth = s.RPTBandwidthRatio()
		m.met.RPTCacheHitRate = m.mcCtl.RPTCacheStats().HitRate()
	}
	if m.pref != nil {
		xs := m.pref.Exec.Stats()
		m.met.IssuedByTier = xs.IssuedByTier
		m.met.HitsByTier = xs.HitsByTier
		m.met.MeanLead = xs.MeanLead()
		m.met.LeadBuckets = xs.LeadBuckets
		m.met.CoreAccuracy = xs.Accuracy()
		m.met.HasCore = true
	}
}

func (m *Machine) step(a *appState) error {
	var acc workload.Access
	var ok bool
	switch {
	case a.base != nil:
		acc, ok = a.base.Next()
	case a.prog != nil:
		acc, ok = a.prog.Next()
	default:
		acc, ok = a.gen.Next()
	}
	if !ok {
		a.done = true
		a.finished = a.now
		return nil
	}
	m.met.Accesses++
	a.now = a.now.Add(acc.Think)
	// Peek before calling RunUntil: while a prefetch is in flight the
	// queue is non-empty for thousands of accesses, but its event is due
	// on almost none of them, and the inlined peek is much cheaper than
	// the call.
	if t, ok := m.queue.PeekTime(); ok && !t.After(a.now) {
		m.queue.RunUntil(a.now)
	}

	key := memsim.PageKey{PID: a.pid, VPN: acc.Addr.Page()}
	// Access fuses classification with the mapped-page Touch (LRU
	// refresh, injected-flag consumption) in one page-table walk.
	state, ppn, injected := m.vm.Access(key)
	switch state {
	case vmm.Mapped:
		if injected {
			m.met.InjectedHits++
			if m.pref != nil {
				m.pref.Exec.OnFirstHit(key, a.now)
			}
			if m.faultPref != nil {
				m.faultPref.OnPrefetchHit(a.now, key)
			}
		}
		m.memAccess(a, ppn, acc)
		return nil
	case vmm.SwapCached:
		return m.swapCacheHit(a, key, acc)
	case vmm.SwappedOut:
		return m.majorFault(a, key, acc)
	default: // Untouched
		return m.minorFault(a, key, acc)
	}
}

// memAccess models the hardware path of an access to a mapped page:
// cache hierarchy, DRAM on LLC miss, and — on HoPP machines — the
// memory controller's hot page pipeline. The drain is gated on
// Pending so the common no-hot-page miss costs one counter check, and
// the single-controller case bypasses the mc.Tracker interface.
func (m *Machine) memAccess(a *appState, ppn memsim.PPN, acc workload.Access) {
	line := int(uint64(acc.Addr)>>memsim.LineShift) & (memsim.LinesPerPage - 1)
	pa := ppn.LineAddr(line)
	if !m.l2.Access(pa) && !m.llc.Access(pa) {
		m.met.DRAMHits++
		a.now = a.now.Add(m.costs.DRAMHit)
		if ctl := m.mcSingle; ctl != nil {
			ctl.ObserveMiss(a.now, pa, acc.Write)
			if ctl.Pending() != 0 {
				m.drainHotPages()
			}
		} else if m.mcCtl != nil {
			m.mcCtl.ObserveMiss(a.now, pa, acc.Write)
			if m.mcCtl.Pending() != 0 {
				m.drainHotPages()
			}
		}
	} else {
		m.met.CacheHits++
		a.now = a.now.Add(m.costs.CacheHit)
	}
}

func (m *Machine) drainHotPages() {
	// hotBuf is reused across drains; OnHotPage never re-enters the
	// drain (prefetch issue paths do not touch the MC), so iterating the
	// shared buffer is safe.
	m.hotBuf = m.mcCtl.DrainInto(m.hotBuf[:0], 0)
	for i := range m.hotBuf {
		hp := &m.hotBuf[i]
		if !hp.Mapped {
			continue // kernel or unmapped page; software drops it
		}
		m.pref.OnHotPage(hp.Time, hp.PID, hp.VPN, hp.Shared)
	}
}

func (m *Machine) swapCacheHit(a *appState, key memsim.PageKey, acc workload.Access) error {
	m.met.SwapCacheHits++
	cost := m.costs.PrefetchHit()
	m.met.PrefetchStall += cost
	a.now = a.now.Add(cost)
	ppn, err := m.vm.PromoteSwapCache(key)
	if err != nil {
		return err
	}
	// Only prefetches land in the swapcache, so this hit is the page's
	// first touch — report it to the feedback seam.
	if m.faultPref != nil {
		m.faultPref.OnPrefetchHit(a.now, key)
	}
	m.reclaim(a, key.PID, a.now)
	m.memAccess(a, ppn, acc)
	return nil
}

func (m *Machine) majorFault(a *appState, key memsim.PageKey, acc workload.Access) error {
	if inf, ok := m.inflight[key]; ok {
		return m.lateHit(a, key, acc, inf)
	}
	m.met.MajorFaults++
	if !m.remote.Read(key) {
		return fmt.Errorf("sim: page %v swapped out but absent from remote node", key)
	}
	m.met.RemoteReads++
	arrival := m.fabric.PageRead(a.now)
	cost := m.costs.DemandFixed() + arrival.Sub(a.now)
	m.met.FaultStall += cost
	a.now = a.now.Add(cost)
	ppn, err := m.vm.MapRemote(key, false)
	if err != nil {
		return err
	}
	m.reclaim(a, key.PID, a.now)
	m.firePrefetcher(a, key)
	m.memAccess(a, ppn, acc)
	return nil
}

// lateHit is a demand fault absorbed by an in-flight prefetch: the
// fault waits for the outstanding read instead of issuing its own.
func (m *Machine) lateHit(a *appState, key memsim.PageKey, acc workload.Access, inf *inflightFetch) error {
	wait := vclock.Duration(0)
	if inf.arrival.After(a.now) {
		wait = inf.arrival.Sub(a.now)
	}
	cost := wait + m.costs.PrefetchHit()
	a.now = a.now.Add(cost)
	m.queue.RunUntil(a.now) // fires the landing event
	var ppn memsim.PPN
	var err error
	switch m.vm.Lookup(key) {
	case vmm.SwapCached:
		ppn, err = m.vm.PromoteSwapCache(key)
		m.reclaim(a, key.PID, a.now)
	case vmm.Mapped:
		ppn, err = m.vm.Touch(key)
	default:
		// The landing was dropped or the page was reclaimed the instant
		// it arrived (thrashing); fall back to a plain demand fetch.
		m.met.PrefetchStall += cost
		return m.majorFault(a, key, acc)
	}
	if err != nil {
		return err
	}
	m.met.LateHits++
	m.met.PrefetchStall += cost
	if m.pref != nil {
		m.pref.Exec.NoteLateHit(key, a.now)
	}
	// A late hit still consumed the prefetch: first touch of a
	// prefetched page, whichever state the landing left it in.
	if m.faultPref != nil {
		m.faultPref.OnPrefetchHit(a.now, key)
	}
	m.memAccess(a, ppn, acc)
	return nil
}

func (m *Machine) minorFault(a *appState, key memsim.PageKey, acc workload.Access) error {
	m.met.MinorFault++
	a.now = a.now.Add(m.costs.MinorFault)
	ppn, err := m.vm.MapNew(key)
	if err != nil {
		return err
	}
	m.reclaim(a, key.PID, a.now)
	m.memAccess(a, ppn, acc)
	return nil
}

// firePrefetcher runs the demand-path prefetch policy after a major
// fault and launches the resulting reads.
func (m *Machine) firePrefetcher(a *appState, key memsim.PageKey) {
	if m.faultPref == nil {
		return
	}
	inject := m.faultPref.Inject()
	for _, vpn := range m.faultPref.OnFault(a.now, key) {
		k := memsim.PageKey{PID: key.PID, VPN: vpn}
		if _, busy := m.inflight[k]; busy {
			continue
		}
		if m.vm.Lookup(k) != vmm.SwappedOut || !m.remote.Has(k) {
			continue
		}
		m.launchPrefetch(a.now, k, inject, nil)
	}
}

// launchPrefetch issues one prefetch read and schedules its landing.
func (m *Machine) launchPrefetch(now vclock.Time, k memsim.PageKey, inject bool, onInjected func(vclock.Time)) vclock.Time {
	m.remote.Read(k)
	m.met.RemoteReads++
	m.met.PrefetchIssued++
	arrival := m.fabric.PageRead(now)
	inf := m.newInflight()
	inf.key, inf.arrival, inf.inject, inf.onInjected = k, arrival, inject, onInjected
	m.inflight[k] = inf
	m.queue.Schedule(arrival, inf.land)
	return arrival
}

func (m *Machine) landPrefetch(k memsim.PageKey, inf *inflightFetch, t vclock.Time) {
	delete(m.inflight, k)
	if m.vm.Lookup(k) != vmm.SwappedOut {
		// The page was demand-fetched while we were in flight (possible
		// only via the late-hit path racing the landing event at the
		// same timestamp); drop the duplicate.
		m.freeInflight(inf)
		return
	}
	if inf.inject {
		if _, err := m.vm.MapRemote(k, true); err != nil {
			m.freeInflight(inf)
			return
		}
		if inf.onInjected != nil {
			inf.onInjected(t)
		}
	} else {
		if _, err := m.vm.InsertSwapCache(k); err != nil {
			m.freeInflight(inf)
			return
		}
	}
	m.freeInflight(inf)
	// t is the landing time: any writeback this landing forces enters
	// the fabric now, not at time zero.
	m.reclaim(nil, k.PID, t)
}

// reclaim brings the cgroup back under its limit, writing victims to the
// remote node. Reclaim runs in advance of allocations since Linux v5.8
// (§II-A), so its latency stays off the app's critical path unless the
// cost model says otherwise. now stamps the victims' fabric writebacks;
// a is non-nil only on app-initiated paths, where synchronous-reclaim
// cost models may charge the app.
func (m *Machine) reclaim(a *appState, pid memsim.PID, now vclock.Time) {
	m.victimBuf = m.vm.ReclaimInto(pid, m.victimBuf[:0])
	victims := m.victimBuf
	if len(victims) == 0 {
		return
	}
	for i := range victims {
		v := &victims[i]
		m.remote.Write(v.Key)
		m.met.RemoteWrites++
		m.fabric.PageWrite(now)
		m.caches.InvalidatePage(v.PPN)
		if v.WasInjected || v.WasSwapCached {
			m.met.PrefetchEvicted++
		}
		if v.WasInjected && m.pref != nil {
			m.pref.Exec.OnEvicted(v.Key)
		}
		if v.WasPrefetched && m.faultPref != nil {
			// A prefetched victim still flagged injected/swapcached was
			// reclaimed before the app ever touched it.
			m.faultPref.OnPrefetchEvicted(now, v.Key, !v.WasInjected && !v.WasSwapCached)
		}
	}
	if a != nil && m.costs.SynchronousReclaim {
		a.now = a.now.Add(vclock.Duration(len(victims)) * m.costs.ReclaimPerPage)
	}
}

// hoppBackend adapts the machine to core.Backend without exporting the
// methods on Machine itself.
type hoppBackend Machine

// PageState implements core.Backend.
func (b *hoppBackend) PageState(key memsim.PageKey) vmm.PageState {
	return (*Machine)(b).vm.Lookup(key)
}

// Fetch implements core.Backend: issue the RDMA read after the software
// processing delay and schedule early PTE injection at arrival.
func (b *hoppBackend) Fetch(now vclock.Time, key memsim.PageKey, onInjected func(vclock.Time)) bool {
	m := (*Machine)(b)
	if _, busy := m.inflight[key]; busy {
		return false
	}
	if !m.remote.Has(key) {
		return false
	}
	m.launchPrefetch(now.Add(m.cfg.HoPPSoftwareDelay), key, true, onInjected)
	return true
}

// InjectSwapCached implements core.Backend: map an already-local
// swapcache page with the injected flag, so its coming access is a DRAM
// hit instead of a 2.3 µs prefetch-hit.
func (b *hoppBackend) InjectSwapCached(now vclock.Time, key memsim.PageKey) bool {
	m := (*Machine)(b)
	if _, err := m.vm.PromoteInjected(key); err != nil {
		return false
	}
	// now is the software's injection time: writebacks it forces enter
	// the fabric then, not at time zero.
	m.reclaim(nil, key.PID, now)
	return true
}

// FetchBulk implements core.Backend: §IV's huge-space swap — the whole
// window crosses the fabric in ONE transfer (one base latency amortized
// over up to 512 pages), landing as individually injected PTEs.
func (b *hoppBackend) FetchBulk(now vclock.Time, keys []memsim.PageKey, onInjected func(memsim.PageKey, vclock.Time)) bool {
	m := (*Machine)(b)
	if len(keys) == 0 {
		return false
	}
	for _, k := range keys {
		if _, busy := m.inflight[k]; busy || !m.remote.Has(k) {
			return false
		}
	}
	issue := now.Add(m.cfg.HoPPSoftwareDelay)
	arrival := m.fabric.Transfer(issue, len(keys)*memsim.PageSize)
	m.met.BulkRequests++
	infs := make([]*inflightFetch, len(keys))
	for i, k := range keys {
		m.remote.Read(k)
		m.met.RemoteReads++
		m.met.PrefetchIssued++
		inf := m.newInflight()
		inf.key, inf.arrival, inf.inject, inf.onInjected = k, arrival, true, nil
		infs[i] = inf
		m.inflight[k] = inf
	}
	m.queue.Schedule(arrival, func(t vclock.Time) {
		for i, k := range keys {
			m.landPrefetch(k, infs[i], t)
			onInjected(k, t)
		}
	})
	return true
}

// Stats accessors for experiments and tests.

// Metrics returns the metrics accumulated so far (complete after Run).
func (m *Machine) Metrics() Metrics { return m.met }

// HoPPTrainerStats exposes prediction-algorithm counters on HoPP
// machines (the trainer's, or the alternative algorithm's if one is
// configured).
func (m *Machine) HoPPTrainerStats() (core.TrainerStats, bool) {
	if m.pref == nil {
		return core.TrainerStats{}, false
	}
	if m.pref.Trainer != nil {
		return m.pref.Trainer.Stats(), true
	}
	if mk, ok := m.pref.Algo.(*core.Markov); ok {
		return mk.Stats(), true
	}
	return core.TrainerStats{}, false
}

// HoPPExecStats exposes execution engine counters on HoPP machines.
func (m *Machine) HoPPExecStats() (core.ExecStats, bool) {
	if m.pref == nil {
		return core.ExecStats{}, false
	}
	return m.pref.Exec.Stats(), true
}

// MCStats exposes the memory controller ledger on HoPP machines.
func (m *Machine) MCStats() (mc.Stats, bool) {
	if m.mcCtl == nil {
		return mc.Stats{}, false
	}
	return m.mcCtl.Stats(), true
}

// FabricStats exposes the fabric ledger.
func (m *Machine) FabricStats() rdma.Stats { return m.fabric.Stats() }
