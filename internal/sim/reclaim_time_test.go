package sim

import (
	"testing"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
	"hopp/internal/vmm"
	"hopp/internal/workload"
)

// TestReclaimStampedAtLandingTime is the regression test for the
// time-zero writeback bug: reclaim triggered from a prefetch landing
// used to stamp its fabric.PageWrite at time 0 instead of the landing
// time, so the writeback queued behind transfers that in simulated time
// it should have followed with a free link. The schedule below is
// hand-computed for the default zero-jitter fabric; the bug shows up as
// nonzero queue delay on the final writeback.
func TestReclaimStampedAtLandingTime(t *testing.T) {
	// ChargePrefetched makes the swapcache landing charge the cgroup
	// (HoPP's accounting), so the landing itself can force a reclaim —
	// the path that used the zero timestamp. No prefetcher machinery is
	// attached; the test launches the prefetch by hand.
	cfg := Config{
		System:           System{Name: "charged", ChargePrefetched: true},
		LocalMemoryPages: 2,
	}
	m, err := New(cfg, workload.NewSequential(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.apps[0]
	key := func(v uint64) memsim.PageKey {
		return memsim.PageKey{PID: 1, VPN: memsim.VPN(v)}
	}
	acc := func(v uint64) workload.Access {
		return workload.Access{Addr: memsim.VPN(v).Addr()}
	}

	// Map pages 1 and 2 (filling the 2-page cgroup), then page 3, whose
	// reclaim writes victim page 1 back to the remote node. This is the
	// app-initiated path: the writeback is stamped with the app clock.
	for v := uint64(1); v <= 3; v++ {
		if err := m.minorFault(a, key(v), acc(v)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.met.RemoteWrites; got != 1 {
		t.Fatalf("RemoteWrites after filling = %d, want 1 (victim page 1)", got)
	}

	// Launch a prefetch of page 1 at a point where the link is long
	// free. With zero jitter the arrival is exactly issue + wire + base.
	issue := a.now.Add(10 * vclock.Microsecond)
	arrival := m.launchPrefetch(issue, key(1), false, nil)
	pageBytes := float64(memsim.PageSize)
	wire := vclock.Duration(pageBytes / 7) // 56 Gbps default
	if want := issue.Add(wire + 3400*vclock.Nanosecond); arrival != want {
		t.Fatalf("prefetch arrival = %v, want %v", arrival, want)
	}

	// Fire the landing. Inserting page 1 into the swap cache puts the
	// cgroup over its limit, so the landing itself forces a writeback of
	// victim page 2 — which must enter the fabric at the landing time.
	m.queue.RunUntil(arrival)
	if st := m.vm.Lookup(key(1)); st != vmm.SwapCached {
		t.Fatalf("page 1 after landing = %v, want SwapCached", st)
	}
	if got := m.met.RemoteWrites; got != 2 {
		t.Fatalf("RemoteWrites after landing = %d, want 2 (victim page 2)", got)
	}

	fs := m.FabricStats()
	if fs.Transfers != 3 || fs.Bytes != 3*memsim.PageSize {
		t.Fatalf("fabric saw %d transfers / %d bytes, want 3 / %d",
			fs.Transfers, fs.Bytes, 3*memsim.PageSize)
	}
	// Every transfer in this schedule starts on a free link: the two
	// writebacks are spaced far apart, and the landing-forced one begins
	// at the landing time, after the read's wire occupancy has ended.
	// Stamping it at time 0 instead would queue it behind the read's
	// wire time and show up here as a nonzero delay.
	if fs.QueueDelaySum != 0 {
		t.Fatalf("QueueDelaySum = %v, want 0: a reclaim writeback was stamped before its trigger time", fs.QueueDelaySum)
	}
}
