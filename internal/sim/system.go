// Package sim is the discrete-event machine that runs workloads on a
// simulated disaggregated-memory server: CPU caches filter accesses, the
// VMM services faults with the §II-A cost model, the RDMA fabric moves
// pages, the modified memory controller extracts hot pages, and the
// system under test (a demand-path prefetcher from internal/prefetch,
// or HoPP) prefetches.
//
// One Machine = one run of one system configuration over one or more
// applications; Run returns the Metrics behind every figure in §VI.
package sim

import (
	"strconv"

	"hopp/internal/core"
	"hopp/internal/prefetch"
)

// System describes a remote-memory system under test.
type System struct {
	// Name labels experiment output.
	Name string
	// NewFault constructs the demand-path prefetcher (per run, because
	// prefetchers carry history). nil means no demand-path prefetching.
	// The VMA prefetcher receives the machine as its RegionResolver.
	NewFault func(regions prefetch.RegionResolver) prefetch.Prefetcher
	// HoPP attaches the memory controller hardware and the core software
	// data plane.
	HoPP bool
	// HoPPParams configures the core stack when HoPP is true.
	HoPPParams core.Params
	// ChargePrefetched charges swapcache-landed prefetches to the cgroup
	// (HoPP's accounting fix, §I).
	ChargePrefetched bool
}

// DemandSystem resolves a prefetch-registry spec ("leap", "depth-16",
// "spp?lookahead=6") to a demand-path System. Every registered scheme
// is reachable this way; the named wrappers below are conveniences over
// the same table. The no-prefetch scheme keeps its nil-NewFault fast
// path (the machine skips the prefetcher hooks entirely).
func DemandSystem(spec string) (System, error) {
	// Probe once for the display name; prefetchers carry run state, so
	// the probe instance is never used for simulation.
	probe, err := prefetch.New(spec, nil)
	if err != nil {
		return System{}, err
	}
	if _, none := probe.(prefetch.None); none {
		return System{Name: probe.Name()}, nil
	}
	canon, err := prefetch.Canonical(spec)
	if err != nil {
		return System{}, err
	}
	return System{
		Name: probe.Name(),
		NewFault: func(r prefetch.RegionResolver) prefetch.Prefetcher {
			p, err := prefetch.New(canon, r)
			if err != nil {
				// canon already parsed above; a failure here is a
				// registry bug, not an input error.
				panic(err)
			}
			return p
		},
	}, nil
}

func mustDemand(spec string) System {
	s, err := DemandSystem(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// Fastswap is the kernel-based baseline: readahead into the swapcache.
func Fastswap() System { return mustDemand("fastswap") }

// Leap is majority-stride prefetching into the swapcache.
func Leap() System { return mustDemand("leap") }

// DepthN is fixed-depth prefetching with early PTE injection.
func DepthN(n int) System {
	if n <= 0 {
		n = 32 // match prefetch.NewDepthN's default for the spec label
	}
	return mustDemand("depth-" + strconv.Itoa(n))
}

// VMA is Linux 5.4's VMA-clipped readahead.
func VMA() System { return mustDemand("vma") }

// NoPrefetch is the demand-only baseline normalizing Fig. 17.
func NoPrefetch() System { return mustDemand("noprefetch") }

// SPP is signature-path prefetching with confidence-throttled lookahead.
func SPP() System { return mustDemand("spp") }

// Chimera is the hybrid prefetcher arbitrating stride/spatial/history
// components by their tracked accuracy.
func Chimera() System { return mustDemand("chimera") }

// HHP is offset pattern-table prefetching keyed by region triggers.
func HHP() System { return mustDemand("hhp") }

// HoPP is the full co-designed system: Fastswap's demand path plus the
// MC hot-page data plane driving adaptive three-tier prefetching with
// early PTE injection (§V integrates HoPP with Fastswap).
func HoPP() System {
	return HoPPWith(core.DefaultParams())
}

// HoPPWith is HoPP with explicit core parameters (tier ablations, fixed
// offsets, intensity sweeps).
func HoPPWith(params core.Params) System {
	s := mustDemand("fastswap")
	s.Name = "HoPP"
	s.HoPP = true
	s.HoPPParams = params
	s.ChargePrefetched = true
	return s
}
