// Package sim is the discrete-event machine that runs workloads on a
// simulated disaggregated-memory server: CPU caches filter accesses, the
// VMM services faults with the §II-A cost model, the RDMA fabric moves
// pages, the modified memory controller extracts hot pages, and the
// system under test (Fastswap, Leap, Depth-N, VMA, or HoPP) prefetches.
//
// One Machine = one run of one system configuration over one or more
// applications; Run returns the Metrics behind every figure in §VI.
package sim

import (
	"hopp/internal/core"
	"hopp/internal/swap"
)

// System describes a remote-memory system under test.
type System struct {
	// Name labels experiment output.
	Name string
	// NewFault constructs the demand-path prefetcher (per run, because
	// prefetchers carry history). nil means no demand-path prefetching.
	// The VMA prefetcher receives the machine as its RegionResolver.
	NewFault func(regions swap.RegionResolver) swap.Prefetcher
	// HoPP attaches the memory controller hardware and the core software
	// data plane.
	HoPP bool
	// HoPPParams configures the core stack when HoPP is true.
	HoPPParams core.Params
	// ChargePrefetched charges swapcache-landed prefetches to the cgroup
	// (HoPP's accounting fix, §I).
	ChargePrefetched bool
}

// Fastswap is the kernel-based baseline: readahead into the swapcache.
func Fastswap() System {
	return System{
		Name:     "Fastswap",
		NewFault: func(swap.RegionResolver) swap.Prefetcher { return swap.NewReadahead(8) },
	}
}

// Leap is majority-stride prefetching into the swapcache.
func Leap() System {
	return System{
		Name:     "Leap",
		NewFault: func(swap.RegionResolver) swap.Prefetcher { return swap.NewLeap(4, 8) },
	}
}

// DepthN is fixed-depth prefetching with early PTE injection.
func DepthN(n int) System {
	return System{
		Name:     swap.NewDepthN(n).Name(),
		NewFault: func(swap.RegionResolver) swap.Prefetcher { return swap.NewDepthN(n) },
	}
}

// VMA is Linux 5.4's VMA-clipped readahead.
func VMA() System {
	return System{
		Name:     "VMA",
		NewFault: func(r swap.RegionResolver) swap.Prefetcher { return swap.NewVMA(8, r) },
	}
}

// NoPrefetch is the demand-only baseline normalizing Fig. 17.
func NoPrefetch() System {
	return System{Name: "NoPrefetch"}
}

// HoPP is the full co-designed system: Fastswap's demand path plus the
// MC hot-page data plane driving adaptive three-tier prefetching with
// early PTE injection (§V integrates HoPP with Fastswap).
func HoPP() System {
	return HoPPWith(core.DefaultParams())
}

// HoPPWith is HoPP with explicit core parameters (tier ablations, fixed
// offsets, intensity sweeps).
func HoPPWith(params core.Params) System {
	return System{
		Name:             "HoPP",
		NewFault:         func(swap.RegionResolver) swap.Prefetcher { return swap.NewReadahead(8) },
		HoPP:             true,
		HoPPParams:       params,
		ChargePrefetched: true,
	}
}
