package sim

import (
	"testing"

	"hopp/internal/core"
	"hopp/internal/workload"
)

func hoppBulk(streamLen, pages int) System {
	p := core.DefaultParams()
	p.Bulk = core.BulkParams{Enable: true, StreamLength: streamLen, Pages: pages}
	s := HoPPWith(p)
	s.Name = "HoPP-bulk"
	return s
}

// TestBulkAmortizesRequestLatency validates §IV end to end: on a long
// sequential stream, bulk mode moves the same pages with far fewer
// fabric requests (each bulk request = one base latency for up to 512
// pages) and still covers the stream.
func TestBulkAmortizesRequestLatency(t *testing.T) {
	gen := workload.NewSequential(4096, 3)
	base := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1}

	plain, err := RunWith(base, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := RunWith(base, hoppBulk(32, 256), gen)
	if err != nil {
		t.Fatal(err)
	}

	if bulk.BulkRequests == 0 {
		t.Fatal("no bulk requests issued")
	}
	if plain.BulkRequests != 0 {
		t.Fatal("plain HoPP issued bulk requests")
	}
	if bulk.Coverage() < 0.9 {
		t.Fatalf("bulk coverage = %.3f, want ≥0.9", bulk.Coverage())
	}
	// The fabric sees far fewer distinct requests: compare transfers.
	// Reads counted per page are similar; the win is request count.
	if bulk.CompletionTime > plain.CompletionTime*11/10 {
		t.Fatalf("bulk mode much slower: %v vs %v", bulk.CompletionTime, plain.CompletionTime)
	}
	t.Logf("plain: ct=%v injHits=%d; bulk: ct=%v injHits=%d bulkReqs=%d",
		plain.CompletionTime, plain.InjectedHits, bulk.CompletionTime, bulk.InjectedHits, bulk.BulkRequests)
}

// TestBulkHarmlessOnIrregularWorkload: bulk mode must not fire (and not
// hurt) when streams are not long unit-stride runs.
func TestBulkHarmlessOnIrregularWorkload(t *testing.T) {
	gen := workload.NewGraphX("PR", 256)
	base := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1}
	bulk, err := RunWith(base, hoppBulk(64, 512), gen)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunWith(base, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	// Short JVM runs never reach a 64-long unit streak.
	if bulk.BulkRequests > 2 {
		t.Fatalf("bulk fired %d times on an irregular workload", bulk.BulkRequests)
	}
	if float64(bulk.CompletionTime) > float64(plain.CompletionTime)*1.1 {
		t.Fatalf("bulk mode hurt an irregular workload: %v vs %v", bulk.CompletionTime, plain.CompletionTime)
	}
}
