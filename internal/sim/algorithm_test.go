package sim

import (
	"testing"

	"hopp/internal/core"
	"hopp/internal/workload"
)

func hoppMarkov() System {
	p := core.DefaultParams()
	p.Algorithm = core.AlgoMarkov
	s := HoPPWith(p)
	s.Name = "HoPP-markov"
	return s
}

// TestMarkovAlternativeEndToEnd runs the pluggable delta-correlation
// algorithm through the full machine: on regular streams it should be a
// competent prefetcher (the point of §III-D's "larger design space" —
// the framework is algorithm-agnostic), while the paper's three-tier
// cascade remains the better generalist.
func TestMarkovAlternativeEndToEnd(t *testing.T) {
	base := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1}

	seqGen := workload.NewSequential(1024, 3)
	markov, err := RunWith(base, hoppMarkov(), seqGen)
	if err != nil {
		t.Fatal(err)
	}
	if markov.InjectedHits == 0 {
		t.Fatal("markov algorithm injected nothing")
	}
	if markov.PrefetcherAccuracy() < 0.9 {
		t.Fatalf("markov accuracy %.3f < 0.9 on a clean stream", markov.PrefetcherAccuracy())
	}

	// On the ripple-heavy multigrid workload both algorithms must be
	// competent. Empirically the delta-correlation table *beats* the
	// cascade here (it memorizes the exact wiggle sequences where RSP
	// only recognizes the envelope) — evidence for the paper's own claim
	// that the full trace enables algorithms beyond the three-tier
	// proposal ("advanced solutions like machine learning-based ones can
	// also be enabled by full trace", §III-D1). The cascade's edge is
	// being stateless-simple and robust, not maximal.
	mg := workload.NewNPBMG(1024, 2)
	three, err := RunWith(base, HoPP(), mg)
	if err != nil {
		t.Fatal(err)
	}
	mkv, err := RunWith(base, hoppMarkov(), mg)
	if err != nil {
		t.Fatal(err)
	}
	if three.Coverage() < 0.7 {
		t.Fatalf("three-tier coverage %.3f < 0.7 on MG", three.Coverage())
	}
	if mkv.Coverage() < 0.7 {
		t.Fatalf("markov coverage %.3f < 0.7 on MG", mkv.Coverage())
	}
	t.Logf("NPB-MG: three-tier cov=%.3f acc=%.3f; markov cov=%.3f acc=%.3f",
		three.Coverage(), three.PrefetcherAccuracy(), mkv.Coverage(), mkv.PrefetcherAccuracy())
}
