package sim

import (
	"testing"

	"hopp/internal/core"
	"hopp/internal/workload"
)

// TestSharedFlagPropagates verifies §III-C's shared-page flag travels
// the whole pipeline: workload region → set_pte_at hook → RPT entry →
// hot page record → HoPP software, where the DropShared policy can act
// on it.
func TestSharedFlagPropagates(t *testing.T) {
	gen := workload.NewSharedScan(768, 512, 3)

	run := func(drop bool) (*Machine, Metrics) {
		p := core.DefaultParams()
		p.DropShared = drop
		sys := HoPPWith(p)
		m := MustNew(Config{System: sys, LocalMemoryFrac: 0.5, Seed: 1}, gen)
		met, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m, met
	}

	mKeep, _ := run(false)
	if mKeep.pref.SharedDropped() != 0 {
		t.Fatal("pages dropped without DropShared")
	}

	mDrop, met := run(true)
	if mDrop.pref.SharedDropped() == 0 {
		t.Fatal("DropShared never filtered a shared hot page")
	}
	// The private stream must still train and prefetch.
	if met.InjectedHits == 0 {
		t.Fatal("DropShared killed the private stream's prefetching")
	}
	ts, _ := mDrop.HoPPTrainerStats()
	// With shared pages filtered, the trainer sees fewer hot pages than
	// the unfiltered run.
	tsKeep, _ := mKeep.HoPPTrainerStats()
	if ts.HotPages >= tsKeep.HotPages {
		t.Fatalf("filtered trainer saw %d hot pages, unfiltered %d", ts.HotPages, tsKeep.HotPages)
	}
}
