package sim

import (
	"testing"

	"hopp/internal/rdma"
	"hopp/internal/vclock"
	"hopp/internal/vmm"
	"hopp/internal/workload"
)

// TestSynchronousReclaimSlowsFaults recreates the pre-Linux-v5.8 regime
// of §II-A: charging step (5) on the faulting path lengthens completion.
func TestSynchronousReclaimSlowsFaults(t *testing.T) {
	gen := workload.NewSequential(1024, 3)
	modern, err := RunWorkload(NoPrefetch(), gen, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	costs := vmm.DefaultCosts()
	costs.SynchronousReclaim = true
	old, err := RunWith(Config{System: NoPrefetch(), LocalMemoryFrac: 0.5, Seed: 1, Costs: costs}, NoPrefetch(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if old.CompletionTime <= modern.CompletionTime {
		t.Fatalf("synchronous reclaim did not slow the run: %v vs %v",
			old.CompletionTime, modern.CompletionTime)
	}
	// The per-fault delta is ≈ victims × 2.5 µs; with one victim per
	// fault it must be visible but bounded.
	perFault := (old.CompletionTime - modern.CompletionTime) / vclock.Duration(old.MajorFaults)
	if perFault < vclock.Microsecond || perFault > 10*vclock.Microsecond {
		t.Fatalf("per-fault reclaim cost %v implausible", perFault)
	}
}

// TestSlowFabricHurtsEveryone injects a 10x slower, jittery link: all
// systems degrade, and HoPP still leads (its asynchrony hides latency
// but cannot beat physics).
func TestSlowFabricHurtsEveryone(t *testing.T) {
	gen := workload.NewSequential(1024, 3)
	slow := rdma.Config{BaseLatency: 34 * vclock.Microsecond, BytesPerNS: 0.7, JitterFrac: 0.5}

	fastFabric, err := RunWorkload(HoPP(), gen, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	slowHopp, err := RunWith(Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1, Fabric: slow}, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	slowFast, err := RunWith(Config{System: Fastswap(), LocalMemoryFrac: 0.5, Seed: 1, Fabric: slow}, Fastswap(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if slowHopp.CompletionTime <= fastFabric.CompletionTime {
		t.Fatal("10x slower fabric did not slow HoPP")
	}
	if slowHopp.CompletionTime >= slowFast.CompletionTime {
		t.Fatalf("HoPP (%v) lost to Fastswap (%v) on the slow fabric",
			slowHopp.CompletionTime, slowFast.CompletionTime)
	}
}

// TestOffsetAdaptsToSlowFabric: on a slow link, the adaptive offset must
// end up larger than on a fast one — the §III-E timeliness loop reacting
// to latency volatility.
func TestOffsetAdaptsToSlowFabric(t *testing.T) {
	gen := workload.NewSequential(2048, 3)
	run := func(fabric rdma.Config) uint64 {
		m := MustNew(Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1, Fabric: fabric}, gen)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		ts, _ := m.HoPPTrainerStats()
		return ts.OffsetRaises
	}
	fastRaises := run(rdma.Config{})
	slowRaises := run(rdma.Config{BaseLatency: 34 * vclock.Microsecond, BytesPerNS: 0.7})
	if slowRaises <= fastRaises {
		t.Fatalf("slow fabric raised the offset %d times, fast %d — controller not reacting",
			slowRaises, fastRaises)
	}
}

// TestCustomCostModelPlumbs verifies nonstandard cost constants reach
// the fault path (a 10x prefetch-hit cost shows up in completion time).
func TestCustomCostModelPlumbs(t *testing.T) {
	gen := workload.NewSequential(1024, 2)
	cheap, err := RunWorkload(Fastswap(), gen, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	costs := vmm.DefaultCosts()
	costs.SwapCacheOp *= 20
	dear, err := RunWith(Config{System: Fastswap(), LocalMemoryFrac: 0.5, Seed: 1, Costs: costs}, Fastswap(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if dear.CompletionTime <= cheap.CompletionTime {
		t.Fatal("inflated swapcache cost had no effect")
	}
}
