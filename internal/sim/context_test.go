package sim

import (
	"context"
	"errors"
	"testing"

	"hopp/internal/workload"
)

// A machine given an already-done context must abandon the run at its
// first cancellation poll and surface ctx.Err().
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := MustNew(Config{LocalMemoryFrac: 0.5, Seed: 1, System: Fastswap()},
		workload.NewSequential(512, 2))
	met, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if met.Accesses != 0 {
		t.Fatalf("cancelled-before-start run simulated %d accesses, want 0", met.Accesses)
	}
}

func TestRunContextDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, err := RunWithContext(ctx, Config{LocalMemoryFrac: 0.5, Seed: 1},
		Fastswap(), workload.NewSequential(512, 2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunWithContext error = %v, want context.DeadlineExceeded", err)
	}
}

// The context-free wrappers must behave exactly like a background
// context: same metrics, no error.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	gen := workload.NewSequential(512, 2)
	viaRun, err := RunWith(Config{LocalMemoryFrac: 0.5, Seed: 1}, Fastswap(), gen)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunWithContext(context.Background(),
		Config{LocalMemoryFrac: 0.5, Seed: 1}, Fastswap(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if viaRun.CompletionTime != viaCtx.CompletionTime || viaRun.Accesses != viaCtx.Accesses {
		t.Fatalf("context-free run diverged: %v vs %v", viaRun, viaCtx)
	}
}

func TestCompareWithContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompareWithContext(ctx, Config{LocalMemoryFrac: 0.5, Seed: 1},
		workload.NewSequential(512, 2), Fastswap())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CompareWithContext error = %v, want context.Canceled", err)
	}
}
