package sim

import (
	"testing"

	"hopp/internal/workload"
)

// TestMultiChannelEquivalentQuality verifies the §III-B claim end to
// end: with interleaved channels and the reduced threshold, HoPP's
// prefetch quality survives the repeated extractions (the trainer
// deduplicates them), and with partitioned channels the merged hot page
// stream trains just as well as a single controller's.
func TestMultiChannelEquivalentQuality(t *testing.T) {
	gen := workload.NewSequential(1024, 3)
	base := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1}

	single, err := RunWith(base, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name        string
		channels    int
		interleaved bool
	}{
		{"2ch-interleaved", 2, true},
		{"4ch-interleaved", 4, true},
		{"2ch-partitioned", 2, false},
	} {
		cfg := base
		cfg.MCChannels = tc.channels
		cfg.MCInterleaved = tc.interleaved
		met, err := RunWith(cfg, HoPP(), gen)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if met.Coverage() < single.Coverage()-0.05 {
			t.Errorf("%s: coverage %.3f fell far below single-channel %.3f",
				tc.name, met.Coverage(), single.Coverage())
		}
		if met.PrefetcherAccuracy() < 0.9 {
			t.Errorf("%s: accuracy %.3f < 0.9", tc.name, met.PrefetcherAccuracy())
		}
	}
}

// TestInterleavedChannelsDeduplicated checks that the trainer actually
// absorbs the repeated extractions instead of double-prefetching.
func TestInterleavedChannelsDeduplicated(t *testing.T) {
	gen := workload.NewSequential(512, 3)
	cfg := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1,
		MCChannels: 4, MCInterleaved: true}
	m := MustNew(cfg, gen)
	met, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := m.HoPPTrainerStats()
	if ts.Duplicates == 0 {
		t.Fatal("interleaved channels produced no duplicate extractions to dedup")
	}
	xs, _ := m.HoPPExecStats()
	if xs.SkipInflight+xs.SkipResident == 0 && met.PrefetchIssued > 2*uint64(gen.FootprintPages()) {
		t.Fatal("duplicates turned into duplicate prefetches")
	}
}
