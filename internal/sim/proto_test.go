package sim

import (
	"testing"

	"hopp/internal/proto"
	"hopp/internal/workload"
)

// TestPrototypeMatchesDesign validates the §V emulation argument end to
// end: running HoPP through the HMTT-based software pipeline yields
// prefetch quality equivalent to the §III hardware design.
func TestPrototypeMatchesDesign(t *testing.T) {
	gen := workload.NewOMPKMeans(1024, 3)
	base := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1}

	design, err := RunWith(base, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	protoCfg := base
	protoCfg.UsePrototype = true
	protoMet, err := RunWith(protoCfg, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}

	if d := protoMet.Coverage() - design.Coverage(); d < -0.05 || d > 0.05 {
		t.Fatalf("prototype coverage %.3f diverges from design %.3f",
			protoMet.Coverage(), design.Coverage())
	}
	if protoMet.PrefetcherAccuracy() < 0.9 {
		t.Fatalf("prototype accuracy %.3f < 0.9", protoMet.PrefetcherAccuracy())
	}
	// The prototype pays full-trace bandwidth, far above the design's
	// hot-page-only cost (§V's motivation for writing to DRAM 1).
	if protoMet.HPDBandwidth < 10*design.HPDBandwidth {
		t.Fatalf("prototype trace bandwidth %.4f not ≫ design %.4f",
			protoMet.HPDBandwidth, design.HPDBandwidth)
	}
}

// TestPrototypeSurvivesCaptureOverflow injects a tiny HMTT ring: records
// drop, coverage degrades, but the system keeps functioning — the
// graceful-degradation property of trace-driven prefetching (a missed
// hot page is a missed opportunity, never a correctness problem).
func TestPrototypeSurvivesCaptureOverflow(t *testing.T) {
	gen := workload.NewSequential(1024, 3)
	cfg := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1,
		UsePrototype: true, Proto: proto.Config{CaptureRecords: 8}}
	met, err := RunWith(cfg, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accesses == 0 || met.CompletionTime <= 0 {
		t.Fatal("run did not complete")
	}
	full := Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1, UsePrototype: true}
	fullMet, err := RunWith(full, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if met.InjectedHits > fullMet.InjectedHits {
		t.Fatalf("overflowing ring produced MORE injected hits (%d > %d)?",
			met.InjectedHits, fullMet.InjectedHits)
	}
}
