package sim

import (
	"context"

	"hopp/internal/workload"
)

// RunWith runs one workload under one system using the base config
// (its System field is replaced).
func RunWith(base Config, sys System, gen workload.Generator) (Metrics, error) {
	return RunWithContext(context.Background(), base, sys, gen)
}

// RunWithContext is RunWith honoring cancellation and deadlines; see
// Machine.RunContext for the abort semantics.
func RunWithContext(ctx context.Context, base Config, sys System, gen workload.Generator) (Metrics, error) {
	base.System = sys
	m, err := New(base, gen)
	if err != nil {
		return Metrics{}, err
	}
	return m.RunContext(ctx)
}

// RunWorkload runs one workload under one system with each app's cgroup
// limited to frac of its footprint (0 = local). The generator is Reset
// by the machine, so the same instance can be reused across sequential
// runs.
func RunWorkload(sys System, gen workload.Generator, frac float64, seed int64) (Metrics, error) {
	return RunWith(Config{LocalMemoryFrac: frac, Seed: seed}, sys, gen)
}

// RunWorkloadContext is RunWorkload honoring cancellation.
func RunWorkloadContext(ctx context.Context, sys System, gen workload.Generator, frac float64, seed int64) (Metrics, error) {
	return RunWithContext(ctx, Config{LocalMemoryFrac: frac, Seed: seed}, sys, gen)
}

// RunLocal runs the workload with unlimited local memory — the
// CT_local baseline of §VI-A.
func RunLocal(gen workload.Generator, seed int64) (Metrics, error) {
	return RunWorkload(NoPrefetch(), gen, 0, seed)
}

// Comparison holds one workload's results across systems plus the local
// baseline, ready for normalized-performance reporting.
type Comparison struct {
	Workload string
	Local    Metrics
	Results  []Metrics
}

// Compare runs the workload locally and under every system at the given
// memory fraction.
func Compare(gen workload.Generator, frac float64, seed int64, systems ...System) (Comparison, error) {
	return CompareWith(Config{LocalMemoryFrac: frac, Seed: seed}, gen, systems...)
}

// CompareWith is Compare with full control over the machine config. The
// local baseline reuses the config with memory limits removed.
func CompareWith(base Config, gen workload.Generator, systems ...System) (Comparison, error) {
	return CompareWithContext(context.Background(), base, gen, systems...)
}

// CompareWithContext is CompareWith honoring cancellation: the first
// aborted run ends the comparison.
func CompareWithContext(ctx context.Context, base Config, gen workload.Generator, systems ...System) (Comparison, error) {
	cmp := Comparison{Workload: gen.Name()}
	localCfg := base
	localCfg.LocalMemoryFrac = 0
	localCfg.LocalMemoryPages = 0
	local, err := RunWithContext(ctx, localCfg, NoPrefetch(), gen)
	if err != nil {
		return cmp, err
	}
	cmp.Local = local
	for _, sys := range systems {
		met, err := RunWithContext(ctx, base, sys, gen)
		if err != nil {
			return cmp, err
		}
		cmp.Results = append(cmp.Results, met)
	}
	return cmp, nil
}

// Normalized returns CT_local/CT_system for the i-th system.
func (c Comparison) Normalized(i int) float64 {
	return c.Results[i].NormalizedPerformance(c.Local)
}

// Find returns the metrics for a system by name.
func (c Comparison) Find(name string) (Metrics, bool) {
	for _, m := range c.Results {
		if m.System == name {
			return m, true
		}
	}
	return Metrics{}, false
}
