package sim

import (
	"testing"

	"hopp/internal/core"
	"hopp/internal/workload"
)

// TestSmartEvictionReducesChurn validates §IV's trace-informed eviction
// end to end: on a workload with a frequently re-read hot set plus a
// streaming scan, under the kernel's approximate (lazy) LRU, feeding MC
// hotness into reclaim keeps the hot set resident — fewer evictions,
// fewer refetches, faster completion.
func TestSmartEvictionReducesChurn(t *testing.T) {
	// OMP-KMeans: streaming points plus a frequently re-read centroid
	// block. Lazy LRU cannot tell the centroids are hot; the MC trace can.
	gen := workload.NewOMPKMeans(1024, 3)

	run := func(smart bool) (Metrics, uint64, uint64) {
		p := core.DefaultParams()
		p.SmartEviction = smart
		sys := HoPPWith(p)
		if smart {
			sys.Name = "HoPP-smartevict"
		}
		cfg := Config{System: sys, LocalMemoryFrac: 0.5, Seed: 1, LazyLRU: true}
		m := MustNew(cfg, gen)
		met, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		vs := m.vm.Stats()
		return met, vs.Evictions, vs.AdvisorRescues
	}

	plain, plainEvict, plainRescues := run(false)
	smart, smartEvict, smartRescues := run(true)

	if plainRescues != 0 {
		t.Fatal("advisor active without SmartEviction")
	}
	if smartRescues == 0 {
		t.Fatal("advisor never rescued a page")
	}
	if smartEvict >= plainEvict {
		t.Fatalf("smart eviction did not reduce churn: %d vs %d evictions", smartEvict, plainEvict)
	}
	if smart.CompletionTime > plain.CompletionTime {
		t.Fatalf("smart eviction slowed the run: %v vs %v", smart.CompletionTime, plain.CompletionTime)
	}
	if smart.RemoteWrites >= plain.RemoteWrites {
		t.Fatalf("smart eviction did not cut writeback traffic: %d vs %d",
			smart.RemoteWrites, plain.RemoteWrites)
	}
	t.Logf("plain: evictions=%d ct=%v; smart: evictions=%d ct=%v (rescues=%d)",
		plainEvict, plain.CompletionTime, smartEvict, smart.CompletionTime, smartRescues)
}

// TestSmartEvictionNeutralUnderExactLRU documents the flip side: with
// this simulator's exact LRU (which already has perfect recency), the
// advisor cannot help — §IV's win exists precisely because real kernels
// approximate.
func TestSmartEvictionNeutralUnderExactLRU(t *testing.T) {
	gen := workload.NewOMPKMeans(1024, 3)
	p := core.DefaultParams()
	p.SmartEviction = true
	cfg := Config{System: HoPPWith(p), LocalMemoryFrac: 0.5, Seed: 1} // exact LRU
	met, err := RunWith(cfg, HoPPWith(p), gen)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunWith(Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 1}, HoPP(), gen)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(met.CompletionTime) / float64(base.CompletionTime)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("advisor changed exact-LRU performance by %.0f%%", (ratio-1)*100)
	}
}
