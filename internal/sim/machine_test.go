package sim

import (
	"testing"

	"hopp/internal/workload"
)

func run(t *testing.T, sys System, gen workload.Generator, frac float64) Metrics {
	t.Helper()
	met, err := RunWorkload(sys, gen, frac, 1)
	if err != nil {
		t.Fatalf("%s on %s: %v", sys.Name, gen.Name(), err)
	}
	return met
}

func TestLocalRunHasNoRemoteTraffic(t *testing.T) {
	met := run(t, NoPrefetch(), workload.NewSequential(256, 2), 0)
	if met.MajorFaults != 0 || met.RemoteReads != 0 || met.RemoteWrites != 0 {
		t.Fatalf("local run touched remote: %+v", met)
	}
	if met.MinorFault != 256 {
		t.Fatalf("minor faults = %d, want 256 (one per page)", met.MinorFault)
	}
	if met.CompletionTime <= 0 {
		t.Fatal("no completion time")
	}
	if met.CacheHits+met.DRAMHits != met.Accesses {
		t.Fatalf("access accounting broken: %d+%d != %d", met.CacheHits, met.DRAMHits, met.Accesses)
	}
}

func TestNoPrefetchFaultsEveryColdPage(t *testing.T) {
	// Two passes at 50% memory: the second pass faults on evicted pages.
	met := run(t, NoPrefetch(), workload.NewSequential(512, 2), 0.5)
	if met.MajorFaults == 0 {
		t.Fatal("no major faults under memory pressure")
	}
	if met.PrefetchIssued != 0 || met.SwapCacheHits != 0 {
		t.Fatalf("NoPrefetch prefetched: %+v", met)
	}
	// Sequential with LRU at 50%: every page of pass 2 is a miss.
	if met.MajorFaults < 400 {
		t.Fatalf("major faults = %d, want ≈512", met.MajorFaults)
	}
}

func TestFastswapCoverageOnSequential(t *testing.T) {
	met := run(t, Fastswap(), workload.NewSequential(512, 3), 0.5)
	if met.SwapCacheHits == 0 {
		t.Fatal("readahead produced no swapcache hits")
	}
	// Window-8 readahead on a pure sequential stream: ≈8 of every 9
	// remote pages are prefetch hits.
	if cov := met.Coverage(); cov < 0.80 || cov > 0.95 {
		t.Fatalf("coverage = %.3f, want ≈0.89", cov)
	}
	if acc := met.Accuracy(); acc < 0.95 {
		t.Fatalf("accuracy = %.3f, want ≈1 on clean sequential", acc)
	}
}

func TestHoPPBeatsFastswapOnSequential(t *testing.T) {
	// Footprint (16 MB) far above the 2 MB LLC, as in the paper's
	// GB-scale workloads: the local baseline is DRAM-bound too, so the
	// normalized gap isolates the kernel/remote path.
	gen := workload.NewSequential(4096, 3)
	local := run(t, NoPrefetch(), gen, 0)
	fast := run(t, Fastswap(), gen, 0.5)
	hopp := run(t, HoPP(), gen, 0.5)
	none := run(t, NoPrefetch(), gen, 0.5)

	if hopp.InjectedHits == 0 {
		t.Fatal("HoPP injected no pages")
	}
	if hopp.CompletionTime >= fast.CompletionTime {
		t.Fatalf("HoPP (%v) not faster than Fastswap (%v)", hopp.CompletionTime, fast.CompletionTime)
	}
	if fast.CompletionTime >= none.CompletionTime {
		t.Fatalf("Fastswap (%v) not faster than NoPrefetch (%v)", fast.CompletionTime, none.CompletionTime)
	}
	if n := hopp.NormalizedPerformance(local); n < 0.7 || n > 1.0 {
		t.Fatalf("HoPP normalized performance = %.3f, want high but ≤1", n)
	}
	if hopp.Accuracy() < 0.9 {
		t.Fatalf("HoPP accuracy = %.3f, want >0.9", hopp.Accuracy())
	}
	if hopp.Coverage() < 0.9 {
		t.Fatalf("HoPP coverage = %.3f, want >0.9", hopp.Coverage())
	}
	if hopp.HotPagesEmitted == 0 {
		t.Fatal("MC emitted no hot pages")
	}
	if hopp.DRAMHitCoverage() < hopp.SwapCacheHitCoverage() {
		t.Fatalf("HoPP coverage should be injection-dominated: dram=%.3f swap=%.3f",
			hopp.DRAMHitCoverage(), hopp.SwapCacheHitCoverage())
	}
}

func TestDeterminism(t *testing.T) {
	gen := workload.NewNPBMG(384, 1)
	a := run(t, HoPP(), gen, 0.5)
	b := run(t, HoPP(), gen, 0.5)
	if a.CompletionTime != b.CompletionTime || a.MajorFaults != b.MajorFaults ||
		a.PrefetchIssued != b.PrefetchIssued || a.InjectedHits != b.InjectedHits {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestRemoteNodeConsistency(t *testing.T) {
	// The kernel must never read a page it never wrote out.
	for _, sys := range []System{NoPrefetch(), Fastswap(), Leap(), DepthN(16), VMA(), HoPP()} {
		gen := workload.NewQuicksort(256)
		m := MustNew(Config{System: sys, LocalMemoryFrac: 0.5, Seed: 3}, gen)
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
	}
}

func TestAllSystemsAllWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke matrix is slow")
	}
	gens := []workload.Generator{
		workload.NewOMPKMeans(256, 2),
		workload.NewHPL(8, 96),
		workload.NewNPBIS(256),
		workload.NewGraphX("PR", 128),
	}
	systems := []System{Fastswap(), Leap(), DepthN(32), VMA(), HoPP()}
	for _, g := range gens {
		for _, sys := range systems {
			met := run(t, sys, g, 0.5)
			if met.Accesses == 0 {
				t.Fatalf("%s on %s: no accesses", sys.Name, g.Name())
			}
			if met.CacheHits+met.DRAMHits != met.Accesses {
				t.Fatalf("%s on %s: access accounting broken", sys.Name, g.Name())
			}
			if a := met.Accuracy(); a < 0 || a > 1 {
				t.Fatalf("%s on %s: accuracy %f out of range", sys.Name, g.Name(), a)
			}
			if c := met.Coverage(); c < 0 || c > 1 {
				t.Fatalf("%s on %s: coverage %f out of range", sys.Name, g.Name(), c)
			}
		}
	}
}

func TestDepthNInjects(t *testing.T) {
	met := run(t, DepthN(16), workload.NewSequential(512, 2), 0.5)
	if met.InjectedHits == 0 {
		t.Fatal("Depth-N produced no injected hits")
	}
	if met.SwapCacheHits != 0 {
		t.Fatal("Depth-N landed pages in the swapcache")
	}
}

func TestVMADoesNotPrefetchAcrossRegions(t *testing.T) {
	met := run(t, VMA(), workload.NewAddUp(2, 256), 0.5)
	if met.PrefetchIssued == 0 {
		t.Fatal("VMA prefetched nothing")
	}
	if met.Accuracy() < 0.5 {
		t.Fatalf("VMA accuracy = %.3f; region clipping should keep it useful", met.Accuracy())
	}
}

func TestMultiAppRun(t *testing.T) {
	m := MustNew(Config{System: HoPP(), LocalMemoryFrac: 0.5, Seed: 5},
		workload.NewSequential(256, 2),
		workload.NewStrided(512, 2, 2),
	)
	met, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(met.PerApp) != 2 {
		t.Fatalf("PerApp = %v", met.PerApp)
	}
	for name, ct := range met.PerApp {
		if ct <= 0 {
			t.Fatalf("app %s has no completion time", name)
		}
		if ct > met.CompletionTime {
			t.Fatalf("app %s finished after the max", name)
		}
	}
}

func TestComparisonHelper(t *testing.T) {
	cmp, err := Compare(workload.NewSequential(256, 2), 0.5, 1, Fastswap(), HoPP())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Workload != "Sequential" || len(cmp.Results) != 2 {
		t.Fatalf("cmp = %+v", cmp)
	}
	if _, ok := cmp.Find("HoPP"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := cmp.Find("nope"); ok {
		t.Fatal("Find matched a missing system")
	}
	for i := range cmp.Results {
		if n := cmp.Normalized(i); n <= 0 || n > 1.05 {
			t.Fatalf("normalized[%d] = %f", i, n)
		}
	}
}

func TestNoWorkloadsRejected(t *testing.T) {
	if _, err := New(Config{System: Fastswap()}); err == nil {
		t.Fatal("machine with no workloads accepted")
	}
}

func TestMaxAccessesGuard(t *testing.T) {
	m := MustNew(Config{System: NoPrefetch(), MaxAccesses: 100}, workload.NewSequential(64, 1))
	if _, err := m.Run(); err == nil {
		t.Fatal("MaxAccesses not enforced")
	}
}
