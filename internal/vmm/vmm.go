// Package vmm models the virtual memory subsystem a kernel-based remote
// memory system lives in: per-process page tables, the swapcache,
// per-cgroup page accounting with LRU reclaim, and the §II-A cost model
// for the fault paths.
//
// The model is structural — it tracks page state transitions and
// residency; the simulation engine charges latency using Costs and moves
// bytes over the rdma fabric. Kernel hook points (set_pte_at /
// pte_clear, §V) are exposed as callbacks so the memory controller's RPT
// stays in sync exactly the way HoPP's kernel patch keeps it in sync.
package vmm

import (
	"fmt"

	"hopp/internal/memsim"
)

// PageState describes where a virtual page currently lives.
type PageState int

// Page states.
const (
	// Untouched: never accessed; first access is a minor (zero-fill) fault.
	Untouched PageState = iota
	// Mapped: present bit set; access is a plain memory access.
	Mapped
	// SwapCached: resident in local DRAM but not mapped; access is a
	// prefetch-hit (§II-C).
	SwapCached
	// SwappedOut: only the remote copy exists; access is a major fault.
	SwappedOut
)

func (s PageState) String() string {
	switch s {
	case Untouched:
		return "untouched"
	case Mapped:
		return "mapped"
	case SwapCached:
		return "swapcached"
	case SwappedOut:
		return "swappedout"
	default:
		return fmt.Sprintf("PageState(%d)", int(s))
	}
}

type page struct {
	key      memsim.PageKey
	ppn      memsim.PPN
	state    PageState // Mapped or SwapCached
	injected bool      // mapped by early PTE injection, not yet touched
	// prefetched is sticky: set when the page arrived via any prefetch
	// (swapcache landing or PTE injection) and kept through promotion,
	// so eviction can report prefetch provenance to the feedback seams.
	prefetched bool
	charged    bool   // counted against the cgroup
	seq        uint64 // swapcache insertion sequence, for freshness
	prev       *page
	next       *page
}

// lruList is an intrusive doubly-linked list; head is MRU, tail is LRU.
type lruList struct {
	head *page
	tail *page
	n    int
}

func (l *lruList) pushFront(p *page) {
	p.prev, p.next = nil, l.head
	if l.head != nil {
		l.head.prev = p
	}
	l.head = p
	if l.tail == nil {
		l.tail = p
	}
	l.n++
}

func (l *lruList) remove(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		l.tail = p.prev
	}
	p.prev, p.next = nil, nil
	l.n--
}

func (l *lruList) moveToFront(p *page) {
	if l.head == p {
		return
	}
	l.remove(p)
	l.pushFront(p)
}

// Cgroup is one application's memory control group.
type Cgroup struct {
	pid      memsim.PID
	limit    int // max charged pages; 0 = unlimited
	charged  int
	active   lruList   // mapped pages
	inactive lruList   // swapcache pages
	pt       pageTable // VPN → resident page, plus the ever-swapped bit
}

// Charged returns the cgroup's current page charge.
func (c *Cgroup) Charged() int { return c.charged }

// Limit returns the cgroup's page limit (0 = unlimited).
func (c *Cgroup) Limit() int { return c.limit }

// OverLimit returns how many pages over its limit the cgroup is.
func (c *Cgroup) OverLimit() int {
	if c.limit == 0 || c.charged <= c.limit {
		return 0
	}
	return c.charged - c.limit
}

// Config configures the VMM.
type Config struct {
	// PhysPages bounds total local DRAM pages; 0 = unbounded (the
	// usual setup: per-cgroup limits provide the pressure).
	PhysPages int
	// ChargePrefetched charges swapcache pages landed by prefetching to
	// the application's cgroup. HoPP does this; Fastswap and Leap do not
	// (§I: "we charge the prefetched pages to the cgroup of the
	// application while Fastswap and Leap did not account for").
	ChargePrefetched bool
	// SwapCacheCapPages bounds *uncharged* swapcache pages per cgroup —
	// the slack Fastswap/Leap enjoy by not accounting for prefetches.
	// Beyond the cap, global (non-cgroup) reclaim drops the oldest.
	// Default 64. Irrelevant when ChargePrefetched is true.
	SwapCacheCapPages int
	// InactiveProtect shields the most recent N swapcache inserts from
	// cgroup reclaim (the kernel's referenced-page second chance): a
	// just-landed prefetch must get its few µs of grace before the
	// cgroup squeeze can take it; older unused prefetches are prime
	// victims. Default 16.
	InactiveProtect uint64
	// LazyLRU models the kernel's approximate recency: page positions
	// are set at map/promote time and NOT refreshed by ordinary touches
	// (real kernels only learn about touches from periodic access-bit
	// scans). This is the regime where §IV's trace-informed eviction
	// advisor has information reclaim lacks. Default false (exact LRU).
	LazyLRU bool
}

// Stats counts structural events.
type Stats struct {
	Allocs            uint64
	MapsNew           uint64
	MapsRemote        uint64
	Injections        uint64
	InjectedInPlace   uint64 // PTE injections of already-local swapcache pages
	SwapCacheInserts  uint64
	Promotions        uint64
	Evictions         uint64
	EvictedInjected   uint64 // injected pages evicted before first touch
	EvictedSwapCached uint64 // prefetched pages evicted before promotion
	AdvisorRescues    uint64 // hot LRU tails rotated instead of evicted (§IV)
}

// Victim describes one evicted page; the engine writes it to the remote
// node and invalidates its CPU cache lines.
type Victim struct {
	Key memsim.PageKey
	PPN memsim.PPN
	// WasMapped is true when a PTE had to be torn down.
	WasMapped bool
	// WasInjected is true when the page was early-PTE-injected and never
	// touched — a wasted prefetch that polluted memory (§II-C).
	WasInjected bool
	// WasSwapCached is true when the page sat unpromoted in the swapcache.
	WasSwapCached bool
	// WasPrefetched is true when the page originally arrived via a
	// prefetch (swapcache landing or PTE injection), whether or not it
	// was touched afterwards. A prefetched victim still carrying
	// WasInjected or WasSwapCached was reclaimed unused.
	WasPrefetched bool
}

// VMM is the machine-wide virtual memory subsystem.
//
// Page residency lives in per-cgroup dense page tables
// (internal/vmm/pagetable.go) rather than one machine-wide map: page
// classification is the first step of every simulated access, so the
// lookup must be an array index, not a hash probe. Evicted page structs
// are pooled on a freelist for the same reason — fault-heavy phases
// recycle them instead of allocating.
type VMM struct {
	cfg Config
	// byPID indexes cgroups by PID (a 16-bit space, so a flat slice is
	// cheap and branch-predictable; unregistered slots are nil).
	byPID []*Cgroup

	nextPPN  memsim.PPN
	freePPNs []memsim.PPN
	resident int
	// insertSeq orders swapcache inserts for the freshness shield.
	insertSeq uint64

	// pageFree is a freelist of recycled page structs, linked by next.
	pageFree *page

	// lastKey/lastPage/lastGrp cache the most recent Mapped Access
	// result: a page has many cachelines, so the access stream hits one
	// page dozens of times in a row and the filter skips the page-table
	// walk. Only Mapped pages are cached (they leave that state solely
	// via evict), and releasePage invalidates the filter before a page
	// struct can be recycled, so the pointer can never go stale.
	lastKey  memsim.PageKey
	lastPage *page
	lastGrp  *Cgroup

	stats Stats

	// OnSetPTE is the set_pte_at hook (→ mc.SetMapping).
	OnSetPTE func(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN)
	// OnClearPTE is the pte_clear hook (→ mc.ClearMapping).
	OnClearPTE func(ppn memsim.PPN)
	// Advisor, when set, lets reclaim consult MC-level hotness (§IV:
	// "the software can serve other purposes with full memory traces,
	// e.g., improving kernel page eviction"): LRU-tail pages the advisor
	// reports hot get rotated back instead of evicted, bounded by
	// advisorScan per eviction.
	Advisor func(key memsim.PageKey) bool
}

// advisorScan bounds how many LRU-tail pages one eviction may rotate —
// the hardware access-bit scan budget the kernel would spend.
const advisorScan = 8

// New builds a VMM.
func New(cfg Config) *VMM {
	if cfg.SwapCacheCapPages == 0 {
		cfg.SwapCacheCapPages = 64
	}
	if cfg.InactiveProtect == 0 {
		cfg.InactiveProtect = 16
	}
	return &VMM{cfg: cfg}
}

// Register creates the cgroup for a process with the given page limit
// (0 = unlimited). Registering a PID twice is an error.
func (v *VMM) Register(pid memsim.PID, limitPages int) (*Cgroup, error) {
	if v.grp(pid) != nil {
		return nil, fmt.Errorf("vmm: pid %d already registered", pid)
	}
	if int(pid) >= len(v.byPID) {
		grown := make([]*Cgroup, int(pid)+1)
		copy(grown, v.byPID)
		v.byPID = grown
	}
	g := &Cgroup{pid: pid, limit: limitPages}
	v.byPID[pid] = g
	return g, nil
}

// Presize pre-extends pid's dense page table to cover VPNs [lo, hi), so
// a workload whose regions are known up front never pays growth
// reallocations mid-run. Best effort: spans beyond the dense cap are
// simply served by the overflow path.
func (v *VMM) Presize(pid memsim.PID, lo, hi memsim.VPN) {
	if g := v.grp(pid); g != nil {
		g.pt.coverRange(uint64(lo), uint64(hi))
	}
}

// grp returns the cgroup for pid, or nil when unregistered.
func (v *VMM) grp(pid memsim.PID) *Cgroup {
	if int(pid) < len(v.byPID) {
		return v.byPID[pid]
	}
	return nil
}

// Group returns a process's cgroup.
func (v *VMM) Group(pid memsim.PID) *Cgroup { return v.grp(pid) }

// Stats returns a copy of the counters.
func (v *VMM) Stats() Stats { return v.stats }

// Resident returns total resident local pages.
func (v *VMM) Resident() int { return v.resident }

// Lookup classifies the page without side effects.
//
//hopplint:hotpath
func (v *VMM) Lookup(key memsim.PageKey) PageState {
	g := v.grp(key.PID)
	if g == nil {
		return Untouched
	}
	if p := g.pt.get(key.VPN); p != nil {
		return p.state
	}
	if g.pt.everGet(key.VPN) {
		return SwappedOut
	}
	return Untouched
}

// Access classifies the page and, when it is mapped, applies Touch's
// side effects (injected-flag consumption, LRU refresh) in the same
// table walk — the fused fast path the simulator's per-access loop
// uses. The returned bool reports whether a mapped page was still
// carrying its injected flag before this access consumed it; it is
// false for every other state.
//
//hopplint:hotpath
func (v *VMM) Access(key memsim.PageKey) (PageState, memsim.PPN, bool) {
	if p := v.lastPage; p != nil && v.lastKey == key {
		wasInjected := p.injected
		p.injected = false
		if !v.cfg.LazyLRU {
			v.lastGrp.active.moveToFront(p)
		}
		return Mapped, p.ppn, wasInjected
	}
	return v.accessSlow(key)
}

// accessSlow is the page-table walk behind Access's one-entry filter,
// split out so the filter hit inlines into the simulator's access loop.
func (v *VMM) accessSlow(key memsim.PageKey) (PageState, memsim.PPN, bool) {
	g := v.grp(key.PID)
	if g == nil {
		return Untouched, 0, false
	}
	if p := g.pt.get(key.VPN); p != nil {
		if p.state == Mapped {
			wasInjected := p.injected
			p.injected = false
			if !v.cfg.LazyLRU {
				g.active.moveToFront(p)
			}
			v.lastKey, v.lastPage, v.lastGrp = key, p, g
			return Mapped, p.ppn, wasInjected
		}
		return p.state, p.ppn, false
	}
	if g.pt.everGet(key.VPN) {
		return SwappedOut, 0, false
	}
	return Untouched, 0, false
}

// PPNOf returns the resident page's frame, if any.
func (v *VMM) PPNOf(key memsim.PageKey) (memsim.PPN, bool) {
	if g := v.grp(key.PID); g != nil {
		if p := g.pt.get(key.VPN); p != nil {
			return p.ppn, true
		}
	}
	return 0, false
}

// IsInjected reports whether a mapped page was early-PTE-injected and
// has not been touched yet.
func (v *VMM) IsInjected(key memsim.PageKey) bool {
	if g := v.grp(key.PID); g != nil {
		if p := g.pt.get(key.VPN); p != nil {
			return p.injected
		}
	}
	return false
}

func (v *VMM) allocPPN() (memsim.PPN, error) {
	if v.cfg.PhysPages > 0 && v.resident >= v.cfg.PhysPages {
		return 0, fmt.Errorf("vmm: out of physical pages (%d resident)", v.resident)
	}
	v.stats.Allocs++
	v.resident++
	if n := len(v.freePPNs); n > 0 {
		p := v.freePPNs[n-1]
		v.freePPNs = v.freePPNs[:n-1]
		return p, nil
	}
	v.nextPPN++
	return v.nextPPN, nil
}

func (v *VMM) freePPN(p memsim.PPN) {
	//hopplint:allocok amortized freelist growth; capacity is reused once the working set has cycled
	v.freePPNs = append(v.freePPNs, p)
	v.resident--
}

// newPage takes a page struct off the freelist (or allocates one); the
// caller fully reinitializes it.
// pageSlabSize is how many page structs each backing slab holds.
// Slab allocation keeps pages that are allocated together adjacent in
// memory — the streaming access pattern then walks pages roughly
// sequentially instead of chasing scattered heap objects.
const pageSlabSize = 512

func (v *VMM) newPage() *page {
	if p := v.pageFree; p != nil {
		v.pageFree = p.next
		p.next = nil
		return p
	}
	slab := make([]page, pageSlabSize)
	for i := pageSlabSize - 1; i > 0; i-- {
		slab[i].next = v.pageFree
		v.pageFree = &slab[i]
	}
	return &slab[0]
}

// releasePage returns an evicted page struct to the freelist. The page
// must already be off both LRU lists (remove nils prev/next).
func (v *VMM) releasePage(p *page) {
	if v.lastPage == p {
		v.lastPage = nil
	}
	*p = page{next: v.pageFree}
	v.pageFree = p
}

func (v *VMM) group(pid memsim.PID) (*Cgroup, error) {
	if g := v.grp(pid); g != nil {
		return g, nil
	}
	return nil, fmt.Errorf("vmm: pid %d not registered", pid)
}

// MapNew services a first-touch minor fault: allocate, zero-fill, map.
func (v *VMM) MapNew(key memsim.PageKey) (memsim.PPN, error) {
	return v.mapFresh(key, false, &v.stats.MapsNew)
}

// MapRemote maps a page whose contents just arrived from the remote
// node, either at the end of a demand major fault (injected=false) or by
// early PTE injection of a prefetched page (injected=true).
func (v *VMM) MapRemote(key memsim.PageKey, injected bool) (memsim.PPN, error) {
	ppn, err := v.mapFresh(key, injected, &v.stats.MapsRemote)
	if err == nil && injected {
		v.stats.Injections++
	}
	return ppn, err
}

func (v *VMM) mapFresh(key memsim.PageKey, injected bool, counter *uint64) (memsim.PPN, error) {
	g, err := v.group(key.PID)
	if err != nil {
		return 0, err
	}
	if g.pt.get(key.VPN) != nil {
		return 0, fmt.Errorf("vmm: page %v already resident", key)
	}
	ppn, err := v.allocPPN()
	if err != nil {
		return 0, err
	}
	p := v.newPage()
	*p = page{key: key, ppn: ppn, state: Mapped, injected: injected, prefetched: injected, charged: true}
	g.pt.set(key.VPN, p)
	g.active.pushFront(p)
	g.charged++
	*counter++
	if v.OnSetPTE != nil {
		v.OnSetPTE(ppn, key.PID, key.VPN)
	}
	return ppn, nil
}

// InsertSwapCache lands a prefetched page in the swapcache, unmapped.
// Whether it is charged to the cgroup depends on Config.ChargePrefetched.
func (v *VMM) InsertSwapCache(key memsim.PageKey) (memsim.PPN, error) {
	g, err := v.group(key.PID)
	if err != nil {
		return 0, err
	}
	if g.pt.get(key.VPN) != nil {
		return 0, fmt.Errorf("vmm: page %v already resident", key)
	}
	ppn, err := v.allocPPN()
	if err != nil {
		return 0, err
	}
	v.insertSeq++
	p := v.newPage()
	*p = page{key: key, ppn: ppn, state: SwapCached, prefetched: true, charged: v.cfg.ChargePrefetched, seq: v.insertSeq}
	g.pt.set(key.VPN, p)
	g.inactive.pushFront(p)
	if p.charged {
		g.charged++
	}
	v.stats.SwapCacheInserts++
	return ppn, nil
}

// PromoteSwapCache services a prefetch-hit: the faulting page is found
// in the swapcache and mapped.
func (v *VMM) PromoteSwapCache(key memsim.PageKey) (memsim.PPN, error) {
	g, err := v.group(key.PID)
	if err != nil {
		return 0, err
	}
	p := g.pt.get(key.VPN)
	if p == nil || p.state != SwapCached {
		return 0, fmt.Errorf("vmm: page %v not in swapcache", key)
	}
	g.inactive.remove(p)
	p.state = Mapped
	if !p.charged {
		p.charged = true
		g.charged++
	}
	g.active.pushFront(p)
	v.stats.Promotions++
	if v.OnSetPTE != nil {
		v.OnSetPTE(p.ppn, key.PID, key.VPN)
	}
	return p.ppn, nil
}

// PromoteInjected injects the PTE for a page that is already local in
// the swapcache — HoPP's cheapest prefetch: no RDMA needed, the fault
// that would have cost a 2.3 µs prefetch-hit becomes a plain DRAM hit.
func (v *VMM) PromoteInjected(key memsim.PageKey) (memsim.PPN, error) {
	ppn, err := v.PromoteSwapCache(key)
	if err != nil {
		return 0, err
	}
	g := v.grp(key.PID)
	p := g.pt.get(key.VPN)
	p.injected = true
	v.stats.Injections++
	v.stats.InjectedInPlace++
	return ppn, nil
}

// Touch records an ordinary access to a mapped page: LRU promotion and
// clearing the injected flag (the prefetch has now been consumed).
func (v *VMM) Touch(key memsim.PageKey) (memsim.PPN, error) {
	g, err := v.group(key.PID)
	if err != nil {
		return 0, err
	}
	p := g.pt.get(key.VPN)
	if p == nil || p.state != Mapped {
		return 0, fmt.Errorf("vmm: touch of non-mapped page %v (%v)", key, v.Lookup(key))
	}
	p.injected = false
	if !v.cfg.LazyLRU {
		g.active.moveToFront(p)
	}
	return p.ppn, nil
}

// ReclaimIfNeeded evicts pages until the cgroup is back under its limit,
// preferring charged pages on the inactive (swapcache) list, then the
// active LRU tail — the kernel's two-list approximation. Uncharged
// swapcache pages (Fastswap/Leap prefetches, which those systems do not
// account to the cgroup) are untouched by cgroup reclaim but bounded by
// SwapCacheCapPages, modelling the global reclaim that would eventually
// drop them. Victims are returned for the engine to write back and
// invalidate.
func (v *VMM) ReclaimIfNeeded(pid memsim.PID) []Victim {
	return v.ReclaimInto(pid, nil)
}

// ReclaimInto is ReclaimIfNeeded appending into a caller-owned buffer,
// the allocation-free form the simulator hot loop uses: in the common
// nothing-to-evict case it returns victims unchanged without touching
// the heap.
//
//hopplint:hotpath
func (v *VMM) ReclaimInto(pid memsim.PID, victims []Victim) []Victim {
	g := v.grp(pid)
	if g == nil {
		return victims
	}
	// Global pressure on unaccounted swapcache pages.
	for g.inactive.n > v.cfg.SwapCacheCapPages {
		tail := g.inactive.tail
		if tail.charged {
			break // charged pages are handled by cgroup reclaim below
		}
		//hopplint:allocok appends into the caller-owned victims buffer (the ReclaimInto contract)
		victims = append(victims, v.evict(g, tail))
	}
	for g.OverLimit() > 0 {
		victim, ok := v.evictOne(g)
		if !ok {
			break
		}
		//hopplint:allocok appends into the caller-owned victims buffer (the ReclaimInto contract)
		victims = append(victims, victim)
	}
	return victims
}

func (v *VMM) evictOne(g *Cgroup) (Victim, bool) {
	var p *page
	tail := g.inactive.tail
	switch {
	case tail != nil && tail.charged && v.insertSeq-tail.seq > v.cfg.InactiveProtect:
		// A stale unused prefetch: the cheapest, most deserving victim.
		p = tail
	case g.active.tail != nil:
		p = g.active.tail
		if v.Advisor != nil {
			// Trace-informed eviction: rotate recently-hot tails back to
			// MRU instead of evicting them, within the scan budget.
			for i := 0; i < advisorScan && p != nil && v.Advisor(p.key); i++ {
				g.active.moveToFront(p)
				v.stats.AdvisorRescues++
				p = g.active.tail
			}
			if p == nil {
				return Victim{}, false
			}
		}
	case tail != nil:
		p = tail // last resort: even fresh prefetches go when nothing else can
	default:
		return Victim{}, false
	}
	return v.evict(g, p), true
}

func (v *VMM) evict(g *Cgroup, p *page) Victim {
	vic := Victim{
		Key:           p.key,
		PPN:           p.ppn,
		WasMapped:     p.state == Mapped,
		WasInjected:   p.injected,
		WasSwapCached: p.state == SwapCached,
		WasPrefetched: p.prefetched,
	}
	if p.state == Mapped {
		g.active.remove(p)
		if v.OnClearPTE != nil {
			v.OnClearPTE(p.ppn)
		}
	} else {
		g.inactive.remove(p)
		v.stats.EvictedSwapCached++
	}
	if p.injected {
		v.stats.EvictedInjected++
	}
	if p.charged {
		g.charged--
	}
	g.pt.del(p.key.VPN)
	g.pt.everSet(p.key.VPN)
	v.freePPN(p.ppn)
	v.releasePage(p)
	v.stats.Evictions++
	return vic
}

// EvictPage forcibly evicts a specific resident page (used by failure
// injection tests and by shootdown scenarios).
func (v *VMM) EvictPage(key memsim.PageKey) (Victim, error) {
	g := v.grp(key.PID)
	if g == nil {
		return Victim{}, fmt.Errorf("vmm: page %v not resident", key)
	}
	p := g.pt.get(key.VPN)
	if p == nil {
		return Victim{}, fmt.Errorf("vmm: page %v not resident", key)
	}
	return v.evict(g, p), nil
}
