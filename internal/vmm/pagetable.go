package vmm

import "hopp/internal/memsim"

// pageTable maps one process's VPNs to resident pages, plus the
// ever-swapped bit that distinguishes major faults from first touches.
//
// The structure exists for the simulator hot loop: classifying a page is
// the first thing every simulated access does, and a Go map probe (hash,
// bucket walk) dominated the per-access profile. Instead, VPNs inside a
// contiguous span get a dense slice slot (plain array index) and a
// bitset for the ever-swapped flag; VPNs outside the span — sparse
// outliers a workload maps far from its main regions — fall back to
// overflow maps. The span grows on demand with doubling slack and is
// capped at maxDenseSpan so one stray VPN cannot balloon the table.
type pageTable struct {
	init  bool
	base  uint64   // first VPN covered by the dense span; multiple of 64
	dense []*page  // index: vpn - base
	ever  []uint64 // bitset over the same span

	ovPages map[memsim.VPN]*page
	ovEver  map[memsim.VPN]struct{}
}

const (
	// maxDenseSpan caps the dense span at 4M pages (16 GB of virtual
	// address space per process — far beyond any simulated footprint).
	maxDenseSpan = 1 << 22
	// denseInitSpan is the initial span for tables that were not
	// presized from workload regions.
	denseInitSpan = 1 << 10
)

// get returns the resident page for vpn, or nil.
func (t *pageTable) get(vpn memsim.VPN) *page {
	if i := uint64(vpn) - t.base; i < uint64(len(t.dense)) {
		return t.dense[i]
	}
	if t.ovPages != nil {
		return t.ovPages[vpn]
	}
	return nil
}

// set records p as the resident page for vpn.
func (t *pageTable) set(vpn memsim.VPN, p *page) {
	if i := uint64(vpn) - t.base; i < uint64(len(t.dense)) {
		t.dense[i] = p
		return
	}
	if t.coverSlack(uint64(vpn)) {
		t.dense[uint64(vpn)-t.base] = p
		return
	}
	if t.ovPages == nil {
		t.ovPages = make(map[memsim.VPN]*page)
	}
	t.ovPages[vpn] = p
}

// del removes the resident page for vpn.
func (t *pageTable) del(vpn memsim.VPN) {
	if i := uint64(vpn) - t.base; i < uint64(len(t.dense)) {
		t.dense[i] = nil
		return
	}
	if t.ovPages != nil {
		delete(t.ovPages, vpn)
	}
}

// everGet reports whether vpn has ever been swapped out.
func (t *pageTable) everGet(vpn memsim.VPN) bool {
	if i := uint64(vpn) - t.base; i < uint64(len(t.dense)) {
		return t.ever[i>>6]&(1<<(i&63)) != 0
	}
	if t.ovEver != nil {
		_, ok := t.ovEver[vpn]
		return ok
	}
	return false
}

// everSet marks vpn as having a remote copy.
func (t *pageTable) everSet(vpn memsim.VPN) {
	if i := uint64(vpn) - t.base; i < uint64(len(t.dense)) {
		t.ever[i>>6] |= 1 << (i & 63)
		return
	}
	if t.ovEver == nil {
		//hopplint:allocok overflow map for pages outside the dense span, allocated once; the dense span covers the steady state
		t.ovEver = make(map[memsim.VPN]struct{})
	}
	t.ovEver[vpn] = struct{}{}
}

// coverSlack grows the dense span to include v, with doubling headroom
// in the growth direction so ascending or descending fills amortize to
// O(1) per page. Reports false when even the minimal covering span
// would exceed maxDenseSpan.
func (t *pageTable) coverSlack(v uint64) bool {
	lo := v &^ 63
	hi := lo + 64
	if !t.init {
		return t.grow(lo, lo+denseInitSpan)
	}
	oldLo := t.base
	oldHi := t.base + uint64(len(t.dense))
	span := oldHi - oldLo
	newLo, newHi := lo, hi
	if newLo > oldLo {
		newLo = oldLo
	}
	if newHi < oldHi {
		newHi = oldHi
	}
	if newHi-newLo > maxDenseSpan {
		return false
	}
	// Doubling slack toward the side being grown.
	if hi > oldHi {
		if target := oldLo + 2*span; target > newHi && target-newLo <= maxDenseSpan {
			newHi = target
		}
	}
	if lo < oldLo {
		var target uint64
		if oldHi > 2*span {
			target = (oldHi - 2*span) &^ 63
		}
		if target < newLo && newHi-target <= maxDenseSpan {
			newLo = target
		}
	}
	return t.grow(newLo, newHi)
}

// coverRange extends the dense span to exactly cover [lo, hi) (rounded
// to bitset words), without slack — the presizing path. Reports false
// when the span would exceed maxDenseSpan.
func (t *pageTable) coverRange(lo, hi uint64) bool {
	if hi <= lo {
		return true
	}
	lo &^= 63
	hi = (hi + 63) &^ 63
	if t.init {
		if t.base < lo {
			lo = t.base
		}
		if e := t.base + uint64(len(t.dense)); e > hi {
			hi = e
		}
		if lo >= t.base && hi <= t.base+uint64(len(t.dense)) {
			return true
		}
	}
	if hi-lo > maxDenseSpan {
		return false
	}
	return t.grow(lo, hi)
}

// grow reallocates the dense span to [newLo, newHi); both bounds must be
// multiples of 64 and enclose the current span.
func (t *pageTable) grow(newLo, newHi uint64) bool {
	if newHi-newLo > maxDenseSpan {
		return false
	}
	nd := make([]*page, newHi-newLo)
	ne := make([]uint64, (newHi-newLo)/64)
	if t.init {
		off := t.base - newLo
		copy(nd[off:], t.dense)
		copy(ne[off/64:], t.ever)
	}
	t.dense, t.ever, t.base, t.init = nd, ne, newLo, true
	return true
}
