package vmm

import "hopp/internal/vclock"

// Costs is the kernel-path cost model, quoted from the swap operation
// breakdown in §II-A of the paper. Every figure is the cost *excluding*
// the network transfer, which the fabric model supplies dynamically.
type Costs struct {
	// ContextSwitch is step (1): page fault entry, ≈0.3 µs.
	ContextSwitch vclock.Duration
	// PTEWalk is step (2): kernel page table traversal, ≈0.6 µs.
	PTEWalk vclock.Duration
	// SwapCacheOp is step (3): swapcache query and, on miss, page +
	// swap-entry allocation and insertion, ≈0.4 µs.
	SwapCacheOp vclock.Duration
	// ReclaimPerPage is step (5): per-page share of batched reclaim,
	// 2–5 µs. Since Linux v5.8 reclaim happens in advance, off the
	// critical path; the simulator charges it to a background budget
	// unless SynchronousReclaim is set.
	ReclaimPerPage vclock.Duration
	// PTESet is step (6): establishing the PTE and returning to user
	// space, ≈1 µs.
	PTESet vclock.Duration
	// DRAMHit is the cost of an ordinary memory access that misses LLC
	// but needs no kernel involvement, ≈0.1 µs (§II-C).
	DRAMHit vclock.Duration
	// CacheHit is the cost of an access served by the CPU caches.
	CacheHit vclock.Duration
	// MinorFault is a first-touch anonymous fault (allocate + zero-fill
	// + map); identical for every system under comparison.
	MinorFault vclock.Duration
	// SynchronousReclaim charges ReclaimPerPage on the faulting path
	// (pre-v5.8 behaviour). Off by default.
	SynchronousReclaim bool
}

// DefaultCosts returns the paper's numbers.
func DefaultCosts() Costs {
	return Costs{
		ContextSwitch:  300 * vclock.Nanosecond,
		PTEWalk:        600 * vclock.Nanosecond,
		SwapCacheOp:    400 * vclock.Nanosecond,
		ReclaimPerPage: 2500 * vclock.Nanosecond,
		PTESet:         1000 * vclock.Nanosecond,
		DRAMHit:        100 * vclock.Nanosecond,
		CacheHit:       15 * vclock.Nanosecond,
		MinorFault:     1500 * vclock.Nanosecond,
	}
}

// PrefetchHit is the kernel overhead of hitting a prefetched page in the
// swapcache: steps (1)+(2)+(3)+(6) = 2.3 µs, the post-v5.8 figure §II-C
// calls "at least 23 times higher than that of a DRAM-hit".
func (c Costs) PrefetchHit() vclock.Duration {
	return c.ContextSwitch + c.PTEWalk + c.SwapCacheOp + c.PTESet
}

// DemandFixed is the kernel-side cost of a major fault excluding the
// network transfer: steps (1)+(2)+(3)+(6), plus step (5) when reclaim is
// synchronous.
func (c Costs) DemandFixed() vclock.Duration {
	d := c.ContextSwitch + c.PTEWalk + c.SwapCacheOp + c.PTESet
	if c.SynchronousReclaim {
		d += c.ReclaimPerPage
	}
	return d
}
