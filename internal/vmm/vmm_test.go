package vmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
	"hopp/internal/vclock"
)

func key(pid memsim.PID, vpn memsim.VPN) memsim.PageKey {
	return memsim.PageKey{PID: pid, VPN: vpn}
}

func newVMM(t *testing.T, cfg Config, pid memsim.PID, limit int) *VMM {
	t.Helper()
	v := New(cfg)
	if _, err := v.Register(pid, limit); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCostModelMatchesPaper(t *testing.T) {
	c := DefaultCosts()
	if got := c.PrefetchHit(); got != 2300*vclock.Nanosecond {
		t.Fatalf("PrefetchHit = %v, want 2.3 µs", got)
	}
	if got := c.DemandFixed(); got != 2300*vclock.Nanosecond {
		t.Fatalf("DemandFixed = %v, want 2.3 µs excl. network", got)
	}
	c.SynchronousReclaim = true
	if got := c.DemandFixed(); got != 4800*vclock.Nanosecond {
		t.Fatalf("DemandFixed sync = %v, want 4.8 µs", got)
	}
	// Prefetch-hit is "at least 23x higher than a DRAM-hit" (§II-C).
	if float64(c.PrefetchHit())/float64(c.DRAMHit) < 23 {
		t.Fatal("prefetch-hit / DRAM-hit ratio below paper's 23x")
	}
}

func TestLifecycleUntouchedToSwappedOut(t *testing.T) {
	v := newVMM(t, Config{}, 1, 1)
	k1, k2 := key(1, 10), key(1, 11)
	if v.Lookup(k1) != Untouched {
		t.Fatal("fresh page not Untouched")
	}
	if _, err := v.MapNew(k1); err != nil {
		t.Fatal(err)
	}
	if v.Lookup(k1) != Mapped {
		t.Fatal("mapped page not Mapped")
	}
	if _, err := v.MapNew(k2); err != nil {
		t.Fatal(err)
	}
	vics := v.ReclaimIfNeeded(1) // limit 1: k1 (LRU) must go
	if len(vics) != 1 || vics[0].Key != k1 || !vics[0].WasMapped {
		t.Fatalf("victims = %+v", vics)
	}
	if v.Lookup(k1) != SwappedOut {
		t.Fatalf("evicted page state = %v", v.Lookup(k1))
	}
	if v.Lookup(k2) != Mapped {
		t.Fatal("survivor page state wrong")
	}
}

func TestTouchPromotesLRU(t *testing.T) {
	v := newVMM(t, Config{}, 1, 2)
	a, b, c := key(1, 1), key(1, 2), key(1, 3)
	v.MapNew(a)
	v.MapNew(b)
	if _, err := v.Touch(a); err != nil { // a becomes MRU, b is LRU
		t.Fatal(err)
	}
	v.MapNew(c)
	vics := v.ReclaimIfNeeded(1)
	if len(vics) != 1 || vics[0].Key != b {
		t.Fatalf("expected b evicted, got %+v", vics)
	}
}

func TestSwapCachePathAndPromotion(t *testing.T) {
	v := newVMM(t, Config{}, 1, 10)
	k := key(1, 5)
	ppn, err := v.InsertSwapCache(k)
	if err != nil {
		t.Fatal(err)
	}
	if v.Lookup(k) != SwapCached {
		t.Fatal("not SwapCached")
	}
	// Uncharged by default (Fastswap/Leap accounting).
	if v.Group(1).Charged() != 0 {
		t.Fatal("swapcache page charged despite ChargePrefetched=false")
	}
	got, err := v.PromoteSwapCache(k)
	if err != nil {
		t.Fatal(err)
	}
	if got != ppn {
		t.Fatalf("promotion changed frame: %d -> %d", ppn, got)
	}
	if v.Lookup(k) != Mapped || v.Group(1).Charged() != 1 {
		t.Fatal("promotion did not map+charge")
	}
}

func TestChargePrefetchedAccounting(t *testing.T) {
	v := newVMM(t, Config{ChargePrefetched: true}, 1, 10)
	v.InsertSwapCache(key(1, 5))
	if v.Group(1).Charged() != 1 {
		t.Fatal("HoPP-style accounting did not charge swapcache page")
	}
}

func TestStaleInactiveEvictedBeforeActive(t *testing.T) {
	v := newVMM(t, Config{ChargePrefetched: true, InactiveProtect: 1}, 1, 4)
	m, stale := key(1, 1), key(1, 2)
	v.MapNew(m)
	v.InsertSwapCache(stale)
	v.InsertSwapCache(key(1, 3)) // two newer inserts push `stale`
	v.InsertSwapCache(key(1, 4)) // strictly past the protect window
	v.MapNew(key(1, 5))          // over limit by 1
	vics := v.ReclaimIfNeeded(1)
	if len(vics) != 1 || vics[0].Key != stale || !vics[0].WasSwapCached {
		t.Fatalf("expected the stale swapcache page evicted first, got %+v", vics)
	}
	if v.Stats().EvictedSwapCached != 1 {
		t.Fatal("EvictedSwapCached not counted")
	}
}

func TestFreshInactiveProtectedFromReclaim(t *testing.T) {
	v := newVMM(t, Config{ChargePrefetched: true}, 1, 2)
	m, s := key(1, 1), key(1, 2)
	v.MapNew(m)
	v.InsertSwapCache(s) // fresh: within the protect window
	v.MapNew(key(1, 3))  // over limit by 1
	vics := v.ReclaimIfNeeded(1)
	if len(vics) != 1 || vics[0].Key != m || !vics[0].WasMapped {
		t.Fatalf("expected the cold active page evicted, got %+v", vics)
	}
	if v.Lookup(s) != SwapCached {
		t.Fatal("fresh prefetch was sacrificed")
	}
}

func TestFreshInactiveEvictedAsLastResort(t *testing.T) {
	v := newVMM(t, Config{ChargePrefetched: true}, 1, 1)
	v.InsertSwapCache(key(1, 1))
	v.InsertSwapCache(key(1, 2)) // over limit; no active pages exist
	vics := v.ReclaimIfNeeded(1)
	if len(vics) != 1 || !vics[0].WasSwapCached {
		t.Fatalf("last-resort eviction failed: %+v", vics)
	}
}

func TestInjectedPageLifecycle(t *testing.T) {
	v := newVMM(t, Config{ChargePrefetched: true}, 1, 10)
	k := key(1, 7)
	if _, err := v.MapRemote(k, true); err != nil {
		t.Fatal(err)
	}
	if !v.IsInjected(k) {
		t.Fatal("injected flag not set")
	}
	if v.Lookup(k) != Mapped {
		t.Fatal("injected page must be Mapped (that is the whole point)")
	}
	v.Touch(k)
	if v.IsInjected(k) {
		t.Fatal("touch did not consume injection")
	}
	if v.Stats().Injections != 1 {
		t.Fatal("injection not counted")
	}
}

func TestEvictedInjectedCounted(t *testing.T) {
	v := newVMM(t, Config{ChargePrefetched: true}, 1, 1)
	v.MapRemote(key(1, 1), true)
	v.MapRemote(key(1, 2), true) // over limit; LRU (vpn 1) evicted untouched
	vics := v.ReclaimIfNeeded(1)
	if len(vics) != 1 || !vics[0].WasInjected {
		t.Fatalf("victims = %+v", vics)
	}
	if v.Stats().EvictedInjected != 1 {
		t.Fatal("EvictedInjected not counted")
	}
}

func TestHooksFire(t *testing.T) {
	v := newVMM(t, Config{}, 1, 1)
	var sets, clears []memsim.PPN
	v.OnSetPTE = func(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN) { sets = append(sets, ppn) }
	v.OnClearPTE = func(ppn memsim.PPN) { clears = append(clears, ppn) }
	v.MapNew(key(1, 1))
	v.MapNew(key(1, 2))
	v.ReclaimIfNeeded(1)
	if len(sets) != 2 {
		t.Fatalf("OnSetPTE fired %d times, want 2", len(sets))
	}
	if len(clears) != 1 {
		t.Fatalf("OnClearPTE fired %d times, want 1", len(clears))
	}
	// Swapcache insert must NOT set a PTE; promotion must.
	sets = nil
	v2 := newVMM(t, Config{}, 1, 10)
	v2.OnSetPTE = func(ppn memsim.PPN, pid memsim.PID, vpn memsim.VPN) { sets = append(sets, ppn) }
	v2.InsertSwapCache(key(1, 9))
	if len(sets) != 0 {
		t.Fatal("swapcache insert set a PTE")
	}
	v2.PromoteSwapCache(key(1, 9))
	if len(sets) != 1 {
		t.Fatal("promotion did not set a PTE")
	}
}

func TestPPNReuse(t *testing.T) {
	v := newVMM(t, Config{}, 1, 1)
	p1, _ := v.MapNew(key(1, 1))
	v.MapNew(key(1, 2))
	v.ReclaimIfNeeded(1)
	p3, _ := v.MapNew(key(1, 3))
	v.ReclaimIfNeeded(1)
	if p3 != p1 {
		t.Fatalf("freed frame not reused: first=%d third=%d", p1, p3)
	}
}

func TestPhysicalLimit(t *testing.T) {
	v := New(Config{PhysPages: 2})
	v.Register(1, 0)
	v.MapNew(key(1, 1))
	v.MapNew(key(1, 2))
	if _, err := v.MapNew(key(1, 3)); err == nil {
		t.Fatal("allocation beyond PhysPages succeeded")
	}
}

func TestErrors(t *testing.T) {
	v := newVMM(t, Config{}, 1, 0)
	if _, err := v.Register(1, 0); err == nil {
		t.Error("double Register accepted")
	}
	if _, err := v.MapNew(key(2, 1)); err == nil {
		t.Error("unregistered PID accepted")
	}
	v.MapNew(key(1, 1))
	if _, err := v.MapNew(key(1, 1)); err == nil {
		t.Error("double map accepted")
	}
	if _, err := v.PromoteSwapCache(key(1, 1)); err == nil {
		t.Error("promoting a mapped page accepted")
	}
	if _, err := v.Touch(key(1, 99)); err == nil {
		t.Error("touch of absent page accepted")
	}
	if _, err := v.EvictPage(key(1, 99)); err == nil {
		t.Error("evicting absent page accepted")
	}
}

func TestEvictPageForced(t *testing.T) {
	v := newVMM(t, Config{}, 1, 0)
	v.MapNew(key(1, 1))
	vic, err := v.EvictPage(key(1, 1))
	if err != nil || vic.Key != key(1, 1) {
		t.Fatalf("EvictPage: %+v, %v", vic, err)
	}
	if v.Lookup(key(1, 1)) != SwappedOut {
		t.Fatal("forced eviction state wrong")
	}
}

func TestPerCgroupIsolation(t *testing.T) {
	v := New(Config{})
	v.Register(1, 1)
	v.Register(2, 10)
	v.MapNew(key(1, 1))
	v.MapNew(key(2, 1))
	v.MapNew(key(2, 2))
	v.MapNew(key(1, 2)) // pid 1 over limit
	vics := v.ReclaimIfNeeded(1)
	if len(vics) != 1 || vics[0].Key.PID != 1 {
		t.Fatalf("reclaim crossed cgroups: %+v", vics)
	}
	if v.Group(2).Charged() != 2 {
		t.Fatal("pid 2 charge disturbed")
	}
}

// Property: charged counts and resident totals stay consistent through
// arbitrary operation sequences, and reclaim always restores the limit.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(Config{ChargePrefetched: rng.Intn(2) == 0})
		limit := rng.Intn(20) + 5
		v.Register(1, limit)
		for i := 0; i < 300; i++ {
			k := key(1, memsim.VPN(rng.Intn(64)))
			switch v.Lookup(k) {
			case Untouched:
				v.MapNew(k)
			case SwappedOut:
				v.MapRemote(k, rng.Intn(2) == 0)
			case SwapCached:
				v.PromoteSwapCache(k)
			case Mapped:
				v.Touch(k)
			}
			if rng.Intn(5) == 0 {
				k2 := key(1, memsim.VPN(64+rng.Intn(64)))
				if v.Lookup(k2) == Untouched || v.Lookup(k2) == SwappedOut {
					v.InsertSwapCache(k2)
				}
			}
			v.ReclaimIfNeeded(1)
			g := v.Group(1)
			if g.OverLimit() != 0 {
				return false
			}
			if g.Charged() < 0 || g.Charged() > v.Resident() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
