package vmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
)

// Property: frame allocation never hands out a PPN that is currently
// mapped or swapcached (no aliasing), across arbitrary operation mixes.
func TestNoFrameAliasingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(Config{ChargePrefetched: rng.Intn(2) == 0})
		v.Register(1, rng.Intn(30)+5)
		inUse := make(map[memsim.PPN]memsim.PageKey)
		claim := func(ppn memsim.PPN, k memsim.PageKey) bool {
			if prev, clash := inUse[ppn]; clash && prev != k {
				return false
			}
			inUse[ppn] = k
			return true
		}
		for i := 0; i < 500; i++ {
			k := memsim.PageKey{PID: 1, VPN: memsim.VPN(rng.Intn(80))}
			switch v.Lookup(k) {
			case Untouched:
				ppn, err := v.MapNew(k)
				if err != nil || !claim(ppn, k) {
					return false
				}
			case SwappedOut:
				ppn, err := v.MapRemote(k, rng.Intn(2) == 0)
				if err != nil || !claim(ppn, k) {
					return false
				}
			case SwapCached:
				if rng.Intn(2) == 0 {
					if _, err := v.PromoteSwapCache(k); err != nil {
						return false
					}
				} else {
					if _, err := v.PromoteInjected(k); err != nil {
						return false
					}
				}
			case Mapped:
				v.Touch(k)
			}
			for _, vic := range v.ReclaimIfNeeded(1) {
				if inUse[vic.PPN] != vic.Key {
					return false // evicted a frame we did not own
				}
				delete(inUse, vic.PPN)
			}
		}
		return len(inUse) == v.Resident()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: with LazyLRU off, a page touched more recently than another
// is never evicted before it (strict LRU ordering on the active list).
func TestLRUOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(Config{})
		limit := 16
		v.Register(1, limit)
		lastTouch := make(map[memsim.PageKey]int)
		now := 0
		touch := func(k memsim.PageKey) bool {
			now++
			switch v.Lookup(k) {
			case Untouched:
				v.MapNew(k)
			case SwappedOut:
				v.MapRemote(k, false)
			case Mapped:
				v.Touch(k)
			}
			lastTouch[k] = now
			for _, vic := range v.ReclaimIfNeeded(1) {
				// The victim must be the least recently touched resident page.
				for other, ts := range lastTouch {
					if other == vic.Key {
						continue
					}
					if st := v.Lookup(other); st == Mapped && ts < lastTouch[vic.Key] {
						return false
					}
				}
				delete(lastTouch, vic.Key)
			}
			return true
		}
		for i := 0; i < 400; i++ {
			if !touch(memsim.PageKey{PID: 1, VPN: memsim.VPN(rng.Intn(40))}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLazyLRUSkipsPromotion(t *testing.T) {
	v := New(Config{LazyLRU: true})
	v.Register(1, 2)
	a := memsim.PageKey{PID: 1, VPN: 1}
	b := memsim.PageKey{PID: 1, VPN: 2}
	v.MapNew(a)
	v.MapNew(b)
	v.Touch(a) // under lazy LRU this does NOT refresh a's position
	v.MapNew(memsim.PageKey{PID: 1, VPN: 3})
	vics := v.ReclaimIfNeeded(1)
	if len(vics) != 1 || vics[0].Key != a {
		t.Fatalf("lazy LRU should evict in map order (a first), got %+v", vics)
	}
}
