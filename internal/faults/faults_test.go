package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUnarmedAndNilInjectorAreInert(t *testing.T) {
	var nilIn *Injector
	if nilIn.Hit(SiteRunPanic) {
		t.Fatal("nil injector fired")
	}
	if err := nilIn.ErrAt(SiteJournalAppend); err != nil {
		t.Fatalf("nil injector ErrAt = %v, want nil", err)
	}
	if nilIn.Hits("x") != 0 || nilIn.Fired("x") != 0 {
		t.Fatal("nil injector counted")
	}

	in := New(1)
	if in.Hit(SiteRunPanic) {
		t.Fatal("unarmed site fired")
	}
	if in.Hits(SiteRunPanic) != 0 {
		t.Fatal("unarmed site counted hits")
	}
}

func TestOnHitsFiresExactly(t *testing.T) {
	in := New(1)
	in.Enable("s", OnHits(2, 4))
	var fired []int
	for i := 1; i <= 5; i++ {
		if in.Hit("s") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("OnHits(2,4) fired on %v, want [2 4]", fired)
	}
	if in.Hits("s") != 5 || in.Fired("s") != 2 {
		t.Fatalf("counters = %d hits / %d fired, want 5/2", in.Hits("s"), in.Fired("s"))
	}
}

func TestEveryNthAndAlwaysAndNever(t *testing.T) {
	in := New(1)
	in.Enable("n", EveryNth(3))
	in.Enable("a", Always())
	in.Enable("z", Never())
	for i := 0; i < 9; i++ {
		in.Hit("n")
		if !in.Hit("a") {
			t.Fatal("Always missed a hit")
		}
		if in.Hit("z") {
			t.Fatal("Never fired")
		}
	}
	if got := in.Fired("n"); got != 3 {
		t.Fatalf("EveryNth(3) fired %d of 9, want 3", got)
	}
	if in.Hits("z") != 9 {
		t.Fatalf("Never must still count hits: %d, want 9", in.Hits("z"))
	}
}

// The determinism contract: equal seeds and equal call sequences make
// equal fault decisions, so a failing fault test replays identically.
func TestProbabilityIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed)
		in.Enable("p", Probability(0.5))
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Hit("p")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-hit sequences (suspicious)")
	}
}

func TestErrAtWrapsErrInjected(t *testing.T) {
	in := New(1)
	in.Enable(SiteJournalAppend, OnHits(1))
	err := in.ErrAt(SiteJournalAppend)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrAt = %v, want ErrInjected", err)
	}
	if err := in.ErrAt(SiteJournalAppend); err != nil {
		t.Fatalf("second ErrAt = %v, want nil (OnHits(1))", err)
	}
}

func TestDisableStopsFiringKeepsGate(t *testing.T) {
	in := New(1)
	in.Enable("s", Always())
	g := in.Gate("s")
	if !in.Hit("s") {
		t.Fatal("armed site did not fire")
	}
	in.Disable("s")
	if in.Hit("s") {
		t.Fatal("disabled site fired")
	}
	if in.Hits("s") != 1 {
		t.Fatalf("disabled site counted: %d hits, want 1", in.Hits("s"))
	}
	if in.Gate("s") != g {
		t.Fatal("Disable replaced the site's gate; parked waiters would be stranded")
	}
}

func TestGateParksAndReleases(t *testing.T) {
	g := NewGate()
	const n = 4
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { done <- g.Wait(context.Background()) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiters() != n {
		if time.Now().After(deadline) {
			t.Fatalf("waiters = %d, want %d", g.Waiters(), n)
		}
		time.Sleep(time.Millisecond)
	}
	g.Open()
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("released waiter returned %v", err)
		}
	}
	if g.Waiters() != 0 {
		t.Fatalf("waiters after open = %d, want 0", g.Waiters())
	}
	// Already-open gate: immediate, idempotent.
	g.Open()
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("Wait on open gate = %v", err)
	}
}

func TestGateWaitHonorsContext(t *testing.T) {
	g := NewGate()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Wait(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiters() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Wait = %v, want context.Canceled", err)
	}
}

// Concurrent hits on one injector must be race-free and conserve
// counts (this is the -race half of the package's contract).
func TestConcurrentHitsAreCounted(t *testing.T) {
	in := New(7)
	in.Enable("s", EveryNth(2))
	const goroutines, per = 8, 250
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				in.Hit("s")
			}
		}()
	}
	wg.Wait()
	if got := in.Hits("s"); got != goroutines*per {
		t.Fatalf("hits = %d, want %d", got, goroutines*per)
	}
	if got := in.Fired("s"); got != goroutines*per/2 {
		t.Fatalf("fired = %d, want %d", got, goroutines*per/2)
	}
}
