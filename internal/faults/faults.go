// Package faults is a seeded, deterministic fault injector for the
// service layer's failure-path tests. Production code is threaded with
// named injection sites (a panic inside a run, a journal append, a pool
// submission, an admission decision); a test arms the sites it cares
// about with rules and the code under test misbehaves exactly where and
// when the rule says — no wall clocks, no global rand, no sleeps, so a
// failing fault test replays identically under -race and on any
// machine.
//
// The two primitives:
//
//   - Injector: per-site hit counting plus a Rule deciding which hits
//     fire. Rules are pure functions of the hit number (OnHits,
//     EveryNth, Always) or of the injector's seeded PRNG (Probability),
//     so a given (seed, rule, call sequence) always fires the same
//     faults.
//   - Gate: a context-aware latch for "slow" faults. A run parked on a
//     gate is deterministically slow — it stays parked until the test
//     opens the gate or the run's context is cancelled — which is how
//     queue pressure is built on demand without timing races.
//
// All Injector methods are nil-receiver safe: production code calls
// Hit/ErrAt unconditionally and a nil injector means "no faults", so
// the default path costs one nil check.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Canonical site names for the hoppd service layer. A site name is just
// a string — packages may invent their own — but the service engine,
// journal, pool, and admission limiter consume exactly these.
const (
	// SiteRunPanic fires a deliberate panic inside an executing job,
	// exercising the worker pool's panic containment.
	SiteRunPanic = "run.panic"
	// SiteRunSlow parks an executing job on the site's Gate until the
	// test opens it — deterministic slow runs and queue pressure.
	SiteRunSlow = "run.slow"
	// SiteJournalAppend fails a journal append with ErrInjected,
	// exercising the best-effort journal error accounting.
	SiteJournalAppend = "journal.append"
	// SitePoolSubmit fails a pool submission as if the queue were full,
	// exercising admission shedding without needing real backlog.
	SitePoolSubmit = "pool.submit"
	// SiteAdmissionDeny forces the per-client admission limiter to deny,
	// exercising the 429 path independent of bucket arithmetic.
	SiteAdmissionDeny = "admission.deny"
	// SiteHTTPBodyRead fails a request-body read mid-stream with
	// ErrInjected — the connection that dies (or turns to garbage) while
	// the daemon is still decoding the submission.
	SiteHTTPBodyRead = "http.body.read"
	// SiteHTTPResultsWrite fails a write on the sweep-results NDJSON
	// stream, exercising the handler's unwind when the client is gone
	// mid-stream.
	SiteHTTPResultsWrite = "http.results.write"
	// SiteHTTPStreamStall parks the sweep-results stream on the site's
	// Gate — a deterministic slow-reading client. The handler stays
	// parked until the test opens the gate or the request context ends;
	// the engine keeps serving everyone else throughout.
	SiteHTTPStreamStall = "http.stream.stall"
	// SiteIngestChunkRead fails an ingest chunk-body read mid-chunk with
	// ErrInjected — the upload that tears partway through a PUT. The
	// session must stay resumable at its last acked chunk, never
	// poisoned.
	SiteIngestChunkRead = "ingest.chunk.read"
	// SiteIngestRingFull forces the ingest staging ring to report full,
	// tripping the session's paused state (429 + Retry-After) without
	// needing a genuinely slow pump.
	SiteIngestRingFull = "ingest.ring.full"
	// SiteIngestPumpStall parks an ingest session's pump on the site's
	// Gate — a deterministic slow consumer. Producers keep staging until
	// the ring fills and the paused backpressure path engages.
	SiteIngestPumpStall = "ingest.pump.stall"
)

// ErrInjected marks an error manufactured by the injector; production
// error handling must treat it like any other failure, and tests use
// errors.Is to prove the failure they observed is the one they forced.
var ErrInjected = errors.New("faults: injected error")

// Rule decides which hits at a site fire. hit is 1-based; rng is the
// injector's seeded source, shared so a fixed seed fixes every
// probabilistic decision across all sites in arrival order.
type Rule interface {
	fires(hit uint64, rng *rand.Rand) bool
}

type ruleFunc func(hit uint64, rng *rand.Rand) bool

func (f ruleFunc) fires(hit uint64, rng *rand.Rand) bool { return f(hit, rng) }

// Always fires on every hit.
func Always() Rule { return ruleFunc(func(uint64, *rand.Rand) bool { return true }) }

// Never fires on no hit; arming a site with Never still counts hits,
// which lets a test observe traffic through a site without perturbing it.
func Never() Rule { return ruleFunc(func(uint64, *rand.Rand) bool { return false }) }

// OnHits fires on exactly the given 1-based hit numbers.
func OnHits(hits ...uint64) Rule {
	set := make(map[uint64]bool, len(hits))
	for _, h := range hits {
		set[h] = true
	}
	return ruleFunc(func(hit uint64, _ *rand.Rand) bool { return set[hit] })
}

// EveryNth fires on hits n, 2n, 3n, … (n <= 1 means every hit).
func EveryNth(n uint64) Rule {
	if n <= 1 {
		return Always()
	}
	return ruleFunc(func(hit uint64, _ *rand.Rand) bool { return hit%n == 0 })
}

// Probability fires each hit independently with probability p, drawn
// from the injector's seeded source: same seed, same arrival order,
// same faults.
func Probability(p float64) Rule {
	return ruleFunc(func(_ uint64, rng *rand.Rand) bool { return rng.Float64() < p })
}

// site is one armed injection point.
type site struct {
	rule  Rule
	hits  uint64
	fired uint64
	gate  *Gate
}

// Injector tracks hits and fires faults at named sites. One injector is
// shared across the engine, journal, pool, and limiter of a daemon
// under test; its mutex serializes decisions, so the seeded PRNG
// consumes draws in arrival order.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*site
}

// New builds an injector whose probabilistic rules draw from a source
// seeded with seed. No sites are armed; every Hit reports false until
// Enable.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		sites: make(map[string]*site),
	}
}

// Enable arms (or re-arms) a site with a rule. Hit and fire counts are
// preserved across re-arming, so a test can switch a site from Always
// to Never and keep reading cumulative counters.
func (in *Injector) Enable(name string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.siteLocked(name).rule = r
}

// Disable disarms a site; later hits neither count nor fire. The
// site's Gate, if any, survives so parked waiters can still be released.
func (in *Injector) Disable(name string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok {
		s.rule = nil
	}
}

// Hit records one arrival at a site and reports whether the fault
// fires. Unarmed sites (and a nil injector — the production default)
// report false without counting.
func (in *Injector) Hit(name string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.sites[name]
	if !ok || s.rule == nil {
		return false
	}
	s.hits++
	if s.rule.fires(s.hits, in.rng) {
		s.fired++
		return true
	}
	return false
}

// ErrAt is Hit for error-shaped sites: when the site fires it returns a
// typed error wrapping ErrInjected, otherwise nil.
func (in *Injector) ErrAt(name string) error {
	if in.Hit(name) {
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
	return nil
}

// Hits reports arrivals counted at an armed site.
func (in *Injector) Hits(name string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok {
		return s.hits
	}
	return 0
}

// Fired reports how many hits at a site actually fired.
func (in *Injector) Fired(name string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sites[name]; ok {
		return s.fired
	}
	return 0
}

// Gate returns the site's latch, creating it on first use. The same
// *Gate is returned for the life of the injector, so the code parking
// on it and the test releasing it always agree on the latch.
func (in *Injector) Gate(name string) *Gate {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.siteLocked(name)
	if s.gate == nil {
		s.gate = NewGate()
	}
	return s.gate
}

// siteLocked returns the named site, creating an unarmed one if needed;
// in.mu must be held.
func (in *Injector) siteLocked(name string) *site {
	s, ok := in.sites[name]
	if !ok {
		s = &site{}
		in.sites[name] = s
	}
	return s
}

// Gate is a one-way latch: Wait parks the caller until Open (or the
// caller's context ends), Waiters reports how many callers are parked.
// It is the deterministic replacement for "sleep to make this run
// slow": a test parks N runs, observes Waiters() == N (real queue
// pressure, no timing guess), then opens the gate.
type Gate struct {
	mu      sync.Mutex
	ch      chan struct{}
	open    bool
	waiters int
}

// NewGate builds a closed gate.
func NewGate() *Gate {
	return &Gate{ch: make(chan struct{})}
}

// Wait parks until the gate opens (nil) or ctx ends (ctx.Err()). An
// already-open gate returns immediately.
func (g *Gate) Wait(ctx context.Context) error {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return nil
	}
	ch := g.ch
	g.waiters++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiters--
		g.mu.Unlock()
	}()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Open releases every current and future waiter. Idempotent.
func (g *Gate) Open() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.open {
		g.open = true
		close(g.ch)
	}
}

// Waiters reports callers currently parked in Wait.
func (g *Gate) Waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters
}
