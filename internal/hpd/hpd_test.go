package hpd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hopp/internal/memsim"
)

func TestThresholdExtraction(t *testing.T) {
	tbl := MustNew(Config{Threshold: 8})
	p := memsim.PPN(0x1000)
	for i := 1; i < 8; i++ {
		if tbl.Access(p) {
			t.Fatalf("hot after only %d accesses", i)
		}
	}
	if !tbl.Access(p) {
		t.Fatal("not hot after 8 accesses")
	}
	if tbl.Stats().HotPages != 1 {
		t.Fatalf("HotPages = %d", tbl.Stats().HotPages)
	}
}

func TestSendBitSuppressesRepeats(t *testing.T) {
	tbl := MustNew(Config{Threshold: 2})
	p := memsim.PPN(4)
	tbl.Access(p)
	if !tbl.Access(p) {
		t.Fatal("expected hot at threshold")
	}
	// All further accesses are dropped while the entry remains resident.
	for i := 0; i < 10; i++ {
		if tbl.Access(p) {
			t.Fatal("re-extracted a page whose send bit is set")
		}
	}
	if got := tbl.Stats().SendSuppressed; got != 10 {
		t.Fatalf("SendSuppressed = %d, want 10", got)
	}
	if tbl.Stats().HotPages != 1 {
		t.Fatal("duplicate extraction")
	}
}

func TestThresholdOneExtractsImmediately(t *testing.T) {
	tbl := MustNew(Config{Threshold: 1})
	if !tbl.Access(9) {
		t.Fatal("threshold 1 must extract on first access")
	}
	if tbl.Access(9) {
		t.Fatal("send bit must suppress the second access")
	}
}

func TestSetIndexLowBits(t *testing.T) {
	tbl := MustNew(Default())
	// Pages 0,4,8,... share set 0 (low 2 bits). 16 ways hold 16 of them;
	// the 17th insert evicts the LRU (page 0).
	for i := 0; i < 17; i++ {
		tbl.Access(memsim.PPN(i * 4))
	}
	if ev := tbl.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// Pages in other sets are untouched: inserting 16 pages in set 1
	// causes no eviction.
	tbl2 := MustNew(Default())
	for i := 0; i < 16; i++ {
		tbl2.Access(memsim.PPN(i*4 + 1))
	}
	if ev := tbl2.Stats().Evictions; ev != 0 {
		t.Fatalf("cross-set interference: %d evictions", ev)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	tbl := MustNew(Config{Sets: 1, Ways: 2, Threshold: 4})
	tbl.Access(10) // insert 10
	tbl.Access(20) // insert 20
	tbl.Access(10) // 20 becomes LRU
	tbl.Access(30) // evicts 20
	// 10 should still have its count: two more accesses make it hot (4 total).
	tbl.Access(10)
	if !tbl.Access(10) {
		t.Fatal("resident entry lost its count")
	}
	// 20 was evicted pre-threshold.
	if got := tbl.Stats().EvictedBeforeHot; got != 1 {
		t.Fatalf("EvictedBeforeHot = %d, want 1", got)
	}
}

func TestEvictionResetsCount(t *testing.T) {
	tbl := MustNew(Config{Sets: 1, Ways: 1, Threshold: 3})
	tbl.Access(1)
	tbl.Access(1)
	tbl.Access(2) // evicts 1
	tbl.Access(1) // reinserted with count 1
	tbl.Access(1)
	if tbl.Access(1) != true {
		t.Fatal("expected hot exactly at 3 accesses after reinsertion")
	}
}

func TestTrackedAndReset(t *testing.T) {
	tbl := MustNew(Default())
	for i := 0; i < 10; i++ {
		tbl.Access(memsim.PPN(i))
	}
	if tbl.Tracked() != 10 {
		t.Fatalf("Tracked = %d", tbl.Tracked())
	}
	tbl.Reset()
	if tbl.Tracked() != 0 || tbl.Stats().Accesses != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Sets: 3, Ways: 16, Threshold: 8}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(Config{Sets: 4, Ways: -1, Threshold: 8}); err == nil {
		t.Error("negative ways accepted")
	}
	if _, err := New(Config{Sets: 4, Ways: 16, Threshold: 65}); err == nil {
		t.Error("threshold > 64 accepted")
	}
	if _, err := New(Config{Sets: 4, Ways: 16, Threshold: -2}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestDefaultsFilled(t *testing.T) {
	tbl := MustNew(Config{})
	cfg := tbl.Config()
	if cfg.Sets != 4 || cfg.Ways != 16 || cfg.Threshold != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

// The Table II trend: with a fixed access pattern, larger N extracts
// fewer hot pages.
func TestHotRatioFallsWithThreshold(t *testing.T) {
	pattern := func(tbl *Table) {
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 200000; i++ {
			// Sequential scan with some reuse, like PageRank's footprint.
			page := memsim.PPN(i / 16)
			if rng.Intn(4) == 0 {
				page = memsim.PPN(rng.Intn(i/16 + 1))
			}
			tbl.Access(page)
		}
	}
	var prev float64 = 2
	for _, n := range []int{2, 4, 8, 16, 32} {
		tbl := MustNew(Config{Threshold: n})
		pattern(tbl)
		ratio := tbl.Stats().HotRatio()
		if ratio >= prev {
			t.Fatalf("hot ratio did not fall: N=%d ratio=%f prev=%f", n, ratio, prev)
		}
		prev = ratio
	}
}

// Property: the table never reports more hot pages than accesses, and
// extraction count matches the hot ratio identity.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		thr := int(n%16) + 1
		tbl := MustNew(Config{Threshold: thr})
		for i := 0; i < 2000; i++ {
			tbl.Access(memsim.PPN(rng.Intn(128)))
		}
		s := tbl.Stats()
		if s.HotPages > s.Accesses {
			return false
		}
		if s.Accesses != 2000 {
			return false
		}
		// Every hot page required at least thr accesses.
		return s.HotPages <= s.Accesses/uint64(thr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHPDAccess(b *testing.B) {
	tbl := MustNew(Default())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Access(memsim.PPN(i % 256))
	}
}
