// Package hpd implements the Hot Page Detection table of §III-B and
// Fig. 5: a tiny set-associative structure inside the memory controller
// that converts the cacheline-granularity LLC READ-miss stream into a
// stream of hot physical pages.
//
// The default geometry matches the paper: a 16-way, 4-set table (64
// concurrently tracked pages) with LRU replacement, using the lowest 2
// bits of the PPN as set index, and a hot threshold of N = 8 of the 64
// cachelines in a 4 KB page. A page whose entry carries the send bit is
// dropped (repeated detection suppression) until the entry is evicted.
package hpd

import (
	"fmt"

	"hopp/internal/memsim"
)

// Config sets the table geometry and the hot threshold.
type Config struct {
	// Sets is the number of sets; the low log2(Sets) bits of the PPN
	// select the set. Must be a power of two. Default 4.
	Sets int
	// Ways is the associativity. Default 16.
	Ways int
	// Threshold is N: accesses to a page before it is declared hot.
	// Valid range is [1, 64] for 4 KB pages. Default 8 (§III-B).
	Threshold int
}

// Default returns the paper's parameters.
func Default() Config { return Config{Sets: 4, Ways: 16, Threshold: 8} }

func (c *Config) fill() {
	if c.Sets == 0 {
		c.Sets = 4
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	if c.Threshold == 0 {
		c.Threshold = 8
	}
}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("hpd: sets must be a power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("hpd: ways must be positive, got %d", c.Ways)
	}
	if c.Threshold < 1 || c.Threshold > memsim.LinesPerPage {
		return fmt.Errorf("hpd: threshold must be in [1,%d], got %d", memsim.LinesPerPage, c.Threshold)
	}
	return nil
}

// Stats counts table activity, the raw material for Table II's
// hot-pages/accesses ratio and Table V's bandwidth estimate.
type Stats struct {
	// Accesses is the number of READ LLC misses fed to the table.
	Accesses uint64
	// HotPages is the number of hot-page extractions emitted.
	HotPages uint64
	// Insertions is the number of new entries installed.
	Insertions uint64
	// Evictions is the number of valid entries replaced by LRU.
	Evictions uint64
	// SendSuppressed is the number of accesses dropped because the
	// entry's send bit was already set.
	SendSuppressed uint64
	// EvictedBeforeHot counts evicted entries that never reached the
	// threshold — the coarseness cost of a large N (§III-B).
	EvictedBeforeHot uint64
}

// HotRatio returns HotPages/Accesses, the Table II metric.
func (s Stats) HotRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.HotPages) / float64(s.Accesses)
}

type entry struct {
	ppn   memsim.PPN
	count int
	send  bool
	valid bool
	tick  uint64
}

// Table is the hot page detection table.
type Table struct {
	cfg   Config
	sets  [][]entry
	mask  uint64
	tick  uint64
	stats Stats
}

// New builds a table. It returns an error on invalid geometry so
// experiment sweeps can probe bad configs without panicking.
func New(cfg Config) (*Table, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sets := make([][]entry, cfg.Sets)
	backing := make([]entry, cfg.Sets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Table{cfg: cfg, sets: sets, mask: uint64(cfg.Sets - 1)}, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the effective configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

// Access feeds one READ LLC miss to the table and reports whether this
// access crossed the hot threshold, i.e. whether the PPN should be
// forwarded to the RPT cache. WRITE misses must be filtered out by the
// caller (§III-B omits WRITEs).
func (t *Table) Access(ppn memsim.PPN) (hot bool) {
	t.tick++
	t.stats.Accesses++
	set := t.sets[uint64(ppn)&t.mask]

	for i := range set {
		e := &set[i]
		if e.valid && e.ppn == ppn {
			e.tick = t.tick
			if e.send {
				t.stats.SendSuppressed++
				return false
			}
			e.count++
			if e.count >= t.cfg.Threshold {
				e.send = true
				t.stats.HotPages++
				return true
			}
			return false
		}
	}
	v := &set[t.pickVictim(set)]
	if v.valid {
		t.stats.Evictions++
		if !v.send {
			t.stats.EvictedBeforeHot++
		}
	}
	*v = entry{ppn: ppn, count: 1, valid: true, tick: t.tick}
	t.stats.Insertions++
	if t.cfg.Threshold == 1 {
		v.send = true
		t.stats.HotPages++
		return true
	}
	return false
}

func (t *Table) pickVictim(set []entry) int {
	victim := 0
	for i := range set {
		if !set[i].valid {
			return i
		}
		if set[i].tick < set[victim].tick {
			victim = i
		}
	}
	return victim
}

// Tracked returns how many valid entries the table currently holds.
func (t *Table) Tracked() int {
	n := 0
	for _, set := range t.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

// Reset clears entries and counters.
func (t *Table) Reset() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = entry{}
		}
	}
	t.stats = Stats{}
	t.tick = 0
}
