// Package hpd implements the Hot Page Detection table of §III-B and
// Fig. 5: a tiny set-associative structure inside the memory controller
// that converts the cacheline-granularity LLC READ-miss stream into a
// stream of hot physical pages.
//
// The default geometry matches the paper: a 16-way, 4-set table (64
// concurrently tracked pages) with LRU replacement, using the lowest 2
// bits of the PPN as set index, and a hot threshold of N = 8 of the 64
// cachelines in a 4 KB page. A page whose entry carries the send bit is
// dropped (repeated detection suppression) until the entry is evicted.
package hpd

import (
	"fmt"
	"math/bits"

	"hopp/internal/memsim"
)

// Config sets the table geometry and the hot threshold.
type Config struct {
	// Sets is the number of sets; the low log2(Sets) bits of the PPN
	// select the set. Must be a power of two. Default 4.
	Sets int
	// Ways is the associativity. Default 16.
	Ways int
	// Threshold is N: accesses to a page before it is declared hot.
	// Valid range is [1, 64] for 4 KB pages. Default 8 (§III-B).
	Threshold int
}

// Default returns the paper's parameters.
func Default() Config { return Config{Sets: 4, Ways: 16, Threshold: 8} }

func (c *Config) fill() {
	if c.Sets == 0 {
		c.Sets = 4
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	if c.Threshold == 0 {
		c.Threshold = 8
	}
}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("hpd: sets must be a power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("hpd: ways must be positive, got %d", c.Ways)
	}
	if c.Threshold < 1 || c.Threshold > memsim.LinesPerPage {
		return fmt.Errorf("hpd: threshold must be in [1,%d], got %d", memsim.LinesPerPage, c.Threshold)
	}
	return nil
}

// Stats counts table activity, the raw material for Table II's
// hot-pages/accesses ratio and Table V's bandwidth estimate.
type Stats struct {
	// Accesses is the number of READ LLC misses fed to the table.
	Accesses uint64
	// HotPages is the number of hot-page extractions emitted.
	HotPages uint64
	// Insertions is the number of new entries installed.
	Insertions uint64
	// Evictions is the number of valid entries replaced by LRU.
	Evictions uint64
	// SendSuppressed is the number of accesses dropped because the
	// entry's send bit was already set.
	SendSuppressed uint64
	// EvictedBeforeHot counts evicted entries that never reached the
	// threshold — the coarseness cost of a large N (§III-B).
	EvictedBeforeHot uint64
}

// HotRatio returns HotPages/Accesses, the Table II metric.
func (s Stats) HotRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.HotPages) / float64(s.Accesses)
}

// invalidPPN marks an empty way. Real PPNs are bounded far below 2^63.
const invalidPPN = ^uint64(0)

// identityOrder is the nibble permutation 15,14,...,1,0 — the initial
// recency order for a 16-way set (way i at nibble i).
const identityOrder = 0xFEDCBA9876543210

// Table is the hot page detection table.
//
// Entries live in parallel flat arrays (set s occupies indexes
// [s*ways, (s+1)*ways)): the match scan — run once per LLC miss —
// touches only the compact PPN array instead of striding over a
// struct-of-everything layout. For associativities up to 16, LRU state
// is a packed recency permutation per set (4-bit way indexes, MRU at
// nibble 0) plus a count of valid ways, as in package cachesim: empty
// ways sit at the LRU end (entries are never invalidated individually),
// so a miss claims its victim with a single rotate. Wider tables fall
// back to per-way tick timestamps. Both implement the same policy:
// empty ways first, then true LRU.
type Table struct {
	cfg   Config
	ppns  []uint64 // invalidPPN = empty way
	ord   []uint64 // packed recency permutation per set (ways ≤ 16)
	valid []uint8  // count of valid ways per set (ways ≤ 16)
	ticks []uint64 // fallback LRU timestamps (ways > 16 only)
	// counts holds the per-entry access count; hotSent (negative) marks
	// an entry whose hot record was already emitted, folding the old
	// separate send-bit array into the counter the match path loads
	// anyway.
	counts   []int32
	ways     int
	lruShift uint
	mask     uint64
	tick     uint64
	// lastPPN/lastIdx short-circuit repeated accesses to one page — the
	// dominant LLC-miss pattern, since a page has 64 cachelines. The
	// entry is necessarily still MRU in its set (any intervening access
	// would have changed lastPPN), so the hit skips scan and touch. Kept
	// coherent because install always reassigns both fields.
	lastPPN uint64
	lastIdx int
	stats   Stats
}

// New builds a table. It returns an error on invalid geometry so
// experiment sweeps can probe bad configs without panicking.
func New(cfg Config) (*Table, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Ways
	t := &Table{
		cfg:    cfg,
		ppns:   make([]uint64, n),
		counts: make([]int32, n),
		ways:   cfg.Ways,
		mask:   uint64(cfg.Sets - 1),
	}
	for i := range t.ppns {
		t.ppns[i] = invalidPPN
	}
	t.lastPPN = invalidPPN
	if cfg.Ways <= 16 {
		t.ord = make([]uint64, cfg.Sets)
		t.valid = make([]uint8, cfg.Sets)
		t.lruShift = uint(4 * (cfg.Ways - 1))
		init := uint64(identityOrder)
		if cfg.Ways < 16 {
			init &= uint64(1)<<uint(4*cfg.Ways) - 1
		}
		for i := range t.ord {
			t.ord[i] = init
		}
	} else {
		t.ticks = make([]uint64, n)
	}
	return t, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the effective configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

// Access feeds one READ LLC miss to the table and reports whether this
// access crossed the hot threshold, i.e. whether the PPN should be
// forwarded to the RPT cache. WRITE misses must be filtered out by the
// caller (§III-B omits WRITEs).
//
//hopplint:hotpath
func (t *Table) Access(ppn memsim.PPN) (hot bool) {
	t.stats.Accesses++
	if uint64(ppn) == t.lastPPN {
		// Still MRU in its set — no recency state needs refreshing.
		return t.onMatch(t.lastIdx)
	}
	return t.accessSlow(ppn)
}

// accessSlow is the set lookup behind Access's one-entry filter, split
// out so the filter hit — the overwhelmingly common case under
// consecutive same-page misses — inlines into the caller.
func (t *Table) accessSlow(ppn memsim.PPN) (hot bool) {
	set := int(uint64(ppn) & t.mask)
	base := set * t.ways
	if t.ticks != nil {
		return t.accessWide(set, ppn)
	}
	ppns := t.ppns[base : base+t.ways]
	for i := range ppns {
		if ppns[i] == uint64(ppn) {
			t.lastPPN, t.lastIdx = uint64(ppn), base+i
			t.touch(set, i)
			return t.onMatch(base + i)
		}
	}
	// The LRU-most way is the victim either way: empty ways occupy the
	// LRU end of the permutation (entries are never invalidated
	// individually), so the rotate claims an empty way while any remain.
	o := t.ord[set]
	w := int(o >> t.lruShift)
	t.ord[set] = (o&(uint64(1)<<t.lruShift-1))<<4 | uint64(w)
	if int(t.valid[set]) == t.ways {
		t.stats.Evictions++
		if t.counts[base+w] >= 0 {
			t.stats.EvictedBeforeHot++
		}
	} else {
		t.valid[set]++
	}
	return t.install(base+w, ppn)
}

// nibbleBroadcast spreads one nibble to all sixteen positions.
const nibbleBroadcast = 0x1111111111111111

// touch moves way w to the MRU end of set's recency permutation; w's
// position is found with a zero-nibble SWAR scan of o^(w·0x11…1).
func (t *Table) touch(set, w int) {
	o := t.ord[set]
	if int(o&0xF) == w {
		return // already MRU
	}
	x := o ^ uint64(w)*nibbleBroadcast
	m := (x - nibbleBroadcast) &^ x & (nibbleBroadcast << 3)
	p := uint(bits.TrailingZeros64(m)) &^ 3
	low := o & (uint64(1)<<p - 1)
	t.ord[set] = o&^(uint64(1)<<(p+4)-1) | low<<4 | uint64(w)
}

// hotSent in counts marks an entry past the threshold whose record was
// emitted; further accesses are suppressed until eviction (§III-B).
const hotSent = int32(-1)

// onMatch applies one access to the already-touched entry at flat
// index v and reports whether it just crossed the hot threshold.
func (t *Table) onMatch(v int) bool {
	n := t.counts[v]
	if n < 0 {
		t.stats.SendSuppressed++
		return false
	}
	n++
	if int(n) >= t.cfg.Threshold {
		t.counts[v] = hotSent
		t.stats.HotPages++
		return true
	}
	t.counts[v] = n
	return false
}

// accessWide is the ways>16 fallback using per-way timestamps. The
// first invalid slot wins, else the lowest tick.
func (t *Table) accessWide(set int, ppn memsim.PPN) bool {
	t.tick++
	base := set * t.ways
	ppns := t.ppns[base : base+t.ways]
	ticks := t.ticks[base : base+t.ways]
	victim, victimValid := 0, true
	for i := range ppns {
		if ppns[i] == uint64(ppn) {
			ticks[i] = t.tick
			t.lastPPN, t.lastIdx = uint64(ppn), base+i
			return t.onMatch(base + i)
		}
		if victimValid && (ppns[i] == invalidPPN || ticks[i] < ticks[victim]) {
			victim = i
			victimValid = ppns[i] != invalidPPN
		}
	}
	v := base + victim
	if victimValid {
		t.stats.Evictions++
		if t.counts[v] >= 0 {
			t.stats.EvictedBeforeHot++
		}
	}
	ticks[victim] = t.tick
	return t.install(v, ppn)
}

func (t *Table) install(v int, ppn memsim.PPN) bool {
	t.lastPPN, t.lastIdx = uint64(ppn), v
	t.ppns[v] = uint64(ppn)
	t.stats.Insertions++
	if t.cfg.Threshold == 1 {
		t.counts[v] = hotSent
		t.stats.HotPages++
		return true
	}
	t.counts[v] = 1
	return false
}

// Tracked returns how many valid entries the table currently holds.
func (t *Table) Tracked() int {
	n := 0
	for _, p := range t.ppns {
		if p != invalidPPN {
			n++
		}
	}
	return n
}

// Reset clears entries and counters.
func (t *Table) Reset() {
	for i := range t.ppns {
		t.ppns[i] = invalidPPN
		t.counts[i] = 0
	}
	t.lastPPN, t.lastIdx = invalidPPN, 0
	init := uint64(identityOrder)
	if t.ways < 16 {
		init &= uint64(1)<<uint(4*t.ways) - 1
	}
	for i := range t.ord {
		t.ord[i] = init
		t.valid[i] = 0
	}
	for i := range t.ticks {
		t.ticks[i] = 0
	}
	t.stats = Stats{}
	t.tick = 0
}
