package memsim

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if LineSize != 64 {
		t.Fatalf("LineSize = %d, want 64", LineSize)
	}
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64", LinesPerPage)
	}
	if HugePageSize != 2<<20 {
		t.Fatalf("HugePageSize = %d, want 2 MiB", HugePageSize)
	}
}

func TestVAddrPage(t *testing.T) {
	cases := []struct {
		addr VAddr
		page VPN
	}{
		{0, 0},
		{4095, 0},
		{4096, 1},
		{8191, 1},
		{1 << 30, 1 << 18},
	}
	for _, c := range cases {
		if got := c.addr.Page(); got != c.page {
			t.Errorf("VAddr(%#x).Page() = %d, want %d", uint64(c.addr), got, c.page)
		}
	}
}

func TestOffset(t *testing.T) {
	if got := VAddr(4097).Offset(); got != 1 {
		t.Errorf("VAddr(4097).Offset() = %d, want 1", got)
	}
	if got := VAddr(4096).Offset(); got != 0 {
		t.Errorf("VAddr(4096).Offset() = %d, want 0", got)
	}
}

func TestLineInPage(t *testing.T) {
	if got := PAddr(0).LineInPage(); got != 0 {
		t.Errorf("line of 0 = %d", got)
	}
	if got := PAddr(64).LineInPage(); got != 1 {
		t.Errorf("line of 64 = %d, want 1", got)
	}
	if got := PAddr(4095).LineInPage(); got != 63 {
		t.Errorf("line of 4095 = %d, want 63", got)
	}
	if got := PAddr(4096).LineInPage(); got != 0 {
		t.Errorf("line of 4096 = %d, want 0 (wraps per page)", got)
	}
}

func TestPPNLineAddr(t *testing.T) {
	p := PPN(7)
	for i := 0; i < LinesPerPage; i++ {
		a := p.LineAddr(i)
		if a.Page() != p {
			t.Fatalf("LineAddr(%d) escaped its page: %#x", i, uint64(a))
		}
		if a.LineInPage() != i {
			t.Fatalf("LineAddr(%d).LineInPage() = %d", i, a.LineInPage())
		}
	}
}

func TestStride(t *testing.T) {
	if s := StrideBetween(10, 12); s != 2 {
		t.Errorf("StrideBetween(10,12) = %d, want 2", s)
	}
	if s := StrideBetween(12, 10); s != -2 {
		t.Errorf("StrideBetween(12,10) = %d, want -2", s)
	}
	if Stride(-5).Abs() != 5 || Stride(5).Abs() != 5 || Stride(0).Abs() != 0 {
		t.Error("Stride.Abs broken")
	}
}

// Property: page round-trip — the base address of an address's page is
// never above the address, and within one page of it.
func TestPageRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := VAddr(raw % (1 << 52))
		base := a.Page().Addr()
		return base <= a && uint64(a)-uint64(base) < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stride arithmetic is antisymmetric.
func TestStrideAntisymmetryProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		a, b := VPN(x), VPN(y)
		return StrideBetween(a, b) == -StrideBetween(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
