// Package memsim provides the elementary address types and page/cacheline
// arithmetic shared by every layer of the HoPP simulation: physical and
// virtual addresses, page numbers, process IDs, and the constants of the
// 4 KB page / 64 B cacheline geometry the paper assumes.
package memsim

// Geometry constants. HoPP (§III-B) assumes 4 KB base pages holding 64
// cachelines of 64 B each; the hot-page threshold N ranges over [1,64].
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096 bytes
	LineShift = 6
	LineSize  = 1 << LineShift // 64 bytes
	// LinesPerPage is the number of cache blocks in a base page (64).
	LinesPerPage = PageSize / LineSize

	// HugePageShift is the 2 MB huge page shift used by the RPT huge flag.
	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift
)

// PID identifies a process. The RPT entry reserves 16 bits for it (Fig. 6).
type PID uint16

// VPN is a virtual page number. The RPT entry reserves 40 bits (Fig. 6),
// enough for a 52-bit virtual address space of 4 KB pages.
type VPN uint64

// PPN is a physical page number.
type PPN uint64

// VAddr is a byte-granularity virtual address.
type VAddr uint64

// PAddr is a byte-granularity physical address.
type PAddr uint64

// MaxVPN is the largest VPN representable in an RPT entry's 40-bit field.
const MaxVPN VPN = (1 << 40) - 1

// Page returns the VPN containing the address.
func (a VAddr) Page() VPN { return VPN(a >> PageShift) }

// Line returns the cacheline index of the address within the full
// address space (i.e., the address with the low 6 bits dropped).
func (a VAddr) Line() uint64 { return uint64(a) >> LineShift }

// Offset returns the byte offset of the address within its page.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Page returns the PPN containing the address.
func (a PAddr) Page() PPN { return PPN(a >> PageShift) }

// Line returns the cacheline index of the physical address.
func (a PAddr) Line() uint64 { return uint64(a) >> LineShift }

// LineInPage returns which of the 64 cachelines of its page the address
// falls in.
func (a PAddr) LineInPage() int { return int((uint64(a) >> LineShift) & (LinesPerPage - 1)) }

// Addr returns the base virtual address of the page.
func (v VPN) Addr() VAddr { return VAddr(v << PageShift) }

// Addr returns the base physical address of the page.
func (p PPN) Addr() PAddr { return PAddr(p << PageShift) }

// LineAddr returns the physical address of the i-th cacheline of the page.
func (p PPN) LineAddr(i int) PAddr {
	return PAddr(uint64(p)<<PageShift | uint64(i)<<LineShift)
}

// PageKey identifies a virtual page globally: HoPP's hot page records,
// prefetch requests, and the remote node's store all key on PID+VPN.
type PageKey struct {
	PID PID
	VPN VPN
}

// Pack flattens the key into one uint64 (VPN in the high bits, PID in
// the low 16) for flat-hash containers. VPNs are bounded by the RPT's
// 40-bit field, so the packed value never reaches all-ones — which
// those containers reserve as their empty-slot sentinel.
func (k PageKey) Pack() uint64 {
	if k.VPN > MaxVPN {
		panic("memsim: VPN beyond the packable 40-bit range")
	}
	return uint64(k.VPN)<<16 | uint64(k.PID)
}

// Stride is a signed distance between two VPNs, the unit in which all of
// HoPP's stream detection operates (§III-D).
type Stride int64

// StrideBetween returns b-a as a Stride.
func StrideBetween(a, b VPN) Stride { return Stride(int64(b) - int64(a)) }

// Abs returns the absolute value of the stride.
func (s Stride) Abs() Stride {
	if s < 0 {
		return -s
	}
	return s
}
